/**
 * @file
 * Quickstart: build a dual-core SoC, run a store / CBO.FLUSH / FENCE
 * sequence on core 0, and verify the data reached the DRAM backing store
 * — the fundamental crash-consistency guarantee the paper's writeback
 * instructions provide.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "soc/soc.hh"

using namespace skipit;

int
main()
{
    // A dual-core SonicBOOM-like SoC: 32 KiB L1s with the flush unit,
    // a shared 512 KiB inclusive L2, and a DRAM model (paper §7.1).
    SoCConfig cfg;
    SoC soc(cfg);

    const Addr addr = 0x1000;
    const std::uint64_t value = 0xC0FFEE;

    // Without a writeback, a store stays dirty in the cache hierarchy:
    soc.hart(0).setProgram({
        MemOp::store(addr, value),
        MemOp::fence(),
    });
    soc.runToQuiescence();
    std::printf("after store+fence      : DRAM=0x%llx (dirty in L1: %s)\n",
                static_cast<unsigned long long>(soc.dram().peekWord(addr)),
                soc.l1(0).lineDirty(addr) ? "yes" : "no");

    // CBO.FLUSH + FENCE persists it (and invalidates the L1 copy):
    soc.hart(0).setProgram({
        MemOp::flush(addr),
        MemOp::fence(),
    });
    const Cycle cycles = soc.runToCompletion();
    std::printf("after flush+fence      : DRAM=0x%llx (line state: %s), "
                "%llu cycles\n",
                static_cast<unsigned long long>(soc.dram().peekWord(addr)),
                toString(soc.l1(0).lineState(addr)),
                static_cast<unsigned long long>(cycles));

    // CBO.CLEAN persists without giving up the cached copy:
    soc.hart(0).setProgram({
        MemOp::store(addr, value + 1),
        MemOp::clean(addr),
        MemOp::fence(),
        MemOp::load(addr), // still hits in L1
    });
    soc.runToCompletion();
    std::printf("after store+clean+fence: DRAM=0x%llx (line state: %s, "
                "loaded 0x%llx)\n",
                static_cast<unsigned long long>(soc.dram().peekWord(addr)),
                toString(soc.l1(0).lineState(addr)),
                static_cast<unsigned long long>(soc.hart(0).loadValue(3)));

    // Skip It in action: the line is now clean and provably persisted, so
    // a redundant writeback is dropped inside the L1 (§6).
    soc.hart(0).setProgram({
        MemOp::clean(addr),
        MemOp::fence(),
    });
    soc.runToCompletion();
    std::printf("redundant clean dropped: %llu (skip bit was %s)\n",
                static_cast<unsigned long long>(
                    soc.stats().get("l1.0.skipit_dropped")),
                soc.l1(0).lineSkip(addr) ? "set" : "unset");
    return 0;
}
