/**
 * @file
 * Security scenario (paper §1, §8): explicit cache flushing as a defence
 * against cache timing channels. On a context switch between mutually
 * distrusting domains, the kernel flushes the victim's working set so the
 * attacker cannot probe residual cache state.
 *
 * The example measures the attacker's probe latency with and without the
 * domain-switch flush: without it, the attacker's loads hit in L1/L2 and
 * leak which lines the victim touched.
 */

#include <cstdio>

#include "soc/soc.hh"

using namespace skipit;

namespace {

constexpr Addr secret_base = 0x80000;
constexpr unsigned working_set = 32; // lines the victim touches

Program
victimTouch()
{
    Program p;
    for (unsigned i = 0; i < working_set; ++i)
        p.push_back(MemOp::store(secret_base + static_cast<Addr>(i) *
                                 line_bytes, 0x5EC0u + i));
    p.push_back(MemOp::fence());
    return p;
}

Program
domainSwitchFlush()
{
    Program p;
    for (unsigned i = 0; i < working_set; ++i)
        p.push_back(MemOp::flush(secret_base + static_cast<Addr>(i) *
                                 line_bytes));
    p.push_back(MemOp::fence());
    return p;
}

/** Attacker probes one line and times it. */
Cycle
probeLatency(SoC &soc)
{
    soc.hart(0).setProgram({MemOp::load(secret_base)});
    return soc.runToCompletion();
}

} // namespace

int
main()
{
    {
        SoC soc{SoCConfig{}};
        soc.hart(0).setProgram(victimTouch());
        soc.runToQuiescence();
        const Cycle t = probeLatency(soc);
        std::printf("no flush at domain switch : probe latency %3llu "
                    "cycles (cache hit -> secret leaks)\n",
                    static_cast<unsigned long long>(t));
    }
    {
        SoC soc{SoCConfig{}};
        soc.hart(0).setProgram(victimTouch());
        soc.runToQuiescence();
        soc.hart(0).setProgram(domainSwitchFlush());
        soc.runToQuiescence();
        const Cycle t = probeLatency(soc);
        std::printf("CBO.FLUSH at domain switch: probe latency %3llu "
                    "cycles (memory fetch -> no residue)\n",
                    static_cast<unsigned long long>(t));
    }
    return 0;
}
