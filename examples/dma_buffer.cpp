/**
 * @file
 * DMA scenario (paper §1, §2.5): before a device reads a buffer from main
 * memory, the producer core must write the cached buffer back — otherwise
 * the DMA engine sees stale memory.
 *
 * The "DMA engine" here reads the DRAM backing store directly, which is
 * exactly what a non-coherent device sees. CBO.CLEAN is the right tool:
 * it pushes the data to memory while keeping the core's cached copy for
 * further processing.
 */

#include <cstdio>

#include "soc/soc.hh"

using namespace skipit;

namespace {

constexpr Addr buf_base = 0x40000;
constexpr unsigned buf_lines = 16; // 1 KiB descriptor ring

/** What a non-coherent DMA device reads from memory. */
bool
dmaSeesBuffer(Dram &dram, std::uint64_t expected_tag)
{
    for (unsigned i = 0; i < buf_lines; ++i) {
        const Addr a = buf_base + static_cast<Addr>(i) * line_bytes;
        if (dram.peekWord(a) != expected_tag + i)
            return false;
    }
    return true;
}

Program
produceBuffer(std::uint64_t tag, bool clean_after)
{
    Program p;
    for (unsigned i = 0; i < buf_lines; ++i)
        p.push_back(MemOp::store(buf_base + static_cast<Addr>(i) *
                                 line_bytes, tag + i));
    if (clean_after) {
        for (unsigned i = 0; i < buf_lines; ++i)
            p.push_back(MemOp::clean(buf_base + static_cast<Addr>(i) *
                                     line_bytes));
    }
    p.push_back(MemOp::fence());
    return p;
}

} // namespace

int
main()
{
    SoC soc{SoCConfig{}};

    // Attempt 1: produce the buffer but skip the writebacks. The fence
    // orders the stores, but they are still sitting dirty in the L1.
    soc.hart(0).setProgram(produceBuffer(0x100, /*clean_after=*/false));
    soc.runToQuiescence();
    std::printf("without CBO.CLEAN: DMA engine sees valid buffer? %s\n",
                dmaSeesBuffer(soc.dram(), 0x100) ? "yes" : "NO (stale!)");

    // Attempt 2: clean every line before kicking the device.
    soc.hart(0).setProgram(produceBuffer(0x200, /*clean_after=*/true));
    const Cycle cycles = soc.runToCompletion();
    std::printf("with CBO.CLEAN   : DMA engine sees valid buffer? %s "
                "(%llu cycles)\n",
                dmaSeesBuffer(soc.dram(), 0x200) ? "yes" : "NO (stale!)",
                static_cast<unsigned long long>(cycles));

    // The producer still owns the lines for the next iteration: the clean
    // writeback did not invalidate them.
    std::printf("producer still holds line 0 in state %s, dirty=%s\n",
                toString(soc.l1(0).lineState(buf_base)),
                soc.l1(0).lineDirty(buf_base) ? "yes" : "no");

    // The reverse direction: the DEVICE writes memory and the core reads.
    // Whatever the core has cached is now stale; CBO.INVAL (this repo's
    // CMO-suite extension) discards the cached copies so the next load
    // fetches the device's data.
    LineData device_data{};
    device_data[0] = 0xD1;
    soc.dram().pokeLine(buf_base, device_data);
    soc.hart(0).setProgram({MemOp::load(buf_base)});
    soc.runToCompletion();
    std::printf("device wrote DRAM; stale cached read: 0x%llx\n",
                static_cast<unsigned long long>(soc.hart(0).loadValue(0)));
    soc.hart(0).setProgram({
        MemOp::inval(buf_base),
        MemOp::fence(),
        MemOp::load(buf_base),
    });
    soc.runToCompletion();
    std::printf("after CBO.INVAL, fresh read : 0x%llx (device's data)\n",
                static_cast<unsigned long long>(soc.hart(0).loadValue(2)));
    return 0;
}
