/**
 * @file
 * A crash-consistent write-ahead log on non-volatile main memory — the
 * canonical pattern the paper's writeback instructions exist for (§1,
 * §2.5): an entry must reach persistent memory *before* the head pointer
 * that publishes it, which only explicit writebacks plus fences can
 * guarantee.
 *
 * The example appends records, "crashes" the machine at a few arbitrary
 * cycles (caches vanish, DRAM survives), and runs recovery on what's
 * left — demonstrating that the committed prefix is always intact, and
 * what goes wrong when the flushes are omitted.
 */

#include <cstdio>
#include <iostream>

#include "sim/report.hh"
#include "soc/soc.hh"

using namespace skipit;

namespace {

constexpr Addr log_base = 0x100000;
constexpr Addr head_addr = 0x200000;
constexpr unsigned entries = 10;

Program
appendAll(bool persist_entries)
{
    Program p;
    for (unsigned i = 0; i < entries; ++i) {
        const Addr entry = log_base + static_cast<Addr>(i) * line_bytes;
        p.push_back(MemOp::store(entry, 0xBEEF0000 + i));
        if (persist_entries) {
            p.push_back(MemOp::flush(entry));
            p.push_back(MemOp::fence());
        }
        p.push_back(MemOp::store(head_addr, i + 1));
        p.push_back(MemOp::flush(head_addr));
        p.push_back(MemOp::fence());
    }
    return p;
}

/** Post-crash recovery: how many published entries are actually there? */
unsigned
recover(const Dram &dram, unsigned &head_out)
{
    const std::uint64_t head = dram.peekWord(head_addr);
    unsigned intact = 0;
    for (std::uint64_t i = 0; i < head && i < entries; ++i) {
        const Addr entry = log_base + static_cast<Addr>(i) * line_bytes;
        if (dram.peekWord(entry) == 0xBEEF0000 + i)
            ++intact;
    }
    head_out = static_cast<unsigned>(head);
    return intact;
}

} // namespace

int
main()
{
    ReportTable table("write-ahead log: crash at cycle N, then recover",
                      {"protocol", "crash_cycle", "published", "intact",
                       "recoverable"});

    for (const bool correct : {true, false}) {
        // Total runtime of this protocol variant.
        Cycle total = 0;
        {
            SoC soc{SoCConfig{}};
            soc.hart(0).setProgram(appendAll(correct));
            total = soc.runToQuiescence();
        }
        for (const Cycle crash :
             {total / 5, total / 2, total * 4 / 5, total}) {
            SoC soc{SoCConfig{}};
            soc.hart(0).setProgram(appendAll(correct));
            soc.sim().run(crash);
            unsigned head = 0;
            const unsigned intact = recover(soc.dram(), head);
            table.addRow({std::string(correct ? "flush+fence"
                                              : "missing flush"),
                          std::uint64_t{crash}, std::uint64_t{head},
                          std::uint64_t{intact},
                          std::string(intact >= head ? "yes"
                                                     : "DATA LOSS")});
        }
    }
    table.renderText(std::cout);
    std::printf("\nWith the writeback protocol every crash point leaves "
                "the published prefix intact;\nwithout it the head can "
                "point at entries that never reached memory.\n");
    return 0;
}
