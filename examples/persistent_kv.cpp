/**
 * @file
 * NVMM scenario (paper §1, §7.4): a crash-consistent key-value store
 * served through the full simulated hierarchy (LSU→L1→TileLink→L2→DRAM),
 * with and without the skip bit.
 *
 * The store (src/kv) is ListDB-shaped: a persistent skiplist index over
 * an append-only value log, committed with CBO.CLEAN + FENCE epochs.
 * Every checkpoint_every operations it conservatively re-cleans
 * everything dirtied since the last checkpoint — software cannot know
 * which of those lines already reached the persist domain, so it must
 * flush them all. That redundant bookkeeping is exactly what Skip It
 * eliminates: with the skip bit on, the L1 metadata check kills the
 * already-clean writebacks instead of a round trip to memory (paper §6).
 *
 * Run time is dominated by simulated cycles, not wall clock.
 */

#include <cstdio>

#include "workloads/ycsb.hh"

using namespace skipit;
using namespace skipit::workloads;

int
main()
{
    KvSpec spec;
    spec.mix = "A"; // YCSB-A: 50% reads, 50% updates
    spec.keys = 256;
    spec.ops = 256;
    spec.cores = 2;
    spec.seed = 7;

    std::printf("persistent KV store (skiplist + value log, mix %s, "
                "%u harts, %llu ops/hart)\n",
                spec.mix.c_str(), spec.cores,
                static_cast<unsigned long long>(spec.ops));
    std::printf("%-10s%14s%14s%12s%12s%12s\n", "skip-it", "cycles",
                "ops/kcycle", "p99", "cleans", "drops");

    KvRunResult on, off;
    for (const bool skip : {false, true}) {
        spec.skipit = skip;
        const KvRunResult r = runKv(spec);
        std::printf("%-10s%14llu%14.2f%12.0f%12llu%12llu\n",
                    skip ? "on" : "off",
                    static_cast<unsigned long long>(r.cycles),
                    r.ops_per_kcycle, r.latency.percentile(99.0),
                    static_cast<unsigned long long>(r.cbo_cleans),
                    static_cast<unsigned long long>(r.skip_drops));
        (skip ? on : off) = r;
    }

    const double saved = 100.0 * static_cast<double>(off.cycles - on.cycles) /
                         static_cast<double>(off.cycles);
    std::printf("\nskip-it dropped %llu of %llu checkpoint cleans in the "
                "L1 metadata check,\nserving the same operations in "
                "%.1f%% fewer cycles with no software bookkeeping "
                "(paper §6).\n",
                static_cast<unsigned long long>(on.skip_drops),
                static_cast<unsigned long long>(on.cbo_cleans),
                saved);
    return on.skip_drops > 0 && on.cycles <= off.cycles ? 0 : 1;
}
