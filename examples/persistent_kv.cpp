/**
 * @file
 * NVMM scenario (paper §1, §7.4): a crash-consistent key-value store on
 * non-volatile main memory, built on the persistent lock-free hash table
 * with each flush-avoidance scheme, comparing throughput and the number
 * of writebacks that actually reached memory.
 *
 * Run time is dominated by simulated cycles, not wall clock; every access
 * goes through the execution-driven memory model (src/nvm).
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "ds/hash_table.hh"
#include "sim/random.hh"

using namespace skipit;

namespace {

struct Result
{
    double ops_per_mcycle;
    std::uint64_t flushes;
    std::uint64_t skipped;
};

Result
runKv(FlushPolicy policy)
{
    MemSim mem(PersistCtx::machineFor(policy));
    PersistConfig pcfg;
    pcfg.policy = policy;
    pcfg.mode = PersistMode::NvTraverse;
    PersistCtx ctx(mem, pcfg);
    HashTable kv(ctx, 1024);

    // Two application threads hammer the store with a 20%-update mix.
    constexpr unsigned threads = 2;
    constexpr Cycle budget = 300'000;
    std::vector<std::uint64_t> ops(threads, 0);
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            Rng rng(17 + t);
            while (mem.clock(t) < budget) {
                const std::uint64_t key = 1 + rng.below(1024);
                const double dice = rng.uniform();
                if (dice < 0.1) {
                    kv.insert(t, key);
                } else if (dice < 0.2) {
                    kv.remove(t, key);
                } else {
                    kv.contains(t, key);
                }
                ++ops[t];
            }
        });
    }
    for (auto &w : workers)
        w.join();

    Cycle max_clock = 0;
    std::uint64_t total = 0;
    for (unsigned t = 0; t < threads; ++t) {
        total += ops[t];
        max_clock = std::max(max_clock, mem.clock(t));
    }
    return Result{static_cast<double>(total) * 1e6 /
                      static_cast<double>(max_clock),
                  mem.flushesIssued(), mem.flushesSkippedL1()};
}

} // namespace

int
main()
{
    std::printf("persistent KV store (hash table, NVTraverse, 2 threads, "
                "20%% updates)\n");
    std::printf("%-18s%16s%12s%14s\n", "policy", "ops/Mcycle", "flushes",
                "skip drops");
    for (const FlushPolicy p :
         {FlushPolicy::Plain, FlushPolicy::FlitAdjacent,
          FlushPolicy::FlitHashTable, FlushPolicy::LinkAndPersist,
          FlushPolicy::SkipIt}) {
        const Result r = runKv(p);
        std::printf("%-18s%16.1f%12llu%14llu\n", toString(p),
                    r.ops_per_mcycle,
                    static_cast<unsigned long long>(r.flushes),
                    static_cast<unsigned long long>(r.skipped));
    }
    std::printf("\nSkip It needs no software bookkeeping: redundant "
                "writebacks die in the L1 metadata check (paper §6).\n");
    return 0;
}
