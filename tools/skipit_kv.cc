/**
 * @file
 * skipit-kv: the served persistent-KV benchmark (YCSB-style open-loop
 * traffic over the durable KV store, through the full simulated memory
 * hierarchy).
 *
 * Two modes:
 *
 *  - Bench grid (default): serve every (mix, cores) point with the skip
 *    bit on AND off, print a summary table, and write machine-readable
 *    BENCH_kv.json (-o FILE, schema "skipit-kv-bench-v1").
 *
 *  - Crash audit (--crash N): one run that loses power at cycle N; the
 *    durability oracle plus a KV recovery walk over the frozen
 *    persist-domain image decide the exit status.
 *
 * Options:
 *
 *   --mixes M[,M]    workload mixes, letters A-E (default A,B,C)
 *   --cores N[,N]    core counts to sweep (default 1,2)
 *   --keys N         prefilled keys per hart (default 1024)
 *   --ops N          operations per hart (default 4096)
 *   --slices N       L2 slices (default 1)
 *   --engine E       serial (default) or parallel; result-neutral
 *   --workers N      parallel-engine thread count (0 = hw concurrency)
 *   --distribution D zipfian (default) or uniform
 *   --theta T        zipfian skew in (0,1) (default 0.99)
 *   --value-bytes N  payload size (default 64)
 *   --period N       open-loop inter-arrival cycles; 0 = closed loop
 *   --scan-len N     max scan length for mix E (default 16)
 *   --checkpoint N   ops between store epoch checkpoints (conservative
 *                    re-flush of the dirtied working set; 0 = never,
 *                    default 16)
 *   --seed N         base RNG seed (default 1)
 *   --spec FILE      read the grid from a JSON spec (see
 *                    bench/sweeps/kv.json); CLI flags override it
 *   -o FILE          write BENCH_kv.json here (default BENCH_kv.json;
 *                    "-" = stdout only)
 *   --crash N        crash-audit mode: power fails at cycle N
 *   --no-skipit      (crash mode) audit with the skip bit off
 *   --stages         attach the transaction tracer and print per-stage
 *                    latency histograms for the first grid point
 *
 * Examples:
 *
 *   skipit-kv --mixes A,B,C --cores 1,2 -o BENCH_kv.json
 *   skipit-kv --spec bench/sweeps/kv.json
 *   skipit-kv --mixes A --cores 2 --ops 400 --crash 20000
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "workloads/ycsb.hh"

using namespace skipit;
using namespace skipit::workloads;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: skipit-kv [--mixes A,B,C] [--cores 1,2] [--keys N] "
        "[--ops N]\n"
        "                 [--slices N] [--engine serial|parallel] "
        "[--workers N]\n"
        "                 [--l2-policy inclusive|exclusive] "
        "[--l2-index modulo|hashed]\n"
        "                 [--l2-replace lru|fifo|random]\n"
        "                 [--distribution zipfian|uniform] [--theta T]\n"
        "                 [--value-bytes N] [--period N] [--scan-len N]\n"
        "                 [--seed N] [--spec FILE] [-o FILE]\n"
        "                 [--crash N [--no-skipit]] [--stages]\n");
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string tok;
    while (std::getline(ss, tok, ','))
        out.push_back(tok);
    return out;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        SKIPIT_FATAL("cannot open spec file: ", path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
printRun(const char *tag, const KvBenchRow &row, const KvRunResult &r)
{
    std::printf("  mix %s  cores %u  skip %-3s  %8llu cycles  "
                "%7.3f ops/kcycle  p50 %6.0f  p99 %6.0f  "
                "cleans %llu  drops %llu\n",
                row.mix.c_str(), row.cores, tag,
                static_cast<unsigned long long>(r.cycles),
                r.ops_per_kcycle, r.latency.percentile(50),
                r.latency.percentile(99),
                static_cast<unsigned long long>(r.cbo_cleans),
                static_cast<unsigned long long>(r.skip_drops));
}

int
crashMode(KvSpec spec)
{
    std::printf("kv crash audit: mix %s, %u cores, power fails at "
                "cycle %llu, skip-it %s\n",
                spec.mix.c_str(), spec.cores,
                static_cast<unsigned long long>(spec.crash_at),
                spec.skipit ? "on" : "off");
    const KvRunResult r = runKv(spec);
    std::printf("  %s after %llu cycles\n",
                r.crashed ? "crashed" : "quiesced before the crash point",
                static_cast<unsigned long long>(r.cycles));
    std::printf("  durability oracle: %zu violation(s)\n",
                r.oracle_violations);
    std::printf("  recovery walk:     %zu violation(s)\n",
                r.recovery_violations.size());
    for (const std::string &v : r.recovery_violations)
        std::printf("    %s\n", v.c_str());
    if (!r.durable()) {
        std::printf("FAIL: the crash image is not recoverable\n");
        return 1;
    }
    std::printf("PASS: every index-reachable record is durable\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    KvBenchSpec spec;
    std::string out_path = "BENCH_kv.json";
    bool crash_skipit = true;
    bool stages = false;
    Cycle crash_at = 0;

    // CLI flags override the JSON spec, so parse --spec first.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--spec" && i + 1 < argc)
            spec = KvBenchSpec::fromJsonText(readFile(argv[i + 1]));
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--spec" && i + 1 < argc) {
            ++i; // parsed above
        } else if (arg == "--mixes" && i + 1 < argc) {
            spec.mixes = splitList(argv[++i]);
        } else if (arg == "--cores" && i + 1 < argc) {
            spec.cores.clear();
            for (const std::string &c : splitList(argv[++i]))
                spec.cores.push_back(
                    static_cast<unsigned>(std::stoul(c)));
        } else if (arg == "--keys" && i + 1 < argc) {
            spec.base.keys = std::stoull(argv[++i]);
        } else if (arg == "--ops" && i + 1 < argc) {
            spec.base.ops = std::stoull(argv[++i]);
        } else if (arg == "--slices" && i + 1 < argc) {
            spec.base.slices =
                static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--l2-policy" && i + 1 < argc) {
            if (!stateKindFromString(argv[++i], spec.base.l2_policy))
                SKIPIT_FATAL("--l2-policy must be inclusive or "
                             "exclusive, got '", argv[i], "'");
        } else if (arg == "--l2-index" && i + 1 < argc) {
            if (!indexKindFromString(argv[++i], spec.base.l2_index))
                SKIPIT_FATAL("--l2-index must be modulo or hashed, "
                             "got '", argv[i], "'");
        } else if (arg == "--l2-replace" && i + 1 < argc) {
            if (!replaceKindFromString(argv[++i], spec.base.l2_replace))
                SKIPIT_FATAL("--l2-replace must be lru, fifo or random, "
                             "got '", argv[i], "'");
        } else if (arg == "--engine" && i + 1 < argc) {
            spec.base.engine = argv[++i];
        } else if (arg == "--workers" && i + 1 < argc) {
            spec.base.workers =
                static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--distribution" && i + 1 < argc) {
            spec.base.distribution = argv[++i];
        } else if (arg == "--theta" && i + 1 < argc) {
            spec.base.theta = std::stod(argv[++i]);
        } else if (arg == "--value-bytes" && i + 1 < argc) {
            spec.base.value_bytes =
                static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--period" && i + 1 < argc) {
            spec.base.arrival_period = std::stoull(argv[++i]);
        } else if (arg == "--scan-len" && i + 1 < argc) {
            spec.base.scan_len =
                static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--checkpoint" && i + 1 < argc) {
            spec.base.checkpoint_every =
                static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--seed" && i + 1 < argc) {
            spec.base.seed = std::stoull(argv[++i]);
        } else if (arg == "-o" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--crash" && i + 1 < argc) {
            crash_at = std::stoull(argv[++i]);
        } else if (arg == "--no-skipit") {
            crash_skipit = false;
        } else if (arg == "--stages") {
            stages = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            return 1;
        }
    }

    try {
        if (crash_at > 0) {
            KvSpec s = spec.base;
            s.mix = spec.mixes.empty() ? "A" : spec.mixes.front();
            s.cores = spec.cores.empty() ? 2 : spec.cores.front();
            s.crash_at = crash_at;
            s.skipit = crash_skipit;
            return crashMode(s);
        }

        if (stages) {
            // Stage histograms for the first grid point, skip on.
            KvSpec s = spec.base;
            s.mix = spec.mixes.empty() ? "A" : spec.mixes.front();
            s.cores = spec.cores.empty() ? 2 : spec.cores.front();
            s.trace_stages = true;
            const KvRunResult r = runKv(s);
            std::printf("per-stage latency histograms (mix %s, %u "
                        "cores):\n",
                        s.mix.c_str(), s.cores);
            for (const auto &[name, hist] : r.stages)
                std::printf("  %-24s %s\n", name.c_str(),
                            hist.summary().c_str());
            std::printf("\n");
        }

        const KvBenchResult result = runKvBench(spec);
        std::printf("served-KV bench: %llu keys, %llu ops/hart, "
                    "%s(theta=%.2f), period %llu, seed %llu\n",
                    static_cast<unsigned long long>(spec.base.keys),
                    static_cast<unsigned long long>(spec.base.ops),
                    spec.base.distribution.c_str(), spec.base.theta,
                    static_cast<unsigned long long>(
                        spec.base.arrival_period),
                    static_cast<unsigned long long>(spec.base.seed));
        for (const KvBenchRow &row : result.rows) {
            printRun("on", row, row.on);
            printRun("off", row, row.off);
            const double delta =
                row.off.cycles == 0
                    ? 0.0
                    : 100.0 *
                          (static_cast<double>(row.off.cycles) -
                           static_cast<double>(row.on.cycles)) /
                          static_cast<double>(row.off.cycles);
            std::printf("    -> skip bit dropped %llu/%llu cleans, "
                        "%.2f%% fewer cycles\n",
                        static_cast<unsigned long long>(
                            row.on.skip_drops),
                        static_cast<unsigned long long>(
                            row.on.cbo_cleans),
                        delta);
        }

        if (out_path == "-") {
            writeKvBenchJson(result, std::cout);
        } else {
            std::ofstream out(out_path);
            if (!out)
                SKIPIT_FATAL("cannot write ", out_path);
            writeKvBenchJson(result, out);
            std::printf("wrote %s\n", out_path.c_str());
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
