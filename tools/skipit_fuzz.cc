/**
 * @file
 * Seeded coherence fuzzer CLI: sweep seeds of random multi-hart
 * CBO-heavy programs under the invariant checker and (optionally)
 * TileLink schedule jitter; on failure, shrink the program and emit a
 * deterministic replay bundle.
 *
 * Examples:
 *
 *   skipit-fuzz --seeds 200 -j8                      # smoke sweep
 *   skipit-fuzz --seeds 500 --harts 4 --no-jitter
 *   skipit-fuzz --seeds 50 --break-probe-invalidate  # must fail
 *   skipit-fuzz --replay /tmp/bundle                 # re-run a bundle
 *
 * Exit status: 0 when every seed is clean (or the replayed bundle no
 * longer fails), 1 when a failure was found (or a replay reproduced).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "workloads/fuzz.hh"

using namespace skipit;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: skipit-fuzz [--seeds N] [--seed-base S] [--harts H]\n"
        "                   [--ops N] [--lines N] [--max-cycles C]\n"
        "                   [--no-jitter] [--max-delay D] [-j N]\n"
        "                   [--fshrs N] [--queue N] [--slices N]\n"
        "                   [--crash N] [--crash-at C] [--parallel]\n"
        "                   [--workers N] [--bundle-dir DIR]\n"
        "                   [--l2-policy inclusive|exclusive]\n"
        "                   [--l2-index modulo|hashed]\n"
        "                   [--l2-replace lru|fifo|random]\n"
        "                   [--no-shrink] [--break-probe-invalidate]\n"
        "       skipit-fuzz --replay DIR\n"
        "\n"
        "  --crash N     per seed, after one clean run, re-run with the\n"
        "                power failing at N sampled cycles and audit\n"
        "                the frozen persist-domain image\n"
        "  --crash-at C  crash every run at exactly cycle C\n");
}

std::uint64_t
parseU64(const char *what, const std::string &token)
{
    try {
        return std::stoull(token, nullptr, 0);
    } catch (const std::exception &) {
        std::fprintf(stderr, "skipit-fuzz: bad %s: '%s'\n", what,
                     token.c_str());
        std::exit(2);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::FuzzSpec spec;
    std::uint64_t seed_base = 0;
    unsigned seeds = 100;
    unsigned jobs = 1;
    bool shrink = true;
    std::string bundle_dir = "fuzz-bundle";
    std::string replay_dir;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "skipit-fuzz: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seeds")
            seeds = static_cast<unsigned>(parseU64("count", next()));
        else if (arg == "--seed-base")
            seed_base = parseU64("seed", next());
        else if (arg == "--harts")
            spec.harts = static_cast<unsigned>(parseU64("harts", next()));
        else if (arg == "--ops")
            spec.ops = static_cast<unsigned>(parseU64("ops", next()));
        else if (arg == "--lines")
            spec.lines = static_cast<unsigned>(parseU64("lines", next()));
        else if (arg == "--max-cycles")
            spec.max_cycles = parseU64("cycles", next());
        else if (arg == "--no-jitter")
            spec.jitter = false;
        else if (arg == "--max-delay")
            spec.max_delay =
                static_cast<unsigned>(parseU64("delay", next()));
        else if (arg == "--fshrs")
            spec.fshrs = static_cast<unsigned>(parseU64("fshrs", next()));
        else if (arg == "--queue")
            spec.flush_queue_depth =
                static_cast<unsigned>(parseU64("depth", next()));
        else if (arg == "--slices")
            spec.l2_slices =
                static_cast<unsigned>(parseU64("slices", next()));
        else if (arg == "--l2-policy") {
            if (!stateKindFromString(next(), spec.l2_policy)) {
                std::fprintf(stderr, "skipit-fuzz: bad --l2-policy\n");
                return 2;
            }
        } else if (arg == "--l2-index") {
            if (!indexKindFromString(next(), spec.l2_index)) {
                std::fprintf(stderr, "skipit-fuzz: bad --l2-index\n");
                return 2;
            }
        } else if (arg == "--l2-replace") {
            if (!replaceKindFromString(next(), spec.l2_replace)) {
                std::fprintf(stderr, "skipit-fuzz: bad --l2-replace\n");
                return 2;
            }
        }
        else if (arg == "--crash")
            spec.crash_points =
                static_cast<unsigned>(parseU64("crash points", next()));
        else if (arg == "--crash-at")
            spec.crash_at = parseU64("crash cycle", next());
        else if (arg == "--parallel")
            spec.parallel = true;
        else if (arg == "--workers")
            spec.workers =
                static_cast<unsigned>(parseU64("workers", next()));
        else if (arg == "-j")
            jobs = static_cast<unsigned>(parseU64("jobs", next()));
        else if (arg.rfind("-j", 0) == 0 && arg.size() > 2)
            jobs = static_cast<unsigned>(parseU64("jobs", arg.substr(2)));
        else if (arg == "--bundle-dir")
            bundle_dir = next();
        else if (arg == "--no-shrink")
            shrink = false;
        else if (arg == "--break-probe-invalidate")
            spec.break_probe_invalidate = true;
        else if (arg == "--replay")
            replay_dir = next();
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            return 2;
        }
    }

    if (!replay_dir.empty()) {
        std::vector<Program> programs;
        const auto [rspec, seed] =
            workloads::readReplayBundle(replay_dir, programs);
        std::cout << "replaying " << replay_dir << " (seed " << seed
                  << ", " << rspec.harts << " harts)\n";
        if (auto f = workloads::runFuzzPrograms(rspec, seed, programs)) {
            std::cout << "reproduced: " << f->kind << " @ cycle "
                      << f->cycle << ": " << f->detail << "\n";
            return 1;
        }
        std::cout << "clean: the bundle no longer fails\n";
        return 0;
    }

    std::cout << "fuzzing " << seeds << " seeds from " << seed_base
              << " (" << spec.harts << " harts, " << spec.ops
              << " ops, " << spec.lines << " lines, jitter "
              << (spec.jitter ? "on" : "off") << ", " << jobs
              << " jobs";
    if (spec.crash_points > 0)
        std::cout << ", " << spec.crash_points << " crash points/seed";
    if (spec.crash_at != 0)
        std::cout << ", crash at cycle " << spec.crash_at;
    std::cout << ")\n";

    auto failure = workloads::runFuzz(spec, seed_base, seeds, jobs);
    if (!failure) {
        std::cout << "all " << seeds << " seeds clean\n";
        return 0;
    }

    std::cout << "seed " << failure->seed << " FAILED (" << failure->kind
              << " @ cycle " << failure->cycle << "): " << failure->detail
              << "\n";
    if (shrink) {
        const std::size_t before = [&] {
            std::size_t n = 0;
            for (const Program &p : failure->programs)
                n += p.size();
            return n;
        }();
        *failure = workloads::shrinkFuzzFailure(spec, *failure);
        std::size_t after = 0;
        for (const Program &p : failure->programs)
            after += p.size();
        std::cout << "shrunk " << before << " -> " << after
                  << " ops; now: " << failure->kind << " @ cycle "
                  << failure->cycle << ": " << failure->detail << "\n";
    }
    if (workloads::writeReplayBundle(spec, *failure, bundle_dir)) {
        std::cout << "replay bundle written to " << bundle_dir
                  << " (re-run: skipit-fuzz --replay " << bundle_dir
                  << ")\n";
    }
    return 1;
}
