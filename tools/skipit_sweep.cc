/**
 * @file
 * skipit-sweep: expand a sweep spec into independent simulation runs,
 * execute them on a thread pool, and emit one merged CSV.
 *
 *   skipit-sweep [--kind K] [--axis NAME=V1,V2,...]... [-j N]
 *                [--seed S] [-o FILE] [--text]
 *   skipit-sweep --spec FILE.json [-j N] [-o FILE] [--text]
 *
 * Options:
 *
 *   --kind K          measurement: cbo | wwr | redundant | throughput
 *                     (default: cbo)
 *   --axis NAME=...   add a grid axis (expansion order = CLI order,
 *                     last axis varies fastest); repeatable
 *   --spec FILE       read kind/seed/axes from a JSON file instead:
 *                     {"kind": "cbo", "seed": 0,
 *                      "axes": {"threads": [1,2], "bytes": [64,4096]}}
 *   -j N, --jobs N    worker threads (default: 1)
 *   --seed S          base RNG seed; run i uses S+i (throughput kind)
 *   -o FILE           write CSV to FILE (default: stdout)
 *   --text            render an aligned table instead of CSV
 *
 * Output rows are merged in grid order regardless of worker completion
 * order, so the CSV is byte-identical across runs at any -j.
 *
 * Example — Figure 9's full grid on 8 workers:
 *
 *   skipit-sweep --kind cbo --axis bytes=64,1024,4096,32768 \
 *                --axis threads=1,2,4,8 --axis flush=0,1 -j8 -o fig09.csv
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "workloads/sweep.hh"

using namespace skipit;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: skipit-sweep [--kind K] [--axis NAME=V1,V2]... "
                 "[--spec FILE.json]\n"
                 "                    [-j N] [--seed S] [-o FILE] "
                 "[--text]\n");
}

bool
parseAxis(const std::string &arg, workloads::SweepAxis &axis)
{
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size())
        return false;
    axis.name = arg.substr(0, eq);
    std::stringstream ss(arg.substr(eq + 1));
    std::string v;
    while (std::getline(ss, v, ','))
        axis.values.push_back(v);
    return !axis.values.empty();
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::SweepSpec spec;
    std::string spec_file;
    std::string out_file;
    unsigned jobs = 1;
    bool text = false;
    bool have_cli_grid = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--kind" && i + 1 < argc) {
            spec.kind = argv[++i];
            have_cli_grid = true;
        } else if (arg == "--axis" && i + 1 < argc) {
            workloads::SweepAxis axis;
            if (!parseAxis(argv[++i], axis)) {
                std::fprintf(stderr,
                             "error: --axis expects NAME=V1[,V2...]\n");
                return 1;
            }
            spec.axes.push_back(std::move(axis));
            have_cli_grid = true;
        } else if (arg == "--spec" && i + 1 < argc) {
            spec_file = argv[++i];
        } else if (arg.rfind("--spec=", 0) == 0) {
            spec_file = arg.substr(7);
        } else if ((arg == "-j" || arg == "--jobs") && i + 1 < argc) {
            jobs = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2 &&
                   arg[2] != 'o') {
            jobs = static_cast<unsigned>(std::stoul(arg.substr(2)));
        } else if (arg == "--seed" && i + 1 < argc) {
            spec.seed = std::stoull(argv[++i]);
            have_cli_grid = true;
        } else if (arg == "-o" && i + 1 < argc) {
            out_file = argv[++i];
        } else if (arg == "--text") {
            text = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            return 1;
        }
    }

    if (!spec_file.empty()) {
        if (have_cli_grid) {
            std::fprintf(stderr,
                         "error: --spec excludes --kind/--axis/--seed\n");
            return 1;
        }
        std::ifstream in(spec_file);
        if (!in) {
            std::fprintf(stderr, "error: cannot open %s\n",
                         spec_file.c_str());
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        try {
            spec = workloads::SweepSpec::fromJsonText(ss.str());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    }

    try {
        const std::size_t runs = workloads::expandGrid(spec).size();
        std::fprintf(stderr, "skipit-sweep: %zu run(s), kind %s, -j%u\n",
                     runs, spec.kind.c_str(), jobs);
        const ReportTable table = workloads::runSweep(spec, jobs);
        if (!out_file.empty()) {
            table.writeCsvFile(out_file);
            std::fprintf(stderr, "skipit-sweep: wrote %s\n",
                         out_file.c_str());
        } else if (text) {
            table.renderText(std::cout);
        } else {
            table.renderCsv(std::cout);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
