/**
 * @file
 * skipit-run: execute an assembly program on the simulated SoC.
 *
 *   skipit-run [options] <program.s> [<program2.s> ...]
 *
 * Each program file runs on its own hart (core i gets file i). Options:
 *
 *   --cores N        number of cores, 1-64 (default: number of programs)
 *   --slices N       number of address-interleaved L2 slices (default 1)
 *   --engine E       tick engine: serial (default) or parallel; both are
 *                    bit-identical (see docs/PARALLELISM.md)
 *   --workers N      parallel-engine thread count (0 = hw concurrency)
 *   --no-skipit      disable the Skip It skip bit and GrantDataDirty
 *   --trace CH[,CH]  enable trace channels (flush, l1, l2, all)
 *   --trace-out FILE write a Chrome trace-event JSON of every memory
 *                    transaction (open in chrome://tracing / Perfetto);
 *                    also prints per-stage latency histograms with --stats
 *   --stats          dump every counter at the end
 *   --stats-prefix P restrict --stats output to counters starting with P
 *   --peek ADDR      print the DRAM word at ADDR after the run
 *                    (repeatable)
 *
 * Example:
 *
 *   cat > wb.s <<'EOF'
 *   store     0x1000 42
 *   cbo.flush 0x1000
 *   fence
 *   EOF
 *   skipit-run --stats --peek 0x1000 wb.s
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/asm.hh"
#include "sim/trace.hh"
#include "sim/txn_tracer.hh"
#include "soc/soc.hh"

using namespace skipit;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: skipit-run [--cores N] [--slices N] "
                 "[--engine serial|parallel]\n"
                 "                  [--workers N] [--no-skipit] "
                 "[--trace CH[,CH]] [--stats]\n"
                 "                  [--stats-prefix P] "
                 "[--trace-out FILE] [--describe]\n"
                 "                  [--l2-policy inclusive|exclusive] "
                 "[--l2-index modulo|hashed]\n"
                 "                  [--l2-replace lru|fifo|random] "
                 "[--peek ADDR]... <program.s>...\n");
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        SKIPIT_FATAL("cannot open program file: ", path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned cores = 0;
    unsigned slices = 0;
    StateKind l2_policy = StateKind::Inclusive;
    IndexKind l2_index = IndexKind::Modulo;
    ReplaceKind l2_replace = ReplaceKind::Lru;
    unsigned workers = 0;
    Simulator::Engine engine = Simulator::Engine::serial;
    bool skip_it = true;
    bool dump_stats = false;
    bool describe = false;
    std::string trace_out;
    std::string stats_prefix;
    std::vector<Addr> peeks;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cores" && i + 1 < argc) {
            cores = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--slices" && i + 1 < argc) {
            slices = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--engine" && i + 1 < argc) {
            const std::string e = argv[++i];
            if (e == "serial") {
                engine = Simulator::Engine::serial;
            } else if (e == "parallel") {
                engine = Simulator::Engine::parallel;
            } else {
                std::fprintf(stderr,
                             "error: --engine must be serial or "
                             "parallel, got '%s'\n",
                             e.c_str());
                return 1;
            }
        } else if (arg == "--workers" && i + 1 < argc) {
            workers = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--l2-policy" && i + 1 < argc) {
            if (!stateKindFromString(argv[++i], l2_policy)) {
                std::fprintf(stderr, "error: --l2-policy must be "
                             "inclusive or exclusive, got '%s'\n",
                             argv[i]);
                return 1;
            }
        } else if (arg == "--l2-index" && i + 1 < argc) {
            if (!indexKindFromString(argv[++i], l2_index)) {
                std::fprintf(stderr, "error: --l2-index must be modulo "
                             "or hashed, got '%s'\n", argv[i]);
                return 1;
            }
        } else if (arg == "--l2-replace" && i + 1 < argc) {
            if (!replaceKindFromString(argv[++i], l2_replace)) {
                std::fprintf(stderr, "error: --l2-replace must be lru, "
                             "fifo or random, got '%s'\n", argv[i]);
                return 1;
            }
        } else if (arg == "--no-skipit") {
            skip_it = false;
        } else if (arg == "--trace" && i + 1 < argc) {
            std::stringstream ss(argv[++i]);
            std::string ch;
            while (std::getline(ss, ch, ','))
                trace::enable(ch);
        } else if (arg == "--trace-out" && i + 1 < argc) {
            trace_out = argv[++i];
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            trace_out = arg.substr(12);
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--stats-prefix" && i + 1 < argc) {
            stats_prefix = argv[++i];
            dump_stats = true;
        } else if (arg.rfind("--stats-prefix=", 0) == 0) {
            stats_prefix = arg.substr(15);
            dump_stats = true;
        } else if (arg == "--describe") {
            describe = true;
        } else if (arg == "--peek" && i + 1 < argc) {
            peeks.push_back(std::stoull(argv[++i], nullptr, 0));
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 1;
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty()) {
        usage();
        return 1;
    }

    SoCConfig cfg;
    cfg.cores = cores != 0 ? cores
                           : static_cast<unsigned>(files.size());
    if (cfg.cores < files.size()) {
        std::fprintf(stderr, "error: %zu programs but only %u cores\n",
                     files.size(), cfg.cores);
        return 1;
    }
    if (slices != 0)
        cfg.l2.slices = slices;
    cfg.l2.policy = l2_policy;
    cfg.l2.index = l2_index;
    cfg.l2.replace = l2_replace;
    cfg.engine = engine;
    cfg.workers = workers;
    cfg.withSkipIt(skip_it);
    SoC soc(cfg);
    if (describe)
        std::fputs(cfg.describe().c_str(), stdout);

    TxnTracer tracer;
    if (!trace_out.empty()) {
        soc.sim().probes().attach(tracer);
        soc.watchdog().setTracer(&tracer);
    }

    for (std::size_t i = 0; i < files.size(); ++i)
        soc.hart(static_cast<unsigned>(i))
            .setProgram(assembleProgram(readFile(files[i])));

    const Cycle cycles = soc.runToQuiescence();
    std::printf("completed in %llu cycles (%u cores, skip-it %s)\n",
                static_cast<unsigned long long>(cycles), cfg.cores,
                skip_it ? "on" : "off");

    for (const Addr a : peeks) {
        std::printf("dram[0x%llx] = 0x%llx\n",
                    static_cast<unsigned long long>(a),
                    static_cast<unsigned long long>(
                        soc.dram().peekWord(a)));
    }
    if (!trace_out.empty() && tracer.writeChromeTraceFile(trace_out)) {
        std::printf("wrote %zu trace events to %s\n",
                    tracer.eventCount(), trace_out.c_str());
    }
    if (dump_stats) {
        if (stats_prefix.empty())
            soc.stats().dump(std::cout);
        else
            soc.stats().dumpPrefix(std::cout, stats_prefix);
        if (!trace_out.empty()) {
            std::printf("\nper-stage latency histograms (cycles):\n");
            tracer.dumpHistograms(std::cout);
        }
    }
    return 0;
}
