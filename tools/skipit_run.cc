/**
 * @file
 * skipit-run: execute an assembly program on the simulated SoC.
 *
 *   skipit-run [options] <program.s> [<program2.s> ...]
 *
 * Each program file runs on its own hart (core i gets file i). Options:
 *
 *   --cores N        number of cores (default: number of programs)
 *   --no-skipit      disable the Skip It skip bit and GrantDataDirty
 *   --trace CH[,CH]  enable trace channels (flush, l1, l2, all)
 *   --stats          dump every counter at the end
 *   --peek ADDR      print the DRAM word at ADDR after the run
 *                    (repeatable)
 *
 * Example:
 *
 *   cat > wb.s <<'EOF'
 *   store     0x1000 42
 *   cbo.flush 0x1000
 *   fence
 *   EOF
 *   skipit-run --stats --peek 0x1000 wb.s
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/asm.hh"
#include "sim/trace.hh"
#include "soc/soc.hh"

using namespace skipit;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: skipit-run [--cores N] [--no-skipit] "
                 "[--trace CH[,CH]] [--stats]\n"
                 "                  [--describe] [--peek ADDR]... "
                 "<program.s>...\n");
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        SKIPIT_FATAL("cannot open program file: ", path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned cores = 0;
    bool skip_it = true;
    bool dump_stats = false;
    bool describe = false;
    std::vector<Addr> peeks;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cores" && i + 1 < argc) {
            cores = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--no-skipit") {
            skip_it = false;
        } else if (arg == "--trace" && i + 1 < argc) {
            std::stringstream ss(argv[++i]);
            std::string ch;
            while (std::getline(ss, ch, ','))
                trace::enable(ch);
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--describe") {
            describe = true;
        } else if (arg == "--peek" && i + 1 < argc) {
            peeks.push_back(std::stoull(argv[++i], nullptr, 0));
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 1;
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty()) {
        usage();
        return 1;
    }

    SoCConfig cfg;
    cfg.cores = cores != 0 ? cores
                           : static_cast<unsigned>(files.size());
    if (cfg.cores < files.size()) {
        std::fprintf(stderr, "error: %zu programs but only %u cores\n",
                     files.size(), cfg.cores);
        return 1;
    }
    cfg.withSkipIt(skip_it);
    SoC soc(cfg);
    if (describe)
        std::fputs(cfg.describe().c_str(), stdout);

    for (std::size_t i = 0; i < files.size(); ++i)
        soc.hart(static_cast<unsigned>(i))
            .setProgram(assembleProgram(readFile(files[i])));

    const Cycle cycles = soc.runToQuiescence();
    std::printf("completed in %llu cycles (%u cores, skip-it %s)\n",
                static_cast<unsigned long long>(cycles), cfg.cores,
                skip_it ? "on" : "off");

    for (const Addr a : peeks) {
        std::printf("dram[0x%llx] = 0x%llx\n",
                    static_cast<unsigned long long>(a),
                    static_cast<unsigned long long>(
                        soc.dram().peekWord(a)));
    }
    if (dump_stats)
        soc.stats().dump(std::cout);
    return 0;
}
