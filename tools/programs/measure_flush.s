; Measure a warmed single-line flush round trip with RDCYCLE markers
; (the paper's §7.1 methodology). Run with --stats to see the counters.
store     0x2000 7
fence
rdcycle   1
cbo.flush 0x2000
fence
rdcycle   2
