; Core 1: flush lines that core 0 dirtied (exercises the L2's recursive
; probing of other owners, paper §5.5).
store     0x20000 9
cbo.flush 0x10000
cbo.clean 0x20000
fence
