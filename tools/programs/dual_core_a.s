; Core 0 of a dual-core writeback demo: dirty a region and flush it.
; Run: skipit-run tools/programs/dual_core_a.s tools/programs/dual_core_b.s
store     0x10000 1
store     0x10040 2
store     0x10080 3
cbo.flush 0x10000
cbo.flush 0x10040
cbo.flush 0x10080
fence
