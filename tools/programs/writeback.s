; Persist one value: the quickstart in assembly form.
; Run: skipit-run --stats --peek 0x1000 tools/programs/writeback.s
store     0x1000 42
cbo.flush 0x1000
fence
