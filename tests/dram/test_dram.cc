/**
 * @file
 * Unit tests for the DRAM controller and its functional backing store.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "dram/dram.hh"

namespace skipit {
namespace {

class DramTest : public ::testing::Test
{
  protected:
    Simulator sim;
    Stats stats;
    DramConfig cfg{};

    std::unique_ptr<Dram> make()
    {
        auto d = std::make_unique<Dram>("dram", sim, cfg, stats);
        sim.add(*d);
        return d;
    }

    static LineData
    pattern(std::uint8_t seed)
    {
        LineData d{};
        for (unsigned i = 0; i < line_bytes; ++i)
            d[i] = static_cast<std::uint8_t>(seed + i);
        return d;
    }
};

TEST_F(DramTest, ReadOfUntouchedMemoryIsZero)
{
    auto d = make();
    MemReq req;
    req.addr = 0x4000;
    req.tag = 9;
    d->submit(req);
    sim.runUntil([&] { return d->respReady(); });
    const MemResp resp = d->popResp();
    EXPECT_EQ(resp.tag, 9u);
    EXPECT_FALSE(resp.write);
    EXPECT_EQ(resp.data, LineData{});
}

TEST_F(DramTest, WriteThenReadRoundTrips)
{
    auto d = make();
    MemReq w;
    w.write = true;
    w.addr = 0x8000;
    w.data = pattern(3);
    w.tag = 1;
    d->submit(w);
    sim.runUntil([&] { return d->respReady(); });
    EXPECT_TRUE(d->popResp().write);

    MemReq r;
    r.addr = 0x8000;
    r.tag = 2;
    d->submit(r);
    sim.runUntil([&] { return d->respReady(); });
    EXPECT_EQ(d->popResp().data, pattern(3));
}

TEST_F(DramTest, LatencyMatchesConfig)
{
    cfg.latency = 25;
    auto d = make();
    MemReq req;
    req.addr = 0;
    d->submit(req);
    const Cycle start = sim.now();
    sim.runUntil([&] { return d->respReady(); });
    // The request issues in the tick following submission; the response
    // becomes visible exactly `latency` cycles after that.
    EXPECT_EQ(sim.now() - start, 25u);
}

TEST_F(DramTest, IssueIntervalThrottlesBandwidth)
{
    cfg.issue_interval = 4;
    auto d = make();
    for (int i = 0; i < 3; ++i) {
        MemReq req;
        req.addr = static_cast<Addr>(i) * line_bytes;
        req.tag = static_cast<std::uint64_t>(i);
        d->submit(req);
    }
    std::vector<Cycle> arrivals;
    while (arrivals.size() < 3) {
        sim.runUntil([&] { return d->respReady(); });
        while (d->respReady()) {
            d->popResp();
            arrivals.push_back(sim.now());
        }
    }
    EXPECT_EQ(arrivals[1] - arrivals[0], 4u);
    EXPECT_EQ(arrivals[2] - arrivals[1], 4u);
}

TEST_F(DramTest, CanAcceptReflectsQueueCapacity)
{
    cfg.max_inflight = 2;
    cfg.issue_interval = 100; // keep requests queued
    auto d = make();
    MemReq req;
    EXPECT_TRUE(d->canAccept());
    d->submit(req);
    d->submit(req);
    EXPECT_FALSE(d->canAccept());
}

TEST_F(DramTest, PeekAndPokeBypassTiming)
{
    auto d = make();
    d->pokeLine(0x1000, pattern(7));
    EXPECT_EQ(d->peekLine(0x1000), pattern(7));
    EXPECT_EQ(d->peekLine(0x1008), pattern(7)); // same line
    std::uint64_t expected = 0;
    LineData p = pattern(7);
    std::memcpy(&expected, p.data(), 8);
    EXPECT_EQ(d->peekWord(0x1000), expected);
}

TEST_F(DramTest, StatsCountReadsAndWrites)
{
    auto d = make();
    MemReq r;
    d->submit(r);
    MemReq w;
    w.write = true;
    d->submit(w);
    EXPECT_EQ(stats.get("dram.reads"), 1u);
    EXPECT_EQ(stats.get("dram.writes"), 1u);
}

} // namespace
} // namespace skipit
