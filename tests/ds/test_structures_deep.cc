/**
 * @file
 * Structure-specific tests beyond the differential suite: hash-table
 * bucket behaviour, skiplist tower determinism, BST shape and helping
 * paths, list ordering, and sustained churn.
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "ds/bst.hh"
#include "ds/hash_table.hh"
#include "ds/linked_list.hh"
#include "ds/skiplist.hh"
#include "sim/random.hh"

namespace skipit {
namespace {

struct Rig
{
    MemSim mem{NvmConfig{}};
    PersistCtx ctx{mem, PersistConfig{}};
};

TEST(LinkedListDeep, AscendingDescendingAndInterleavedInserts)
{
    Rig r;
    LinkedList l(r.ctx);
    for (std::uint64_t k = 1; k <= 40; k += 2)
        EXPECT_TRUE(l.insert(0, k)); // odds ascending
    for (std::uint64_t k = 40; k >= 2; k -= 2)
        EXPECT_TRUE(l.insert(0, k)); // evens descending
    EXPECT_EQ(l.sizeSlow(), 40u);
    for (std::uint64_t k = 1; k <= 40; ++k)
        EXPECT_TRUE(l.contains(0, k)) << k;
    EXPECT_FALSE(l.contains(0, 41));
}

TEST(LinkedListDeep, RemoveHeadMiddleTail)
{
    Rig r;
    LinkedList l(r.ctx);
    for (std::uint64_t k : {10, 20, 30})
        l.insert(0, k);
    EXPECT_TRUE(l.remove(0, 10)); // head
    EXPECT_TRUE(l.remove(0, 30)); // tail
    EXPECT_TRUE(l.remove(0, 20)); // last
    EXPECT_EQ(l.sizeSlow(), 0u);
    EXPECT_TRUE(l.insert(0, 20)); // reusable after emptying
}

TEST(LinkedListDeep, ChurnOnSingleKey)
{
    Rig r;
    LinkedList l(r.ctx);
    for (int i = 0; i < 500; ++i) {
        EXPECT_TRUE(l.insert(0, 7));
        EXPECT_TRUE(l.remove(0, 7));
    }
    EXPECT_EQ(l.sizeSlow(), 0u);
}

TEST(HashTableDeep, KeysSpreadAcrossBuckets)
{
    Rig r;
    HashTable h(r.ctx, 16);
    for (std::uint64_t k = 1; k <= 256; ++k)
        ASSERT_TRUE(h.insert(0, k));
    EXPECT_EQ(h.sizeSlow(), 256u);
    // With a mixing hash, any decent spread puts multiple keys in every
    // bucket; verify via removal of every key (exercises all buckets).
    for (std::uint64_t k = 1; k <= 256; ++k)
        EXPECT_TRUE(h.remove(0, k)) << k;
    EXPECT_EQ(h.sizeSlow(), 0u);
}

TEST(HashTableDeep, SingleBucketDegradesToList)
{
    Rig r;
    HashTable h(r.ctx, 1); // all keys collide
    for (std::uint64_t k = 1; k <= 64; ++k)
        ASSERT_TRUE(h.insert(0, k));
    for (std::uint64_t k = 1; k <= 64; ++k)
        EXPECT_TRUE(h.contains(0, k));
    EXPECT_EQ(h.sizeSlow(), 64u);
}

TEST(SkipListDeep, TowerHeightsAreDeterministicPerKey)
{
    // levelFor is hash-derived: the same key always gets the same tower,
    // so runs are reproducible. Verify indirectly: two separately built
    // skiplists over the same keys behave identically for a probe set.
    Rig r1, r2;
    SkipList a(r1.ctx), b(r2.ctx);
    Rng rng(3);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 300; ++i)
        keys.push_back(1 + rng.below(5000));
    for (std::uint64_t k : keys) {
        EXPECT_EQ(a.insert(0, k), b.insert(0, k)) << k;
    }
    EXPECT_EQ(a.sizeSlow(), b.sizeSlow());
}

TEST(SkipListDeep, LargePopulationStaysSearchable)
{
    Rig r;
    SkipList s(r.ctx);
    std::set<std::uint64_t> ref;
    Rng rng(11);
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t k = 1 + rng.below(100000);
        EXPECT_EQ(s.insert(0, k), ref.insert(k).second);
    }
    EXPECT_EQ(s.sizeSlow(), ref.size());
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t k = 1 + rng.below(100000);
        EXPECT_EQ(s.contains(0, k), ref.count(k) == 1) << k;
    }
}

TEST(BstDeep, DegenerateAscendingInsertStillCorrect)
{
    Rig r;
    Bst t(r.ctx);
    // External BSTs do not rebalance; an ascending insert builds the
    // worst-case spine but must stay correct.
    for (std::uint64_t k = 1; k <= 200; ++k)
        ASSERT_TRUE(t.insert(0, k));
    EXPECT_EQ(t.sizeSlow(), 200u);
    for (std::uint64_t k = 1; k <= 200; ++k)
        EXPECT_TRUE(t.contains(0, k));
    // Remove every other, then verify the survivors.
    for (std::uint64_t k = 1; k <= 200; k += 2)
        EXPECT_TRUE(t.remove(0, k));
    for (std::uint64_t k = 1; k <= 200; ++k)
        EXPECT_EQ(t.contains(0, k), k % 2 == 0) << k;
}

TEST(BstDeep, RemoveDownToEmptyAndRebuild)
{
    Rig r;
    Bst t(r.ctx);
    for (std::uint64_t k : {50, 25, 75, 10, 30, 60, 90})
        ASSERT_TRUE(t.insert(0, k));
    for (std::uint64_t k : {50, 25, 75, 10, 30, 60, 90})
        EXPECT_TRUE(t.remove(0, k)) << k;
    EXPECT_EQ(t.sizeSlow(), 0u);
    for (std::uint64_t k : {1, 2, 3})
        EXPECT_TRUE(t.insert(0, k));
    EXPECT_EQ(t.sizeSlow(), 3u);
}

TEST(BstDeep, RemoveRootKeyRepeatedly)
{
    Rig r;
    Bst t(r.ctx);
    // The first inserted key sits right under the sentinels; deleting it
    // exercises the ancestor == S cleanup path.
    for (int round = 0; round < 50; ++round) {
        ASSERT_TRUE(t.insert(0, 42));
        ASSERT_TRUE(t.remove(0, 42));
    }
    EXPECT_EQ(t.sizeSlow(), 0u);
}

TEST(StressDeep, FourThreadsOnFourCoreMachine)
{
    NvmConfig cfg;
    cfg.cores = 4;
    MemSim mem(cfg);
    PersistConfig pcfg;
    pcfg.mode = PersistMode::NvTraverse;
    PersistCtx ctx(mem, pcfg);
    SkipList s(ctx);

    constexpr unsigned threads = 4;
    std::array<std::int64_t, threads> net{};
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            Rng rng(500 + t);
            for (int i = 0; i < 2500; ++i) {
                const std::uint64_t key = 1 + rng.below(400);
                if (rng.chance(0.5)) {
                    if (s.insert(t, key))
                        net[t]++;
                } else {
                    if (s.remove(t, key))
                        net[t]--;
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();
    std::int64_t expected = 0;
    for (auto n : net)
        expected += n;
    ASSERT_GE(expected, 0);
    EXPECT_EQ(s.sizeSlow(), static_cast<std::size_t>(expected));
}

TEST(StressDeep, MixedStructuresShareOneMemSim)
{
    // Two different structures over the same memory model: their cache
    // footprints interact but correctness is independent.
    Rig r;
    LinkedList l(r.ctx);
    Bst t(r.ctx);
    Rng rng(9);
    std::set<std::uint64_t> lref, tref;
    for (int i = 0; i < 1500; ++i) {
        const std::uint64_t k = 1 + rng.below(300);
        if (rng.chance(0.5)) {
            EXPECT_EQ(l.insert(0, k), lref.insert(k).second);
        } else {
            EXPECT_EQ(t.insert(0, k), tref.insert(k).second);
        }
    }
    EXPECT_EQ(l.sizeSlow(), lref.size());
    EXPECT_EQ(t.sizeSlow(), tref.size());
}

} // namespace
} // namespace skipit
