/**
 * @file
 * Correctness tests of the four lock-free sets: randomized differential
 * testing against std::set, across every (policy x mode) combination, plus
 * multi-threaded stress with invariant checks.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>

#include "ds/bst.hh"
#include "ds/hash_table.hh"
#include "ds/linked_list.hh"
#include "ds/skiplist.hh"
#include "sim/random.hh"

namespace skipit {
namespace {

enum class DsKind { List, Hash, Bst, Skip };

const char *
kindName(DsKind k)
{
    switch (k) {
      case DsKind::List:
        return "list";
      case DsKind::Hash:
        return "hash";
      case DsKind::Bst:
        return "bst";
      default:
        return "skip";
    }
}

std::unique_ptr<PersistentSet>
makeSet(DsKind k, PersistCtx &ctx)
{
    switch (k) {
      case DsKind::List:
        return std::make_unique<LinkedList>(ctx);
      case DsKind::Hash:
        return std::make_unique<HashTable>(ctx, 64);
      case DsKind::Bst:
        return std::make_unique<Bst>(ctx);
      default:
        return std::make_unique<SkipList>(ctx);
    }
}

std::size_t
sizeSlow(DsKind k, PersistentSet &s)
{
    switch (k) {
      case DsKind::List:
        return static_cast<LinkedList &>(s).sizeSlow();
      case DsKind::Hash:
        return static_cast<HashTable &>(s).sizeSlow();
      case DsKind::Bst:
        return static_cast<Bst &>(s).sizeSlow();
      default:
        return static_cast<SkipList &>(s).sizeSlow();
    }
}

using Combo = std::tuple<DsKind, FlushPolicy, PersistMode>;

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    const auto [kind, policy, mode] = info.param;
    std::string s = std::string(kindName(kind)) + "_" + toString(policy) +
                    "_" + toString(mode);
    for (char &c : s) {
        if (c == '-')
            c = '_';
    }
    return s;
}

class SetCombo : public ::testing::TestWithParam<Combo>
{
  protected:
    void
    SetUp() override
    {
        const auto [kind, policy, mode] = GetParam();
        // The paper notes link-and-persist cannot be applied to the BST
        // (it uses spare pointer bits, §7.4); skip that combination.
        if (kind == DsKind::Bst && policy == FlushPolicy::LinkAndPersist)
            GTEST_SKIP() << "L&P is not applicable to the BST";
        mem_ = std::make_unique<MemSim>(PersistCtx::machineFor(policy));
        PersistConfig pcfg;
        pcfg.policy = policy;
        pcfg.mode = mode;
        pcfg.flit_table_entries = 1 << 12;
        ctx_ = std::make_unique<PersistCtx>(*mem_, pcfg);
        set_ = makeSet(kind, *ctx_);
    }

    std::unique_ptr<MemSim> mem_;
    std::unique_ptr<PersistCtx> ctx_;
    std::unique_ptr<PersistentSet> set_;
};

TEST_P(SetCombo, MatchesReferenceSetUnderRandomOps)
{
    const auto kind = std::get<0>(GetParam());
    std::set<std::uint64_t> ref;
    Rng rng(42);
    const std::uint64_t key_range = kind == DsKind::List ? 64 : 512;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t key = 1 + rng.below(key_range);
        const double dice = rng.uniform();
        if (dice < 0.4) {
            EXPECT_EQ(set_->insert(0, key), ref.insert(key).second)
                << "insert " << key << " at op " << i;
        } else if (dice < 0.8) {
            EXPECT_EQ(set_->remove(0, key), ref.erase(key) == 1)
                << "remove " << key << " at op " << i;
        } else {
            EXPECT_EQ(set_->contains(0, key), ref.count(key) == 1)
                << "contains " << key << " at op " << i;
        }
    }
    EXPECT_EQ(sizeSlow(kind, *set_), ref.size());
    for (std::uint64_t key = 1; key <= key_range; ++key) {
        EXPECT_EQ(set_->contains(0, key), ref.count(key) == 1)
            << "final contains " << key;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SetCombo,
    ::testing::Combine(
        ::testing::Values(DsKind::List, DsKind::Hash, DsKind::Bst,
                          DsKind::Skip),
        ::testing::Values(FlushPolicy::Plain, FlushPolicy::FlitAdjacent,
                          FlushPolicy::FlitHashTable,
                          FlushPolicy::LinkAndPersist, FlushPolicy::SkipIt),
        ::testing::Values(PersistMode::NonPersistent, PersistMode::Automatic,
                          PersistMode::NvTraverse, PersistMode::Manual)),
    comboName);

/** Multi-threaded stress: net size bookkeeping must match the structure. */
class SetStress : public ::testing::TestWithParam<std::tuple<DsKind,
                                                             FlushPolicy>>
{
};

TEST_P(SetStress, TwoThreadsKeepNetCountConsistent)
{
    const auto [kind, policy] = GetParam();
    if (kind == DsKind::Bst && policy == FlushPolicy::LinkAndPersist)
        GTEST_SKIP() << "L&P is not applicable to the BST";
    MemSim mem{PersistCtx::machineFor(policy)};
    PersistConfig pcfg;
    pcfg.policy = policy;
    pcfg.mode = PersistMode::NvTraverse;
    pcfg.flit_table_entries = 1 << 12;
    PersistCtx ctx(mem, pcfg);
    auto set = makeSet(kind, ctx);

    constexpr unsigned threads = 2;
    constexpr int ops = 4000;
    std::array<std::int64_t, threads> net{};
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            Rng rng(1000 + t);
            const std::uint64_t key_range =
                kind == DsKind::List ? 48 : 256;
            for (int i = 0; i < ops; ++i) {
                const std::uint64_t key = 1 + rng.below(key_range);
                if (rng.chance(0.5)) {
                    if (set->insert(t, key))
                        net[t]++;
                } else {
                    if (set->remove(t, key))
                        net[t]--;
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();

    const std::int64_t expected = net[0] + net[1];
    ASSERT_GE(expected, 0);
    EXPECT_EQ(sizeSlow(kind, *set),
              static_cast<std::size_t>(expected));
}

INSTANTIATE_TEST_SUITE_P(
    Stress, SetStress,
    ::testing::Combine(
        ::testing::Values(DsKind::List, DsKind::Hash, DsKind::Bst,
                          DsKind::Skip),
        ::testing::Values(FlushPolicy::Plain, FlushPolicy::LinkAndPersist,
                          FlushPolicy::SkipIt)),
    [](const ::testing::TestParamInfo<std::tuple<DsKind, FlushPolicy>> &i) {
        std::string s = std::string(kindName(std::get<0>(i.param))) + "_" +
                        toString(std::get<1>(i.param));
        for (char &c : s) {
            if (c == '-')
                c = '_';
        }
        return s;
    });

TEST(SetEdge, ListRejectsDuplicateInsert)
{
    MemSim mem{NvmConfig{}};
    PersistCtx ctx(mem, PersistConfig{});
    LinkedList list(ctx);
    EXPECT_TRUE(list.insert(0, 10));
    EXPECT_FALSE(list.insert(0, 10));
    EXPECT_TRUE(list.contains(0, 10));
    EXPECT_TRUE(list.remove(0, 10));
    EXPECT_FALSE(list.remove(0, 10));
    EXPECT_FALSE(list.contains(0, 10));
}

TEST(SetEdge, BoundaryKeysWork)
{
    MemSim mem{NvmConfig{}};
    PersistCtx ctx(mem, PersistConfig{});
    Bst bst(ctx);
    EXPECT_TRUE(bst.insert(0, 1));
    EXPECT_TRUE(bst.insert(0, max_user_key));
    EXPECT_TRUE(bst.contains(0, 1));
    EXPECT_TRUE(bst.contains(0, max_user_key));
    EXPECT_TRUE(bst.remove(0, 1));
    EXPECT_TRUE(bst.remove(0, max_user_key));
    EXPECT_EQ(bst.sizeSlow(), 0u);
}

TEST(SetEdge, SkiplistAscendingAndDescendingInserts)
{
    MemSim mem{NvmConfig{}};
    PersistCtx ctx(mem, PersistConfig{});
    SkipList sl(ctx);
    for (std::uint64_t k = 1; k <= 100; ++k)
        EXPECT_TRUE(sl.insert(0, k));
    for (std::uint64_t k = 200; k > 100; --k)
        EXPECT_TRUE(sl.insert(0, k));
    EXPECT_EQ(sl.sizeSlow(), 200u);
    for (std::uint64_t k = 1; k <= 200; ++k)
        EXPECT_TRUE(sl.contains(0, k));
}

} // namespace
} // namespace skipit
