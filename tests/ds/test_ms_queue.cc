/**
 * @file
 * Tests for the persistent Michael-Scott queue: FIFO semantics,
 * multi-threaded uniqueness, and durable crash recovery across policies.
 */

#include <gtest/gtest.h>

#include <deque>
#include <thread>

#include "ds/ms_queue.hh"
#include "sim/random.hh"

namespace skipit {
namespace {

struct Rig
{
    MemSim mem;
    PersistCtx ctx;
    Rig(FlushPolicy p = FlushPolicy::Plain,
        PersistMode m = PersistMode::NvTraverse)
        : mem(PersistCtx::machineFor(p)),
          ctx(mem, PersistConfig{p, m, std::size_t{1} << 12, true})
    {
    }
};

TEST(MsQueue, FifoOrderSingleThread)
{
    Rig r;
    MsQueue q(r.ctx);
    for (std::uint64_t v = 100; v < 150; ++v)
        q.enqueue(0, v);
    EXPECT_EQ(q.sizeSlow(), 50u);
    for (std::uint64_t v = 100; v < 150; ++v) {
        std::uint64_t out = 0;
        ASSERT_TRUE(q.dequeue(0, out));
        EXPECT_EQ(out, v);
    }
    std::uint64_t out = 0;
    EXPECT_FALSE(q.dequeue(0, out));
}

TEST(MsQueue, InterleavedEnqueueDequeue)
{
    Rig r;
    MsQueue q(r.ctx);
    std::deque<std::uint64_t> ref;
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        if (rng.chance(0.6)) {
            const std::uint64_t v = rng.next() >> 3;
            q.enqueue(0, v);
            ref.push_back(v);
        } else {
            std::uint64_t out = 0;
            const bool got = q.dequeue(0, out);
            EXPECT_EQ(got, !ref.empty());
            if (got) {
                EXPECT_EQ(out, ref.front());
                ref.pop_front();
            }
        }
    }
    EXPECT_EQ(q.sizeSlow(), ref.size());
}

TEST(MsQueue, TwoThreadsDequeueEachValueExactlyOnce)
{
    Rig r;
    MsQueue q(r.ctx);
    constexpr int per_thread = 2000;
    std::array<std::vector<std::uint64_t>, 2> got;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < 2; ++t) {
        workers.emplace_back([&, t] {
            // Each thread enqueues a disjoint tagged range and dequeues
            // whatever comes out.
            for (int i = 0; i < per_thread; ++i) {
                q.enqueue(t, (static_cast<std::uint64_t>(t) << 32) |
                                 static_cast<std::uint64_t>(i));
                std::uint64_t out = 0;
                if (q.dequeue(t, out))
                    got[t].push_back(out);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    // Drain the rest single-threaded.
    std::uint64_t out = 0;
    while (q.dequeue(0, out))
        got[0].push_back(out);

    std::vector<std::uint64_t> all;
    for (const auto &v : got)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    EXPECT_EQ(all.size(), 2u * per_thread);
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
        << "a value was dequeued twice";
}

class MsQueueCrash : public ::testing::TestWithParam<FlushPolicy>
{
};

TEST_P(MsQueueCrash, RecoversExactlyTheCommittedState)
{
    const FlushPolicy policy = GetParam();
    Rig r(policy, PersistMode::NvTraverse);
    MsQueue q(r.ctx);
    std::deque<std::uint64_t> ref;
    Rng rng(31);
    for (int i = 0; i < 120; ++i) {
        if (rng.chance(0.65)) {
            const std::uint64_t v = 1 + (rng.next() >> 3);
            q.enqueue(0, v);
            ref.push_back(v);
        } else {
            std::uint64_t out = 0;
            if (q.dequeue(0, out)) {
                ASSERT_EQ(out, ref.front());
                ref.pop_front();
            }
        }
    }

    r.ctx.crash();

    EXPECT_EQ(q.sizeSlow(), ref.size()) << toString(policy);
    for (const std::uint64_t expect : ref) {
        std::uint64_t out = 0;
        ASSERT_TRUE(q.dequeue(0, out)) << toString(policy);
        EXPECT_EQ(out, expect) << toString(policy);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MsQueueCrash,
    ::testing::Values(FlushPolicy::Plain, FlushPolicy::FlitAdjacent,
                      FlushPolicy::FlitHashTable,
                      FlushPolicy::LinkAndPersist, FlushPolicy::SkipIt),
    [](const ::testing::TestParamInfo<FlushPolicy> &info) {
        std::string s = toString(info.param);
        for (char &c : s) {
            if (c == '-')
                c = '_';
        }
        return s;
    });

} // namespace
} // namespace skipit
