/**
 * @file
 * Mid-operation crash recovery for all five persistent structures: arm a
 * power failure at every writeback boundary *inside* an insert / remove /
 * enqueue / dequeue, restore the durable state, and require durable
 * linearizability — every acknowledged operation survives, the in-flight
 * operation either fully happened or fully didn't, and no zero-filled
 * zombie node is reachable (the persistInitRange hazard: publishing a
 * node whose contents never reached memory).
 *
 * This is the fine-grained counterpart of tests/nvm/test_crash_recovery.cc,
 * which only crashes *between* operations.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "ds/bst.hh"
#include "ds/hash_table.hh"
#include "ds/linked_list.hh"
#include "ds/ms_queue.hh"
#include "ds/skiplist.hh"

namespace skipit {
namespace {

enum class DsKind { List, Hash, Bst, Skip };

const char *
kindName(DsKind k)
{
    switch (k) {
      case DsKind::List:
        return "list";
      case DsKind::Hash:
        return "hash";
      case DsKind::Bst:
        return "bst";
      default:
        return "skip";
    }
}

std::unique_ptr<PersistentSet>
makeSet(DsKind k, PersistCtx &ctx)
{
    switch (k) {
      case DsKind::List:
        return std::make_unique<LinkedList>(ctx);
      case DsKind::Hash:
        return std::make_unique<HashTable>(ctx, 32);
      case DsKind::Bst:
        return std::make_unique<Bst>(ctx);
      default:
        return std::make_unique<SkipList>(ctx);
    }
}

std::size_t
sizeSlow(DsKind k, PersistentSet &s)
{
    switch (k) {
      case DsKind::List:
        return static_cast<LinkedList &>(s).sizeSlow();
      case DsKind::Hash:
        return static_cast<HashTable &>(s).sizeSlow();
      case DsKind::Bst:
        return static_cast<Bst &>(s).sizeSlow();
      default:
        return static_cast<SkipList &>(s).sizeSlow();
    }
}

using Combo = std::tuple<DsKind, FlushPolicy, PersistMode>;

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    const auto [kind, policy, mode] = info.param;
    std::string s = std::string(kindName(kind)) + "_" + toString(policy) +
                    "_" + toString(mode);
    for (char &c : s) {
        if (c == '-')
            c = '_';
    }
    return s;
}

constexpr std::uint64_t key_range = 40;   //!< baseline keys live in [1, 40]
constexpr std::uint64_t target_key = 41;  //!< the in-flight insert's key
constexpr unsigned max_crash_points = 400; //!< sweep runaway guard

struct SetRig
{
    MemSim mem;
    PersistCtx ctx;
    std::unique_ptr<PersistentSet> set;
    std::set<std::uint64_t> ref;

    SetRig(DsKind kind, FlushPolicy policy, PersistMode mode)
        : mem(PersistCtx::machineFor(policy)),
          ctx(mem, PersistConfig{policy, mode, std::size_t{1} << 12, true})
    {
        set = makeSet(kind, ctx);
        // Deterministic baseline: every op below completes (and is thus
        // acknowledged and durable) before the crash epoch starts.
        for (std::uint64_t k = 1; k <= key_range; k += 2) {
            EXPECT_TRUE(set->insert(0, k));
            ref.insert(k);
        }
        for (std::uint64_t k = 1; k <= key_range; k += 6) {
            EXPECT_TRUE(set->remove(0, k));
            ref.erase(k);
        }
    }
};

/**
 * After crash(): every acked key present, every absent key absent, the
 * in-flight key atomic (whatever contains() says, sizeSlow() agrees — a
 * zero-filled zombie would either break traversal or skew the count),
 * and the structure still fully usable.
 */
void
checkRecovered(DsKind kind, SetRig &r, std::uint64_t inflight,
               bool inflight_was_insert, const char *what)
{
    // inflight == 0 means no operation was in flight (post-sweep check).
    const bool has_inflight =
        inflight != 0 && r.set->contains(0, inflight);
    if (!inflight_was_insert) {
        // In-flight remove: the key either survived or was removed.
        std::set<std::uint64_t> without = r.ref;
        without.erase(inflight);
        EXPECT_EQ(sizeSlow(kind, *r.set),
                  has_inflight ? r.ref.size() : without.size())
            << what;
    } else {
        EXPECT_EQ(sizeSlow(kind, *r.set),
                  r.ref.size() + (has_inflight ? 1 : 0))
            << what;
    }
    for (std::uint64_t k = 1; k <= key_range; ++k) {
        if (k == inflight)
            continue;
        EXPECT_EQ(r.set->contains(0, k), r.ref.count(k) == 1)
            << what << " key " << k;
    }
    // Usability after recovery (also walks the structure, so a zombie
    // node with a zeroed key or link would trip the traversal asserts).
    const std::uint64_t fresh = key_range + 2;
    EXPECT_TRUE(r.set->insert(0, fresh)) << what;
    EXPECT_TRUE(r.set->contains(0, fresh)) << what;
    EXPECT_TRUE(r.set->remove(0, fresh)) << what;
}

class MidOpCrash : public ::testing::TestWithParam<Combo>
{
};

TEST_P(MidOpCrash, InsertCrashedAtEveryWritebackIsAtomic)
{
    const auto [kind, policy, mode] = GetParam();
    if (kind == DsKind::Bst && policy == FlushPolicy::LinkAndPersist)
        GTEST_SKIP() << "L&P is not applicable to the BST";

    unsigned n = 1;
    for (; n <= max_crash_points; ++n) {
        SetRig r(kind, policy, mode);
        r.ctx.armCrashAfter(n);
        bool crashed = false;
        try {
            EXPECT_TRUE(r.set->insert(0, target_key));
        } catch (const PersistCtx::CrashInjected &) {
            crashed = true;
        }
        r.ctx.armCrashAfter(0);
        if (!crashed) {
            // The op has fewer than n writebacks: the sweep visited
            // every persist boundary. The completed insert must stick.
            r.ctx.crash();
            r.ref.insert(target_key);
            checkRecovered(kind, r, 0, true, "post-sweep");
            break;
        }
        r.ctx.crash();
        checkRecovered(kind, r, target_key, true, "insert crash");
    }
    EXPECT_LE(n, max_crash_points)
        << "insert never completed within the crash-point sweep";
}

TEST_P(MidOpCrash, RemoveCrashedAtEveryWritebackIsAtomic)
{
    const auto [kind, policy, mode] = GetParam();
    if (kind == DsKind::Bst && policy == FlushPolicy::LinkAndPersist)
        GTEST_SKIP() << "L&P is not applicable to the BST";

    const std::uint64_t victim = 3; // odd, not divisible by 6 offset:
                                    // present in every baseline
    unsigned n = 1;
    for (; n <= max_crash_points; ++n) {
        SetRig r(kind, policy, mode);
        ASSERT_EQ(r.ref.count(victim), 1u);
        r.ctx.armCrashAfter(n);
        bool crashed = false;
        try {
            EXPECT_TRUE(r.set->remove(0, victim));
        } catch (const PersistCtx::CrashInjected &) {
            crashed = true;
        }
        r.ctx.armCrashAfter(0);
        if (!crashed) {
            r.ctx.crash();
            r.ref.erase(victim);
            checkRecovered(kind, r, 0, true, "post-sweep");
            break;
        }
        r.ctx.crash();
        checkRecovered(kind, r, victim, false, "remove crash");
    }
    EXPECT_LE(n, max_crash_points)
        << "remove never completed within the crash-point sweep";
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, MidOpCrash,
    ::testing::Combine(
        ::testing::Values(DsKind::List, DsKind::Hash, DsKind::Bst,
                          DsKind::Skip),
        ::testing::Values(FlushPolicy::Plain, FlushPolicy::LinkAndPersist,
                          FlushPolicy::SkipIt),
        ::testing::Values(PersistMode::Manual, PersistMode::NvTraverse)),
    comboName);

// ---------------------------------------------------------------------
// The fifth structure: the Michael-Scott queue.

struct QueueRig
{
    MemSim mem;
    PersistCtx ctx;
    MsQueue q;
    std::vector<std::uint64_t> baseline;

    explicit QueueRig(FlushPolicy policy)
        : mem(PersistCtx::machineFor(policy)),
          ctx(mem, PersistConfig{policy, PersistMode::Manual,
                                 std::size_t{1} << 12, true}),
          q(ctx)
    {
        for (std::uint64_t v = 100; v < 116; ++v) {
            q.enqueue(0, v);
            baseline.push_back(v);
        }
    }

    std::vector<std::uint64_t>
    drain()
    {
        std::vector<std::uint64_t> out;
        std::uint64_t v = 0;
        while (q.dequeue(0, v))
            out.push_back(v);
        return out;
    }
};

class MidOpCrashQueue : public ::testing::TestWithParam<FlushPolicy>
{
};

TEST_P(MidOpCrashQueue, EnqueueCrashedAtEveryWritebackIsAtomic)
{
    const FlushPolicy policy = GetParam();
    const std::uint64_t extra = 999;
    unsigned n = 1;
    for (; n <= max_crash_points; ++n) {
        QueueRig r(policy);
        r.ctx.armCrashAfter(n);
        bool crashed = false;
        try {
            r.q.enqueue(0, extra);
        } catch (const PersistCtx::CrashInjected &) {
            crashed = true;
        }
        r.ctx.armCrashAfter(0);
        r.ctx.crash();
        auto got = r.drain();
        auto want = r.baseline;
        if (!crashed) // completed: the enqueue must have stuck
            want.push_back(extra);
        if (crashed && got.size() == want.size() + 1) {
            // In-flight enqueue allowed to land; must land at the tail.
            want.push_back(extra);
        }
        EXPECT_EQ(got, want)
            << "enqueue crash point " << n << " (no acked value may be "
            << "lost, reordered, or zeroed)";
        // Usable after recovery.
        r.q.enqueue(0, 1234);
        std::uint64_t out = 0;
        EXPECT_TRUE(r.q.dequeue(0, out));
        EXPECT_EQ(out, 1234u);
        if (!crashed)
            break;
    }
    EXPECT_LE(n, max_crash_points)
        << "enqueue never completed within the crash-point sweep";
}

TEST_P(MidOpCrashQueue, DequeueCrashedAtEveryWritebackIsAtomic)
{
    const FlushPolicy policy = GetParam();
    unsigned n = 1;
    for (; n <= max_crash_points; ++n) {
        QueueRig r(policy);
        r.ctx.armCrashAfter(n);
        bool crashed = false;
        std::uint64_t out = 0;
        bool got_value = false;
        try {
            got_value = r.q.dequeue(0, out);
        } catch (const PersistCtx::CrashInjected &) {
            crashed = true;
        }
        r.ctx.armCrashAfter(0);
        r.ctx.crash();
        auto got = r.drain();
        auto full = r.baseline;
        std::vector<std::uint64_t> tail(full.begin() + 1, full.end());
        if (!crashed) {
            EXPECT_TRUE(got_value);
            EXPECT_EQ(out, full.front());
            EXPECT_EQ(got, tail) << "completed dequeue did not persist";
        } else {
            // The in-flight dequeue either happened or didn't.
            EXPECT_TRUE(got == full || got == tail)
                << "dequeue crash point " << n
                << " left a non-atomic queue state";
        }
        if (!crashed)
            break;
    }
    EXPECT_LE(n, max_crash_points)
        << "dequeue never completed within the crash-point sweep";
}

INSTANTIATE_TEST_SUITE_P(Policies, MidOpCrashQueue,
                         ::testing::Values(FlushPolicy::Plain,
                                           FlushPolicy::LinkAndPersist,
                                           FlushPolicy::SkipIt),
                         [](const ::testing::TestParamInfo<FlushPolicy> &i) {
                             std::string s = toString(i.param);
                             for (char &c : s) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return s;
                         });

} // namespace
} // namespace skipit
