# Run skipit-kv on a tiny fixed-seed grid (mixes A/B/C at 1 and 2
# cores, skip on/off each) and compare BENCH_kv.json against the golden
# copy byte for byte — on the parallel engine with two workers, so the
# golden bytes also witness the engine-determinism contract. Then
# validate the document's shape with cmake's JSON parser: schema tag,
# run count, and the presence of the latency percentiles.
# Invoked by ctest; see tests/CMakeLists.txt (cli_kv_golden).

execute_process(
    COMMAND ${KV_BIN} --mixes A,B,C --cores 1,2 --keys 64 --ops 60
            --seed 1 --engine parallel --workers 2 -o ${OUT}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "skipit-kv exited with ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "BENCH_kv.json differs from golden ${GOLDEN}")
endif()

# Schema validation: the machine-readable contract downstream tooling
# relies on.
file(READ ${OUT} doc)
string(JSON schema GET "${doc}" schema)
if(NOT schema STREQUAL "skipit-kv-bench-v1")
    message(FATAL_ERROR "unexpected schema tag: ${schema}")
endif()
string(JSON nruns LENGTH "${doc}" runs)
if(NOT nruns EQUAL 12) # 3 mixes x 2 core counts x skip on/off
    message(FATAL_ERROR "expected 12 runs, got ${nruns}")
endif()
string(JSON ncmp LENGTH "${doc}" comparisons)
if(NOT ncmp EQUAL 6)
    message(FATAL_ERROR "expected 6 comparisons, got ${ncmp}")
endif()
string(JSON p99 GET "${doc}" runs 0 latency p99)
string(JSON thr GET "${doc}" runs 0 ops_per_kcycle)
if(p99 LESS_EQUAL 0 OR thr LESS_EQUAL 0)
    message(FATAL_ERROR "non-positive p99 (${p99}) or throughput "
                        "(${thr}) in run 0")
endif()
string(JSON drops GET "${doc}" comparisons 0 cleans_dropped_pct)
if(drops LESS_EQUAL 0)
    message(FATAL_ERROR "mix A showed no skip-bit drop delta (${drops})")
endif()
