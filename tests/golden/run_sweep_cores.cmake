# Run skipit-sweep over the checked-in 16-core scale-out spec (threads
# x l2_slices x engine x skip_it on a 16-hart SoC) and diff the CSV
# against the golden copy. The engine axis is the determinism contract
# in CSV form: for every configuration the serial and parallel rows
# must carry the same cycle count (docs/PARALLELISM.md).
# Invoked by ctest; see tests/CMakeLists.txt (cli_sweep_cores_golden).

execute_process(
    COMMAND ${SWEEP_BIN} --spec ${SPEC} -j2 -o ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "skipit-sweep exited with ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "sweep output differs from golden ${GOLDEN}")
endif()
