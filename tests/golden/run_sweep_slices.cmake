# Run skipit-sweep over the checked-in slice-scaling spec (cores x
# l2_slices x skip_it) on two workers and diff the CSV against the
# golden copy: slice count must not perturb determinism, and the
# l2_slices=1 rows must keep reproducing the monolithic-L2 numbers.
# Invoked by ctest; see tests/CMakeLists.txt (cli_sweep_slices_golden).

execute_process(
    COMMAND ${SWEEP_BIN} --spec ${SPEC} -j2 -o ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "skipit-sweep exited with ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "sweep output differs from golden ${GOLDEN}")
endif()
