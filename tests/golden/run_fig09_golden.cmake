# Run the fig09 CBO-scaling bench grid in a scratch directory and diff
# the CSV it emits against the checked-in golden copy — the default
# configuration's Fig 9 cycle counts are pinned byte for byte. Invoked
# by ctest; see tests/CMakeLists.txt (cli_fig09_golden).

execute_process(
    COMMAND ${BENCH_BIN} --benchmark_filter=NONE
    WORKING_DIRECTORY ${WORKDIR}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fig09_cbo_scaling exited with ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/fig09_cbo_scaling.csv ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "fig09 CSV differs from golden ${GOLDEN}")
endif()
