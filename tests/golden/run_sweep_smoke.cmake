# Run skipit-sweep on a fixed 2x2 mini-grid with two workers and diff
# the CSV against the checked-in golden copy. Invoked by ctest; see
# tests/CMakeLists.txt (cli_sweep_golden).

execute_process(
    COMMAND ${SWEEP_BIN} --kind cbo
            --axis threads=1,2 --axis bytes=256,1024
            -j2 -o ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "skipit-sweep exited with ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "sweep output differs from golden ${GOLDEN}")
endif()
