/**
 * @file
 * Durable-linearizability crash tests for the persistent sets: run
 * operations (each ending in a persist fence), power-fail between two
 * operations, restore only the *persisted* state, and require the
 * structure to match the reference exactly — across every structure,
 * persistence mode and flush-avoidance policy.
 *
 * This is the end-to-end property the paper's instructions exist to
 * provide (§1: "correct persistent algorithms are extremely challenging
 * ... without fine-grained control of the cache contents").
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "ds/bst.hh"
#include "ds/hash_table.hh"
#include "ds/linked_list.hh"
#include "ds/skiplist.hh"
#include "sim/random.hh"

namespace skipit {
namespace {

enum class DsKind { List, Hash, Bst, Skip };

std::unique_ptr<PersistentSet>
makeSet(DsKind k, PersistCtx &ctx)
{
    switch (k) {
      case DsKind::List:
        return std::make_unique<LinkedList>(ctx);
      case DsKind::Hash:
        return std::make_unique<HashTable>(ctx, 32);
      case DsKind::Bst:
        return std::make_unique<Bst>(ctx);
      default:
        return std::make_unique<SkipList>(ctx);
    }
}

std::size_t
sizeSlow(DsKind k, PersistentSet &s)
{
    switch (k) {
      case DsKind::List:
        return static_cast<LinkedList &>(s).sizeSlow();
      case DsKind::Hash:
        return static_cast<HashTable &>(s).sizeSlow();
      case DsKind::Bst:
        return static_cast<Bst &>(s).sizeSlow();
      default:
        return static_cast<SkipList &>(s).sizeSlow();
    }
}

const char *
kindName(DsKind k)
{
    switch (k) {
      case DsKind::List:
        return "list";
      case DsKind::Hash:
        return "hash";
      case DsKind::Bst:
        return "bst";
      default:
        return "skip";
    }
}

using Combo = std::tuple<DsKind, FlushPolicy, PersistMode>;

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    const auto [kind, policy, mode] = info.param;
    std::string s = std::string(kindName(kind)) + "_" + toString(policy) +
                    "_" + toString(mode);
    for (char &c : s) {
        if (c == '-')
            c = '_';
    }
    return s;
}

class CrashRecovery : public ::testing::TestWithParam<Combo>
{
};

TEST_P(CrashRecovery, StateAfterCrashMatchesCompletedOperations)
{
    const auto [kind, policy, mode] = GetParam();
    if (kind == DsKind::Bst && policy == FlushPolicy::LinkAndPersist)
        GTEST_SKIP() << "L&P is not applicable to the BST";

    // Crash after several different numbers of completed operations.
    for (const int crash_after : {3, 17, 60, 150}) {
        MemSim mem(PersistCtx::machineFor(policy));
        PersistConfig pcfg;
        pcfg.policy = policy;
        pcfg.mode = mode;
        pcfg.flit_table_entries = 1 << 12;
        PersistCtx ctx(mem, pcfg);
        auto set = makeSet(kind, ctx);

        std::set<std::uint64_t> ref;
        Rng rng(99 + static_cast<std::uint64_t>(crash_after));
        const std::uint64_t range = kind == DsKind::List ? 48 : 200;
        for (int i = 0; i < crash_after; ++i) {
            const std::uint64_t key = 1 + rng.below(range);
            if (rng.chance(0.6)) {
                EXPECT_EQ(set->insert(0, key), ref.insert(key).second);
            } else {
                EXPECT_EQ(set->remove(0, key), ref.erase(key) == 1);
            }
        }

        // Power failure between operations: every completed op ended
        // with a persist fence, so the recovered state must match the
        // reference exactly.
        ctx.crash();

        EXPECT_EQ(sizeSlow(kind, *set), ref.size())
            << kindName(kind) << "/" << toString(policy) << "/"
            << toString(mode) << " crash_after=" << crash_after;
        for (std::uint64_t key = 1; key <= range; ++key) {
            EXPECT_EQ(set->contains(0, key), ref.count(key) == 1)
                << kindName(kind) << "/" << toString(policy) << "/"
                << toString(mode) << " key " << key << " crash_after="
                << crash_after;
        }

        // The structure must remain fully usable after recovery.
        const std::uint64_t fresh = range + 1;
        EXPECT_TRUE(set->insert(0, fresh));
        EXPECT_TRUE(set->contains(0, fresh));
        EXPECT_TRUE(set->remove(0, fresh));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPersistentCombos, CrashRecovery,
    ::testing::Combine(
        ::testing::Values(DsKind::List, DsKind::Hash, DsKind::Bst,
                          DsKind::Skip),
        ::testing::Values(FlushPolicy::Plain, FlushPolicy::FlitAdjacent,
                          FlushPolicy::FlitHashTable,
                          FlushPolicy::LinkAndPersist, FlushPolicy::SkipIt),
        ::testing::Values(PersistMode::Automatic, PersistMode::NvTraverse,
                          PersistMode::Manual)),
    comboName);

TEST(CrashRecoveryNegative, NonPersistentModeLosesDataOnCrash)
{
    // Sanity-check the harness: without any writebacks, a crash must be
    // able to lose inserted keys (otherwise the positive test is vacuous).
    MemSim mem(PersistCtx::machineFor(FlushPolicy::Plain));
    PersistConfig pcfg;
    pcfg.policy = FlushPolicy::Plain;
    pcfg.mode = PersistMode::NonPersistent;
    PersistCtx ctx(mem, pcfg);
    LinkedList list(ctx);
    for (std::uint64_t k = 1; k <= 20; ++k)
        ASSERT_TRUE(list.insert(0, k));
    ctx.crash();
    std::size_t surviving = 0;
    for (std::uint64_t k = 1; k <= 20; ++k) {
        if (list.contains(0, k))
            ++surviving;
    }
    EXPECT_LT(surviving, 20u) << "nothing was lost without writebacks; "
                                 "the crash harness is too weak";
}

} // namespace
} // namespace skipit
