/**
 * @file
 * Exact cycle-charge regression tests for the persistence policies: the
 * relative costs in Figures 14-16 follow directly from these sequences,
 * so they are pinned here operation by operation.
 */

#include <gtest/gtest.h>

#include "nvm/persist.hh"

namespace skipit {
namespace {

struct ChargeRig
{
    NvmConfig mcfg;
    MemSim mem;
    PersistCtx ctx;
    std::atomic<std::uint64_t> word{0};

    ChargeRig(FlushPolicy p, PersistMode m)
        : mcfg(PersistCtx::machineFor(p)), mem(mcfg),
          ctx(mem, PersistConfig{p, m, std::size_t{1} << 12, true})
    {
    }

    Cycle
    cost(const std::function<void()> &op)
    {
        const Cycle before = mem.clock(0);
        op();
        return mem.clock(0) - before;
    }
};

TEST(Charges, PlainAutomaticWriteIsStorePlusFlushPlusFence)
{
    ChargeRig r(FlushPolicy::Plain, PersistMode::Automatic);
    r.ctx.readPlain(0, r.word); // warm the line (c_mem)
    const NvmConfig &c = r.mem.config();
    // store (L1 hit) + invalidating flush (dirty -> full) + fence.
    EXPECT_EQ(r.cost([&] { r.ctx.write(0, r.word, 1); }),
              c.c_l1_hit + c.c_flush + c.c_fence);
}

TEST(Charges, PlainAutomaticReadRefetchesAfterInvalidatingFlush)
{
    ChargeRig r(FlushPolicy::Plain, PersistMode::Automatic);
    r.ctx.readPlain(0, r.word);
    r.ctx.write(0, r.word, 1); // line invalidated by its flush
    const NvmConfig &c = r.mem.config();
    // L2 miss too (flush invalidated both) -> memory refetch, then the
    // read-persist flush finds everything clean: LLC catches it.
    EXPECT_EQ(r.cost([&] { r.ctx.read(0, r.word); }),
              c.c_mem + c.c_flush_l2_only + c.c_fence);
}

TEST(Charges, SkipItRedundantReadCostsDropPlusFence)
{
    ChargeRig r(FlushPolicy::SkipIt, PersistMode::Automatic);
    r.ctx.read(0, r.word); // first read: fill + LLC-caught flush
    const NvmConfig &c = r.mem.config();
    // Steady state: L1 hit + skip drop + empty fence.
    EXPECT_EQ(r.cost([&] { r.ctx.read(0, r.word); }),
              c.c_l1_hit + c.c_skip_drop + c.c_fence);
}

TEST(Charges, FlitStoreBracketsWithTwoAmos)
{
    ChargeRig r(FlushPolicy::FlitHashTable, PersistMode::Manual);
    r.ctx.readPlain(0, r.word);
    r.ctx.write(0, r.word, 1); // warms the counter line too
    const NvmConfig &c = r.mem.config();
    // Steady state: the line was invalidated by the previous flush, so:
    // counter AMO (L1 hit + premium) + store (refetch from memory since
    // the flush invalidated L1+L2) + flush (dirty) + fence + counter AMO.
    const Cycle amo = c.c_l1_hit + c.c_amo;
    EXPECT_EQ(r.cost([&] { r.ctx.write(0, r.word, 2); }),
              amo + c.c_mem + c.c_flush + c.c_fence + amo);
}

TEST(Charges, FlitReadWithIdleCounterIsTwoLoads)
{
    ChargeRig r(FlushPolicy::FlitHashTable, PersistMode::Automatic);
    r.ctx.read(0, r.word); // warms data + counter lines
    const NvmConfig &c = r.mem.config();
    // Steady state: data load hit + counter load hit, no flush.
    EXPECT_EQ(r.cost([&] { r.ctx.read(0, r.word); }), 2u * c.c_l1_hit);
}

TEST(Charges, LinkAndPersistReadAddsMaskCycle)
{
    ChargeRig r(FlushPolicy::LinkAndPersist, PersistMode::Automatic);
    r.ctx.read(0, r.word);
    const NvmConfig &c = r.mem.config();
    // Steady state: load hit + mandatory bit-63 mask (1 cycle); the word
    // is unmarked, so no helping flush.
    EXPECT_EQ(r.cost([&] { r.ctx.read(0, r.word); }), c.c_l1_hit + 1u);
}

TEST(Charges, NonPersistentOpsAreJustMemoryAccesses)
{
    ChargeRig r(FlushPolicy::Plain, PersistMode::NonPersistent);
    r.ctx.readPlain(0, r.word);
    const NvmConfig &c = r.mem.config();
    EXPECT_EQ(r.cost([&] { r.ctx.write(0, r.word, 1); }), c.c_l1_hit);
    EXPECT_EQ(r.cost([&] { r.ctx.read(0, r.word); }), c.c_l1_hit);
    EXPECT_EQ(r.cost([&] { r.ctx.opEnd(0); }), 0u);
}

TEST(Charges, SkipItWriteStillPaysTheFullWriteback)
{
    ChargeRig r(FlushPolicy::SkipIt, PersistMode::Manual);
    r.ctx.readPlain(0, r.word);
    const NvmConfig &c = r.mem.config();
    // Dirty data cannot be skipped: store + full flush + fence.
    EXPECT_EQ(r.cost([&] { r.ctx.write(0, r.word, 1); }),
              c.c_l1_hit + c.c_flush + c.c_fence);
}

} // namespace
} // namespace skipit
