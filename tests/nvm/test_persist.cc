/**
 * @file
 * Unit tests of the persistence instrumentation layer: each flush policy's
 * bookkeeping and each persistence mode's instrumentation scope.
 */

#include <gtest/gtest.h>

#include "nvm/persist.hh"

namespace skipit {
namespace {

class PersistTest : public ::testing::Test
{
  protected:
    NvmConfig mcfg{};
    PersistConfig pcfg{};
    std::atomic<std::uint64_t> word{0};

    struct Rig
    {
        MemSim mem;
        PersistCtx ctx;
        Rig(const NvmConfig &m, const PersistConfig &p) : mem(m), ctx(mem, p)
        {
        }
    };

    std::unique_ptr<Rig>
    make()
    {
        // Software policies run on the baseline machine; only the SkipIt
        // policy gets Skip It hardware (§7.4).
        return std::make_unique<Rig>(
            PersistCtx::machineFor(pcfg.policy, mcfg), pcfg);
    }
};

TEST_F(PersistTest, PlainAutomaticFlushesEveryWrite)
{
    pcfg.policy = FlushPolicy::Plain;
    pcfg.mode = PersistMode::Automatic;
    auto r = make();
    r->ctx.write(0, word, 1);
    r->ctx.write(0, word, 2);
    EXPECT_EQ(r->mem.flushesIssued(), 2u);
    EXPECT_EQ(word.load(), 2u);
}

TEST_F(PersistTest, PlainAutomaticFlushesEveryRead)
{
    pcfg.policy = FlushPolicy::Plain;
    pcfg.mode = PersistMode::Automatic;
    auto r = make();
    word = 7;
    EXPECT_EQ(r->ctx.read(0, word), 7u);
    EXPECT_EQ(r->ctx.readTrav(0, word), 7u);
    EXPECT_EQ(r->mem.flushesIssued() + r->mem.flushesSkippedL1(), 2u);
}

TEST_F(PersistTest, NvTraverseSkipsTraversalReads)
{
    pcfg.policy = FlushPolicy::Plain;
    pcfg.mode = PersistMode::NvTraverse;
    auto r = make();
    word = 7;
    r->ctx.readTrav(0, word); // not instrumented
    EXPECT_EQ(r->mem.flushesIssued(), 0u);
    r->ctx.read(0, word); // critical: instrumented
    EXPECT_EQ(r->mem.flushesIssued(), 1u);
}

TEST_F(PersistTest, ManualOnlyPersistsWrites)
{
    pcfg.policy = FlushPolicy::Plain;
    pcfg.mode = PersistMode::Manual;
    auto r = make();
    word = 7;
    r->ctx.readTrav(0, word);
    r->ctx.read(0, word);
    EXPECT_EQ(r->mem.flushesIssued(), 0u);
    r->ctx.write(0, word, 8);
    EXPECT_EQ(r->mem.flushesIssued(), 1u);
}

TEST_F(PersistTest, NonPersistentNeverFlushes)
{
    pcfg.policy = FlushPolicy::Plain;
    pcfg.mode = PersistMode::NonPersistent;
    auto r = make();
    r->ctx.write(0, word, 1);
    r->ctx.read(0, word);
    std::uint64_t exp = 1;
    r->ctx.cas(0, word, exp, 2);
    r->ctx.opEnd(0);
    EXPECT_EQ(r->mem.flushesIssued(), 0u);
    EXPECT_EQ(word.load(), 2u);
}

TEST_F(PersistTest, FlitLoadFlushesOnlyWhenCounterNonZero)
{
    pcfg.policy = FlushPolicy::FlitHashTable;
    pcfg.mode = PersistMode::Automatic;
    auto r = make();
    word = 3;
    // No store in flight: the counter is zero, no flush on read.
    r->ctx.read(0, word);
    EXPECT_EQ(r->mem.flushesIssued(), 0u);
    // A completed FLIT_STORE flushed once and restored the counter.
    r->ctx.write(0, word, 4);
    EXPECT_EQ(r->mem.flushesIssued(), 1u);
    r->ctx.read(0, word);
    EXPECT_EQ(r->mem.flushesIssued(), 1u); // still: counter back to zero
}

TEST_F(PersistTest, FlitAdjacentSpreadsFootprint)
{
    pcfg.policy = FlushPolicy::FlitAdjacent;
    pcfg.mode = PersistMode::Automatic;
    auto r = make();
    // Two words one line apart map two lines apart in simulated space:
    // their spread addresses land in different sets than unspread ones
    // would. We verify indirectly: both accesses miss (no false sharing
    // of one line) even though un-spread they share a line.
    std::atomic<std::uint64_t> a{0}, b{0};
    (void)a;
    (void)b;
    const Cycle c0 = r->mem.clock(0);
    r->ctx.readPlain(0, a);
    const Cycle c1 = r->mem.clock(0);
    EXPECT_EQ(c1 - c0, r->mem.config().c_mem); // cold miss
}

TEST_F(PersistTest, LinkAndPersistMarksAndClears)
{
    pcfg.policy = FlushPolicy::LinkAndPersist;
    pcfg.mode = PersistMode::Manual;
    auto r = make();
    r->ctx.write(0, word, 5);
    // After the write completes the mark must be cleared again.
    EXPECT_EQ(word.load() & PersistCtx::lp_mark, 0u);
    EXPECT_EQ(word.load(), 5u);
    EXPECT_EQ(r->mem.flushesIssued(), 1u);
}

TEST_F(PersistTest, LinkAndPersistReaderHelpsMarkedWord)
{
    pcfg.policy = FlushPolicy::LinkAndPersist;
    pcfg.mode = PersistMode::Automatic;
    auto r = make();
    // Simulate an unpersisted word left behind by a crashed writer.
    word.store(9 | PersistCtx::lp_mark);
    EXPECT_EQ(r->ctx.read(0, word), 9u); // mark stripped
    EXPECT_EQ(r->mem.flushesIssued(), 1u); // reader flushed
    EXPECT_EQ(word.load(), 9u);            // reader cleared the mark
}

TEST_F(PersistTest, LinkAndPersistCasStripsMarkOnFailure)
{
    pcfg.policy = FlushPolicy::LinkAndPersist;
    pcfg.mode = PersistMode::Manual;
    auto r = make();
    word.store(4 | PersistCtx::lp_mark);
    std::uint64_t expected = 3;
    EXPECT_FALSE(r->ctx.cas(0, word, expected, 10));
    EXPECT_EQ(expected, 4u); // current value without the mark
}

TEST_F(PersistTest, LinkAndPersistCasHelpsThenSucceeds)
{
    pcfg.policy = FlushPolicy::LinkAndPersist;
    pcfg.mode = PersistMode::Manual;
    auto r = make();
    word.store(4 | PersistCtx::lp_mark);
    std::uint64_t expected = 4;
    EXPECT_TRUE(r->ctx.cas(0, word, expected, 10));
    EXPECT_EQ(word.load(), 10u); // mark cleared after persist
    // Two flushes: helping the stale mark + persisting our own update.
    EXPECT_EQ(r->mem.flushesIssued(), 2u);
}

TEST_F(PersistTest, SkipItDropsRedundantReadFlushes)
{
    pcfg.policy = FlushPolicy::SkipIt;
    pcfg.mode = PersistMode::Automatic;
    auto r = make();
    word = 1;
    r->ctx.read(0, word); // first read: line clean from DRAM, skip set
    r->ctx.read(0, word);
    r->ctx.read(0, word);
    // All three reads issued CBO.X; all were dropped by the skip bit.
    EXPECT_EQ(r->mem.flushesSkippedL1(), 3u);
    EXPECT_EQ(r->mem.dramWrites(), 0u);
}

TEST_F(PersistTest, SkipItStillPersistsDirtyData)
{
    pcfg.policy = FlushPolicy::SkipIt;
    pcfg.mode = PersistMode::Automatic;
    auto r = make();
    r->ctx.write(0, word, 2);
    EXPECT_EQ(r->mem.dramWrites(), 1u);
}

TEST_F(PersistTest, CasUpdatesExpectedOnFailure)
{
    pcfg.policy = FlushPolicy::Plain;
    pcfg.mode = PersistMode::Automatic;
    auto r = make();
    word = 5;
    std::uint64_t expected = 4;
    EXPECT_FALSE(r->ctx.cas(0, word, expected, 9));
    EXPECT_EQ(expected, 5u);
    EXPECT_TRUE(r->ctx.cas(0, word, expected, 9));
    EXPECT_EQ(word.load(), 9u);
}

TEST_F(PersistTest, PolicyAndModeNamesAreStable)
{
    EXPECT_STREQ(toString(FlushPolicy::Plain), "plain");
    EXPECT_STREQ(toString(FlushPolicy::FlitAdjacent), "flit-adjacent");
    EXPECT_STREQ(toString(FlushPolicy::FlitHashTable), "flit-hashtable");
    EXPECT_STREQ(toString(FlushPolicy::LinkAndPersist), "link-and-persist");
    EXPECT_STREQ(toString(FlushPolicy::SkipIt), "skip-it");
    EXPECT_STREQ(toString(PersistMode::Automatic), "automatic");
    EXPECT_STREQ(toString(PersistMode::NvTraverse), "nvtraverse");
    EXPECT_STREQ(toString(PersistMode::Manual), "manual");
    EXPECT_STREQ(toString(PersistMode::NonPersistent), "non-persistent");
}

} // namespace
} // namespace skipit
