/**
 * @file
 * Unit tests of the execution-driven memory model: hit/miss costs, skip
 * bit lifecycle, coherence between the two simulated cores, capacity
 * eviction and writeback outcomes.
 */

#include <gtest/gtest.h>

#include "nvm/mem_sim.hh"

namespace skipit {
namespace {

class MemSimTest : public ::testing::Test
{
  protected:
    NvmConfig cfg{};

    std::unique_ptr<MemSim> make() { return std::make_unique<MemSim>(cfg); }
};

TEST_F(MemSimTest, ColdLoadCostsMemThenHits)
{
    auto m = make();
    EXPECT_EQ(m->load(0, 0x1000), cfg.c_mem);
    EXPECT_EQ(m->load(0, 0x1000), cfg.c_l1_hit);
    EXPECT_EQ(m->load(0, 0x1008), cfg.c_l1_hit); // same line
    EXPECT_TRUE(m->l1Holds(0, 0x1000));
    EXPECT_TRUE(m->l2Holds(0x1000));
}

TEST_F(MemSimTest, StoreMakesLineDirtyAndClearsNothing)
{
    auto m = make();
    m->store(0, 0x2000);
    EXPECT_TRUE(m->l1Dirty(0, 0x2000));
    EXPECT_FALSE(m->l2Dirty(0x2000));
}

TEST_F(MemSimTest, CleanLineFilledFromMemoryHasSkipSet)
{
    auto m = make();
    m->load(0, 0x3000);
    // Fresh from DRAM: nothing below is dirty, skip bit set (§6).
    EXPECT_TRUE(m->l1Skip(0, 0x3000));
}

TEST_F(MemSimTest, LineDirtyInL2GrantsWithoutSkip)
{
    auto m = make();
    // Core 0 dirties, core 1 loads (dirty moves to L2), core 0 re-loads.
    m->store(0, 0x4000);
    m->load(1, 0x4000);
    EXPECT_TRUE(m->l2Dirty(0x4000));
    // Core 1's fill observed a dirty L2: GrantDataDirty -> no skip.
    EXPECT_FALSE(m->l1Skip(1, 0x4000));
}

TEST_F(MemSimTest, RemoteDirtyLoadPaysTransferCost)
{
    auto m = make();
    m->store(0, 0x5000);
    EXPECT_EQ(m->load(1, 0x5000), cfg.c_remote_transfer);
}

TEST_F(MemSimTest, RemoteCopyInvalidatedByStore)
{
    auto m = make();
    m->load(0, 0x6000);
    m->store(1, 0x6000);
    EXPECT_FALSE(m->l1Holds(0, 0x6000));
    EXPECT_TRUE(m->l1Dirty(1, 0x6000));
}

TEST_F(MemSimTest, WritebackOfDirtyLinePersists)
{
    auto m = make();
    m->store(0, 0x7000);
    WbOutcome out;
    EXPECT_EQ(m->writeback(0, 0x7000, false, &out), cfg.c_flush);
    EXPECT_EQ(out, WbOutcome::Persisted);
    EXPECT_FALSE(m->l1Dirty(0, 0x7000));
    EXPECT_TRUE(m->l1Holds(0, 0x7000)); // clean keeps the line
}

TEST_F(MemSimTest, InvalidatingWritebackRemovesLine)
{
    auto m = make();
    m->store(0, 0x7100);
    m->writeback(0, 0x7100, true);
    EXPECT_FALSE(m->l1Holds(0, 0x7100));
    EXPECT_FALSE(m->l2Holds(0x7100));
}

TEST_F(MemSimTest, CleanWritebackSetsSkipBit)
{
    auto m = make();
    m->store(0, 0x7200);
    m->writeback(0, 0x7200, false);
    EXPECT_TRUE(m->l1Skip(0, 0x7200));
}

TEST_F(MemSimTest, RedundantWritebackDroppedBySkipBit)
{
    auto m = make();
    m->store(0, 0x7300);
    m->writeback(0, 0x7300, false);
    WbOutcome out;
    EXPECT_EQ(m->writeback(0, 0x7300, false, &out), cfg.c_skip_drop);
    EXPECT_EQ(out, WbOutcome::SkippedL1);
    EXPECT_EQ(m->flushesSkippedL1(), 1u);
}

TEST_F(MemSimTest, SkipItDisabledNeverDropsInL1)
{
    cfg.skip_it = false;
    auto m = make();
    m->store(0, 0x7400);
    m->writeback(0, 0x7400, false);
    WbOutcome out;
    // Second writeback: clean everywhere, so the LLC catches it, but it
    // still travels to the L2 (§5.5).
    EXPECT_EQ(m->writeback(0, 0x7400, false, &out), cfg.c_flush_l2_only);
    EXPECT_EQ(out, WbOutcome::SkippedLlc);
    EXPECT_EQ(m->flushesSkippedL1(), 0u);
}

TEST_F(MemSimTest, WritebackOfRemoteDirtyLinePersists)
{
    auto m = make();
    m->store(0, 0x7500);
    WbOutcome out;
    // Core 1 flushes a line dirty only in core 0's L1 (§5.5 probing).
    m->writeback(1, 0x7500, true, &out);
    EXPECT_EQ(out, WbOutcome::Persisted);
    EXPECT_FALSE(m->l1Holds(0, 0x7500));
}

TEST_F(MemSimTest, WritebackOfUnknownLineCaughtAtLlc)
{
    auto m = make();
    WbOutcome out;
    m->writeback(0, 0x7600, true, &out);
    EXPECT_EQ(out, WbOutcome::SkippedLlc);
}

TEST_F(MemSimTest, L1CapacityEvictionMovesDirtyToL2)
{
    auto m = make();
    // Fill one L1 set (ways + 1 lines mapping to the same set).
    const Addr stride = static_cast<Addr>(cfg.l1_sets) * line_bytes;
    for (unsigned i = 0; i <= cfg.l1_ways; ++i)
        m->store(0, 0x10000 + i * stride);
    // The first line was evicted from L1 and its dirt moved to L2.
    EXPECT_FALSE(m->l1Holds(0, 0x10000));
    EXPECT_TRUE(m->l2Dirty(0x10000));
}

TEST_F(MemSimTest, L2EvictionBackInvalidatesL1)
{
    auto m = make();
    const Addr stride = static_cast<Addr>(cfg.l2_sets) * line_bytes;
    m->load(0, 0x20000);
    for (unsigned i = 1; i <= cfg.l2_ways; ++i)
        m->load(0, 0x20000 + i * stride);
    // 0x20000 was the LRU L2 victim; inclusivity evicted it from L1 too.
    EXPECT_FALSE(m->l2Holds(0x20000));
    EXPECT_FALSE(m->l1Holds(0, 0x20000));
}

TEST_F(MemSimTest, ClocksAreIndependentPerThread)
{
    auto m = make();
    m->load(0, 0x30000);
    EXPECT_GT(m->clock(0), 0u);
    EXPECT_EQ(m->clock(1), 0u);
    m->fence(1);
    EXPECT_EQ(m->clock(1), cfg.c_fence);
}

TEST_F(MemSimTest, StatsCountFlushCategories)
{
    auto m = make();
    m->store(0, 0x40000);
    m->writeback(0, 0x40000, false); // persisted
    m->load(0, 0x41000);
    m->writeback(0, 0x41000, false); // skipped at L1 (skip set by fill)
    EXPECT_EQ(m->flushesIssued(), 1u);
    EXPECT_EQ(m->flushesSkippedL1(), 1u);
    EXPECT_EQ(m->dramWrites(), 1u);
}

} // namespace
} // namespace skipit
