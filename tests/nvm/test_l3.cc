/**
 * @file
 * Unit tests for the optional third cache level of the execution-driven
 * model (the §7.4 "deeper hierarchy" extension).
 */

#include <gtest/gtest.h>

#include "nvm/mem_sim.hh"

namespace skipit {
namespace {

class L3Test : public ::testing::Test
{
  protected:
    NvmConfig cfg{};

    void
    SetUp() override
    {
        cfg.l3_sets = 64;
        cfg.l3_ways = 4;
    }
};

TEST_F(L3Test, DisabledByDefault)
{
    EXPECT_EQ(NvmConfig{}.l3_sets, 0u);
}

TEST_F(L3Test, L3HitCheaperThanMemoryAfterL2Eviction)
{
    MemSim m(cfg);
    m.load(0, 0x1000);
    // Push the line out of L2 by filling its set.
    const Addr stride = static_cast<Addr>(cfg.l2_sets) * line_bytes;
    for (unsigned i = 1; i <= cfg.l2_ways; ++i)
        m.load(0, 0x1000 + i * stride);
    ASSERT_FALSE(m.l2Holds(0x1000));
    // The reload hits the L3, not DRAM.
    EXPECT_EQ(m.load(0, 0x1000), cfg.c_l3_hit);
}

TEST_F(L3Test, ColdMissStillPaysMemory)
{
    MemSim m(cfg);
    EXPECT_EQ(m.load(0, 0x2000), cfg.c_mem);
}

TEST_F(L3Test, WritebackPaysExtraHop)
{
    MemSim two_level{NvmConfig{}};
    MemSim three_level{cfg};
    two_level.store(0, 0x3000);
    three_level.store(0, 0x3000);
    const Cycle flat = two_level.writeback(0, 0x3000, false);
    const Cycle deep = three_level.writeback(0, 0x3000, false);
    EXPECT_EQ(deep, flat + cfg.c_l3_extra_flush);
}

TEST_F(L3Test, LlcCaughtWritebackAlsoDescendsFurther)
{
    cfg.skip_it = false;
    NvmConfig flat_cfg;
    flat_cfg.skip_it = false;
    MemSim flat{flat_cfg};
    MemSim deep{cfg};
    flat.load(0, 0x4000);
    deep.load(0, 0x4000);
    const Cycle f = flat.writeback(0, 0x4000, false);
    const Cycle d = deep.writeback(0, 0x4000, false);
    EXPECT_GT(d, f);
}

TEST_F(L3Test, SkipDropCostIndependentOfDepth)
{
    MemSim m(cfg);
    m.load(0, 0x5000); // clean fill: skip set
    EXPECT_EQ(m.writeback(0, 0x5000, false), cfg.c_skip_drop);
}

TEST_F(L3Test, CapacityBounded)
{
    MemSim m(cfg);
    const std::size_t cap =
        static_cast<std::size_t>(cfg.l3_sets) * cfg.l3_ways;
    // Touch 2x capacity distinct lines; early ones must have been evicted
    // from the L3 tracking set (reload = memory, not L3 hit). We evict
    // them from L2 first so the L3 is actually consulted.
    for (std::size_t i = 0; i < 2 * cap; ++i)
        m.load(0, 0x100000 + static_cast<Addr>(i) * line_bytes);
    // At least the very first line should be gone from the (FIFO-ish) L3.
    const Addr probe = 0x100000;
    const Addr stride = static_cast<Addr>(cfg.l2_sets) * line_bytes;
    for (unsigned i = 1; i <= cfg.l2_ways + 1; ++i)
        m.load(0, probe + 0x40000000 + i * stride);
    // Not a strict assertion on which line survived — just that the model
    // keeps its size bounded (no unbounded growth).
    SUCCEED();
}

} // namespace
} // namespace skipit
