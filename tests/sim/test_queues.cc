/**
 * @file
 * Unit tests for the timing-aware queue primitives.
 */

#include <gtest/gtest.h>

#include "sim/queues.hh"
#include "sim/simulator.hh"

namespace skipit {
namespace {

TEST(DelayQueue, EntryInvisibleUntilLatencyElapses)
{
    Simulator sim;
    DelayQueue<int> q(sim, 3);
    q.push(42);
    EXPECT_FALSE(q.ready());
    sim.run(2);
    EXPECT_FALSE(q.ready());
    sim.run(1);
    ASSERT_TRUE(q.ready());
    EXPECT_EQ(q.pop(), 42);
}

TEST(DelayQueue, PopsInPushOrder)
{
    Simulator sim;
    DelayQueue<int> q(sim, 1);
    q.push(1);
    q.push(2);
    q.push(3);
    sim.run(1);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
}

TEST(DelayQueue, ExplicitDelayExtendsVisibility)
{
    Simulator sim;
    DelayQueue<int> q(sim, 1);
    q.push(7, 5);
    sim.run(4);
    EXPECT_FALSE(q.ready());
    sim.run(1);
    EXPECT_TRUE(q.ready());
}

TEST(DelayQueue, SizeTracksContents)
{
    Simulator sim;
    DelayQueue<int> q(sim, 1);
    EXPECT_TRUE(q.empty());
    q.push(1);
    q.push(2);
    EXPECT_EQ(q.size(), 2u);
    sim.run(1);
    q.pop();
    EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedFifo, RejectsWhenFull)
{
    BoundedFifo<int> f(2);
    EXPECT_TRUE(f.tryPush(1));
    EXPECT_TRUE(f.tryPush(2));
    EXPECT_TRUE(f.full());
    EXPECT_FALSE(f.tryPush(3));
    EXPECT_EQ(f.pop(), 1);
    EXPECT_TRUE(f.tryPush(3));
    EXPECT_EQ(f.pop(), 2);
    EXPECT_EQ(f.pop(), 3);
}

TEST(BoundedFifo, EraseIfRemovesMatching)
{
    BoundedFifo<int> f(8);
    for (int i = 0; i < 6; ++i)
        f.tryPush(i);
    const auto removed = f.eraseIf([](int v) { return v % 2 == 0; });
    EXPECT_EQ(removed, 3u);
    EXPECT_EQ(f.size(), 3u);
    EXPECT_EQ(f.pop(), 1);
    EXPECT_EQ(f.pop(), 3);
    EXPECT_EQ(f.pop(), 5);
}

TEST(BoundedFifo, IterationVisitsAllEntries)
{
    BoundedFifo<int> f(4);
    f.tryPush(10);
    f.tryPush(20);
    int sum = 0;
    for (int v : f)
        sum += v;
    EXPECT_EQ(sum, 30);
}

TEST(CompletionBuffer, PopsInReadyOrderNotPushOrder)
{
    Simulator sim;
    CompletionBuffer<int> b(sim);
    b.pushIn(1, 10);
    b.pushIn(2, 3);
    b.pushIn(3, 7);
    sim.run(3);
    ASSERT_TRUE(b.ready());
    EXPECT_EQ(b.pop(), 2);
    EXPECT_FALSE(b.ready());
    sim.run(4);
    EXPECT_EQ(b.pop(), 3);
    sim.run(3);
    EXPECT_EQ(b.pop(), 1);
    EXPECT_TRUE(b.empty());
}

TEST(CompletionBuffer, TiesResolveInInsertionOrder)
{
    Simulator sim;
    CompletionBuffer<int> b(sim);
    b.pushIn(1, 2);
    b.pushIn(2, 2);
    sim.run(2);
    EXPECT_EQ(b.pop(), 1);
    EXPECT_EQ(b.pop(), 2);
}

} // namespace
} // namespace skipit
