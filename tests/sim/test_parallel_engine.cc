/**
 * @file
 * Parallel tick-engine equivalence: the parallel engine must be
 * bit-identical to the serial reference — same final cycle, same stats,
 * same probe-event stream — at any worker count, across core counts,
 * slice counts, schedule jitter, and checker settings. This is the
 * executable form of the contract in docs/PARALLELISM.md.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/asm.hh"
#include "sim/txn_tracer.hh"
#include "soc/soc.hh"
#include "workloads/workloads.hh"

using namespace skipit;

namespace {

/** Outcome of one run: everything an observer could compare. */
struct RunRecord
{
    Cycle elapsed = 0;
    Cycle skipped = 0;
    std::string stats;
    std::vector<probe::Event> events;
};

/**
 * A per-core workload with both private traffic and cross-core
 * contention: each core dirties and writes back its own region, then
 * every core hammers a shared region — probes, RootReleases and grant
 * races all in flight.
 */
Program
scaleOutProgram(unsigned core, unsigned lines, bool flush)
{
    const Addr priv = 0x10000000 + static_cast<Addr>(core) * 0x100000;
    const Addr shared = 0x30000000;
    std::ostringstream text;
    for (unsigned i = 0; i < lines; ++i) {
        text << "store 0x" << std::hex << priv + i * line_bytes << " "
             << std::dec << core + 1 << "\n";
    }
    for (unsigned pass = 0; pass < 2; ++pass) {
        for (unsigned i = 0; i < lines; ++i) {
            text << (flush ? "cbo.flush 0x" : "cbo.clean 0x") << std::hex
                 << priv + i * line_bytes << std::dec << "\n";
        }
        text << "fence\n";
    }
    for (unsigned i = 0; i < lines / 2 + 1; ++i) {
        text << "store 0x" << std::hex << shared + i * line_bytes << " "
             << std::dec << core + 1 << "\n"
             << "cbo.flush 0x" << std::hex << shared + i * line_bytes
             << std::dec << "\n";
    }
    text << "fence\n";
    return assembleProgram(text.str());
}

SoCConfig
matrixConfig(unsigned cores, unsigned slices, Simulator::Engine engine,
             unsigned workers, bool jitter = false)
{
    SoCConfig cfg;
    cfg.cores = cores;
    cfg.l2.slices = slices;
    cfg.engine = engine;
    cfg.workers = workers;
    if (jitter) {
        cfg.jitter.enabled = true;
        cfg.jitter.seed = 0xf00dULL;
    }
    return cfg;
}

RunRecord
runMatrix(const SoCConfig &cfg, unsigned lines = 4)
{
    SoC soc(cfg);
    TxnTracer tracer;
    soc.sim().probes().attach(tracer);
    std::vector<Program> programs;
    for (unsigned c = 0; c < cfg.cores; ++c)
        programs.push_back(scaleOutProgram(c, lines, c % 2 == 0));
    soc.setPrograms(programs);

    RunRecord rec;
    rec.elapsed = soc.runToQuiescence();
    rec.skipped = soc.sim().skippedCycles();
    std::ostringstream os;
    soc.stats().dump(os);
    rec.stats = os.str();
    rec.events = tracer.events();
    return rec;
}

void
expectIdentical(const RunRecord &base, const RunRecord &par,
                const std::string &what)
{
    EXPECT_EQ(base.elapsed, par.elapsed) << what;
    EXPECT_EQ(base.skipped, par.skipped) << what;
    EXPECT_EQ(base.stats, par.stats) << what;
    ASSERT_EQ(base.events.size(), par.events.size()) << what;
    for (std::size_t i = 0; i < base.events.size(); ++i) {
        const probe::Event &a = base.events[i];
        const probe::Event &b = par.events[i];
        ASSERT_TRUE(a.cycle == b.cycle && a.dur == b.dur &&
                    a.txn == b.txn && a.kind == b.kind &&
                    std::string(a.stage) == b.stage &&
                    a.track == b.track && a.detail == b.detail)
            << what << ": event " << i << " diverges (cycle " << a.cycle
            << " vs " << b.cycle << ", track " << a.track << " vs "
            << b.track << ")";
    }
}

std::string
label(unsigned cores, unsigned slices, unsigned workers)
{
    std::ostringstream os;
    os << "cores=" << cores << " slices=" << slices
       << " workers=" << workers;
    return os.str();
}

} // namespace

TEST(ParallelEngine, BitIdenticalAcrossCoresSlicesWorkers)
{
    for (const unsigned cores : {2u, 16u}) {
        for (const unsigned slices : {1u, 4u}) {
            const RunRecord serial = runMatrix(matrixConfig(
                cores, slices, Simulator::Engine::serial, 0));
            ASSERT_FALSE(serial.events.empty());
            for (const unsigned workers : {1u, 2u, 8u}) {
                const RunRecord par = runMatrix(matrixConfig(
                    cores, slices, Simulator::Engine::parallel, workers));
                expectIdentical(serial, par,
                                label(cores, slices, workers));
            }
        }
    }
}

TEST(ParallelEngine, BitIdenticalUnderScheduleJitter)
{
    // A jittered fuzz seed perturbs every channel's timing; the engines
    // must still agree bit for bit (per-channel RNG streams are owned by
    // exactly one phase).
    for (const unsigned cores : {2u, 16u}) {
        const RunRecord serial = runMatrix(
            matrixConfig(cores, 4, Simulator::Engine::serial, 0, true));
        for (const unsigned workers : {1u, 2u, 8u}) {
            const RunRecord par = runMatrix(matrixConfig(
                cores, 4, Simulator::Engine::parallel, workers, true));
            expectIdentical(serial, par,
                            "jitter " + label(cores, 4, workers));
        }
    }
}

TEST(ParallelEngine, CheckerOnOffIsCycleIdenticalUnderParallel)
{
    // The coherence checker is observer-only; under the parallel engine
    // it still runs in the serial post phase and must not change a
    // single cycle, counter, or event.
    SoCConfig on = matrixConfig(4, 2, Simulator::Engine::parallel, 8);
    SoCConfig off = on;
    off.verify.enabled = false;
    expectIdentical(runMatrix(on), runMatrix(off), "checker on/off");
}

TEST(ParallelEngine, FastForwardOffIsBitIdenticalUnderParallel)
{
    SoCConfig ff = matrixConfig(4, 2, Simulator::Engine::parallel, 4);
    SoCConfig ticked = ff;
    ticked.fast_forward = false;
    const RunRecord a = runMatrix(ff);
    const RunRecord b = runMatrix(ticked);
    EXPECT_GT(a.skipped, 0u);
    EXPECT_EQ(b.skipped, 0u);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(ParallelEngine, WorkloadMeasurementsMatchSerial)
{
    // The harness-level measurements (Fig 9/13 style) agree between the
    // engines at every thread count they sweep.
    SoCConfig serial;
    SoCConfig par;
    par.engine = Simulator::Engine::parallel;
    par.workers = 8;
    for (const bool flush : {false, true}) {
        EXPECT_EQ(workloads::cboLatency(serial, 2, 4096, flush),
                  workloads::cboLatency(par, 2, 4096, flush));
        EXPECT_EQ(workloads::redundantWbLatency(serial, 2, 2048, flush),
                  workloads::redundantWbLatency(par, 2, 2048, flush));
    }
}

TEST(ParallelEngine, NHartScaleOutRunsToQuiescence)
{
    // SoCConfig generalizes to 64 harts: every hart runs its own
    // program, every private region lands in DRAM, and the directory
    // tracks holders past the 32-hart bitmask boundary.
    for (const unsigned cores : {2u, 4u, 16u, 32u, 64u}) {
        SoCConfig cfg;
        cfg.cores = cores;
        cfg.l2.slices = cores >= 16 ? 4 : 1;
        cfg.engine = cores >= 16 ? Simulator::Engine::parallel
                                 : Simulator::Engine::serial;
        cfg.workers = 4;
        SoC soc(cfg);
        std::vector<Program> programs;
        for (unsigned c = 0; c < cores; ++c)
            programs.push_back(scaleOutProgram(c, 2, true));
        soc.setPrograms(programs);
        const Cycle elapsed = soc.runToQuiescence();
        EXPECT_GT(elapsed, 0u) << cores;
        for (unsigned c = 0; c < cores; ++c) {
            const Addr priv =
                0x10000000 + static_cast<Addr>(c) * 0x100000;
            EXPECT_EQ(soc.dram().peekWord(priv), c + 1)
                << "cores=" << cores << " hart " << c;
        }
        EXPECT_TRUE(soc.checker().clean()) << cores;
    }
}

namespace {

/** A raw Ticked that records its action cycles (engine-agnostic). */
class Recorder : public Ticked
{
  public:
    Recorder(Simulator &sim, Cycle period, unsigned rounds)
        : Ticked("recorder"), sim_(sim), period_(period), rounds_(rounds)
    {
    }

    void
    tick() override
    {
        if (rounds_ == 0 || sim_.now() < next_)
            return;
        action_cycles.push_back(sim_.now());
        next_ = sim_.now() + period_;
        --rounds_;
    }

    Cycle
    nextWake() const override
    {
        return rounds_ == 0 ? wake_never : std::max(sim_.now(), next_);
    }

    std::vector<Cycle> action_cycles;

  private:
    Simulator &sim_;
    Cycle period_;
    Cycle next_ = 0;
    unsigned rounds_;
};

} // namespace

TEST(ParallelEngine, RawSimulatorLanePhasesMatchSerial)
{
    using Affinity = Simulator::Affinity;
    auto runRaw = [](Simulator::Engine engine, unsigned workers) {
        Simulator sim;
        Recorder pre(sim, 3, 7), lane0(sim, 5, 6), lane1(sim, 7, 4),
            post(sim, 11, 3);
        sim.add(pre, {Affinity::pre, 0});
        sim.add(lane0, {Affinity::lane, 0});
        sim.add(lane1, {Affinity::lane, 1});
        sim.add(post, {Affinity::post, 0});
        if (engine == Simulator::Engine::parallel)
            sim.setEngine(engine, workers);
        sim.run(100);
        std::vector<std::vector<Cycle>> out{
            pre.action_cycles, lane0.action_cycles, lane1.action_cycles,
            post.action_cycles};
        return out;
    };
    const auto serial = runRaw(Simulator::Engine::serial, 0);
    for (const unsigned workers : {1u, 2u, 4u}) {
        EXPECT_EQ(serial, runRaw(Simulator::Engine::parallel, workers))
            << workers;
    }
}
