/**
 * @file
 * Unit tests for the tabular result reporting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/report.hh"

namespace skipit {
namespace {

TEST(ReportTable, TextRenderingAlignsColumns)
{
    ReportTable t("demo", {"name", "value"});
    t.addRow({std::string("a"), std::uint64_t{7}});
    t.addRow({std::string("long-name"), 3.5});
    std::ostringstream os;
    t.renderText(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("=== demo ==="), std::string::npos);
    EXPECT_NE(s.find("long-name"), std::string::npos);
    EXPECT_NE(s.find("3.5"), std::string::npos);
}

TEST(ReportTable, IntegralDoublesRenderWithoutDecimals)
{
    ReportTable t("x", {"v"});
    t.addRow({42.0});
    std::ostringstream os;
    t.renderCsv(os);
    EXPECT_EQ(os.str(), "v\n42\n");
}

TEST(ReportTable, CsvEscapesCommasAndQuotes)
{
    ReportTable t("x", {"a", "b"});
    t.addRow({std::string("hello, world"), std::string("say \"hi\"")});
    std::ostringstream os;
    t.renderCsv(os);
    EXPECT_EQ(os.str(), "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n");
}

TEST(ReportTable, CellAccessor)
{
    ReportTable t("x", {"a"});
    t.addRow({std::uint64_t{9}});
    EXPECT_EQ(std::get<std::uint64_t>(t.at(0, 0)), 9u);
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.columns(), 1u);
}

TEST(ReportTable, WritesCsvFile)
{
    ReportTable t("x", {"n"});
    t.addRow({std::uint64_t{1}});
    const std::string path = "/tmp/skipit_report_test.csv";
    t.writeCsvFile(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "n");
    std::getline(in, line);
    EXPECT_EQ(line, "1");
    std::remove(path.c_str());
}

TEST(ReportTableDeathTest, RowWidthMismatchPanics)
{
    ReportTable t("x", {"a", "b"});
    EXPECT_DEATH(t.addRow({std::uint64_t{1}}), "row width");
}

} // namespace
} // namespace skipit
