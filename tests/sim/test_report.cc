/**
 * @file
 * Unit tests for the tabular result reporting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "sim/report.hh"

namespace skipit {
namespace {

TEST(ReportTable, TextRenderingAlignsColumns)
{
    ReportTable t("demo", {"name", "value"});
    t.addRow({std::string("a"), std::uint64_t{7}});
    t.addRow({std::string("long-name"), 3.5});
    std::ostringstream os;
    t.renderText(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("=== demo ==="), std::string::npos);
    EXPECT_NE(s.find("long-name"), std::string::npos);
    EXPECT_NE(s.find("3.5"), std::string::npos);
}

TEST(ReportTable, IntegralDoublesRenderWithoutDecimals)
{
    ReportTable t("x", {"v"});
    t.addRow({42.0});
    std::ostringstream os;
    t.renderCsv(os);
    EXPECT_EQ(os.str(), "v\n42\n");
}

TEST(ReportTable, CsvEscapesCommasAndQuotes)
{
    ReportTable t("x", {"a", "b"});
    t.addRow({std::string("hello, world"), std::string("say \"hi\"")});
    std::ostringstream os;
    t.renderCsv(os);
    EXPECT_EQ(os.str(), "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n");
}

/** Minimal RFC-4180 parser: the inverse of renderCsv's quoting rules. */
std::vector<std::vector<std::string>>
parseCsv(const std::string &text)
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string field;
    bool quoted = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                field += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            row.push_back(field);
            field.clear();
        } else if (c == '\n') {
            row.push_back(field);
            field.clear();
            rows.push_back(row);
            row.clear();
        } else {
            field += c;
        }
    }
    return rows;
}

TEST(ReportTable, CsvRoundTripsThroughParser)
{
    // Every awkward cell class: embedded commas, embedded quotes, both,
    // newlines absent (cells are single-line), plain numbers.
    ReportTable t("x", {"name", "note", "n"});
    t.addRow({std::string("a,b"), std::string("say \"hi\""),
              std::uint64_t{1}});
    t.addRow({std::string("\"q\",r"), std::string("plain"),
              std::uint64_t{2}});
    std::ostringstream os;
    t.renderCsv(os);
    const auto rows = parseCsv(os.str());
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"name", "note", "n"}));
    EXPECT_EQ(rows[1], (std::vector<std::string>{"a,b", "say \"hi\"", "1"}));
    EXPECT_EQ(rows[2], (std::vector<std::string>{"\"q\",r", "plain", "2"}));
}

TEST(ReportTable, CellAccessor)
{
    ReportTable t("x", {"a"});
    t.addRow({std::uint64_t{9}});
    EXPECT_EQ(std::get<std::uint64_t>(t.at(0, 0)), 9u);
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.columns(), 1u);
}

TEST(ReportTable, WritesCsvFile)
{
    ReportTable t("x", {"n"});
    t.addRow({std::uint64_t{1}});
    const std::string path = "/tmp/skipit_report_test.csv";
    t.writeCsvFile(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "n");
    std::getline(in, line);
    EXPECT_EQ(line, "1");
    std::remove(path.c_str());
}

TEST(ReportTableDeathTest, RowWidthMismatchPanics)
{
    ReportTable t("x", {"a", "b"});
    EXPECT_DEATH(t.addRow({std::uint64_t{1}}), "row width");
}

} // namespace
} // namespace skipit
