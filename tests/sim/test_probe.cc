/**
 * @file
 * Unit tests for the observability layer: probe hub dispatch, log2
 * histograms, the transaction tracer's pairing/histogram logic, and the
 * Chrome trace-event JSON export.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/histogram.hh"
#include "sim/probe.hh"
#include "sim/simulator.hh"
#include "sim/txn_tracer.hh"

namespace skipit {
namespace {

class RecordingSink : public probe::Sink
{
  public:
    std::vector<probe::Event> events;
    void onEvent(const probe::Event &e) override { events.push_back(e); }
};

TEST(ProbeHub, InactiveWithoutSinks)
{
    probe::Hub hub;
    EXPECT_FALSE(hub.active());
    RecordingSink sink;
    hub.attach(sink);
    EXPECT_TRUE(hub.active());
    hub.detach(sink);
    EXPECT_FALSE(hub.active());
}

TEST(ProbeHub, TxnIdsAdvanceWhetherObservedOrNot)
{
    // Determinism requirement: attaching a sink must never change the ids
    // handed out, so newTxn() counts unconditionally.
    probe::Hub hub;
    const TxnId first = hub.newTxn();
    RecordingSink sink;
    hub.attach(sink);
    const TxnId second = hub.newTxn();
    EXPECT_EQ(second, first + 1);
}

TEST(ProbeHub, EventsReachEveryAttachedSink)
{
    probe::Hub hub;
    RecordingSink a, b;
    hub.attach(a);
    hub.attach(b);
    hub.instant(7, 42, "stage", "track", "detail");
    ASSERT_EQ(a.events.size(), 1u);
    ASSERT_EQ(b.events.size(), 1u);
    EXPECT_EQ(a.events[0].cycle, 7u);
    EXPECT_EQ(a.events[0].txn, 42u);
    EXPECT_STREQ(a.events[0].stage, "stage");
    EXPECT_EQ(a.events[0].track, "track");
}

TEST(SimulatorHub, AccessibleThroughConstReference)
{
    // TLChannel and other latency-only holders keep `const Simulator &`;
    // they must still be able to emit events.
    Simulator sim;
    const Simulator &cref = sim;
    RecordingSink sink;
    cref.probes().attach(sink);
    EXPECT_TRUE(cref.probes().active());
    cref.probes().instant(0, cref.probes().newTxn(), "s", "t");
    EXPECT_EQ(sink.events.size(), 1u);
}

TEST(Histogram, BucketBoundariesArePowersOfTwo)
{
    Histogram h;
    h.add(0);    // bucket 0: [0, 1)
    h.add(0.5);  // bucket 0
    h.add(1);    // bucket 1: [1, 2)
    h.add(2);    // bucket 2: [2, 4)
    h.add(3);    // bucket 2
    h.add(4);    // bucket 3: [4, 8)
    h.add(1024); // bucket 11: [1024, 2048)
    const auto &b = h.buckets();
    ASSERT_EQ(b.size(), 12u);
    EXPECT_EQ(b[0], 2u);
    EXPECT_EQ(b[1], 1u);
    EXPECT_EQ(b[2], 2u);
    EXPECT_EQ(b[3], 1u);
    EXPECT_EQ(b[11], 1u);
    EXPECT_DOUBLE_EQ(Histogram::bucketLow(2), 2.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketHigh(2), 4.0);
}

TEST(Histogram, ExactPercentilesFromRetainedSamples)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100u);
    EXPECT_NEAR(h.percentile(50), 50.5, 1e-9);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, EmptyQueriesAreNaN)
{
    Histogram h;
    EXPECT_TRUE(std::isnan(h.mean()));
    EXPECT_TRUE(std::isnan(h.median()));
    EXPECT_TRUE(std::isnan(h.percentile(99)));
}

TEST(TxnTracer, PairsBeginEndIntoStageLatencies)
{
    TxnTracer tracer;
    probe::Hub hub;
    hub.attach(tracer);
    hub.begin(10, 1, "l1.fshr", "l1d.fshr0");
    hub.begin(12, 2, "l1.fshr", "l1d.fshr1");
    hub.end(30, 1, "l1.fshr", "l1d.fshr0");
    hub.end(52, 2, "l1.fshr", "l1d.fshr1");
    hub.span(5, 4, 1, "tl.c", "core0.tl.c");
    const Histogram *fshr = tracer.histogram("l1.fshr");
    ASSERT_NE(fshr, nullptr);
    EXPECT_EQ(fshr->count(), 2u);
    EXPECT_DOUBLE_EQ(fshr->min(), 20.0);
    EXPECT_DOUBLE_EQ(fshr->max(), 40.0);
    const Histogram *tl = tracer.histogram("tl.c");
    ASSERT_NE(tl, nullptr);
    EXPECT_DOUBLE_EQ(tl->max(), 4.0);
    EXPECT_EQ(tracer.histogram("never"), nullptr);
}

TEST(TxnTracer, EventsForReturnsOneTxnsHistoryInOrder)
{
    TxnTracer tracer;
    probe::Hub hub;
    hub.attach(tracer);
    hub.begin(1, 7, "lsu.window", "core0.lsu");
    hub.instant(2, 8, "lsu.fire", "core0.lsu"); // different txn
    hub.instant(3, 7, "lsu.fire", "core0.lsu");
    hub.end(9, 7, "lsu.window", "core0.lsu");
    const auto events = tracer.eventsFor(7);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].cycle, 1u);
    EXPECT_EQ(events[1].cycle, 3u);
    EXPECT_EQ(events[2].cycle, 9u);
    EXPECT_TRUE(tracer.eventsFor(99).empty());

    std::ostringstream os;
    tracer.dumpTxn(7, os);
    EXPECT_NE(os.str().find("lsu.window"), std::string::npos);
    EXPECT_NE(os.str().find("begin"), std::string::npos);
}

TEST(TxnTracer, ChromeExportIsWellFormedJson)
{
    TxnTracer tracer;
    probe::Hub hub;
    hub.attach(tracer);
    hub.begin(10, 1, "l1.fshr", "l1d.fshr0", "cbo.flush 0x1000");
    hub.instant(15, 1, "l1.fshr.state", "l1d.fshr0", "root-release");
    hub.end(40, 1, "l1.fshr", "l1d.fshr0");
    hub.span(11, 4, 1, "tl.c", "core0.tl.c", "data \"beats\"\n");
    hub.begin(50, 2, "l1.fshr", "l1d.fshr0"); // left open: wedged txn
    std::ostringstream os;
    tracer.writeChromeTrace(os);
    const std::string json = os.str();

    // Structural spot checks (no JSON library in the test binary).
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"l1d.fshr0\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":30"), std::string::npos); // 40 - 10
    EXPECT_NE(json.find(" (open)"), std::string::npos);    // unmatched begin
    EXPECT_NE(json.find("\\\"beats\\\"\\n"), std::string::npos); // escaping
    // Balanced braces/brackets => parseable nesting.
    long depth = 0;
    bool in_str = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (in_str) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_str = false;
        } else if (c == '"') {
            in_str = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            --depth;
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_str);
}

TEST(TxnTracer, HistogramOnlyModeKeepsNoEvents)
{
    TxnTracer tracer(/*keep_events=*/false);
    probe::Hub hub;
    hub.attach(tracer);
    hub.begin(0, 1, "s", "t");
    hub.end(8, 1, "s", "t");
    EXPECT_EQ(tracer.eventCount(), 0u);
    ASSERT_NE(tracer.histogram("s"), nullptr);
    EXPECT_DOUBLE_EQ(tracer.histogram("s")->max(), 8.0);
}

} // namespace
} // namespace skipit
