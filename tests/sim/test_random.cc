/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "sim/random.hh"

namespace skipit {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) {
        if (r.chance(0.25))
            ++hits;
    }
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

} // namespace
} // namespace skipit
