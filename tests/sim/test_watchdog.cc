/**
 * @file
 * Stall-watchdog tests: a wedged FSHR (the mock L2 withholds its
 * RootReleaseAck) must be flagged with the occupying transaction's full
 * event history, while legal long waits and a healthy Fig-9-style SoC run
 * must never trip it.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "../l1/mock_manager.hh"
#include "l1/data_cache.hh"
#include "sim/txn_tracer.hh"
#include "sim/watchdog.hh"
#include "workloads/workloads.hh"

namespace skipit {
namespace {

/** L1-against-mock-L2 rig with a tightly wound watchdog. */
class WatchdogRig : public ::testing::Test
{
  protected:
    Simulator sim;
    Stats stats;
    L1Config cfg{};
    WatchdogConfig wcfg{};
    std::unique_ptr<TLLink> link;
    std::unique_ptr<DataCache> dc;
    std::unique_ptr<MockManager> l2;
    std::unique_ptr<Watchdog> wd;
    TxnTracer tracer;
    std::ostringstream report;
    std::uint64_t next_id = 1;

    void
    build()
    {
        // Thresholds far below the defaults so tests stay fast; a healthy
        // flush completes in ~100 cycles, so 600 cycles of no progress is
        // unambiguous in this rig.
        wcfg.stall_threshold = 600;
        wcfg.scan_interval = 16;
        link = std::make_unique<TLLink>(sim, 1);
        dc = std::make_unique<DataCache>("l1d", sim, cfg, 0, *link, stats);
        l2 = std::make_unique<MockManager>(sim, *link);
        wd = std::make_unique<Watchdog>("watchdog", sim, wcfg);
        wd->watch(*dc);
        wd->setTracer(&tracer);
        wd->setStream(&report);
        sim.probes().attach(tracer);
        sim.add(*dc);
        sim.add(*l2);
        sim.add(*wd);
    }

    /** Submit one request (retrying nacks) and wait for its response.
     *  The rig has no LSU, so transaction ids are drawn here. */
    TxnId
    doOp(CpuOpKind kind, Addr addr, std::uint64_t data = 0)
    {
        for (int attempt = 0; attempt < 100; ++attempt) {
            CpuReq req;
            req.kind = kind;
            req.addr = addr;
            req.data = data;
            req.id = next_id++;
            req.txn = sim.probes().newTxn();
            dc->submit(req);
            CpuResp resp;
            sim.runUntil([&] {
                while (dc->respReady()) {
                    resp = dc->popResp();
                    if (resp.id == req.id)
                        return true;
                }
                return false;
            });
            if (!resp.nack)
                return req.txn;
            sim.run(4);
        }
        ADD_FAILURE() << "operation nacked forever";
        return 0;
    }

    /** Dirty @p addr and wait for the fill to land. */
    void
    dirtyLine(Addr addr, std::uint64_t value)
    {
        doOp(CpuOpKind::Store, addr, value);
        sim.runUntil([&] { return dc->lineDirty(addr); });
    }
};

TEST_F(WatchdogRig, WedgedFshrIsReportedWithTxnHistory)
{
    build();
    l2->hold_rootrelease_acks = true;

    dirtyLine(0x1000, 42);
    const TxnId flush_txn = doOp(CpuOpKind::CboFlush, 0x1000);
    ASSERT_NE(flush_txn, 0u);

    // The FSHR sends RootReleaseData and then waits forever for the ack
    // the mock is holding back.
    sim.run(3000);

    ASSERT_GE(wd->stallsDetected(), 1u);
    const StallRecord &stall = wd->stalls().front();
    EXPECT_NE(stall.resource.find("fshr"), std::string::npos)
        << stall.resource;
    EXPECT_EQ(stall.txn, flush_txn);
    EXPECT_GE(stall.reported_at - stall.stuck_since, wcfg.stall_threshold);

    const std::string out = report.str();
    EXPECT_NE(out.find("WATCHDOG"), std::string::npos);
    EXPECT_NE(out.find("history"), std::string::npos);
    // The dumped history must show how the transaction got here: through
    // the flush queue and into the FSHR.
    EXPECT_NE(out.find("l1.flushq"), std::string::npos);
    EXPECT_NE(out.find("l1.fshr"), std::string::npos);
}

TEST_F(WatchdogRig, StallReportedOncePerContinuousStall)
{
    build();
    l2->hold_rootrelease_acks = true;
    dirtyLine(0x2000, 7);
    doOp(CpuOpKind::CboFlush, 0x2000);

    sim.run(3000);
    const std::size_t after_first = wd->stallsDetected();
    ASSERT_GE(after_first, 1u);
    sim.run(3000);
    EXPECT_EQ(wd->stallsDetected(), after_first);
}

TEST_F(WatchdogRig, RecoveredStallClearsAndDoesNotRefire)
{
    build();
    l2->hold_rootrelease_acks = true;
    dirtyLine(0x3000, 9);
    doOp(CpuOpKind::CboFlush, 0x3000);
    sim.run(3000);
    ASSERT_GE(wd->stallsDetected(), 1u);
    const std::size_t count = wd->stallsDetected();

    // Unwedge: the held ack completes the FSHR; the resource vanishes and
    // nothing new is reported no matter how long we keep running.
    l2->releaseHeldAcks();
    sim.runUntil([&] { return dc->quiesced(); });
    sim.run(3000);
    EXPECT_EQ(wd->stallsDetected(), count);
}

TEST_F(WatchdogRig, HealthyFlushTrafficNeverTrips)
{
    build();
    // Normal acks, many flushes back to back: every FSHR keeps making
    // progress, so even the tight test threshold must stay silent.
    for (int i = 0; i < 8; ++i) {
        const Addr addr = 0x4000 + static_cast<Addr>(i) * line_bytes;
        dirtyLine(addr, static_cast<std::uint64_t>(i + 1));
        doOp(CpuOpKind::CboFlush, addr);
    }
    sim.runUntil([&] { return dc->quiesced(); });
    sim.run(2000);
    EXPECT_EQ(wd->stallsDetected(), 0u);
    EXPECT_TRUE(report.str().empty());
}

TEST_F(WatchdogRig, DisabledWatchdogStaysSilentEvenWhenWedged)
{
    wcfg.enabled = false;
    build();
    l2->hold_rootrelease_acks = true;
    dirtyLine(0x5000, 1);
    doOp(CpuOpKind::CboFlush, 0x5000);
    sim.run(3000);
    EXPECT_EQ(wd->stallsDetected(), 0u);
}

TEST(WatchdogSoc, HealthyFig9StyleRunHasZeroStalls)
{
    // Full-system sanity: the watchdog is on by default in every SoC; a
    // Fig-9-style dirty-then-writeback run must complete with no stalls
    // even with a much tighter threshold than the default.
    SoCConfig cfg;
    cfg.watchdog.stall_threshold = 20'000;
    cfg.watchdog.scan_interval = 128;
    SoC soc(cfg);

    constexpr unsigned lines = 64; // 4 KiB region
    soc.hart(0).setProgram(
        workloads::dirtyRegion(workloads::region_base, lines));
    soc.runToQuiescence();
    soc.hart(0).setProgram(workloads::writebackRegion(
        workloads::region_base, lines, /*flush=*/true));
    soc.runToCompletion();

    EXPECT_EQ(soc.watchdog().stallsDetected(), 0u);
    EXPECT_EQ(soc.dram().peekWord(workloads::region_base), 1u);
}

} // namespace
} // namespace skipit
