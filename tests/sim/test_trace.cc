/**
 * @file
 * Unit tests for the event-tracing facility.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.hh"

namespace skipit {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    std::ostringstream out;

    void
    SetUp() override
    {
        trace::disableAll();
        trace::setStream(&out);
    }

    void
    TearDown() override
    {
        trace::disableAll();
        trace::setStream(nullptr);
    }
};

TEST_F(TraceTest, DisabledChannelsEmitNothing)
{
    SKIPIT_TRACE_LOG(5, "quiet", "should not appear");
    EXPECT_TRUE(out.str().empty());
}

TEST_F(TraceTest, EnabledChannelEmitsFormattedLine)
{
    trace::enable("flush");
    SKIPIT_TRACE_LOG(42, "flush", "line 0x", std::hex, 0x1000);
    EXPECT_EQ(out.str(), "42: flush: line 0x1000\n");
}

TEST_F(TraceTest, AllEnablesEveryChannel)
{
    trace::enable("all");
    SKIPIT_TRACE_LOG(1, "a", "x");
    SKIPIT_TRACE_LOG(2, "b", "y");
    EXPECT_EQ(out.str(), "1: a: x\n2: b: y\n");
}

TEST_F(TraceTest, DisableAllSilencesAgain)
{
    trace::enable("l2");
    SKIPIT_TRACE_LOG(1, "l2", "one");
    trace::disableAll();
    SKIPIT_TRACE_LOG(2, "l2", "two");
    EXPECT_EQ(out.str(), "1: l2: one\n");
}

TEST_F(TraceTest, ChannelsAreIndependent)
{
    trace::enable("l1");
    SKIPIT_TRACE_LOG(1, "l1", "yes");
    SKIPIT_TRACE_LOG(2, "l2", "no");
    EXPECT_EQ(out.str(), "1: l1: yes\n");
}

TEST_F(TraceTest, ChannelHandleObservesLaterToggles)
{
    // The macro caches the channel lookup in a per-call-site static
    // Channel handle; the handle must still observe enable/disable done
    // AFTER the first execution resolved it.
    const auto log = [](Cycle c) {
        SKIPIT_TRACE_LOG(c, "cached", "tick ", c);
    };
    log(1); // resolves the static handle while disabled
    EXPECT_TRUE(out.str().empty());
    trace::enable("cached");
    log(2);
    trace::disableAll();
    log(3);
    trace::enable("cached");
    log(4);
    EXPECT_EQ(out.str(), "2: cached: tick 2\n4: cached: tick 4\n");
}

TEST_F(TraceTest, ChannelHandleSeesAllToggle)
{
    trace::Channel ch("some.channel");
    EXPECT_FALSE(ch.enabled());
    trace::enable("all");
    EXPECT_TRUE(ch.enabled());
    trace::disableAll();
    EXPECT_FALSE(ch.enabled());
}

} // namespace
} // namespace skipit
