/**
 * @file
 * Unit tests for the cycle-driven kernel.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "sim/ticked.hh"

namespace skipit {
namespace {

class Counter : public Ticked
{
  public:
    explicit Counter(std::string name) : Ticked(std::move(name)) {}
    void tick() override { ++ticks; }
    int ticks = 0;
};

TEST(Simulator, StepAdvancesClockAndTicksComponents)
{
    Simulator sim;
    Counter c("c");
    sim.add(c);
    EXPECT_EQ(sim.now(), 0u);
    sim.step();
    EXPECT_EQ(sim.now(), 1u);
    EXPECT_EQ(c.ticks, 1);
    sim.run(9);
    EXPECT_EQ(sim.now(), 10u);
    EXPECT_EQ(c.ticks, 10);
}

TEST(Simulator, ComponentsTickInRegistrationOrder)
{
    Simulator sim;
    std::vector<int> order;

    class Recorder : public Ticked
    {
      public:
        Recorder(std::string n, std::vector<int> &o, int id)
            : Ticked(std::move(n)), order_(o), id_(id)
        {
        }
        void tick() override { order_.push_back(id_); }

      private:
        std::vector<int> &order_;
        int id_;
    };

    Recorder a("a", order, 1), b("b", order, 2);
    sim.add(a);
    sim.add(b);
    sim.step();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

TEST(Simulator, RunUntilStopsAtPredicate)
{
    Simulator sim;
    Counter c("c");
    sim.add(c);
    const Cycle end = sim.runUntil([&] { return c.ticks >= 5; });
    EXPECT_EQ(end, 5u);
    EXPECT_EQ(c.ticks, 5);
}

TEST(SimulatorDeathTest, RunUntilPanicsOnDeadlock)
{
    Simulator sim;
    EXPECT_DEATH(sim.runUntil([] { return false; }, 10), "deadlock");
}

} // namespace
} // namespace skipit
