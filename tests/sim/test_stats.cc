/**
 * @file
 * Unit tests for counters and sample distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/histogram.hh"
#include "sim/stats.hh"

namespace skipit {
namespace {

TEST(Stats, CountersDefaultToZero)
{
    Stats s;
    EXPECT_EQ(s.get("never.touched"), 0u);
}

TEST(Stats, CountersAccumulate)
{
    Stats s;
    s["a.b"] += 3;
    s["a.b"]++;
    EXPECT_EQ(s.get("a.b"), 4u);
}

TEST(Stats, DumpListsAllCountersSorted)
{
    Stats s;
    s["z"] = 1;
    s["a"] = 2;
    std::ostringstream os;
    s.dump(os);
    EXPECT_EQ(os.str(), "a = 2\nz = 1\n");
}

TEST(Stats, DumpOrderingIsDeterministic)
{
    // Insertion order must not leak into the dump: counters print in
    // lexicographic key order regardless of touch order.
    Stats a, b;
    for (const char *k : {"l2.fills", "l1.0.nacks", "dram.reads", "a"})
        a[k] = 1;
    for (const char *k : {"a", "dram.reads", "l1.0.nacks", "l2.fills"})
        b[k] = 1;
    std::ostringstream oa, ob;
    a.dump(oa);
    b.dump(ob);
    EXPECT_EQ(oa.str(), ob.str());
    EXPECT_EQ(oa.str(),
              "a = 1\ndram.reads = 1\nl1.0.nacks = 1\nl2.fills = 1\n");
}

TEST(Stats, ByPrefixSelectsHierarchically)
{
    Stats s;
    s["l1.0.hits"] = 10;
    s["l1.0.misses"] = 2;
    s["l1.1.hits"] = 7;
    s["l2.hits"] = 5;
    const auto l1_0 = s.byPrefix("l1.0.");
    ASSERT_EQ(l1_0.size(), 2u);
    EXPECT_EQ(l1_0[0].first, "l1.0.hits");
    EXPECT_EQ(l1_0[1].first, "l1.0.misses");
    EXPECT_EQ(s.sumPrefix("l1."), 19u);
    EXPECT_EQ(s.sumPrefix("l2."), 5u);
    EXPECT_EQ(s.sumPrefix("dram."), 0u);
    EXPECT_EQ(s.byPrefix("").size(), 4u); // empty prefix matches all
}

TEST(Stats, DumpPrefixPrintsOnlyMatching)
{
    Stats s;
    s["l1.0.hits"] = 1;
    s["l2.hits"] = 2;
    std::ostringstream os;
    s.dumpPrefix(os, "l2.");
    EXPECT_EQ(os.str(), "l2.hits = 2\n");
}

TEST(Distribution, MedianOfOddCount)
{
    Distribution d;
    for (double v : {5.0, 1.0, 3.0})
        d.add(v);
    EXPECT_DOUBLE_EQ(d.median(), 3.0);
}

TEST(Distribution, MedianOfEvenCountInterpolates)
{
    Distribution d;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.add(v);
    EXPECT_DOUBLE_EQ(d.median(), 2.5);
}

TEST(Distribution, MeanAndStddev)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.add(v);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 2.0);
}

TEST(Distribution, PercentileBounds)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(d.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 100.0);
    EXPECT_NEAR(d.percentile(50), 50.5, 1e-9);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
}

TEST(Distribution, EmptyPercentileAndMedianAreNaN)
{
    // Documented contract: querying an empty distribution returns NaN
    // rather than asserting, so "histogram of a stage that never fired"
    // is representable.
    Distribution d;
    EXPECT_TRUE(std::isnan(d.median()));
    EXPECT_TRUE(std::isnan(d.percentile(50)));
    EXPECT_TRUE(std::isnan(d.percentile(0)));
    EXPECT_TRUE(std::isnan(d.percentile(100)));
    d.add(1.0);
    EXPECT_DOUBLE_EQ(d.median(), 1.0); // non-empty works again
}

TEST(Distribution, SingleSampleIsEveryPercentile)
{
    Distribution d;
    d.add(42.0);
    EXPECT_DOUBLE_EQ(d.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(99), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 42.0);
    EXPECT_DOUBLE_EQ(d.min(), 42.0);
    EXPECT_DOUBLE_EQ(d.max(), 42.0);
}

TEST(Histogram, EmptySummariesAreNaN)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_TRUE(std::isnan(h.percentile(50)));
    EXPECT_TRUE(std::isnan(h.percentile(99)));
    EXPECT_TRUE(std::isnan(h.median()));
}

TEST(Histogram, SingleSample)
{
    Histogram h;
    h.add(7.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.percentile(0), 7.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 7.0);
    EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST(Histogram, Log2BucketBoundaries)
{
    // Bucket 0 holds v < 1; bucket i (i >= 1) holds [2^(i-1), 2^i).
    // Exact powers of two are the boundary cases: 2^k opens bucket k+1.
    Histogram h;
    h.add(0.0);  // bucket 0
    h.add(0.5);  // bucket 0
    h.add(1.0);  // bucket 1: [1, 2)
    h.add(2.0);  // bucket 2: [2, 4)
    h.add(3.0);  // bucket 2
    h.add(4.0);  // bucket 3: [4, 8)
    h.add(7.0);  // bucket 3
    h.add(8.0);  // bucket 4: [8, 16)
    const auto &b = h.buckets();
    ASSERT_GE(b.size(), 5u);
    EXPECT_EQ(b[0], 2u);
    EXPECT_EQ(b[1], 1u);
    EXPECT_EQ(b[2], 2u);
    EXPECT_EQ(b[3], 2u);
    EXPECT_EQ(b[4], 1u);
    EXPECT_DOUBLE_EQ(Histogram::bucketLow(1), 1.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketHigh(1), 2.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketLow(4), 8.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketHigh(4), 16.0);
}

} // namespace
} // namespace skipit
