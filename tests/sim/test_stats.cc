/**
 * @file
 * Unit tests for counters and sample distributions.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace skipit {
namespace {

TEST(Stats, CountersDefaultToZero)
{
    Stats s;
    EXPECT_EQ(s.get("never.touched"), 0u);
}

TEST(Stats, CountersAccumulate)
{
    Stats s;
    s["a.b"] += 3;
    s["a.b"]++;
    EXPECT_EQ(s.get("a.b"), 4u);
}

TEST(Stats, DumpListsAllCountersSorted)
{
    Stats s;
    s["z"] = 1;
    s["a"] = 2;
    std::ostringstream os;
    s.dump(os);
    EXPECT_EQ(os.str(), "a = 2\nz = 1\n");
}

TEST(Distribution, MedianOfOddCount)
{
    Distribution d;
    for (double v : {5.0, 1.0, 3.0})
        d.add(v);
    EXPECT_DOUBLE_EQ(d.median(), 3.0);
}

TEST(Distribution, MedianOfEvenCountInterpolates)
{
    Distribution d;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.add(v);
    EXPECT_DOUBLE_EQ(d.median(), 2.5);
}

TEST(Distribution, MeanAndStddev)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.add(v);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 2.0);
}

TEST(Distribution, PercentileBounds)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(d.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 100.0);
    EXPECT_NEAR(d.percentile(50), 50.5, 1e-9);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
}

} // namespace
} // namespace skipit
