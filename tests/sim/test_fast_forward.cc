/**
 * @file
 * Quiescence fast-forward equivalence: a fast-forwarded run must be
 * bit-identical to the ticked baseline — same final cycle, same stats,
 * same probe-event timestamps — on CBO-heavy workloads, while actually
 * skipping a significant share of the cycles.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/asm.hh"
#include "sim/txn_tracer.hh"
#include "soc/soc.hh"
#include "workloads/workloads.hh"

using namespace skipit;

namespace {

/** Outcome of one run: everything an observer could compare. */
struct RunRecord
{
    Cycle elapsed = 0;
    Cycle skipped = 0;
    std::string stats;
    std::vector<probe::Event> events;
};

RunRecord
runPrograms(const std::vector<Program> &programs, bool fast_forward,
            SoCConfig cfg = {})
{
    cfg.cores = static_cast<unsigned>(programs.size());
    cfg.fast_forward = fast_forward;
    SoC soc(cfg);
    TxnTracer tracer;
    soc.sim().probes().attach(tracer);
    soc.setPrograms(programs);

    RunRecord rec;
    rec.elapsed = soc.runToQuiescence();
    rec.skipped = soc.sim().skippedCycles();
    std::ostringstream os;
    soc.stats().dump(os);
    rec.stats = os.str();
    rec.events = tracer.events();
    return rec;
}

void
expectIdentical(const RunRecord &base, const RunRecord &ff)
{
    EXPECT_EQ(base.elapsed, ff.elapsed);
    EXPECT_EQ(base.stats, ff.stats);
    ASSERT_EQ(base.events.size(), ff.events.size());
    for (std::size_t i = 0; i < base.events.size(); ++i) {
        const probe::Event &a = base.events[i];
        const probe::Event &b = ff.events[i];
        EXPECT_EQ(a.cycle, b.cycle) << "event " << i;
        EXPECT_EQ(a.dur, b.dur) << "event " << i;
        EXPECT_EQ(a.txn, b.txn) << "event " << i;
        EXPECT_EQ(a.kind, b.kind) << "event " << i;
        EXPECT_STREQ(a.stage, b.stage) << "event " << i;
        EXPECT_EQ(a.track, b.track) << "event " << i;
        EXPECT_EQ(a.detail, b.detail) << "event " << i;
    }
}

Program
cboHeavyProgram(Addr base, unsigned lines, bool flush)
{
    std::ostringstream text;
    for (unsigned i = 0; i < lines; ++i) {
        text << "store 0x" << std::hex << base + i * line_bytes
             << " 1\n";
    }
    // Real writebacks, a fence, then redundant passes that Skip It and
    // coalescing interact with.
    for (unsigned pass = 0; pass < 3; ++pass) {
        for (unsigned i = 0; i < lines; ++i) {
            text << (flush ? "cbo.flush 0x" : "cbo.clean 0x") << std::hex
                 << base + i * line_bytes << "\n";
        }
        text << "fence\n";
    }
    return assembleProgram(text.str());
}

} // namespace

TEST(FastForward, SingleCoreCboRunIsBitIdentical)
{
    const std::vector<Program> progs{
        cboHeavyProgram(0x10000000, 32, true)};
    const RunRecord base = runPrograms(progs, false);
    const RunRecord ff = runPrograms(progs, true);

    EXPECT_EQ(base.skipped, 0u);
    EXPECT_GT(ff.skipped, 0u);
    expectIdentical(base, ff);
}

TEST(FastForward, CleanVariantIsBitIdentical)
{
    const std::vector<Program> progs{
        cboHeavyProgram(0x10000000, 16, false)};
    expectIdentical(runPrograms(progs, false), runPrograms(progs, true));
}

TEST(FastForward, DualCoreSharedLineContentionIsBitIdentical)
{
    // Both cores hammer the same lines: probes, RootReleases and grant
    // races all in flight — the hardest case for wake bookkeeping.
    const std::vector<Program> progs{
        cboHeavyProgram(0x10000000, 8, true),
        cboHeavyProgram(0x10000000, 8, true)};
    const RunRecord base = runPrograms(progs, false);
    const RunRecord ff = runPrograms(progs, true);
    EXPECT_GT(ff.skipped, 0u);
    expectIdentical(base, ff);
}

TEST(FastForward, DisjointDualCoreRunIsBitIdentical)
{
    const std::vector<Program> progs{
        cboHeavyProgram(0x10000000, 16, true),
        cboHeavyProgram(0x20000000, 16, false)};
    expectIdentical(runPrograms(progs, false), runPrograms(progs, true));
}

TEST(FastForward, SkipItDisabledConfigIsBitIdentical)
{
    SoCConfig cfg;
    cfg.withSkipIt(false);
    const std::vector<Program> progs{
        cboHeavyProgram(0x10000000, 16, true)};
    expectIdentical(runPrograms(progs, false, cfg),
                    runPrograms(progs, true, cfg));
}

TEST(FastForward, WorkloadLatencyMeasurementsAreBitIdentical)
{
    for (const bool flush : {false, true}) {
        SoCConfig off;
        off.fast_forward = false;
        SoCConfig on;
        on.fast_forward = true;
        EXPECT_EQ(workloads::cboLatency(off, 2, 4096, flush),
                  workloads::cboLatency(on, 2, 4096, flush));
        EXPECT_EQ(workloads::redundantWbLatency(off, 1, 2048, flush),
                  workloads::redundantWbLatency(on, 1, 2048, flush));
        EXPECT_EQ(workloads::writeWbReadLatency(off, 1, 1024, flush),
                  workloads::writeWbReadLatency(on, 1, 1024, flush));
    }
}

TEST(FastForward, RawSimulatorDefaultsOff)
{
    Simulator sim;
    EXPECT_FALSE(sim.fastForward());
    sim.run(100);
    EXPECT_EQ(sim.now(), 100u);
    EXPECT_EQ(sim.skippedCycles(), 0u);
}

namespace {

/** A component that acts every @p period cycles and goes idle after
 *  @p rounds actions. */
class PeriodicTicked : public Ticked
{
  public:
    PeriodicTicked(Simulator &sim, Cycle period, unsigned rounds)
        : Ticked("periodic"), sim_(sim), period_(period), rounds_(rounds)
    {
    }

    void
    tick() override
    {
        ++ticks_seen;
        if (rounds_ == 0 || sim_.now() < next_)
            return;
        ++actions;
        action_cycles.push_back(sim_.now());
        next_ = sim_.now() + period_;
        --rounds_;
    }

    Cycle
    nextWake() const override
    {
        if (rounds_ == 0)
            return wake_never;
        return std::max(sim_.now(), next_);
    }

    unsigned ticks_seen = 0;
    unsigned actions = 0;
    std::vector<Cycle> action_cycles;

  private:
    Simulator &sim_;
    Cycle period_;
    Cycle next_ = 0;
    unsigned rounds_;
};

} // namespace

TEST(FastForward, SkipsIdleStretchesAndPreservesActionTiming)
{
    Simulator ticked;
    PeriodicTicked a(ticked, 10, 5);
    ticked.add(a);
    ticked.run(100);

    Simulator ff;
    PeriodicTicked b(ff, 10, 5);
    ff.add(b);
    ff.setFastForward(true);
    ff.run(100);

    EXPECT_EQ(ticked.now(), ff.now());
    EXPECT_EQ(a.action_cycles, b.action_cycles);
    EXPECT_EQ(a.ticks_seen, 100u);
    // Five actions at cycles 0,10,..,40, then idle: only the action
    // cycles are ticked.
    EXPECT_EQ(b.ticks_seen, 5u);
    EXPECT_EQ(ff.skippedCycles(), 95u);
    EXPECT_TRUE(ff.quiescent());
}

TEST(FastForward, RunUntilStopsAtSameCycle)
{
    Simulator ticked;
    PeriodicTicked a(ticked, 7, 4);
    ticked.add(a);
    const Cycle t1 = ticked.runUntil([&] { return a.actions == 3; });

    Simulator ff;
    PeriodicTicked b(ff, 7, 4);
    ff.add(b);
    ff.setFastForward(true);
    const Cycle t2 = ff.runUntil([&] { return b.actions == 3; });

    EXPECT_EQ(t1, t2);
}

TEST(FastForward, StepIgnoresFastForward)
{
    Simulator sim;
    PeriodicTicked p(sim, 10, 1);
    sim.add(p);
    sim.setFastForward(true);
    sim.step();
    sim.step();
    EXPECT_EQ(sim.now(), 2u);
    EXPECT_EQ(p.ticks_seen, 2u);
    EXPECT_EQ(sim.skippedCycles(), 0u);
}
