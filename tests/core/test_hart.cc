/**
 * @file
 * Hart-level tests: RDCYCLE-style markers, program switching, and
 * dispatch behaviour.
 */

#include <gtest/gtest.h>

#include "core/asm.hh"
#include "soc/soc.hh"

namespace skipit {
namespace {

TEST(HartMarkers, MarkersBracketTheMeasuredSection)
{
    SoCConfig cfg;
    cfg.cores = 1;
    SoC soc(cfg);
    // Warm the line so only the flush round trip is measured.
    soc.hart(0).setProgram({MemOp::store(0x1000, 1), MemOp::fence()});
    soc.runToQuiescence();

    soc.hart(0).setProgram({
        MemOp::marker(1),
        MemOp::flush(0x1000),
        MemOp::fence(),
        MemOp::marker(2),
    });
    soc.runToCompletion();
    const Cycle start = soc.hart(0).markerCycle(1);
    const Cycle end = soc.hart(0).markerCycle(2);
    EXPECT_GT(end, start);
    // A single warmed flush+fence is ~105 cycles (Fig 9 headline).
    EXPECT_GT(end - start, 60u);
    EXPECT_LT(end - start, 250u);
}

TEST(HartMarkers, MarkerWaitsForOlderOperations)
{
    SoCConfig cfg;
    cfg.cores = 1;
    SoC soc(cfg);
    soc.hart(0).setProgram({
        MemOp::marker(1),
        MemOp::load(0x50000), // cold miss, ~100 cycles
        MemOp::marker(2),
    });
    soc.runToCompletion();
    const Cycle delta = soc.hart(0).markerCycle(2) -
                        soc.hart(0).markerCycle(1);
    EXPECT_GT(delta, 50u) << "marker did not wait for the miss";
}

TEST(HartMarkers, AssemblerSupportsRdcycle)
{
    SoCConfig cfg;
    cfg.cores = 1;
    SoC soc(cfg);
    soc.hart(0).setProgram(assembleProgram(R"(
        rdcycle 10
        store 0x2000 5
        cbo.flush 0x2000
        fence
        rdcycle 20
    )"));
    soc.runToCompletion();
    EXPECT_GT(soc.hart(0).markerCycle(20), soc.hart(0).markerCycle(10));
}

TEST(HartMarkers, SetProgramClearsOldMarkers)
{
    SoCConfig cfg;
    cfg.cores = 1;
    SoC soc(cfg);
    soc.hart(0).setProgram({MemOp::marker(1)});
    soc.runToCompletion();
    soc.hart(0).setProgram({MemOp::marker(2)});
    soc.runToCompletion();
    EXPECT_NO_FATAL_FAILURE(soc.hart(0).markerCycle(2));
}

TEST(HartDispatch, DoneRequiresEverythingRetired)
{
    SoCConfig cfg;
    cfg.cores = 1;
    SoC soc(cfg);
    soc.hart(0).setProgram({
        MemOp::load(0x90000), // long miss
        MemOp::marker(7),
    });
    // After a few cycles the program counter is done but the marker is
    // still waiting on the load: done() must be false.
    soc.sim().run(5);
    EXPECT_FALSE(soc.hart(0).done());
    soc.runToCompletion();
    EXPECT_TRUE(soc.hart(0).done());
}

TEST(HartWaitUntil, GatesDispatchUntilTheAbsoluteCycle)
{
    SoCConfig cfg;
    cfg.cores = 1;
    SoC soc(cfg);
    soc.hart(0).setProgram({
        MemOp::waitUntil(500),
        MemOp::marker(1),
    });
    soc.runToCompletion();
    EXPECT_GE(soc.hart(0).markerCycle(1), 500u);
    EXPECT_LT(soc.hart(0).markerCycle(1), 520u);
}

TEST(HartWaitUntil, PastDeadlineDispatchesImmediately)
{
    SoCConfig cfg;
    cfg.cores = 1;
    SoC soc(cfg);
    // The open-loop contract: an arrival gate in the past never stalls
    // (the wait is to an absolute cycle, not a relative delay).
    soc.hart(0).setProgram({
        MemOp::compute(200),
        MemOp::waitUntil(50),
        MemOp::marker(1),
    });
    soc.runToCompletion();
    EXPECT_GE(soc.hart(0).markerCycle(1), 200u);
    EXPECT_LT(soc.hart(0).markerCycle(1), 230u);
}

TEST(HartWaitUntil, SuccessiveGatesPaceAnOpenLoopProgram)
{
    SoCConfig cfg;
    cfg.cores = 1;
    SoC soc(cfg);
    soc.hart(0).setProgram({
        MemOp::waitUntil(100), MemOp::marker(1),
        MemOp::waitUntil(300), MemOp::marker(2),
        MemOp::waitUntil(600), MemOp::marker(3),
    });
    soc.runToCompletion();
    EXPECT_GE(soc.hart(0).markerCycle(1), 100u);
    EXPECT_GE(soc.hart(0).markerCycle(2), 300u);
    EXPECT_GE(soc.hart(0).markerCycle(3), 600u);
}

} // namespace
} // namespace skipit
