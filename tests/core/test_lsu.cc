/**
 * @file
 * Unit tests of the LSU's ordering rules (§3.2, §5.1): in-order STQ
 * firing, out-of-order loads, store-to-load forwarding, fence gating on
 * the flush counter, and nack-retry behaviour.
 */

#include <gtest/gtest.h>

#include "core/hart.hh"
#include "soc/soc.hh"

namespace skipit {
namespace {

class LsuTest : public ::testing::Test
{
  protected:
    SoCConfig cfg{};

    std::unique_ptr<SoC> make()
    {
        cfg.cores = 1;
        return std::make_unique<SoC>(cfg);
    }
};

TEST_F(LsuTest, StoreToLoadForwardingReturnsStoreData)
{
    auto soc = make();
    soc->hart(0).setProgram({
        MemOp::store(0x1000, 55),
        MemOp::load(0x1000),
    });
    soc->runToCompletion();
    EXPECT_EQ(soc->hart(0).loadValue(1), 55u);
    EXPECT_GE(soc->stats().get("core0.lsu.stl_forwards"), 1u);
}

TEST_F(LsuTest, LoadsPassIndependentStores)
{
    auto soc = make();
    // Warm the load's line; then a store-miss to another line followed by
    // a load must not delay the load to a miss latency (OOO firing).
    soc->hart(0).setProgram({MemOp::load(0x2040), MemOp::fence()});
    soc->runToQuiescence();

    soc->hart(0).setProgram({
        MemOp::store(0x99000, 1), // cold: misses all the way to DRAM
        MemOp::load(0x2040),      // warm: must complete quickly
    });
    const Cycle t = soc->runToCompletion();
    // If the load waited for the store's miss this would exceed the DRAM
    // latency; out-of-order firing keeps the pair under it. The store
    // itself completes at MSHR acceptance, so total stays small.
    EXPECT_LT(t, cfg.dram.latency);
}

TEST_F(LsuTest, LoadsDoNotPassFences)
{
    auto soc = make();
    soc->hart(0).setProgram({MemOp::load(0x3000), MemOp::fence()});
    soc->runToQuiescence();

    // store (dirty) -> flush -> fence -> load: the load must observe the
    // post-flush world, i.e. it may only fire after the writeback
    // completed, pushing total latency past the flush round trip.
    soc->hart(0).setProgram({
        MemOp::store(0x3000, 2),
        MemOp::flush(0x3000),
        MemOp::fence(),
        MemOp::load(0x3000),
    });
    const Cycle t = soc->runToCompletion();
    EXPECT_GT(t, 100u); // flush round trip is ~112 cycles
    EXPECT_EQ(soc->hart(0).loadValue(3), 2u);
}

TEST_F(LsuTest, FenceWaitsForFlushCounter)
{
    auto soc = make();
    Program p;
    for (int i = 0; i < 8; ++i)
        p.push_back(MemOp::store(0x4000 + i * line_bytes, i));
    for (int i = 0; i < 8; ++i)
        p.push_back(MemOp::flush(0x4000 + i * line_bytes));
    p.push_back(MemOp::fence());
    soc->hart(0).setProgram(p);
    soc->runToCompletion();
    // When the fence completed, no flush may still be pending.
    EXPECT_FALSE(soc->l1(0).flushing());
    EXPECT_GE(soc->stats().get("core0.lsu.fences"), 1u);
}

TEST_F(LsuTest, StqFiresInProgramOrder)
{
    auto soc = make();
    // Two stores to the same word: the second must win.
    soc->hart(0).setProgram({
        MemOp::store(0x5000, 1),
        MemOp::store(0x5000, 2),
        MemOp::store(0x5000, 3),
        MemOp::flush(0x5000),
        MemOp::fence(),
    });
    soc->runToCompletion();
    EXPECT_EQ(soc->dram().peekWord(0x5000), 3u);
}

TEST_F(LsuTest, NackedOperationsRetryUntilSuccess)
{
    cfg.l1.flush_queue_depth = 1;
    cfg.l1.fshrs = 1;
    auto soc = make();
    // Far more concurrent flushes than the single FSHR + queue slot can
    // hold: the LSU must absorb the nacks and retry until all complete.
    Program p;
    for (int i = 0; i < 12; ++i)
        p.push_back(MemOp::store(0x6000 + i * line_bytes, i + 1));
    for (int i = 0; i < 12; ++i)
        p.push_back(MemOp::flush(0x6000 + i * line_bytes));
    p.push_back(MemOp::fence());
    soc->hart(0).setProgram(p);
    soc->runToCompletion();
    EXPECT_GE(soc->stats().get("core0.lsu.retries"), 1u);
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(soc->dram().peekWord(0x6000 + i * line_bytes),
                  static_cast<std::uint64_t>(i + 1));
}

TEST_F(LsuTest, WindowBackpressuresDispatch)
{
    cfg.lsu.window = 4;
    auto soc = make();
    Program p;
    for (int i = 0; i < 64; ++i)
        p.push_back(MemOp::store(0x7000 + i * line_bytes, i));
    p.push_back(MemOp::fence());
    soc->hart(0).setProgram(p);
    soc->runToCompletion(); // must still complete with a tiny window
    EXPECT_TRUE(soc->lsu(0).empty());
}

TEST_F(LsuTest, DelayOpStallsDispatch)
{
    auto soc = make();
    soc->hart(0).setProgram({
        MemOp::compute(500),
        MemOp::load(0x8000),
    });
    const Cycle t = soc->runToCompletion();
    EXPECT_GE(t, 500u);
}

TEST_F(LsuTest, PartialOverlapStoreBlocksLoadUntilDone)
{
    auto soc = make();
    // A 4-byte store overlapping an 8-byte load cannot forward; the load
    // must wait and then read the merged bytes from the cache.
    soc->hart(0).setProgram({
        MemOp::store(0x9000, 0x11223344, 4),
        MemOp::load(0x9000, 8),
    });
    soc->runToCompletion();
    EXPECT_EQ(soc->hart(0).loadValue(1) & 0xFFFFFFFFu, 0x11223344u);
}

} // namespace
} // namespace skipit
