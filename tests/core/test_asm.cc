/**
 * @file
 * Unit tests for the program assembler and the RISC-V CMO / FENCE
 * machine-code encodings.
 */

#include <gtest/gtest.h>

#include "core/asm.hh"
#include "soc/soc.hh"

namespace skipit {
namespace {

TEST(Assembler, ParsesAllMnemonics)
{
    const Program p = assembleProgram(R"(
        store 0x1000 42     ; a store
        cbo.clean 0x1000
        cbo.flush 0x1040    # a flush
        fence
        load 0x1000
        delay 25
    )");
    ASSERT_EQ(p.size(), 6u);
    EXPECT_EQ(p[0].kind, MemOpKind::Store);
    EXPECT_EQ(p[0].addr, 0x1000u);
    EXPECT_EQ(p[0].data, 42u);
    EXPECT_EQ(p[1].kind, MemOpKind::CboClean);
    EXPECT_EQ(p[2].kind, MemOpKind::CboFlush);
    EXPECT_EQ(p[2].addr, 0x1040u);
    EXPECT_EQ(p[3].kind, MemOpKind::Fence);
    EXPECT_EQ(p[4].kind, MemOpKind::Load);
    EXPECT_EQ(p[5].kind, MemOpKind::Delay);
    EXPECT_EQ(p[5].delay, 25u);
}

TEST(Assembler, ParsesAndRoundTripsWaitUntil)
{
    const Program p = assembleProgram(R"(
        waituntil 1234
        load 0x1000
    )");
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0].kind, MemOpKind::WaitUntil);
    EXPECT_EQ(p[0].delay, 1234u);
    const Program p2 = assembleProgram(disassembleProgram(p));
    ASSERT_EQ(p2.size(), 2u);
    EXPECT_EQ(p2[0].kind, MemOpKind::WaitUntil);
    EXPECT_EQ(p2[0].delay, 1234u);
}

TEST(Assembler, IgnoresBlankAndCommentLines)
{
    const Program p = assembleProgram("\n; nothing\n# nothing\n\nfence\n");
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p[0].kind, MemOpKind::Fence);
}

TEST(Assembler, AcceptsDecimalAndHex)
{
    const Program p = assembleProgram("store 4096 0x2a\n");
    EXPECT_EQ(p[0].addr, 4096u);
    EXPECT_EQ(p[0].data, 42u);
}

TEST(Assembler, DisassembleRoundTrips)
{
    const Program p = assembleProgram(R"(
        store 0x2000 0x7
        cbo.flush 0x2000
        fence
        load 0x2000
        delay 10
    )");
    const Program p2 = assembleProgram(disassembleProgram(p));
    ASSERT_EQ(p2.size(), p.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
        EXPECT_EQ(p2[i].kind, p[i].kind) << i;
        EXPECT_EQ(p2[i].addr, p[i].addr) << i;
        EXPECT_EQ(p2[i].data, p[i].data) << i;
        EXPECT_EQ(p2[i].delay, p[i].delay) << i;
    }
}

TEST(Assembler, AssembledProgramRunsOnTheSoC)
{
    SoC soc{SoCConfig{}};
    soc.hart(0).setProgram(assembleProgram(R"(
        store 0x3000 123
        cbo.flush 0x3000
        fence
    )"));
    soc.runToCompletion();
    EXPECT_EQ(soc.dram().peekWord(0x3000), 123u);
}

TEST(AssemblerDeathTest, RejectsUnknownMnemonic)
{
    EXPECT_DEATH({ assembleProgram("frobnicate 0x10\n"); }, "unknown");
}

TEST(AssemblerDeathTest, RejectsMissingOperand)
{
    EXPECT_DEATH({ assembleProgram("store 0x10\n"); }, "store needs");
}

TEST(RiscvEncoding, CboCleanMatchesCmoSpec)
{
    // cbo.clean with rs1 = x10 (a0): imm=1, funct3=CBO(010), opcode
    // MISC-MEM (0001111), rd = x0.
    const std::uint32_t insn = riscv::encodeCboClean(10);
    EXPECT_EQ(insn, (1u << 20) | (10u << 15) | (0b010u << 12) | 0b0001111u);
    EXPECT_STREQ(riscv::decodeKind(insn), "cbo.clean");
}

TEST(RiscvEncoding, CboFlushMatchesCmoSpec)
{
    const std::uint32_t insn = riscv::encodeCboFlush(5);
    EXPECT_EQ(insn, (2u << 20) | (5u << 15) | (0b010u << 12) | 0b0001111u);
    EXPECT_STREQ(riscv::decodeKind(insn), "cbo.flush");
}

TEST(RiscvEncoding, FenceRwRw)
{
    // FENCE RW,RW: pred=succ=0011 in bits 27:24 / 23:20.
    const std::uint32_t insn = riscv::encodeFenceRwRw();
    EXPECT_EQ(insn, (0b0011u << 24) | (0b0011u << 20) | 0b0001111u);
    EXPECT_STREQ(riscv::decodeKind(insn), "fence");
}

TEST(RiscvEncoding, DecodeRejectsForeignOpcodes)
{
    EXPECT_STREQ(riscv::decodeKind(0x00000013), "unknown"); // addi x0,x0,0
    EXPECT_STREQ(riscv::decodeKind((7u << 20) | (0b010u << 12) |
                                   0b0001111u),
                 "unknown"); // CBO with reserved imm
}

} // namespace
} // namespace skipit
