/**
 * @file
 * Tests for the workloads library: program builders produce exactly the
 * paper's access patterns, and the measurement harnesses return sane,
 * internally consistent results.
 */

#include <gtest/gtest.h>

#include "workloads/workloads.hh"

namespace skipit {
namespace {

using namespace workloads;

TEST(WorkloadBuilders, DirtyRegionStoresEveryLineThenFences)
{
    const Program p = dirtyRegion(0x1000, 5);
    ASSERT_EQ(p.size(), 6u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(p[static_cast<unsigned>(i)].kind, MemOpKind::Store);
        EXPECT_EQ(p[static_cast<unsigned>(i)].addr,
                  0x1000u + static_cast<Addr>(i) * line_bytes);
    }
    EXPECT_EQ(p.back().kind, MemOpKind::Fence);
}

TEST(WorkloadBuilders, WritebackRegionHonoursKindAndPasses)
{
    const Program flush = writebackRegion(0x2000, 3, true, 2);
    ASSERT_EQ(flush.size(), 7u); // 3 lines x 2 passes + fence
    EXPECT_EQ(flush[0].kind, MemOpKind::CboFlush);
    EXPECT_EQ(flush[3].kind, MemOpKind::CboFlush);
    EXPECT_EQ(flush[3].addr, 0x2000u); // second pass restarts
    const Program clean = writebackRegion(0x2000, 3, false);
    EXPECT_EQ(clean[0].kind, MemOpKind::CboClean);
}

TEST(WorkloadHarness, CboLatencyScalesWithSize)
{
    const Cycle small = cboLatency(SoCConfig{}, 1, 64, true);
    const Cycle large = cboLatency(SoCConfig{}, 1, 8192, true);
    EXPECT_GT(large, small);
    EXPECT_GT(small, 0u);
}

TEST(WorkloadHarness, MoreThreadsNeverSlowerOnLargeRegions)
{
    const Cycle one = cboLatency(SoCConfig{}, 1, 16384, true);
    const Cycle four = cboLatency(SoCConfig{}, 4, 16384, true);
    EXPECT_LT(four, one);
}

TEST(WorkloadHarness, RedundantWbBenefitsFromSkipIt)
{
    SoCConfig naive;
    naive.withSkipIt(false);
    SoCConfig skip;
    skip.withSkipIt(true);
    const Cycle n = redundantWbLatency(naive, 1, 4096, false);
    const Cycle s = redundantWbLatency(skip, 1, 4096, false);
    EXPECT_LT(s, n);
}

TEST(WorkloadMeta, NamesAndRangesAreConsistent)
{
    EXPECT_STREQ(name(DsKind::Bst), "bst");
    EXPECT_STREQ(name(DsKind::List), "linked-list");
    EXPECT_EQ(keyRange(DsKind::List), 128u);   // the paper's list size
    EXPECT_EQ(keyRange(DsKind::Bst), 10240u);  // "BST (10k keys)"
    EXPECT_FALSE(applicable(DsKind::Bst, FlushPolicy::LinkAndPersist));
    EXPECT_TRUE(applicable(DsKind::List, FlushPolicy::LinkAndPersist));
    EXPECT_TRUE(applicable(DsKind::Bst, FlushPolicy::SkipIt));
}

TEST(WorkloadMeta, MakeSetBuildsEveryKind)
{
    MemSim mem{NvmConfig{}};
    PersistCtx ctx(mem, PersistConfig{});
    for (const DsKind k : {DsKind::List, DsKind::HashTable, DsKind::Bst,
                           DsKind::SkipList}) {
        auto set = makeSet(k, ctx);
        ASSERT_NE(set, nullptr);
        EXPECT_TRUE(set->insert(0, 5));
        EXPECT_TRUE(set->contains(0, 5));
    }
}

TEST(WorkloadThroughput, ReturnsConsistentCounts)
{
    const ThroughputResult r = runThroughput(
        DsKind::HashTable, FlushPolicy::SkipIt, PersistMode::NvTraverse,
        5.0, 1, 50'000);
    EXPECT_GT(r.ops, 0u);
    EXPECT_GT(r.mops_per_mcycle, 0.0);
    // Skip It actually skipped something on this workload.
    EXPECT_GT(r.skipped_l1, 0u);
}

TEST(WorkloadThroughput, HigherUpdateRatioIsSlower)
{
    const auto reads = runThroughput(DsKind::SkipList, FlushPolicy::Plain,
                                     PersistMode::Automatic, 0.0, 1,
                                     60'000);
    const auto writes = runThroughput(DsKind::SkipList, FlushPolicy::Plain,
                                      PersistMode::Automatic, 100.0, 1,
                                      60'000);
    // Plain/automatic flushes everything either way; updates add CAS and
    // allocation work on top.
    EXPECT_LE(writes.mops_per_mcycle, reads.mops_per_mcycle * 1.10);
}

} // namespace
} // namespace skipit
