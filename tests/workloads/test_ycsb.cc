/**
 * @file
 * Served-KV benchmark tests: statistical validation of the zipfian
 * generator (chi-square goodness of fit, stream determinism), the
 * durable KV store's trace and commit discipline, open-loop latency
 * semantics, the skip-bit on/off delta, engine bit-identity of the
 * whole pipeline, and the crash-recovery audit (positive and negative).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <unordered_map>

#include "kv/store.hh"
#include "workloads/json.hh"
#include "workloads/ycsb.hh"

namespace skipit::workloads {
namespace {

// ---------------------------------------------------------------------
// Zipfian generator

TEST(Zipfian, ProbabilitiesSumToOne)
{
    const ZipfianGen zipf(100, 0.99);
    double sum = 0.0;
    for (std::uint64_t r = 0; r < 100; ++r)
        sum += zipf.probability(r);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipfian, ProbabilitiesDecreaseWithRank)
{
    const ZipfianGen zipf(50, 0.8);
    for (std::uint64_t r = 1; r < 50; ++r)
        EXPECT_LT(zipf.probability(r), zipf.probability(r - 1));
}

/**
 * Chi-square goodness of fit of the sampled ranks against the exact
 * zipfian pmf. With k = 20 categories (df = 19), the 99.9th percentile
 * of the chi-square distribution is 43.8; the bound of 60 keeps the
 * test immune to ordinary statistical noise while still catching a
 * broken sampler (a uniform sampler scores in the thousands here).
 */
void
chiSquareCheck(double theta)
{
    constexpr std::uint64_t n = 20;
    constexpr std::uint64_t draws = 200'000;
    const ZipfianGen zipf(n, theta);
    Rng rng(42);
    std::vector<std::uint64_t> observed(n, 0);
    for (std::uint64_t i = 0; i < draws; ++i) {
        const std::uint64_t r = zipf.sample(rng);
        ASSERT_LT(r, n);
        ++observed[r];
    }
    double chi2 = 0.0;
    for (std::uint64_t r = 0; r < n; ++r) {
        const double expected =
            static_cast<double>(draws) * zipf.probability(r);
        ASSERT_GT(expected, 5.0) << "chi-square preconditions violated";
        const double d = static_cast<double>(observed[r]) - expected;
        chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 60.0) << "chi-square " << chi2 << " at theta "
                          << theta << ": sampler does not match the pmf";
}

TEST(Zipfian, ChiSquareGoodnessOfFitHighSkew)
{
    chiSquareCheck(0.99);
}

TEST(Zipfian, ChiSquareGoodnessOfFitModerateSkew)
{
    chiSquareCheck(0.6);
}

TEST(Zipfian, StreamIsSeedDeterministic)
{
    const ZipfianGen zipf(1000, 0.99);
    Rng a(7), b(7), c(8);
    bool all_same_c = true;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t va = zipf.sample(a);
        ASSERT_EQ(va, zipf.sample(b)) << "stream diverged at " << i;
        all_same_c = all_same_c && va == zipf.sample(c);
    }
    EXPECT_FALSE(all_same_c) << "different seeds produced one stream";
}

// ---------------------------------------------------------------------
// The durable KV store's trace and commit discipline

std::size_t
countKind(const Program &p, MemOpKind k)
{
    std::size_t n = 0;
    for (const MemOp &op : p)
        n += op.kind == k ? 1 : 0;
    return n;
}

TEST(KvStore, PrefillBuildsTheMirrorAndImage)
{
    kv::KvStore store({0, 64});
    store.prefill(50);
    EXPECT_EQ(store.keyCount(), 50u);
    EXPECT_FALSE(store.image().empty());
    for (std::uint64_t k = 1; k <= 50; ++k) {
        EXPECT_EQ(store.version(k), 0u);
        const Addr rec = store.valueAddr(k);
        ASSERT_NE(rec, 0u);
        // The record on "NVM" carries its key, version, and payload.
        EXPECT_EQ(store.imageWord(rec), k);
        EXPECT_EQ(store.imageWord(rec + 8), 0u);
        EXPECT_EQ(store.imageWord(rec + 16),
                  kv::KvStore::valueWord(k, 0, 0));
    }
}

TEST(KvStore, UpdateAppendsAndCommitsInTwoEpochs)
{
    kv::KvStore store({0, 64});
    store.prefill(10);
    const Addr old_rec = store.valueAddr(3);
    Program p;
    store.emitUpdate(p, 3);
    EXPECT_EQ(store.version(3), 1u);
    EXPECT_NE(store.valueAddr(3), old_rec);
    // Value epoch + publish epoch.
    EXPECT_EQ(countKind(p, MemOpKind::Fence), 2u);
    EXPECT_GE(countKind(p, MemOpKind::CboClean), 4u);
    // The publish store must come after the value epoch's fence: the
    // index may never point at bytes that are not yet durable.
    std::size_t first_fence = p.size(), publish = p.size();
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (p[i].kind == MemOpKind::Fence && first_fence == p.size())
            first_fence = i;
        if (p[i].kind == MemOpKind::Store &&
            p[i].data == store.valueAddr(3))
            publish = i;
    }
    ASSERT_LT(first_fence, p.size());
    ASSERT_LT(publish, p.size());
    EXPECT_GT(publish, first_fence);
}

TEST(KvStore, InsertCommitsInThreeEpochs)
{
    kv::KvStore store({0, 64});
    store.prefill(10);
    Program p;
    const std::uint64_t key = store.emitInsert(p);
    EXPECT_EQ(key, 11u);
    EXPECT_EQ(store.keyCount(), 11u);
    // Value epoch, node-init epoch, publish epoch.
    EXPECT_EQ(countKind(p, MemOpKind::Fence), 3u);
}

TEST(KvStore, GetLoadsTheCurrentRecord)
{
    kv::KvStore store({0, 64});
    store.prefill(10);
    Program p;
    store.emitGet(p, 7);
    EXPECT_EQ(countKind(p, MemOpKind::Store), 0u);
    EXPECT_EQ(countKind(p, MemOpKind::CboClean), 0u);
    const Addr rec = store.valueAddr(7);
    bool touched = false;
    for (const MemOp &op : p)
        touched = touched || (op.kind == MemOpKind::Load &&
                              op.addr >= rec && op.addr < rec + 80);
    EXPECT_TRUE(touched) << "get never loaded the value record";
}

TEST(KvStore, CheckpointReflushesDirtiedLinesOnce)
{
    kv::KvStore store({0, 64});
    store.prefill(10);
    Program commit;
    store.emitUpdate(commit, 5);
    const std::size_t commit_cleans =
        countKind(commit, MemOpKind::CboClean);

    Program ckpt;
    store.emitCheckpoint(ckpt);
    // Conservative: every line the update dirtied is re-cleaned (the
    // redundant traffic the skip bit eats), then fenced.
    EXPECT_GE(countKind(ckpt, MemOpKind::CboClean), commit_cleans - 1);
    EXPECT_EQ(countKind(ckpt, MemOpKind::Fence), 1u);

    Program again;
    store.emitCheckpoint(again);
    EXPECT_TRUE(again.empty()) << "checkpoint did not clear its log";
}

TEST(KvStore, StoresOnDistinctHartsAreDisjoint)
{
    kv::KvStore a({0, 64}), b({1, 64});
    a.prefill(5);
    b.prefill(5);
    for (const auto &[addr, line] : a.image())
        EXPECT_EQ(b.image().count(addr), 0u)
            << "hart regions overlap at 0x" << std::hex << addr;
}

// ---------------------------------------------------------------------
// The served pipeline

KvSpec
tinySpec()
{
    KvSpec s;
    s.mix = "A";
    s.keys = 32;
    s.ops = 40;
    s.cores = 2;
    s.seed = 3;
    return s;
}

TEST(KvRun, ResultsAreBitIdenticalAcrossEnginesAndWorkers)
{
    KvSpec s = tinySpec();
    const KvRunResult ref = runKv(s);
    ASSERT_GT(ref.cycles, 0u);
    for (const unsigned workers : {1u, 2u, 4u}) {
        KvSpec p = s;
        p.engine = "parallel";
        p.workers = workers;
        const KvRunResult r = runKv(p);
        EXPECT_EQ(r.cycles, ref.cycles) << "workers " << workers;
        EXPECT_EQ(r.total_ops, ref.total_ops);
        EXPECT_EQ(r.cbo_cleans, ref.cbo_cleans);
        EXPECT_EQ(r.skip_drops, ref.skip_drops);
        // Every per-op latency sample, bit for bit.
        ASSERT_EQ(r.latency.samples().samples(),
                  ref.latency.samples().samples())
            << "latency stream differs at workers " << workers;
    }
}

TEST(KvRun, SkipBitDropsRedundantCleansAndNeverHurts)
{
    KvSpec s = tinySpec();
    s.ops = 80;
    const KvRunResult on = runKv(s);
    s.skipit = false;
    const KvRunResult off = runKv(s);
    EXPECT_GT(on.skip_drops, 0u)
        << "the conservative commit path produced no redundant cleans";
    EXPECT_EQ(off.skip_drops, 0u);
    // Dropped cleans are cleans the off-configuration must execute.
    EXPECT_GT(off.cbo_cleans, on.cbo_cleans);
    EXPECT_LE(on.cycles, off.cycles);
}

TEST(KvRun, OpenLoopLatencyIncludesQueueingDelay)
{
    KvSpec s = tinySpec();
    s.cores = 1;
    const KvRunResult closed = runKv(s);
    const double service_p50 = closed.latency.percentile(50);

    // Far above the service rate: each op queues behind the backlog,
    // and latency-from-arrival must blow past the service time.
    s.arrival_period = 20;
    const KvRunResult overloaded = runKv(s);
    EXPECT_GT(overloaded.latency.percentile(50), 4 * service_p50);

    // Far below the service rate: the queue is empty at every arrival,
    // so latency collapses back to the service time.
    s.arrival_period = 100'000;
    const KvRunResult idle = runKv(s);
    EXPECT_NEAR(idle.latency.percentile(50), service_p50,
                service_p50 * 0.5 + 8.0);
    EXPECT_GT(idle.cycles, closed.cycles) << "pacing did not stretch "
                                             "the run";
}

TEST(KvRun, EveryMixServes)
{
    for (const std::string mix : {"A", "B", "C", "D", "E"}) {
        KvSpec s = tinySpec();
        s.mix = mix;
        const KvRunResult r = runKv(s);
        EXPECT_EQ(r.total_ops, s.ops * s.cores) << "mix " << mix;
        EXPECT_EQ(r.latency.count(), s.ops * s.cores);
        EXPECT_FALSE(r.by_op.empty());
    }
}

TEST(KvRun, RejectsInvalidSpecs)
{
    KvSpec s = tinySpec();
    s.mix = "Z";
    EXPECT_THROW(runKv(s), std::runtime_error);
    s = tinySpec();
    s.theta = 1.5;
    EXPECT_THROW(runKv(s), std::runtime_error);
    s = tinySpec();
    s.engine = "warp";
    EXPECT_THROW(runKv(s), std::runtime_error);
    s = tinySpec();
    s.distribution = "gaussian";
    EXPECT_THROW(runKv(s), std::runtime_error);
}

// ---------------------------------------------------------------------
// Crash durability

TEST(KvCrash, MidRunPowerFailureLeavesARecoverableStore)
{
    KvSpec s = tinySpec();
    s.ops = 120;
    s.mix = "D"; // inserts exercise the node-init epoch too
    s.crash_at = 6000;
    const KvRunResult r = runKv(s);
    EXPECT_TRUE(r.crashed);
    EXPECT_EQ(r.oracle_violations, 0u);
    EXPECT_TRUE(r.recovery_violations.empty())
        << r.recovery_violations.front();
    EXPECT_TRUE(r.durable());
}

TEST(KvCrash, RecoveryWalkAcceptsAConsistentImage)
{
    KvSpec s = tinySpec();
    kv::KvStore store({0, 64});
    store.prefill(20);
    std::unordered_map<Addr, LineData> image(store.image().begin(),
                                             store.image().end());
    std::vector<std::string> violations;
    auditKvRecovery(s, store, 0, image, violations);
    EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(KvCrash, RecoveryWalkDetectsATornValueRecord)
{
    KvSpec s = tinySpec();
    kv::KvStore store({0, 64});
    store.prefill(20);
    std::unordered_map<Addr, LineData> image(store.image().begin(),
                                             store.image().end());
    // Tear one payload word of a published record: the index points at
    // bytes that never became durable.
    const Addr rec = store.valueAddr(7);
    LineData &line = image[lineAlign(rec + 16)];
    line[lineOffset(rec + 16)] ^= 0xff;
    std::vector<std::string> violations;
    auditKvRecovery(s, store, 0, image, violations);
    ASSERT_FALSE(violations.empty());
    EXPECT_NE(violations.front().find("torn value record"),
              std::string::npos)
        << violations.front();
}

TEST(KvCrash, RecoveryWalkDetectsADanglingIndexPointer)
{
    KvSpec s = tinySpec();
    kv::KvStore store({0, 64});
    store.prefill(20);
    std::unordered_map<Addr, LineData> image(store.image().begin(),
                                             store.image().end());
    // Zero the record's key word: as if the pointer were published
    // before the record's value epoch reached the persist domain.
    const Addr rec = store.valueAddr(13);
    for (unsigned i = 0; i < 8; ++i)
        image[lineAlign(rec)][lineOffset(rec) + i] = 0;
    std::vector<std::string> violations;
    auditKvRecovery(s, store, 0, image, violations);
    ASSERT_FALSE(violations.empty());
    EXPECT_NE(violations.front().find("record key"), std::string::npos)
        << violations.front();
}

// ---------------------------------------------------------------------
// The bench grid and its JSON rendering

TEST(KvBench, JsonIsWellFormedSchemaTaggedAndDeterministic)
{
    KvBenchSpec spec;
    spec.base = tinySpec();
    spec.mixes = {"A", "B"};
    spec.cores = {1, 2};

    const KvBenchResult result = runKvBench(spec);
    ASSERT_EQ(result.rows.size(), 4u);

    std::ostringstream os;
    writeKvBenchJson(result, os);
    const JsonValue doc = parseJson(os.str(), "bench output");
    ASSERT_EQ(doc.type, JsonValue::Type::Object);
    ASSERT_NE(doc.field("schema"), nullptr);
    EXPECT_EQ(doc.field("schema")->text, "skipit-kv-bench-v1");
    ASSERT_NE(doc.field("config"), nullptr);
    ASSERT_NE(doc.field("runs"), nullptr);
    EXPECT_EQ(doc.field("runs")->items.size(), 8u); // 4 points x on/off
    ASSERT_NE(doc.field("comparisons"), nullptr);
    EXPECT_EQ(doc.field("comparisons")->items.size(), 4u);
    for (const JsonValue &run : doc.field("runs")->items) {
        ASSERT_NE(run.field("latency"), nullptr);
        EXPECT_NE(run.field("latency")->field("p99"), nullptr);
        EXPECT_NE(run.field("ops_per_kcycle"), nullptr);
    }

    // Byte-determinism of the whole pipeline: regenerate on the
    // parallel engine with a different worker count.
    KvBenchSpec par = spec;
    par.base.engine = "parallel";
    par.base.workers = 3;
    std::ostringstream os2;
    writeKvBenchJson(runKvBench(par), os2);
    EXPECT_EQ(os.str(), os2.str());
}

TEST(KvBench, SpecParsesFromJson)
{
    const KvBenchSpec spec = KvBenchSpec::fromJsonText(R"({
        "mixes": ["A", "C"], "cores": [1, 4],
        "keys": 128, "ops": 99, "seed": 5, "theta": 0.7,
        "distribution": "zipfian", "value_bytes": 32,
        "arrival_period": 250, "slices": 2, "scan_len": 8,
        "checkpoint_every": 4
    })");
    EXPECT_EQ(spec.mixes, (std::vector<std::string>{"A", "C"}));
    EXPECT_EQ(spec.cores, (std::vector<unsigned>{1, 4}));
    EXPECT_EQ(spec.base.keys, 128u);
    EXPECT_EQ(spec.base.ops, 99u);
    EXPECT_EQ(spec.base.seed, 5u);
    EXPECT_DOUBLE_EQ(spec.base.theta, 0.7);
    EXPECT_EQ(spec.base.value_bytes, 32u);
    EXPECT_EQ(spec.base.arrival_period, 250u);
    EXPECT_EQ(spec.base.slices, 2u);
    EXPECT_EQ(spec.base.scan_len, 8u);
    EXPECT_EQ(spec.base.checkpoint_every, 4u);
    EXPECT_THROW(KvBenchSpec::fromJsonText("[1]"), std::runtime_error);
    EXPECT_THROW(KvBenchSpec::fromJsonText(R"({"mixes": []})"),
                 std::runtime_error);
}

} // namespace
} // namespace skipit::workloads
