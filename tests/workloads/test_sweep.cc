/**
 * @file
 * The parallel experiment runner: grid expansion order, JSON spec
 * parsing, result correctness against direct measurement calls, and
 * byte-identical CSV output regardless of worker count.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "workloads/sweep.hh"
#include "workloads/workloads.hh"

using namespace skipit;
using workloads::SweepAxis;
using workloads::SweepSpec;
using workloads::SweepPoint;

namespace {

std::string
csvOf(const ReportTable &t)
{
    std::ostringstream os;
    t.renderCsv(os);
    return os.str();
}

} // namespace

TEST(SweepGrid, ExpandsCartesianProductLastAxisFastest)
{
    SweepSpec spec;
    spec.axes = {{"threads", {"1", "2"}}, {"bytes", {"64", "128", "256"}}};

    const std::vector<SweepPoint> pts = workloads::expandGrid(spec);
    ASSERT_EQ(pts.size(), 6u);
    EXPECT_EQ(pts[0].params[0].second, "1");
    EXPECT_EQ(pts[0].params[1].second, "64");
    EXPECT_EQ(pts[1].params[1].second, "128");
    EXPECT_EQ(pts[2].params[1].second, "256");
    EXPECT_EQ(pts[3].params[0].second, "2");
    EXPECT_EQ(pts[3].params[1].second, "64");
    EXPECT_EQ(pts[5].params[0].second, "2");
    EXPECT_EQ(pts[5].params[1].second, "256");
    for (std::size_t i = 0; i < pts.size(); ++i)
        EXPECT_EQ(pts[i].index, i);
}

TEST(SweepGrid, EmptyAxesYieldOnePoint)
{
    SweepSpec spec;
    EXPECT_EQ(workloads::expandGrid(spec).size(), 1u);
}

TEST(SweepSpecJson, ParsesKindSeedAndAxesInOrder)
{
    const SweepSpec spec = SweepSpec::fromJsonText(R"({
        "kind": "redundant",
        "seed": 42,
        "axes": { "threads": [1, 8], "bytes": [64], "flush": [true] }
    })");
    EXPECT_EQ(spec.kind, "redundant");
    EXPECT_EQ(spec.seed, 42u);
    ASSERT_EQ(spec.axes.size(), 3u);
    EXPECT_EQ(spec.axes[0].name, "threads");
    EXPECT_EQ(spec.axes[0].values, (std::vector<std::string>{"1", "8"}));
    EXPECT_EQ(spec.axes[1].name, "bytes");
    EXPECT_EQ(spec.axes[2].values, (std::vector<std::string>{"1"}));
}

TEST(SweepSpecJson, ScalarAxisValueBecomesSingletonAxis)
{
    const SweepSpec spec = SweepSpec::fromJsonText(
        R"({"axes": {"bytes": 4096}})");
    ASSERT_EQ(spec.axes.size(), 1u);
    EXPECT_EQ(spec.axes[0].values,
              (std::vector<std::string>{"4096"}));
}

TEST(SweepSpecJson, RejectsMalformedInput)
{
    EXPECT_THROW(SweepSpec::fromJsonText("[]"), std::runtime_error);
    EXPECT_THROW(SweepSpec::fromJsonText("{\"kind\": }"),
                 std::runtime_error);
    EXPECT_THROW(SweepSpec::fromJsonText("{\"bogus\": 1}"),
                 std::runtime_error);
    EXPECT_THROW(SweepSpec::fromJsonText(
                     R"({"axes": {"threads": [[1]]}})"),
                 std::runtime_error);
    EXPECT_THROW(SweepSpec::fromJsonText("{} trailing"),
                 std::runtime_error);
}

TEST(SweepRun, UnknownAxisOrKindIsRejectedUpfront)
{
    SweepSpec spec;
    spec.kind = "nonsense";
    EXPECT_THROW(workloads::runSweep(spec, 1), std::runtime_error);

    spec.kind = "cbo";
    spec.axes = {{"frobnicate", {"1"}}};
    EXPECT_THROW(workloads::runSweep(spec, 1), std::runtime_error);

    spec.axes = {{"threads", {"banana"}}};
    EXPECT_THROW(workloads::runSweep(spec, 1), std::runtime_error);
}

TEST(SweepRun, CboPointMatchesDirectMeasurement)
{
    SweepSpec spec;
    spec.kind = "cbo";
    spec.axes = {{"threads", {"2"}},
                 {"bytes", {"1024"}},
                 {"flush", {"1"}}};

    const ReportTable table = workloads::runSweep(spec, 1);
    ASSERT_EQ(table.rows(), 1u);
    ASSERT_EQ(table.columns(), 4u);

    const Cycle direct = workloads::cboLatency(SoCConfig{}, 2, 1024, true);
    EXPECT_EQ(std::get<std::uint64_t>(table.at(0, 3)), direct);
}

TEST(SweepRun, ParallelRunsRenderByteIdenticalCsv)
{
    SweepSpec spec;
    spec.kind = "cbo";
    spec.axes = {{"threads", {"1", "2"}},
                 {"bytes", {"256", "1024"}},
                 {"flush", {"0", "1"}}};

    const std::string serial = csvOf(workloads::runSweep(spec, 1));
    const std::string j4_a = csvOf(workloads::runSweep(spec, 4));
    const std::string j4_b = csvOf(workloads::runSweep(spec, 4));
    EXPECT_EQ(serial, j4_a);
    EXPECT_EQ(j4_a, j4_b);
    // 8 rows + header.
    EXPECT_EQ(workloads::runSweep(spec, 4).rows(), 8u);
}

TEST(SweepRun, AblationAxesReachTheConfig)
{
    // skipit=0 vs 1 must produce different redundant-writeback latencies
    // (that is the paper's whole point), which proves the axis lands in
    // the SoC configuration.
    SweepSpec spec;
    spec.kind = "redundant";
    spec.axes = {{"skipit", {"0", "1"}},
                 {"threads", {"1"}},
                 {"bytes", {"2048"}},
                 {"flush", {"0"}}};

    const ReportTable table = workloads::runSweep(spec, 2);
    ASSERT_EQ(table.rows(), 2u);
    const auto off = std::get<std::uint64_t>(table.at(0, 4));
    const auto on = std::get<std::uint64_t>(table.at(1, 4));
    EXPECT_LT(on, off);
}

TEST(SweepRun, ThroughputKindProducesPlausibleRows)
{
    SweepSpec spec;
    spec.kind = "throughput";
    spec.axes = {{"ds", {"list"}},
                 {"policy", {"skip-it"}},
                 {"mode", {"automatic"}},
                 {"update_pct", {"5"}},
                 {"threads", {"1"}},
                 {"budget", {"20000"}}};

    const ReportTable table = workloads::runSweep(spec, 1);
    ASSERT_EQ(table.rows(), 1u);
    // Columns: 6 axes + 4 result columns.
    ASSERT_EQ(table.columns(), 10u);
    EXPECT_GT(std::get<double>(table.at(0, 6)), 0.0);
    EXPECT_GT(std::get<std::uint64_t>(table.at(0, 7)), 0u);
}
