/**
 * @file
 * Unit tests for TileLink channels: latency, beat serialization, message
 * helpers.
 */

#include <gtest/gtest.h>

#include "tilelink/link.hh"

namespace skipit {
namespace {

TEST(TLChannel, SingleBeatArrivesAfterLatency)
{
    Simulator sim;
    TLChannel<AMsg> ch(sim, 2);
    AMsg m;
    m.addr = 0x1000;
    ch.send(m);
    sim.run(1);
    EXPECT_FALSE(ch.ready());
    sim.run(1);
    ASSERT_TRUE(ch.ready());
    EXPECT_EQ(ch.recv().addr, 0x1000u);
}

TEST(TLChannel, MultiBeatMessageTakesBeatsCycles)
{
    Simulator sim;
    TLChannel<CMsg> ch(sim, 1);
    CMsg m;
    m.op = COp::ReleaseData;
    ch.send(m, beats_per_line); // 4 beats on a 16 B bus
    // Arrival = latency + beats - 1 = 1 + 4 - 1 = 4 cycles.
    sim.run(3);
    EXPECT_FALSE(ch.ready());
    sim.run(1);
    EXPECT_TRUE(ch.ready());
}

TEST(TLChannel, BackToBackMessagesSerializeOnBeats)
{
    Simulator sim;
    TLChannel<CMsg> ch(sim, 1);
    CMsg a, b;
    a.addr = 1;
    b.addr = 2;
    ch.send(a, 4); // occupies cycles 0-3, arrives at 4
    ch.send(b, 1); // starts at 4, arrives at 5
    sim.run(4);
    ASSERT_TRUE(ch.ready());
    EXPECT_EQ(ch.recv().addr, 1u);
    EXPECT_FALSE(ch.ready());
    sim.run(1);
    ASSERT_TRUE(ch.ready());
    EXPECT_EQ(ch.recv().addr, 2u);
}

TEST(TLChannel, ExtraDelayShiftsArrival)
{
    Simulator sim;
    TLChannel<DMsg> ch(sim, 1);
    DMsg m;
    ch.send(m, 1, 5); // 5 cycles of sender-side processing first
    sim.run(5);
    EXPECT_FALSE(ch.ready());
    sim.run(1);
    EXPECT_TRUE(ch.ready());
}

TEST(TLMessages, CMsgDataPredicates)
{
    CMsg m;
    m.op = COp::ProbeAckData;
    EXPECT_TRUE(m.hasData());
    EXPECT_FALSE(m.isRootRelease());
    m.op = COp::RootRelease;
    EXPECT_FALSE(m.hasData());
    EXPECT_TRUE(m.isRootRelease());
    m.op = COp::RootReleaseData;
    EXPECT_TRUE(m.hasData());
    EXPECT_TRUE(m.isRootRelease());
    m.op = COp::Release;
    EXPECT_FALSE(m.hasData());
}

TEST(TLMessages, DMsgPredicates)
{
    DMsg m;
    m.op = DOp::GrantData;
    EXPECT_TRUE(m.hasData());
    EXPECT_TRUE(m.isGrant());
    m.op = DOp::GrantDataDirty;
    EXPECT_TRUE(m.hasData());
    EXPECT_TRUE(m.isGrant());
    m.op = DOp::RootReleaseAck;
    EXPECT_FALSE(m.hasData());
    EXPECT_FALSE(m.isGrant());
}

TEST(TLLink, BeatsForDataMessages)
{
    CMsg c;
    c.op = COp::RootReleaseData;
    EXPECT_EQ(TLLink::beatsFor(c), beats_per_line);
    c.op = COp::RootRelease;
    EXPECT_EQ(TLLink::beatsFor(c), 1u);
    DMsg d;
    d.op = DOp::GrantData;
    EXPECT_EQ(TLLink::beatsFor(d), beats_per_line);
    d.op = DOp::ReleaseAck;
    EXPECT_EQ(TLLink::beatsFor(d), 1u);
}

} // namespace
} // namespace skipit
