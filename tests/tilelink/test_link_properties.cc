/**
 * @file
 * Property tests for the TileLink channel model: FIFO delivery, beat
 * conservation, and latency bounds under randomized traffic.
 */

#include <gtest/gtest.h>

#include "sim/random.hh"
#include "tilelink/link.hh"

namespace skipit {
namespace {

class LinkProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LinkProperty, RandomTrafficDeliversInOrderWithBeatSpacing)
{
    Simulator sim;
    const Cycle latency = 1 + GetParam() % 4;
    TLChannel<CMsg> ch(sim, latency);
    Rng rng(GetParam());

    // Random send schedule: bursts and gaps, mixed beat counts.
    struct Sent
    {
        std::uint64_t seq;
        unsigned beats;
        Cycle sent_at;
    };
    std::vector<Sent> sent;
    std::vector<Sent> received;
    std::uint64_t seq = 0;

    for (int cycle = 0; cycle < 400; ++cycle) {
        if (rng.chance(0.3)) {
            CMsg m;
            m.addr = seq; // smuggle the sequence number in the address
            const unsigned beats = rng.chance(0.4) ? beats_per_line : 1;
            ch.send(m, beats);
            sent.push_back({seq, beats, sim.now()});
            ++seq;
        }
        sim.step();
        while (ch.ready()) {
            const CMsg m = ch.recv();
            received.push_back({m.addr, 0, sim.now()});
        }
    }
    // Drain the tail.
    sim.runUntil([&] {
        while (ch.ready())
            received.push_back({ch.recv().addr, 0, sim.now()});
        return received.size() == sent.size();
    });

    // FIFO order.
    for (std::size_t i = 0; i < received.size(); ++i)
        EXPECT_EQ(received[i].seq, i) << "out of order at " << i;

    // Each message arrives no earlier than send + latency + beats - 1,
    // and consecutive arrivals are spaced by at least the successor's
    // beat count.
    for (std::size_t i = 0; i < sent.size(); ++i) {
        EXPECT_GE(received[i].sent_at,
                  sent[i].sent_at + latency + sent[i].beats - 1)
            << "too fast at " << i;
        if (i > 0) {
            EXPECT_GE(received[i].sent_at - received[i - 1].sent_at,
                      static_cast<Cycle>(sent[i].beats))
                << "beat spacing violated at " << i;
        }
    }
}

TEST_P(LinkProperty, FullLinkChannelsAreIndependent)
{
    Simulator sim;
    TLLink link(sim, 2);
    Rng rng(GetParam() * 13 + 1);

    // Saturate channel C with data messages; channel D traffic must be
    // unaffected by C's occupancy.
    for (int i = 0; i < 8; ++i) {
        CMsg c;
        c.op = COp::ReleaseData;
        link.c.send(c, beats_per_line);
    }
    DMsg d;
    d.addr = 0x42;
    link.d.send(d);
    sim.runUntil([&] { return link.d.ready(); });
    EXPECT_EQ(sim.now(), 2u); // exactly the channel latency
    EXPECT_EQ(link.d.recv().addr, 0x42u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkProperty,
                         ::testing::Values(1, 7, 42, 1234, 99999));

} // namespace
} // namespace skipit
