/**
 * @file
 * Unit tests for the TileLink crossbar: slice-selection bits, A/C/E
 * request routing by line address, D response routing by source id, B
 * routing by port identity, drain determinism and misroute injection.
 */

#include <gtest/gtest.h>

#include "tilelink/xbar.hh"

namespace skipit {
namespace {

/** A crossbar with @p clients links and @p slices slice endpoints,
 *  all registered on one simulator, wire latency 1. */
struct XbarFixture
{
    XbarFixture(unsigned clients, unsigned slices)
        : xbar("xbar", sim, slices)
    {
        for (unsigned c = 0; c < clients; ++c) {
            links.push_back(std::make_unique<TLLink>(
                sim, 1, "c" + std::to_string(c) + ".tl"));
            xbar.connectClient(static_cast<AgentId>(c), *links.back());
        }
        sim.add(xbar);
    }

    Simulator sim;
    TLXbar xbar;
    std::vector<std::unique_ptr<TLLink>> links;
};

TEST(SliceBits, PowerOfTwoWidths)
{
    EXPECT_EQ(sliceBits(1), 0u);
    EXPECT_EQ(sliceBits(2), 1u);
    EXPECT_EQ(sliceBits(4), 2u);
    EXPECT_EQ(sliceBits(8), 3u);
}

TEST(SliceBits, SliceOfLineUsesBitsAboveLineOffset)
{
    // Consecutive lines stripe across slices; sub-line offsets do not
    // change the home slice.
    for (unsigned i = 0; i < 8; ++i) {
        const Addr line = static_cast<Addr>(i) * line_bytes;
        EXPECT_EQ(sliceOfLine(line, 4), i % 4) << "line " << i;
        EXPECT_EQ(sliceOfLine(line, 2), i % 2) << "line " << i;
        EXPECT_EQ(sliceOfLine(line, 1), 0u) << "line " << i;
    }
}

TEST(TLXbar, RoutesAByLineAddress)
{
    XbarFixture f(1, 4);
    for (unsigned i = 0; i < 4; ++i) {
        AMsg m;
        m.addr = static_cast<Addr>(i) * line_bytes + 8; // off-line offset
        m.source = 0;
        f.links[0]->a.send(m);
    }
    f.sim.run(8); // all four arrive and drain
    for (unsigned s = 0; s < 4; ++s) {
        EXPECT_EQ(f.xbar.routedA(s), 1u) << "slice " << s;
        TLClientPort &p = f.xbar.port(s, 0);
        ASSERT_TRUE(p.aReady()) << "slice " << s;
        EXPECT_EQ(p.aFront().addr, static_cast<Addr>(s) * line_bytes + 8);
        p.aPop();
        EXPECT_FALSE(p.aReady());
    }
    EXPECT_TRUE(f.xbar.idle());
}

TEST(TLXbar, RoutesCAndEByLineAddress)
{
    XbarFixture f(1, 2);
    CMsg c;
    c.op = COp::Release;
    c.addr = line_bytes; // homes to slice 1
    c.source = 0;
    f.links[0]->c.send(c);
    EMsg e;
    e.addr = 0; // homes to slice 0
    e.source = 0;
    f.links[0]->e.send(e);
    f.sim.run(4);
    EXPECT_EQ(f.xbar.routedC(0), 0u);
    EXPECT_EQ(f.xbar.routedC(1), 1u);
    EXPECT_EQ(f.xbar.routedE(0), 1u);
    EXPECT_EQ(f.xbar.routedE(1), 0u);
    ASSERT_TRUE(f.xbar.port(1, 0).cReady());
    EXPECT_EQ(f.xbar.port(1, 0).cPop().addr, Addr(line_bytes));
    ASSERT_TRUE(f.xbar.port(0, 0).eReady());
    EXPECT_EQ(f.xbar.port(0, 0).ePop().addr, Addr(0));
}

TEST(TLXbar, RoutesDResponseBySourceId)
{
    XbarFixture f(2, 2);
    DMsg m;
    m.op = DOp::Grant;
    m.addr = 0x1000;
    m.dest = 1; // must land on client 1's link, from any slice
    f.xbar.port(0, 1).sendD(m, 1);
    f.sim.run(2);
    EXPECT_FALSE(f.links[0]->d.ready());
    ASSERT_TRUE(f.links[1]->d.ready());
    EXPECT_EQ(f.links[1]->d.recv().addr, 0x1000u);
}

TEST(TLXbar, RoutesBProbeByPortIdentity)
{
    XbarFixture f(2, 2);
    BMsg m;
    m.addr = 0x2000;
    // A probe issued through client 0's endpoint reaches client 0 only.
    f.xbar.port(1, 0).sendB(m);
    f.sim.run(2);
    ASSERT_TRUE(f.links[0]->b.ready());
    EXPECT_FALSE(f.links[1]->b.ready());
    EXPECT_EQ(f.links[0]->b.recv().addr, 0x2000u);
}

TEST(TLXbar, DrainPreservesPerClientOrderAcrossContention)
{
    XbarFixture f(2, 2);
    // Both clients target the same slice in the same cycle; each
    // client's own order must survive arbitration.
    for (unsigned k = 0; k < 2; ++k) {
        for (unsigned c = 0; c < 2; ++c) {
            AMsg m;
            m.addr = 2 * k * line_bytes; // always slice 0
            m.source = static_cast<AgentId>(c);
            m.txn = 10 * c + k;
            f.links[c]->a.send(m);
        }
    }
    f.sim.run(8);
    EXPECT_EQ(f.xbar.routedA(0), 4u);
    for (unsigned c = 0; c < 2; ++c) {
        TLClientPort &p = f.xbar.port(0, c);
        for (unsigned k = 0; k < 2; ++k) {
            ASSERT_TRUE(p.aReady()) << "client " << c << " msg " << k;
            EXPECT_EQ(p.aPop().txn, TxnId(10 * c + k));
        }
    }
}

TEST(TLXbar, MisrouteInjectionFlipsExactlyOneRequest)
{
    XbarFixture f(1, 2);
    f.xbar.injectAMisroute();
    AMsg a;
    a.addr = 0; // homes to slice 0, must be delivered to slice 1
    f.links[0]->a.send(a);
    AMsg b;
    b.addr = 0; // the next request routes correctly again
    f.links[0]->a.send(b);
    f.sim.run(8);
    EXPECT_EQ(f.xbar.routedA(1), 1u);
    EXPECT_EQ(f.xbar.routedA(0), 1u);
    ASSERT_TRUE(f.xbar.port(1, 0).aReady());
    EXPECT_EQ(f.xbar.port(1, 0).aPop().addr, Addr(0));
}

} // namespace
} // namespace skipit
