/**
 * @file
 * The power-failure injection subsystem end to end:
 *
 *  - the oracle is off-path: enabling it changes no cycle count, on
 *    either engine, at any slice count;
 *  - crashing at EVERY cycle of a fig9-style multi-hart CBO run passes
 *    the durability audit at cores {2,16} x slices {1,4} x both
 *    engines — the §6 soundness argument holds at every power-failure
 *    point;
 *  - quiescing before the crash point audits the final image;
 *  - the negative control: injected skip-bit corruption (a line marked
 *    "already persisted" whose bytes are not) is reliably flagged.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "core/mem_op.hh"
#include "l1/data_cache.hh"
#include "soc/soc.hh"

namespace skipit {
namespace {

/** All harts done, all caches drained — the fuzzer's settle predicate. */
bool
settled(SoC &soc)
{
    for (unsigned c = 0; c < soc.cores(); ++c) {
        if (!soc.hart(c).done() || !soc.l1(c).quiesced())
            return false;
    }
    return soc.l2Idle();
}

/** Fig 9's shape: per-hart disjoint dirty regions, a CBO sweep, a
 *  fence, then a second dirty + flush round. Region stride keeps harts
 *  in different lines (and, at slices > 1, different slices). */
std::vector<Program>
cboPrograms(unsigned harts, unsigned lines_per_hart = 2)
{
    constexpr Addr base = 0xA0000;
    std::vector<Program> programs(harts);
    for (unsigned h = 0; h < harts; ++h) {
        Program &p = programs[h];
        const Addr region =
            base + static_cast<Addr>(h) * lines_per_hart * line_bytes;
        for (unsigned l = 0; l < lines_per_hart; ++l)
            p.push_back(MemOp::store(region + l * line_bytes,
                                     0x1000 + h * 0x100 + l));
        for (unsigned l = 0; l < lines_per_hart; ++l)
            p.push_back(MemOp::clean(region + l * line_bytes));
        p.push_back(MemOp::fence());
        for (unsigned l = 0; l < lines_per_hart; ++l)
            p.push_back(MemOp::store(region + l * line_bytes,
                                     0x2000 + h * 0x100 + l));
        for (unsigned l = 0; l < lines_per_hart; ++l)
            p.push_back(MemOp::flush(region + l * line_bytes));
        p.push_back(MemOp::fence());
    }
    return programs;
}

SoCConfig
makeConfig(unsigned cores, unsigned slices, bool parallel)
{
    SoCConfig cfg;
    cfg.cores = cores;
    cfg.withSkipIt(true);
    cfg.l2.slices = slices;
    if (parallel) {
        cfg.engine = Simulator::Engine::parallel;
        cfg.workers = 3;
    }
    return cfg;
}

TEST(Durability, OracleIsCycleNeutral)
{
    for (const bool parallel : {false, true}) {
        for (const unsigned slices : {1u, 4u}) {
            SoCConfig off = makeConfig(2, slices, parallel);
            SoC soc_off(off);
            soc_off.setPrograms(cboPrograms(2));
            const Cycle t_off = soc_off.runToQuiescence();

            SoCConfig on = off;
            on.durability.enabled = true;
            SoC soc_on(on);
            soc_on.setPrograms(cboPrograms(2));
            const Cycle t_on = soc_on.runToQuiescence();

            EXPECT_EQ(t_off, t_on)
                << "oracle perturbed timing (slices " << slices
                << (parallel ? ", parallel" : ", serial") << ")";
            EXPECT_TRUE(soc_on.durability().clean());
            EXPECT_FALSE(soc_on.durability().crashed());
        }
    }
}

TEST(Durability, CrashAtEveryCyclePassesTheAudit)
{
    for (const bool parallel : {false, true}) {
        for (const unsigned cores : {2u, 16u}) {
            for (const unsigned slices : {1u, 4u}) {
                SoCConfig cfg = makeConfig(cores, slices, parallel);
                cfg.durability.enabled = true;
                cfg.durability.fatal = false;

                // One clean run establishes the natural length T.
                Cycle total = 0;
                {
                    SoC soc(cfg);
                    soc.setPrograms(cboPrograms(cores));
                    total = soc.runToQuiescence();
                    ASSERT_TRUE(soc.durability().clean());
                    ASSERT_TRUE(soc.checker().clean());
                }

                for (Cycle c = 1; c <= total; ++c) {
                    SoCConfig crash = cfg;
                    crash.durability.crash_at = c;
                    SoC soc(crash);
                    soc.setPrograms(cboPrograms(cores));
                    // The crash freezes at the first *executed* cycle
                    // >= c; if the machine settles first (c at the very
                    // end), the image can no longer change — audit it.
                    soc.sim().runUntil(
                        [&] {
                            return soc.durability().crashed() ||
                                   settled(soc);
                        },
                        total + 10'000);
                    if (!soc.durability().crashed())
                        soc.durability().crashNow();
                    ASSERT_TRUE(soc.durability().crashed());
                    EXPECT_GE(soc.durability().crashCycle(), c);
                    EXPECT_TRUE(soc.durability().clean())
                        << "crash @ cycle " << c << "/" << total
                        << " (cores " << cores << ", slices " << slices
                        << (parallel ? ", parallel)" : ", serial)")
                        << ": "
                        << soc.durability().violations().front().detail;
                }
            }
        }
    }
}

TEST(Durability, QuiescingBeforeTheCrashPointAuditsTheFinalImage)
{
    SoCConfig cfg = makeConfig(2, 1, false);
    cfg.durability.enabled = true;
    cfg.durability.fatal = false;
    cfg.durability.crash_at = 1'000'000'000; // far beyond quiescence
    SoC soc(cfg);
    soc.setPrograms(cboPrograms(2));
    soc.runToQuiescence();
    EXPECT_FALSE(soc.durability().crashed());
    soc.durability().crashNow();
    EXPECT_TRUE(soc.durability().crashed());
    EXPECT_TRUE(soc.durability().clean());
    // Every flushed line of the final image holds its last store.
    const auto &image = soc.durability().image();
    for (unsigned h = 0; h < 2; ++h) {
        for (unsigned l = 0; l < 2; ++l) {
            const Addr line = 0xA0000 + (h * 2 + l) * line_bytes;
            const auto it = image.find(line);
            ASSERT_NE(it, image.end());
            std::uint64_t word = 0;
            std::memcpy(&word, it->second.data(), sizeof(word));
            EXPECT_EQ(word, 0x2000 + h * 0x100 + l);
        }
    }
    EXPECT_GE(soc.durability().summary().sealed_claims, 4u);
}

TEST(Durability, CrashOnStageTriggersAtTheEvent)
{
    SoCConfig cfg = makeConfig(2, 1, false);
    cfg.durability.enabled = true;
    cfg.durability.fatal = false;
    cfg.durability.crash_on_stage = "persist.fence";
    SoC soc(cfg);
    soc.setPrograms(cboPrograms(2));
    soc.sim().runUntil([&] { return soc.durability().crashed(); },
                       1'000'000);
    EXPECT_TRUE(soc.durability().crashed());
    EXPECT_TRUE(soc.durability().clean());
    EXPECT_GT(soc.durability().crashCycle(), 0u);
}

/** The fuzzer's shrunk repro for the stale-skip-bit bug: dirty a line,
 *  clean it twice. The second clean must not be elided off the skip bit
 *  the fill set — dirtying clears it — and when the FSHR coalesces the
 *  redundant clean, the captured data is still what lands in DRAM. */
TEST(Durability, RedundantCleanAfterDirtyingIsSound)
{
    const Addr line = 0x90140;
    SoCConfig cfg = makeConfig(1, 1, false);
    cfg.durability.enabled = true;
    SoC soc(cfg);
    soc.setPrograms({Program{MemOp::store(line + 0x38, 0x5117),
                             MemOp::clean(line), MemOp::clean(line),
                             MemOp::fence()}});
    soc.runToQuiescence();
    EXPECT_TRUE(soc.durability().clean());
    soc.durability().crashNow();
    EXPECT_TRUE(soc.durability().clean());
    const auto it = soc.durability().image().find(line);
    ASSERT_NE(it, soc.durability().image().end());
    std::uint64_t word = 0;
    std::memcpy(&word, it->second.data() + 0x38, sizeof(word));
    EXPECT_EQ(word, 0x5117u);
}

/** An FSHR that already captured its data must refuse to coalesce a
 *  clean issued after the line was re-dirtied: the second store's value
 *  has to reach DRAM via its own writeback, not vanish behind the stale
 *  capture. */
TEST(Durability, RecleanAfterRedirtyPersistsTheNewValue)
{
    const Addr line = 0x90140;
    SoCConfig cfg = makeConfig(1, 1, false);
    cfg.durability.enabled = true;
    SoC soc(cfg);
    soc.setPrograms({Program{MemOp::store(line, 1), MemOp::clean(line),
                             MemOp::store(line, 2), MemOp::clean(line),
                             MemOp::fence()}});
    soc.runToQuiescence();
    EXPECT_TRUE(soc.durability().clean());
    soc.durability().crashNow();
    EXPECT_TRUE(soc.durability().clean());
    const auto it = soc.durability().image().find(line);
    ASSERT_NE(it, soc.durability().image().end());
    std::uint64_t word = 0;
    std::memcpy(&word, it->second.data(), sizeof(word));
    EXPECT_EQ(word, 2u);
}

/** The persist-domain summary the watchdog escalation and the fuzz
 *  replay bundles print: frozen state once crashed, crash cycle named. */
TEST(Durability, ReportSummaryDescribesTheFrozenPersistDomain)
{
    SoCConfig cfg = makeConfig(2, 1, false);
    cfg.durability.enabled = true;
    cfg.durability.fatal = false;
    SoC soc(cfg);
    soc.setPrograms(cboPrograms(2));
    soc.runToQuiescence();

    std::ostringstream live;
    soc.durability().reportSummary(live);
    EXPECT_NE(live.str().find("(live)"), std::string::npos);

    soc.durability().crashNow();
    std::ostringstream frozen;
    soc.durability().reportSummary(frozen);
    const std::string out = frozen.str();
    EXPECT_NE(out.find("(crashed)"), std::string::npos);
    EXPECT_NE(out.find("persist domain @ cycle " +
                       std::to_string(soc.durability().crashCycle())),
              std::string::npos);
    EXPECT_NE(out.find("durable lines"), std::string::npos);
    EXPECT_NE(out.find("fence-observed durability claims"),
              std::string::npos);
}

/** The negative control: a clean L1 line whose skip bit lies. */
TEST(Durability, InjectedSkipCorruptionIsDetected)
{
    const Addr line = 0xB0000;
    for (const bool inject : {false, true}) {
        SoCConfig cfg = makeConfig(2, 1, false);
        cfg.durability.enabled = true;
        cfg.durability.fatal = false;
        // The coherence checker's skip-soundness sweep catches the
        // corruption too (by design); latch instead of panicking so the
        // run reaches the elision point the durability oracle audits.
        cfg.verify.fatal = false;
        SoC soc(cfg);
        // hart0 dirties the line; hart1's load pulls it over (the L2
        // copy is dirty, DRAM still stale, so hart1's L1 copy is clean
        // data the persist domain does NOT have). A skip bit on that
        // line is exactly the corruption the oracle must catch.
        Program p0{MemOp::store(line, 0x42), MemOp::fence()};
        Program p1{MemOp::compute(80), MemOp::load(line),
                   MemOp::compute(120), MemOp::clean(line),
                   MemOp::fence()};
        soc.setPrograms({p0, p1});
        soc.sim().runUntil(
            [&] {
                const L1Arrays &a = soc.l1(1).arrays();
                const int w = a.findWay(line);
                return w >= 0 &&
                       !a.meta(a.setOf(line),
                               static_cast<unsigned>(w))
                            .dirty;
            },
            100'000);
        if (inject)
            soc.l1(1).injectSkipCorruption(line);
        soc.runToQuiescence();
        if (inject) {
            ASSERT_FALSE(soc.durability().clean())
                << "injected skip-bit corruption went undetected";
            EXPECT_EQ(soc.durability().violations().front().invariant,
                      "skip-drop");
            // Defense in depth: the always-on checker flags it too.
            EXPECT_FALSE(soc.checker().clean());
        } else {
            EXPECT_TRUE(soc.durability().clean())
                << (soc.durability().violations().empty()
                        ? std::string()
                        : soc.durability().violations().front().detail);
        }
    }
}

} // namespace
} // namespace skipit
