/**
 * @file
 * §5.4 interference corners, swept across arrival timings and asserted
 * clean under the (fatal-by-default) invariant checker: a probe landing
 * in every FSHR stage — including the multi-cycle meta_write/fill_buffer
 * window of the narrow data array — and an eviction racing a pending
 * flush-queue entry.
 */

#include <gtest/gtest.h>

#include "soc/soc.hh"

namespace skipit {
namespace {

/**
 * Probe vs FSHR stage sweep: hart 1 dirties and flushes a shared line;
 * hart 0's load fires the probe after @p delay cycles. Sweeping the
 * delay walks the probe's arrival across allocation, meta_write,
 * fill_buffer (multi-cycle with the narrow array), root_release and the
 * ack wait. The checker vets every intermediate state; the load value
 * and the persisted word prove function survived the interference.
 */
void
probeDuringFshrStage(bool wide_array, Cycle delay)
{
    SoCConfig cfg;
    cfg.cores = 2;
    cfg.l1.wide_data_array = wide_array;
    SoC soc(cfg);

    const Addr line = 0x90000;
    Program p1;
    p1.push_back(MemOp::store(line + 8, 0xd1d1));
    p1.push_back(MemOp::flush(line));
    p1.push_back(MemOp::fence());
    Program p0;
    p0.push_back(MemOp::compute(delay));
    p0.push_back(MemOp::load(line + 8));
    soc.setPrograms({p0, p1});
    soc.runToQuiescence(1'000'000);

    ASSERT_TRUE(soc.checker().clean());
    EXPECT_EQ(soc.hart(0).loadValue(1), 0xd1d1u) << "delay " << delay;
    EXPECT_EQ(soc.dram().peekWord(line + 8), 0xd1d1u);
}

TEST(Interference, ProbeSweepAcrossFshrStagesNarrowArray)
{
    // The narrow array stretches meta_write and fill_buffer over
    // several cycles (§5.4): every arrival offset must be clean.
    for (Cycle d = 0; d <= 40; ++d)
        probeDuringFshrStage(false, d);
}

TEST(Interference, ProbeSweepAcrossFshrStagesWideArray)
{
    for (Cycle d = 0; d <= 40; ++d)
        probeDuringFshrStage(true, d);
}

/**
 * Eviction vs pending flush-queue entry (§5.4.2): with one FSHR pinned
 * on line B, a flush of line A waits in the queue while loads of lines
 * aliasing A's set force A's eviction. The eviction must invalidate the
 * queued snapshot (the checker asserts the agreement every cycle) and
 * the machine must still persist A.
 */
TEST(Interference, EvictionRacesPendingFlushQueueEntry)
{
    for (Cycle d = 0; d <= 24; d += 2) {
        SoCConfig cfg;
        cfg.l1.fshrs = 1;
        cfg.l1.flush_queue_depth = 8;
        cfg.l1.sets = 4; // tiny cache: two extra lines evict a set
        cfg.l1.ways = 2;
        SoC soc(cfg);

        const Addr a = 0x90000, b = 0x90040;
        const Addr set_stride =
            static_cast<Addr>(cfg.l1.sets) * line_bytes;
        Program p;
        p.push_back(MemOp::store(a + 8, 0xa0a0));
        p.push_back(MemOp::store(b + 8, 0xb0b0));
        p.push_back(MemOp::flush(b)); // occupies the single FSHR
        p.push_back(MemOp::flush(a)); // queued behind it
        p.push_back(MemOp::compute(d));
        // Alias A's set until A is the LRU victim.
        p.push_back(MemOp::load(a + set_stride));
        p.push_back(MemOp::load(a + 2 * set_stride));
        p.push_back(MemOp::load(a + 3 * set_stride));
        p.push_back(MemOp::fence());
        soc.hart(0).setProgram(p);
        soc.runToQuiescence(1'000'000);

        ASSERT_TRUE(soc.checker().clean()) << "delay " << d;
        // Whether the flush caught the line or the eviction wrote it
        // back, the store must be in DRAM after the fence.
        EXPECT_EQ(soc.dram().peekWord(a + 8), 0xa0a0u) << "delay " << d;
        EXPECT_EQ(soc.dram().peekWord(b + 8), 0xb0b0u) << "delay " << d;
        EXPECT_FALSE(soc.l1(0).flushing());
    }
}

} // namespace
} // namespace skipit
