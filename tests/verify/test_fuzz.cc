/**
 * @file
 * The seeded fuzz harness: deterministic replay, failure detection via
 * the injected fault, shrinking, and replay-bundle round-trips.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "workloads/fuzz.hh"

namespace skipit {
namespace {

using workloads::FuzzFailure;
using workloads::FuzzSpec;

/** Small and fast, but still aliasing-prone. */
FuzzSpec
smallSpec()
{
    FuzzSpec spec;
    spec.harts = 2;
    spec.ops = 60;
    spec.lines = 4;
    spec.max_cycles = 500'000;
    return spec;
}

/** The injected probe fault plus the geometry that exposes it: a single
 *  FSHR keeps flush-queue entries queued long enough to be probed. */
FuzzSpec
faultySpec()
{
    FuzzSpec spec = smallSpec();
    spec.fshrs = 1;
    spec.flush_queue_depth = 8;
    spec.break_probe_invalidate = true;
    return spec;
}

/** A seed that trips the injected fault (verified by the test). */
std::uint64_t
faultySeed()
{
    auto f = workloads::runFuzz(faultySpec(), 0, 50, 1);
    EXPECT_TRUE(f.has_value()) << "injected fault never fired";
    return f ? f->seed : 0;
}

TEST(Fuzz, GenerationIsDeterministic)
{
    const FuzzSpec spec = smallSpec();
    const auto a = workloads::generateFuzzPrograms(spec, 42);
    const auto b = workloads::generateFuzzPrograms(spec, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t h = 0; h < a.size(); ++h) {
        ASSERT_EQ(a[h].size(), b[h].size());
        for (std::size_t i = 0; i < a[h].size(); ++i) {
            EXPECT_EQ(static_cast<int>(a[h][i].kind),
                      static_cast<int>(b[h][i].kind));
            EXPECT_EQ(a[h][i].addr, b[h][i].addr);
            EXPECT_EQ(a[h][i].data, b[h][i].data);
        }
    }
    // Different seeds draw different programs.
    const auto c = workloads::generateFuzzPrograms(spec, 43);
    bool differs = false;
    for (std::size_t i = 0; i < std::min(a[0].size(), c[0].size()); ++i)
        differs = differs || a[0][i].addr != c[0][i].addr ||
                  a[0][i].data != c[0][i].data;
    EXPECT_TRUE(differs);
}

TEST(Fuzz, CleanSeedsStayCleanUnderJitter)
{
    // Function must be schedule-invariant: jittered runs of the honest
    // protocol pass every invariant and every value check.
    EXPECT_FALSE(workloads::runFuzz(smallSpec(), 0, 25, 2).has_value());
}

TEST(Fuzz, CleanSeedsStayCleanAtTwoSlicesUnderJitter)
{
    // Same property through the crossbar with an interleaved L2: the
    // slice-routing and global flush-counter invariants run too.
    FuzzSpec spec = smallSpec();
    spec.l2_slices = 2;
    EXPECT_FALSE(workloads::runFuzz(spec, 0, 25, 2).has_value());
}

TEST(Fuzz, CleanSeedsStayCleanAtFourSlicesUnderJitter)
{
    FuzzSpec spec = smallSpec();
    spec.l2_slices = 4;
    spec.lines = 8; // cover every slice
    EXPECT_FALSE(workloads::runFuzz(spec, 0, 25, 2).has_value());
}

TEST(Fuzz, InjectedFaultIsCaughtAndReplaysDeterministically)
{
    const FuzzSpec spec = faultySpec();
    const std::uint64_t seed = faultySeed();
    const auto a = workloads::runFuzzSeed(spec, seed);
    const auto b = workloads::runFuzzSeed(spec, seed);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->kind, "invariant");
    EXPECT_NE(a->detail.find("probe-invalidate"), std::string::npos)
        << a->detail;
    // Same seed, same run: identical failure, bit for bit.
    EXPECT_EQ(a->kind, b->kind);
    EXPECT_EQ(a->cycle, b->cycle);
    EXPECT_EQ(a->detail, b->detail);
}

TEST(Fuzz, ShrinkKeepsFailureAndNeverGrows)
{
    const FuzzSpec spec = faultySpec();
    const auto f = workloads::runFuzzSeed(spec, faultySeed());
    ASSERT_TRUE(f.has_value());
    const auto size = [](const FuzzFailure &x) {
        std::size_t n = 0;
        for (const Program &p : x.programs)
            n += p.size();
        return n;
    };
    const FuzzFailure shrunk = workloads::shrinkFuzzFailure(spec, *f);
    EXPECT_LE(size(shrunk), size(*f));
    // The shrunk variant must still reproduce.
    const auto again =
        workloads::runFuzzPrograms(spec, shrunk.seed, shrunk.programs);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->kind, shrunk.kind);
    EXPECT_EQ(again->cycle, shrunk.cycle);
}

TEST(Fuzz, ReplayBundleRoundTrips)
{
    const FuzzSpec spec = faultySpec();
    const auto f = workloads::runFuzzSeed(spec, faultySeed());
    ASSERT_TRUE(f.has_value());

    const std::string dir =
        ::testing::TempDir() + "/skipit_fuzz_bundle";
    std::filesystem::remove_all(dir);
    ASSERT_TRUE(workloads::writeReplayBundle(spec, *f, dir));
    for (const char *file :
         {"config.txt", "core0.s", "core1.s", "failure.txt",
          "trace.json", "txn_history.txt"}) {
        EXPECT_TRUE(std::filesystem::exists(dir + "/" + file)) << file;
    }

    std::vector<Program> programs;
    const auto [rspec, rseed] =
        workloads::readReplayBundle(dir, programs);
    EXPECT_EQ(rseed, f->seed);
    EXPECT_EQ(rspec.harts, spec.harts);
    EXPECT_EQ(rspec.fshrs, spec.fshrs);
    EXPECT_TRUE(rspec.break_probe_invalidate);

    const auto replayed =
        workloads::runFuzzPrograms(rspec, rseed, programs);
    ASSERT_TRUE(replayed.has_value());
    EXPECT_EQ(replayed->kind, f->kind);
    EXPECT_EQ(replayed->cycle, f->cycle);
    EXPECT_EQ(replayed->detail, f->detail);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace skipit
