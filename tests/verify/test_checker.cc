/**
 * @file
 * The coherence invariant checker: catches injected protocol faults by
 * name, stays silent on healthy runs, and costs zero simulated cycles.
 */

#include <gtest/gtest.h>

#include "soc/soc.hh"
#include "workloads/fuzz.hh"

namespace skipit {
namespace {

/**
 * A deterministic §5.4 probe-vs-flush-queue race: hart 1 dirties two
 * lines and queues flushes for both; with a single FSHR the second
 * flush waits in the queue while hart 0's load probes its line.
 */
SoCConfig
raceConfig()
{
    SoCConfig cfg;
    cfg.cores = 2;
    cfg.l1.fshrs = 1;
    cfg.l1.flush_queue_depth = 8;
    return cfg;
}

std::vector<Program>
racePrograms()
{
    const Addr a = 0x90000, b = 0x90040;
    Program p1;
    p1.push_back(MemOp::store(a + 8, 0x1111));
    p1.push_back(MemOp::store(b + 8, 0x2222));
    p1.push_back(MemOp::flush(b)); // occupies the only FSHR
    p1.push_back(MemOp::flush(a)); // stays queued, snapshot dirty
    p1.push_back(MemOp::fence());
    Program p0;
    p0.push_back(MemOp::compute(20));
    p0.push_back(MemOp::load(a + 8)); // probes hart 1 mid-queue
    return {p0, p1};
}

TEST(CoherenceChecker, InjectedProbeFaultDiesWithNamedInvariant)
{
    // probe_invalidate disabled: the probe downgrades the line but the
    // queued flush entry keeps its stale dirty snapshot. The checker is
    // fatal by default and must name the broken invariant — proof that
    // it watches this window at all.
    EXPECT_DEATH(
        {
            SoCConfig cfg = raceConfig();
            cfg.l1.test_break_probe_invalidate = true;
            SoC soc(cfg);
            soc.setPrograms(racePrograms());
            soc.runToQuiescence(1'000'000);
        },
        "probe-invalidate");
}

TEST(CoherenceChecker, SameRaceIsCleanWithoutTheFault)
{
    SoC soc(raceConfig());
    soc.setPrograms(racePrograms());
    soc.runToQuiescence(1'000'000);
    EXPECT_TRUE(soc.checker().clean());
    EXPECT_GT(soc.checker().checksRun(), 0u);
    EXPECT_EQ(soc.hart(0).loadValue(1), 0x1111u);
}

TEST(CoherenceChecker, LatchingModeRecordsViolationsWithoutAborting)
{
    SoCConfig cfg = raceConfig();
    cfg.l1.test_break_probe_invalidate = true;
    cfg.verify.fatal = false;
    SoC soc(cfg);
    soc.setPrograms(racePrograms());
    // Stop at the first latched violation; the broken protocol state is
    // not guaranteed to settle.
    soc.sim().runUntil([&] { return !soc.checker().clean(); }, 100'000);
    ASSERT_FALSE(soc.checker().clean());
    EXPECT_EQ(soc.checker().violations().front().invariant,
              "probe-invalidate");
}

TEST(CoherenceChecker, CheckerOnOffIsCycleIdentical)
{
    // The checker is an observer registered last with nextWake() ==
    // wake_never: enabling it must not move a single cycle, even with
    // quiescence fast-forward on.
    const auto run = [](bool enabled) {
        SoCConfig cfg;
        cfg.cores = 2;
        cfg.verify.enabled = enabled;
        SoC soc(cfg);
        std::vector<Program> ps(2);
        for (unsigned c = 0; c < 2; ++c) {
            for (int i = 0; i < 40; ++i) {
                const Addr a = 0x90000 +
                               static_cast<Addr>(i % 5) * line_bytes;
                ps[c].push_back(MemOp::store(a + 8 * c,
                                             0x100u * c + i + 1));
                if (i % 3 == 0)
                    ps[c].push_back(MemOp::flush(a));
                if (i % 7 == 0)
                    ps[c].push_back(MemOp::fence());
            }
        }
        soc.setPrograms(ps);
        return soc.runToQuiescence(10'000'000);
    };
    EXPECT_EQ(run(true), run(false));
}

TEST(CoherenceChecker, CheckNowSweepsQuiescentState)
{
    SoC soc(SoCConfig{});
    Program p;
    p.push_back(MemOp::store(0x40008, 0xabcd));
    p.push_back(MemOp::flush(0x40000));
    p.push_back(MemOp::fence());
    soc.hart(0).setProgram(p);
    soc.runToQuiescence(1'000'000);
    soc.checker().checkNow(); // adds the full L2-vs-DRAM comparison
    EXPECT_TRUE(soc.checker().clean());
    EXPECT_EQ(soc.dram().peekWord(0x40008), 0xabcdu);
}

} // namespace
} // namespace skipit
