/**
 * @file
 * Unit tests of the L1's §5.4 interference interlocks and §3.3 MSHR
 * secondary-merge rules, driven against the mock L2.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "l1/data_cache.hh"
#include "mock_manager.hh"

namespace skipit {
namespace {

class InterlockTest : public ::testing::Test
{
  protected:
    Simulator sim;
    Stats stats;
    L1Config cfg{};
    std::unique_ptr<TLLink> link;
    std::unique_ptr<DataCache> dc;
    std::unique_ptr<MockManager> l2;
    std::uint64_t next_id = 1;

    void
    build()
    {
        link = std::make_unique<TLLink>(sim, 1);
        dc = std::make_unique<DataCache>("l1d", sim, cfg, 0, *link, stats);
        l2 = std::make_unique<MockManager>(sim, *link);
        sim.add(*dc);
        sim.add(*l2);
    }

    CpuResp
    doOp(CpuOpKind kind, Addr addr, std::uint64_t data = 0)
    {
        CpuReq req;
        req.kind = kind;
        req.addr = addr;
        req.data = data;
        req.id = next_id++;
        dc->submit(req);
        CpuResp resp;
        sim.runUntil([&] {
            while (dc->respReady()) {
                resp = dc->popResp();
                if (resp.id == req.id)
                    return true;
            }
            return false;
        });
        return resp;
    }

    void
    doOpRetry(CpuOpKind kind, Addr addr, std::uint64_t data = 0)
    {
        for (int i = 0; i < 200; ++i) {
            if (!doOp(kind, addr, data).nack)
                return;
            sim.run(4);
        }
        FAIL() << "nacked forever";
    }

    void
    fillDirty(Addr addr, std::uint64_t v)
    {
        doOpRetry(CpuOpKind::Store, addr, v);
        sim.runUntil([&] { return dc->lineDirty(addr); });
    }

    void
    quiesce()
    {
        sim.runUntil([&] { return dc->quiesced(); });
    }
};

TEST_F(InterlockTest, EvictionInvalidatesQueuedFlushEntry)
{
    build();
    l2->hold_rootrelease_acks = true;
    // Saturate the FSHRs so the interesting request stays queued.
    for (int i = 0; i < 8; ++i)
        doOp(CpuOpKind::CboFlush, 0x400000 + i * line_bytes);

    // Dirty a line and queue a flush for it (snapshot hit+dirty).
    fillDirty(0x10000, 5);
    doOp(CpuOpKind::CboFlush, 0x10000);

    // Force an eviction of that line: fill its set with 8 other lines
    // (64-set cache: stride = 64 lines).
    const Addr stride = static_cast<Addr>(cfg.sets) * line_bytes;
    for (unsigned i = 1; i <= cfg.ways; ++i)
        doOpRetry(CpuOpKind::Load, 0x10000 + i * stride);
    // Whether 0x10000 was the victim depends on LRU; make sure by
    // loading one more round of fresh lines.
    for (unsigned i = cfg.ways + 1; i <= 2 * cfg.ways; ++i)
        doOpRetry(CpuOpKind::Load, 0x10000 + i * stride);
    ASSERT_EQ(dc->lineState(0x10000), ClientState::Nothing);

    // Drain: the queued flush executes with downgraded (miss) metadata —
    // §5.4.2 — instead of reading a vanished line.
    sim.runUntil([&] {
        l2->releaseHeldAcks();
        return !dc->flushing();
    });
    bool found = false;
    for (const CMsg &m : l2->rootReleases()) {
        if (m.addr == 0x10000) {
            found = true;
            EXPECT_EQ(m.op, COp::RootRelease); // eviction carried the data
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(InterlockTest, ProbeWaitsForActiveFshrOnSameLine)
{
    build();
    l2->hold_rootrelease_acks = true;
    fillDirty(0x20000, 9);
    doOp(CpuOpKind::CboClean, 0x20000);
    // Wait until the FSHR is mid-flight (release sent, ack held).
    sim.runUntil([&] { return l2->heldAcks() == 1; });

    // Probe the same line: the probe may only complete after flush_rdy
    // rises — which it already has (state root_release_ack), so it
    // responds; but the response must reflect the post-clean state
    // (clean data, TtoN without data payload since the FSHR took it).
    l2->probe(0x20000, Cap::toN);
    sim.runUntil([&] {
        for (const CMsg &m : l2->c_messages) {
            if (m.op == COp::ProbeAck && m.addr == 0x20000)
                return true;
        }
        return false;
    });
    for (const CMsg &m : l2->c_messages) {
        if (m.op == COp::ProbeAck && m.addr == 0x20000) {
            EXPECT_EQ(m.param, Shrink::TtoN);
        }
    }
    l2->releaseHeldAcks();
    quiesce();
}

TEST_F(InterlockTest, LoadSecondaryMergesIntoStoreMshr)
{
    build();
    l2->grant_delay = 40; // keep the MSHR open long enough
    // Store misses -> MSHR (NtoT). A load to the same line while the
    // MSHR is outstanding must merge as a secondary, not allocate or
    // nack (§3.3).
    const CpuResp st = doOp(CpuOpKind::Store, 0x30000, 77);
    EXPECT_FALSE(st.nack); // accepted at MSHR allocation
    const CpuResp ld = doOp(CpuOpKind::Load, 0x30000);
    EXPECT_FALSE(ld.nack);
    EXPECT_EQ(ld.data, 77u); // replayed after the store in RPQ order
    EXPECT_GE(stats.get("l1.0.mshr_secondary"), 1u);
    EXPECT_EQ(l2->acquires.size(), 1u);
    quiesce();
}

TEST_F(InterlockTest, StoreSecondaryRejectedOnLoadMshr)
{
    build();
    l2->grant_delay = 60;
    CpuReq load;
    load.kind = CpuOpKind::Load;
    load.addr = 0x40000;
    load.id = next_id++;
    dc->submit(load); // allocates an NtoB MSHR
    sim.run(4);
    // A store cannot piggy-back on a read-permission MSHR (§3.3).
    const CpuResp st = doOp(CpuOpKind::Store, 0x40000, 1);
    EXPECT_TRUE(st.nack);
    sim.runUntil([&] {
        while (dc->respReady())
            dc->popResp();
        return dc->quiesced();
    });
}

TEST_F(InterlockTest, MshrExhaustionNacks)
{
    cfg.mshrs = 2;
    build();
    l2->grant_delay = 100;
    // Two outstanding load misses use both MSHRs; the third must nack.
    for (int i = 0; i < 2; ++i) {
        CpuReq req;
        req.kind = CpuOpKind::Load;
        req.addr = 0x50000 + static_cast<Addr>(i) * line_bytes;
        req.id = next_id++;
        dc->submit(req);
    }
    sim.run(4);
    const CpuResp third =
        doOp(CpuOpKind::Load, 0x50000 + 2 * line_bytes);
    EXPECT_TRUE(third.nack);
    EXPECT_GE(stats.get("l1.0.mshr_full"), 1u);
    sim.runUntil([&] {
        while (dc->respReady())
            dc->popResp();
        return dc->quiesced();
    });
}

TEST_F(InterlockTest, RpqDepthLimitsSecondaries)
{
    cfg.rpq_depth = 2;
    build();
    l2->grant_delay = 100;
    // Secondaries only respond at fill time, so submit all three without
    // waiting and sort the responses out afterwards.
    std::array<std::uint64_t, 3> ids{};
    for (int i = 0; i < 3; ++i) {
        CpuReq req;
        req.kind = CpuOpKind::Load;
        req.addr = 0x60000 + static_cast<Addr>(i) * 8; // same line
        req.id = ids[i] = next_id++;
        dc->submit(req);
        sim.run(2); // keep arrival order deterministic
    }
    std::array<bool, 3> nacked{};
    unsigned seen = 0;
    sim.runUntil([&] {
        while (dc->respReady()) {
            const CpuResp r = dc->popResp();
            for (int i = 0; i < 3; ++i) {
                if (r.id == ids[static_cast<unsigned>(i)]) {
                    nacked[static_cast<unsigned>(i)] = r.nack;
                    ++seen;
                }
            }
        }
        return seen == 3;
    });
    EXPECT_FALSE(nacked[0]); // primary
    EXPECT_FALSE(nacked[1]); // fits in the 2-entry RPQ
    EXPECT_TRUE(nacked[2]);  // RPQ full (§3.3 nack)
    quiesce();
}

TEST_F(InterlockTest, BtoTUpgradeKeepsLineReadableAndMergesData)
{
    build();
    // Fill as read-only Branch by having the grant cap it to toB.
    l2->grant_op = DOp::GrantData;
    // First bring the line in via a load; mock grants requested cap,
    // which for NtoB is toB... our mock uses capForGrow: NtoB -> toB.
    doOpRetry(CpuOpKind::Load, 0x70000);
    ASSERT_EQ(dc->lineState(0x70000), ClientState::Branch);
    // A store needs the upgrade; the data arrives via a fresh GrantData.
    std::uint64_t payload = 0;
    std::memcpy(&payload, l2->fill_data.data(), 8);
    doOpRetry(CpuOpKind::Store, 0x70000, 0xAB);
    sim.runUntil([&] { return dc->lineDirty(0x70000); });
    EXPECT_EQ(dc->lineState(0x70000), ClientState::Trunk);
    const CpuResp ld = doOp(CpuOpKind::Load, 0x70000);
    EXPECT_EQ(ld.data, 0xABu);
    EXPECT_GE(stats.get("l1.0.store_upgrades"), 1u);
}

} // namespace
} // namespace skipit
