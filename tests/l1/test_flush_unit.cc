/**
 * @file
 * Unit tests of the L1 data cache's flush unit against a scriptable mock
 * L2: FSHR execution plans (Figure 7), queue capacity nacks, coalescing,
 * load forwarding from FSHR buffers, store-nack rules, probe_invalidate,
 * the flush counter, and the Skip It early drop (§5.2, §5.3, §6).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "l1/data_cache.hh"
#include "mock_manager.hh"

namespace skipit {
namespace {

class FlushUnitTest : public ::testing::Test
{
  protected:
    // Owned via pointer so build() can recreate the whole rig (the
    // simulator keeps raw component pointers).
    std::unique_ptr<Simulator> sim_owner = std::make_unique<Simulator>();
    Simulator &sim = *sim_owner;
    Stats stats;
    L1Config cfg{};
    std::unique_ptr<TLLink> link;
    std::unique_ptr<DataCache> dc;
    std::unique_ptr<MockManager> l2;
    std::uint64_t next_id = 1;

    void
    build()
    {
        link = std::make_unique<TLLink>(sim, 1);
        dc.reset();
        l2.reset();
        dc = std::make_unique<DataCache>("l1d", sim, cfg, 0, *link, stats);
        l2 = std::make_unique<MockManager>(sim, *link);
        sim.add(*dc);
        sim.add(*l2);
    }

    /** Submit a request and wait for its (non-nack) response. */
    CpuResp
    doOp(CpuOpKind kind, Addr addr, std::uint64_t data = 0,
         bool allow_nack = false)
    {
        CpuReq req;
        req.kind = kind;
        req.addr = addr;
        req.data = data;
        req.id = next_id++;
        dc->submit(req);
        CpuResp resp;
        sim.runUntil([&] {
            while (dc->respReady()) {
                resp = dc->popResp();
                if (resp.id == req.id)
                    return true;
            }
            return false;
        });
        if (!allow_nack) {
            EXPECT_FALSE(resp.nack) << "unexpected nack";
        }
        return resp;
    }

    /** Submit and retry through nacks until success. */
    void
    doOpRetry(CpuOpKind kind, Addr addr, std::uint64_t data = 0)
    {
        for (int attempt = 0; attempt < 100; ++attempt) {
            const CpuResp r = doOp(kind, addr, data, true);
            if (!r.nack)
                return;
            sim.run(4);
        }
        FAIL() << "operation nacked forever";
    }

    void
    quiesce()
    {
        sim.runUntil([&] { return dc->quiesced(); });
    }

    /** Store and wait for the fill: the store response arrives when the
     *  MSHR buffers it (§3.3), before the line is actually resident. */
    void
    doStore(Addr addr, std::uint64_t value)
    {
        doOpRetry(CpuOpKind::Store, addr, value);
        sim.runUntil([&] { return dc->lineDirty(addr); });
    }

    /** Issue a CBO, retrying through MSHR-conflict nacks. */
    void
    doCbo(CpuOpKind kind, Addr addr)
    {
        doOpRetry(kind, addr);
    }
};

TEST_F(FlushUnitTest, DirtyFlushSendsRootReleaseDataAndInvalidates)
{
    build();
    doStore(0x1000, 42);
    ASSERT_EQ(dc->lineState(0x1000), ClientState::Trunk);
    ASSERT_TRUE(dc->lineDirty(0x1000));

    doOp(CpuOpKind::CboFlush, 0x1000);
    quiesce();

    const auto rrs = l2->rootReleases();
    ASSERT_EQ(rrs.size(), 1u);
    EXPECT_EQ(rrs[0].op, COp::RootReleaseData);
    EXPECT_EQ(rrs[0].cbo, CboKind::Flush);
    EXPECT_EQ(rrs[0].param, Shrink::TtoN);
    std::uint64_t sent = 0;
    std::memcpy(&sent, rrs[0].data.data(), 8);
    EXPECT_EQ(sent, 42u);
    EXPECT_EQ(dc->lineState(0x1000), ClientState::Nothing);
}

TEST_F(FlushUnitTest, DirtyCleanKeepsLineAndReportsTtoT)
{
    build();
    doStore(0x2000, 7);
    doOp(CpuOpKind::CboClean, 0x2000);
    quiesce();

    const auto rrs = l2->rootReleases();
    ASSERT_EQ(rrs.size(), 1u);
    EXPECT_EQ(rrs[0].op, COp::RootReleaseData);
    EXPECT_EQ(rrs[0].cbo, CboKind::Clean);
    EXPECT_EQ(rrs[0].param, Shrink::TtoT);
    EXPECT_EQ(dc->lineState(0x2000), ClientState::Trunk);
    EXPECT_FALSE(dc->lineDirty(0x2000));
}

TEST_F(FlushUnitTest, MissedCboStillSendsBareRootRelease)
{
    build();
    doOp(CpuOpKind::CboFlush, 0x3000);
    quiesce();
    const auto rrs = l2->rootReleases();
    ASSERT_EQ(rrs.size(), 1u);
    EXPECT_EQ(rrs[0].op, COp::RootRelease);
    EXPECT_EQ(rrs[0].param, Shrink::NtoN);
}

TEST_F(FlushUnitTest, CleanHitOnCleanLineSkipsMetaWrite)
{
    cfg.skip_it = false; // otherwise the skip bit would drop it entirely
    build();
    doOpRetry(CpuOpKind::Load, 0x4000);
    ASSERT_NE(dc->lineState(0x4000), ClientState::Nothing);
    doOp(CpuOpKind::CboClean, 0x4000);
    quiesce();
    const auto rrs = l2->rootReleases();
    ASSERT_EQ(rrs.size(), 1u);
    EXPECT_EQ(rrs[0].op, COp::RootRelease); // no data: line was clean
    // Line retained with unchanged permissions.
    EXPECT_NE(dc->lineState(0x4000), ClientState::Nothing);
}

TEST_F(FlushUnitTest, FlushCounterTracksLifetime)
{
    build();
    l2->hold_rootrelease_acks = true;
    doStore(0x5000, 1);
    EXPECT_FALSE(dc->flushing());
    doOp(CpuOpKind::CboFlush, 0x5000);
    EXPECT_TRUE(dc->flushing()); // counted at enqueue
    sim.runUntil([&] { return l2->heldAcks() == 1; });
    EXPECT_TRUE(dc->flushing()); // still pending until the ack
    l2->releaseHeldAcks();
    quiesce();
    EXPECT_FALSE(dc->flushing());
}

TEST_F(FlushUnitTest, QueueFullNacksFurtherCbos)
{
    cfg.flush_queue_depth = 2;
    cfg.fshrs = 2;
    build();
    l2->hold_rootrelease_acks = true;
    // 2 FSHRs + 2 queue slots absorb 4 CBOs; the 5th must nack.
    for (int i = 0; i < 4; ++i)
        doOp(CpuOpKind::CboFlush, 0x6000 + i * line_bytes);
    const CpuResp r =
        doOp(CpuOpKind::CboFlush, 0x6000 + 4 * line_bytes, 0, true);
    EXPECT_TRUE(r.nack);
    EXPECT_GE(stats.get("l1.0.flushq_full"), 1u);
    l2->releaseHeldAcks();
    // Held entries keep draining into FSHRs; release until all done.
    sim.runUntil([&] {
        l2->releaseHeldAcks();
        return !dc->flushing();
    });
}

TEST_F(FlushUnitTest, SameKindCboCoalesces)
{
    build();
    l2->hold_rootrelease_acks = true;
    // Saturate all 8 FSHRs so the 9th CBO stays queued.
    for (int i = 0; i < 8; ++i)
        doOp(CpuOpKind::CboFlush, 0x7000 + i * line_bytes);
    doOp(CpuOpKind::CboFlush, 0x8000); // queued behind busy FSHRs
    doOp(CpuOpKind::CboFlush, 0x8000); // coalesces with the queued one
    EXPECT_EQ(stats.get("l1.0.cbo_coalesced"), 1u);
    sim.runUntil([&] {
        l2->releaseHeldAcks();
        return !dc->flushing();
    });
    // Only 9 RootReleases went out for 10 accepted CBOs.
    EXPECT_EQ(l2->rootReleases().size(), 9u);
}

TEST_F(FlushUnitTest, DifferentKindCboNacks)
{
    build();
    l2->hold_rootrelease_acks = true;
    doOp(CpuOpKind::CboClean, 0x9000);
    const CpuResp r = doOp(CpuOpKind::CboFlush, 0x9000, 0, true);
    EXPECT_TRUE(r.nack);
    sim.runUntil([&] {
        l2->releaseHeldAcks();
        return !dc->flushing();
    });
}

TEST_F(FlushUnitTest, LoadForwardsFromFilledFshrBuffer)
{
    build();
    l2->hold_rootrelease_acks = true;
    doStore(0xa000, 1234);
    doOp(CpuOpKind::CboFlush, 0xa000);
    // Wait until the FSHR invalidated the line and filled its buffer.
    sim.runUntil([&] { return l2->heldAcks() == 1; });
    ASSERT_EQ(dc->lineState(0xa000), ClientState::Nothing);
    // A load now misses but forwards from the FSHR's data buffer without
    // a new Acquire (§5.3).
    const std::size_t acquires_before = l2->acquires.size();
    const CpuResp r = doOp(CpuOpKind::Load, 0xa000);
    EXPECT_EQ(r.data, 1234u);
    EXPECT_EQ(l2->acquires.size(), acquires_before);
    EXPECT_GE(stats.get("l1.0.fshr_forwards"), 1u);
    l2->releaseHeldAcks();
    quiesce();
}

TEST_F(FlushUnitTest, StoreNackedUnderPendingFlush)
{
    build();
    l2->hold_rootrelease_acks = true;
    doStore(0xb000, 1);
    doOp(CpuOpKind::CboFlush, 0xb000);
    sim.runUntil([&] { return l2->heldAcks() == 1; });
    const CpuResp r = doOp(CpuOpKind::Store, 0xb000, 2, true);
    EXPECT_TRUE(r.nack);
    l2->releaseHeldAcks();
    quiesce();
}

TEST_F(FlushUnitTest, StoreAllowedUnderCleanWithFilledBuffer)
{
    build();
    l2->hold_rootrelease_acks = true;
    doStore(0xc000, 1);
    doOp(CpuOpKind::CboClean, 0xc000);
    sim.runUntil([&] { return l2->heldAcks() == 1; });
    // The FSHR has captured the pre-store data; the store may proceed
    // without waiting for the ack (§5.3).
    const CpuResp r = doOp(CpuOpKind::Store, 0xc000, 2, true);
    EXPECT_FALSE(r.nack);
    EXPECT_TRUE(dc->lineDirty(0xc000));
    // The writeback that eventually completes carries the OLD data.
    const auto rrs = l2->rootReleases();
    ASSERT_EQ(rrs.size(), 1u);
    std::uint64_t sent = 0;
    std::memcpy(&sent, rrs[0].data.data(), 8);
    EXPECT_EQ(sent, 1u);
    l2->releaseHeldAcks();
    quiesce();
}

TEST_F(FlushUnitTest, ProbeInvalidatesQueuedEntry)
{
    build();
    l2->hold_rootrelease_acks = true;
    // Saturate FSHRs so the interesting CBO stays queued.
    for (int i = 0; i < 8; ++i)
        doOp(CpuOpKind::CboFlush, 0xd000 + i * line_bytes);
    doStore(0xe000, 5);
    doOp(CpuOpKind::CboFlush, 0xe000); // queued with hit+dirty snapshot
    // A probe revokes the line while the request is still queued (§5.4.1).
    l2->probe(0xe000, Cap::toN);
    sim.runUntil([&] { return dc->lineState(0xe000) ==
                              ClientState::Nothing; });
    // Drain everything; the queued entry must have been downgraded to a
    // miss and sent as a bare RootRelease rather than reading stale meta.
    sim.runUntil([&] {
        l2->releaseHeldAcks();
        return !dc->flushing();
    });
    const auto rrs = l2->rootReleases();
    ASSERT_EQ(rrs.size(), 9u);
    const CMsg &last = rrs.back();
    EXPECT_EQ(last.addr, lineAlign(Addr{0xe000}));
    EXPECT_EQ(last.op, COp::RootRelease); // no data: probe took it
}

TEST_F(FlushUnitTest, SkipItDropsRedundantCleanAfterAck)
{
    cfg.skip_it = true;
    build();
    doStore(0xf000, 9);
    doOp(CpuOpKind::CboClean, 0xf000);
    quiesce();
    EXPECT_TRUE(dc->lineSkip(0xf000)); // set on the clean's ack
    doOp(CpuOpKind::CboClean, 0xf000);
    quiesce();
    EXPECT_EQ(stats.get("l1.0.skipit_dropped"), 1u);
    EXPECT_EQ(l2->rootReleases().size(), 1u); // the redundant one died
}

TEST_F(FlushUnitTest, GrantDataDirtyClearsSkipBit)
{
    cfg.skip_it = true;
    build();
    l2->grant_op = DOp::GrantDataDirty;
    doOpRetry(CpuOpKind::Load, 0x10000);
    EXPECT_FALSE(dc->lineSkip(0x10000));
    // A writeback to this line must NOT be dropped: L2 holds dirty data.
    doOp(CpuOpKind::CboClean, 0x10000);
    quiesce();
    EXPECT_EQ(stats.get("l1.0.skipit_dropped"), 0u);
    EXPECT_EQ(l2->rootReleases().size(), 1u);
}

TEST_F(FlushUnitTest, GrantDataSetsSkipBitAndDropsCbo)
{
    cfg.skip_it = true;
    build();
    l2->grant_op = DOp::GrantData;
    doOpRetry(CpuOpKind::Load, 0x11000);
    EXPECT_TRUE(dc->lineSkip(0x11000));
    doOp(CpuOpKind::CboFlush, 0x11000);
    quiesce();
    EXPECT_EQ(stats.get("l1.0.skipit_dropped"), 1u);
    EXPECT_TRUE(l2->rootReleases().empty());
    // The dropped CBO.FLUSH leaves the line resident (§6.1).
    EXPECT_NE(dc->lineState(0x11000), ClientState::Nothing);
}

TEST_F(FlushUnitTest, SkipItDisabledNeverDrops)
{
    cfg.skip_it = false;
    build();
    doOpRetry(CpuOpKind::Load, 0x12000);
    EXPECT_FALSE(dc->lineSkip(0x12000));
    doOp(CpuOpKind::CboClean, 0x12000);
    doOp(CpuOpKind::CboClean, 0x12000); // may nack or coalesce, never drop
    quiesce();
    EXPECT_EQ(stats.get("l1.0.skipit_dropped"), 0u);
}

TEST_F(FlushUnitTest, ProbeWithDirtyDataRespondsProbeAckData)
{
    build();
    doStore(0x13000, 77);
    l2->probe(0x13000, Cap::toN);
    sim.runUntil([&] { return !l2->c_messages.empty(); });
    quiesce();
    bool saw_ack_data = false;
    for (const CMsg &m : l2->c_messages) {
        if (m.op == COp::ProbeAckData) {
            saw_ack_data = true;
            EXPECT_EQ(m.param, Shrink::TtoN);
            std::uint64_t v = 0;
            std::memcpy(&v, m.data.data(), 8);
            EXPECT_EQ(v, 77u);
        }
    }
    EXPECT_TRUE(saw_ack_data);
    EXPECT_EQ(dc->lineState(0x13000), ClientState::Nothing);
}

TEST_F(FlushUnitTest, ProbeToMissingLineAcksNtoN)
{
    build();
    l2->probe(0x14000, Cap::toN);
    sim.runUntil([&] { return !l2->c_messages.empty(); });
    EXPECT_EQ(l2->c_messages[0].op, COp::ProbeAck);
    EXPECT_EQ(l2->c_messages[0].param, Shrink::NtoN);
}

TEST_F(FlushUnitTest, NarrowDataArraySlowsBufferFill)
{
    // Measure the full store+flush round trip with each array width in
    // its own rig; the narrow array needs 8 cycles for FillBuffer where
    // the widened one needs 1 (§5.2).
    auto roundTrip = [](bool wide) {
        Simulator sim;
        Stats stats;
        L1Config cfg;
        cfg.wide_data_array = wide;
        TLLink link(sim, 1);
        DataCache dc("l1d", sim, cfg, 0, link, stats);
        MockManager l2(sim, link);
        sim.add(dc);
        sim.add(l2);

        auto waitResp = [&](std::uint64_t id) {
            CpuResp resp;
            sim.runUntil([&] {
                while (dc.respReady()) {
                    resp = dc.popResp();
                    if (resp.id == id)
                        return true;
                }
                return false;
            });
            return resp;
        };
        std::uint64_t id = 1;
        for (int attempt = 0; attempt < 100; ++attempt) {
            dc.submit(CpuReq{CpuOpKind::Store, 0x15000, 8, 1, id});
            if (!waitResp(id++).nack)
                break;
            sim.run(4);
        }
        sim.runUntil([&] { return dc.lineDirty(0x15000); });
        for (int attempt = 0; attempt < 100; ++attempt) {
            dc.submit(CpuReq{CpuOpKind::CboFlush, 0x15000, 0, 0, id});
            if (!waitResp(id++).nack)
                break;
            sim.run(4);
        }
        const Cycle t0 = sim.now();
        sim.runUntil([&] { return dc.quiesced(); });
        return sim.now() - t0;
    };

    const Cycle wide = roundTrip(true);
    const Cycle narrow = roundTrip(false);
    EXPECT_GT(narrow, wide);
    EXPECT_EQ(narrow - wide, line_bytes / 8 - 1);
}

} // namespace
} // namespace skipit
