/**
 * @file
 * Exhaustive L1 state-transition table: every reachable line state
 * (Nothing, Branch, Trunk-clean, Trunk-dirty) crossed with every
 * operation (load, store, the four CMOs, and both probe flavours),
 * checking the resulting state and the message the L2 observes.
 */

#include <gtest/gtest.h>

#include "l1/data_cache.hh"
#include "mock_manager.hh"

namespace skipit {
namespace {

enum class LineCase { Nothing, Branch, TrunkClean, TrunkDirty };
enum class Op { Load, Store, Clean, Flush, Inval, Zero, ProbeB, ProbeN };

const char *
caseName(LineCase c)
{
    switch (c) {
      case LineCase::Nothing:
        return "Nothing";
      case LineCase::Branch:
        return "Branch";
      case LineCase::TrunkClean:
        return "TrunkClean";
      default:
        return "TrunkDirty";
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Load:
        return "load";
      case Op::Store:
        return "store";
      case Op::Clean:
        return "clean";
      case Op::Flush:
        return "flush";
      case Op::Inval:
        return "inval";
      case Op::Zero:
        return "zero";
      case Op::ProbeB:
        return "probe_toB";
      default:
        return "probe_toN";
    }
}

class TransitionRig
{
  public:
    TransitionRig()
    {
        cfg_.skip_it = false; // drops are tested elsewhere
        link_ = std::make_unique<TLLink>(sim_, 1);
        dc_ = std::make_unique<DataCache>("l1d", sim_, cfg_, 0, *link_,
                                          stats_);
        l2_ = std::make_unique<MockManager>(sim_, *link_);
        sim_.add(*dc_);
        sim_.add(*l2_);
    }

    static constexpr Addr line = 0x4000;

    void
    establish(LineCase c)
    {
        switch (c) {
          case LineCase::Nothing:
            return;
          case LineCase::Branch:
            opRetry(CpuOpKind::Load); // mock grants NtoB -> toB
            ASSERT_EQ(dc_->lineState(line), ClientState::Branch);
            return;
          case LineCase::TrunkClean:
            opRetry(CpuOpKind::Store, 1);
            wait([&] { return dc_->lineDirty(line); });
            opRetry(CpuOpKind::CboClean);
            wait([&] { return dc_->quiesced(); });
            ASSERT_EQ(dc_->lineState(line), ClientState::Trunk);
            ASSERT_FALSE(dc_->lineDirty(line));
            l2_->c_messages.clear(); // setup traffic is not under test
            return;
          case LineCase::TrunkDirty:
            opRetry(CpuOpKind::Store, 1);
            wait([&] { return dc_->lineDirty(line); });
            return;
        }
    }

    /** Apply the op, drain to quiescence, return observed traffic. */
    void
    apply(Op op)
    {
        switch (op) {
          case Op::Load:
            opRetry(CpuOpKind::Load);
            break;
          case Op::Store:
            opRetry(CpuOpKind::Store, 2);
            break;
          case Op::Clean:
            opRetry(CpuOpKind::CboClean);
            break;
          case Op::Flush:
            opRetry(CpuOpKind::CboFlush);
            break;
          case Op::Inval:
            opRetry(CpuOpKind::CboInval);
            break;
          case Op::Zero:
            opRetry(CpuOpKind::CboZero);
            break;
          case Op::ProbeB:
            l2_->probe(line, Cap::toB);
            break;
          case Op::ProbeN:
            l2_->probe(line, Cap::toN);
            break;
        }
        wait([&] { return dc_->quiesced(); });
        if (op == Op::ProbeB || op == Op::ProbeN) {
            wait([&] {
                for (const CMsg &m : l2_->c_messages) {
                    if (m.op == COp::ProbeAck ||
                        m.op == COp::ProbeAckData) {
                        return true;
                    }
                }
                return false;
            });
        }
    }

    ClientState state() const { return dc_->lineState(line); }
    bool dirty() const { return dc_->lineDirty(line); }

    /** Did a RootRelease / ProbeAck with data leave the cache? */
    bool
    sentData() const
    {
        for (const CMsg &m : l2_->c_messages) {
            if (m.addr == line && m.hasData())
                return true;
        }
        return false;
    }

    std::vector<CMsg> traffic() const { return l2_->c_messages; }

  private:
    Simulator sim_;
    Stats stats_;
    L1Config cfg_{};
    std::unique_ptr<TLLink> link_;
    std::unique_ptr<DataCache> dc_;
    std::unique_ptr<MockManager> l2_;
    std::uint64_t next_id_ = 1;

    template <typename Pred>
    void
    wait(Pred pred)
    {
        sim_.runUntil(pred, 1'000'000);
    }

    void
    opRetry(CpuOpKind kind, std::uint64_t data = 0)
    {
        for (int attempt = 0; attempt < 200; ++attempt) {
            CpuReq req;
            req.kind = kind;
            req.addr = line;
            req.data = data;
            req.id = next_id_++;
            dc_->submit(req);
            CpuResp resp;
            sim_.runUntil([&] {
                while (dc_->respReady()) {
                    resp = dc_->popResp();
                    if (resp.id == req.id)
                        return true;
                }
                return false;
            });
            if (!resp.nack)
                return;
            sim_.run(4);
        }
        FAIL() << "op nacked forever";
    }
};

struct Expect
{
    ClientState state;
    bool dirty;
    bool data_sent;
};

Expect
expected(LineCase c, Op op)
{
    const bool was_dirty = c == LineCase::TrunkDirty;
    switch (op) {
      case Op::Load:
        // Nothing -> Branch via grant; every other state is preserved.
        if (c == LineCase::Nothing)
            return {ClientState::Branch, false, false};
        return {c == LineCase::Branch ? ClientState::Branch
                                      : ClientState::Trunk,
                was_dirty, false};
      case Op::Store:
      case Op::Zero:
        return {ClientState::Trunk, true, false};
      case Op::Clean:
        // Keeps the line, clears dirt; only dirty data travels.
        if (c == LineCase::Nothing)
            return {ClientState::Nothing, false, false};
        return {c == LineCase::Branch ? ClientState::Branch
                                      : ClientState::Trunk,
                false, was_dirty};
      case Op::Flush:
        return {ClientState::Nothing, false, was_dirty};
      case Op::Inval:
        // Invalidates but never writes back, even when dirty.
        return {ClientState::Nothing, false, false};
      case Op::ProbeB:
        // Caps to Branch; dirty data is surrendered.
        if (c == LineCase::Nothing)
            return {ClientState::Nothing, false, false};
        return {ClientState::Branch, false, was_dirty};
      default: // ProbeN
        return {ClientState::Nothing, false, was_dirty};
    }
}

TEST(L1Transitions, ExhaustiveStateByOperationTable)
{
    for (const LineCase c :
         {LineCase::Nothing, LineCase::Branch, LineCase::TrunkClean,
          LineCase::TrunkDirty}) {
        for (const Op op : {Op::Load, Op::Store, Op::Clean, Op::Flush,
                            Op::Inval, Op::Zero, Op::ProbeB, Op::ProbeN}) {
            SCOPED_TRACE(std::string(caseName(c)) + " x " + opName(op));
            TransitionRig rig;
            rig.establish(c);
            if (::testing::Test::HasFatalFailure())
                return;
            rig.apply(op);
            const Expect e = expected(c, op);
            EXPECT_EQ(rig.state(), e.state);
            EXPECT_EQ(rig.dirty(), e.dirty);
            EXPECT_EQ(rig.sentData(), e.data_sent);
        }
    }
}

} // namespace
} // namespace skipit
