/**
 * @file
 * A scriptable TileLink manager standing in for the L2, so the L1 data
 * cache and its flush unit can be unit-tested in isolation: it records
 * every C-channel message it sees, serves Acquires with configurable
 * grant types, acknowledges Releases and RootReleases with configurable
 * delays, and can inject Probes.
 */

#ifndef SKIPIT_TESTS_L1_MOCK_MANAGER_HH
#define SKIPIT_TESTS_L1_MOCK_MANAGER_HH

#include <deque>
#include <vector>

#include "sim/simulator.hh"
#include "sim/ticked.hh"
#include "tilelink/link.hh"

namespace skipit {

/** Mock manager (L2) end of a TileLink. */
class MockManager : public Ticked
{
  public:
    MockManager(Simulator &sim, TLLink &link)
        : Ticked("mock_l2"), sim_(sim), link_(link)
    {
    }

    /// @name Behaviour knobs
    /// @{
    /** Grant type for Acquires: GrantData or GrantDataDirty. */
    DOp grant_op = DOp::GrantData;
    /** Extra delay before acknowledging RootReleases. */
    Cycle rootrelease_ack_delay = 5;
    /** When true, RootReleases are held and not acknowledged until
     *  releaseHeldAcks() is called. */
    bool hold_rootrelease_acks = false;
    /// @}

    /// @name Observed traffic
    /// @{
    std::vector<AMsg> acquires;
    std::vector<CMsg> c_messages; //!< everything seen on channel C
    /// @}

    /** All RootRelease messages seen so far. */
    std::vector<CMsg>
    rootReleases() const
    {
        std::vector<CMsg> out;
        for (const CMsg &m : c_messages) {
            if (m.isRootRelease())
                out.push_back(m);
        }
        return out;
    }

    /** Inject a probe towards the client. */
    void
    probe(Addr line, Cap cap)
    {
        BMsg msg;
        msg.addr = lineAlign(line);
        msg.param = cap;
        link_.b.send(msg);
    }

    /** Acknowledge all RootReleases held back by hold_rootrelease_acks. */
    void
    releaseHeldAcks()
    {
        for (const CMsg &m : held_) {
            DMsg ack;
            ack.op = DOp::RootReleaseAck;
            ack.addr = m.addr;
            ack.dest = m.source;
            ack.txn = m.txn;
            link_.d.send(ack, 1, rootrelease_ack_delay);
        }
        held_.clear();
    }

    std::size_t heldAcks() const { return held_.size(); }

    void
    tick() override
    {
        while (link_.a.ready()) {
            const AMsg msg = link_.a.recv();
            acquires.push_back(msg);
            DMsg grant;
            grant.op = grant_op;
            grant.addr = msg.addr;
            grant.cap = capForGrow(msg.param);
            grant.data = fill_data;
            grant.dest = msg.source;
            grant.txn = msg.txn;
            link_.d.send(grant, TLLink::beatsFor(grant), grant_delay);
        }
        while (link_.c.ready()) {
            const CMsg msg = link_.c.recv();
            c_messages.push_back(msg);
            if (msg.isRootRelease()) {
                if (hold_rootrelease_acks) {
                    held_.push_back(msg);
                } else {
                    DMsg ack;
                    ack.op = DOp::RootReleaseAck;
                    ack.addr = msg.addr;
                    ack.dest = msg.source;
                    ack.txn = msg.txn;
                    link_.d.send(ack, 1, rootrelease_ack_delay);
                }
            } else if (msg.op == COp::Release ||
                       msg.op == COp::ReleaseData) {
                DMsg ack;
                ack.op = DOp::ReleaseAck;
                ack.addr = msg.addr;
                ack.dest = msg.source;
                ack.txn = msg.txn;
                link_.d.send(ack);
            }
            // ProbeAck[Data] only gets recorded.
        }
        while (link_.e.ready())
            link_.e.recv(); // GrantAcks are consumed silently
    }

    /** Data served with every grant. */
    LineData fill_data{};
    /** Extra delay before grants. */
    Cycle grant_delay = 3;

  private:
    Simulator &sim_;
    TLLink &link_;
    std::deque<CMsg> held_;
};

} // namespace skipit

#endif // SKIPIT_TESTS_L1_MOCK_MANAGER_HH
