/**
 * @file
 * L2 directory transition table: for every starting holder configuration
 * (none, one branch, two branches, foreign trunk) and every incoming
 * transaction (acquire-to-read, acquire-to-write, each RootRelease kind),
 * check the probes generated, the final directory state, and whether
 * DRAM was written.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "dram/dram.hh"
#include "l2/cache.hh"

namespace skipit {
namespace {

/** Hand-cranked client (same shape as in test_inclusive_cache.cc). */
struct Client
{
    TLLink link;
    AgentId id;
    Client(Simulator &sim, AgentId id_) : link(sim, 1), id(id_) {}
};

class L2Table : public ::testing::Test
{
  protected:
    static constexpr Addr line = 0x8000;

    Simulator sim;
    Stats stats;
    DramConfig dcfg{};
    L2Config cfg{};
    std::unique_ptr<Dram> dram;
    std::unique_ptr<InclusiveCache> l2;
    std::vector<std::unique_ptr<Client>> clients;

    void
    SetUp() override
    {
        dram = std::make_unique<Dram>("dram", sim, dcfg, stats);
        l2 = std::make_unique<InclusiveCache>("l2", sim, cfg, *dram,
                                              stats);
        for (AgentId c = 0; c < 3; ++c) {
            clients.push_back(std::make_unique<Client>(sim, c));
            l2->connectClient(c, clients.back()->link);
        }
        sim.add(*dram);
        sim.add(*l2);
    }

    /** Auto-answer every probe a client receives with the truthful
     *  report given what it holds; returns probes seen. */
    struct HolderState
    {
        ClientState state = ClientState::Nothing;
        bool dirty = false;
        std::uint64_t word = 0;
    };
    std::array<HolderState, 3> holders{};
    std::array<unsigned, 3> probes_seen{};

    void
    pump()
    {
        for (AgentId c = 0; c < 3; ++c) {
            TLLink &lk = clients[static_cast<unsigned>(c)]->link;
            while (lk.b.ready()) {
                const BMsg probe = lk.b.recv();
                ++probes_seen[static_cast<unsigned>(c)];
                HolderState &h = holders[static_cast<unsigned>(c)];
                const ClientState next = applyCap(h.state, probe.param);
                CMsg ack;
                ack.addr = probe.addr;
                ack.source = c;
                ack.param = shrinkFor(h.state, next);
                if (h.dirty) {
                    ack.op = COp::ProbeAckData;
                    std::memcpy(ack.data.data(), &h.word, 8);
                    h.dirty = false;
                } else {
                    ack.op = COp::ProbeAck;
                }
                h.state = next;
                lk.c.send(ack, TLLink::beatsFor(ack));
            }
        }
    }

    /** Establish: client 0 acquires with @p grow; optionally dirties. */
    void
    establish(AgentId c, Grow grow, bool dirty, std::uint64_t word = 0xAA)
    {
        TLLink &lk = clients[static_cast<unsigned>(c)]->link;
        AMsg a;
        a.addr = line;
        a.param = grow;
        a.source = c;
        lk.a.send(a);
        sim.runUntil([&] {
            pump();
            return lk.d.ready();
        });
        const DMsg grant = lk.d.recv();
        EXPECT_TRUE(grant.isGrant());
        holders[static_cast<unsigned>(c)].state = stateForCap(grant.cap);
        holders[static_cast<unsigned>(c)].dirty = dirty;
        holders[static_cast<unsigned>(c)].word = word;
        EMsg e;
        e.addr = line;
        e.source = c;
        lk.e.send(e);
        sim.runUntil([&] {
            pump();
            return l2->idle();
        });
    }

    /** Send a RootRelease from @p c and wait for its ack. */
    void
    rootRelease(AgentId c, CboKind kind)
    {
        TLLink &lk = clients[static_cast<unsigned>(c)]->link;
        HolderState &h = holders[static_cast<unsigned>(c)];
        CMsg m;
        m.addr = line;
        m.source = c;
        m.cbo = kind;
        const ClientState next = kind == CboKind::Clean
                                     ? h.state
                                     : ClientState::Nothing;
        m.param = shrinkFor(h.state, next);
        if (h.dirty && kind != CboKind::Inval) {
            m.op = COp::RootReleaseData;
            std::memcpy(m.data.data(), &h.word, 8);
            h.dirty = false;
        } else {
            m.op = COp::RootRelease;
        }
        h.state = next;
        lk.c.send(m, TLLink::beatsFor(m));
        sim.runUntil([&] {
            pump();
            if (!lk.d.ready())
                return false;
            return lk.d.front().op == DOp::RootReleaseAck;
        });
        lk.d.recv();
        sim.runUntil([&] {
            pump();
            return l2->idle();
        });
    }
};

TEST_F(L2Table, FlushFromThirdPartyCollectsForeignDirtyTrunk)
{
    establish(0, Grow::NtoT, true, 0xBEEF);
    rootRelease(1, CboKind::Flush); // requester holds nothing
    EXPECT_EQ(probes_seen[0], 1u); // trunk probed out
    EXPECT_EQ(dram->peekWord(line), 0xBEEFu);
    EXPECT_FALSE(l2->isResident(line));
}

TEST_F(L2Table, CleanFromThirdPartyDowngradesForeignTrunk)
{
    establish(0, Grow::NtoT, true, 0xF00D);
    rootRelease(1, CboKind::Clean);
    EXPECT_EQ(probes_seen[0], 1u);
    EXPECT_EQ(holders[0].state, ClientState::Branch); // toB, not toN
    EXPECT_EQ(dram->peekWord(line), 0xF00Du);
    EXPECT_TRUE(l2->isResident(line));
    EXPECT_FALSE(l2->isDirty(line));
}

TEST_F(L2Table, InvalDiscardsForeignDirtyData)
{
    establish(0, Grow::NtoT, true, 0xDEAD);
    rootRelease(1, CboKind::Inval);
    EXPECT_EQ(probes_seen[0], 1u); // revoked like a flush
    EXPECT_EQ(holders[0].state, ClientState::Nothing);
    EXPECT_EQ(dram->peekWord(line), 0u); // data discarded, not written
    EXPECT_FALSE(l2->isResident(line));
}

TEST_F(L2Table, CleanWithOnlyBranchHoldersProbesNobody)
{
    establish(0, Grow::NtoB, false);
    // Downgrade client 0 to Branch by having client 1 share the line.
    establish(1, Grow::NtoB, false);
    probes_seen = {};
    rootRelease(2, CboKind::Clean);
    EXPECT_EQ(probes_seen[0] + probes_seen[1], 0u); // no writable copy
    EXPECT_TRUE(l2->isResident(line));
}

TEST_F(L2Table, FlushWithTwoBranchHoldersRevokesBoth)
{
    establish(0, Grow::NtoB, false);
    establish(1, Grow::NtoB, false);
    probes_seen = {};
    rootRelease(2, CboKind::Flush);
    EXPECT_EQ(probes_seen[0], 1u);
    EXPECT_EQ(probes_seen[1], 1u);
    EXPECT_EQ(holders[0].state, ClientState::Nothing);
    EXPECT_EQ(holders[1].state, ClientState::Nothing);
    EXPECT_FALSE(l2->isResident(line));
}

TEST_F(L2Table, RequesterReportAppliedBeforeProbing)
{
    // The requester flushes its own dirty trunk: its RootReleaseData
    // report (TtoN) removes it from the directory, so no probe comes
    // back at it.
    establish(0, Grow::NtoT, true, 0x77);
    probes_seen = {};
    rootRelease(0, CboKind::Flush);
    EXPECT_EQ(probes_seen[0], 0u);
    EXPECT_EQ(dram->peekWord(line), 0x77u);
}

TEST_F(L2Table, CleanDoesNotDisturbRequesterTrunk)
{
    establish(0, Grow::NtoT, true, 0x55);
    probes_seen = {};
    rootRelease(0, CboKind::Clean); // TtoT report
    EXPECT_EQ(probes_seen[0], 0u);
    EXPECT_EQ(holders[0].state, ClientState::Trunk);
    EXPECT_EQ(dram->peekWord(line), 0x55u);
}

} // namespace
} // namespace skipit
