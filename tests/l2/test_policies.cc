/**
 * @file
 * Policy-layer tests: the shared indexing policy (modulo vs hashed, and
 * its single-source-of-truth contract with the crossbar), the exclusive
 * state policy's store-bypassing fills and writeback promotion, end-to-end
 * coherence of the non-default policies under the invariant checker and
 * the jittered fuzzer, a crash-audited KV serve on the exclusive+hashed
 * configuration, and the negative control that a slice indexed
 * differently from its router is caught by the checker's slice-routing
 * invariant.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "dram/dram.hh"
#include "l2/cache.hh"
#include "soc/soc.hh"
#include "verify/checker.hh"
#include "workloads/fuzz.hh"
#include "workloads/workloads.hh"
#include "workloads/ycsb.hh"

namespace skipit {
namespace {

// ---------------------------------------------------------------------
// Indexing policy.
// ---------------------------------------------------------------------

TEST(IndexPolicy, ModuloMatchesTheLegacyArithmetic)
{
    L2Config cfg;
    cfg.slices = 4;
    const L2IndexPolicy p = cfg.indexPolicy();
    for (Addr a = 0; a < 0x40000; a += line_bytes) {
        ASSERT_EQ(p.sliceOf(a), sliceOfLine(a, 4)) << std::hex << a;
        // The legacy set index: line number with the slice bits peeled
        // off, modulo the per-slice set count.
        const Addr line_no = a >> line_shift;
        ASSERT_EQ(p.setOf(a),
                  unsigned((line_no >> sliceBits(4)) %
                           (cfg.sets / 4)))
            << std::hex << a;
    }
}

TEST(IndexPolicy, HashedIsDeterministicAndCoversAllSlices)
{
    L2Config cfg;
    cfg.slices = 4;
    cfg.index = IndexKind::Hashed;
    const L2IndexPolicy p = cfg.indexPolicy();
    const L2IndexPolicy q = cfg.indexPolicy();
    std::set<unsigned> slices_seen;
    for (Addr a = 0; a < 0x40000; a += line_bytes) {
        ASSERT_EQ(p.sliceOf(a), q.sliceOf(a)); // pure function of seed
        ASSERT_LT(p.sliceOf(a), 4u);
        ASSERT_LT(p.setOf(a), cfg.sets / 4);
        slices_seen.insert(p.sliceOf(a));
    }
    EXPECT_EQ(slices_seen.size(), 4u);

    // A different key is a different permutation.
    L2Config other = cfg;
    other.index_seed = cfg.index_seed + 1;
    const L2IndexPolicy r = other.indexPolicy();
    bool diverged = false;
    for (Addr a = 0; a < 0x10000 && !diverged; a += line_bytes)
        diverged = p.sliceOf(a) != r.sliceOf(a) ||
                   p.setOf(a) != r.setOf(a);
    EXPECT_TRUE(diverged);
}

TEST(IndexPolicy, TokenRoundTrips)
{
    IndexKind ik;
    ASSERT_TRUE(indexKindFromString("modulo", ik));
    EXPECT_EQ(ik, IndexKind::Modulo);
    ASSERT_TRUE(indexKindFromString("hashed", ik));
    EXPECT_EQ(ik, IndexKind::Hashed);
    EXPECT_FALSE(indexKindFromString("skewed", ik));

    StateKind sk;
    ASSERT_TRUE(stateKindFromString("inclusive", sk));
    EXPECT_EQ(sk, StateKind::Inclusive);
    ASSERT_TRUE(stateKindFromString("exclusive", sk));
    EXPECT_EQ(sk, StateKind::Exclusive);
    // The directory still tracks every holder, so "non-inclusive" names
    // the same data-residency policy.
    ASSERT_TRUE(stateKindFromString("noninclusive", sk));
    EXPECT_EQ(sk, StateKind::Exclusive);
    EXPECT_FALSE(stateKindFromString("victim", sk));
}

TEST(IndexPolicy, CrossbarAndSlicesShareOnePolicyValue)
{
    for (const IndexKind kind : {IndexKind::Modulo, IndexKind::Hashed}) {
        SoCConfig cfg;
        cfg.l2.slices = 4;
        cfg.l2.index = kind;
        SoC soc(cfg);
        ASSERT_NE(soc.xbar(), nullptr);
        for (unsigned s = 0; s < 4; ++s) {
            EXPECT_TRUE(soc.xbar()->indexPolicy() ==
                        soc.l2(s).indexPolicy())
                << toString(kind) << " slice " << s;
            // homesLine is the same predicate the router applies.
            for (Addr a = 0; a < 64 * line_bytes; a += line_bytes)
                EXPECT_EQ(soc.l2(s).homesLine(a),
                          soc.xbar()->indexPolicy().sliceOf(a) == s);
        }
    }
}

TEST(SoCDescribe, NamesThePolicyLayers)
{
    SoCConfig cfg;
    EXPECT_NE(cfg.describe().find(
                  "inclusive, modulo index, lru replacement"),
              std::string::npos);
    cfg.l2.policy = StateKind::Exclusive;
    cfg.l2.index = IndexKind::Hashed;
    cfg.l2.replace = ReplaceKind::Random;
    EXPECT_NE(cfg.describe().find(
                  "exclusive, hashed index, random replacement"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Exclusive state policy, driven directly over TileLink.
// ---------------------------------------------------------------------

/** A hand-cranked client end of a TileLink (no L1 logic). */
struct MockClient
{
    TLLink link;
    AgentId id;

    MockClient(Simulator &sim, AgentId id_) : link(sim, 1), id(id_) {}

    void
    acquire(Addr line, Grow grow)
    {
        AMsg m;
        m.addr = lineAlign(line);
        m.param = grow;
        m.source = id;
        link.a.send(m);
    }

    void
    grantAck(Addr line)
    {
        EMsg m;
        m.addr = lineAlign(line);
        m.source = id;
        link.e.send(m);
    }

    void
    sendC(COp op, Addr line, Shrink param,
          CboKind cbo = CboKind::Flush, std::uint64_t word0 = 0)
    {
        CMsg m;
        m.op = op;
        m.addr = lineAlign(line);
        m.param = param;
        m.cbo = cbo;
        m.source = id;
        std::memcpy(m.data.data(), &word0, 8);
        link.c.send(m, TLLink::beatsFor(m));
    }

    bool dReady() { return link.d.ready(); }
    DMsg dPop() { return link.d.recv(); }
    bool bReady() { return link.b.ready(); }
    BMsg bPop() { return link.b.recv(); }
};

class ExclusiveL2Test : public ::testing::Test
{
  protected:
    Simulator sim;
    Stats stats;
    L2Config cfg{};
    std::unique_ptr<Dram> dram;
    std::unique_ptr<L2Cache> l2;
    std::vector<std::unique_ptr<MockClient>> clients;

    void
    build(unsigned nclients = 2)
    {
        cfg.policy = StateKind::Exclusive;
        dram = std::make_unique<Dram>("dram", sim, DramConfig{}, stats);
        l2 = std::make_unique<L2Cache>("l2", sim, cfg, *dram, stats);
        for (unsigned c = 0; c < nclients; ++c) {
            clients.push_back(std::make_unique<MockClient>(
                sim, static_cast<AgentId>(c)));
            l2->connectClient(static_cast<AgentId>(c),
                              clients.back()->link);
        }
        sim.add(*dram);
        sim.add(*l2);
    }

    DMsg
    awaitD(MockClient &c)
    {
        sim.runUntil([&] { return c.dReady(); });
        return c.dPop();
    }

    DMsg
    doAcquire(MockClient &c, Addr line, Grow grow)
    {
        c.acquire(line, grow);
        const DMsg grant = awaitD(c);
        EXPECT_TRUE(grant.isGrant());
        c.grantAck(line);
        sim.runUntil([&] { return l2->idle(); });
        return grant;
    }

    const DirEntry &
    entryOf(Addr line)
    {
        const Directory &dir = l2->directory();
        const int way = dir.findWay(lineAlign(line));
        EXPECT_GE(way, 0);
        return dir.entry(dir.setOf(lineAlign(line)),
                         static_cast<unsigned>(way));
    }
};

TEST_F(ExclusiveL2Test, CleanFillBypassesTheBankedStore)
{
    build();
    LineData seeded{};
    seeded[0] = 0xAB;
    dram->pokeLine(0x1000, seeded);

    const DMsg grant = doAcquire(*clients[0], 0x1000, Grow::NtoB);
    EXPECT_EQ(grant.op, DOp::GrantData);
    EXPECT_EQ(grant.data[0], 0xAB); // granted straight from the stash

    // The directory tracks the holder, but the line is tag-only: its
    // bytes never entered the BankedStore.
    const DirEntry &e = entryOf(0x1000);
    EXPECT_TRUE(e.valid);
    EXPECT_FALSE(e.dirty);
    EXPECT_FALSE(e.data_resident);
    EXPECT_TRUE(e.heldBy(0));
}

TEST_F(ExclusiveL2Test, DirtyWritebackPromotesTheLineToResident)
{
    build();
    doAcquire(*clients[0], 0x2000, Grow::NtoT);
    EXPECT_FALSE(entryOf(0x2000).data_resident);

    clients[0]->sendC(COp::ReleaseData, 0x2000, Shrink::TtoN,
                      CboKind::Flush, 0x99);
    const DMsg ack = awaitD(*clients[0]);
    EXPECT_EQ(ack.op, DOp::ReleaseAck);
    sim.runUntil([&] { return l2->idle(); });

    // Dirty bytes can live nowhere else, so the writeback promotes the
    // entry to data-resident (dirty implies resident in every policy).
    const DirEntry &e = entryOf(0x2000);
    EXPECT_TRUE(e.dirty);
    EXPECT_TRUE(e.data_resident);
    EXPECT_TRUE(l2->isDirty(0x2000));
}

TEST_F(ExclusiveL2Test, TagOnlyLineIsRefetchedForTheNextReader)
{
    build();
    LineData seeded{};
    seeded[0] = 0xCD;
    dram->pokeLine(0x3000, seeded);

    // Client 0 takes a clean (tag-only) copy; client 1's acquire must
    // re-fetch the bytes from DRAM rather than read the BankedStore.
    // The sole reader was granted Trunk, so the L2 first downgrades it;
    // the clean ProbeAck carries no data, forcing the fetch.
    doAcquire(*clients[0], 0x3000, Grow::NtoB);
    clients[1]->acquire(0x3000, Grow::NtoB);
    sim.runUntil([&] { return clients[0]->bReady(); });
    clients[0]->bPop();
    clients[0]->sendC(COp::ProbeAck, 0x3000, Shrink::TtoB);
    const DMsg grant = awaitD(*clients[1]);
    EXPECT_EQ(grant.op, DOp::GrantData);
    EXPECT_EQ(grant.data[0], 0xCD);
    clients[1]->grantAck(0x3000);
    sim.runUntil([&] { return l2->idle(); });
}

// ---------------------------------------------------------------------
// End-to-end coverage of the non-default policies.
// ---------------------------------------------------------------------

TEST(PolicyEndToEnd, ExclusiveLlcIsCoherentOnTheCboWorkload)
{
    // Checker is fatal: any coherence or data-residency violation
    // aborts. Covers both flush kinds and multi-slice exclusive.
    for (const bool flush : {false, true}) {
        SoCConfig cfg;
        cfg.cores = 2;
        cfg.l2.policy = StateKind::Exclusive;
        cfg.l2.slices = 2;
        EXPECT_GT(workloads::cboLatency(cfg, 2, 4096, flush), 0u);
    }
}

TEST(PolicyEndToEnd, HashedIndexMultiSliceRunIsCoherent)
{
    SoCConfig cfg;
    cfg.cores = 1;
    cfg.l2.slices = 4;
    cfg.l2.index = IndexKind::Hashed;
    SoC soc(cfg);
    constexpr unsigned lines = 32;
    constexpr Addr base = 0x20000;
    Program p;
    for (unsigned i = 0; i < lines; ++i)
        p.push_back(MemOp::store(base + i * line_bytes, 0xB0 + i));
    for (unsigned i = 0; i < lines; ++i)
        p.push_back(MemOp::flush(base + i * line_bytes));
    p.push_back(MemOp::fence());
    soc.setPrograms({p});
    soc.runToQuiescence();

    std::set<unsigned> homes;
    for (unsigned i = 0; i < lines; ++i) {
        const Addr a = base + i * line_bytes;
        EXPECT_EQ(soc.dram().peekWord(a), 0xB0 + i) << "line " << i;
        homes.insert(soc.xbar()->indexPolicy().sliceOf(a));
    }
    // The hash actually stripes this contiguous range across slices.
    EXPECT_GE(homes.size(), 2u);
    EXPECT_EQ(soc.checker().checkNow(), 0u);
}

TEST(PolicyEndToEnd, MisrouteUnderHashedIndexTripsTheChecker)
{
    SoCConfig cfg;
    cfg.cores = 2;
    cfg.l2.slices = 2;
    cfg.l2.index = IndexKind::Hashed;
    cfg.verify.fatal = false;
    SoC soc(cfg);
    ASSERT_NE(soc.xbar(), nullptr);
    soc.xbar()->injectAMisroute();
    Program p;
    p.push_back(MemOp::store(0x4000, 1));
    p.push_back(MemOp::store(0x4040, 2));
    soc.setPrograms({p, p});
    soc.runToCompletion(200'000);
    ASSERT_FALSE(soc.checker().clean());
    EXPECT_EQ(soc.checker().violations().front().invariant,
              "slice-routing");
}

TEST(PolicyEndToEnd, SliceIndexedDifferentlyFromItsRouterIsCaught)
{
    // The negative control for the shared-index contract: build two
    // slices that index with the *hashed* policy but deliver a request
    // the way a modulo router would. The slice accepts it (slices
    // trust their router by design) and the checker's slice-routing
    // audit — which asks each slice's own homesLine — must flag it.
    Simulator sim;
    Stats stats;
    L2Config cfg;
    cfg.slices = 2;
    cfg.index = IndexKind::Hashed;
    Dram dram("dram", sim, DramConfig{}, stats);
    L2Cache s0("l2.s0", sim, cfg, dram, stats, 0);
    L2Cache s1("l2.s1", sim, cfg, dram, stats, 1);

    MockClient client(sim, 0);
    s0.connectClient(0, client.link);

    verify::CheckerConfig vcfg;
    vcfg.fatal = false;
    verify::CoherenceChecker checker("checker", sim, vcfg);
    checker.setL2(s0);
    checker.setL2(s1);
    checker.setDram(dram);

    sim.add(dram);
    sim.add(s0);
    sim.add(s1);
    sim.add(checker);

    // A line the hashed policy homes to slice 1, delivered to slice 0
    // — exactly what a router indexing with a different policy would
    // produce.
    Addr line = 0x1000;
    while (cfg.indexPolicy().sliceOf(line) != 1)
        line += line_bytes;

    client.acquire(line, Grow::NtoB);
    sim.runUntil([&] { return client.dReady(); });
    client.grantAck(line);
    sim.runUntil([&] { return s0.idle(); });

    checker.checkNow();
    ASSERT_FALSE(checker.clean());
    EXPECT_EQ(checker.violations().front().invariant, "slice-routing");
}

TEST(PolicyEndToEnd, FuzzSmokeAcrossThePolicyGrid)
{
    // A few jittered seeds on each non-default corner of the grid; the
    // CI policy-matrix job runs the deep sweeps.
    struct Point
    {
        StateKind policy;
        IndexKind index;
        unsigned slices;
    };
    const Point points[] = {
        {StateKind::Exclusive, IndexKind::Modulo, 1},
        {StateKind::Exclusive, IndexKind::Hashed, 2},
        {StateKind::Inclusive, IndexKind::Hashed, 2},
    };
    for (const Point &pt : points) {
        workloads::FuzzSpec spec;
        spec.harts = 2;
        spec.ops = 60;
        spec.lines = 4;
        spec.max_cycles = 500'000;
        spec.l2_policy = pt.policy;
        spec.l2_index = pt.index;
        spec.l2_slices = pt.slices;
        const auto failure = workloads::runFuzz(spec, 0, 10, 2);
        EXPECT_FALSE(failure.has_value())
            << toString(pt.policy) << "/" << toString(pt.index) << "/"
            << pt.slices << ": seed " << failure->seed << " "
            << failure->kind << ": " << failure->detail;
    }
}

TEST(PolicyEndToEnd, ExclusiveHashedKvCrashAuditIsDurable)
{
    workloads::KvSpec s;
    s.mix = "A";
    s.keys = 32;
    s.ops = 40;
    s.cores = 2;
    s.seed = 3;
    s.slices = 2;
    s.l2_policy = StateKind::Exclusive;
    s.l2_index = IndexKind::Hashed;
    s.crash_at = 6000;
    const workloads::KvRunResult r = workloads::runKv(s);
    EXPECT_TRUE(r.crashed);
    EXPECT_TRUE(r.durable())
        << r.oracle_violations << " oracle violation(s), "
        << r.recovery_violations.size() << " recovery violation(s)";
}

} // namespace
} // namespace skipit
