/**
 * @file
 * Replacement-policy tests: ReplacePolicy unit semantics for each kind,
 * SoC-level victim-selection storms (set-conflict thrash with back-
 * invalidation, full-set RootRelease storms) under every policy with
 * the invariant checker fatal, the pending-flush eviction corner via
 * the jittered coherence fuzzer, and seeded-random replay determinism.
 */

#include <gtest/gtest.h>

#include <vector>

#include "l2/replace.hh"
#include "soc/soc.hh"
#include "workloads/fuzz.hh"
#include "workloads/workloads.hh"

namespace skipit {
namespace {

constexpr ReplaceKind all_kinds[] = {
    ReplaceKind::Lru, ReplaceKind::Fifo, ReplaceKind::Random};

// ---------------------------------------------------------------------
// ReplacePolicy unit semantics.
// ---------------------------------------------------------------------

TEST(ReplacePolicy, InvalidUnlockedWayIsAlwaysPreferred)
{
    for (const ReplaceKind k : all_kinds) {
        ReplacePolicy p(k, 4, 4);
        // Ways 1 and 3 invalid: the lowest-index hole wins.
        EXPECT_EQ(p.pickVictim(0, 0b0101, 0b1111), 1) << toString(k);
        // With way 1 locked, way 3 is the remaining hole.
        EXPECT_EQ(p.pickVictim(0, 0b0101, 0b1101), 3) << toString(k);
    }
}

TEST(ReplacePolicy, AllWaysLockedYieldsNoVictim)
{
    for (const ReplaceKind k : all_kinds) {
        ReplacePolicy p(k, 1, 4);
        EXPECT_EQ(p.pickVictim(0, 0b1111, 0), -1) << toString(k);
    }
}

TEST(ReplacePolicy, LruEvictsLeastRecentlyTouched)
{
    ReplacePolicy p(ReplaceKind::Lru, 2, 4);
    p.touch(0, 2);
    p.touch(0, 0);
    p.touch(0, 3);
    p.touch(0, 1);
    EXPECT_EQ(p.pickVictim(0, 0b1111, 0b1111), 2);
    p.touch(0, 2); // way 0 is now the stalest
    EXPECT_EQ(p.pickVictim(0, 0b1111, 0b1111), 0);
    // The victim choice respects the lock mask: with way 0 locked the
    // next-stalest way wins.
    EXPECT_EQ(p.pickVictim(0, 0b1111, 0b1110), 3);
    // Per-set state: set 1 never saw a touch, ties break to way 0.
    EXPECT_EQ(p.pickVictim(1, 0b1111, 0b1111), 0);
}

TEST(ReplacePolicy, FifoEvictsInFillOrderAndIgnoresTouches)
{
    ReplacePolicy p(ReplaceKind::Fifo, 1, 4);
    p.fill(0, 3);
    p.fill(0, 1);
    p.fill(0, 0);
    p.fill(0, 2);
    // Touching the oldest line must not save it — FIFO is insertion
    // order, not recency.
    p.touch(0, 3);
    p.touch(0, 3);
    EXPECT_EQ(p.pickVictim(0, 0b1111, 0b1111), 3);
    p.fill(0, 3); // re-inserted at the tail; way 1 is now oldest
    EXPECT_EQ(p.pickVictim(0, 0b1111, 0b1111), 1);
}

TEST(ReplacePolicy, RandomStreamIsSeedDeterministic)
{
    ReplacePolicy a(ReplaceKind::Random, 1, 8, 42);
    ReplacePolicy b(ReplaceKind::Random, 1, 8, 42);
    for (int i = 0; i < 64; ++i) {
        const int va = a.pickVictim(0, 0xff, 0xff);
        EXPECT_EQ(va, b.pickVictim(0, 0xff, 0xff)) << "draw " << i;
        ASSERT_GE(va, 0);
        ASSERT_LT(va, 8);
    }
}

TEST(ReplacePolicy, RandomStreamsDifferAcrossSeeds)
{
    ReplacePolicy a(ReplaceKind::Random, 1, 8, 2);
    ReplacePolicy b(ReplaceKind::Random, 1, 8, 4);
    bool diverged = false;
    for (int i = 0; i < 64 && !diverged; ++i)
        diverged = a.pickVictim(0, 0xff, 0xff) !=
                   b.pickVictim(0, 0xff, 0xff);
    EXPECT_TRUE(diverged);
}

TEST(ReplacePolicy, RandomRespectsLockMask)
{
    ReplacePolicy p(ReplaceKind::Random, 1, 8, 7);
    for (int i = 0; i < 64; ++i) {
        const int v = p.pickVictim(0, 0xff, 0b00101100);
        ASSERT_TRUE(v == 2 || v == 3 || v == 5) << "draw " << i;
    }
}

TEST(ReplacePolicy, TokenRoundTrip)
{
    for (const ReplaceKind k : all_kinds) {
        ReplaceKind parsed;
        ASSERT_TRUE(replaceKindFromString(toString(k), parsed));
        EXPECT_EQ(parsed, k);
    }
    ReplaceKind parsed;
    EXPECT_FALSE(replaceKindFromString("plru", parsed));
}

// ---------------------------------------------------------------------
// SoC-level victim selection.
// ---------------------------------------------------------------------

/** A small conflict-heavy L2: every line in the test set aliases. */
SoCConfig
tinyL2(ReplaceKind replace)
{
    SoCConfig cfg;
    cfg.cores = 2;
    cfg.l2.sets = 64;
    cfg.l2.ways = 2;
    cfg.l2.replace = replace;
    return cfg; // verify.fatal stays on: violations abort the test
}

/** @return addresses of @p n lines that all map to L2 set 1. */
std::vector<Addr>
conflictLines(const SoCConfig &cfg, unsigned n)
{
    const Addr stride = Addr(cfg.l2.sets) * line_bytes;
    std::vector<Addr> lines;
    for (unsigned i = 0; i < n; ++i)
        lines.push_back(line_bytes + i * stride);
    return lines;
}

TEST(VictimSelection, SetConflictThrashIsCoherentUnderEveryPolicy)
{
    // Twelve dirty lines funnel through one 2-way set, so fills must
    // evict lines the L1s still hold (back-invalidation probes) and
    // write dirty victims back. Whatever the policy picks, the final
    // memory image must be exact and the checker clean.
    for (const ReplaceKind k : all_kinds) {
        SoCConfig cfg = tinyL2(k);
        SoC soc(cfg);
        const std::vector<Addr> lines = conflictLines(cfg, 12);
        Program writer, reader;
        for (std::size_t i = 0; i < lines.size(); ++i) {
            writer.push_back(MemOp::store(lines[i], 0xC0DE + i));
            reader.push_back(MemOp::load(lines[i]));
        }
        writer.push_back(MemOp::fence());
        soc.setPrograms({writer, reader});
        soc.runToQuiescence();
        for (std::size_t i = 0; i < lines.size(); ++i) {
            SCOPED_TRACE(toString(k) + std::string(" line ") +
                         std::to_string(i));
            // Resident lines are checked against the L2/L1 by the
            // checker; evicted ones must have landed in DRAM.
            if (!soc.l2().isResident(lines[i])) {
                EXPECT_EQ(soc.dram().peekWord(lines[i]), 0xC0DE + i);
            }
        }
        EXPECT_EQ(soc.checker().checkNow(), 0u) << toString(k);
    }
}

TEST(VictimSelection, FullSetRootReleaseStormUnderEveryPolicy)
{
    // Both cores dirty the same conflict set, then flush every line
    // (RootRelease storm) while the other core's stores keep filling
    // it. Ends with an empty set and every payload durable in DRAM.
    for (const ReplaceKind k : all_kinds) {
        SoCConfig cfg = tinyL2(k);
        SoC soc(cfg);
        const std::vector<Addr> lines = conflictLines(cfg, 8);
        Program a, b;
        for (std::size_t i = 0; i < lines.size(); ++i) {
            a.push_back(MemOp::store(lines[i], 0xA000 + i));
            a.push_back(MemOp::flush(lines[i]));
            // Core 1 races loads and flushes on the same set.
            b.push_back(MemOp::load(lines[i]));
            b.push_back(MemOp::flush(lines[i]));
        }
        a.push_back(MemOp::fence());
        b.push_back(MemOp::fence());
        soc.setPrograms({a, b});
        soc.runToQuiescence();
        for (std::size_t i = 0; i < lines.size(); ++i)
            EXPECT_EQ(soc.dram().peekWord(lines[i]), 0xA000 + i)
                << toString(k) << " line " << i;
        EXPECT_EQ(soc.checker().checkNow(), 0u) << toString(k);
    }
}

TEST(VictimSelection, PendingFlushEvictionFuzzSmokeUnderEveryPolicy)
{
    // The §5.4 corner under each policy: one FSHR keeps flushes queued
    // while jittered traffic forces evictions of lines with flushes
    // pending. A handful of seeds each is a smoke, not a sweep — the
    // CI fuzz job covers depth.
    for (const ReplaceKind k : all_kinds) {
        workloads::FuzzSpec spec;
        spec.harts = 2;
        spec.ops = 60;
        spec.lines = 4;
        spec.fshrs = 1;
        spec.flush_queue_depth = 8;
        spec.max_cycles = 500'000;
        spec.l2_replace = k;
        const auto failure = workloads::runFuzz(spec, 0, 10, 2);
        EXPECT_FALSE(failure.has_value())
            << toString(k) << ": seed " << failure->seed << " "
            << failure->kind << ": " << failure->detail;
    }
}

TEST(VictimSelection, SeededRandomReplaysBitIdentically)
{
    // Random replacement is part of the deterministic machine: the
    // same seed replays to the cycle, and distinct seeds are still
    // coherent (checked fatally inside cboLatency's SoC).
    SoCConfig cfg = tinyL2(ReplaceKind::Random);
    cfg.l2.replace_seed = 99;
    const Cycle first = workloads::cboLatency(cfg, 2, 4096, true);
    const Cycle second = workloads::cboLatency(cfg, 2, 4096, true);
    EXPECT_EQ(first, second);
    cfg.l2.replace_seed = 100;
    EXPECT_GT(workloads::cboLatency(cfg, 2, 4096, true), 0u);
}

} // namespace
} // namespace skipit
