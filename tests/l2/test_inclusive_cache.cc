/**
 * @file
 * Unit tests of the inclusive L2 driven directly over TileLink by mock
 * clients: acquire/grant/ack flows, directory bookkeeping, probe
 * generation, RootRelease execution (§5.5), the LLC dirty-bit skip, the
 * GrantDataDirty selection (§6), and inclusive victim back-invalidation.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "dram/dram.hh"
#include "l2/cache.hh"

namespace skipit {
namespace {

/** A hand-cranked client end of a TileLink (no L1 logic, just messages). */
struct MockClient
{
    TLLink link;
    AgentId id;

    MockClient(Simulator &sim, AgentId id_) : link(sim, 1), id(id_) {}

    void
    acquire(Addr line, Grow grow)
    {
        AMsg m;
        m.addr = lineAlign(line);
        m.param = grow;
        m.source = id;
        link.a.send(m);
    }

    void
    grantAck(Addr line)
    {
        EMsg m;
        m.addr = lineAlign(line);
        m.source = id;
        link.e.send(m);
    }

    void
    sendC(COp op, Addr line, Shrink param, CboKind cbo = CboKind::Flush,
          std::uint64_t word0 = 0)
    {
        CMsg m;
        m.op = op;
        m.addr = lineAlign(line);
        m.param = param;
        m.cbo = cbo;
        m.source = id;
        std::memcpy(m.data.data(), &word0, 8);
        link.c.send(m, TLLink::beatsFor(m));
    }

    bool dReady() { return link.d.ready(); }
    DMsg dPop() { return link.d.recv(); }
    bool bReady() { return link.b.ready(); }
    BMsg bPop() { return link.b.recv(); }
};

class L2Test : public ::testing::Test
{
  protected:
    Simulator sim;
    Stats stats;
    L2Config cfg{};
    DramConfig dcfg{};
    std::unique_ptr<Dram> dram;
    std::unique_ptr<InclusiveCache> l2;
    std::vector<std::unique_ptr<MockClient>> clients;

    void
    build(unsigned nclients = 2)
    {
        dram = std::make_unique<Dram>("dram", sim, dcfg, stats);
        l2 = std::make_unique<InclusiveCache>("l2", sim, cfg, *dram,
                                              stats);
        for (unsigned c = 0; c < nclients; ++c) {
            clients.push_back(std::make_unique<MockClient>(
                sim, static_cast<AgentId>(c)));
            l2->connectClient(static_cast<AgentId>(c),
                              clients.back()->link);
        }
        sim.add(*dram);
        sim.add(*l2);
    }

    DMsg
    awaitD(MockClient &c)
    {
        sim.runUntil([&] { return c.dReady(); });
        return c.dPop();
    }

    BMsg
    awaitB(MockClient &c)
    {
        sim.runUntil([&] { return c.bReady(); });
        return c.bPop();
    }

    /** Full acquire handshake; returns the grant. */
    DMsg
    doAcquire(MockClient &c, Addr line, Grow grow)
    {
        c.acquire(line, grow);
        const DMsg grant = awaitD(c);
        EXPECT_TRUE(grant.isGrant());
        c.grantAck(line);
        sim.runUntil([&] { return l2->idle(); });
        return grant;
    }
};

TEST_F(L2Test, ColdAcquireFetchesFromDramAndGrantsClean)
{
    build();
    LineData seeded{};
    seeded[0] = 0xAB;
    dram->pokeLine(0x1000, seeded);

    const DMsg grant = doAcquire(*clients[0], 0x1000, Grow::NtoB);
    EXPECT_EQ(grant.op, DOp::GrantData);
    EXPECT_EQ(grant.data[0], 0xAB);
    // Sole reader is granted exclusive (Trunk), like the SiFive L2.
    EXPECT_EQ(grant.cap, Cap::toT);
    EXPECT_TRUE(l2->isResident(0x1000));
    EXPECT_FALSE(l2->isDirty(0x1000));
}

TEST_F(L2Test, SecondReaderSharesAfterTrunkDowngrade)
{
    build();
    doAcquire(*clients[0], 0x2000, Grow::NtoB); // granted toT (sole)

    clients[1]->acquire(0x2000, Grow::NtoB);
    // The L2 must probe client 0 down to Branch first.
    const BMsg probe = awaitB(*clients[0]);
    EXPECT_EQ(probe.addr, 0x2000u);
    EXPECT_EQ(probe.param, Cap::toB);
    clients[0]->sendC(COp::ProbeAck, 0x2000, Shrink::TtoB);

    const DMsg grant = awaitD(*clients[1]);
    EXPECT_EQ(grant.cap, Cap::toB);
    clients[1]->grantAck(0x2000);
    sim.runUntil([&] { return l2->idle(); });
}

TEST_F(L2Test, WriterInvalidatesAllBranchHolders)
{
    build();
    doAcquire(*clients[0], 0x3000, Grow::NtoB);

    clients[1]->acquire(0x3000, Grow::NtoT);
    const BMsg probe = awaitB(*clients[0]);
    EXPECT_EQ(probe.param, Cap::toN);
    clients[0]->sendC(COp::ProbeAck, 0x3000, Shrink::TtoN);
    const DMsg grant = awaitD(*clients[1]);
    EXPECT_EQ(grant.cap, Cap::toT);
    clients[1]->grantAck(0x3000);
    sim.runUntil([&] { return l2->idle(); });
}

TEST_F(L2Test, ProbeAckDataMarksLineDirtyAndGrantsDirty)
{
    build();
    doAcquire(*clients[0], 0x4000, Grow::NtoT);

    clients[1]->acquire(0x4000, Grow::NtoB);
    awaitB(*clients[0]);
    clients[0]->sendC(COp::ProbeAckData, 0x4000, Shrink::TtoB,
                      CboKind::Flush, 0x77);
    const DMsg grant = awaitD(*clients[1]);
    // Skip It (§6): the line is dirty in L2, so the grant says so.
    EXPECT_EQ(grant.op, DOp::GrantDataDirty);
    std::uint64_t w = 0;
    std::memcpy(&w, grant.data.data(), 8);
    EXPECT_EQ(w, 0x77u);
    clients[1]->grantAck(0x4000);
    sim.runUntil([&] { return l2->idle(); });
    EXPECT_TRUE(l2->isDirty(0x4000));
}

TEST_F(L2Test, GrantDataDirtyDisabledByConfig)
{
    cfg.grant_data_dirty = false;
    build();
    doAcquire(*clients[0], 0x5000, Grow::NtoT);
    clients[1]->acquire(0x5000, Grow::NtoB);
    awaitB(*clients[0]);
    clients[0]->sendC(COp::ProbeAckData, 0x5000, Shrink::TtoB);
    const DMsg grant = awaitD(*clients[1]);
    EXPECT_EQ(grant.op, DOp::GrantData); // pre-Skip-It L2
    clients[1]->grantAck(0x5000);
    sim.runUntil([&] { return l2->idle(); });
}

TEST_F(L2Test, ReleaseDataUpdatesStoreAndAcks)
{
    build();
    doAcquire(*clients[0], 0x6000, Grow::NtoT);
    clients[0]->sendC(COp::ReleaseData, 0x6000, Shrink::TtoN,
                      CboKind::Flush, 0x99);
    const DMsg ack = awaitD(*clients[0]);
    EXPECT_EQ(ack.op, DOp::ReleaseAck);
    EXPECT_TRUE(l2->isDirty(0x6000));
}

TEST_F(L2Test, RootReleaseDataWritesDramAndAcks)
{
    build();
    doAcquire(*clients[0], 0x7000, Grow::NtoT);
    // The core flushed a dirty line: RootReleaseData with TtoN (§5.1).
    clients[0]->sendC(COp::RootReleaseData, 0x7000, Shrink::TtoN,
                      CboKind::Flush, 0x1234);
    const DMsg ack = awaitD(*clients[0]);
    EXPECT_EQ(ack.op, DOp::RootReleaseAck);
    sim.runUntil([&] { return l2->idle(); });
    EXPECT_EQ(dram->peekWord(0x7000), 0x1234u);
    // CBO.FLUSH invalidates the L2 copy as well.
    EXPECT_FALSE(l2->isResident(0x7000));
}

TEST_F(L2Test, RootReleaseCleanKeepsLineCleansDirty)
{
    build();
    doAcquire(*clients[0], 0x8000, Grow::NtoT);
    clients[0]->sendC(COp::RootReleaseData, 0x8000, Shrink::TtoT,
                      CboKind::Clean, 0x4321);
    const DMsg ack = awaitD(*clients[0]);
    EXPECT_EQ(ack.op, DOp::RootReleaseAck);
    sim.runUntil([&] { return l2->idle(); });
    EXPECT_EQ(dram->peekWord(0x8000), 0x4321u);
    EXPECT_TRUE(l2->isResident(0x8000));
    EXPECT_FALSE(l2->isDirty(0x8000));
}

TEST_F(L2Test, LlcSkipAvoidsDramWriteForCleanLine)
{
    build();
    doAcquire(*clients[0], 0x9000, Grow::NtoB);
    const auto writes_before = stats.get("dram.writes");
    // Clean line, clean writeback: the dirty-bit check skips DRAM (§5.5).
    clients[0]->sendC(COp::RootRelease, 0x9000, Shrink::BtoB,
                      CboKind::Clean);
    const DMsg ack = awaitD(*clients[0]);
    EXPECT_EQ(ack.op, DOp::RootReleaseAck);
    EXPECT_EQ(stats.get("dram.writes"), writes_before);
    EXPECT_GE(stats.get("l2.rootrelease.llc_skipped"), 1u);
}

TEST_F(L2Test, LlcSkipDisabledWritesCleanLines)
{
    cfg.llc_skip = false;
    build();
    doAcquire(*clients[0], 0xa000, Grow::NtoB);
    const auto writes_before = stats.get("dram.writes");
    clients[0]->sendC(COp::RootRelease, 0xa000, Shrink::BtoB,
                      CboKind::Clean);
    awaitD(*clients[0]);
    sim.runUntil([&] { return l2->idle(); });
    EXPECT_EQ(stats.get("dram.writes"), writes_before + 1);
}

TEST_F(L2Test, RootReleaseForNonResidentLineAcksImmediately)
{
    build();
    clients[0]->sendC(COp::RootRelease, 0xb000, Shrink::NtoN,
                      CboKind::Flush);
    const DMsg ack = awaitD(*clients[0]);
    EXPECT_EQ(ack.op, DOp::RootReleaseAck);
    EXPECT_EQ(stats.get("dram.writes"), 0u);
}

TEST_F(L2Test, RootReleaseFlushProbesOtherHoldersToN)
{
    build();
    // Client 0 owns the line dirty; client 1 flushes it (§5.5: probing
    // happens even though the requester holds nothing).
    doAcquire(*clients[0], 0xc000, Grow::NtoT);
    clients[1]->sendC(COp::RootRelease, 0xc000, Shrink::NtoN,
                      CboKind::Flush);
    const BMsg probe = awaitB(*clients[0]);
    EXPECT_EQ(probe.param, Cap::toN);
    clients[0]->sendC(COp::ProbeAckData, 0xc000, Shrink::TtoN,
                      CboKind::Flush, 0xBEEF);
    const DMsg ack = awaitD(*clients[1]);
    EXPECT_EQ(ack.op, DOp::RootReleaseAck);
    sim.runUntil([&] { return l2->idle(); });
    EXPECT_EQ(dram->peekWord(0xc000), 0xBEEFu);
    EXPECT_FALSE(l2->isResident(0xc000));
}

TEST_F(L2Test, RootReleaseCleanProbesOnlyForeignTrunk)
{
    build();
    doAcquire(*clients[0], 0xd000, Grow::NtoT);
    clients[1]->sendC(COp::RootRelease, 0xd000, Shrink::NtoN,
                      CboKind::Clean);
    const BMsg probe = awaitB(*clients[0]);
    EXPECT_EQ(probe.param, Cap::toB); // downgrade, don't revoke
    clients[0]->sendC(COp::ProbeAckData, 0xd000, Shrink::TtoB,
                      CboKind::Clean, 0xF00D);
    awaitD(*clients[1]);
    sim.runUntil([&] { return l2->idle(); });
    EXPECT_EQ(dram->peekWord(0xd000), 0xF00Du);
    EXPECT_TRUE(l2->isResident(0xd000)); // clean keeps the line
    EXPECT_FALSE(l2->isDirty(0xd000));
}

TEST_F(L2Test, VictimEvictionBackInvalidatesL1Holders)
{
    cfg.sets = 1; // tiny L2: every line maps to the same set
    cfg.ways = 2;
    build();
    doAcquire(*clients[0], 0x10000, Grow::NtoB);
    doAcquire(*clients[0], 0x20000, Grow::NtoB);
    // Third line forces a victim; its L1 copy must be probed out
    // (inclusivity).
    clients[0]->acquire(0x30000, Grow::NtoB);
    const BMsg probe = awaitB(*clients[0]);
    EXPECT_EQ(probe.param, Cap::toN);
    const Addr victim = probe.addr;
    EXPECT_TRUE(victim == 0x10000 || victim == 0x20000);
    clients[0]->sendC(COp::ProbeAck, victim, Shrink::TtoN);
    const DMsg grant = awaitD(*clients[0]);
    EXPECT_TRUE(grant.isGrant());
    clients[0]->grantAck(0x30000);
    sim.runUntil([&] { return l2->idle(); });
    EXPECT_FALSE(l2->isResident(victim));
    EXPECT_TRUE(l2->isResident(0x30000));
}

TEST_F(L2Test, DirtyVictimWrittenBackToDram)
{
    cfg.sets = 1;
    cfg.ways = 1;
    build();
    doAcquire(*clients[0], 0x40000, Grow::NtoT);
    // Dirty the line via a voluntary release.
    clients[0]->sendC(COp::ReleaseData, 0x40000, Shrink::TtoN,
                      CboKind::Flush, 0xDADA);
    awaitD(*clients[0]); // ReleaseAck
    // A new line displaces it; the dirty victim must land in DRAM.
    doAcquire(*clients[0], 0x50000, Grow::NtoB);
    EXPECT_EQ(dram->peekWord(0x40000), 0xDADAu);
}

TEST_F(L2Test, DirectoryTracksHoldersExactly)
{
    build();
    doAcquire(*clients[0], 0x60000, Grow::NtoB);
    const int way = l2->directory().findWay(0x60000);
    ASSERT_GE(way, 0);
    const unsigned set = l2->directory().setOf(0x60000);
    const DirEntry &e = l2->directory().entry(set,
                                              static_cast<unsigned>(way));
    EXPECT_TRUE(e.heldBy(0));
    EXPECT_FALSE(e.heldBy(1));
}

} // namespace
} // namespace skipit
