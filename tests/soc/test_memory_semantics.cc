/**
 * @file
 * The paper's §4 memory-semantics contract, exercised end to end —
 * including the three scenarios of Figure 5.
 */

#include <gtest/gtest.h>

#include "soc/soc.hh"

namespace skipit {
namespace {

class MemSemantics : public ::testing::Test
{
  protected:
    SoCConfig cfg{};
};

// Figure 5 (a): without writebacks, nothing is guaranteed to be in
// memory, in any order.
TEST_F(MemSemantics, ScenarioA_NoWritebackNoPersistence)
{
    SoC soc(cfg);
    soc.hart(0).setProgram({
        MemOp::store(0x1000, 1), // x = 1
        MemOp::store(0x2000, 1), // y = 1
        MemOp::fence(),
    });
    soc.runToQuiescence();
    EXPECT_EQ(soc.dram().peekWord(0x1000), 0u);
    EXPECT_EQ(soc.dram().peekWord(0x2000), 0u);
}

// Figure 5 (b): writeback(x) is ordered only with respect to writes to
// x's line; y may or may not be persisted — but x must be after a fence.
TEST_F(MemSemantics, ScenarioB_WritebackOrderedWithSameLineWrites)
{
    SoC soc(cfg);
    soc.hart(0).setProgram({
        MemOp::store(0x1000, 1), // x = 1
        MemOp::flush(0x1000),    // writeback(&x)
        MemOp::store(0x2000, 1), // y = 1 (no writeback)
        MemOp::fence(),
    });
    soc.runToQuiescence();
    EXPECT_EQ(soc.dram().peekWord(0x1000), 1u); // x persisted
    EXPECT_EQ(soc.dram().peekWord(0x2000), 0u); // y still cached
}

// Figure 5 (c): writeback + fence makes the value durable before any
// subsequent instruction executes.
TEST_F(MemSemantics, ScenarioC_FenceOrdersWritebackBeforeLaterOps)
{
    SoC soc(cfg);
    soc.hart(0).setProgram({
        MemOp::store(0x1000, 7),  // x = 7
        MemOp::flush(0x1000),     // writeback(&x)
        MemOp::fence(),           // fence()
        MemOp::load(0x1000),      // y = x
    });
    soc.runToCompletion();
    EXPECT_EQ(soc.dram().peekWord(0x1000), 7u);
    EXPECT_EQ(soc.hart(0).loadValue(3), 7u);
}

// §4: a writeback covers ALL earlier writes to the same cache line, not
// just the word named by the instruction.
TEST_F(MemSemantics, WritebackCoversWholeLine)
{
    SoC soc(cfg);
    soc.hart(0).setProgram({
        MemOp::store(0x1000, 0xA),
        MemOp::store(0x1008, 0xB), // same line, different word
        MemOp::store(0x1038, 0xC), // last word of the line
        MemOp::flush(0x1010),      // any address within the line
        MemOp::fence(),
    });
    soc.runToCompletion();
    EXPECT_EQ(soc.dram().peekWord(0x1000), 0xAu);
    EXPECT_EQ(soc.dram().peekWord(0x1008), 0xBu);
    EXPECT_EQ(soc.dram().peekWord(0x1038), 0xCu);
}

// §4 (BOOM specifics): because CBO.X is encoded as a store, it is ordered
// behind ALL program-order-earlier writes, like x86.
TEST_F(MemSemantics, WritebackOrderedBehindEarlierWritesToOtherLines)
{
    SoC soc(cfg);
    soc.hart(0).setProgram({
        MemOp::store(0x3000, 3), // other line, before the writeback
        MemOp::store(0x1000, 1),
        MemOp::flush(0x1000),
        MemOp::flush(0x3000),
        MemOp::fence(),
    });
    soc.runToCompletion();
    // Both writebacks observed both stores.
    EXPECT_EQ(soc.dram().peekWord(0x3000), 3u);
    EXPECT_EQ(soc.dram().peekWord(0x1000), 1u);
}

// §4: writebacks are asynchronous — they don't block retirement. A long
// run of independent flushes completes far faster than synchronous
// round trips would allow.
TEST_F(MemSemantics, WritebacksAreAsynchronous)
{
    SoC soc(cfg);
    Program warm, p;
    constexpr int lines = 32;
    for (int i = 0; i < lines; ++i)
        warm.push_back(MemOp::store(0x4000 + i * line_bytes, i));
    warm.push_back(MemOp::fence());
    soc.hart(0).setProgram(warm);
    soc.runToQuiescence();

    for (int i = 0; i < lines; ++i)
        p.push_back(MemOp::flush(0x4000 + i * line_bytes));
    p.push_back(MemOp::fence());
    soc.hart(0).setProgram(p);
    const Cycle t = soc.runToCompletion();
    // One synchronous flush is ~112 cycles; 32 must pipeline well below
    // 32 * 112.
    EXPECT_LT(t, 32u * 112u / 2u);
}

// §4: a store to a line with a pending CBO.FLUSH must not have its data
// written back by that earlier flush (it nacks until the flush is done).
TEST_F(MemSemantics, LaterStoreNotSwallowedByEarlierFlush)
{
    SoC soc(cfg);
    soc.hart(0).setProgram({
        MemOp::store(0x5000, 1),
        MemOp::flush(0x5000),
        MemOp::store(0x5000, 2), // program-order after the flush
        MemOp::fence(),
    });
    soc.runToQuiescence();
    // The flush persisted value 1; value 2 is newer and dirty in cache.
    EXPECT_EQ(soc.dram().peekWord(0x5000), 1u);
    soc.hart(0).setProgram({MemOp::load(0x5000)});
    soc.runToCompletion();
    EXPECT_EQ(soc.hart(0).loadValue(0), 2u);
}

// Multi-copy atomicity across cores: once core 1's load returns the new
// value, the directory serialized the transfer; a subsequent flush from
// either core persists exactly that value.
TEST_F(MemSemantics, CrossCoreFlushPersistsLatestValue)
{
    cfg.cores = 2;
    SoC soc(cfg);
    soc.hart(0).setProgram({MemOp::store(0x6000, 10), MemOp::fence()});
    soc.hart(1).setProgram({});
    soc.runToQuiescence();
    soc.hart(1).setProgram({
        MemOp::load(0x6000),
        MemOp::flush(0x6000),
        MemOp::fence(),
    });
    soc.runToCompletion();
    EXPECT_EQ(soc.hart(1).loadValue(0), 10u);
    EXPECT_EQ(soc.dram().peekWord(0x6000), 10u);
}

} // namespace
} // namespace skipit
