/**
 * @file
 * End-to-end integration tests of the whole SoC: functional correctness of
 * loads/stores, coherence between cores, and the crash-consistency
 * property that CBO.X + FENCE persists data to the DRAM backing store.
 */

#include <gtest/gtest.h>

#include "soc/soc.hh"

namespace skipit {
namespace {

class SocBasic : public ::testing::Test
{
  protected:
    SoCConfig cfg{};

    std::unique_ptr<SoC> make()
    {
        return std::make_unique<SoC>(cfg);
    }
};

TEST_F(SocBasic, StoreThenLoadHitsAndReturnsValue)
{
    auto soc = make();
    Program p{
        MemOp::store(0x1000, 0xdeadbeef),
        MemOp::load(0x1000),
    };
    soc->hart(0).setProgram(p);
    soc->runToCompletion();
    EXPECT_EQ(soc->hart(0).loadValue(1), 0xdeadbeefu);
}

TEST_F(SocBasic, LoadOfColdMemoryReturnsZero)
{
    auto soc = make();
    soc->hart(0).setProgram({MemOp::load(0x2000)});
    soc->runToCompletion();
    EXPECT_EQ(soc->hart(0).loadValue(0), 0u);
}

TEST_F(SocBasic, StoreFlushFencePersistsToDram)
{
    auto soc = make();
    Program p{
        MemOp::store(0x3000, 42),
        MemOp::flush(0x3000),
        MemOp::fence(),
    };
    soc->hart(0).setProgram(p);
    soc->runToCompletion();
    EXPECT_EQ(soc->dram().peekWord(0x3000), 42u);
    // CBO.FLUSH invalidates the L1 copy (§2.6).
    EXPECT_EQ(soc->l1(0).lineState(0x3000), ClientState::Nothing);
}

TEST_F(SocBasic, StoreCleanFencePersistsAndKeepsLine)
{
    auto soc = make();
    Program p{
        MemOp::store(0x3000, 77),
        MemOp::clean(0x3000),
        MemOp::fence(),
    };
    soc->hart(0).setProgram(p);
    soc->runToCompletion();
    EXPECT_EQ(soc->dram().peekWord(0x3000), 77u);
    // CBO.CLEAN leaves the line valid (§2.6) and clean.
    EXPECT_NE(soc->l1(0).lineState(0x3000), ClientState::Nothing);
    EXPECT_FALSE(soc->l1(0).lineDirty(0x3000));
}

TEST_F(SocBasic, DirtyDataNotInDramWithoutWriteback)
{
    auto soc = make();
    Program p{
        MemOp::store(0x4000, 5),
        MemOp::fence(),
    };
    soc->hart(0).setProgram(p);
    soc->runToQuiescence();
    EXPECT_EQ(soc->dram().peekWord(0x4000), 0u);
    EXPECT_TRUE(soc->l1(0).lineDirty(0x4000));
}

TEST_F(SocBasic, FlushOfMissingLineStillCompletes)
{
    auto soc = make();
    Program p{
        MemOp::flush(0x5000),
        MemOp::fence(),
    };
    soc->hart(0).setProgram(p);
    const Cycle t = soc->runToCompletion();
    EXPECT_GT(t, 0u);
    EXPECT_FALSE(soc->l1(0).flushing());
}

TEST_F(SocBasic, CrossCoreCoherenceLoadSeesRemoteStore)
{
    cfg.cores = 2;
    auto soc = make();
    soc->hart(0).setProgram({
        MemOp::store(0x6000, 123),
        MemOp::fence(),
    });
    soc->hart(1).setProgram({});
    soc->runToQuiescence();

    soc->hart(1).setProgram({MemOp::load(0x6000)});
    soc->runToCompletion();
    EXPECT_EQ(soc->hart(1).loadValue(0), 123u);
    // Core 0 was downgraded to Branch by the probe.
    EXPECT_NE(soc->l1(0).lineState(0x6000), ClientState::Trunk);
}

TEST_F(SocBasic, CrossCoreStoreInvalidatesRemoteCopy)
{
    cfg.cores = 2;
    auto soc = make();
    soc->hart(0).setProgram({MemOp::store(0x7000, 1), MemOp::fence()});
    soc->runToQuiescence();
    soc->hart(1).setProgram({MemOp::store(0x7000, 2), MemOp::fence()});
    soc->runToQuiescence();
    EXPECT_EQ(soc->l1(0).lineState(0x7000), ClientState::Nothing);
    EXPECT_EQ(soc->l1(1).lineState(0x7000), ClientState::Trunk);

    soc->hart(0).setProgram({MemOp::load(0x7000)});
    soc->runToCompletion();
    EXPECT_EQ(soc->hart(0).loadValue(0), 2u);
}

TEST_F(SocBasic, RemoteFlushWritesBackOtherCoresDirtyData)
{
    cfg.cores = 2;
    auto soc = make();
    // Core 0 dirties a line; core 1 flushes the same address: the L2 must
    // probe core 0's dirty copy and push it to DRAM (§5.5).
    soc->hart(0).setProgram({MemOp::store(0x8000, 99), MemOp::fence()});
    soc->runToQuiescence();
    soc->hart(1).setProgram({MemOp::flush(0x8000), MemOp::fence()});
    soc->runToQuiescence();
    EXPECT_EQ(soc->dram().peekWord(0x8000), 99u);
    EXPECT_EQ(soc->l1(0).lineState(0x8000), ClientState::Nothing);
    EXPECT_EQ(soc->watchdog().stallsDetected(), 0u);
}

TEST_F(SocBasic, FenceWaitsForAllPendingFlushes)
{
    auto soc = make();
    Program p;
    for (int i = 0; i < 16; ++i)
        p.push_back(MemOp::store(0x9000 + i * line_bytes,
                                 static_cast<std::uint64_t>(i + 1)));
    for (int i = 0; i < 16; ++i)
        p.push_back(MemOp::flush(0x9000 + i * line_bytes));
    p.push_back(MemOp::fence());
    soc->hart(0).setProgram(p);
    soc->runToCompletion();
    // The fence completed, so every line must already be in DRAM.
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(soc->dram().peekWord(0x9000 + i * line_bytes),
                  static_cast<std::uint64_t>(i + 1))
            << "line " << i;
    }
    EXPECT_EQ(soc->watchdog().stallsDetected(), 0u);
}

TEST_F(SocBasic, SingleLineFlushLatencyIsAboutHundredCycles)
{
    auto soc = make();
    // Warm the line, then measure store+flush+fence (Fig 9: ~100 cycles
    // median for one line).
    soc->hart(0).setProgram({MemOp::store(0xa000, 1), MemOp::fence()});
    soc->runToQuiescence();

    soc->hart(0).setProgram({
        MemOp::flush(0xa000),
        MemOp::fence(),
    });
    const Cycle t = soc->runToCompletion();
    EXPECT_GT(t, 40u);
    EXPECT_LT(t, 250u);
}

TEST_F(SocBasic, CapacityEvictionWritesDirtyLinesBack)
{
    auto soc = make();
    // Write 2x the L1 capacity within one set-mapping stride so evictions
    // must occur, then check a victim's data reached L2/DRAM correctly.
    const unsigned lines = cfg.l1.sets * cfg.l1.ways * 2;
    Program p;
    for (unsigned i = 0; i < lines; ++i)
        p.push_back(MemOp::store(0x100000 + static_cast<Addr>(i) *
                                 line_bytes, i + 1));
    p.push_back(MemOp::fence());
    soc->hart(0).setProgram(p);
    soc->runToQuiescence();

    // Everything is readable with correct values afterwards.
    Program check;
    for (unsigned i = 0; i < lines; i += 97)
        check.push_back(MemOp::load(0x100000 + static_cast<Addr>(i) *
                                    line_bytes));
    soc->hart(0).setProgram(check);
    soc->runToCompletion();
    unsigned idx = 0;
    for (unsigned i = 0; i < lines; i += 97, ++idx)
        EXPECT_EQ(soc->hart(0).loadValue(idx), i + 1) << "line " << i;
    // The default-on watchdog must have seen steady forward progress.
    EXPECT_EQ(soc->watchdog().stallsDetected(), 0u);
}

TEST_F(SocBasic, ProgramOrderStoreThenFlushPersistsNewValue)
{
    auto soc = make();
    // Overwrite then flush: DRAM must hold the latest value, because the
    // CBO fires only after the store (STQ program order, §5.1).
    Program p{
        MemOp::store(0xb000, 1),
        MemOp::store(0xb000, 2),
        MemOp::flush(0xb000),
        MemOp::fence(),
    };
    soc->hart(0).setProgram(p);
    soc->runToCompletion();
    EXPECT_EQ(soc->dram().peekWord(0xb000), 2u);
}

} // namespace
} // namespace skipit
