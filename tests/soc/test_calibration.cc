/**
 * @file
 * Calibration regression guard: the headline numbers of EXPERIMENTS.md
 * must not drift silently when the model changes. Bounds are deliberately
 * loose (shape, not noise), but tight enough that a broken interlock or
 * a mis-tuned latency shows up here before it shows up in the figures.
 */

#include <gtest/gtest.h>

#include "workloads/workloads.hh"

namespace skipit {
namespace {

TEST(Calibration, SingleLineFlushNearPaperHundredCycles)
{
    const Cycle c = workloads::cboLatency(SoCConfig{}, 1, 64, true);
    EXPECT_GE(c, 80u);
    EXPECT_LE(c, 140u); // paper: ~100
}

TEST(Calibration, FullCacheFlushNearPaperSevenK)
{
    const Cycle c = workloads::cboLatency(SoCConfig{}, 1, 32768, true);
    EXPECT_GE(c, 5000u);
    EXPECT_LE(c, 9000u); // paper: ~7460
}

TEST(Calibration, EightThreadSpeedupAtLeastFivefold)
{
    const Cycle one = workloads::cboLatency(SoCConfig{}, 1, 32768, true);
    const Cycle eight = workloads::cboLatency(SoCConfig{}, 8, 32768, true);
    EXPECT_GE(static_cast<double>(one) / static_cast<double>(eight), 5.0);
}

TEST(Calibration, CleanRereadAboutTwiceAsFastAsFlush)
{
    const Cycle clean =
        workloads::writeWbReadLatency(SoCConfig{}, 1, 4096, false);
    const Cycle flush =
        workloads::writeWbReadLatency(SoCConfig{}, 1, 4096, true);
    const double ratio =
        static_cast<double>(flush) / static_cast<double>(clean);
    EXPECT_GE(ratio, 1.7); // paper: ~2x
    EXPECT_LE(ratio, 3.5);
}

TEST(Calibration, SkipItWinInPaperBand)
{
    SoCConfig naive;
    naive.withSkipIt(false);
    SoCConfig skip;
    skip.withSkipIt(true);
    const Cycle n = workloads::redundantWbLatency(naive, 1, 32768, false);
    const Cycle s = workloads::redundantWbLatency(skip, 1, 32768, false);
    const double speedup =
        static_cast<double>(n) / static_cast<double>(s);
    EXPECT_GE(speedup, 1.10); // paper: 15-30%
    EXPECT_LE(speedup, 1.45);
}

TEST(Calibration, WritebacksPipelineWellBelowSerialCost)
{
    // Sustained per-line cost must stay far under the ~105-cycle round
    // trip: that is the whole point of the 8 FSHRs.
    const Cycle c = workloads::cboLatency(SoCConfig{}, 1, 32768, true);
    EXPECT_LT(static_cast<double>(c) / 512.0, 20.0);
}

} // namespace
} // namespace skipit
