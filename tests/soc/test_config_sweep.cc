/**
 * @file
 * Parameterized configuration-space sweeps: the machine must stay
 * functionally correct (and the crash-consistency contract must hold)
 * for every combination of flush-unit sizing, MSHR counts, cache
 * geometry and feature flags — not just the defaults.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/random.hh"
#include "soc/soc.hh"

namespace skipit {
namespace {

struct SweepPoint
{
    unsigned fshrs;
    unsigned flush_queue_depth;
    unsigned l1_mshrs;
    unsigned l2_mshrs;
    bool skip_it;
    bool wide_array;
    bool coalesce;

    std::string
    label() const
    {
        std::string s = "f" + std::to_string(fshrs) + "_q" +
                        std::to_string(flush_queue_depth) + "_m" +
                        std::to_string(l1_mshrs) + "_M" +
                        std::to_string(l2_mshrs);
        s += skip_it ? "_skip" : "_noskip";
        s += wide_array ? "_wide" : "_narrow";
        s += coalesce ? "_co" : "_noco";
        return s;
    }
};

SoCConfig
configFor(const SweepPoint &p)
{
    SoCConfig cfg;
    cfg.l1.fshrs = p.fshrs;
    cfg.l1.flush_queue_depth = p.flush_queue_depth;
    cfg.l1.mshrs = p.l1_mshrs;
    cfg.l2.mshrs = p.l2_mshrs;
    cfg.l1.wide_data_array = p.wide_array;
    cfg.l1.coalesce = p.coalesce;
    cfg.withSkipIt(p.skip_it);
    return cfg;
}

class ConfigSweep : public ::testing::TestWithParam<SweepPoint>
{
};

TEST_P(ConfigSweep, RandomWorkloadStaysCorrectAndPersists)
{
    SoC soc(configFor(GetParam()));
    Rng rng(2024);

    // Random single-core workload over a small line pool with a
    // crash-consistency epilogue; must complete (no deadlock) and leave
    // DRAM matching the reference.
    std::vector<Addr> pool;
    for (int i = 0; i < 10; ++i)
        pool.push_back(0x40000 + static_cast<Addr>(i) *
                                     (i % 2 ? 3 * line_bytes
                                            : 64 * line_bytes));
    std::map<Addr, std::uint64_t> ref;
    Program p;
    for (int i = 0; i < 200; ++i) {
        const Addr a = pool[rng.below(pool.size())];
        const double dice = rng.uniform();
        if (dice < 0.4) {
            const std::uint64_t v = rng.next() | 1;
            ref[a] = v;
            p.push_back(MemOp::store(a, v));
        } else if (dice < 0.6) {
            p.push_back(MemOp::load(a));
        } else if (dice < 0.8) {
            p.push_back(MemOp::clean(a));
        } else {
            p.push_back(MemOp::flush(a));
        }
    }
    for (const Addr a : pool)
        p.push_back(MemOp::flush(a));
    p.push_back(MemOp::fence());

    soc.hart(0).setProgram(p);
    soc.runToQuiescence(20'000'000);
    for (const auto &[addr, value] : ref) {
        EXPECT_EQ(soc.dram().peekWord(addr), value)
            << GetParam().label() << " @ 0x" << std::hex << addr;
    }
    EXPECT_FALSE(soc.l1(0).flushing());
}

TEST_P(ConfigSweep, DualCoreSharedLineTrafficIsDeadlockFree)
{
    SoCConfig cfg = configFor(GetParam());
    cfg.cores = 2;
    SoC soc(cfg);
    Rng rng(77);
    std::vector<Program> programs(2);
    for (unsigned c = 0; c < 2; ++c) {
        for (int i = 0; i < 120; ++i) {
            const Addr a = 0x90000 + rng.below(6) * line_bytes;
            const double dice = rng.uniform();
            if (dice < 0.4)
                programs[c].push_back(MemOp::store(a, rng.next() | 1));
            else if (dice < 0.6)
                programs[c].push_back(MemOp::load(a));
            else if (dice < 0.8)
                programs[c].push_back(MemOp::flush(a));
            else
                programs[c].push_back(MemOp::clean(a));
        }
        programs[c].push_back(MemOp::fence());
    }
    soc.setPrograms(programs);
    soc.runToQuiescence(20'000'000); // panics on deadlock
    EXPECT_TRUE(soc.l2().idle());
}

INSTANTIATE_TEST_SUITE_P(
    Space, ConfigSweep,
    ::testing::Values(
        SweepPoint{1, 1, 1, 1, true, true, true},    // minimal everything
        SweepPoint{1, 8, 4, 32, false, true, true},  // single FSHR
        SweepPoint{8, 1, 4, 32, true, false, true},  // tiny queue, narrow
        SweepPoint{8, 8, 1, 2, true, true, false},   // starved MSHRs
        SweepPoint{16, 16, 8, 64, true, true, true}, // oversized
        SweepPoint{2, 2, 2, 4, false, false, false}, // everything off/small
        SweepPoint{8, 8, 4, 32, true, true, true}),  // defaults
    [](const ::testing::TestParamInfo<SweepPoint> &info) {
        return info.param.label();
    });

} // namespace
} // namespace skipit
