/**
 * @file
 * Property-based tests: randomized programs checked against a reference
 * memory model, plus the executable form of the paper's §6.2 correctness
 * claim — whenever the skip bit of a valid clean line is set, no dirty
 * copy of that line exists anywhere below, and its data equals DRAM's.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/random.hh"
#include "soc/soc.hh"

namespace skipit {
namespace {

/** Addresses used by the fuzzers: a handful of set-colliding lines (to
 *  force evictions) plus scattered ones. */
std::vector<Addr>
fuzzPool(const L1Config &l1, Addr base)
{
    std::vector<Addr> pool;
    const Addr set_stride = static_cast<Addr>(l1.sets) * line_bytes;
    for (int i = 0; i < 12; ++i)
        pool.push_back(base + static_cast<Addr>(i) * set_stride); // 1 set
    for (int i = 0; i < 12; ++i)
        pool.push_back(base + 0x100000 +
                       static_cast<Addr>(i) * 3 * line_bytes);
    return pool;
}

/** Generate a random single-core program over the pool, remembering the
 *  reference value of every word. */
Program
randomProgram(Rng &rng, const std::vector<Addr> &pool, int ops,
              std::map<Addr, std::uint64_t> &ref,
              std::vector<std::pair<std::size_t, Addr>> &loads)
{
    Program p;
    for (int i = 0; i < ops; ++i) {
        const Addr a = pool[rng.below(pool.size())];
        const double dice = rng.uniform();
        if (dice < 0.35) {
            const std::uint64_t v = rng.next() | 1;
            ref[a] = v;
            p.push_back(MemOp::store(a, v));
        } else if (dice < 0.6) {
            loads.emplace_back(p.size(), a);
            p.push_back(MemOp::load(a));
        } else if (dice < 0.72) {
            p.push_back(MemOp::clean(a));
        } else if (dice < 0.85) {
            p.push_back(MemOp::flush(a));
        } else if (dice < 0.92) {
            ref[a] = 0; // CBO.ZERO clears the whole line
            p.push_back(MemOp::zero(a));
        } else {
            p.push_back(MemOp::fence());
        }
    }
    return p;
}

using PropParam = std::uint64_t; // rng seed

class SocProperty : public ::testing::TestWithParam<PropParam>
{
};

TEST_P(SocProperty, SingleCoreLoadsMatchReferenceModel)
{
    Rng rng(GetParam());
    SoCConfig cfg;
    cfg.cores = 1;
    SoC soc(cfg);

    std::map<Addr, std::uint64_t> ref;
    std::vector<std::pair<std::size_t, Addr>> loads;
    const auto pool = fuzzPool(cfg.l1, 0x10000);
    const Program p = randomProgram(rng, pool, 300, ref, loads);
    soc.hart(0).setProgram(p);
    soc.runToCompletion();

    // Every load must have returned the most recent prior store's value.
    // Replay the program sequentially to know what that was.
    std::map<Addr, std::uint64_t> replay;
    std::size_t load_idx = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        const MemOp &op = p[i];
        if (op.kind == MemOpKind::Store) {
            replay[op.addr] = op.data;
        } else if (op.kind == MemOpKind::CboZero) {
            replay[op.addr] = 0;
        } else if (op.kind == MemOpKind::Load) {
            ASSERT_LT(load_idx, loads.size());
            const auto expected =
                replay.count(op.addr) ? replay[op.addr] : 0;
            EXPECT_EQ(soc.hart(0).loadValue(i), expected)
                << "load at op " << i;
            ++load_idx;
        }
    }
}

TEST_P(SocProperty, FlushAllThenFencePersistsEverything)
{
    Rng rng(GetParam() * 977 + 5);
    SoCConfig cfg;
    cfg.cores = 1;
    SoC soc(cfg);

    std::map<Addr, std::uint64_t> ref;
    std::vector<std::pair<std::size_t, Addr>> loads;
    const auto pool = fuzzPool(cfg.l1, 0x20000);
    Program p = randomProgram(rng, pool, 250, ref, loads);
    // Crash-consistency epilogue: flush every touched line and fence.
    for (const Addr a : pool)
        p.push_back(MemOp::flush(a));
    p.push_back(MemOp::fence());
    soc.hart(0).setProgram(p);
    soc.runToCompletion();

    for (const auto &[addr, value] : ref) {
        EXPECT_EQ(soc.dram().peekWord(addr), value)
            << "address 0x" << std::hex << addr;
    }
}

/** The §6.2 theorem as an executable invariant. */
void
checkSkipBitSoundness(SoC &soc, const std::vector<Addr> &pool)
{
    for (unsigned c = 0; c < soc.cores(); ++c) {
        for (const Addr a : pool) {
            if (soc.l1(c).lineState(a) == ClientState::Nothing)
                continue;
            if (soc.l1(c).lineDirty(a) || !soc.l1(c).lineSkip(a))
                continue;
            // Valid skip bit set: no dirty copy may exist below (§6.2)...
            EXPECT_FALSE(soc.l2().isDirty(a))
                << "skip bit set but L2 dirty, line 0x" << std::hex << a;
            for (unsigned other = 0; other < soc.cores(); ++other) {
                if (other != c) {
                    EXPECT_FALSE(soc.l1(other).lineDirty(a))
                        << "skip bit set but core " << other
                        << " holds dirty copy of 0x" << std::hex << a;
                }
            }
            // ...and the cached bytes must equal main memory's.
            std::uint64_t cached = 0;
            ASSERT_TRUE(soc.l1(c).peekWord(a, cached));
            EXPECT_EQ(cached, soc.dram().peekWord(a))
                << "skip bit set but DRAM differs, line 0x" << std::hex
                << a;
        }
    }
}

TEST_P(SocProperty, SkipBitIsSoundAcrossRandomDualCoreWorkloads)
{
    Rng rng(GetParam() * 31 + 7);
    SoCConfig cfg;
    cfg.cores = 2;
    SoC soc(cfg);
    const auto pool = fuzzPool(cfg.l1, 0x30000);

    // Alternate random bursts between the two cores (phased, so each
    // burst runs to quiescence before the invariant is checked — the skip
    // bit is only claimed meaningful for settled state, §6.2).
    for (int round = 0; round < 12; ++round) {
        const unsigned core = round % 2;
        std::map<Addr, std::uint64_t> ref;
        std::vector<std::pair<std::size_t, Addr>> loads;
        Program p = randomProgram(rng, pool, 60, ref, loads);
        p.push_back(MemOp::fence());
        soc.hart(core).setProgram(p);
        soc.runToQuiescence();
        checkSkipBitSoundness(soc, pool);
    }
}

TEST_P(SocProperty, ConcurrentDisjointCoresStayCorrect)
{
    Rng rng(GetParam() * 131 + 3);
    SoCConfig cfg;
    cfg.cores = 2;
    SoC soc(cfg);

    // Truly concurrent execution on per-core DISJOINT pools: the final
    // persisted state of each core's region must match its reference.
    std::array<std::map<Addr, std::uint64_t>, 2> refs;
    std::vector<Program> programs;
    for (unsigned c = 0; c < 2; ++c) {
        const auto pool = fuzzPool(cfg.l1, 0x40000 + c * 0x1000000);
        std::vector<std::pair<std::size_t, Addr>> loads;
        Program p = randomProgram(rng, pool, 200, refs[c], loads);
        for (const Addr a : pool)
            p.push_back(MemOp::flush(a));
        p.push_back(MemOp::fence());
        programs.push_back(std::move(p));
    }
    soc.setPrograms(programs);
    soc.runToQuiescence();
    for (unsigned c = 0; c < 2; ++c) {
        for (const auto &[addr, value] : refs[c]) {
            EXPECT_EQ(soc.dram().peekWord(addr), value)
                << "core " << c << " address 0x" << std::hex << addr;
        }
    }
}

TEST_P(SocProperty, ConcurrentSharedPoolDeadlockFree)
{
    Rng rng(GetParam() * 17 + 11);
    SoCConfig cfg;
    cfg.cores = 2;
    SoC soc(cfg);

    // Both cores hammer the SAME pool with stores, loads, CBOs and
    // fences. Values race (unspecified), but the machine must neither
    // deadlock nor violate the skip-bit invariant afterwards.
    const auto pool = fuzzPool(cfg.l1, 0x50000);
    std::vector<Program> programs;
    for (unsigned c = 0; c < 2; ++c) {
        std::map<Addr, std::uint64_t> ref;
        std::vector<std::pair<std::size_t, Addr>> loads;
        Program p = randomProgram(rng, pool, 300, ref, loads);
        p.push_back(MemOp::fence());
        programs.push_back(std::move(p));
    }
    soc.setPrograms(programs);
    soc.runToQuiescence(2'000'000); // panics on deadlock
    checkSkipBitSoundness(soc, pool);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SocProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

} // namespace
} // namespace skipit
