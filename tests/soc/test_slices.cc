/**
 * @file
 * Address-interleaved L2 slice tests: bit-identical equivalence of the
 * crossbar topology at slices=1 with the legacy point-to-point wiring,
 * slice-indexed SoC accessors, multi-slice end-to-end runs under the
 * invariant checker, and the misroute negative control that proves the
 * checker's slice-routing invariant actually fires.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "soc/soc.hh"
#include "workloads/workloads.hh"

namespace skipit {
namespace {

/** Fig 9 operating points kept small enough for a unit suite but
 *  covering both flush kinds, both thread counts and three sizes. */
struct Fig09Point
{
    unsigned threads;
    std::size_t bytes;
    bool flush;
};

const Fig09Point fig09_points[] = {
    {1, 256, false}, {1, 1024, false}, {1, 4096, true},
    {2, 256, true},  {2, 1024, false}, {2, 4096, true},
};

TEST(SlicedL2, Slices1IsBitIdenticalToDirectWiringOnFig09)
{
    for (const Fig09Point &p : fig09_points) {
        SoCConfig routed;
        routed.cores = p.threads;
        routed.l2.slices = 1;

        SoCConfig direct = routed;
        direct.direct_l2_wiring = true;

        const Cycle routed_cycles =
            workloads::cboLatency(routed, p.threads, p.bytes, p.flush);
        const Cycle direct_cycles =
            workloads::cboLatency(direct, p.threads, p.bytes, p.flush);
        EXPECT_EQ(routed_cycles, direct_cycles)
            << p.threads << " threads, " << p.bytes << " bytes, "
            << (p.flush ? "flush" : "clean");
    }
}

TEST(SlicedL2, SliceIndexedAccessorsAndGeometry)
{
    SoCConfig cfg;
    cfg.cores = 2;
    cfg.l2.slices = 4;
    SoC soc(cfg);
    EXPECT_EQ(soc.l2Slices(), 4u);
    ASSERT_NE(soc.xbar(), nullptr);
    EXPECT_EQ(soc.xbar()->slices(), 4u);
    EXPECT_EQ(soc.xbar()->sliceBitCount(), 2u);
    // The zero-arg accessor stays usable and aliases slice 0.
    EXPECT_EQ(&soc.l2(), &soc.l2(0));
    for (unsigned s = 0; s < 4; ++s) {
        EXPECT_EQ(soc.l2(s).sliceIndex(), s);
        EXPECT_EQ(soc.l2(s).sliceCount(), 4u);
        // Each slice owns 1/4 of the sets; tags stay full-width.
        EXPECT_EQ(soc.l2(s).directory().sets(), cfg.l2.sets / 4);
        // The slice homes exactly the lines whose slice bits match.
        EXPECT_TRUE(soc.l2(s).homesLine(Addr(s) * line_bytes));
        EXPECT_FALSE(
            soc.l2(s).homesLine(Addr(s + 1) * line_bytes));
    }
}

TEST(SlicedL2, DescribePrintsTopology)
{
    SoCConfig cfg;
    EXPECT_NE(cfg.describe().find("crossbar, 1 address-interleaved slice"),
              std::string::npos);
    cfg.l2.slices = 4;
    EXPECT_NE(cfg.describe().find("crossbar, 4 address-interleaved slices"),
              std::string::npos);
    cfg.l2.slices = 1;
    cfg.direct_l2_wiring = true;
    EXPECT_NE(cfg.describe().find("direct point-to-point"),
              std::string::npos);
}

TEST(SlicedL2, MultiSliceRunIsCoherentWithCheckerFatal)
{
    // Dirty lines striping across all four slices from two cores, then
    // write everything back; the checker panics on any violation.
    for (const bool flush : {false, true}) {
        SoCConfig cfg;
        cfg.cores = 2;
        cfg.l2.slices = 4;
        const Cycle cycles =
            workloads::cboLatency(cfg, cfg.cores, 4096, flush);
        EXPECT_GT(cycles, 0u);
    }
}

TEST(SlicedL2, CrossSliceFenceFlushEpoch)
{
    // One flush epoch spanning slices: a single core dirties 16
    // consecutive lines (4 per slice) and issues CBO.FLUSH on each plus
    // one fence. The fence's flush counter must drain to zero even
    // though the RootReleases fan out to four different slices, and
    // every line must land invalidated with its bytes in DRAM.
    SoCConfig cfg;
    cfg.l2.slices = 4;
    cfg.cores = 1;
    SoC soc(cfg);
    constexpr unsigned lines = 16;
    constexpr Addr base = 0x10000;
    Program p;
    for (unsigned i = 0; i < lines; ++i)
        p.push_back(MemOp::store(base + i * line_bytes, 0xA0 + i));
    for (unsigned i = 0; i < lines; ++i)
        p.push_back(MemOp::flush(base + i * line_bytes));
    p.push_back(MemOp::fence());
    soc.setPrograms({p});
    soc.runToQuiescence();
    for (unsigned i = 0; i < lines; ++i) {
        const Addr a = base + i * line_bytes;
        EXPECT_EQ(soc.dram().peekWord(a), 0xA0 + i) << "line " << i;
        EXPECT_FALSE(soc.l2(sliceOfLine(a, 4)).isResident(a))
            << "line " << i;
    }
    EXPECT_EQ(soc.checker().checkNow(), 0u);
}

TEST(SlicedL2, MisrouteNegativeControlTripsSliceRoutingInvariant)
{
    // Deliver one A-channel Acquire to the wrong slice; the latching
    // checker must catch it and name the violated invariant.
    SoCConfig cfg;
    cfg.cores = 2;
    cfg.l2.slices = 2;
    cfg.verify.fatal = false;
    SoC soc(cfg);
    ASSERT_NE(soc.xbar(), nullptr);
    soc.xbar()->injectAMisroute();
    Program p;
    p.push_back(MemOp::store(0x4000, 1)); // homes to slice 0
    p.push_back(MemOp::store(0x4040, 2)); // homes to slice 1
    soc.setPrograms({p, p});
    soc.runToCompletion(200'000);
    ASSERT_FALSE(soc.checker().clean());
    EXPECT_EQ(soc.checker().violations().front().invariant,
              "slice-routing");
}

} // namespace
} // namespace skipit
