/**
 * @file
 * Tests of the CMO-spec extension instructions this repo adds on top of
 * the paper's CBO.CLEAN/CBO.FLUSH: CBO.INVAL (invalidate without
 * writeback — permitted data loss) and CBO.ZERO (zero a whole block).
 */

#include <gtest/gtest.h>

#include "core/asm.hh"
#include "soc/soc.hh"

namespace skipit {
namespace {

class CmoExt : public ::testing::Test
{
  protected:
    SoCConfig cfg{};
};

TEST_F(CmoExt, InvalDiscardsDirtyDataWithoutWriteback)
{
    SoC soc(cfg);
    soc.hart(0).setProgram({
        MemOp::store(0x1000, 99),
        MemOp::inval(0x1000),
        MemOp::fence(),
        MemOp::load(0x1000),
    });
    soc.runToCompletion();
    // The dirty data never reached DRAM (inval is NOT a writeback)...
    EXPECT_EQ(soc.dram().peekWord(0x1000), 0u);
    // ...and the post-inval load refetched stale memory (zero).
    EXPECT_EQ(soc.hart(0).loadValue(3), 0u);
}

TEST_F(CmoExt, InvalRemovesLineFromAllCaches)
{
    cfg.cores = 2;
    SoC soc(cfg);
    // Core 0 holds the line; core 1 invalidates it: the L2's recursive
    // probing must revoke core 0's copy too.
    soc.hart(0).setProgram({MemOp::store(0x2000, 5), MemOp::fence()});
    soc.hart(1).setProgram({});
    soc.runToQuiescence();
    soc.hart(1).setProgram({MemOp::inval(0x2000), MemOp::fence()});
    soc.runToQuiescence();
    EXPECT_EQ(soc.l1(0).lineState(0x2000), ClientState::Nothing);
    EXPECT_FALSE(soc.l2().isResident(0x2000));
    EXPECT_EQ(soc.dram().peekWord(0x2000), 0u); // data was discarded
}

TEST_F(CmoExt, InvalOfPersistedLineIsHarmless)
{
    SoC soc(cfg);
    soc.hart(0).setProgram({
        MemOp::store(0x3000, 7),
        MemOp::clean(0x3000),
        MemOp::fence(),
        MemOp::inval(0x3000),
        MemOp::fence(),
        MemOp::load(0x3000),
    });
    soc.runToCompletion();
    EXPECT_EQ(soc.dram().peekWord(0x3000), 7u);
    EXPECT_EQ(soc.hart(0).loadValue(5), 7u); // refetched from memory
}

TEST_F(CmoExt, InvalNeverSkipDropped)
{
    SoC soc(cfg);
    // Clean line with the skip bit set: a flush would be dropped, but an
    // inval must still execute (a device may have changed DRAM).
    soc.hart(0).setProgram({MemOp::load(0x4000), MemOp::fence()});
    soc.runToQuiescence();
    ASSERT_TRUE(soc.l1(0).lineSkip(0x4000));
    soc.hart(0).setProgram({MemOp::inval(0x4000), MemOp::fence()});
    soc.runToQuiescence();
    EXPECT_EQ(soc.stats().get("l1.0.skipit_dropped"), 0u);
    EXPECT_EQ(soc.l1(0).lineState(0x4000), ClientState::Nothing);
}

TEST_F(CmoExt, InvalObservesDeviceWrittenMemory)
{
    SoC soc(cfg);
    soc.hart(0).setProgram({MemOp::load(0x5000), MemOp::fence()});
    soc.runToQuiescence();
    // A non-coherent device rewrites memory behind the caches.
    LineData fresh{};
    fresh[0] = 0xEE;
    soc.dram().pokeLine(0x5000, fresh);
    // Without the inval the core would keep reading its stale copy;
    // after it, the load sees the device's data — the DMA-read scenario
    // of §2.5, from the consumer side.
    soc.hart(0).setProgram({
        MemOp::inval(0x5000),
        MemOp::fence(),
        MemOp::load(0x5000),
    });
    soc.runToCompletion();
    EXPECT_EQ(soc.hart(0).loadValue(2) & 0xFF, 0xEEu);
}

TEST_F(CmoExt, ZeroClearsWholeLineOnHit)
{
    SoC soc(cfg);
    Program p;
    for (unsigned w = 0; w < line_bytes / 8; ++w)
        p.push_back(MemOp::store(0x6000 + w * 8, 0x1111 * (w + 1)));
    p.push_back(MemOp::zero(0x6000));
    p.push_back(MemOp::fence());
    for (unsigned w = 0; w < line_bytes / 8; ++w)
        p.push_back(MemOp::load(0x6000 + w * 8));
    soc.hart(0).setProgram(p);
    soc.runToCompletion();
    const std::size_t first_load = line_bytes / 8 + 2;
    for (unsigned w = 0; w < line_bytes / 8; ++w)
        EXPECT_EQ(soc.hart(0).loadValue(first_load + w), 0u) << w;
    EXPECT_TRUE(soc.l1(0).lineDirty(0x6000)); // zeroing dirties the line
}

TEST_F(CmoExt, ZeroOnColdLineAcquiresThenZeroes)
{
    SoC soc(cfg);
    // Seed DRAM so the zero demonstrably overwrites the fetched data.
    LineData seeded{};
    seeded[0] = 0xAB;
    soc.dram().pokeLine(0x7000, seeded);
    soc.hart(0).setProgram({
        MemOp::zero(0x7000),
        MemOp::flush(0x7000),
        MemOp::fence(),
    });
    soc.runToCompletion();
    EXPECT_EQ(soc.dram().peekWord(0x7000), 0u); // zeros persisted
}

TEST_F(CmoExt, ZeroThenFlushPersistsZeros)
{
    SoC soc(cfg);
    soc.hart(0).setProgram({
        MemOp::store(0x8000, 42),
        MemOp::flush(0x8000),
        MemOp::fence(),
        MemOp::zero(0x8000),
        MemOp::flush(0x8000),
        MemOp::fence(),
    });
    soc.runToCompletion();
    EXPECT_EQ(soc.dram().peekWord(0x8000), 0u);
}

TEST_F(CmoExt, InvalCoalescesWithPendingInval)
{
    cfg.cores = 1;
    SoC soc(cfg);
    Program p;
    // Saturate the FSHRs, then issue two invals to one line.
    for (int i = 0; i < 8; ++i)
        p.push_back(MemOp::inval(0x9000 + i * line_bytes));
    p.push_back(MemOp::inval(0xA000));
    p.push_back(MemOp::inval(0xA000));
    p.push_back(MemOp::fence());
    soc.hart(0).setProgram(p);
    soc.runToCompletion();
    EXPECT_GE(soc.stats().get("l1.0.cbo_coalesced"), 1u);
}

TEST_F(CmoExt, AssemblerAndEncodings)
{
    const Program p = assembleProgram(R"(
        cbo.inval 0x100
        cbo.zero  0x140
    )");
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0].kind, MemOpKind::CboInval);
    EXPECT_EQ(p[1].kind, MemOpKind::CboZero);

    // CMO spec: imm selects the op — inval=0, clean=1, flush=2, zero=4.
    EXPECT_STREQ(riscv::decodeKind(riscv::encodeCboInval(3)), "cbo.inval");
    EXPECT_STREQ(riscv::decodeKind(riscv::encodeCboZero(3)), "cbo.zero");
    EXPECT_EQ(riscv::encodeCboZero(3),
              (4u << 20) | (3u << 15) | (0b010u << 12) | 0b0001111u);
}

TEST_F(CmoExt, InvalCrashSemanticsInWal)
{
    // A WAL that invalidates instead of flushing is broken: the fence
    // completes but nothing persisted.
    SoC soc(cfg);
    soc.hart(0).setProgram({
        MemOp::store(0xB000, 1),
        MemOp::inval(0xB000),
        MemOp::fence(),
    });
    soc.runToQuiescence();
    EXPECT_EQ(soc.dram().peekWord(0xB000), 0u);
}

} // namespace
} // namespace skipit
