/**
 * @file
 * Crash-consistency property test: the canonical NVMM write-ahead-log
 * protocol (write entry, flush, fence, publish head, flush, fence — §2.5)
 * must leave main memory in a recoverable state at EVERY cycle. We
 * simulate crashes by halting the machine at arbitrary points and
 * inspecting only the DRAM backing store, exactly what a post-crash
 * recovery procedure would see.
 */

#include <gtest/gtest.h>

#include "soc/soc.hh"

namespace skipit {
namespace {

constexpr Addr log_base = 0x100000;
constexpr Addr head_addr = 0x200000;
constexpr unsigned entries = 12;

/** Marker written into entry i (never zero, so presence is detectable). */
std::uint64_t
markerOf(unsigned i)
{
    return 0xA5A50000ull + i + 1;
}

/** The WAL writer: persist the entry before publishing it via head. */
Program
walProgram()
{
    Program p;
    for (unsigned i = 0; i < entries; ++i) {
        const Addr entry = log_base + static_cast<Addr>(i) * line_bytes;
        p.push_back(MemOp::store(entry, markerOf(i)));
        p.push_back(MemOp::flush(entry));
        p.push_back(MemOp::fence());
        p.push_back(MemOp::store(head_addr, i + 1));
        p.push_back(MemOp::flush(head_addr));
        p.push_back(MemOp::fence());
    }
    return p;
}

/** Recovery invariant: every entry below the persisted head is intact. */
void
checkRecoverable(const Dram &dram, Cycle crash_cycle)
{
    const std::uint64_t head = dram.peekWord(head_addr);
    ASSERT_LE(head, entries) << "corrupt head after crash at cycle "
                             << crash_cycle;
    for (std::uint64_t i = 0; i < head; ++i) {
        const Addr entry = log_base + static_cast<Addr>(i) * line_bytes;
        EXPECT_EQ(dram.peekWord(entry), markerOf(static_cast<unsigned>(i)))
            << "head=" << head << " but entry " << i
            << " not persisted; crash at cycle " << crash_cycle;
    }
}

TEST(CrashConsistency, WalInvariantHoldsAtEveryCrashPoint)
{
    // Find the total runtime once, then sweep crash points across it.
    Cycle total = 0;
    {
        SoC soc{SoCConfig{}};
        soc.hart(0).setProgram(walProgram());
        total = soc.runToQuiescence();
    }
    ASSERT_GT(total, 0u);

    for (Cycle crash = 1; crash <= total; crash += 23) {
        SoC soc{SoCConfig{}};
        soc.hart(0).setProgram(walProgram());
        soc.sim().run(crash); // power fails here: caches vanish
        checkRecoverable(soc.dram(), crash);
    }
}

TEST(CrashConsistency, WalCompletesFullyWhenNotCrashed)
{
    SoC soc{SoCConfig{}};
    soc.hart(0).setProgram(walProgram());
    soc.runToQuiescence();
    EXPECT_EQ(soc.dram().peekWord(head_addr), entries);
    for (unsigned i = 0; i < entries; ++i) {
        EXPECT_EQ(soc.dram().peekWord(log_base +
                                      static_cast<Addr>(i) * line_bytes),
                  markerOf(i));
    }
}

TEST(CrashConsistency, BrokenProtocolIsActuallyCatchable)
{
    // Sanity-check the checker: publishing the head WITHOUT persisting
    // the entry first must produce at least one unrecoverable crash
    // point (otherwise the test above proves nothing).
    Program broken;
    for (unsigned i = 0; i < entries; ++i) {
        const Addr entry = log_base + static_cast<Addr>(i) * line_bytes;
        broken.push_back(MemOp::store(entry, markerOf(i)));
        // BUG: no flush/fence of the entry before publishing.
        broken.push_back(MemOp::store(head_addr, i + 1));
        broken.push_back(MemOp::flush(head_addr));
        broken.push_back(MemOp::fence());
    }

    Cycle total = 0;
    {
        SoC soc{SoCConfig{}};
        soc.hart(0).setProgram(broken);
        total = soc.runToQuiescence();
    }
    bool found_violation = false;
    for (Cycle crash = 1; crash <= total && !found_violation;
         crash += 11) {
        SoC soc{SoCConfig{}};
        soc.hart(0).setProgram(broken);
        soc.sim().run(crash);
        const std::uint64_t head = soc.dram().peekWord(head_addr);
        for (std::uint64_t i = 0; i < head; ++i) {
            const Addr entry =
                log_base + static_cast<Addr>(i) * line_bytes;
            if (soc.dram().peekWord(entry) !=
                markerOf(static_cast<unsigned>(i))) {
                found_violation = true;
                break;
            }
        }
    }
    EXPECT_TRUE(found_violation)
        << "the broken protocol never lost data; checker is too weak";
}

TEST(CrashConsistency, SkipItDoesNotWeakenTheGuarantee)
{
    // Same sweep with Skip It disabled and enabled: both must satisfy
    // the invariant (the skip bit only drops *provably redundant*
    // writebacks, §6.2).
    for (const bool skip_it : {false, true}) {
        SoCConfig cfg;
        cfg.withSkipIt(skip_it);
        Cycle total = 0;
        {
            SoC soc{cfg};
            soc.hart(0).setProgram(walProgram());
            total = soc.runToQuiescence();
        }
        for (Cycle crash = 1; crash <= total; crash += 41) {
            SoC soc{cfg};
            soc.hart(0).setProgram(walProgram());
            soc.sim().run(crash);
            checkRecoverable(soc.dram(), crash);
        }
    }
}

} // namespace
} // namespace skipit
