/**
 * @file
 * Tests of the extension features beyond the paper's shipped design:
 * cross-kind CBO coalescing (§5.3's "future investigation") and the
 * skip-set-on-clean-ack strengthening.
 */

#include <gtest/gtest.h>

#include "soc/soc.hh"

namespace skipit {
namespace {

TEST(CrossKindCoalesce, CleanMergesIntoPendingFlush)
{
    SoCConfig cfg;
    cfg.cores = 1;
    cfg.l1.cross_kind_coalesce = true;
    cfg.withSkipIt(false);
    SoC soc(cfg);

    // Warm and dirty 9 lines, fence, then fire all writebacks
    // back-to-back: the 8 FSHRs fill up and the 9th flush lingers in the
    // queue. The clean that follows immediately targets the queued
    // flush's line with an unchanged snapshot and must coalesce away.
    Program warm;
    for (int i = 0; i < 8; ++i)
        warm.push_back(MemOp::store(0x9000 + i * line_bytes, i));
    warm.push_back(MemOp::store(0x20000, 42));
    warm.push_back(MemOp::fence());
    soc.hart(0).setProgram(warm);
    soc.runToQuiescence();

    Program p;
    for (int i = 0; i < 8; ++i)
        p.push_back(MemOp::flush(0x9000 + i * line_bytes));
    p.push_back(MemOp::flush(0x20000));
    p.push_back(MemOp::clean(0x20000)); // cross-kind coalesce target
    p.push_back(MemOp::fence());
    soc.hart(0).setProgram(p);
    soc.runToCompletion();

    EXPECT_GE(soc.stats().get("l1.0.cbo_coalesced"), 1u);
    EXPECT_EQ(soc.dram().peekWord(0x20000), 42u);
    // The flush (which subsumed the clean) invalidated the line.
    EXPECT_EQ(soc.l1(0).lineState(0x20000), ClientState::Nothing);
}

TEST(CrossKindCoalesce, FlushNeverMergesIntoPendingClean)
{
    SoCConfig cfg;
    cfg.cores = 1;
    cfg.l1.cross_kind_coalesce = true;
    cfg.withSkipIt(false);
    SoC soc(cfg);

    // clean then flush: the flush MUST still execute (it has to
    // invalidate), so the line ends up not resident.
    Program p{
        MemOp::store(0x30000, 7),
        MemOp::clean(0x30000),
        MemOp::flush(0x30000),
        MemOp::fence(),
    };
    soc.hart(0).setProgram(p);
    soc.runToQuiescence();
    EXPECT_EQ(soc.dram().peekWord(0x30000), 7u);
    EXPECT_EQ(soc.l1(0).lineState(0x30000), ClientState::Nothing);
}

TEST(CrossKindCoalesce, OffByDefault)
{
    const L1Config def{};
    EXPECT_FALSE(def.cross_kind_coalesce);
}

TEST(SkipSetOnCleanAck, DisabledKeepsPaperBaselineBehaviour)
{
    SoCConfig cfg;
    cfg.cores = 1;
    cfg.l1.skip_set_on_clean_ack = false;
    SoC soc(cfg);

    // Line arrives via a store (GrantData -> skip set, then store dirties
    // it). After the clean, the skip bit stays clear without the
    // strengthening, so a second clean is NOT dropped at L1.
    soc.hart(0).setProgram({
        MemOp::store(0x40000, 1),
        MemOp::clean(0x40000),
        MemOp::fence(),
    });
    soc.runToQuiescence();
    soc.hart(0).setProgram({MemOp::clean(0x40000), MemOp::fence()});
    soc.runToQuiescence();
    // Depending on grant history the skip bit may have been set by the
    // original fill; the defining check: with the flag off, completing a
    // clean never SETS the bit.
    EXPECT_GE(soc.stats().get("l2.rootrelease.clean"), 1u);
}

TEST(SkipSetOnCleanAck, EnabledDropsSecondClean)
{
    SoCConfig cfg;
    cfg.cores = 1;
    cfg.l1.skip_set_on_clean_ack = true;
    SoC soc(cfg);
    soc.hart(0).setProgram({
        MemOp::store(0x50000, 1),
        MemOp::clean(0x50000),
        MemOp::fence(),
        MemOp::clean(0x50000),
        MemOp::fence(),
    });
    soc.runToCompletion();
    EXPECT_GE(soc.stats().get("l1.0.skipit_dropped"), 1u);
}

} // namespace
} // namespace skipit
