/**
 * @file
 * Unit tests of the commercial-platform writeback models: the documented
 * semantics that give Figures 11 and 12 their shape.
 */

#include <gtest/gtest.h>

#include "platform/platform.hh"

namespace skipit {
namespace {

TEST(Platform, LatencyGrowsWithSize)
{
    for (const PlatformModel &m : platforms::all()) {
        double prev = 0;
        for (std::size_t sz = 64; sz <= 32768; sz *= 4) {
            const double lat = m.latency(sz, 1, WbInstr::Flush);
            EXPECT_GE(lat, prev) << m.name << " at " << sz;
            prev = lat;
        }
    }
}

TEST(Platform, ThreadsReduceLargeWritebackLatency)
{
    for (const PlatformModel &m : platforms::all()) {
        const double one = m.latency(32768, 1, WbInstr::Flush);
        const double eight = m.latency(32768, 8, WbInstr::Flush);
        EXPECT_LT(eight, one) << m.name;
    }
}

TEST(Platform, IntelClflushBlowsUpAt4KiBSingleThread)
{
    const PlatformModel intel = platforms::intelXeon6238T();
    // Below the overlap window the two flush flavours are identical.
    EXPECT_DOUBLE_EQ(intel.latency(1024, 1, WbInstr::FlushSerial),
                     intel.latency(1024, 1, WbInstr::Flush));
    // At 4 KiB the serialization penalty dominates (Fig 11).
    EXPECT_GT(intel.latency(4096, 1, WbInstr::FlushSerial),
              3 * intel.latency(4096, 1, WbInstr::Flush));
}

TEST(Platform, IntelClflushOnlyDegradesAbove16KiBWithEightThreads)
{
    const PlatformModel intel = platforms::intelXeon6238T();
    // Up to 16 KiB each thread's share hides in the overlap window.
    EXPECT_DOUBLE_EQ(intel.latency(16384, 8, WbInstr::FlushSerial),
                     intel.latency(16384, 8, WbInstr::Flush));
    // Above it the gap opens (Fig 12).
    EXPECT_GT(intel.latency(32768, 8, WbInstr::FlushSerial),
              intel.latency(32768, 8, WbInstr::Flush));
}

TEST(Platform, AmdClflushBehavesLikeClflushopt)
{
    const PlatformModel amd = platforms::amdEpyc7763();
    for (std::size_t sz = 64; sz <= 32768; sz *= 2) {
        const double serial = amd.latency(sz, 1, WbInstr::FlushSerial);
        const double plain = amd.latency(sz, 1, WbInstr::Flush);
        // "AMD's clflush and clflushopt perform nearly identically" (§7.3)
        EXPECT_LT(serial / plain, 1.35) << sz;
    }
}

TEST(Platform, GravitonGrowsSubLinearly)
{
    const PlatformModel arm = platforms::graviton3();
    const double at_4k = arm.latency(4096, 1, WbInstr::Flush);
    const double at_32k = arm.latency(32768, 1, WbInstr::Flush);
    // 8x the data in clearly less than 8x the time.
    EXPECT_LT(at_32k / at_4k, 6.0);
}

TEST(Platform, CleanAndFlushAreEquivalentForNonSerialInstrs)
{
    for (const PlatformModel &m : platforms::all()) {
        EXPECT_DOUBLE_EQ(m.latency(8192, 2, WbInstr::Flush),
                         m.latency(8192, 2, WbInstr::Clean))
            << m.name;
    }
}

TEST(Platform, SmallWritebackLatenciesAreComparableAcrossPlatforms)
{
    // Fig 11: "single-thread latencies are similar across architectures"
    // for one line.
    std::vector<double> lat;
    for (const PlatformModel &m : platforms::all())
        lat.push_back(m.latency(64, 1, WbInstr::Flush));
    const auto [mn, mx] = std::minmax_element(lat.begin(), lat.end());
    EXPECT_LT(*mx / *mn, 2.0);
}

TEST(Platform, AllReturnsThreeModels)
{
    const auto models = platforms::all();
    ASSERT_EQ(models.size(), 3u);
    EXPECT_NE(models[0].name.find("Intel"), std::string::npos);
    EXPECT_NE(models[1].name.find("AMD"), std::string::npos);
    EXPECT_NE(models[2].name.find("Graviton"), std::string::npos);
}

} // namespace
} // namespace skipit
