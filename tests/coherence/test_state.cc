/**
 * @file
 * Unit tests for the TileLink permission lattice.
 */

#include <gtest/gtest.h>

#include "coherence/state.hh"

namespace skipit {
namespace {

TEST(CoherenceState, ReadWritePermissions)
{
    EXPECT_FALSE(canRead(ClientState::Nothing));
    EXPECT_TRUE(canRead(ClientState::Branch));
    EXPECT_TRUE(canRead(ClientState::Trunk));
    EXPECT_FALSE(canWrite(ClientState::Nothing));
    EXPECT_FALSE(canWrite(ClientState::Branch));
    EXPECT_TRUE(canWrite(ClientState::Trunk));
}

TEST(CoherenceState, GrowForReadAndWrite)
{
    EXPECT_EQ(growFor(ClientState::Nothing, false), Grow::NtoB);
    EXPECT_EQ(growFor(ClientState::Nothing, true), Grow::NtoT);
    EXPECT_EQ(growFor(ClientState::Branch, true), Grow::BtoT);
}

TEST(CoherenceState, CapMapsToStates)
{
    EXPECT_EQ(stateForCap(Cap::toT), ClientState::Trunk);
    EXPECT_EQ(stateForCap(Cap::toB), ClientState::Branch);
    EXPECT_EQ(stateForCap(Cap::toN), ClientState::Nothing);
}

TEST(CoherenceState, CapForGrowRequestsEnoughPermission)
{
    EXPECT_EQ(capForGrow(Grow::NtoB), Cap::toB);
    EXPECT_EQ(capForGrow(Grow::NtoT), Cap::toT);
    EXPECT_EQ(capForGrow(Grow::BtoT), Cap::toT);
}

TEST(CoherenceState, CapSatisfiesGrow)
{
    EXPECT_TRUE(capSatisfiesGrow(Cap::toT, Grow::NtoB));
    EXPECT_TRUE(capSatisfiesGrow(Cap::toT, Grow::NtoT));
    EXPECT_TRUE(capSatisfiesGrow(Cap::toB, Grow::NtoB));
    EXPECT_FALSE(capSatisfiesGrow(Cap::toB, Grow::NtoT));
    EXPECT_FALSE(capSatisfiesGrow(Cap::toN, Grow::NtoB));
}

TEST(CoherenceState, ShrinkForReportsTransitions)
{
    EXPECT_EQ(shrinkFor(ClientState::Trunk, ClientState::Branch),
              Shrink::TtoB);
    EXPECT_EQ(shrinkFor(ClientState::Trunk, ClientState::Nothing),
              Shrink::TtoN);
    EXPECT_EQ(shrinkFor(ClientState::Branch, ClientState::Nothing),
              Shrink::BtoN);
    EXPECT_EQ(shrinkFor(ClientState::Trunk, ClientState::Trunk),
              Shrink::TtoT);
    EXPECT_EQ(shrinkFor(ClientState::Branch, ClientState::Branch),
              Shrink::BtoB);
    EXPECT_EQ(shrinkFor(ClientState::Nothing, ClientState::Nothing),
              Shrink::NtoN);
}

TEST(CoherenceState, ApplyCapNeverGrows)
{
    EXPECT_EQ(applyCap(ClientState::Trunk, Cap::toB), ClientState::Branch);
    EXPECT_EQ(applyCap(ClientState::Trunk, Cap::toN), ClientState::Nothing);
    EXPECT_EQ(applyCap(ClientState::Branch, Cap::toT), ClientState::Branch);
    EXPECT_EQ(applyCap(ClientState::Nothing, Cap::toB),
              ClientState::Nothing);
    EXPECT_EQ(applyCap(ClientState::Branch, Cap::toB), ClientState::Branch);
}

TEST(CoherenceState, ToStringNames)
{
    EXPECT_STREQ(toString(ClientState::Nothing), "Nothing");
    EXPECT_STREQ(toString(ClientState::Branch), "Branch");
    EXPECT_STREQ(toString(ClientState::Trunk), "Trunk");
}

} // namespace
} // namespace skipit
