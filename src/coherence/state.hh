/**
 * @file
 * TileLink-style coherence permission lattice (§2.2 of the paper).
 *
 * A client cache holds a line with one of three permission levels:
 *   Nothing — no copy (MESI Invalid)
 *   Branch  — read-only copy, possibly shared (MESI Shared)
 *   Trunk   — exclusive read/write copy (MESI Exclusive/Modified; a separate
 *             dirty flag distinguishes E from M)
 *
 * Acquire messages *grow* permissions, Probe messages *cap* them, and
 * Release / ProbeAck messages *shrink and report* the transition taken.
 */

#ifndef SKIPIT_COHERENCE_STATE_HH
#define SKIPIT_COHERENCE_STATE_HH

#include <ostream>

#include "sim/logging.hh"

namespace skipit {

/** Permission level a client holds on a cache line. */
enum class ClientState { Nothing, Branch, Trunk };

/** Acquire (channel A) grow parameter. */
enum class Grow { NtoB, NtoT, BtoT };

/** Probe / Grant (channels B, D) permission cap. */
enum class Cap { toT, toB, toN };

/** Release / ProbeAck (channel C) shrink-and-report parameter. */
enum class Shrink { TtoB, TtoN, BtoN, TtoT, BtoB, NtoN };

/** Can a client with @p s satisfy a read? */
constexpr bool
canRead(ClientState s)
{
    return s != ClientState::Nothing;
}

/** Can a client with @p s satisfy a write? */
constexpr bool
canWrite(ClientState s)
{
    return s == ClientState::Trunk;
}

/** The grow parameter needed to move from @p from to a state that can
 *  serve a write (if @p want_write) or a read. */
inline Grow
growFor(ClientState from, bool want_write)
{
    switch (from) {
      case ClientState::Nothing:
        return want_write ? Grow::NtoT : Grow::NtoB;
      case ClientState::Branch:
        SKIPIT_ASSERT(want_write, "no grow needed: Branch can already read");
        return Grow::BtoT;
      default:
        SKIPIT_PANIC("growFor from Trunk: nothing to grow");
    }
}

/** Permission level implied by a grant/probe cap. */
constexpr ClientState
stateForCap(Cap c)
{
    switch (c) {
      case Cap::toT:
        return ClientState::Trunk;
      case Cap::toB:
        return ClientState::Branch;
      default:
        return ClientState::Nothing;
    }
}

/** The cap a grow parameter is asking for. */
constexpr Cap
capForGrow(Grow g)
{
    return g == Grow::NtoB ? Cap::toB : Cap::toT;
}

/** True if the permissions granted by @p cap suffice for @p g. */
constexpr bool
capSatisfiesGrow(Cap cap, Grow g)
{
    return cap == Cap::toT || (cap == Cap::toB && g == Grow::NtoB);
}

/** Shrink/report parameter for moving from @p from down to @p to. */
inline Shrink
shrinkFor(ClientState from, ClientState to)
{
    using S = ClientState;
    if (from == S::Trunk && to == S::Branch)
        return Shrink::TtoB;
    if (from == S::Trunk && to == S::Nothing)
        return Shrink::TtoN;
    if (from == S::Branch && to == S::Nothing)
        return Shrink::BtoN;
    if (from == S::Trunk && to == S::Trunk)
        return Shrink::TtoT;
    if (from == S::Branch && to == S::Branch)
        return Shrink::BtoB;
    if (from == S::Nothing && to == S::Nothing)
        return Shrink::NtoN;
    SKIPIT_PANIC("illegal shrink transition");
}

/** New client state after being capped to @p cap (cannot grow). */
constexpr ClientState
applyCap(ClientState s, Cap cap)
{
    const ClientState capped = stateForCap(cap);
    return static_cast<int>(capped) < static_cast<int>(s) ? capped : s;
}

inline const char *
toString(ClientState s)
{
    switch (s) {
      case ClientState::Nothing:
        return "Nothing";
      case ClientState::Branch:
        return "Branch";
      default:
        return "Trunk";
    }
}

inline std::ostream &
operator<<(std::ostream &os, ClientState s)
{
    return os << toString(s);
}

} // namespace skipit

#endif // SKIPIT_COHERENCE_STATE_HH
