#include "replace.hh"

#include "sim/logging.hh"

namespace skipit {

ReplacePolicy::ReplacePolicy(ReplaceKind kind, unsigned sets,
                             unsigned ways, std::uint64_t seed)
    : kind_(kind), sets_(sets), ways_(ways),
      stamp_(static_cast<std::size_t>(sets) * ways, 0),
      rng_state_(seed | 1) // xorshift must not start at 0
{
    SKIPIT_ASSERT(sets > 0 && ways > 0 && ways <= 64,
                  "replacement geometry must be 1..64 ways");
}

std::uint64_t &
ReplacePolicy::stamp(unsigned set, unsigned way)
{
    SKIPIT_ASSERT(set < sets_ && way < ways_, "replacement index OOB");
    return stamp_[static_cast<std::size_t>(set) * ways_ + way];
}

void
ReplacePolicy::touch(unsigned set, unsigned way)
{
    if (kind_ == ReplaceKind::Lru)
        stamp(set, way) = ++counter_;
}

void
ReplacePolicy::fill(unsigned set, unsigned way)
{
    if (kind_ == ReplaceKind::Fifo)
        stamp(set, way) = ++counter_;
    // Lru deliberately ignores fills: the stamp is only advanced by
    // touch (the grant), matching the extracted Directory behavior the
    // default configuration is bit-identical against.
}

int
ReplacePolicy::pickVictim(unsigned set, std::uint64_t valid,
                          std::uint64_t unlocked)
{
    // Prefer an invalid, unlocked way (lowest index).
    for (unsigned w = 0; w < ways_; ++w) {
        const std::uint64_t bit = std::uint64_t{1} << w;
        if (!(valid & bit) && (unlocked & bit))
            return static_cast<int>(w);
    }

    if (kind_ == ReplaceKind::Random) {
        unsigned candidates[64];
        unsigned n = 0;
        for (unsigned w = 0; w < ways_; ++w) {
            if (unlocked & (std::uint64_t{1} << w))
                candidates[n++] = w;
        }
        if (n == 0)
            return -1;
        // xorshift64; the modulo bias over tiny way counts is
        // irrelevant for an eviction heuristic.
        rng_state_ ^= rng_state_ << 13;
        rng_state_ ^= rng_state_ >> 7;
        rng_state_ ^= rng_state_ << 17;
        return static_cast<int>(candidates[rng_state_ % n]);
    }

    // Lru / Fifo: minimum stamp among unlocked ways (ties -> lowest
    // index, matching the extracted Directory scan order).
    int victim = -1;
    std::uint64_t best = ~std::uint64_t{0};
    for (unsigned w = 0; w < ways_; ++w) {
        if (!(unlocked & (std::uint64_t{1} << w)))
            continue;
        if (stamp(set, w) < best) {
            best = stamp(set, w);
            victim = static_cast<int>(w);
        }
    }
    return victim;
}

} // namespace skipit
