#include "directory.hh"

namespace skipit {

Directory::Directory(unsigned sets, unsigned ways,
                     const L2IndexPolicy &index, ReplaceKind replace,
                     std::uint64_t replace_seed)
    : sets_(sets), ways_(ways), index_(index),
      entries_(static_cast<std::size_t>(sets) * ways),
      locked_(entries_.size(), false),
      replace_(replace, sets, ways, replace_seed)
{
    SKIPIT_ASSERT(sets > 0 && ways > 0, "directory geometry must be > 0");
    SKIPIT_ASSERT(index.sets_per_slice == sets,
                  "index policy sets_per_slice (", index.sets_per_slice,
                  ") disagrees with directory sets (", sets, ")");
}

int
Directory::findWay(Addr line_addr) const
{
    const unsigned set = setOf(line_addr);
    const Addr tag = tagOf(line_addr);
    for (unsigned w = 0; w < ways_; ++w) {
        const DirEntry &e = entries_[index(set, w)];
        if (e.valid && e.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

DirEntry &
Directory::entry(unsigned set, unsigned way)
{
    return entries_[index(set, way)];
}

const DirEntry &
Directory::entry(unsigned set, unsigned way) const
{
    return entries_[index(set, way)];
}

void
Directory::touch(unsigned set, unsigned way)
{
    replace_.touch(set, way);
}

void
Directory::recordFill(unsigned set, unsigned way)
{
    replace_.fill(set, way);
}

int
Directory::pickVictim(unsigned set) const
{
    std::uint64_t valid = 0;
    std::uint64_t unlocked = 0;
    for (unsigned w = 0; w < ways_; ++w) {
        if (entries_[index(set, w)].valid)
            valid |= std::uint64_t{1} << w;
        if (!locked_[index(set, w)])
            unlocked |= std::uint64_t{1} << w;
    }
    return replace_.pickVictim(set, valid, unlocked);
}

void
Directory::lockWay(unsigned set, unsigned way)
{
    SKIPIT_ASSERT(!locked_[index(set, way)], "double lock of L2 way");
    locked_[index(set, way)] = true;
}

void
Directory::unlockWay(unsigned set, unsigned way)
{
    SKIPIT_ASSERT(locked_[index(set, way)], "unlock of unlocked L2 way");
    locked_[index(set, way)] = false;
}

bool
Directory::isLocked(unsigned set, unsigned way) const
{
    return locked_[index(set, way)];
}

} // namespace skipit
