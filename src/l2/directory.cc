#include "directory.hh"

namespace skipit {

Directory::Directory(unsigned sets, unsigned ways, unsigned index_shift)
    : sets_(sets), ways_(ways), index_shift_(index_shift),
      entries_(static_cast<std::size_t>(sets) * ways),
      lru_stamp_(entries_.size(), 0), locked_(entries_.size(), false)
{
    SKIPIT_ASSERT(sets > 0 && ways > 0, "directory geometry must be > 0");
}

int
Directory::findWay(Addr line_addr) const
{
    const unsigned set = setOf(line_addr);
    const Addr tag = tagOf(line_addr);
    for (unsigned w = 0; w < ways_; ++w) {
        const DirEntry &e = entries_[index(set, w)];
        if (e.valid && e.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

DirEntry &
Directory::entry(unsigned set, unsigned way)
{
    return entries_[index(set, way)];
}

const DirEntry &
Directory::entry(unsigned set, unsigned way) const
{
    return entries_[index(set, way)];
}

void
Directory::touch(unsigned set, unsigned way)
{
    lru_stamp_[index(set, way)] = ++stamp_;
}

int
Directory::pickVictim(unsigned set) const
{
    // Prefer an invalid, unlocked way.
    for (unsigned w = 0; w < ways_; ++w) {
        if (!entries_[index(set, w)].valid && !locked_[index(set, w)])
            return static_cast<int>(w);
    }
    // Otherwise the least recently used unlocked way.
    int victim = -1;
    std::uint64_t best = ~std::uint64_t{0};
    for (unsigned w = 0; w < ways_; ++w) {
        if (locked_[index(set, w)])
            continue;
        if (lru_stamp_[index(set, w)] < best) {
            best = lru_stamp_[index(set, w)];
            victim = static_cast<int>(w);
        }
    }
    return victim;
}

void
Directory::lockWay(unsigned set, unsigned way)
{
    SKIPIT_ASSERT(!locked_[index(set, way)], "double lock of L2 way");
    locked_[index(set, way)] = true;
}

void
Directory::unlockWay(unsigned set, unsigned way)
{
    SKIPIT_ASSERT(locked_[index(set, way)], "unlock of unlocked L2 way");
    locked_[index(set, way)] = false;
}

bool
Directory::isLocked(unsigned set, unsigned way) const
{
    return locked_[index(set, way)];
}

} // namespace skipit
