/**
 * @file
 * The inclusive cache's full-map directory (§3.4).
 *
 * Each resident line's metadata records its tag, dirty bit, and the exact
 * set of L1 clients holding it: a branch (read-only) bitmask plus at most
 * one trunk (read/write) owner. Inclusivity invariant: every line any L1
 * holds is resident here.
 */

#ifndef SKIPIT_L2_DIRECTORY_HH
#define SKIPIT_L2_DIRECTORY_HH

#include <cstdint>
#include <vector>

#include "index.hh"
#include "replace.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace skipit {

/** Metadata for one L2 way. */
struct DirEntry
{
    bool valid = false;
    Addr tag = 0;
    bool dirty = false;
    /** Does the BankedStore hold this line's bytes? Always true under
     *  the inclusive state policy; the exclusive policy tracks holders
     *  tag-only for clean fills (dirty implies data_resident). */
    bool data_resident = true;
    /** Bitmask of read-only holders; 64 bits covers the maximum hart
     *  count (SoCConfig::cores <= 64). */
    std::uint64_t branches = 0;
    AgentId trunk = invalid_agent;       //!< exclusive owner, if any

    bool
    heldByAnyone() const
    {
        return branches != 0 || trunk != invalid_agent;
    }

    bool
    heldBy(AgentId id) const
    {
        return trunk == id ||
               (branches & (std::uint64_t{1} << id)) != 0;
    }

    /** Remove @p id from all holder records. */
    void
    dropHolder(AgentId id)
    {
        if (trunk == id)
            trunk = invalid_agent;
        branches &= ~(std::uint64_t{1} << id);
    }

    /** Downgrade @p id from trunk to branch, if it was the trunk. */
    void
    downgradeHolder(AgentId id)
    {
        if (trunk == id) {
            trunk = invalid_agent;
            branches |= std::uint64_t{1} << id;
        }
    }
};

/**
 * Set-associative directory with pluggable indexing (src/l2/index.hh),
 * pluggable replacement (src/l2/replace.hh), and way locking (a locked
 * way belongs to an active MSHR transaction and must not be chosen as
 * a victim).
 */
class Directory
{
  public:
    /**
     * @param index the shared indexing policy; its sets_per_slice must
     *        equal @p sets (the slice passes its own geometry).
     * @param replace victim-selection heuristic.
     * @param replace_seed seeded-random replacement stream; the slice
     *        stirs its index in so sibling slices draw independently.
     */
    Directory(unsigned sets, unsigned ways, const L2IndexPolicy &index,
              ReplaceKind replace = ReplaceKind::Lru,
              std::uint64_t replace_seed = 1);

    /** Single-slice modulo-indexed directory (unit tests). */
    Directory(unsigned sets, unsigned ways)
        : Directory(sets, ways, L2IndexPolicy::modulo(1, sets))
    {
    }

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }
    const L2IndexPolicy &indexPolicy() const { return index_; }
    ReplaceKind replaceKind() const { return replace_.kind(); }

    unsigned
    setOf(Addr line_addr) const
    {
        return index_.setOf(line_addr);
    }

    Addr
    tagOf(Addr line_addr) const
    {
        return line_addr >> line_shift;
    }

    /** @return way index of @p line_addr or -1 if not resident. */
    int findWay(Addr line_addr) const;

    DirEntry &entry(unsigned set, unsigned way);
    const DirEntry &entry(unsigned set, unsigned way) const;

    /** Rebuild a line address from an entry's tag. */
    Addr
    addrOf(unsigned set, unsigned way) const
    {
        return entry(set, way).tag << line_shift;
    }

    /** The line in @p way was used; the replacement policy learns. */
    void touch(unsigned set, unsigned way);

    /** A line was installed into @p way (FIFO replacement stamps). */
    void recordFill(unsigned set, unsigned way);

    /**
     * Choose a victim way in @p set: an invalid unlocked way if one
     * exists, otherwise the replacement policy's pick among the
     * unlocked ways.
     * @return way index, or -1 if every way is locked
     */
    int pickVictim(unsigned set) const;

    void lockWay(unsigned set, unsigned way);
    void unlockWay(unsigned set, unsigned way);
    bool isLocked(unsigned set, unsigned way) const;

  private:
    unsigned sets_;
    unsigned ways_;
    L2IndexPolicy index_;
    std::vector<DirEntry> entries_;
    std::vector<bool> locked_;
    /** mutable: pickVictim is logically a query, but seeded-random
     *  replacement advances its stream on each draw. */
    mutable ReplacePolicy replace_;

    std::size_t
    index(unsigned set, unsigned way) const
    {
        SKIPIT_ASSERT(set < sets_ && way < ways_, "directory index OOB");
        return static_cast<std::size_t>(set) * ways_ + way;
    }
};

} // namespace skipit

#endif // SKIPIT_L2_DIRECTORY_HH
