/**
 * @file
 * The inclusive cache's full-map directory (§3.4).
 *
 * Each resident line's metadata records its tag, dirty bit, and the exact
 * set of L1 clients holding it: a branch (read-only) bitmask plus at most
 * one trunk (read/write) owner. Inclusivity invariant: every line any L1
 * holds is resident here.
 */

#ifndef SKIPIT_L2_DIRECTORY_HH
#define SKIPIT_L2_DIRECTORY_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace skipit {

/** Metadata for one L2 way. */
struct DirEntry
{
    bool valid = false;
    Addr tag = 0;
    bool dirty = false;
    /** Bitmask of read-only holders; 64 bits covers the maximum hart
     *  count (SoCConfig::cores <= 64). */
    std::uint64_t branches = 0;
    AgentId trunk = invalid_agent;       //!< exclusive owner, if any

    bool
    heldByAnyone() const
    {
        return branches != 0 || trunk != invalid_agent;
    }

    bool
    heldBy(AgentId id) const
    {
        return trunk == id ||
               (branches & (std::uint64_t{1} << id)) != 0;
    }

    /** Remove @p id from all holder records. */
    void
    dropHolder(AgentId id)
    {
        if (trunk == id)
            trunk = invalid_agent;
        branches &= ~(std::uint64_t{1} << id);
    }

    /** Downgrade @p id from trunk to branch, if it was the trunk. */
    void
    downgradeHolder(AgentId id)
    {
        if (trunk == id) {
            trunk = invalid_agent;
            branches |= std::uint64_t{1} << id;
        }
    }
};

/**
 * Set-associative directory with per-set LRU replacement and way locking
 * (a locked way belongs to an active MSHR transaction and must not be
 * chosen as a victim).
 */
class Directory
{
  public:
    /**
     * @param index_shift extra address bits skipped between the line
     *        offset and the set index. An address-interleaved L2 slice
     *        passes its slice-bit count here so that the lines it homes
     *        (which share their slice bits) spread across all its sets
     *        instead of aliasing into every slices-th one.
     */
    Directory(unsigned sets, unsigned ways, unsigned index_shift = 0);

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }

    unsigned
    setOf(Addr line_addr) const
    {
        return static_cast<unsigned>(
            (line_addr >> (line_shift + index_shift_)) % sets_);
    }

    Addr
    tagOf(Addr line_addr) const
    {
        return line_addr >> line_shift;
    }

    /** @return way index of @p line_addr or -1 if not resident. */
    int findWay(Addr line_addr) const;

    DirEntry &entry(unsigned set, unsigned way);
    const DirEntry &entry(unsigned set, unsigned way) const;

    /** Rebuild a line address from an entry's tag. */
    Addr
    addrOf(unsigned set, unsigned way) const
    {
        return entry(set, way).tag << line_shift;
    }

    /** Mark @p way most-recently used in @p set. */
    void touch(unsigned set, unsigned way);

    /**
     * Choose a victim way in @p set: an invalid way if one exists,
     * otherwise the LRU unlocked way.
     * @return way index, or -1 if every way is locked
     */
    int pickVictim(unsigned set) const;

    void lockWay(unsigned set, unsigned way);
    void unlockWay(unsigned set, unsigned way);
    bool isLocked(unsigned set, unsigned way) const;

  private:
    unsigned sets_;
    unsigned ways_;
    unsigned index_shift_;
    std::vector<DirEntry> entries_;
    std::vector<std::uint64_t> lru_stamp_;
    std::vector<bool> locked_;
    std::uint64_t stamp_ = 0;

    std::size_t
    index(unsigned set, unsigned way) const
    {
        SKIPIT_ASSERT(set < sets_ && way < ways_, "directory index OOB");
        return static_cast<std::size_t>(set) * ways_ + way;
    }
};

} // namespace skipit

#endif // SKIPIT_L2_DIRECTORY_HH
