#include "cache.hh"

#include "sim/trace.hh"

namespace skipit {

namespace {

/** Untracked DRAM tags (fire-and-forget victim writebacks) set this bit. */
constexpr std::uint64_t untracked_bit = std::uint64_t{1} << 63;

/** Tracked tags carry the issuing slice above the MSHR index, so the
 *  slices sharing one DRAM controller can each claim only their own
 *  completions. */
constexpr unsigned tag_slice_shift = 32;

const char *
mshrStateName(int state)
{
    switch (state) {
      case 0:
        return "idle";
      case 1:
        return "dir-lookup";
      case 2:
        return "evict-probe";
      case 3:
        return "evict-writeback";
      case 4:
        return "fetch";
      case 5:
        return "probe-holders";
      case 6:
        return "mem-writeback";
      case 7:
        return "respond";
      case 8:
        return "wait-grant-ack";
    }
    return "?";
}

} // namespace

L2Cache::L2Cache(std::string name, Simulator &sim, const L2Config &cfg,
                 Dram &dram, Stats &stats, unsigned slice)
    : Ticked(std::move(name)), sim_(sim), cfg_(cfg), dram_(dram),
      stats_(stats), slice_(slice), slice_count_(std::max(1u, cfg.slices)),
      index_(cfg.indexPolicy()), policy_(makeStatePolicy(cfg.policy)),
      dir_(cfg.sets / std::max(1u, cfg.slices), cfg.ways, index_,
           cfg.replace,
           // Stir the slice index in so sibling slices' random
           // replacement streams are independent.
           cfg.replace_seed * 0x9e3779b97f4a7c15ULL + slice + 1),
      store_(cfg.sets / std::max(1u, cfg.slices), cfg.ways),
      mshrs_(cfg.mshrs), list_buffer_(cfg.list_buffer_cap)
{
    SKIPIT_ASSERT(slice_count_ <= cfg.sets &&
                      cfg.sets % slice_count_ == 0,
                  "L2 slice count must divide the set count");
    SKIPIT_ASSERT(slice_ < slice_count_, "L2 slice index out of range");
}

void
L2Cache::connectClient(AgentId id, TLLink &link)
{
    owned_ports_.push_back(std::make_unique<TLDirectPort>(link));
    connectPort(id, *owned_ports_.back());
}

void
L2Cache::connectPort(AgentId id, TLClientPort &port)
{
    if (static_cast<std::size_t>(id) >= ports_.size())
        ports_.resize(id + 1, nullptr);
    SKIPIT_ASSERT(ports_[id] == nullptr, "client ", id, " already connected");
    ports_[id] = &port;
}

void
L2Cache::tick()
{
    drainDramResponses();
    acceptChannelC();
    acceptChannelE();
    retryListBuffer();
    acceptChannelA();
    for (unsigned i = 0; i < mshrs_.size(); ++i)
        tickMshr(i);
}

Cycle
L2Cache::nextWake() const
{
    const Cycle now = sim_.now();

    // Buffered RootReleases are retried every cycle (conservative: the
    // retry may be blocked on a free MSHR, but spinning is always safe).
    if (!list_buffer_.empty())
        return now;

    Cycle wake = dram_.respWakeAt(); // drainDramResponses
    for (const Mshr &m : mshrs_) {
        if (!m.valid)
            continue;
        if (m.state == Mshr::State::WaitGrantAck)
            continue; // woken by the channel E arrival below
        if ((m.state == Mshr::State::EvictProbe ||
             m.state == Mshr::State::ProbeHolders) &&
            m.pending_acks > 0) {
            continue; // woken by the ProbeAck arrival on channel C
        }
        if (m.awaiting_dram)
            continue; // woken by the DRAM response above
        // Every remaining state acts (or re-arms wait_until) once
        // wait_until passes; !dram_.canAccept() stalls just spin.
        wake = std::min(wake, std::max(m.wait_until, now));
    }
    for (const TLClientPort *p : ports_) {
        if (p != nullptr)
            wake = std::min(wake, p->inboundWakeAt(now));
    }
    return wake;
}

bool
L2Cache::idle() const
{
    for (const Mshr &m : mshrs_) {
        if (m.valid)
            return false;
    }
    return list_buffer_.empty();
}

bool
L2Cache::isResident(Addr line_addr) const
{
    return dir_.findWay(lineAlign(line_addr)) >= 0;
}

bool
L2Cache::isDirty(Addr line_addr) const
{
    const Addr line = lineAlign(line_addr);
    const int way = dir_.findWay(line);
    if (way < 0)
        return false;
    return dir_.entry(dir_.setOf(line), static_cast<unsigned>(way)).dirty;
}

std::optional<Addr>
L2Cache::firstForeignLine(bool scan_directory) const
{
    if (slice_count_ <= 1)
        return std::nullopt;
    for (const Mshr &m : mshrs_) {
        if (!m.valid)
            continue;
        if (!homesLine(m.line))
            return m.line;
        if (m.has_victim && !homesLine(m.victim_line))
            return m.victim_line;
    }
    for (const CMsg &msg : list_buffer_) {
        if (!homesLine(msg.addr))
            return msg.addr;
    }
    if (scan_directory) {
        for (unsigned set = 0; set < dir_.sets(); ++set) {
            for (unsigned way = 0; way < dir_.ways(); ++way) {
                if (!dir_.entry(set, way).valid)
                    continue;
                const Addr line = dir_.addrOf(set, way);
                if (!homesLine(line))
                    return line;
            }
        }
    }
    return std::nullopt;
}

bool
L2Cache::lineBusy(Addr line_addr) const
{
    const Addr line = lineAlign(line_addr);
    if (mshrForLine(line) >= 0)
        return true;
    for (const CMsg &m : list_buffer_) {
        if (m.addr == line)
            return true;
    }
    return false;
}

std::uint64_t
L2Cache::dramTagFor(unsigned mshr_idx, bool tracked) const
{
    const std::uint64_t slice_field = static_cast<std::uint64_t>(slice_)
                                      << tag_slice_shift;
    if (tracked)
        return slice_field | mshr_idx;
    return untracked_bit | slice_field | untracked_tag_;
}

bool
L2Cache::dramTagMine(std::uint64_t tag) const
{
    return ((tag >> tag_slice_shift) & ~(untracked_bit >> tag_slice_shift))
           == slice_;
}

void
L2Cache::drainDramResponses()
{
    while (dram_.respReady()) {
        if (dram_.peekResp().tag & untracked_bit) {
            // Fire-and-forget victim writeback: whichever slice looks
            // first discards it (the tick order makes this
            // deterministic).
            dram_.popResp();
            continue;
        }
        if (!dramTagMine(dram_.peekResp().tag)) {
            // Head-of-line completion belongs to a sibling slice; it
            // claims it in its own tick this same executed cycle.
            break;
        }
        const MemResp resp = dram_.popResp();
        const std::uint64_t idx =
            resp.tag & ((std::uint64_t{1} << tag_slice_shift) - 1);
        SKIPIT_ASSERT(idx < mshrs_.size(), "bad DRAM tag");
        Mshr &m = mshrs_[idx];
        SKIPIT_ASSERT(m.valid && m.awaiting_dram,
                      "DRAM response for idle MSHR");
        m.awaiting_dram = false;
        if (!resp.write) {
            // Fill from memory: the state policy decides whether the
            // bytes land in the store (inclusive) or ride the MSHR
            // stash to the Grant (exclusive).
            SKIPIT_ASSERT(m.state == Mshr::State::Fetch, "fill outside Fetch");
            DirEntry &e = dir_.entry(m.set, static_cast<unsigned>(m.way));
            m.grant_from_stash = !policy_->applyFill(
                e, store_, m.set, static_cast<unsigned>(m.way),
                dir_.tagOf(m.line), resp.data);
            if (m.grant_from_stash)
                m.fill_data = resp.data;
            dir_.recordFill(m.set, static_cast<unsigned>(m.way));
            m.state = Mshr::State::Respond;
            m.wait_until = sim_.now() + cfg_.data_latency;
        } else {
            SKIPIT_ASSERT(m.state == Mshr::State::MemWriteback,
                          "write ack outside MemWriteback");
            DirEntry &e = dir_.entry(m.set, static_cast<unsigned>(m.way));
            e.dirty = false;
            m.state = Mshr::State::Respond;
            m.wait_until = sim_.now();
        }
    }
}

void
L2Cache::applyReport(DirEntry &e, AgentId src, Shrink param)
{
    switch (param) {
      case Shrink::TtoN:
      case Shrink::BtoN:
        e.dropHolder(src);
        break;
      case Shrink::TtoB:
        e.downgradeHolder(src);
        break;
      case Shrink::TtoT:
      case Shrink::BtoB:
      case Shrink::NtoN:
        break;
    }
}

void
L2Cache::handleRelease(const CMsg &msg)
{
    const int way = dir_.findWay(msg.addr);
    SKIPIT_ASSERT(way >= 0, "voluntary Release for non-resident line ",
                  std::hex, msg.addr,
                  " violates directory holder-inclusivity");
    const unsigned set = dir_.setOf(msg.addr);
    DirEntry &e = dir_.entry(set, static_cast<unsigned>(way));
    applyReport(e, msg.source, msg.param);
    if (msg.op == COp::ReleaseData) {
        policy_->applyWriteback(e, store_, set, static_cast<unsigned>(way),
                                msg.data);
    }
    stats_["l2.releases"]++;
    DMsg ack;
    ack.op = DOp::ReleaseAck;
    ack.addr = msg.addr;
    ack.dest = msg.source;
    ack.txn = msg.txn;
    ports_[msg.source]->sendD(ack, 1, cfg_.data_latency);
}

void
L2Cache::applyRootReleaseArrival(const CMsg &msg)
{
    const int way = dir_.findWay(msg.addr);
    if (way < 0) {
        SKIPIT_ASSERT(!msg.hasData(),
                      "RootReleaseData for non-resident line");
        return;
    }
    const unsigned set = dir_.setOf(msg.addr);
    DirEntry &e = dir_.entry(set, static_cast<unsigned>(way));
    applyReport(e, msg.source, msg.param);
    if (msg.hasData()) {
        policy_->applyWriteback(e, store_, set, static_cast<unsigned>(way),
                                msg.data);
    }
}

void
L2Cache::handleProbeAck(const CMsg &msg)
{
    const int idx = [&] {
        for (unsigned i = 0; i < mshrs_.size(); ++i) {
            const Mshr &m = mshrs_[i];
            if (!m.valid || m.pending_acks == 0)
                continue;
            if (m.state == Mshr::State::ProbeHolders && m.line == msg.addr)
                return static_cast<int>(i);
            if (m.state == Mshr::State::EvictProbe &&
                m.victim_line == msg.addr) {
                return static_cast<int>(i);
            }
        }
        return -1;
    }();
    SKIPIT_ASSERT(idx >= 0, "ProbeAck with no waiting MSHR, line ", std::hex,
                  msg.addr);
    Mshr &m = mshrs_[static_cast<unsigned>(idx)];

    const bool for_victim = m.state == Mshr::State::EvictProbe;
    const unsigned set = for_victim ? dir_.setOf(m.victim_line) : m.set;
    const unsigned way = static_cast<unsigned>(
        for_victim ? m.victim_way : m.way);
    DirEntry &e = dir_.entry(set, way);
    applyReport(e, msg.source, msg.param);
    if (msg.op == COp::ProbeAckData)
        policy_->applyWriteback(e, store_, set, way, msg.data);
    SKIPIT_ASSERT(m.pending_acks > 0, "unexpected ProbeAck");
    --m.pending_acks;
}

void
L2Cache::acceptChannelC()
{
    for (TLClientPort *port : ports_) {
        if (!port)
            continue;
        while (port->cReady()) {
            const CMsg msg = port->cPop();
            switch (msg.op) {
              case COp::ProbeAck:
              case COp::ProbeAckData:
                handleProbeAck(msg);
                break;
              case COp::Release:
              case COp::ReleaseData:
                handleRelease(msg);
                break;
              case COp::RootRelease:
              case COp::RootReleaseData:
                // RootRelease is encoded as a ProbeAck (§5.1): like any
                // probe ack, its permission report and dirty payload take
                // effect on arrival — even if the transaction itself must
                // wait for an MSHR. A concurrent Acquire on the line then
                // grants the freshest data instead of a stale copy.
                applyRootReleaseArrival(msg);
                if (!tryAllocRootRelease(msg)) {
                    const bool buffered = list_buffer_.tryPush(msg);
                    SKIPIT_ASSERT(buffered, "L2 ListBuffer overflow; "
                                  "increase list_buffer_cap");
                    stats_["l2.listbuffer.buffered"]++;
                }
                break;
            }
        }
    }
}

void
L2Cache::acceptChannelE()
{
    for (TLClientPort *port : ports_) {
        if (!port)
            continue;
        while (port->eReady()) {
            const EMsg msg = port->ePop();
            const int idx = mshrForLine(msg.addr);
            SKIPIT_ASSERT(idx >= 0, "GrantAck with no MSHR");
            Mshr &m = mshrs_[static_cast<unsigned>(idx)];
            SKIPIT_ASSERT(m.state == Mshr::State::WaitGrantAck,
                          "GrantAck outside WaitGrantAck");
            if (m.way_locked)
                dir_.unlockWay(m.set, static_cast<unsigned>(m.way));
            if (sim_.probes().active()) {
                sim_.probes().end(sim_.now(), m.txn, "l2.mshr",
                                  name() + ".mshr" + std::to_string(idx),
                                  "GrantAck");
            }
            m.valid = false;
            m.state = Mshr::State::Idle;
        }
    }
}

void
L2Cache::retryListBuffer()
{
    while (!list_buffer_.empty()) {
        if (!tryAllocRootRelease(list_buffer_.front()))
            break;
        list_buffer_.pop();
    }
}

void
L2Cache::acceptChannelA()
{
    for (TLClientPort *port : ports_) {
        if (!port)
            continue;
        // Head-of-line per client: an Acquire that conflicts with an
        // in-flight transaction back-pressures the channel.
        while (port->aReady()) {
            if (!tryAllocAcquire(port->aFront()))
                break;
            port->aPop();
        }
    }
}

int
L2Cache::findFreeMshr() const
{
    for (unsigned i = 0; i < mshrs_.size(); ++i) {
        if (!mshrs_[i].valid)
            return static_cast<int>(i);
    }
    return -1;
}

int
L2Cache::mshrForLine(Addr line) const
{
    for (unsigned i = 0; i < mshrs_.size(); ++i) {
        const Mshr &m = mshrs_[i];
        if (!m.valid)
            continue;
        if (m.line == line)
            return static_cast<int>(i);
        // A transaction evicting @p line as its victim also owns it: a
        // concurrent transaction on the victim would race the probes and
        // the fire-and-forget writeback.
        if (m.has_victim && m.victim_line == line)
            return static_cast<int>(i);
    }
    return -1;
}

bool
L2Cache::tryAllocRootRelease(const CMsg &msg)
{
    if (mshrForLine(msg.addr) >= 0)
        return false;
    const int idx = findFreeMshr();
    if (idx < 0)
        return false;

    Mshr &m = mshrs_[static_cast<unsigned>(idx)];
    m = Mshr{};
    m.valid = true;
    m.kind = Mshr::Kind::RootRelease;
    m.state = Mshr::State::DirLookup;
    m.line = msg.addr;
    m.set = dir_.setOf(msg.addr);
    m.requester = msg.source;
    m.creq = msg;
    m.txn = msg.txn;
    m.wait_until = sim_.now() + cfg_.tag_latency;
    if (sim_.probes().active()) {
        sim_.probes().begin(
            sim_.now(), m.txn, "l2.mshr",
            name() + ".mshr" + std::to_string(idx),
            trace::detail::concat(
                "rootrelease.",
                msg.cbo == CboKind::Flush   ? "flush"
                : msg.cbo == CboKind::Clean ? "clean"
                                            : "inval",
                " 0x", std::hex, msg.addr, " from core", std::dec,
                msg.source));
    }
    stats_[msg.cbo == CboKind::Flush   ? "l2.rootrelease.flush"
           : msg.cbo == CboKind::Clean ? "l2.rootrelease.clean"
                                       : "l2.rootrelease.inval"]++;
    SKIPIT_TRACE_LOG(sim_.now(), "l2", name(), " rootrelease ",
                     msg.cbo == CboKind::Flush ? "flush" : "clean",
                     " 0x", std::hex, msg.addr, " from ", std::dec,
                     msg.source);
    return true;
}

bool
L2Cache::tryAllocAcquire(const AMsg &msg)
{
    if (mshrForLine(msg.addr) >= 0)
        return false;
    const int idx = findFreeMshr();
    if (idx < 0)
        return false;

    Mshr &m = mshrs_[static_cast<unsigned>(idx)];
    m = Mshr{};
    m.valid = true;
    m.kind = Mshr::Kind::Acquire;
    m.state = Mshr::State::DirLookup;
    m.line = msg.addr;
    m.set = dir_.setOf(msg.addr);
    m.requester = msg.source;
    m.areq = msg;
    m.txn = msg.txn;
    m.wait_until = sim_.now() + cfg_.tag_latency;
    stats_["l2.acquires"]++;
    if (sim_.probes().active()) {
        sim_.probes().begin(
            sim_.now(), m.txn, "l2.mshr",
            name() + ".mshr" + std::to_string(idx),
            trace::detail::concat("acquire 0x", std::hex, msg.addr,
                                  " from core", std::dec, msg.source));
    }
    return true;
}

std::vector<AgentId>
L2Cache::holdersOf(const DirEntry &e, AgentId except) const
{
    std::vector<AgentId> out;
    for (AgentId id = 0; id < static_cast<AgentId>(ports_.size()); ++id) {
        if (id == except)
            continue;
        if (e.heldBy(id))
            out.push_back(id);
    }
    return out;
}

void
L2Cache::startProbes(Mshr &m, Addr line, Cap cap,
                     const std::vector<AgentId> &targets)
{
    SKIPIT_ASSERT(!targets.empty(), "startProbes with no targets");
    m.pending_acks = static_cast<unsigned>(targets.size());
    m.probe_cap = cap;
    for (AgentId id : targets) {
        BMsg probe;
        probe.addr = line;
        probe.param = cap;
        probe.txn = m.txn;
        ports_[id]->sendB(probe);
        stats_["l2.probes"]++;
    }
}

void
L2Cache::tickMshr(unsigned idx)
{
    Mshr &m = mshrs_[idx];
    if (!m.valid || sim_.now() < m.wait_until)
        return;

    switch (m.state) {
      case Mshr::State::Idle:
        SKIPIT_PANIC("valid MSHR in Idle state");

      case Mshr::State::DirLookup: {
        const int way = dir_.findWay(m.line);
        if (way >= 0 &&
            dir_.isLocked(m.set, static_cast<unsigned>(way))) {
            // Another transaction owns this way (it chose our line as its
            // eviction victim just before we allocated); wait it out.
            m.wait_until = sim_.now() + 1;
            return;
        }
        if (m.kind == Mshr::Kind::RootRelease) {
            m.line_was_resident = way >= 0;
            if (way < 0) {
                // Not resident: either it never was, or it was evicted
                // after this request's payload was merged at arrival (in
                // which case the eviction carried the data to DRAM).
                // Nothing left to do but acknowledge.
                m.state = Mshr::State::Respond;
                m.wait_until = sim_.now();
                return;
            }
            m.way = way;
            dir_.lockWay(m.set, static_cast<unsigned>(way));
            m.way_locked = true;
            // The requester's report and any dirty payload were already
            // applied when the message arrived (applyRootReleaseArrival).
            DirEntry &e = dir_.entry(m.set, static_cast<unsigned>(way));
            std::vector<AgentId> targets;
            if (m.creq.cbo == CboKind::Flush ||
                m.creq.cbo == CboKind::Inval) {
                // Revoke every copy still recorded — including the
                // requester's, which can legitimately re-hold the line
                // (clean, via a load that slipped between the CBO's
                // enqueue and its FSHR execution) after reporting NtoN.
                targets = holdersOf(e, invalid_agent);
                m.probe_cap = Cap::toN;
            } else if (e.trunk != invalid_agent && e.trunk != m.requester) {
                // Clean: only a foreign writable copy must be downgraded.
                targets.push_back(e.trunk);
                m.probe_cap = Cap::toB;
            }
            if (!targets.empty()) {
                startProbes(m, m.line, m.probe_cap, targets);
                m.state = Mshr::State::ProbeHolders;
            } else {
                m.state = Mshr::State::MemWriteback;
            }
            m.wait_until = sim_.now();
            if (sim_.probes().active())
                emitMshrState(idx);
            return;
        }

        // Acquire path.
        if (way >= 0) {
            m.way = way;
            dir_.lockWay(m.set, static_cast<unsigned>(way));
            m.way_locked = true;
            DirEntry &e = dir_.entry(m.set, static_cast<unsigned>(way));
            std::vector<AgentId> targets;
            Cap cap = Cap::toN;
            if (capForGrow(m.areq.param) == Cap::toT) {
                targets = holdersOf(e, m.requester);
                cap = Cap::toN;
            } else if (e.trunk != invalid_agent &&
                       e.trunk != m.requester) {
                targets.push_back(e.trunk);
                cap = Cap::toB;
            }
            if (!targets.empty()) {
                startProbes(m, m.line, cap, targets);
                m.state = Mshr::State::ProbeHolders;
            } else if (policy_->needsFetch(e)) {
                // Tag-only hit (exclusive policy): holders are settled
                // but the bytes live in DRAM; fetch before granting.
                m.state = Mshr::State::Fetch;
                m.wait_until = sim_.now();
            } else {
                m.state = Mshr::State::Respond;
                m.wait_until = sim_.now() + cfg_.data_latency;
            }
            if (sim_.probes().active())
                emitMshrState(idx);
            return;
        }

        // Miss: find a victim way to install into. Besides locked ways,
        // refuse to victimise a line that already has an MSHR allocated
        // on it but has not yet locked its way (the allocation-to-lookup
        // window): two transactions probing one line would corrupt
        // ProbeAck routing. The conflicting transaction completes and
        // frees the line, so retrying resolves.
        const int victim = dir_.pickVictim(m.set);
        bool victim_conflicts = false;
        if (victim >= 0) {
            const DirEntry &ce =
                dir_.entry(m.set, static_cast<unsigned>(victim));
            if (ce.valid) {
                const Addr cand =
                    dir_.addrOf(m.set, static_cast<unsigned>(victim));
                victim_conflicts = mshrForLine(cand) >= 0;
            }
        }
        if (victim < 0 || victim_conflicts) {
            m.wait_until = sim_.now() + 1;
            return;
        }
        m.way = victim;
        dir_.lockWay(m.set, static_cast<unsigned>(victim));
        m.way_locked = true;
        DirEntry &v = dir_.entry(m.set, static_cast<unsigned>(victim));
        if (v.valid) {
            m.has_victim = true;
            m.victim_way = victim;
            m.victim_line = dir_.addrOf(m.set, static_cast<unsigned>(victim));
            const std::vector<AgentId> targets =
                holdersOf(v, invalid_agent);
            if (!targets.empty()) {
                // Back-invalidation of every L1 copy: the directory is
                // holder-inclusive under every state policy, so an
                // evicted entry must leave no tracked L1 copies behind.
                startProbes(m, m.victim_line, Cap::toN, targets);
                m.state = Mshr::State::EvictProbe;
            } else {
                m.state = Mshr::State::EvictWriteback;
            }
        } else {
            m.state = Mshr::State::Fetch;
        }
        if (sim_.probes().active())
            emitMshrState(idx);
        return;
      }

      case Mshr::State::EvictProbe:
        if (m.pending_acks == 0)
            m.state = Mshr::State::EvictWriteback;
        return;

      case Mshr::State::EvictWriteback: {
        DirEntry &v = dir_.entry(m.set, static_cast<unsigned>(m.victim_way));
        if (v.dirty) {
            // dirty implies data_resident under every state policy, so
            // the store read below is always backed by real bytes.
            if (!dram_.canAccept())
                return;
            MemReq req;
            req.write = true;
            req.addr = m.victim_line;
            req.data = store_.read(m.set,
                                   static_cast<unsigned>(m.victim_way));
            req.tag = dramTagFor(idx, false);
            req.txn = m.txn;
            ++untracked_tag_;
            dram_.submit(req);
            stats_["l2.victim_writebacks"]++;
        }
        v = DirEntry{};
        m.state = Mshr::State::Fetch;
        return;
      }

      case Mshr::State::Fetch: {
        if (m.awaiting_dram)
            return; // fill happens in drainDramResponses()
        if (!dram_.canAccept())
            return;
        MemReq req;
        req.write = false;
        req.addr = m.line;
        req.tag = dramTagFor(idx, true);
        req.txn = m.txn;
        dram_.submit(req);
        m.awaiting_dram = true;
        stats_["l2.fills"]++;
        if (sim_.probes().active()) {
            sim_.probes().instant(sim_.now(), m.txn, "l2.mshr.state",
                                  name() + ".mshr" + std::to_string(idx),
                                  "fetch issued to DRAM");
        }
        return;
      }

      case Mshr::State::ProbeHolders:
        if (m.pending_acks != 0)
            return;
        if (m.kind == Mshr::Kind::RootRelease) {
            m.state = Mshr::State::MemWriteback;
        } else if (policy_->needsFetch(
                       dir_.entry(m.set, static_cast<unsigned>(m.way)))) {
            // The probes settled permissions but delivered no data
            // (clean holders, tag-only entry): fetch from DRAM, which
            // is current for a clean line.
            m.state = Mshr::State::Fetch;
        } else {
            m.state = Mshr::State::Respond;
            m.wait_until = sim_.now() + cfg_.data_latency;
        }
        if (sim_.probes().active())
            emitMshrState(idx);
        return;

      case Mshr::State::MemWriteback: {
        if (m.awaiting_dram)
            return;
        DirEntry &e = dir_.entry(m.set, static_cast<unsigned>(m.way));
        if (m.kind == Mshr::Kind::RootRelease &&
            m.creq.cbo == CboKind::Inval) {
            // CBO.INVAL discards: no DRAM write, dirty data is dropped
            // (that is its contract — the spec permits the data loss).
            e.dirty = false;
            stats_["l2.rootrelease.inval_discarded"]++;
            m.state = Mshr::State::Respond;
            m.wait_until = sim_.now();
            if (sim_.probes().active()) {
                sim_.probes().instant(
                    sim_.now(), m.txn, "l2.mshr.state",
                    name() + ".mshr" + std::to_string(idx),
                    "inval discarded dirty data");
            }
            return;
        }
        // A clean line skips the DRAM write when llc_skip says memory
        // is already current (§5.5) — and unconditionally when the
        // entry is tag-only (exclusive policy): there are no bytes
        // here to write, DRAM has the only copy.
        const bool must_write =
            e.dirty || (!cfg_.llc_skip && e.data_resident);
        if (!must_write) {
            stats_["l2.rootrelease.llc_skipped"]++;
            m.state = Mshr::State::Respond;
            m.wait_until = sim_.now();
            if (sim_.probes().active()) {
                sim_.probes().instant(
                    sim_.now(), m.txn, "l2.llcskip",
                    name() + ".mshr" + std::to_string(idx),
                    "clean in LLC: DRAM write skipped", m.line,
                    lineFingerprint(
                        e.data_resident
                            ? store_.read(m.set,
                                          static_cast<unsigned>(m.way))
                            : dram_.peekLine(m.line)));
            }
            return;
        }
        if (!dram_.canAccept())
            return;
        MemReq req;
        req.write = true;
        req.addr = m.line;
        req.data = store_.read(m.set, static_cast<unsigned>(m.way));
        req.tag = dramTagFor(idx, true);
        req.txn = m.txn;
        dram_.submit(req);
        m.awaiting_dram = true;
        stats_["l2.rootrelease.mem_writebacks"]++;
        if (sim_.probes().active()) {
            sim_.probes().instant(sim_.now(), m.txn, "l2.mshr.state",
                                  name() + ".mshr" + std::to_string(idx),
                                  "writeback issued to DRAM");
        }
        return;
      }

      case Mshr::State::Respond: {
        if (m.kind == Mshr::Kind::RootRelease) {
            if (m.line_was_resident && (m.creq.cbo == CboKind::Flush ||
                                        m.creq.cbo == CboKind::Inval)) {
                DirEntry &e = dir_.entry(m.set,
                                         static_cast<unsigned>(m.way));
                SKIPIT_ASSERT(!e.heldByAnyone(),
                              "flush completing with live L1 holders");
                e = DirEntry{};
            }
            if (m.way_locked)
                dir_.unlockWay(m.set, static_cast<unsigned>(m.way));
            DMsg ack;
            ack.op = DOp::RootReleaseAck;
            ack.addr = m.line;
            ack.dest = m.requester;
            ack.txn = m.txn;
            ports_[m.requester]->sendD(ack, 1,
                                       cfg_.rootrelease_ack_latency);
            if (sim_.probes().active()) {
                sim_.probes().end(sim_.now(), m.txn, "l2.mshr",
                                  name() + ".mshr" + std::to_string(idx),
                                  "RootReleaseAck sent");
            }
            m.valid = false;
            m.state = Mshr::State::Idle;
            return;
        }

        // Acquire grant.
        DirEntry &e = dir_.entry(m.set, static_cast<unsigned>(m.way));
        Cap cap = capForGrow(m.areq.param);
        if (cap == Cap::toB && !e.heldByAnyone()) {
            // Sole reader: grant exclusive (MESI E) like the SiFive L2.
            cap = Cap::toT;
        }
        if (cap == Cap::toT) {
            SKIPIT_ASSERT(holdersOf(e, m.requester).empty(),
                          "exclusive grant with other holders: line ",
                          std::hex, m.line, " req ", std::dec, m.requester,
                          " grow ", static_cast<int>(m.areq.param),
                          " trunk ", e.trunk, " branches ", std::hex,
                          e.branches);
            e.branches = 0;
            e.trunk = m.requester;
        } else {
            e.branches |= std::uint64_t{1} << m.requester;
        }
        dir_.touch(m.set, static_cast<unsigned>(m.way));

        DMsg grant;
        // A stash grant is a clean fill by construction; only
        // store-resident dirty bytes ever ride GrantDataDirty.
        grant.op = (!m.grant_from_stash && e.dirty &&
                    cfg_.grant_data_dirty)
                       ? DOp::GrantDataDirty
                       : DOp::GrantData;
        grant.addr = m.line;
        grant.cap = cap;
        grant.data = m.grant_from_stash
                         ? m.fill_data
                         : store_.read(m.set, static_cast<unsigned>(m.way));
        grant.dest = m.requester;
        grant.txn = m.txn;
        ports_[m.requester]->sendD(grant, TLLink::beatsFor(grant));
        stats_[grant.op == DOp::GrantDataDirty ? "l2.grants.dirty"
                                               : "l2.grants.clean"]++;
        SKIPIT_TRACE_LOG(sim_.now(), "l2", name(), " grant",
                         grant.op == DOp::GrantDataDirty ? "-dirty 0x"
                                                         : " 0x",
                         std::hex, m.line, " to ", std::dec, m.requester);
        m.state = Mshr::State::WaitGrantAck;
        return;
      }

      case Mshr::State::WaitGrantAck:
        return; // completion handled in acceptChannelE()
    }
}

void
L2Cache::emitMshrState(unsigned idx) const
{
    const Mshr &m = mshrs_[idx];
    sim_.probes().instant(sim_.now(), m.txn, "l2.mshr.state",
                          name() + ".mshr" + std::to_string(idx),
                          mshrStateName(static_cast<int>(m.state)));
}

// ---------------------------------------------------------------------
// Watchdog interface.
// ---------------------------------------------------------------------

void
L2Cache::snapshotResources(
    std::vector<probe::ResourceSnapshot> &out) const
{
    for (unsigned i = 0; i < mshrs_.size(); ++i) {
        const Mshr &m = mshrs_[i];
        if (!m.valid)
            continue;
        probe::ResourceSnapshot snap;
        snap.name = name() + ".mshr" + std::to_string(i);
        snap.fingerprint = probe::fingerprint(
            slice_, static_cast<std::uint64_t>(m.state), m.line, m.txn,
            m.pending_acks, m.awaiting_dram);
        snap.txn = m.txn;
        snap.describe =
            std::string("state=") +
            mshrStateName(static_cast<int>(m.state)) +
            (m.awaiting_dram ? " awaiting-dram" : "");
        out.push_back(std::move(snap));
    }
    std::size_t pos = 0;
    for (const CMsg &msg : list_buffer_) {
        probe::ResourceSnapshot snap;
        snap.name = name() + ".listbuffer.txn" + std::to_string(msg.txn);
        snap.fingerprint = probe::fingerprint(slice_, msg.addr, msg.txn,
                                              pos);
        snap.txn = msg.txn;
        snap.describe = "buffered RootRelease at position " +
                        std::to_string(pos);
        out.push_back(std::move(snap));
        ++pos;
    }
}

} // namespace skipit
