/**
 * @file
 * The L2 replacement policy: victim selection within a set, factored
 * out of the Directory so the eviction heuristic is a swappable knob
 * (FlexiCAS's replace.hpp direction).
 *
 * Contract with the Directory (the sole client):
 *  - touch(set, way) on every use the policy should learn from — the
 *    Directory forwards its own touch() calls (today: Acquire grants).
 *  - fill(set, way) when a line is installed into a way.
 *  - pickVictim(set, valid, unlocked) returns a way to evict: an
 *    invalid unlocked way if one exists (lowest index — no policy has a
 *    reason to prefer evicting live data over filling a hole),
 *    otherwise a policy-chosen unlocked way; -1 when every way is
 *    locked by an active transaction.
 *
 * Kinds:
 *  - Lru: least-recently-touched. Extracted verbatim from the old
 *    Directory (a global monotonic stamp, fills inherit the victim's
 *    stamp) so the default configuration is bit-identical to the
 *    pre-policy tree.
 *  - Fifo: least-recently-filled; touches are ignored.
 *  - Random: a seeded xorshift draw among the unlocked valid ways.
 *    Deterministic: the stream is a pure function of the seed and the
 *    (deterministic) sequence of pickVictim calls, so fixed-seed runs
 *    replay bit-identically — asserted by the replay-determinism test.
 */

#ifndef SKIPIT_L2_REPLACE_HH
#define SKIPIT_L2_REPLACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace skipit {

enum class ReplaceKind
{
    Lru,
    Fifo,
    Random,
};

inline const char *
toString(ReplaceKind k)
{
    switch (k) {
      case ReplaceKind::Fifo:
        return "fifo";
      case ReplaceKind::Random:
        return "random";
      case ReplaceKind::Lru:
        break;
    }
    return "lru";
}

/** @return false if @p token names no replacement kind. */
inline bool
replaceKindFromString(const std::string &token, ReplaceKind &out)
{
    if (token == "lru") {
        out = ReplaceKind::Lru;
        return true;
    }
    if (token == "fifo") {
        out = ReplaceKind::Fifo;
        return true;
    }
    if (token == "random") {
        out = ReplaceKind::Random;
        return true;
    }
    return false;
}

/** See file comment. */
class ReplacePolicy
{
  public:
    ReplacePolicy(ReplaceKind kind, unsigned sets, unsigned ways,
                  std::uint64_t seed = 1);

    ReplaceKind kind() const { return kind_; }

    /** The line in @p way was used (Acquire grant). */
    void touch(unsigned set, unsigned way);

    /** A line was installed into @p way. */
    void fill(unsigned set, unsigned way);

    /**
     * Choose a victim way in @p set. @p valid and @p unlocked are
     * per-way bitmasks (bit w = way w); only unlocked ways may be
     * chosen. @return way index, or -1 if every way is locked.
     * Random draws advance the seeded stream.
     */
    int pickVictim(unsigned set, std::uint64_t valid,
                   std::uint64_t unlocked);

  private:
    std::uint64_t &stamp(unsigned set, unsigned way);

    ReplaceKind kind_;
    unsigned sets_;
    unsigned ways_;
    /** LRU: last-touch stamp. FIFO: fill stamp. Unused for Random. */
    std::vector<std::uint64_t> stamp_;
    std::uint64_t counter_ = 0;
    std::uint64_t rng_state_;
};

} // namespace skipit

#endif // SKIPIT_L2_REPLACE_HH
