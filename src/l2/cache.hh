/**
 * @file
 * The shared last-level cache, modelled on the SiFive inclusive cache
 * (§3.4) with the paper's RootRelease support added (§5.5) and the
 * Skip-It GrantDataDirty response (§6) — refactored into a
 * policy-agnostic MSHR/transaction core composed with three swappable
 * policy layers:
 *
 *  - state/inclusivity (src/l2/policy/): inclusive (the paper's L2,
 *    the default) or exclusive (clean fills bypass the BankedStore);
 *  - indexing (src/l2/index.hh): modulo or hashed slice+set mapping,
 *    shared with the TLXbar so routing and residency cannot disagree;
 *  - replacement (src/l2/replace.hh): lru / fifo / seeded random.
 *
 * Structure follows the original: SinkC dispatches incoming C-channel
 * traffic, a ListBuffer holds RootReleases awaiting an MSHR, MSHRs run the
 * transactions, the BankedStore holds line data, the Directory holds
 * metadata with full-map holder tracking, SourceC writes back to memory and
 * SourceD issues responses.
 */

#ifndef SKIPIT_L2_CACHE_HH
#define SKIPIT_L2_CACHE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "banked_store.hh"
#include "directory.hh"
#include "dram/dram.hh"
#include "index.hh"
#include "policy/state_policy.hh"
#include "replace.hh"
#include "sim/queues.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "tilelink/link.hh"
#include "tilelink/xbar.hh"

namespace skipit {

/** Last-level cache parameters. */
struct L2Config
{
    unsigned sets = 1024;       //!< 1024 x 8 x 64 B = 512 KiB (§7.1)
    unsigned ways = 8;
    unsigned mshrs = 32;
    unsigned list_buffer_cap = 128;
    Cycle tag_latency = 8;      //!< directory access
    Cycle data_latency = 8;     //!< BankedStore access
    /** Pipeline latency of the RootReleaseAck response path (SourceD
     *  scheduling, cross-clock queues); purely a latency, the MSHR has
     *  already been freed. Calibrated so a single CBO.X round trip is
     *  ~100 cycles as the paper measures (Fig 9). */
    Cycle rootrelease_ack_latency = 60;
    /** LLC trivial skip (§5.5): a clean line's RootRelease skips DRAM.
     *  Always true in the paper's L2; exposed for the ablation bench. */
    bool llc_skip = true;
    /** Respond GrantDataDirty when the granted line is dirty in L2 (§6).
     *  Off = plain GrantData always, i.e. a pre-Skip-It L2. */
    bool grant_data_dirty = true;
    /** Address-interleaved slice count (power of two). Each slice owns
     *  sets/slices sets of the total capacity and every line the
     *  indexing policy homes to it. 1 = the paper's single monolithic
     *  L2. */
    unsigned slices = 1;

    /// @name Policy layers (defaults reproduce the paper's L2 exactly)
    /// @{
    StateKind policy = StateKind::Inclusive;
    IndexKind index = IndexKind::Modulo;
    ReplaceKind replace = ReplaceKind::Lru;
    /** Hashed-index key (index == Hashed only). */
    std::uint64_t index_seed = 0x736b697034686173ULL;
    /** Seeded-random replacement stream (replace == Random only). */
    std::uint64_t replace_seed = 1;
    /// @}

    /** The indexing-policy value shared by the crossbar and every
     *  slice — the single source of truth for line homing. */
    L2IndexPolicy
    indexPolicy() const
    {
        L2IndexPolicy p;
        p.kind = index;
        p.slices = std::max(1u, slices);
        p.sets_per_slice = sets / p.slices;
        p.seed = index_seed;
        return p;
    }
};

/**
 * One slice of the LLC (the whole LLC when L2Config::slices is 1).
 * Acts as TileLink manager on each client port and as client to the
 * (shared) DRAM controller, claiming only its own completions by
 * slice-encoded tag.
 */
class L2Cache : public Ticked, public probe::Inspectable
{
  public:
    /** @param slice this instance's slice index in [0, cfg.slices) */
    L2Cache(std::string name, Simulator &sim, const L2Config &cfg,
            Dram &dram, Stats &stats, unsigned slice = 0);

    /** Attach client @p id's link point-to-point (single-slice wiring
     *  and unit tests); call once per L1 before simulating. */
    void connectClient(AgentId id, TLLink &link);

    /** Attach client @p id through an externally owned routed port
     *  (crossbar wiring); call once per client before simulating. */
    void connectPort(AgentId id, TLClientPort &port);

    void tick() override;
    Cycle nextWake() const override;

    /** True when no transaction is in flight (quiesced). */
    bool idle() const;

    /// @name Slice geometry and policies
    /// @{
    unsigned sliceIndex() const { return slice_; }
    unsigned sliceCount() const { return slice_count_; }
    const L2IndexPolicy &indexPolicy() const { return index_; }
    const StatePolicy &statePolicy() const { return *policy_; }
    /** Does this slice's address range contain @p line_addr? */
    bool
    homesLine(Addr line_addr) const
    {
        return index_.sliceOf(lineAlign(line_addr)) == slice_;
    }
    /// @}

    /// @name Introspection for tests
    /// @{
    const Directory &directory() const { return dir_; }
    const BankedStore &store() const { return store_; }
    /** Line state snapshot: resident? dirty? */
    bool isResident(Addr line_addr) const;
    bool isDirty(Addr line_addr) const;
    /** Any transaction in flight on @p line_addr's line (as requested line,
     *  eviction victim, or buffered RootRelease)? Checker value invariants
     *  only fire on lines with no transaction in flight. */
    bool lineBusy(Addr line_addr) const;
    /// @}

    /**
     * Checker audit: the first in-flight line (MSHR request, eviction
     * victim, or buffered RootRelease) that does not home to this
     * slice; with @p scan_directory also any resident foreign line.
     * Any hit means the interconnect misrouted a request.
     */
    std::optional<Addr> firstForeignLine(bool scan_directory) const;

    /** Watchdog interface: fingerprint every valid MSHR and buffered
     *  RootRelease (see sim/watchdog.hh). */
    void snapshotResources(
        std::vector<probe::ResourceSnapshot> &out) const override;

  private:
    /** One L2 transaction in flight. */
    struct Mshr
    {
        enum class Kind { Acquire, RootRelease };
        enum class State
        {
            Idle,
            DirLookup,      //!< directory access underway
            EvictProbe,     //!< awaiting victim back-invalidation acks
            EvictWriteback, //!< push dirty victim to DRAM (fire & forget)
            Fetch,          //!< awaiting DRAM read
            ProbeHolders,   //!< awaiting probe acks for the requested line
            MemWriteback,   //!< RootRelease: awaiting DRAM write ack (§5.5)
            Respond,        //!< issue Grant* / RootReleaseAck
            WaitGrantAck,   //!< Acquire: awaiting channel E completion
        };

        bool valid = false;
        Kind kind = Kind::Acquire;
        State state = State::Idle;
        Addr line = 0;
        AgentId requester = invalid_agent;
        AMsg areq{};
        CMsg creq{};

        int way = -1;              //!< way of the requested line, if any
        unsigned set = 0;
        bool way_locked = false;
        bool line_was_resident = false;

        // Victim handling (Acquire misses in a full set).
        bool has_victim = false;
        Addr victim_line = 0;
        int victim_way = -1;
        bool victim_dirty = false;

        // Store-bypassing fill (exclusive state policy): the fill's
        // bytes are stashed here and granted directly, never entering
        // the BankedStore.
        bool grant_from_stash = false;
        LineData fill_data{};

        unsigned pending_acks = 0;
        std::vector<AgentId> to_probe;
        Cap probe_cap = Cap::toN;
        Cycle wait_until = 0;
        bool awaiting_dram = false;
        TxnId txn = 0; //!< observability transaction id of the request
    };

    Simulator &sim_;
    L2Config cfg_;
    Dram &dram_;
    Stats &stats_;

    unsigned slice_;
    unsigned slice_count_;
    L2IndexPolicy index_;
    std::unique_ptr<const StatePolicy> policy_;
    std::vector<TLClientPort *> ports_;
    /** Ports created by connectClient() (point-to-point wiring). */
    std::vector<std::unique_ptr<TLDirectPort>> owned_ports_;
    Directory dir_;
    BankedStore store_;
    std::vector<Mshr> mshrs_;
    BoundedFifo<CMsg> list_buffer_;
    std::uint64_t untracked_tag_ = 0;

    void drainDramResponses();
    void acceptChannelC();
    void acceptChannelE();
    void acceptChannelA();
    void retryListBuffer();
    void tickMshr(unsigned idx);

    /**
     * Voluntary Release / ReleaseData from an L1 writeback unit. Applied
     * in C-channel arrival order, before any later ProbeAck, so that dirty
     * data released during a concurrent RootRelease is never lost.
     */
    void handleRelease(const CMsg &msg);

    /** Route a ProbeAck[Data] to the MSHR expecting it. */
    void handleProbeAck(const CMsg &msg);

    /**
     * Apply a RootRelease's permission report and dirty payload to the
     * directory at arrival — RootRelease is encoded as ProbeAck (§5.1)
     * and behaves like one even while waiting for an MSHR.
     */
    void applyRootReleaseArrival(const CMsg &msg);

    /** Try to start a RootRelease transaction. @return false if no MSHR. */
    bool tryAllocRootRelease(const CMsg &msg);

    /** Try to start an Acquire transaction. @return false if blocked. */
    bool tryAllocAcquire(const AMsg &msg);

    int findFreeMshr() const;
    int mshrForLine(Addr line) const;
    /** Apply a C-channel shrink report to the directory entry. */
    static void applyReport(DirEntry &e, AgentId src, Shrink param);

    void startProbes(Mshr &m, Addr line, Cap cap,
                     const std::vector<AgentId> &targets);
    std::vector<AgentId> holdersOf(const DirEntry &e, AgentId except) const;

    std::uint64_t dramTagFor(unsigned mshr_idx, bool tracked) const;
    /** Was this tracked DRAM tag issued by this slice? */
    bool dramTagMine(std::uint64_t tag) const;

    /** Emit a probe instant recording MSHR @p idx's new state. */
    void emitMshrState(unsigned idx) const;
};

/** The pre-refactor name. The default policy is still the paper's
 *  inclusive L2; existing tests and tools refer to it this way. */
using InclusiveCache = L2Cache;

} // namespace skipit

#endif // SKIPIT_L2_CACHE_HH
