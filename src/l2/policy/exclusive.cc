#include "exclusive.hh"

#include "sim/logging.hh"

namespace skipit {

bool
ExclusivePolicy::applyFill(DirEntry &e, BankedStore &store, unsigned set,
                           unsigned way, Addr tag,
                           const LineData &data) const
{
    // The bypass at the heart of the policy: the clean fill's bytes go
    // straight to the requester (from the MSHR stash), never into the
    // store. A tag-only hit keeps its holder records; a miss starts a
    // fresh entry.
    (void)store;
    (void)set;
    (void)way;
    (void)data;
    if (!e.valid) {
        e = DirEntry{};
        e.valid = true;
        e.tag = tag;
    } else {
        SKIPIT_ASSERT(e.tag == tag, "exclusive fill into mismatched tag");
        SKIPIT_ASSERT(!e.dirty,
                      "exclusive fill for a dirty (data-resident) entry");
    }
    e.data_resident = false;
    return false;
}

void
ExclusivePolicy::applyWriteback(DirEntry &e, BankedStore &store,
                                unsigned set, unsigned way,
                                const LineData &data) const
{
    store.write(set, way, data);
    e.dirty = true;
    e.data_resident = true;
}

bool
ExclusivePolicy::needsFetch(const DirEntry &e) const
{
    return !e.data_resident;
}

} // namespace skipit
