/**
 * @file
 * The exclusive (non-inclusive data) state policy: clean Grant fills
 * bypass the BankedStore entirely — the Directory tracks holders
 * without data residency, and the store only ever holds bytes that
 * arrived dirty on channel C (the LLC as a victim cache). A later hit
 * on a tag-only entry re-fetches from DRAM, which is sound because a
 * tag-only entry is by construction clean (dirty implies resident).
 */

#ifndef SKIPIT_L2_POLICY_EXCLUSIVE_HH
#define SKIPIT_L2_POLICY_EXCLUSIVE_HH

#include "state_policy.hh"

namespace skipit {

class ExclusivePolicy final : public StatePolicy
{
  public:
    StateKind kind() const override { return StateKind::Exclusive; }
    bool dataAlwaysResident() const override { return false; }

    bool applyFill(DirEntry &e, BankedStore &store, unsigned set,
                   unsigned way, Addr tag,
                   const LineData &data) const override;

    void applyWriteback(DirEntry &e, BankedStore &store, unsigned set,
                        unsigned way, const LineData &data) const override;

    bool needsFetch(const DirEntry &e) const override;
};

} // namespace skipit

#endif // SKIPIT_L2_POLICY_EXCLUSIVE_HH
