/**
 * @file
 * The inclusive state policy: the paper's SiFive-style L2 (§3.4),
 * extracted verbatim from the pre-policy monolith. Every valid
 * directory entry's data is resident in the BankedStore.
 */

#ifndef SKIPIT_L2_POLICY_INCLUSIVE_HH
#define SKIPIT_L2_POLICY_INCLUSIVE_HH

#include "state_policy.hh"

namespace skipit {

class InclusivePolicy final : public StatePolicy
{
  public:
    StateKind kind() const override { return StateKind::Inclusive; }
    bool dataAlwaysResident() const override { return true; }

    bool applyFill(DirEntry &e, BankedStore &store, unsigned set,
                   unsigned way, Addr tag,
                   const LineData &data) const override;

    void applyWriteback(DirEntry &e, BankedStore &store, unsigned set,
                        unsigned way, const LineData &data) const override;

    bool needsFetch(const DirEntry &e) const override;
};

} // namespace skipit

#endif // SKIPIT_L2_POLICY_INCLUSIVE_HH
