#include "inclusive.hh"

namespace skipit {

bool
InclusivePolicy::applyFill(DirEntry &e, BankedStore &store, unsigned set,
                           unsigned way, Addr tag,
                           const LineData &data) const
{
    // Inclusive fills never hit a valid entry (a valid entry always has
    // data, so DirLookup responds without fetching); install the bytes
    // and a fresh clean entry.
    store.write(set, way, data);
    e.valid = true;
    e.tag = tag;
    e.dirty = false;
    e.branches = 0;
    e.trunk = invalid_agent;
    e.data_resident = true;
    return true;
}

void
InclusivePolicy::applyWriteback(DirEntry &e, BankedStore &store,
                                unsigned set, unsigned way,
                                const LineData &data) const
{
    store.write(set, way, data);
    e.dirty = true;
}

bool
InclusivePolicy::needsFetch(const DirEntry &e) const
{
    (void)e;
    return false;
}

} // namespace skipit
