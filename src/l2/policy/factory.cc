#include "exclusive.hh"
#include "inclusive.hh"
#include "sim/logging.hh"

namespace skipit {

std::unique_ptr<const StatePolicy>
makeStatePolicy(StateKind kind)
{
    switch (kind) {
      case StateKind::Inclusive:
        return std::make_unique<InclusivePolicy>();
      case StateKind::Exclusive:
        return std::make_unique<ExclusivePolicy>();
    }
    SKIPIT_PANIC("unknown L2 state policy");
}

} // namespace skipit
