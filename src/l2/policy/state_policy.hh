/**
 * @file
 * The L2 state/inclusivity policy: what a directory entry promises
 * about data residency, factored out of the transaction core
 * (FlexiCAS's msi/mesi/exclusive.hpp direction).
 *
 * The MSHR core (src/l2/cache.cc) is policy-agnostic: it runs the same
 * DirLookup / Evict / Fetch / Probe / Writeback / Respond state machine
 * for every policy and delegates the three decisions that differ:
 *
 *  - applyFill: where a DRAM fill's bytes land. Inclusive installs
 *    them in the BankedStore; exclusive leaves the entry tag-only and
 *    the core grants straight from the MSHR's fill stash.
 *  - applyWriteback: how a C-channel data payload (ReleaseData,
 *    ProbeAckData, RootReleaseData) is absorbed. Both install into the
 *    store — dirty bytes are the one thing even an exclusive LLC must
 *    keep — but exclusive additionally flips the entry data-resident.
 *  - needsFetch: whether a directory hit still requires DRAM data
 *    before a Grant can be served (exclusive tag-only hits do).
 *
 * Both policies keep the Directory *holder*-inclusive: every line an
 * L1 holds has a directory entry recording the holder, and evicting an
 * entry back-invalidates the L1 copies. Only *data* inclusivity is
 * policy-dependent (DirEntry::data_resident); the checker's value and
 * DRAM sweeps consult it, and dataAlwaysResident() turns data
 * residency itself into a checked invariant for the inclusive policy.
 */

#ifndef SKIPIT_L2_POLICY_STATE_POLICY_HH
#define SKIPIT_L2_POLICY_STATE_POLICY_HH

#include <memory>
#include <string>

#include "l2/banked_store.hh"
#include "l2/directory.hh"
#include "sim/types.hh"

namespace skipit {

enum class StateKind
{
    Inclusive, //!< the paper's SiFive-style inclusive MESI L2
    Exclusive, //!< non-inclusive/exclusive data, inclusive directory
};

inline const char *
toString(StateKind k)
{
    return k == StateKind::Exclusive ? "exclusive" : "inclusive";
}

/** @return false if @p token names no state policy. */
inline bool
stateKindFromString(const std::string &token, StateKind &out)
{
    if (token == "inclusive") {
        out = StateKind::Inclusive;
        return true;
    }
    if (token == "exclusive" || token == "noninclusive") {
        out = StateKind::Exclusive;
        return true;
    }
    return false;
}

/** See file comment. Stateless; one shared instance per cache. */
class StatePolicy
{
  public:
    virtual ~StatePolicy() = default;

    virtual StateKind kind() const = 0;

    /** Does every valid directory entry hold its line's data in the
     *  BankedStore? True makes data residency a checked invariant. */
    virtual bool dataAlwaysResident() const = 0;

    /**
     * Install a DRAM fill for the line tagged @p tag into entry @p e
     * (either invalid, or a valid tag-only hit whose holders must be
     * preserved). @return true when the store now holds the bytes (the
     * Grant reads the store); false when the Grant must be served from
     * the MSHR's fill stash instead.
     */
    virtual bool applyFill(DirEntry &e, BankedStore &store, unsigned set,
                           unsigned way, Addr tag,
                           const LineData &data) const = 0;

    /** Absorb a C-channel data payload (ReleaseData / ProbeAckData /
     *  RootReleaseData) into entry @p e. */
    virtual void applyWriteback(DirEntry &e, BankedStore &store,
                                unsigned set, unsigned way,
                                const LineData &data) const = 0;

    /** After a directory hit (or probe completion): must the core fetch
     *  the line from DRAM before it can serve a Grant? */
    virtual bool needsFetch(const DirEntry &e) const = 0;
};

std::unique_ptr<const StatePolicy> makeStatePolicy(StateKind kind);

} // namespace skipit

#endif // SKIPIT_L2_POLICY_STATE_POLICY_HH
