/**
 * @file
 * The L2 indexing policy: the single shared mapping from a line address
 * to its home slice and its set within that slice.
 *
 * Both the interconnect (TLXbar routes A/C/E by home slice) and the
 * cache (Directory looks up sets, slices assert homesLine) consume the
 * same L2IndexPolicy value, so the two can never disagree about where a
 * line lives — the checker's slice-routing invariant guards the one
 * remaining way to break that (wiring two components with *different*
 * policy values, exercised by the negative tests).
 *
 * Two kinds:
 *  - Modulo: the classic layout. Slice bits sit just above the line
 *    offset (consecutive lines stripe across slices) and the set index
 *    is the next bits modulo sets-per-slice. Bit-identical to the
 *    pre-policy arithmetic.
 *  - Hashed: slice and set are taken from a seeded avalanche hash of
 *    the line address (the Mirage/FlexiCAS skewed-LLC direction). A
 *    fixed seed keeps runs deterministic; distinct seeds give distinct
 *    (randomized) layouts, the building block for index-randomization
 *    defenses against eviction-set construction.
 *
 * Directory tags are always the full line address (Directory::tagOf),
 * so any index function — including a hashed one that destroys the
 * set/tag bit split — can reconstruct a resident line's address.
 */

#ifndef SKIPIT_L2_INDEX_HH
#define SKIPIT_L2_INDEX_HH

#include <cstdint>
#include <string>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace skipit {

/** log2 of the slice count; slice counts must be powers of two. */
inline unsigned
sliceBits(unsigned slices)
{
    SKIPIT_ASSERT(slices >= 1 && (slices & (slices - 1)) == 0,
                  "slice count must be a power of two, got ", slices);
    unsigned bits = 0;
    while ((1u << bits) < slices)
        ++bits;
    return bits;
}

/** How a line address maps to (slice, set). */
enum class IndexKind
{
    Modulo, //!< slice bits above the line offset, then set bits
    Hashed, //!< seeded hash picks both slice and set
};

inline const char *
toString(IndexKind k)
{
    return k == IndexKind::Hashed ? "hashed" : "modulo";
}

/** @return false if @p token names no index kind. */
inline bool
indexKindFromString(const std::string &token, IndexKind &out)
{
    if (token == "modulo") {
        out = IndexKind::Modulo;
        return true;
    }
    if (token == "hashed") {
        out = IndexKind::Hashed;
        return true;
    }
    return false;
}

/** See file comment. A plain value: copy it freely. */
struct L2IndexPolicy
{
    IndexKind kind = IndexKind::Modulo;
    unsigned slices = 1;         //!< power of two
    unsigned sets_per_slice = 1; //!< Directory sets in each slice
    /** Hashed-index key. Fixed default keeps runs reproducible; vary it
     *  to re-randomize the layout (index-randomization defenses). */
    std::uint64_t seed = 0x736b697034686173ULL;

    static L2IndexPolicy
    modulo(unsigned slices, unsigned sets_per_slice)
    {
        return L2IndexPolicy{IndexKind::Modulo, slices, sets_per_slice,
                             0};
    }

    /** Home slice of @p line_addr (any byte address; line-aligned
     *  internally). */
    unsigned
    sliceOf(Addr line_addr) const
    {
        const Addr line = line_addr >> line_shift;
        if (kind == IndexKind::Modulo)
            return static_cast<unsigned>(line &
                                         (static_cast<Addr>(slices) - 1));
        return static_cast<unsigned>(hash(line) &
                                     (static_cast<Addr>(slices) - 1));
    }

    /** Set index within the home slice. */
    unsigned
    setOf(Addr line_addr) const
    {
        const Addr line = line_addr >> line_shift;
        if (kind == IndexKind::Modulo) {
            return static_cast<unsigned>((line >> sliceBits(slices)) %
                                         sets_per_slice);
        }
        // Draw the set from bits disjoint from the slice field so the
        // two stay independent under one hash evaluation.
        return static_cast<unsigned>((hash(line) >> 20) % sets_per_slice);
    }

    bool
    operator==(const L2IndexPolicy &o) const
    {
        return kind == o.kind && slices == o.slices &&
               sets_per_slice == o.sets_per_slice &&
               (kind == IndexKind::Modulo || seed == o.seed);
    }

  private:
    /** splitmix64 finalizer over the seeded line number: full-avalanche,
     *  so low slice bits and mid set bits are independently mixed. */
    std::uint64_t
    hash(Addr line) const
    {
        std::uint64_t x = line ^ seed;
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }
};

/**
 * Home slice of a line under the default modulo layout. Legacy helper
 * for single-policy contexts (DRAM tag packing, tests); topology-aware
 * code must use the wired L2IndexPolicy instead.
 */
inline unsigned
sliceOfLine(Addr line_addr, unsigned slices)
{
    return static_cast<unsigned>((line_addr >> line_shift) &
                                 (static_cast<Addr>(slices) - 1));
}

} // namespace skipit

#endif // SKIPIT_L2_INDEX_HH
