/**
 * @file
 * The BankedStore: the inclusive cache's line-data SRAM (§3.4).
 *
 * Data is indexed by (set, way); access timing is charged by the MSHR
 * state machines, so this class is purely functional storage.
 */

#ifndef SKIPIT_L2_BANKED_STORE_HH
#define SKIPIT_L2_BANKED_STORE_HH

#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"
#include "tilelink/messages.hh"

namespace skipit {

/** Line-data storage for a set-associative cache. */
class BankedStore
{
  public:
    BankedStore(unsigned sets, unsigned ways)
        : sets_(sets), ways_(ways),
          lines_(static_cast<std::size_t>(sets) * ways)
    {
    }

    const LineData &
    read(unsigned set, unsigned way) const
    {
        return lines_[index(set, way)];
    }

    void
    write(unsigned set, unsigned way, const LineData &data)
    {
        lines_[index(set, way)] = data;
    }

  private:
    unsigned sets_;
    unsigned ways_;
    std::vector<LineData> lines_;

    std::size_t
    index(unsigned set, unsigned way) const
    {
        SKIPIT_ASSERT(set < sets_ && way < ways_, "banked store index OOB");
        return static_cast<std::size_t>(set) * ways_ + way;
    }
};

} // namespace skipit

#endif // SKIPIT_L2_BANKED_STORE_HH
