#include "platform.hh"

#include <cmath>

#include "sim/logging.hh"

namespace skipit {

double
PlatformModel::latency(std::size_t bytes, unsigned threads,
                       WbInstr instr) const
{
    SKIPIT_ASSERT(threads >= 1, "at least one thread required");
    const double lines =
        static_cast<double>((bytes + line_bytes - 1) / line_bytes);
    const double lines_per_thread = lines / static_cast<double>(threads);

    // Per-thread issue work, sub-linear for batching platforms.
    double issue = per_line * std::pow(lines_per_thread, batch_exponent);

    // Self-ordered flushes (Intel clflush): each flush is ordered behind
    // the previous one, so beyond the overlap the store buffer can hide
    // (serial_free_lines), every additional line pays a full memory round
    // trip. This is what makes clflush blow up at >= 4 KiB single-threaded
    // (Fig 11) but only above 16 KiB with 8 threads (Fig 12), where each
    // thread's share is still mostly inside the overlap window.
    if (instr == WbInstr::FlushSerial) {
        const double serial_lines =
            std::max(0.0, lines_per_thread - serial_free_lines);
        issue += serial_penalty * serial_lines;
    }

    // Thread scaling of the issue portion is slightly sub-linear.
    const double overhead = static_cast<double>(threads) /
        (1.0 + thread_efficiency * (static_cast<double>(threads) - 1.0));
    const double issue_time = issue * overhead;

    // The memory drain is shared bandwidth: a floor threads cannot beat.
    const double drain_floor = mem_drain_per_line * lines;

    return std::max(issue_time, drain_floor) + fence_cost;
}

namespace platforms {

PlatformModel
intelXeon6238T()
{
    PlatformModel m;
    m.name = "Intel Xeon Gold 6238T";
    m.per_line = 28;
    m.serial_penalty = 230; // clflush waits for each line's completion
    m.fence_cost = 120;
    m.mem_drain_per_line = 9;
    m.batch_exponent = 1.0;
    m.thread_efficiency = 0.85;
    return m;
}

PlatformModel
amdEpyc7763()
{
    PlatformModel m;
    m.name = "AMD EPYC 7763";
    m.per_line = 34;
    m.serial_penalty = 4; // clflush ~= clflushopt on AMD (§7.3)
    m.fence_cost = 140;
    m.mem_drain_per_line = 10;
    m.batch_exponent = 1.0;
    m.thread_efficiency = 0.85;
    return m;
}

PlatformModel
graviton3()
{
    PlatformModel m;
    m.name = "AWS Graviton3";
    m.per_line = 30;
    m.serial_penalty = 0;
    m.fence_cost = 110;
    m.mem_drain_per_line = 3.5;
    m.batch_exponent = 0.82; // sub-linear growth (§7.3)
    m.thread_efficiency = 0.9;
    return m;
}

std::vector<PlatformModel>
all()
{
    return {intelXeon6238T(), amdEpyc7763(), graviton3()};
}

} // namespace platforms
} // namespace skipit
