/**
 * @file
 * Analytic writeback-latency models of the commercial platforms the paper
 * compares against in Figures 11 and 12 (§7.3).
 *
 * We obviously cannot run on an AMD EPYC 7763, Intel Xeon Gold 6238T or
 * AWS Graviton3; these models encode the *documented semantics* that give
 * those figures their shape:
 *
 *  - Intel `clflush` is ordered with respect to other clflushes — it
 *    serializes, so its cost grows with an extra per-line serialization
 *    penalty that dominates at >= 4 KiB (the blow-up in Fig 11).
 *  - Intel `clflushopt` / `clwb` are weakly ordered: lines writeback
 *    concurrently, cost ~ per-line issue + one memory drain at the fence.
 *  - AMD's `clflush` behaves like its `clflushopt` (the paper observes
 *    they perform nearly identically).
 *  - ARMv8 `dccivac`/`dccvac` batch well; Graviton3's flush latency grows
 *    sub-linearly, overtaking BOOM above 4 KiB.
 *  - Multi-threading divides the per-line work across threads but shares
 *    the memory-drain bandwidth, which also softens Intel clflush's
 *    relative penalty at 8 threads (visible only >16 KiB in Fig 12).
 *
 * Parameters are calibrated against the relative positions in Figs 11/12,
 * not absolute hardware numbers.
 */

#ifndef SKIPIT_PLATFORM_PLATFORM_HH
#define SKIPIT_PLATFORM_PLATFORM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace skipit {

/** Which writeback instruction variant a platform executes. */
enum class WbInstr
{
    Flush,      //!< invalidating, weakly ordered (clflushopt / dccivac)
    FlushSerial,//!< invalidating, self-ordered (Intel clflush)
    Clean,      //!< non-invalidating (clwb / dccvac)
};

/** Analytic cost model of one platform's writeback path. */
struct PlatformModel
{
    std::string name;
    double per_line = 0;        //!< issue cost per cache line (cycles)
    double serial_penalty = 0;  //!< extra per-line cost when self-ordered
    double fence_cost = 0;      //!< trailing barrier cost
    double mem_drain_per_line = 0; //!< shared-bandwidth drain per line
    double batch_exponent = 1.0;   //!< sub-linear growth (Graviton3 < 1)
    double thread_efficiency = 0.9; //!< scaling efficiency per added thread
    double serial_free_lines = 32; //!< overlap window hiding serialization

    /**
     * Latency in cycles to write back @p bytes with @p threads threads
     * using @p instr, including the trailing barrier.
     */
    double latency(std::size_t bytes, unsigned threads,
                   WbInstr instr) const;
};

/** The model zoo used by the Fig 11 / Fig 12 benches. */
namespace platforms {

PlatformModel intelXeon6238T();
PlatformModel amdEpyc7763();
PlatformModel graviton3();

/** All commercial models (the BOOM series comes from the cycle model). */
std::vector<PlatformModel> all();

} // namespace platforms

} // namespace skipit

#endif // SKIPIT_PLATFORM_PLATFORM_HH
