#include "dram.hh"

#include <cstring>

#include "sim/trace.hh"

namespace skipit {

Dram::Dram(std::string name, Simulator &sim, const DramConfig &cfg,
           Stats &stats)
    : Ticked(std::move(name)), sim_(sim), cfg_(cfg), stats_(stats),
      req_q_(cfg.max_inflight), resp_q_(sim)
{
    SKIPIT_ASSERT(cfg_.issue_interval >= 1, "issue_interval must be >= 1");
}

bool
Dram::canAccept() const
{
    return !req_q_.full();
}

void
Dram::submit(const MemReq &req)
{
    SKIPIT_ASSERT(canAccept(), "submit to full DRAM queue");
    SKIPIT_ASSERT(lineAlign(req.addr) == req.addr,
                  "DRAM requests must be line aligned");
    const bool pushed = req_q_.tryPush(req);
    SKIPIT_ASSERT(pushed, "DRAM push failed");
    stats_[req.write ? "dram.writes" : "dram.reads"]++;
}

Cycle
Dram::nextWake() const
{
    // tick() only issues queued requests; response delivery is the LLC's
    // concern (see respWakeAt, folded into L2Cache::nextWake).
    if (req_q_.empty())
        return wake_never;
    return std::max(sim_.now(), next_issue_);
}

Cycle
Dram::respWakeAt() const
{
    if (resp_q_.empty())
        return Ticked::wake_never;
    return std::max(sim_.now(), resp_q_.frontReadyAt());
}

void
Dram::tick()
{
    if (req_q_.empty() || sim_.now() < next_issue_)
        return;

    MemReq req = req_q_.pop();
    next_issue_ = sim_.now() + cfg_.issue_interval;

    MemResp resp;
    resp.write = req.write;
    resp.addr = req.addr;
    resp.tag = req.tag;
    if (req.write) {
        store_[req.addr] = req.data;
        resp_q_.pushIn(resp, cfg_.write_ack_latency);
    } else {
        resp.data = peekLine(req.addr);
        resp_q_.pushIn(resp, cfg_.latency);
    }
    if (sim_.probes().active()) {
        sim_.probes().span(
            sim_.now(), req.write ? cfg_.write_ack_latency : cfg_.latency,
            req.txn, req.write ? "dram.write" : "dram.read", name(),
            trace::detail::concat(req.write ? "write 0x" : "read 0x",
                                  std::hex, req.addr),
            req.addr, req.write ? lineFingerprint(req.data) : 0);
    }
}

MemResp
Dram::popResp()
{
    return resp_q_.pop();
}

LineData
Dram::peekLine(Addr line_addr) const
{
    auto it = store_.find(lineAlign(line_addr));
    if (it == store_.end())
        return LineData{}; // untouched memory reads as zero
    return it->second;
}

void
Dram::pokeLine(Addr line_addr, const LineData &data)
{
    store_[lineAlign(line_addr)] = data;
}

std::unordered_map<Addr, LineData>
Dram::persistImage() const
{
    std::unordered_map<Addr, LineData> image = store_;
    for (const MemReq &req : req_q_) {
        if (req.write)
            image[req.addr] = req.data;
    }
    return image;
}

LineData
Dram::persistLine(Addr line_addr) const
{
    const Addr line = lineAlign(line_addr);
    LineData data = peekLine(line);
    for (const MemReq &req : req_q_) {
        if (req.write && req.addr == line)
            data = req.data;
    }
    return data;
}

unsigned
Dram::pendingWrites() const
{
    unsigned n = 0;
    for (const MemReq &req : req_q_) {
        if (req.write)
            ++n;
    }
    return n;
}

std::vector<Addr>
Dram::queuedWriteLines() const
{
    std::vector<Addr> lines;
    for (const MemReq &req : req_q_) {
        if (req.write)
            lines.push_back(req.addr);
    }
    return lines;
}

std::uint64_t
Dram::peekWord(Addr addr) const
{
    const LineData line = peekLine(addr);
    std::uint64_t v = 0;
    std::memcpy(&v, line.data() + lineOffset(addr & ~Addr{7}), sizeof(v));
    return v;
}

} // namespace skipit
