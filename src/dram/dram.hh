/**
 * @file
 * A fixed-latency, bandwidth-limited DRAM controller with a functional
 * backing store.
 *
 * Substitutes for FASED (§7.1): the paper uses an FPGA-hosted realistic
 * DRAM model purely to provide credible memory latency; here a single
 * closed-page latency plus an issue-rate limit and bounded in-flight window
 * capture the first-order behaviour. The functional backing store is what
 * crash-consistency tests inspect: after CBO.X + fence, the line's bytes
 * must be present here.
 */

#ifndef SKIPIT_DRAM_DRAM_HH
#define SKIPIT_DRAM_DRAM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/queues.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "sim/types.hh"
#include "tilelink/messages.hh"

namespace skipit {

/** A line-granularity memory request from the LLC. */
struct MemReq
{
    bool write = false;
    Addr addr = 0;        //!< line-aligned
    LineData data{};      //!< valid for writes
    std::uint64_t tag = 0; //!< opaque id echoed in the response
    TxnId txn = 0;        //!< observability transaction id
};

/** Completion of a MemReq. */
struct MemResp
{
    bool write = false;
    Addr addr = 0;
    LineData data{};      //!< valid for reads
    std::uint64_t tag = 0;
};

/** DRAM controller parameters. */
struct DramConfig
{
    Cycle latency = 80;          //!< read (closed-page access) latency
    /** Write acknowledgement latency: writes ack once they are safely in
     *  the controller's write queue, long before the array update — this
     *  is what lets many writebacks overlap in hardware. */
    Cycle write_ack_latency = 20;
    unsigned max_inflight = 64;  //!< outstanding request window
    unsigned issue_interval = 2; //!< min cycles between issued requests
};

/**
 * The memory controller. The LLC submits line reads/writes; responses
 * appear on popResp() after the configured latency, subject to the issue
 * rate and in-flight limits.
 */
class Dram : public Ticked
{
  public:
    Dram(std::string name, Simulator &sim, const DramConfig &cfg,
         Stats &stats);

    void tick() override;
    Cycle nextWake() const override;

    /** Can a new request be submitted this cycle? */
    bool canAccept() const;

    /** Submit a request; undefined behaviour unless canAccept(). */
    void submit(const MemReq &req);

    bool respReady() const { return resp_q_.ready(); }

    /** The response popResp() would return; undefined unless
     *  respReady(). Slices peek the tag to take only their own
     *  completions off the shared controller in head-of-line order. */
    const MemResp &peekResp() const { return resp_q_.front(); }

    /** Quiescence: cycle the earliest queued response becomes visible to
     *  the LLC; wake_never when none is in flight. */
    Cycle respWakeAt() const;
    MemResp popResp();
    unsigned inflight() const { return inflight_; }

    /// @name Functional backing store (test / checkpoint interface)
    /// @{
    /** Read a line's current content; zero-filled if never written. */
    LineData peekLine(Addr line_addr) const;
    /** Directly deposit a line (test setup). */
    void pokeLine(Addr line_addr, const LineData &data);
    /** Read one 64-bit word straight from the backing store. */
    std::uint64_t peekWord(Addr addr) const;
    /// @}

    /// @name ADR persist domain (durability-oracle interface)
    ///
    /// The persist domain at any instant is the backing store plus every
    /// write already accepted into the controller queue: like hardware
    /// ADR, the controller is assumed to drain its accepted write queue
    /// on standby power after a failure. Queued reads have no effect.
    /// @{
    /** The full post-crash image: store_ with queued writes applied in
     *  FIFO order. */
    std::unordered_map<Addr, LineData> persistImage() const;
    /** One line of the persist domain (the last queued write wins). */
    LineData persistLine(Addr line_addr) const;
    /** Accepted-but-unissued writes (already part of the image). */
    unsigned pendingWrites() const;
    /** Line addresses of accepted-but-unissued writes, FIFO order. */
    std::vector<Addr> queuedWriteLines() const;
    /// @}

  private:
    Simulator &sim_;
    DramConfig cfg_;
    Stats &stats_;

    BoundedFifo<MemReq> req_q_;
    CompletionBuffer<MemResp> resp_q_;
    std::unordered_map<Addr, LineData> store_;
    unsigned inflight_ = 0;
    Cycle next_issue_ = 0;
};

} // namespace skipit

#endif // SKIPIT_DRAM_DRAM_HH
