/**
 * @file
 * Umbrella header: the library's public surface in one include.
 *
 *   #include "skipit/skipit.hh"
 *
 * pulls in the cycle-level SoC (cores + L1 flush unit + inclusive L2 +
 * DRAM), the program assembler, the commercial-platform models, the
 * execution-driven persistence layer with its flush-avoidance policies,
 * the four lock-free persistent sets, and the workload harnesses.
 */

#ifndef SKIPIT_SKIPIT_HH
#define SKIPIT_SKIPIT_HH

// Simulation kernel
#include "sim/logging.hh"
#include "sim/queues.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "sim/types.hh"

// Coherence + TileLink
#include "coherence/state.hh"
#include "tilelink/link.hh"
#include "tilelink/messages.hh"

// The machine
#include "core/asm.hh"
#include "core/hart.hh"
#include "core/lsu.hh"
#include "core/mem_op.hh"
#include "dram/dram.hh"
#include "l1/data_cache.hh"
#include "l2/cache.hh"
#include "soc/soc.hh"

// Comparative platform models (Figures 11-12)
#include "platform/platform.hh"

// Persistence layer and data structures (Figures 14-16)
#include "ds/bst.hh"
#include "ds/hash_table.hh"
#include "ds/linked_list.hh"
#include "ds/set_interface.hh"
#include "ds/skiplist.hh"
#include "nvm/mem_sim.hh"
#include "nvm/persist.hh"

// Workload harnesses
#include "workloads/workloads.hh"

#endif // SKIPIT_SKIPIT_HH
