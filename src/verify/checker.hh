/**
 * @file
 * The global coherence invariant checker (the runtime half of the paper's
 * correctness argument).
 *
 * Registered on the SoC like the watchdog — last in tick order, never
 * mutating simulated state — the checker re-derives, at the end of every
 * executed cycle, the invariants the paper argues on paper:
 *
 *  - "swmr"             single-writer / multi-reader across L1s (§2.2):
 *                       at most one Trunk per line, a Trunk is the sole
 *                       holder, and only a Trunk may be dirty.
 *  - "inclusivity"      every line an L1 holds is resident in the L2
 *                       directory and recorded for that holder (§3.4);
 *                       an L1 Trunk must be the directory's trunk. (The
 *                       directory may transiently record *more* permission
 *                       than an L1 still has — shrink reports are applied
 *                       at C-channel arrival — but never less.)
 *  - "flushq-meta"      flush-queue snapshots agree with the array: a
 *                       hit entry's line is resident with the snapshotted
 *                       dirty bit, and a dirty entry is a hit (§5.2/§5.4,
 *                       maintained by the probe_invalidate interlock).
 *  - "probe-invalidate" once a probe has passed its invalidate-queue
 *                       stage, no queued entry on the probed line still
 *                       claims dirty data (or, for a toN probe, a hit).
 *  - "fshr-fsm"         FSHR transitions follow the six-state machine of
 *                       Figure 7 (§5.2).
 *  - "flush-counter"    flush counter == queued + in-FSHR CBO.X (§5.3).
 *  - "value-coherence"  a clean quiet L1 line's bytes equal the L2 copy;
 *                       a clean quiet L2 line's bytes equal DRAM. The
 *                       hierarchy agreement chain is the checker's shadow
 *                       memory oracle: together with the fuzzer's
 *                       per-word program-order oracle it gives end-to-end
 *                       load-value checking.
 *  - "skip-soundness"   a set skip bit on a clean quiet line implies no
 *                       dirty copy below and bytes identical to DRAM (§6).
 *  - "slice-routing"    with an address-interleaved L2, every line a
 *                       slice works on (MSHR request, eviction victim,
 *                       buffered RootRelease, or — in deep sweeps —
 *                       directory residence) homes to that slice; a hit
 *                       means the crossbar misrouted a request.
 *  - "flush-counter-global" the summed flush counters across all L1s
 *                       equal the summed queue + FSHR occupancy — the
 *                       machine-wide fence progress ledger stays
 *                       conserved even when one flush epoch's
 *                       RootReleases fan out across several slices.
 *
 * Value/skip checks only fire on *quiet* lines (no FSHR, flush-queue
 * entry, probe, writeback, MSHR or L2 transaction in flight on the line):
 * while a transaction is mid-flight the levels legitimately disagree.
 * Structural invariants hold unconditionally every cycle.
 *
 * The checker reads end-of-cycle state only; with fast-forward enabled it
 * still observes every state change, because skipped cycles are provably
 * idle. Enabling it never changes simulated timing.
 */

#ifndef SKIPIT_VERIFY_CHECKER_HH
#define SKIPIT_VERIFY_CHECKER_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "l1/structures.hh"
#include "sim/simulator.hh"
#include "sim/ticked.hh"
#include "sim/types.hh"

namespace skipit {
class DataCache;
class L2Cache;
class Dram;
} // namespace skipit

namespace skipit::verify {

/** Checker parameters. */
struct CheckerConfig
{
    bool enabled = true;
    /** Panic on the first violation (tests, CI) instead of latching it
     *  for later inspection (fuzzing, watchdog escalation). */
    bool fatal = true;
    /** Run the value-coherence / skip-soundness byte comparisons. */
    bool check_values = true;
    /** Check skip-bit soundness. The SoC clears this automatically for
     *  configurations where the skip bit is genuinely unsound (skip_it
     *  without grant_data_dirty, reachable through the ablation axes). */
    bool check_skip = true;
    /** Executed cycles between value sweeps (structural invariants run
     *  every cycle). Quiet-line bytes cannot change while quiet, so
     *  sampling only delays detection; checkNow() always sweeps. */
    Cycle value_interval = 16;
    /** Latched-violation cap when not fatal. */
    std::size_t max_violations = 64;
};

/** One detected invariant violation. */
struct Violation
{
    Cycle cycle = 0;
    std::string invariant; //!< named key, e.g. "probe-invalidate"
    std::string detail;
};

/** See file comment. */
class CoherenceChecker : public Ticked
{
  public:
    CoherenceChecker(std::string name, Simulator &sim,
                     const CheckerConfig &cfg);

    /// @name Wiring (SoC construction; all optional)
    /// @{
    void addL1(const DataCache &l1);
    /** Register one L2 slice; call once per slice in slice-index order
     *  (a single call for the monolithic slices=1 L2). */
    void setL2(const L2Cache &l2) { l2s_.push_back(&l2); }
    void setDram(const Dram &dram) { dram_ = &dram; }
    /// @}

    void tick() override;
    /** The checker never forces a cycle to execute: state only changes in
     *  executed cycles, and the checker runs in each of those. */
    Cycle nextWake() const override { return wake_never; }

    /**
     * Exhaustive sweep right now: every structural invariant, every value
     * invariant, plus the full L2-vs-DRAM clean-line agreement scan that
     * is too wide to run per cycle. Honors CheckerConfig::fatal.
     * @return number of new violations found (0 when fatal, it panics)
     */
    std::size_t checkNow();

    /** Non-fatal exhaustive sweep + report, for watchdog escalation. */
    void escalate(std::ostream &os);

    bool clean() const { return violations_.empty(); }
    const std::vector<Violation> &violations() const { return violations_; }
    /** Executed cycles the checker has examined. */
    std::uint64_t checksRun() const { return checks_run_; }
    void report(std::ostream &os) const;

  private:
    Simulator &sim_;
    CheckerConfig cfg_;
    std::vector<const DataCache *> l1s_;
    /** L2 slices in slice-index order; one entry when slices=1. */
    std::vector<const L2Cache *> l2s_;
    const Dram *dram_ = nullptr;

    std::vector<Violation> violations_;
    std::uint64_t checks_run_ = 0;
    /** Previous-tick FSHR states, per L1, for transition checking. */
    std::vector<std::vector<Fshr::State>> prev_fshr_;
    /** When non-null, fail() collects here instead of panicking. */
    std::vector<Violation> *collect_ = nullptr;

    void checkL1Structural(std::size_t idx);
    void checkFshrFsm(std::size_t idx);
    void checkValues(std::size_t idx);
    void checkL2DramSweep();
    /** slice-routing: no slice works on (or, when @p deep, holds) a
     *  line homing to a sibling. Shallow runs every cycle; the deep
     *  directory scan runs at value-sweep cadence and in checkNow(). */
    void checkSliceRouting(bool deep);
    /** flush-counter-global: machine-wide counter conservation. */
    void checkGlobalFlushCounter();
    void snapshotFshrStates();

    /** The slice whose address range contains @p line (null if none). */
    const L2Cache *homeL2(Addr line) const;

    /** Is any machinery in the whole hierarchy working on @p line? */
    bool lineQuiet(Addr line) const;

    void fail(const char *invariant, std::string detail);
};

} // namespace skipit::verify

#endif // SKIPIT_VERIFY_CHECKER_HH
