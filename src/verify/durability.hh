/**
 * @file
 * Power-failure injection and the durability oracle (the runtime half of
 * the paper's §6 soundness argument).
 *
 * Persist-domain contract (docs/ROBUSTNESS.md "Crash model"):
 *
 *  - DURABLE: the DRAM backing store, plus every write already accepted
 *    into the DRAM controller queue (ADR semantics — the controller
 *    drains its accepted write queue on standby power).
 *  - VOLATILE: L1 data / dirty / skip bits, the flush queue, FSHRs,
 *    MSHRs, the L2 slices (data and directory), the crossbar, and every
 *    in-flight TileLink message.
 *
 * A crash freezes the persist-domain image at the start of the first
 * executed cycle >= the trigger (SoCConfig::durability: a cycle number,
 * or the first probe event on a named stage). Fast-forwarded cycles are
 * provably idle, so freezing at the next executed cycle yields the exact
 * image of the requested cycle.
 *
 * The oracle audits four claims, fed purely by probe-hub events so it is
 * observer-only and cycle-neutral (enabling it never changes a cycle
 * count):
 *
 *  - "skip-drop"        a skip-elided writeback (l1.skipit) was sound at
 *                       elision time: the dropped line's bytes already
 *                       equal the persist-domain copy (§6.1).
 *  - "skip-set"         a skip bit set on clean-ack (persist.skipset)
 *                       marks a line whose bytes equal the persist-domain
 *                       copy at set time (§6).
 *  - "completion-durability" a data-carrying CBO completion
 *                       (persist.complete) was preceded by a DRAM write
 *                       of exactly the data its FSHR captured
 *                       (persist.wb.data fingerprint) — the RootRelease
 *                       path may not ack before the data reached the
 *                       persist domain. CBO.INVAL is exempt (its contract
 *                       discards dirty data).
 *  - "durability"       at crash time: every obligation the issuing hart
 *                       observed complete (a fence retired after the CBO
 *                       completed, before the crash) still has its
 *                       flushed value in the frozen image, unless a later
 *                       accepted write legitimately superseded it.
 *
 * The freezer runs in the pre phase *before* the DRAM controller, so the
 * image is captured before any cycle-C activity; the oracle runs in the
 * post phase, after the probe hub has flushed the cycle's staged events,
 * so it sees the exact serial event stream under both engines.
 */

#ifndef SKIPIT_VERIFY_DURABILITY_HH
#define SKIPIT_VERIFY_DURABILITY_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "checker.hh"
#include "sim/simulator.hh"
#include "sim/ticked.hh"
#include "sim/types.hh"
#include "tilelink/messages.hh"

namespace skipit {
class DataCache;
class L2Cache;
class Dram;
} // namespace skipit

namespace skipit::verify {

/** Power-failure injection + durability oracle parameters. */
struct DurabilityConfig
{
    /** Master switch. Off by default: the oracle is observer-only and
     *  cycle-neutral, but it allocates ledgers proportional to the CBO
     *  traffic, so it is opt-in like the tracer rather than always-on
     *  like the checker. */
    bool enabled = false;
    /** Crash (freeze the persist-domain image) at the start of the first
     *  executed cycle >= this. 0 = no cycle trigger. */
    Cycle crash_at = 0;
    /** Crash at the cycle boundary after the first probe event whose
     *  stage equals this string (e.g. "l1.skipit"). Empty = off. */
    std::string crash_on_stage;
    /** Panic on the first violation instead of latching it. */
    bool fatal = true;
    /** Latched-violation cap when not fatal. */
    std::size_t max_violations = 64;
};

/** What the persist domain looked like when the power failed. */
struct PersistSummary
{
    bool crashed = false;
    Cycle crash_cycle = 0;
    std::size_t image_lines = 0;     //!< distinct lines in the image
    std::size_t pending_writes = 0;  //!< accepted queue writes (durable)
    std::size_t dirty_l1_lines = 0;  //!< volatile dirty data: lost
    std::size_t dirty_l2_lines = 0;  //!< volatile dirty data: lost
    std::size_t busy_fshrs = 0;      //!< CBOs in flight at crash
    std::size_t queued_cbos = 0;     //!< flush-queue entries at crash
    std::size_t sealed_claims = 0;   //!< fence-observed durability claims
};

/** See file comment. */
class DurabilityOracle : public Ticked, public probe::Sink
{
  public:
    DurabilityOracle(std::string name, Simulator &sim,
                     const DurabilityConfig &cfg);

    /// @name Wiring (SoC construction)
    /// @{
    void addL1(const DataCache &l1);
    void setL2(const L2Cache &l2) { l2s_.push_back(&l2); }
    void setDram(const Dram &dram) { dram_ = &dram; }
    /// @}

    /** Post-phase tick: consume the cycle's event stream, run the online
     *  soundness checks, arm the event-triggered crash. */
    void tick() override;
    /** Observer only: never forces a cycle to execute. */
    Cycle nextWake() const override { return wake_never; }

    /** probe::Sink: buffer an event for this cycle's tick(). */
    void onEvent(const probe::Event &e) override;

    /** Pre-phase trigger, called by the CrashFreezer before the DRAM
     *  controller ticks: freeze + audit once the crash point is due. */
    void freezeTick();

    /**
     * Freeze the image and run the crash audit right now. Runners call
     * this when a crash was armed but the machine quiesced before the
     * crash cycle (the image can no longer change, so the audit result
     * is identical). No-op if already crashed or not enabled.
     */
    void crashNow();

    bool crashed() const { return summary_.crashed; }
    Cycle crashCycle() const { return summary_.crash_cycle; }
    /** The frozen post-crash image; valid once crashed(). */
    const std::unordered_map<Addr, LineData> &image() const
    {
        return image_;
    }
    const PersistSummary &summary() const { return summary_; }
    /** Human-readable persist-domain summary (frozen state if crashed,
     *  live state otherwise) — watchdog reports and replay bundles. */
    void reportSummary(std::ostream &os) const;

    /** Fences hart @p hart retired before the crash (or so far, when no
     *  crash happened). Fences retire in program order, so a harness
     *  that knows the program can map this count to the op index of the
     *  last retired fence — the basis of the fuzzer's word-level crash
     *  oracle. */
    std::uint64_t fencesRetired(unsigned hart) const
    {
        return hart < fences_.size() ? fences_[hart] : 0;
    }

    bool clean() const { return violations_.empty(); }
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }
    void report(std::ostream &os) const;

  private:
    /** A data-carrying CBO's promise: make @p fp durable on @p line. */
    struct Obligation
    {
        Addr line = 0;
        std::uint64_t fp = 0;
        /** Global sequence of the DRAM write that discharged it. */
        std::uint64_t wb_seq = 0;
        /** Write-sequence horizon at capture: any same-line DRAM write
         *  with seq >= this is coherence-newer than the captured data
         *  and legitimately discharges the promise (a racing store can
         *  merge into the writeback on its way down). */
        std::uint64_t capture_seq = 0;
    };

    Simulator &sim_;
    DurabilityConfig cfg_;
    std::vector<const DataCache *> l1s_;
    std::vector<const L2Cache *> l2s_;
    const Dram *dram_ = nullptr;

    std::vector<probe::Event> pending_;   //!< this cycle's events
    std::vector<Violation> violations_;

    /** persist.wb.data by txn: data fingerprint each in-flight
     *  data-carrying CBO promised to persist. */
    std::unordered_map<TxnId, Obligation> wb_data_;
    /** (txn, fp) pairs that reached the DRAM controller. */
    std::unordered_set<std::uint64_t> durable_;
    /** Per-line sequence + fingerprint of the last issued DRAM write. */
    struct LastWrite
    {
        std::uint64_t seq = 0;
        std::uint64_t fp = 0;
    };
    std::unordered_map<Addr, LastWrite> line_last_write_;
    std::uint64_t next_seq_ = 1;

    /** Completed-but-not-yet-fence-observed obligations, per hart. */
    std::vector<std::vector<Obligation>> completed_;
    /** Per-hart count of retired fences seen pre-crash. */
    std::vector<std::uint64_t> fences_;
    /** Fence-observed claims: per line, the latest sealed obligation. */
    std::unordered_map<Addr, Obligation> sealed_;

    /** Event-trigger arm point (crash_on_stage); 0 = not armed. */
    Cycle armed_crash_at_ = 0;

    std::unordered_map<Addr, LineData> image_;
    PersistSummary summary_;

    void process(const probe::Event &e);
    void audit();
    /** Scan the current machine state into a summary. */
    PersistSummary scanSummary() const;
    /** The persist-domain bytes of @p line right now. */
    std::uint64_t persistLineFp(Addr line) const;
    std::vector<Obligation> &completedFor(unsigned hart);
    void fail(const char *invariant, std::string detail);
    static std::uint64_t durableKey(TxnId txn, std::uint64_t fp);
};

/**
 * The crash trigger: a pre-phase component registered *before* the DRAM
 * controller so the image freezes at the start of the crash cycle. It
 * never self-schedules (wake_never): skipped cycles are provably idle,
 * so freezing at the next executed cycle yields the identical image —
 * which is what keeps the crash knob cycle-neutral too.
 */
class CrashFreezer : public Ticked
{
  public:
    CrashFreezer(std::string name, DurabilityOracle &oracle)
        : Ticked(std::move(name)), oracle_(oracle)
    {
    }

    void tick() override { oracle_.freezeTick(); }
    Cycle nextWake() const override { return wake_never; }

  private:
    DurabilityOracle &oracle_;
};

} // namespace skipit::verify

#endif // SKIPIT_VERIFY_DURABILITY_HH
