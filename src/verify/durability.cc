#include "durability.hh"

#include <cstring>
#include <utility>

#include "dram/dram.hh"
#include "l1/data_cache.hh"
#include "l2/directory.hh"
#include "l2/cache.hh"
#include "sim/logging.hh"

namespace skipit::verify {

DurabilityOracle::DurabilityOracle(std::string name, Simulator &sim,
                                   const DurabilityConfig &cfg)
    : Ticked(std::move(name)), sim_(sim), cfg_(cfg)
{
}

void
DurabilityOracle::addL1(const DataCache &l1)
{
    l1s_.push_back(&l1);
}

void
DurabilityOracle::onEvent(const probe::Event &e)
{
    if (!cfg_.enabled || summary_.crashed)
        return;
    pending_.push_back(e);
}

std::uint64_t
DurabilityOracle::durableKey(TxnId txn, std::uint64_t fp)
{
    return probe::fingerprint(0, txn, fp);
}

std::uint64_t
DurabilityOracle::persistLineFp(Addr line) const
{
    SKIPIT_ASSERT(dram_ != nullptr, "durability oracle without a DRAM");
    return lineFingerprint(dram_->persistLine(line));
}

std::vector<DurabilityOracle::Obligation> &
DurabilityOracle::completedFor(unsigned hart)
{
    if (completed_.size() <= hart)
        completed_.resize(hart + 1);
    return completed_[hart];
}

void
DurabilityOracle::tick()
{
    if (!cfg_.enabled) {
        pending_.clear();
        return;
    }
    if (summary_.crashed) {
        // The power is off: events from post-crash execution never
        // happened as far as the audit is concerned.
        pending_.clear();
        return;
    }
    for (const probe::Event &e : pending_)
        process(e);
    pending_.clear();
}

void
DurabilityOracle::process(const probe::Event &e)
{
    // Event-triggered crash: arm for the next cycle boundary, so the
    // frozen image includes everything up to and including the cycle the
    // trigger event happened in.
    if (!cfg_.crash_on_stage.empty() && armed_crash_at_ == 0 &&
        cfg_.crash_on_stage == e.stage) {
        armed_crash_at_ = e.cycle + 1;
    }

    if (std::strcmp(e.stage, "persist.wb.data") == 0) {
        // A data-carrying RootRelease left the FSHR: record the promise.
        Obligation ob;
        ob.line = e.addr;
        ob.fp = e.arg;
        ob.capture_seq = next_seq_;
        wb_data_[e.txn] = ob;
        return;
    }

    if (std::strcmp(e.stage, "dram.write") == 0) {
        durable_.insert(durableKey(e.txn, e.arg));
        line_last_write_[e.addr] = LastWrite{next_seq_++, e.arg};
        return;
    }

    if (std::strcmp(e.stage, "persist.complete") == 0) {
        auto it = wb_data_.find(e.txn);
        if (it == wb_data_.end())
            return; // data-less completion: nothing promised
        Obligation ob = it->second;
        wb_data_.erase(it);
        const CboKind kind = static_cast<CboKind>(e.arg & 3);
        if (kind == CboKind::Inval)
            return; // contract: CBO.INVAL discards dirty data
        // The promise is discharged by the exact captured data landing,
        // or by any coherence-newer write of the line (seq >= capture):
        // a racing store can merge into the writeback below the FSHR,
        // and the newer line subsumes the captured stores.
        auto lw = line_last_write_.find(ob.line);
        const bool newer_line_write = lw != line_last_write_.end() &&
                                      lw->second.seq >= ob.capture_seq;
        if (durable_.find(durableKey(e.txn, ob.fp)) == durable_.end() &&
            !newer_line_write) {
            fail("completion-durability",
                 detail::concat("txn ", e.txn, " completed cbo on 0x",
                                std::hex, ob.line,
                                " but its data (fp ", ob.fp,
                                ") never reached the persist domain"));
            return;
        }
        // Track the claim only while its write is the line's latest; a
        // newer write means newer data legitimately superseded it.
        if (lw == line_last_write_.end() || lw->second.fp != ob.fp)
            return;
        ob.wb_seq = lw->second.seq;
        const unsigned lane =
            static_cast<unsigned>(e.txn >> probe::Hub::txn_lane_shift);
        if (lane == 0)
            return; // not a hart-issued transaction
        completedFor(lane - 1).push_back(ob);
        return;
    }

    if (std::strcmp(e.stage, "persist.fence") == 0) {
        // The hart has observed every older CBO complete: its completed
        // obligations become sealed durability claims.
        const unsigned hart = static_cast<unsigned>(e.arg);
        if (fences_.size() <= hart)
            fences_.resize(hart + 1, 0);
        ++fences_[hart];
        std::vector<Obligation> &done = completedFor(hart);
        for (const Obligation &ob : done) {
            auto it = sealed_.find(ob.line);
            if (it == sealed_.end() || it->second.wb_seq < ob.wb_seq)
                sealed_[ob.line] = ob;
        }
        done.clear();
        return;
    }

    if (std::strcmp(e.stage, "l1.skipit") == 0) {
        // Skip-drop soundness (§6.1): the elided writeback's bytes must
        // already be in the persist domain.
        const std::uint64_t img = persistLineFp(e.addr);
        if (img != e.arg) {
            fail("skip-drop",
                 detail::concat("skip bit elided a writeback of 0x",
                                std::hex, e.addr, " (txn ", std::dec,
                                e.txn, ") whose data (fp ", e.arg,
                                ") differs from the persist domain (fp ",
                                img, ")"));
        }
        return;
    }

    if (std::strcmp(e.stage, "persist.skipset") == 0) {
        const std::uint64_t img = persistLineFp(e.addr);
        if (img != e.arg) {
            fail("skip-set",
                 detail::concat("skip bit set on 0x", std::hex, e.addr,
                                " (txn ", std::dec, e.txn,
                                ") whose data (fp ", e.arg,
                                ") differs from the persist domain (fp ",
                                img, ")"));
        }
        return;
    }

    if (std::strcmp(e.stage, "l2.llcskip") == 0) {
        const std::uint64_t img = persistLineFp(e.addr);
        if (img != e.arg) {
            fail("llc-skip",
                 detail::concat("LLC skipped the DRAM write of 0x",
                                std::hex, e.addr, " (txn ", std::dec,
                                e.txn, ") whose data (fp ", e.arg,
                                ") differs from the persist domain (fp ",
                                img, ")"));
        }
        return;
    }
}

void
DurabilityOracle::freezeTick()
{
    if (!cfg_.enabled || summary_.crashed)
        return;
    Cycle at = cfg_.crash_at;
    if (armed_crash_at_ != 0 && (at == 0 || armed_crash_at_ < at))
        at = armed_crash_at_;
    if (at == 0 || sim_.now() < at)
        return;
    crashNow();
}

void
DurabilityOracle::crashNow()
{
    if (!cfg_.enabled || summary_.crashed)
        return;
    SKIPIT_ASSERT(dram_ != nullptr, "durability oracle without a DRAM");
    // Events already delivered this cycle belong to pre-crash execution
    // only when the freeze runs from the pre phase, where pending_ is
    // always empty (the previous post tick drained it). When crashNow()
    // is called from a runner between cycles, drain first.
    for (const probe::Event &e : pending_)
        process(e);
    pending_.clear();
    image_ = dram_->persistImage();
    summary_ = scanSummary();
    summary_.crashed = true;
    summary_.crash_cycle = sim_.now();
    summary_.image_lines = image_.size();
    audit();
}

PersistSummary
DurabilityOracle::scanSummary() const
{
    PersistSummary s;
    s.image_lines = dram_->persistImage().size();
    s.pending_writes = dram_->pendingWrites();
    s.sealed_claims = sealed_.size();
    for (const DataCache *l1 : l1s_) {
        const L1Arrays &arrays = l1->arrays();
        for (unsigned set = 0; set < arrays.sets(); ++set) {
            for (unsigned way = 0; way < arrays.ways(); ++way) {
                const L1Meta &meta = arrays.meta(set, way);
                if (meta.valid() && meta.dirty)
                    ++s.dirty_l1_lines;
            }
        }
        for (const Fshr &f : l1->fshrs()) {
            if (f.busy())
                ++s.busy_fshrs;
        }
        s.queued_cbos += l1->flushQueue().size();
    }
    for (const L2Cache *l2 : l2s_) {
        const Directory &dir = l2->directory();
        for (unsigned set = 0; set < dir.sets(); ++set) {
            for (unsigned way = 0; way < dir.ways(); ++way) {
                const DirEntry &e = dir.entry(set, way);
                if (e.valid && e.dirty)
                    ++s.dirty_l2_lines;
            }
        }
    }
    return s;
}

void
DurabilityOracle::audit()
{
    // Lines with an accepted-but-unissued write: the queued data is in
    // the image and legitimately supersedes older sealed claims.
    std::unordered_set<Addr> queued;
    for (Addr line : dram_->queuedWriteLines())
        queued.insert(line);

    for (const auto &[line, ob] : sealed_) {
        auto lw = line_last_write_.find(line);
        if (lw != line_last_write_.end() && lw->second.seq != ob.wb_seq)
            continue; // a later issued write superseded the claim
        if (queued.count(line) != 0)
            continue; // a later accepted write supersedes it too
        auto img = image_.find(line);
        const std::uint64_t img_fp =
            img == image_.end() ? lineFingerprint(LineData{})
                                : lineFingerprint(img->second);
        if (img_fp != ob.fp) {
            fail("durability",
                 detail::concat(
                     "crash @ cycle ", summary_.crash_cycle,
                     ": hart-observed flush of 0x", std::hex, line,
                     " (fp ", ob.fp, ") missing from the post-crash ",
                     "image (fp ", img_fp, ")"));
        }
    }
}

void
DurabilityOracle::reportSummary(std::ostream &os) const
{
    const PersistSummary s = summary_.crashed ? summary_ : scanSummary();
    os << "persist domain @ cycle "
       << (s.crashed ? s.crash_cycle : sim_.now())
       << (s.crashed ? " (crashed)" : " (live)") << ":\n"
       << "  durable lines: " << s.image_lines << " (incl. "
       << s.pending_writes << " accepted queued write(s))\n"
       << "  volatile dirty lines: " << s.dirty_l1_lines << " in L1, "
       << s.dirty_l2_lines << " in L2 (lost on crash)\n"
       << "  in-flight CBOs: " << s.busy_fshrs << " FSHR(s), "
       << s.queued_cbos << " queued\n"
       << "  fence-observed durability claims: " << s.sealed_claims
       << "\n";
}

void
DurabilityOracle::report(std::ostream &os) const
{
    os << "durability oracle: "
       << (summary_.crashed
               ? "crashed @ cycle " + std::to_string(summary_.crash_cycle)
               : std::string("no crash"))
       << ", " << violations_.size() << " violation(s)\n";
    for (const Violation &v : violations_) {
        os << "  cycle " << v.cycle << " [" << v.invariant << "] "
           << v.detail << "\n";
    }
}

void
DurabilityOracle::fail(const char *invariant, std::string detail)
{
    if (cfg_.fatal) {
        SKIPIT_PANIC("durability invariant '", invariant,
                     "' violated @ cycle ", sim_.now(), ": ", detail);
    }
    if (violations_.size() < cfg_.max_violations)
        violations_.push_back({sim_.now(), invariant, std::move(detail)});
}

} // namespace skipit::verify
