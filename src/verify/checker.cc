#include "checker.hh"

#include <cstring>
#include <utility>

#include "coherence/state.hh"
#include "dram/dram.hh"
#include "l1/data_cache.hh"
#include "l2/directory.hh"
#include "l2/cache.hh"
#include "sim/logging.hh"

namespace skipit::verify {

namespace {

const char *
fshrStateName(Fshr::State s)
{
    switch (s) {
      case Fshr::State::Invalid:
        return "invalid";
      case Fshr::State::MetaWrite:
        return "meta_write";
      case Fshr::State::FillBuffer:
        return "fill_buffer";
      case Fshr::State::RootReleaseData:
        return "root_release_data";
      case Fshr::State::RootRelease:
        return "root_release";
      case Fshr::State::RootReleaseAck:
        return "root_release_ack";
    }
    return "?";
}

/**
 * Per-executed-cycle transition legality (Figure 7). Self loops are always
 * legal (an FSHR may wait in a state). RootReleaseAck may complete and be
 * reallocated within one cycle, so it also steps to the two entry states.
 */
bool
fshrTransitionLegal(Fshr::State from, Fshr::State to)
{
    using S = Fshr::State;
    if (from == to)
        return true;
    switch (from) {
      case S::Invalid:
        return to == S::MetaWrite || to == S::RootRelease;
      case S::MetaWrite:
        return to == S::FillBuffer || to == S::RootRelease;
      case S::FillBuffer:
        return to == S::RootReleaseData;
      case S::RootReleaseData:
      case S::RootRelease:
        return to == S::RootReleaseAck;
      case S::RootReleaseAck:
        return to == S::Invalid || to == S::MetaWrite ||
               to == S::RootRelease;
    }
    return false;
}

} // namespace

CoherenceChecker::CoherenceChecker(std::string name, Simulator &sim,
                                   const CheckerConfig &cfg)
    : Ticked(std::move(name)), sim_(sim), cfg_(cfg)
{
}

void
CoherenceChecker::addL1(const DataCache &l1)
{
    // Index order must match AgentId order: l1s_[id] is the cache whose
    // TileLink source id is @p id (the SoC adds them in core order).
    l1s_.push_back(&l1);
    prev_fshr_.emplace_back(l1.fshrs().size(), Fshr::State::Invalid);
}

void
CoherenceChecker::tick()
{
    if (!cfg_.enabled)
        return;
    ++checks_run_;
    for (std::size_t i = 0; i < l1s_.size(); ++i) {
        checkL1Structural(i);
        checkFshrFsm(i);
    }
    checkSliceRouting(false);
    checkGlobalFlushCounter();
    if (cfg_.check_values && cfg_.value_interval > 0 &&
        checks_run_ % cfg_.value_interval == 0) {
        for (std::size_t i = 0; i < l1s_.size(); ++i)
            checkValues(i);
        checkSliceRouting(true);
    }
    snapshotFshrStates();
}

std::size_t
CoherenceChecker::checkNow()
{
    if (!cfg_.enabled)
        return 0;
    const std::size_t before = violations_.size();
    for (std::size_t i = 0; i < l1s_.size(); ++i) {
        checkL1Structural(i);
        checkFshrFsm(i);
    }
    checkSliceRouting(true);
    checkGlobalFlushCounter();
    if (cfg_.check_values) {
        for (std::size_t i = 0; i < l1s_.size(); ++i)
            checkValues(i);
        checkL2DramSweep();
    }
    snapshotFshrStates();
    return violations_.size() - before;
}

void
CoherenceChecker::escalate(std::ostream &os)
{
    if (!cfg_.enabled)
        return;
    std::vector<Violation> found;
    collect_ = &found;
    checkNow();
    collect_ = nullptr;
    if (found.empty()) {
        os << "CHECKER: full invariant sweep clean @ cycle " << sim_.now()
           << " (stall is a liveness problem, not a coherence one)\n";
        return;
    }
    os << "CHECKER: " << found.size() << " invariant violation(s) @ cycle "
       << sim_.now() << ":\n";
    for (const Violation &v : found) {
        os << "  [" << v.invariant << "] " << v.detail << "\n";
        if (violations_.size() < cfg_.max_violations)
            violations_.push_back(v);
    }
}

void
CoherenceChecker::report(std::ostream &os) const
{
    os << "checker: " << checks_run_ << " cycles checked, "
       << violations_.size() << " violation(s)\n";
    for (const Violation &v : violations_) {
        os << "  cycle " << v.cycle << " [" << v.invariant << "] "
           << v.detail << "\n";
    }
}

void
CoherenceChecker::fail(const char *invariant, std::string detail)
{
    if (collect_ != nullptr) {
        if (collect_->size() < cfg_.max_violations)
            collect_->push_back({sim_.now(), invariant, std::move(detail)});
        return;
    }
    if (cfg_.fatal) {
        SKIPIT_PANIC("coherence invariant '", invariant,
                     "' violated @ cycle ", sim_.now(), ": ", detail);
    }
    if (violations_.size() < cfg_.max_violations)
        violations_.push_back({sim_.now(), invariant, std::move(detail)});
}

const L2Cache *
CoherenceChecker::homeL2(Addr line) const
{
    if (l2s_.empty())
        return nullptr;
    // The slices share one indexing policy (modulo or hashed); ask it
    // where the line homes. l2s_ is registered in slice order.
    const unsigned s = l2s_.front()->indexPolicy().sliceOf(lineAlign(line));
    return s < l2s_.size() ? l2s_[s] : nullptr;
}

bool
CoherenceChecker::lineQuiet(Addr line) const
{
    for (const DataCache *l1 : l1s_) {
        if (l1->lineBusy(line))
            return false;
    }
    // Every slice, not just the home one: a misrouted transaction (the
    // very fault slice-routing exists to catch) is still in-flight state.
    for (const L2Cache *l2 : l2s_) {
        if (l2->lineBusy(line))
            return false;
    }
    return true;
}

void
CoherenceChecker::checkL1Structural(std::size_t idx)
{
    const DataCache &dc = *l1s_[idx];
    const L1Arrays &arrays = dc.arrays();
    const AgentId id = static_cast<AgentId>(idx);

    for (unsigned set = 0; set < arrays.sets(); ++set) {
        for (unsigned way = 0; way < arrays.ways(); ++way) {
            const L1Meta &meta = arrays.meta(set, way);
            if (!meta.valid())
                continue;
            const Addr line = arrays.addrOf(set, way);

            // swmr: only a Trunk may hold dirty data.
            if (meta.dirty && meta.state != ClientState::Trunk) {
                fail("swmr", detail::concat(
                         "l1[", idx, "] holds 0x", std::hex, line,
                         " dirty in state ", toString(meta.state)));
            }
            // swmr: a Trunk is the sole holder across all L1s.
            if (meta.state == ClientState::Trunk) {
                for (std::size_t j = 0; j < l1s_.size(); ++j) {
                    if (j == idx)
                        continue;
                    const ClientState other = l1s_[j]->lineState(line);
                    if (other != ClientState::Nothing) {
                        fail("swmr", detail::concat(
                                 "l1[", idx, "] is Trunk of 0x", std::hex,
                                 line, " while l1[", std::dec, j,
                                 "] holds it as ", toString(other)));
                    }
                }
            }

            // inclusivity: the home slice's directory records (at least)
            // what the L1 actually holds. The reverse is legal in flight.
            if (const L2Cache *l2 = homeL2(line)) {
                const Directory &dir = l2->directory();
                const int l2_way = dir.findWay(line);
                if (l2_way < 0) {
                    fail("inclusivity", detail::concat(
                             "l1[", idx, "] holds 0x", std::hex, line,
                             " (", toString(meta.state),
                             ") absent from L2 slice ", std::dec,
                             l2->sliceIndex(), "'s directory"));
                    continue;
                }
                const DirEntry &e = dir.entry(
                    dir.setOf(line), static_cast<unsigned>(l2_way));
                if (!e.heldBy(id)) {
                    fail("inclusivity", detail::concat(
                             "l1[", idx, "] holds 0x", std::hex, line,
                             " (", toString(meta.state),
                             ") but the directory does not record it"));
                } else if (meta.state == ClientState::Trunk &&
                           e.trunk != id) {
                    fail("inclusivity", detail::concat(
                             "l1[", idx, "] is Trunk of 0x", std::hex,
                             line, " but the directory trunk is agent ",
                             std::dec, e.trunk));
                }
            }
        }
    }

    // flushq-meta: queue snapshots agree with the array (§5.4's
    // probe_invalidate keeps them coherent through downgrades).
    for (const FlushQueueEntry &e : dc.flushQueue()) {
        if (e.is_dirty && !e.is_hit) {
            fail("flushq-meta", detail::concat(
                     "l1[", idx, "] flush-queue entry 0x", std::hex,
                     e.addr, " claims dirty data without a hit"));
        }
        if (!e.is_hit)
            continue;
        const int way = arrays.findWay(e.addr);
        if (way < 0) {
            fail("flushq-meta", detail::concat(
                     "l1[", idx, "] flush-queue hit entry 0x", std::hex,
                     e.addr, " but the line is no longer resident"));
            continue;
        }
        const L1Meta &meta = arrays.meta(arrays.setOf(e.addr),
                                         static_cast<unsigned>(way));
        // probe_invalidate clears the queued snapshot the moment a probe
        // claims the line, but the array bit is only dropped when the
        // probe responds (§5.4) — tolerate that one-directional window
        // while the probe unit is mid-flight on this line.
        const ProbeUnit &pu = dc.probeUnit();
        const bool probe_window =
            pu.busy() && pu.line == e.addr && meta.dirty && !e.is_dirty;
        if (meta.dirty != e.is_dirty && !probe_window) {
            fail("flushq-meta", detail::concat(
                     "l1[", idx, "] flush-queue entry 0x", std::hex,
                     e.addr, " snapshotted dirty=", e.is_dirty,
                     " but the array says dirty=", meta.dirty));
        }
    }

    // probe-invalidate: once the probe passed its invalidate-queue stage,
    // every queued entry on the probed line must reflect the downgrade.
    const ProbeUnit &probe = dc.probeUnit();
    if (probe.state == ProbeUnit::State::CheckConflicts ||
        probe.state == ProbeUnit::State::Respond) {
        for (const FlushQueueEntry &e : dc.flushQueue()) {
            if (e.addr != probe.line)
                continue;
            if (e.is_dirty) {
                fail("probe-invalidate", detail::concat(
                         "l1[", idx, "] probe on 0x", std::hex,
                         probe.line, " passed invalidate-queue but a "
                         "queued entry still claims dirty data"));
            }
            if (probe.cap == Cap::toN && e.is_hit) {
                fail("probe-invalidate", detail::concat(
                         "l1[", idx, "] toN probe on 0x", std::hex,
                         probe.line, " passed invalidate-queue but a "
                         "queued entry still claims a hit"));
            }
        }
    }

    // flush-counter conservation: counter == queued + in-FSHR CBO.X.
    unsigned busy_fshrs = 0;
    for (const Fshr &f : dc.fshrs())
        busy_fshrs += f.busy() ? 1 : 0;
    const unsigned expected =
        static_cast<unsigned>(dc.flushQueue().size()) + busy_fshrs;
    if (dc.flushCounter() != expected) {
        fail("flush-counter", detail::concat(
                 "l1[", idx, "] flush counter ", dc.flushCounter(),
                 " != ", dc.flushQueue().size(), " queued + ", busy_fshrs,
                 " in FSHRs"));
    }
}

void
CoherenceChecker::checkFshrFsm(std::size_t idx)
{
    const std::vector<Fshr> &fshrs = l1s_[idx]->fshrs();
    std::vector<Fshr::State> &prev = prev_fshr_[idx];
    for (std::size_t i = 0; i < fshrs.size(); ++i) {
        const Fshr::State from = prev[i];
        const Fshr::State to = fshrs[i].state;
        if (!fshrTransitionLegal(from, to)) {
            fail("fshr-fsm", detail::concat(
                     "l1[", idx, "] fshr", i, " took illegal transition ",
                     fshrStateName(from), " -> ", fshrStateName(to),
                     " (line 0x", std::hex, fshrs[i].req.addr, ")"));
        }
    }
}

void
CoherenceChecker::snapshotFshrStates()
{
    for (std::size_t idx = 0; idx < l1s_.size(); ++idx) {
        const std::vector<Fshr> &fshrs = l1s_[idx]->fshrs();
        for (std::size_t i = 0; i < fshrs.size(); ++i)
            prev_fshr_[idx][i] = fshrs[i].state;
    }
}

void
CoherenceChecker::checkValues(std::size_t idx)
{
    if (l2s_.empty())
        return;
    const DataCache &dc = *l1s_[idx];
    const L1Arrays &arrays = dc.arrays();

    for (unsigned set = 0; set < arrays.sets(); ++set) {
        for (unsigned way = 0; way < arrays.ways(); ++way) {
            const L1Meta &meta = arrays.meta(set, way);
            // Dirty lines are legitimately ahead of the levels below;
            // busy lines are mid-transaction.
            if (!meta.valid() || meta.dirty)
                continue;
            const Addr line = arrays.addrOf(set, way);
            if (!lineQuiet(line))
                continue;
            const L2Cache &l2 = *homeL2(line);
            const Directory &dir = l2.directory();
            const int l2_way = dir.findWay(line);
            if (l2_way < 0)
                continue; // inclusivity already reported it
            const unsigned l2_set = dir.setOf(line);
            const DirEntry &e =
                dir.entry(l2_set, static_cast<unsigned>(l2_way));

            // value-coherence: a clean quiet L1 line is a byte-exact copy
            // of the L2's version (however either got it). A tag-only
            // entry (exclusive state policy) has no L2 bytes; the clean
            // line's ground truth is DRAM instead.
            const LineData &l1_bytes = arrays.data(set, way);
            if (e.data_resident) {
                const LineData &l2_bytes =
                    l2.store().read(l2_set, static_cast<unsigned>(l2_way));
                if (std::memcmp(l1_bytes.data(), l2_bytes.data(),
                                line_bytes) != 0) {
                    fail("value-coherence", detail::concat(
                             "l1[", idx, "] clean copy of 0x", std::hex,
                             line, " differs from the L2 copy"));
                }
            } else if (dram_ != nullptr) {
                const LineData dram_bytes = dram_->peekLine(line);
                if (std::memcmp(l1_bytes.data(), dram_bytes.data(),
                                line_bytes) != 0) {
                    fail("value-coherence", detail::concat(
                             "l1[", idx, "] clean copy of 0x", std::hex,
                             line, " differs from DRAM (L2 entry is "
                             "tag-only)"));
                }
            }

            // skip-soundness (§6): skip set on a clean line means no
            // dirty copy exists below — the negation of L2's dirty bit.
            if (cfg_.check_skip && meta.skip && e.dirty) {
                fail("skip-soundness", detail::concat(
                         "l1[", idx, "] has skip set on clean 0x",
                         std::hex, line, " but the L2 copy is dirty"));
            }
        }
    }
}

void
CoherenceChecker::checkL2DramSweep()
{
    // A clean quiet L2 line must match the backing store byte for byte:
    // it was either filled from DRAM or written back to it, and the
    // llc_skip / Inval-discard shortcuts are only sound when this holds.
    // Too wide to run per cycle; checkNow()-only. Assumes no external
    // pokeLine() of resident lines (DMA-style tests poke then CBO.INVAL).
    if (l2s_.empty() || dram_ == nullptr)
        return;
    for (const L2Cache *l2 : l2s_) {
        const Directory &dir = l2->directory();
        const bool always_resident =
            l2->statePolicy().dataAlwaysResident();
        for (unsigned set = 0; set < dir.sets(); ++set) {
            for (unsigned way = 0; way < dir.ways(); ++way) {
                const DirEntry &e = dir.entry(set, way);
                if (!e.valid)
                    continue;
                const Addr line = dir.addrOf(set, way);

                // data-residency: the state policy's residency contract.
                // Inclusive keeps every line's bytes; under any policy a
                // dirty line must be backed by real store bytes.
                if (always_resident && !e.data_resident) {
                    fail("data-residency", detail::concat(
                             "L2 slice ", l2->sliceIndex(),
                             " entry 0x", std::hex, line,
                             " is tag-only under an always-resident "
                             "state policy"));
                }
                if (e.dirty && !e.data_resident) {
                    fail("data-residency", detail::concat(
                             "L2 slice ", l2->sliceIndex(),
                             " entry 0x", std::hex, line,
                             " is dirty but its bytes are not resident"));
                }

                if (e.dirty || !e.data_resident)
                    continue;
                if (!lineQuiet(line))
                    continue;
                const LineData dram_bytes = dram_->peekLine(line);
                const LineData &l2_bytes = l2->store().read(set, way);
                if (std::memcmp(l2_bytes.data(), dram_bytes.data(),
                                line_bytes) != 0) {
                    fail("value-coherence", detail::concat(
                             "L2 slice ", l2->sliceIndex(),
                             " clean copy of 0x", std::hex, line,
                             " differs from DRAM"));
                }
            }
        }
    }
}

void
CoherenceChecker::checkSliceRouting(bool deep)
{
    for (const L2Cache *l2 : l2s_) {
        if (const auto line = l2->firstForeignLine(deep)) {
            fail("slice-routing", detail::concat(
                     "L2 slice ", l2->sliceIndex(),
                     deep ? " holds" : " is working on", " line 0x",
                     std::hex, *line, " which homes to slice ", std::dec,
                     l2->indexPolicy().sliceOf(lineAlign(*line))));
        }
    }
}

void
CoherenceChecker::checkGlobalFlushCounter()
{
    if (l1s_.empty())
        return;
    std::uint64_t counters = 0;
    std::uint64_t expected = 0;
    for (const DataCache *l1 : l1s_) {
        counters += l1->flushCounter();
        expected += l1->flushQueue().size();
        for (const Fshr &f : l1->fshrs())
            expected += f.busy() ? 1 : 0;
    }
    if (counters != expected) {
        fail("flush-counter-global", detail::concat(
                 "summed flush counters ", counters, " != ", expected,
                 " total queued + in-FSHR CBO.X across all L1s"));
    }
}

} // namespace skipit::verify
