/**
 * @file
 * Log2-bucketed latency histogram with exact percentiles.
 *
 * Stage latencies span four orders of magnitude (a 3-cycle L1 hit vs a
 * ~7000-cycle 32 KiB flush), so buckets double in width: bucket 0 holds
 * values < 1, bucket i (i >= 1) holds [2^(i-1), 2^i). The raw samples are
 * also kept in a Distribution so summaries can report exact medians and
 * tail percentiles, the way the paper reports its microbenchmarks (§7.1).
 */

#ifndef SKIPIT_SIM_HISTOGRAM_HH
#define SKIPIT_SIM_HISTOGRAM_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "stats.hh"

namespace skipit {

/** A log2-bucketed histogram over non-negative samples. */
class Histogram
{
  public:
    void add(double v);

    std::size_t count() const { return dist_.count(); }
    bool empty() const { return dist_.empty(); }

    /** Bucket counts; bucket 0 is v < 1, bucket i is [2^(i-1), 2^i). */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /** Inclusive lower bound of @p bucket. */
    static double bucketLow(std::size_t bucket);
    /** Exclusive upper bound of @p bucket. */
    static double bucketHigh(std::size_t bucket);

    /// @name Exact summaries (NaN when empty, like Distribution)
    /// @{
    double mean() const;
    double median() const { return percentile(50.0); }
    double percentile(double p) const { return dist_.percentile(p); }
    double min() const;
    double max() const;
    /// @}

    const Distribution &samples() const { return dist_; }

    /** One-line summary: count, mean, p50, p99, max. */
    std::string summary() const;

    /** Multi-line rendering with a bar per bucket. */
    void renderText(std::ostream &os, const std::string &name) const;

    void clear();

  private:
    std::vector<std::uint64_t> buckets_;
    Distribution dist_;

    static std::size_t bucketFor(double v);
};

} // namespace skipit

#endif // SKIPIT_SIM_HISTOGRAM_HH
