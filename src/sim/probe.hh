/**
 * @file
 * Transaction-level observability: the probe hub and its sink interface.
 *
 * Every memory operation is assigned a transaction id (TxnId) at the LSU;
 * components along its path (LSU, flush queue, FSHRs, TileLink channels,
 * L2 MSHRs, DRAM) report timestamped lifecycle events to the Simulator's
 * ProbeHub. Sinks (TxnTracer, tests) subscribe to the hub; when no sink is
 * attached every hook costs exactly one predictable branch, so calibrated
 * cycle counts are unaffected.
 *
 * The hub also defines the Inspectable interface used by the stall
 * Watchdog: components enumerate their busy resources (FSHRs, MSHRs,
 * flush-queue entries) as fingerprinted snapshots, and the watchdog flags
 * any resource whose fingerprint stops changing.
 */

#ifndef SKIPIT_SIM_PROBE_HH
#define SKIPIT_SIM_PROBE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace skipit::probe {

/** One lifecycle event of one transaction. */
struct Event
{
    /** How the event relates to a stage's duration. */
    enum class Kind : std::uint8_t
    {
        Begin,   //!< the transaction entered @ref stage
        End,     //!< the transaction left @ref stage (pairs with Begin)
        Instant, //!< a point event (state transition, drop, nack)
        Span,    //!< a self-contained interval of @ref dur cycles
    };

    Cycle cycle = 0;         //!< when the event happened
    Cycle dur = 0;           //!< Span only: interval length in cycles
    TxnId txn = 0;           //!< transaction this event belongs to
    Kind kind = Kind::Instant;
    const char *stage = "";  //!< latency-histogram key, e.g. "l1.fshr"
    std::string track;       //!< rendering row, e.g. "core0.l1d.fshr3"
    std::string detail;      //!< human-readable label / arguments
    /** Machine-readable payload, consumed by the durability oracle:
     *  the line address the event concerns (0 when not applicable). */
    Addr addr = 0;
    /** Machine-readable payload: event-specific argument — typically a
     *  line-data fingerprint for persist.* and dram.write events. */
    std::uint64_t arg = 0;
};

/** Receives every event emitted while attached to a hub. */
class Sink
{
  public:
    virtual ~Sink() = default;
    virtual void onEvent(const Event &e) = 0;
};

/**
 * The per-simulator event hub. Components test active() (one branch) and
 * only build and emit events when a sink is listening. Transaction ids are
 * handed out unconditionally so that ids are stable whether or not anyone
 * is observing — attaching a tracer never changes simulated behaviour.
 *
 * Transaction ids are partitioned into allocation lanes so that the id an
 * allocator hands out depends only on that allocator's own history, never
 * on cross-component interleaving: id = (lane << txn_lane_shift) | count.
 * Each LSU allocates from its own lane, which is what lets the parallel
 * tick engine hand out ids concurrently and still match the serial engine
 * bit for bit (see docs/PARALLELISM.md).
 *
 * For the parallel engine the hub can also stage events: components that
 * tick concurrently write into per-component buffers (stageInto() installs
 * the calling thread's target) and the engine replays the buffers in
 * registration order at the cycle barrier, so attached sinks observe the
 * exact serial event stream.
 */
class Hub
{
  public:
    /** Allocation lanes: lane 0 (default) plus one per possible hart. */
    static constexpr unsigned txn_lanes = 65;
    /** Bit position of the lane field inside a TxnId. */
    static constexpr unsigned txn_lane_shift = 44;

    /** Is at least one sink attached? Hooks gate on this. */
    bool active() const { return !sinks_.empty(); }

    void attach(Sink &sink);
    void detach(Sink &sink);

    /** Allocate the next transaction id in @p lane (per-lane monotonic,
     *  never 0). Distinct lanes may allocate concurrently. */
    TxnId
    newTxn(unsigned lane = 0)
    {
        SKIPIT_ASSERT(lane < txn_lanes, "txn lane out of range: ", lane);
        const TxnId id = (static_cast<TxnId>(lane) << txn_lane_shift) |
                         ++lanes_[lane].count;
        last_txn_.store(id, std::memory_order_relaxed);
        return id;
    }

    /** Most recently allocated transaction id (0 when none yet). Under
     *  the parallel engine this is a best-effort diagnostic value. */
    TxnId lastTxn() const
    {
        return last_txn_.load(std::memory_order_relaxed);
    }

    void emit(const Event &e);

    /// @name Parallel-engine event staging
    ///
    /// The engine sizes one buffer per concurrently-ticked component,
    /// points each worker thread at the buffer of the component it is
    /// about to tick, and replays all buffers in component registration
    /// order at the barrier. Threads with no staging target installed
    /// (the serial engine, and the serial phases of the parallel one)
    /// dispatch straight to the sinks.
    /// @{

    /** Size the staging area; must not be called mid-cycle. */
    void enableStaging(std::size_t buffers);

    /** Route this thread's emits into staging buffer @p index. */
    void stageInto(std::size_t index);

    /** Stop staging on this thread; emits dispatch to sinks again. */
    static void unstage();

    /** Dispatch every staged event to the sinks, in buffer-index order,
     *  and clear the buffers. Call from one thread with no lane active. */
    void flushStaged();
    /// @}

    /// @name Emission helpers (only call when active())
    /// @{
    void begin(Cycle cycle, TxnId txn, const char *stage, std::string track,
               std::string detail = {});
    void end(Cycle cycle, TxnId txn, const char *stage, std::string track,
             std::string detail = {});
    void instant(Cycle cycle, TxnId txn, const char *stage,
                 std::string track, std::string detail = {});
    void span(Cycle cycle, Cycle dur, TxnId txn, const char *stage,
              std::string track, std::string detail = {});

    /** Payload-carrying variants: identical to the above but attach the
     *  line address and an event-specific argument (e.g. a line-data
     *  fingerprint) for machine consumers such as the durability oracle. */
    void end(Cycle cycle, TxnId txn, const char *stage, std::string track,
             std::string detail, Addr addr, std::uint64_t arg);
    void instant(Cycle cycle, TxnId txn, const char *stage,
                 std::string track, std::string detail, Addr addr,
                 std::uint64_t arg);
    void span(Cycle cycle, Cycle dur, TxnId txn, const char *stage,
              std::string track, std::string detail, Addr addr,
              std::uint64_t arg);
    /// @}

  private:
    /** One cacheline per lane: lanes allocate with zero false sharing. */
    struct alignas(64) TxnLane
    {
        TxnId count = 0;
    };

    std::vector<Sink *> sinks_;
    std::vector<TxnLane> lanes_{txn_lanes};
    std::atomic<TxnId> last_txn_{0};
    std::vector<std::vector<Event>> staged_;
};

/**
 * One busy resource as seen by the watchdog. The fingerprint must change
 * whenever the resource makes forward progress; equal fingerprints across
 * scans mean "no state advance".
 */
struct ResourceSnapshot
{
    std::string name;             //!< stable id, e.g. "core0.l1d.fshr2"
    std::uint64_t fingerprint = 0;
    TxnId txn = 0;                //!< transaction occupying the resource
    std::string describe;         //!< human-readable state summary
};

/** A component whose busy resources the watchdog can inspect. */
class Inspectable
{
  public:
    virtual ~Inspectable() = default;
    /** Append one snapshot per currently-busy resource. */
    virtual void snapshotResources(std::vector<ResourceSnapshot> &out)
        const = 0;
};

/** Order-dependent hash combine for resource fingerprints. */
constexpr std::uint64_t
fingerprint(std::uint64_t seed)
{
    return seed;
}

template <typename... Rest>
constexpr std::uint64_t
fingerprint(std::uint64_t seed, std::uint64_t v, Rest... rest)
{
    // FNV-1a style mixing: cheap, deterministic, order sensitive.
    seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
    return fingerprint(seed, static_cast<std::uint64_t>(rest)...);
}

} // namespace skipit::probe

#endif // SKIPIT_SIM_PROBE_HH
