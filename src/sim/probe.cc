#include "probe.hh"

#include <algorithm>

#include "logging.hh"

namespace skipit::probe {

void
Hub::attach(Sink &sink)
{
    SKIPIT_ASSERT(std::find(sinks_.begin(), sinks_.end(), &sink) ==
                      sinks_.end(),
                  "probe sink attached twice");
    sinks_.push_back(&sink);
}

void
Hub::detach(Sink &sink)
{
    sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), &sink),
                 sinks_.end());
}

namespace {

/** The calling thread's staging target; null outside the lane phase. */
thread_local std::vector<Event> *tl_stage = nullptr;

} // namespace

void
Hub::emit(const Event &e)
{
    if (tl_stage != nullptr) {
        tl_stage->push_back(e);
        return;
    }
    for (Sink *s : sinks_)
        s->onEvent(e);
}

void
Hub::enableStaging(std::size_t buffers)
{
    staged_.resize(buffers);
}

void
Hub::stageInto(std::size_t index)
{
    SKIPIT_ASSERT(index < staged_.size(),
                  "staging buffer out of range: ", index);
    tl_stage = &staged_[index];
}

void
Hub::unstage()
{
    tl_stage = nullptr;
}

void
Hub::flushStaged()
{
    SKIPIT_ASSERT(tl_stage == nullptr,
                  "flushStaged() while this thread is staging");
    for (std::vector<Event> &buf : staged_) {
        for (const Event &e : buf) {
            for (Sink *s : sinks_)
                s->onEvent(e);
        }
        buf.clear();
    }
}

void
Hub::begin(Cycle cycle, TxnId txn, const char *stage, std::string track,
           std::string detail)
{
    emit(Event{cycle, 0, txn, Event::Kind::Begin, stage, std::move(track),
               std::move(detail)});
}

void
Hub::end(Cycle cycle, TxnId txn, const char *stage, std::string track,
         std::string detail)
{
    emit(Event{cycle, 0, txn, Event::Kind::End, stage, std::move(track),
               std::move(detail)});
}

void
Hub::instant(Cycle cycle, TxnId txn, const char *stage, std::string track,
             std::string detail)
{
    emit(Event{cycle, 0, txn, Event::Kind::Instant, stage, std::move(track),
               std::move(detail)});
}

void
Hub::span(Cycle cycle, Cycle dur, TxnId txn, const char *stage,
          std::string track, std::string detail)
{
    emit(Event{cycle, dur, txn, Event::Kind::Span, stage, std::move(track),
               std::move(detail)});
}

void
Hub::end(Cycle cycle, TxnId txn, const char *stage, std::string track,
         std::string detail, Addr addr, std::uint64_t arg)
{
    emit(Event{cycle, 0, txn, Event::Kind::End, stage, std::move(track),
               std::move(detail), addr, arg});
}

void
Hub::instant(Cycle cycle, TxnId txn, const char *stage, std::string track,
             std::string detail, Addr addr, std::uint64_t arg)
{
    emit(Event{cycle, 0, txn, Event::Kind::Instant, stage, std::move(track),
               std::move(detail), addr, arg});
}

void
Hub::span(Cycle cycle, Cycle dur, TxnId txn, const char *stage,
          std::string track, std::string detail, Addr addr,
          std::uint64_t arg)
{
    emit(Event{cycle, dur, txn, Event::Kind::Span, stage, std::move(track),
               std::move(detail), addr, arg});
}

} // namespace skipit::probe
