#include "probe.hh"

#include <algorithm>

#include "logging.hh"

namespace skipit::probe {

void
Hub::attach(Sink &sink)
{
    SKIPIT_ASSERT(std::find(sinks_.begin(), sinks_.end(), &sink) ==
                      sinks_.end(),
                  "probe sink attached twice");
    sinks_.push_back(&sink);
}

void
Hub::detach(Sink &sink)
{
    sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), &sink),
                 sinks_.end());
}

void
Hub::emit(const Event &e)
{
    for (Sink *s : sinks_)
        s->onEvent(e);
}

void
Hub::begin(Cycle cycle, TxnId txn, const char *stage, std::string track,
           std::string detail)
{
    emit(Event{cycle, 0, txn, Event::Kind::Begin, stage, std::move(track),
               std::move(detail)});
}

void
Hub::end(Cycle cycle, TxnId txn, const char *stage, std::string track,
         std::string detail)
{
    emit(Event{cycle, 0, txn, Event::Kind::End, stage, std::move(track),
               std::move(detail)});
}

void
Hub::instant(Cycle cycle, TxnId txn, const char *stage, std::string track,
             std::string detail)
{
    emit(Event{cycle, 0, txn, Event::Kind::Instant, stage, std::move(track),
               std::move(detail)});
}

void
Hub::span(Cycle cycle, Cycle dur, TxnId txn, const char *stage,
          std::string track, std::string detail)
{
    emit(Event{cycle, dur, txn, Event::Kind::Span, stage, std::move(track),
               std::move(detail)});
}

} // namespace skipit::probe
