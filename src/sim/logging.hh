/**
 * @file
 * gem5-style diagnostic helpers.
 *
 * panic()  — an internal invariant was violated (a simulator bug); aborts.
 * fatal()  — the user supplied an impossible configuration; exits cleanly.
 * warn()   — something is suspicious but simulation can continue.
 * inform() — purely informational status output.
 */

#ifndef SKIPIT_SIM_LOGGING_HH
#define SKIPIT_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace skipit {

namespace detail {

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message: something that must never happen, happened. */
#define SKIPIT_PANIC(...)                                                    \
    ::skipit::detail::panicImpl(__FILE__, __LINE__,                          \
                                ::skipit::detail::concat(__VA_ARGS__))

/** Exit with a message: the user's configuration cannot be simulated. */
#define SKIPIT_FATAL(...)                                                    \
    ::skipit::detail::fatalImpl(__FILE__, __LINE__,                          \
                                ::skipit::detail::concat(__VA_ARGS__))

/** Assert a simulator invariant; panics with the message on failure. */
#define SKIPIT_ASSERT(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            SKIPIT_PANIC("assertion failed: " #cond " ", __VA_ARGS__);       \
        }                                                                    \
    } while (0)

template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace skipit

#endif // SKIPIT_SIM_LOGGING_HH
