/**
 * @file
 * gem5-style diagnostic helpers.
 *
 * panic()  — an internal invariant was violated (a simulator bug); aborts.
 * fatal()  — the user supplied an impossible configuration; exits cleanly.
 * warn()   — something is suspicious but simulation can continue.
 * inform() — purely informational status output.
 */

#ifndef SKIPIT_SIM_LOGGING_HH
#define SKIPIT_SIM_LOGGING_HH

#include <cstddef>
#include <functional>
#include <ostream>
#include <sstream>
#include <string>

namespace skipit {

/**
 * Register a callback that runs on the panic()/fatal() path, before the
 * process dies, so crashes leave diagnosable artifacts (current cycle,
 * active transaction, pending trace output) instead of truncated logs.
 *
 * The registry is thread-local: parallel sweep workers each own a full
 * Simulator/SoC stack, and a crash on one thread must only report that
 * thread's context. Handlers run newest-first and must not allocate
 * simulated state or panic themselves (re-entrant panics skip handlers).
 *
 * @return an id for removeCrashHandler
 */
std::size_t addCrashHandler(std::function<void(std::ostream &)> fn);

/** Unregister a handler; safe to call with an already-removed id. */
void removeCrashHandler(std::size_t id);

/** RAII registration so components can't leak dangling handlers. */
class ScopedCrashHandler
{
  public:
    explicit ScopedCrashHandler(std::function<void(std::ostream &)> fn)
        : id_(addCrashHandler(std::move(fn)))
    {
    }
    ~ScopedCrashHandler() { removeCrashHandler(id_); }
    ScopedCrashHandler(const ScopedCrashHandler &) = delete;
    ScopedCrashHandler &operator=(const ScopedCrashHandler &) = delete;

  private:
    std::size_t id_;
};

namespace detail {

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message: something that must never happen, happened. */
#define SKIPIT_PANIC(...)                                                    \
    ::skipit::detail::panicImpl(__FILE__, __LINE__,                          \
                                ::skipit::detail::concat(__VA_ARGS__))

/** Exit with a message: the user's configuration cannot be simulated. */
#define SKIPIT_FATAL(...)                                                    \
    ::skipit::detail::fatalImpl(__FILE__, __LINE__,                          \
                                ::skipit::detail::concat(__VA_ARGS__))

/** Assert a simulator invariant; panics with the message on failure. */
#define SKIPIT_ASSERT(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            SKIPIT_PANIC("assertion failed: " #cond " ", __VA_ARGS__);       \
        }                                                                    \
    } while (0)

template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace skipit

#endif // SKIPIT_SIM_LOGGING_HH
