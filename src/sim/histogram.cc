#include "histogram.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "logging.hh"

namespace skipit {

std::size_t
Histogram::bucketFor(double v)
{
    if (!(v >= 1.0))
        return 0; // v < 1 and any NaN-ish input land in the first bucket
    return static_cast<std::size_t>(std::floor(std::log2(v))) + 1;
}

double
Histogram::bucketLow(std::size_t bucket)
{
    return bucket == 0 ? 0.0 : std::exp2(static_cast<double>(bucket - 1));
}

double
Histogram::bucketHigh(std::size_t bucket)
{
    return bucket == 0 ? 1.0 : std::exp2(static_cast<double>(bucket));
}

void
Histogram::add(double v)
{
    SKIPIT_ASSERT(v >= 0, "histogram samples must be non-negative");
    const std::size_t b = bucketFor(v);
    if (b >= buckets_.size())
        buckets_.resize(b + 1, 0);
    ++buckets_[b];
    dist_.add(v);
}

double
Histogram::mean() const
{
    if (dist_.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return dist_.mean();
}

double
Histogram::min() const
{
    if (dist_.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return dist_.min();
}

double
Histogram::max() const
{
    if (dist_.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return dist_.max();
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "count=" << count();
    if (!empty()) {
        os.precision(1);
        os << std::fixed << " mean=" << mean() << " p50=" << median()
           << " p99=" << percentile(99.0) << " max=" << max();
    }
    return os.str();
}

void
Histogram::renderText(std::ostream &os, const std::string &name) const
{
    os << name << ": " << summary() << "\n";
    if (empty())
        return;
    const std::uint64_t peak =
        *std::max_element(buckets_.begin(), buckets_.end());
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        if (buckets_[b] == 0)
            continue;
        constexpr int bar_width = 40;
        const int bar = static_cast<int>(
            (buckets_[b] * bar_width + peak - 1) / peak);
        os << "  [" << bucketLow(b) << ", " << bucketHigh(b) << "): "
           << std::string(static_cast<std::size_t>(bar), '#') << " "
           << buckets_[b] << "\n";
    }
}

void
Histogram::clear()
{
    buckets_.clear();
    dist_.clear();
}

} // namespace skipit
