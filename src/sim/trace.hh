/**
 * @file
 * gem5-DPRINTF-style event tracing.
 *
 * Channels are free-form strings ("l1", "l2", "flush", "lsu"). Enable
 * them programmatically or via the SKIPIT_TRACE environment variable
 * (comma-separated list, or "all"):
 *
 *   SKIPIT_TRACE=flush,l2 ./build/examples/quickstart
 *
 * Tracing is off by default and each call sites costs one boolean check
 * when disabled.
 */

#ifndef SKIPIT_SIM_TRACE_HH
#define SKIPIT_SIM_TRACE_HH

#include <ostream>
#include <sstream>
#include <string>

#include "types.hh"

namespace skipit::trace {

/** Is @p channel currently enabled? */
bool enabled(const std::string &channel);

/** Enable a channel (or "all") programmatically. */
void enable(const std::string &channel);

/** Disable every channel (also forgets SKIPIT_TRACE). */
void disableAll();

/** Redirect trace output (default std::cerr). Pass nullptr to reset. */
void setStream(std::ostream *os);

/** Emit one pre-formatted line; prefer the SKIPIT_TRACE_LOG macro. */
void emit(Cycle cycle, const std::string &channel,
          const std::string &message);

namespace detail {

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace skipit::trace

/** Trace an event on @p channel at @p cycle; arguments are streamed. */
#define SKIPIT_TRACE_LOG(cycle, channel, ...)                               \
    do {                                                                    \
        if (::skipit::trace::enabled(channel)) {                            \
            ::skipit::trace::emit(                                          \
                (cycle), (channel),                                         \
                ::skipit::trace::detail::concat(__VA_ARGS__));              \
        }                                                                   \
    } while (0)

#endif // SKIPIT_SIM_TRACE_HH
