/**
 * @file
 * gem5-DPRINTF-style event tracing.
 *
 * Channels are free-form strings ("l1", "l2", "flush", "lsu"). Enable
 * them programmatically or via the SKIPIT_TRACE environment variable
 * (comma-separated list, or "all"):
 *
 *   SKIPIT_TRACE=flush,l2 ./build/examples/quickstart
 *
 * Tracing is off by default. The SKIPIT_TRACE_LOG macro caches the
 * channel lookup in a per-call-site static Channel handle, so each call
 * site costs one relaxed atomic load when its channel is disabled — the
 * per-call string map lookup only happens once, at first execution.
 */

#ifndef SKIPIT_SIM_TRACE_HH
#define SKIPIT_SIM_TRACE_HH

#include <atomic>
#include <ostream>
#include <sstream>
#include <string>

#include "types.hh"

namespace skipit::trace {

/**
 * A cached handle to one channel's enable flag. Construction resolves the
 * channel name once; enabled() then reads the shared flag directly, so
 * later enable()/disableAll() calls are still observed. Handles stay
 * valid for the lifetime of the process.
 */
class Channel
{
  public:
    explicit Channel(const std::string &name);
    bool enabled() const { return flag_->load(std::memory_order_relaxed); }

  private:
    const std::atomic<bool> *flag_;
};

/** Is @p channel currently enabled? (uncached; prefer Channel in loops) */
bool enabled(const std::string &channel);

/** Enable a channel (or "all") programmatically. */
void enable(const std::string &channel);

/** Disable every channel (also forgets SKIPIT_TRACE). */
void disableAll();

/** Redirect trace output (default std::cerr). Pass nullptr to reset. */
void setStream(std::ostream *os);

/** Emit one pre-formatted line; prefer the SKIPIT_TRACE_LOG macro. */
void emit(Cycle cycle, const std::string &channel,
          const std::string &message);

namespace detail {

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace skipit::trace

/**
 * Trace an event on @p channel at @p cycle; arguments are streamed.
 * @p channel must evaluate to the same name on every execution of a given
 * call site: the lookup is cached in a function-local static handle.
 */
#define SKIPIT_TRACE_LOG(cycle, channel, ...)                               \
    do {                                                                    \
        static const ::skipit::trace::Channel skipit_trace_channel_{        \
            channel};                                                       \
        if (skipit_trace_channel_.enabled()) {                              \
            ::skipit::trace::emit(                                          \
                (cycle), (channel),                                         \
                ::skipit::trace::detail::concat(__VA_ARGS__));              \
        }                                                                   \
    } while (0)

#endif // SKIPIT_SIM_TRACE_HH
