/**
 * @file
 * Deterministic pseudo-random number generation (splitmix64 / xoshiro-style)
 * so that every simulation run is exactly reproducible from its seed.
 */

#ifndef SKIPIT_SIM_RANDOM_HH
#define SKIPIT_SIM_RANDOM_HH

#include <cstdint>

namespace skipit {

/**
 * splitmix64: tiny, fast, high-quality 64-bit generator. Used for workload
 * generation (keys, operation mix) and replacement tie-breaking.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /**
     * Uniform value in [lo, hi], inclusive on both ends, with rejection
     * sampling so the distribution is exactly uniform (below() keeps its
     * historical modulo bias because golden workload streams depend on
     * its output byte for byte).
     */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        const std::uint64_t span = hi - lo + 1;
        if (span == 0)
            return next(); // full 64-bit range: every draw is fair
        // Reject draws below 2^64 mod span; what remains is an exact
        // multiple of span, so the final modulo is unbiased.
        const std::uint64_t threshold = (0 - span) % span;
        std::uint64_t r = next();
        while (r < threshold)
            r = next();
        return lo + r % span;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state_;
};

} // namespace skipit

#endif // SKIPIT_SIM_RANDOM_HH
