/**
 * @file
 * The stall watchdog: turns the paper's interlock deadlock-freedom
 * arguments (§5.4: probe_rdy / wb_rdy / flush_rdy never cycle) into a
 * runtime-checkable property.
 *
 * Registered components (L1 caches, the L2) enumerate their busy
 * resources — FSHRs, MSHRs, flush-queue entries — as fingerprinted
 * snapshots. The watchdog scans every scan_interval cycles; a resource
 * whose fingerprint has not changed for stall_threshold cycles is flagged
 * as stalled, reported once, and — when a TxnTracer is attached — its
 * occupying transaction's full event history is dumped.
 *
 * The watchdog never mutates simulated state, so enabling it cannot
 * change cycle counts.
 */

#ifndef SKIPIT_SIM_WATCHDOG_HH
#define SKIPIT_SIM_WATCHDOG_HH

#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "probe.hh"
#include "simulator.hh"
#include "ticked.hh"

namespace skipit {

class TxnTracer;

/** Watchdog parameters. */
struct WatchdogConfig
{
    bool enabled = true;
    /** Cycles a busy resource's state may remain unchanged before it is
     *  reported as stalled. Must comfortably exceed the longest legal
     *  wait (a full flush queue draining through contended FSHRs). */
    Cycle stall_threshold = 100'000;
    /** Cycles between scans; bounds detection latency and scan cost. */
    Cycle scan_interval = 512;
    /** Exit non-zero after the first stall report instead of continuing:
     *  CI and fuzz runs want a stall to fail the job, not scroll past. */
    bool fatal = false;
};

/** One detected stall. */
struct StallRecord
{
    std::string resource;
    TxnId txn = 0;
    Cycle stuck_since = 0;  //!< first scan that saw this fingerprint
    Cycle reported_at = 0;
    std::string describe;
};

/** See file comment. */
class Watchdog : public Ticked
{
  public:
    Watchdog(std::string name, Simulator &sim, const WatchdogConfig &cfg);

    /** Register a component whose resources should be monitored. */
    void watch(const probe::Inspectable &component);

    /** Attach a tracer so stall reports include transaction histories. */
    void setTracer(const TxnTracer *tracer) { tracer_ = tracer; }

    /** Redirect report output (default std::cerr). nullptr resets. */
    void setStream(std::ostream *os) { os_ = os; }

    /**
     * Hook appended to every stall report, before any fatal exit. The SoC
     * wires this to the coherence checker so a stall report comes with a
     * full invariant sweep (sim/ cannot depend on verify/ directly).
     */
    void setEscalation(std::function<void(std::ostream &)> fn)
    {
        escalation_ = std::move(fn);
    }

    void tick() override;
    Cycle nextWake() const override;

    /** Number of distinct stalls reported so far. */
    std::size_t stallsDetected() const { return stalls_.size(); }
    const std::vector<StallRecord> &stalls() const { return stalls_; }

  private:
    struct Tracked
    {
        std::uint64_t fingerprint = 0;
        Cycle since = 0;     //!< scan cycle the fingerprint was first seen
        bool reported = false;
        bool seen = false;   //!< mark-and-sweep flag for vanished entries
    };

    Simulator &sim_;
    WatchdogConfig cfg_;
    std::vector<const probe::Inspectable *> components_;
    std::map<std::string, Tracked> tracked_;
    std::vector<StallRecord> stalls_;
    std::function<void(std::ostream &)> escalation_;
    const TxnTracer *tracer_ = nullptr;
    std::ostream *os_ = nullptr;
    Cycle next_scan_ = 0;
    std::vector<probe::ResourceSnapshot> scratch_;

    void scan();
    void report(const probe::ResourceSnapshot &snap, const Tracked &t);
};

} // namespace skipit

#endif // SKIPIT_SIM_WATCHDOG_HH
