#include "report.hh"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "logging.hh"

namespace skipit {

ReportTable::ReportTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns))
{
    SKIPIT_ASSERT(!columns_.empty(), "report table needs columns");
}

void
ReportTable::addRow(std::vector<ReportValue> row)
{
    SKIPIT_ASSERT(row.size() == columns_.size(),
                  "row width mismatch: got ", row.size(), ", want ",
                  columns_.size());
    rows_.push_back(std::move(row));
}

const ReportValue &
ReportTable::at(std::size_t row, std::size_t col) const
{
    SKIPIT_ASSERT(row < rows_.size() && col < columns_.size(),
                  "report cell out of range");
    return rows_[row][col];
}

std::string
ReportTable::toString(const ReportValue &v)
{
    if (const auto *s = std::get_if<std::string>(&v))
        return *s;
    if (const auto *u = std::get_if<std::uint64_t>(&v))
        return std::to_string(*u);
    const double d = std::get<double>(v);
    std::ostringstream os;
    if (std::abs(d - std::round(d)) < 1e-9) {
        os << static_cast<long long>(std::llround(d));
    } else {
        os << std::fixed << std::setprecision(1) << d;
    }
    return os.str();
}

void
ReportTable::renderText(std::ostream &os) const
{
    // Column widths: max of header and cells, padded.
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c)
        width[c] = columns_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], toString(row[c]).size());
    }

    os << "=== " << title_ << " ===\n";
    for (std::size_t c = 0; c < columns_.size(); ++c)
        os << std::setw(static_cast<int>(width[c]) + 2) << columns_[c];
    os << "\n";
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::setw(static_cast<int>(width[c]) + 2)
               << toString(row[c]);
        }
        os << "\n";
    }
}

std::string
ReportTable::csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char ch : s) {
        if (ch == '"')
            out += "\"\"";
        else
            out += ch;
    }
    out += "\"";
    return out;
}

void
ReportTable::renderCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < columns_.size(); ++c)
        os << (c != 0 ? "," : "") << csvEscape(columns_[c]);
    os << "\n";
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c != 0 ? "," : "") << csvEscape(toString(row[c]));
        os << "\n";
    }
}

void
ReportTable::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot write report CSV to ", path);
        return;
    }
    renderCsv(out);
}

} // namespace skipit
