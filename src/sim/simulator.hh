/**
 * @file
 * The cycle-driven simulation kernel: a serial reference engine and a
 * deterministic parallel engine over the same component list.
 */

#ifndef SKIPIT_SIM_SIMULATOR_HH
#define SKIPIT_SIM_SIMULATOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <ostream>
#include <thread>
#include <vector>

#include "logging.hh"
#include "probe.hh"
#include "ticked.hh"
#include "types.hh"

namespace skipit {

/**
 * Owns the global clock and the list of clocked components.
 *
 * The simulator does not own the components themselves (they are members
 * of higher-level structural objects such as SoC); it only sequences them.
 *
 * Two engines sequence a cycle:
 *
 *  - serial (the default, and the reference semantics): every component
 *    ticks exactly once per cycle in registration order.
 *  - parallel: components are partitioned by their registration Affinity
 *    into four phases — pre (serial), lane (one lane per core, ticked
 *    concurrently on a worker pool), mem (serial: the cross-lane commit
 *    phase), post (serial) — with a barrier between the lane phase and
 *    the mem phase. The schedule is bit-identical to the serial engine
 *    at any worker count; docs/PARALLELISM.md states the contract and
 *    the proof obligations each phase assignment discharges.
 */
class Simulator
{
  public:
    enum class Engine
    {
        serial,  //!< reference: registration order, one thread
        parallel //!< phase-partitioned worker-pool engine
    };

    /** Where a component runs under the parallel engine. The serial
     *  engine ignores affinity entirely. */
    struct Affinity
    {
        enum Phase : std::uint8_t
        {
            pre,  //!< serial, before the lanes (DRAM, crossbar)
            mem,  //!< serial, after the lane barrier (L2 slices): the
                  //!< phase that commits cross-lane channel handoffs
            lane, //!< concurrent: one lane per core (L1 + LSU + Hart)
            post, //!< serial, after everything (watchdog, checker)
        };
        constexpr Affinity(Phase p = pre, unsigned i = 0)
            : phase(p), index(i)
        {
        }

        Phase phase;
        unsigned index; //!< lane index; meaningful when phase == lane
    };

    Simulator() = default;
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /**
     * Register a component; it will be ticked every cycle from now on.
     * @param affinity parallel-engine placement. The registration order
     *        must be sorted by phase (pre, mem, lane, post) so that the
     *        parallel engine's event stream can reproduce the serial
     *        one; asserted when the parallel engine starts.
     */
    void add(Ticked &component, Affinity affinity = {});

    /**
     * Select the tick engine.
     * @param workers total thread count for the lane phase including the
     *        caller (0 = hardware concurrency). With workers == 1 the
     *        lane phase runs on the calling thread — still through the
     *        staging machinery, so it exercises the same code paths.
     */
    void setEngine(Engine e, unsigned workers = 0);
    Engine engine() const { return engine_; }
    unsigned workers() const { return workers_; }

    /**
     * Hooks the owner of lane-shared state registers so the engine can
     * scope that state to lanes (the SoC routes Stats through per-lane
     * shards this way). enter/leave run on the worker around each lane;
     * sync runs on the run() thread at every sync point.
     */
    void
    setLaneHooks(std::function<void(unsigned lane)> enter,
                 std::function<void()> leave, std::function<void()> sync)
    {
        lane_enter_ = std::move(enter);
        lane_leave_ = std::move(leave);
        lane_sync_ = std::move(sync);
    }

    /**
     * Bring lane-scoped state (stats shards) back into the shared view.
     * Runs automatically when run()/runUntil() return; call it manually
     * before reading stats after hand-stepping the parallel engine.
     */
    void syncLanes();

    /** Current simulated cycle (the number of completed cycles). */
    Cycle now() const { return now_; }

    /** Advance the whole machine by exactly one cycle (never skips). */
    void step();

    /** Advance by @p n cycles. */
    void run(Cycle n);

    /**
     * Run until @p done returns true, checking after every cycle.
     *
     * With fast-forward enabled the predicate must be a pure function of
     * component state (not of now()): it is only re-evaluated at cycles
     * where some component can act, which is exactly the set of cycles
     * where its value can change.
     *
     * @param done      termination predicate
     * @param max_cycles safety bound; panics if exceeded (deadlock guard)
     * @return the cycle at which @p done first held
     */
    Cycle runUntil(const std::function<bool()> &done,
                   Cycle max_cycles = 100'000'000);

    /**
     * Enable quiescence fast-forwarding: run()/runUntil() jump the clock
     * in bulk across stretches where every component's nextWake() lies in
     * the future. Timing is bit-identical to the ticked baseline (see the
     * Ticked::nextWake() contract); only wall-clock time changes. Off by
     * default so that hand-stepped unit fixtures keep their exact
     * semantics; SoC turns it on via SoCConfig::fast_forward.
     */
    void setFastForward(bool on) { fast_forward_ = on; }
    bool fastForward() const { return fast_forward_; }

    /** True when no component has self-scheduled work pending. */
    bool quiescent() const { return nextWakeAll() == Ticked::wake_never; }

    /** Cycles skipped (not individually ticked) by fast-forwarding. */
    Cycle skippedCycles() const { return skipped_; }

    /**
     * The observability hub: transaction lifecycle events flow through
     * here to any attached sink. Mutable through const references because
     * most components hold `const Simulator &` purely for the clock, and
     * emitting an event never changes simulated state.
     */
    probe::Hub &probes() const { return hub_; }

  private:
    /** Earliest nextWake() over all components (wake_never when empty). */
    Cycle nextWakeAll() const;

    void parallelStep();
    void startWorkers();
    void stopWorkers();
    void workerLoop();
    /**
     * Claim and tick lanes until the cycle's lane pool is drained.
     * @param base value of next_lane_ at the start of this cycle's lane
     *        phase; claims are CAS-only, so a worker whose last (empty)
     *        claim attempt straggles into the next cycle observes the
     *        pool as drained and never perturbs the counter.
     */
    void runClaimedLanes(std::uint64_t base);

    /** A lane-phase component and its probe staging buffer index. */
    struct LaneComp
    {
        Ticked *component;
        std::size_t buffer;
    };

    std::vector<Ticked *> components_;
    Cycle now_ = 0;
    Cycle skipped_ = 0;
    bool fast_forward_ = false;
    mutable probe::Hub hub_;

    // --- parallel engine ---------------------------------------------
    Engine engine_ = Engine::serial;
    unsigned workers_ = 1;
    bool workers_running_ = false;
    std::vector<Ticked *> pre_;
    std::vector<Ticked *> mem_;
    std::vector<Ticked *> post_;
    std::vector<std::vector<LaneComp>> lanes_;
    std::size_t lane_comps_ = 0;
    std::function<void(unsigned)> lane_enter_;
    std::function<void()> lane_leave_;
    std::function<void()> lane_sync_;
    std::vector<std::thread> threads_;
    /** Monotonic claim counter; lane = claimed - base. */
    std::atomic<std::uint64_t> next_lane_{0};
    /**
     * The lane-phase start signal and claim base in one word: each cycle
     * the stepping thread publishes the cycle's next_lane_ snapshot here
     * (release), and workers treat any value change (acquire) as "go".
     * The base grows by the lane count every cycle, so consecutive
     * cycles always publish distinct values, and reading the signal is
     * indivisible from reading the base. go_sentinel means "no lane
     * phase has started yet".
     */
    static constexpr std::uint64_t go_sentinel = ~std::uint64_t{0};
    std::atomic<std::uint64_t> lane_go_{go_sentinel};
    std::atomic<unsigned> lanes_done_{0};
    std::atomic<bool> stop_{false};

    // Crash context: a panic anywhere in this simulator's components
    // reports the cycle and the most recent transaction id before the
    // process dies, so truncated traces stay diagnosable.
    ScopedCrashHandler crash_context_{[this](std::ostream &os) {
        os << "  simulator: cycle " << now_ << ", last txn "
           << hub_.lastTxn() << "\n";
    }};
};

} // namespace skipit

#endif // SKIPIT_SIM_SIMULATOR_HH
