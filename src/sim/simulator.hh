/**
 * @file
 * The cycle-driven simulation kernel.
 */

#ifndef SKIPIT_SIM_SIMULATOR_HH
#define SKIPIT_SIM_SIMULATOR_HH

#include <functional>
#include <ostream>
#include <vector>

#include "logging.hh"
#include "probe.hh"
#include "ticked.hh"
#include "types.hh"

namespace skipit {

/**
 * Owns the global clock and the list of clocked components.
 *
 * The simulator does not own the components themselves (they are members
 * of higher-level structural objects such as SoC); it only sequences them.
 * Every component is ticked exactly once per cycle in registration order.
 */
class Simulator
{
  public:
    Simulator() = default;

    /** Register a component; it will be ticked every cycle from now on. */
    void add(Ticked &component) { components_.push_back(&component); }

    /** Current simulated cycle (the number of completed cycles). */
    Cycle now() const { return now_; }

    /** Advance the whole machine by exactly one cycle (never skips). */
    void step();

    /** Advance by @p n cycles. */
    void run(Cycle n);

    /**
     * Run until @p done returns true, checking after every cycle.
     *
     * With fast-forward enabled the predicate must be a pure function of
     * component state (not of now()): it is only re-evaluated at cycles
     * where some component can act, which is exactly the set of cycles
     * where its value can change.
     *
     * @param done      termination predicate
     * @param max_cycles safety bound; panics if exceeded (deadlock guard)
     * @return the cycle at which @p done first held
     */
    Cycle runUntil(const std::function<bool()> &done,
                   Cycle max_cycles = 100'000'000);

    /**
     * Enable quiescence fast-forwarding: run()/runUntil() jump the clock
     * in bulk across stretches where every component's nextWake() lies in
     * the future. Timing is bit-identical to the ticked baseline (see the
     * Ticked::nextWake() contract); only wall-clock time changes. Off by
     * default so that hand-stepped unit fixtures keep their exact
     * semantics; SoC turns it on via SoCConfig::fast_forward.
     */
    void setFastForward(bool on) { fast_forward_ = on; }
    bool fastForward() const { return fast_forward_; }

    /** True when no component has self-scheduled work pending. */
    bool quiescent() const { return nextWakeAll() == Ticked::wake_never; }

    /** Cycles skipped (not individually ticked) by fast-forwarding. */
    Cycle skippedCycles() const { return skipped_; }

    /**
     * The observability hub: transaction lifecycle events flow through
     * here to any attached sink. Mutable through const references because
     * most components hold `const Simulator &` purely for the clock, and
     * emitting an event never changes simulated state.
     */
    probe::Hub &probes() const { return hub_; }

  private:
    /** Earliest nextWake() over all components (wake_never when empty). */
    Cycle nextWakeAll() const;

    std::vector<Ticked *> components_;
    Cycle now_ = 0;
    Cycle skipped_ = 0;
    bool fast_forward_ = false;
    mutable probe::Hub hub_;
    // Crash context: a panic anywhere in this simulator's components
    // reports the cycle and the most recent transaction id before the
    // process dies, so truncated traces stay diagnosable.
    ScopedCrashHandler crash_context_{[this](std::ostream &os) {
        os << "  simulator: cycle " << now_ << ", last txn "
           << hub_.lastTxn() << "\n";
    }};
};

} // namespace skipit

#endif // SKIPIT_SIM_SIMULATOR_HH
