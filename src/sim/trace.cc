#include "trace.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>

namespace skipit::trace {

namespace {

struct TraceState
{
    std::set<std::string> channels;
    bool all = false;
    bool env_loaded = false;
    std::ostream *stream = nullptr;
    std::mutex mu;

    void
    loadEnvOnce()
    {
        if (env_loaded)
            return;
        env_loaded = true;
        const char *env = std::getenv("SKIPIT_TRACE");
        if (env == nullptr)
            return;
        std::string spec(env);
        std::size_t pos = 0;
        while (pos <= spec.size()) {
            const std::size_t comma = spec.find(',', pos);
            const std::string item =
                spec.substr(pos, comma == std::string::npos
                                     ? std::string::npos
                                     : comma - pos);
            if (item == "all")
                all = true;
            else if (!item.empty())
                channels.insert(item);
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }
};

TraceState &
state()
{
    static TraceState s;
    return s;
}

} // namespace

bool
enabled(const std::string &channel)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> g(s.mu);
    s.loadEnvOnce();
    return s.all || s.channels.count(channel) != 0;
}

void
enable(const std::string &channel)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> g(s.mu);
    s.env_loaded = true; // explicit config wins over the environment
    if (channel == "all")
        s.all = true;
    else
        s.channels.insert(channel);
}

void
disableAll()
{
    TraceState &s = state();
    std::lock_guard<std::mutex> g(s.mu);
    s.env_loaded = true;
    s.all = false;
    s.channels.clear();
}

void
setStream(std::ostream *os)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> g(s.mu);
    s.stream = os;
}

void
emit(Cycle cycle, const std::string &channel, const std::string &message)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> g(s.mu);
    std::ostream &os = s.stream != nullptr ? *s.stream : std::cerr;
    os << cycle << ": " << channel << ": " << message << "\n";
}

} // namespace skipit::trace
