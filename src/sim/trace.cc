#include "trace.hh"

#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>

namespace skipit::trace {

namespace {

/**
 * Channel flags live in map nodes, which never move: Channel handles keep
 * raw pointers to them. "all" is modelled by flipping every registered
 * flag and remembering the mode for channels registered later.
 */
struct TraceState
{
    std::map<std::string, std::atomic<bool>> channels;
    bool all = false;
    bool env_loaded = false;
    std::ostream *stream = nullptr;
    std::mutex mu;

    std::atomic<bool> &
    flagFor(const std::string &name)
    {
        auto [it, inserted] = channels.try_emplace(name);
        if (inserted)
            it->second.store(all, std::memory_order_relaxed);
        return it->second;
    }

    void
    setAll(bool on)
    {
        all = on;
        for (auto &[name, flag] : channels)
            flag.store(on, std::memory_order_relaxed);
    }

    void
    loadEnvOnce()
    {
        if (env_loaded)
            return;
        env_loaded = true;
        const char *env = std::getenv("SKIPIT_TRACE");
        if (env == nullptr)
            return;
        std::string spec(env);
        std::size_t pos = 0;
        while (pos <= spec.size()) {
            const std::size_t comma = spec.find(',', pos);
            const std::string item =
                spec.substr(pos, comma == std::string::npos
                                     ? std::string::npos
                                     : comma - pos);
            if (item == "all")
                setAll(true);
            else if (!item.empty())
                flagFor(item).store(true, std::memory_order_relaxed);
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }
};

TraceState &
state()
{
    static TraceState s;
    return s;
}

} // namespace

Channel::Channel(const std::string &name)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> g(s.mu);
    s.loadEnvOnce();
    flag_ = &s.flagFor(name);
}

bool
enabled(const std::string &channel)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> g(s.mu);
    s.loadEnvOnce();
    return s.flagFor(channel).load(std::memory_order_relaxed);
}

void
enable(const std::string &channel)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> g(s.mu);
    s.env_loaded = true; // explicit config wins over the environment
    if (channel == "all")
        s.setAll(true);
    else
        s.flagFor(channel).store(true, std::memory_order_relaxed);
}

void
disableAll()
{
    TraceState &s = state();
    std::lock_guard<std::mutex> g(s.mu);
    s.env_loaded = true;
    s.setAll(false);
}

void
setStream(std::ostream *os)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> g(s.mu);
    s.stream = os;
}

void
emit(Cycle cycle, const std::string &channel, const std::string &message)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> g(s.mu);
    std::ostream &os = s.stream != nullptr ? *s.stream : std::cerr;
    os << cycle << ": " << channel << ": " << message << "\n";
}

} // namespace skipit::trace
