/**
 * @file
 * Timing-aware queues used to connect clocked components.
 */

#ifndef SKIPIT_SIM_QUEUES_HH
#define SKIPIT_SIM_QUEUES_HH

#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <utility>

#include "logging.hh"
#include "simulator.hh"
#include "types.hh"

namespace skipit {

/**
 * A FIFO whose entries only become visible a fixed number of cycles after
 * they were pushed. A latency of 1 models a registered (flip-flop) boundary
 * between two RTL modules; larger latencies model pipelined wires or SRAM
 * access delays. Entries always pop in push order.
 */
template <typename T>
class DelayQueue
{
  public:
    /**
     * @param sim     simulator supplying the clock
     * @param latency cycles between push and earliest pop (>= 1)
     */
    DelayQueue(const Simulator &sim, Cycle latency)
        : sim_(sim), latency_(latency)
    {
        SKIPIT_ASSERT(latency >= 1, "DelayQueue latency must be >= 1");
    }

    /** Enqueue @p v; it becomes poppable at now + latency. */
    void
    push(T v)
    {
        push(std::move(v), latency_);
    }

    /** Enqueue @p v with an explicit one-off delay (>= default latency). */
    void
    push(T v, Cycle delay)
    {
        const Cycle ready = sim_.now() + std::max(delay, latency_);
        SKIPIT_ASSERT(q_.empty() || q_.back().ready <= ready,
                      "DelayQueue entries must become ready in FIFO order");
        q_.push_back(Entry{ready, std::move(v)});
    }

    /** True if an entry is visible this cycle. */
    bool
    ready() const
    {
        return !q_.empty() && q_.front().ready <= sim_.now();
    }

    /** Peek the visible head; undefined unless ready(). */
    const T &
    front() const
    {
        SKIPIT_ASSERT(ready(), "front() on non-ready DelayQueue");
        return q_.front().value;
    }

    /** Remove and return the visible head; undefined unless ready(). */
    T
    pop()
    {
        SKIPIT_ASSERT(ready(), "pop() on non-ready DelayQueue");
        T v = std::move(q_.front().value);
        q_.pop_front();
        return v;
    }

    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }

    /**
     * Cycle at which the head entry becomes visible; undefined unless
     * !empty(). Entries ready in FIFO order (asserted in push), so the
     * head is also the earliest. Used for quiescence wake computation.
     */
    Cycle
    frontReadyAt() const
    {
        SKIPIT_ASSERT(!q_.empty(), "frontReadyAt() on empty DelayQueue");
        return q_.front().ready;
    }

  private:
    struct Entry
    {
        Cycle ready;
        T value;
    };

    const Simulator &sim_;
    Cycle latency_;
    std::deque<Entry> q_;
};

/**
 * A bounded same-cycle FIFO used for structures like the flush queue where
 * capacity (and the nack on overflow) is the architecturally relevant
 * property rather than latency.
 */
template <typename T>
class BoundedFifo
{
  public:
    explicit BoundedFifo(std::size_t capacity) : capacity_(capacity) {}

    bool full() const { return q_.size() >= capacity_; }
    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** @return false (and leave the queue unchanged) when full. */
    bool
    tryPush(T v)
    {
        if (full())
            return false;
        q_.push_back(std::move(v));
        return true;
    }

    T &front() { return q_.front(); }
    const T &front() const { return q_.front(); }

    T
    pop()
    {
        SKIPIT_ASSERT(!q_.empty(), "pop() on empty BoundedFifo");
        T v = std::move(q_.front());
        q_.pop_front();
        return v;
    }

    /** Iteration support (e.g. flush-queue probes scan all entries). */
    auto begin() { return q_.begin(); }
    auto end() { return q_.end(); }
    auto begin() const { return q_.begin(); }
    auto end() const { return q_.end(); }

    /** Erase entries matching a predicate (used for coalesced drops). */
    template <typename Pred>
    std::size_t
    eraseIf(Pred pred)
    {
        const auto old = q_.size();
        q_.erase(std::remove_if(q_.begin(), q_.end(), pred), q_.end());
        return old - q_.size();
    }

  private:
    std::size_t capacity_;
    std::deque<T> q_;
};

/**
 * A completion buffer: entries become visible at per-entry ready times and
 * pop in ready-time order (ties resolved in insertion order). Used for CPU
 * responses, where a nack, a 3-cycle hit and a replayed miss all complete
 * with different latencies.
 */
template <typename T>
class CompletionBuffer
{
  public:
    explicit CompletionBuffer(const Simulator &sim) : sim_(sim) {}

    /** Schedule @p v to complete at absolute cycle @p ready_at. */
    void
    push(T v, Cycle ready_at)
    {
        buf_.emplace(ready_at, std::move(v));
    }

    /** Schedule @p v to complete @p delay cycles from now. */
    void
    pushIn(T v, Cycle delay)
    {
        push(std::move(v), sim_.now() + delay);
    }

    bool
    ready() const
    {
        return !buf_.empty() && buf_.begin()->first <= sim_.now();
    }

    T
    pop()
    {
        SKIPIT_ASSERT(ready(), "pop() on non-ready CompletionBuffer");
        auto it = buf_.begin();
        T v = std::move(it->second);
        buf_.erase(it);
        return v;
    }

    /** The entry pop() would return; undefined unless ready(). */
    const T &
    front() const
    {
        SKIPIT_ASSERT(ready(), "front() on non-ready CompletionBuffer");
        return buf_.begin()->second;
    }

    bool empty() const { return buf_.empty(); }
    std::size_t size() const { return buf_.size(); }

    /**
     * Earliest completion cycle of any buffered entry; undefined unless
     * !empty(). Used for quiescence wake computation.
     */
    Cycle
    frontReadyAt() const
    {
        SKIPIT_ASSERT(!buf_.empty(),
                      "frontReadyAt() on empty CompletionBuffer");
        return buf_.begin()->first;
    }

  private:
    const Simulator &sim_;
    std::multimap<Cycle, T> buf_;
};

} // namespace skipit

#endif // SKIPIT_SIM_QUEUES_HH
