#include "txn_tracer.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "logging.hh"

namespace skipit {

namespace {

const char *
kindName(probe::Event::Kind k)
{
    switch (k) {
      case probe::Event::Kind::Begin:
        return "begin";
      case probe::Event::Kind::End:
        return "end";
      case probe::Event::Kind::Instant:
        return "instant";
      case probe::Event::Kind::Span:
        return "span";
    }
    return "?";
}

} // namespace

void
TxnTracer::onEvent(const probe::Event &e)
{
    last_cycle_ = std::max(last_cycle_, e.cycle + e.dur);
    switch (e.kind) {
      case probe::Event::Kind::Begin:
        open_[{e.stage, e.txn}].push_back(e.cycle);
        break;
      case probe::Event::Kind::End: {
        const auto it = open_.find({e.stage, e.txn});
        if (it != open_.end() && !it->second.empty()) {
            const Cycle begin = it->second.back();
            it->second.pop_back();
            if (it->second.empty())
                open_.erase(it);
            hists_[e.stage].add(
                static_cast<double>(e.cycle - begin));
        }
        break;
      }
      case probe::Event::Kind::Span:
        hists_[e.stage].add(static_cast<double>(e.dur));
        break;
      case probe::Event::Kind::Instant:
        break;
    }
    if (keep_events_) {
        by_txn_[e.txn].push_back(events_.size());
        events_.push_back(e);
    }
}

std::vector<probe::Event>
TxnTracer::eventsFor(TxnId txn) const
{
    std::vector<probe::Event> out;
    const auto it = by_txn_.find(txn);
    if (it == by_txn_.end())
        return out;
    out.reserve(it->second.size());
    for (const std::size_t idx : it->second)
        out.push_back(events_[idx]);
    return out;
}

void
TxnTracer::dumpTxn(TxnId txn, std::ostream &os, const char *indent) const
{
    const std::vector<probe::Event> events = eventsFor(txn);
    if (events.empty()) {
        os << indent << "(no recorded events for txn " << txn << ")\n";
        return;
    }
    for (const probe::Event &e : events) {
        os << indent << e.cycle << " [" << e.stage << "] "
           << kindName(e.kind) << " " << e.track;
        if (!e.detail.empty())
            os << ": " << e.detail;
        if (e.kind == probe::Event::Kind::Span)
            os << " (dur " << e.dur << ")";
        os << "\n";
    }
}

const Histogram *
TxnTracer::histogram(const std::string &stage) const
{
    const auto it = hists_.find(stage);
    return it == hists_.end() ? nullptr : &it->second;
}

void
TxnTracer::dumpHistograms(std::ostream &os) const
{
    for (const auto &[stage, hist] : hists_)
        hist.renderText(os, stage);
}

std::string
TxnTracer::jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
TxnTracer::writeChromeTrace(std::ostream &os) const
{
    SKIPIT_ASSERT(keep_events_,
                  "Chrome export needs a tracer built with keep_events");

    // Stable track -> tid mapping in first-appearance order.
    std::map<std::string, int> tids;
    std::vector<const std::string *> track_order;
    for (const probe::Event &e : events_) {
        if (tids.emplace(e.track, 0).second)
            track_order.push_back(&e.track);
    }
    int next_tid = 1;
    for (const std::string *t : track_order)
        tids[*t] = next_tid++;

    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    const auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    for (const std::string *t : track_order) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
           << tids[*t] << ",\"args\":{\"name\":\"" << jsonEscape(*t)
           << "\"}}";
    }

    // Pair Begin/End per (stage, txn) into Complete ("X") slices; emit
    // Instants as "i" and Spans as "X" directly. Unmatched Begins render
    // as open slices reaching the end of the recorded run — exactly what
    // a wedged transaction looks like.
    std::map<std::pair<std::string, TxnId>,
             std::vector<const probe::Event *>> open;
    const auto emitSlice = [&](const probe::Event &b, Cycle end_cycle,
                               bool unfinished) {
        sep();
        os << "{\"name\":\""
           << jsonEscape(b.detail.empty() ? b.stage : b.detail)
           << (unfinished ? " (open)" : "") << "\",\"cat\":\"" << b.stage
           << "\",\"ph\":\"X\",\"ts\":" << b.cycle << ",\"dur\":"
           << (end_cycle - b.cycle) << ",\"pid\":1,\"tid\":"
           << tids[b.track] << ",\"args\":{\"txn\":" << b.txn << "}}";
    };

    for (const probe::Event &e : events_) {
        switch (e.kind) {
          case probe::Event::Kind::Begin:
            open[{e.stage, e.txn}].push_back(&e);
            break;
          case probe::Event::Kind::End: {
            const auto it = open.find({e.stage, e.txn});
            if (it != open.end() && !it->second.empty()) {
                emitSlice(*it->second.back(), e.cycle, false);
                it->second.pop_back();
            } else {
                // End without Begin: degrade to an instant.
                sep();
                os << "{\"name\":\""
                   << jsonEscape(e.detail.empty() ? e.stage : e.detail)
                   << "\",\"cat\":\"" << e.stage
                   << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.cycle
                   << ",\"pid\":1,\"tid\":" << tids[e.track]
                   << ",\"args\":{\"txn\":" << e.txn << "}}";
            }
            break;
          }
          case probe::Event::Kind::Instant:
            sep();
            os << "{\"name\":\""
               << jsonEscape(e.detail.empty() ? e.stage : e.detail)
               << "\",\"cat\":\"" << e.stage
               << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.cycle
               << ",\"pid\":1,\"tid\":" << tids[e.track]
               << ",\"args\":{\"txn\":" << e.txn << "}}";
            break;
          case probe::Event::Kind::Span:
            sep();
            os << "{\"name\":\""
               << jsonEscape(e.detail.empty() ? e.stage : e.detail)
               << "\",\"cat\":\"" << e.stage << "\",\"ph\":\"X\",\"ts\":"
               << e.cycle << ",\"dur\":" << e.dur << ",\"pid\":1,\"tid\":"
               << tids[e.track] << ",\"args\":{\"txn\":" << e.txn << "}}";
            break;
        }
    }

    for (const auto &[key, begins] : open) {
        for (const probe::Event *b : begins)
            emitSlice(*b, last_cycle_, true);
    }

    os << "\n]}\n";
}

bool
TxnTracer::writeChromeTraceFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot write Chrome trace to ", path);
        return false;
    }
    writeChromeTrace(out);
    return out.good();
}

} // namespace skipit
