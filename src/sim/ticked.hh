/**
 * @file
 * Base class for clocked hardware components.
 */

#ifndef SKIPIT_SIM_TICKED_HH
#define SKIPIT_SIM_TICKED_HH

#include <limits>
#include <string>
#include <utility>

#include "types.hh"

namespace skipit {

class Simulator;

/**
 * A hardware component evaluated once per simulated cycle.
 *
 * Components register themselves with a Simulator; the simulator calls
 * tick() on each registered component every cycle in registration order,
 * which keeps the model fully deterministic. Cross-component communication
 * must go through DelayQueue / TimedFifo style structures so that a value
 * produced in cycle N is consumed no earlier than cycle N+1, mimicking
 * registered (flip-flop) boundaries between RTL modules.
 */
class Ticked
{
  public:
    explicit Ticked(std::string name) : name_(std::move(name)) {}
    virtual ~Ticked() = default;

    Ticked(const Ticked &) = delete;
    Ticked &operator=(const Ticked &) = delete;

    /** Advance this component by one clock cycle. */
    virtual void tick() = 0;

    /** nextWake() return value meaning "no self-scheduled work at all". */
    static constexpr Cycle wake_never = std::numeric_limits<Cycle>::max();

    /**
     * Quiescence contract: the earliest cycle at which this component's
     * tick() might do anything at all — change state, bump a counter, or
     * emit a probe event. The simulator's fast-forward mode skips the
     * clock across stretches where every component's wake lies in the
     * future, so the *only* legal way to be wrong is to be conservative:
     *
     *  - Returning a cycle <= now() means "tick me this cycle". That is
     *    always safe; a tick that turns out to be a no-op is identical
     *    to the baseline behaviour.
     *  - Returning a future cycle W asserts that every tick() in
     *    [now(), W) is a provable no-op given current state. Skipping
     *    them must be indistinguishable from executing them.
     *  - Returning wake_never asserts the component only acts in
     *    response to another component's activity (e.g. a message
     *    arriving on a channel). This is safe because the simulator
     *    re-evaluates every component's wake after each executed cycle,
     *    and state only changes in executed cycles.
     *
     * The default ("always tick me") opts a component out of
     * fast-forwarding without any correctness risk.
     */
    virtual Cycle nextWake() const { return 0; }

    /** Hierarchical instance name, e.g. "soc.core0.l1d.flushUnit". */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

} // namespace skipit

#endif // SKIPIT_SIM_TICKED_HH
