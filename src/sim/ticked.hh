/**
 * @file
 * Base class for clocked hardware components.
 */

#ifndef SKIPIT_SIM_TICKED_HH
#define SKIPIT_SIM_TICKED_HH

#include <string>
#include <utility>

#include "types.hh"

namespace skipit {

class Simulator;

/**
 * A hardware component evaluated once per simulated cycle.
 *
 * Components register themselves with a Simulator; the simulator calls
 * tick() on each registered component every cycle in registration order,
 * which keeps the model fully deterministic. Cross-component communication
 * must go through DelayQueue / TimedFifo style structures so that a value
 * produced in cycle N is consumed no earlier than cycle N+1, mimicking
 * registered (flip-flop) boundaries between RTL modules.
 */
class Ticked
{
  public:
    explicit Ticked(std::string name) : name_(std::move(name)) {}
    virtual ~Ticked() = default;

    Ticked(const Ticked &) = delete;
    Ticked &operator=(const Ticked &) = delete;

    /** Advance this component by one clock cycle. */
    virtual void tick() = 0;

    /** Hierarchical instance name, e.g. "soc.core0.l1d.flushUnit". */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

} // namespace skipit

#endif // SKIPIT_SIM_TICKED_HH
