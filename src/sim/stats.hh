/**
 * @file
 * Lightweight statistics: named counters and sample distributions.
 *
 * The paper reports medians and standard deviations of repeated
 * microbenchmarks (§7.1), so Distribution keeps raw samples and can produce
 * median / mean / stddev / percentiles.
 */

#ifndef SKIPIT_SIM_STATS_HH
#define SKIPIT_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace skipit {

/** A sampled value distribution with summary statistics. */
class Distribution
{
  public:
    void add(double v) { samples_.push_back(v); }
    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double mean() const;
    /** Median of the samples; NaN when the distribution is empty. */
    double median() const;
    double stddev() const;
    /**
     * Linearly interpolated percentile of the samples.
     * @param p percentile in [0,100]
     * @return NaN when the distribution is empty
     */
    double percentile(double p) const;
    double min() const;
    double max() const;

    const std::vector<double> &samples() const { return samples_; }
    void clear() { samples_.clear(); }

  private:
    std::vector<double> samples_;
};

/**
 * A registry of named counters owned by one simulated machine.
 *
 * Components bump counters through operator[]; tests and benches read them
 * back by name, and dump() prints everything for debugging.
 *
 * Under the parallel tick engine, concurrently-ticked components bump
 * counters through per-lane shards: enterShard() routes the calling
 * thread's operator[] into its lane's private map, and foldShards() adds
 * the shards back into the main registry at engine sync points. Counter
 * increments commute, so the folded totals are bit-identical to a serial
 * run regardless of worker count; reads (get()/dump()) are only exact at
 * sync points — which is where every test and bench reads them.
 */
class Stats
{
  public:
    /** Get (creating if absent) the counter called @p name. */
    std::uint64_t &operator[](const std::string &name)
    {
        if (ShardMap *shard = tl_shard_)
            return (*shard)[name];
        return counters_[name];
    }

    /** Read a counter; returns 0 when it was never touched. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    void dump(std::ostream &os) const;
    void clear() { counters_.clear(); }

    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /// @name Hierarchical queries
    ///
    /// Counter names are dot-separated component paths ("core0.l1d.fshr
    /// allocations" live under "l1.0.", DRAM traffic under "dram.", …),
    /// so a prefix selects one component subtree.
    /// @{

    /** All counters whose name starts with @p prefix, in name order. */
    std::vector<std::pair<std::string, std::uint64_t>>
    byPrefix(const std::string &prefix) const;

    /** Sum of every counter whose name starts with @p prefix. */
    std::uint64_t sumPrefix(const std::string &prefix) const;

    /** dump() restricted to counters under @p prefix. */
    void dumpPrefix(std::ostream &os, const std::string &prefix) const;
    /// @}

    /// @name Parallel-engine counter shards
    /// @{

    /** Allocate one private shard per tick lane. */
    void enableShards(unsigned lanes);

    /** Route this thread's operator[] into shard @p lane. */
    void enterShard(unsigned lane);

    /** Stop sharding on this thread; operator[] hits the registry. */
    static void leaveShard();

    /** Add every shard into the registry and clear the shards. Call from
     *  one thread while no lane is active. */
    void foldShards();
    /// @}

  private:
    using ShardMap = std::unordered_map<std::string, std::uint64_t>;

    static thread_local ShardMap *tl_shard_;

    std::map<std::string, std::uint64_t> counters_;
    std::vector<ShardMap> shards_;
};

} // namespace skipit

#endif // SKIPIT_SIM_STATS_HH
