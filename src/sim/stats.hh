/**
 * @file
 * Lightweight statistics: named counters and sample distributions.
 *
 * The paper reports medians and standard deviations of repeated
 * microbenchmarks (§7.1), so Distribution keeps raw samples and can produce
 * median / mean / stddev / percentiles.
 */

#ifndef SKIPIT_SIM_STATS_HH
#define SKIPIT_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace skipit {

/** A sampled value distribution with summary statistics. */
class Distribution
{
  public:
    void add(double v) { samples_.push_back(v); }
    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double mean() const;
    /** Median of the samples; NaN when the distribution is empty. */
    double median() const;
    double stddev() const;
    /**
     * Linearly interpolated percentile of the samples.
     * @param p percentile in [0,100]
     * @return NaN when the distribution is empty
     */
    double percentile(double p) const;
    double min() const;
    double max() const;

    const std::vector<double> &samples() const { return samples_; }
    void clear() { samples_.clear(); }

  private:
    std::vector<double> samples_;
};

/**
 * A registry of named counters owned by one simulated machine.
 *
 * Components bump counters through operator[]; tests and benches read them
 * back by name, and dump() prints everything for debugging.
 */
class Stats
{
  public:
    /** Get (creating if absent) the counter called @p name. */
    std::uint64_t &operator[](const std::string &name)
    {
        return counters_[name];
    }

    /** Read a counter; returns 0 when it was never touched. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    void dump(std::ostream &os) const;
    void clear() { counters_.clear(); }

    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /// @name Hierarchical queries
    ///
    /// Counter names are dot-separated component paths ("core0.l1d.fshr
    /// allocations" live under "l1.0.", DRAM traffic under "dram.", …),
    /// so a prefix selects one component subtree.
    /// @{

    /** All counters whose name starts with @p prefix, in name order. */
    std::vector<std::pair<std::string, std::uint64_t>>
    byPrefix(const std::string &prefix) const;

    /** Sum of every counter whose name starts with @p prefix. */
    std::uint64_t sumPrefix(const std::string &prefix) const;

    /** dump() restricted to counters under @p prefix. */
    void dumpPrefix(std::ostream &os, const std::string &prefix) const;
    /// @}

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace skipit

#endif // SKIPIT_SIM_STATS_HH
