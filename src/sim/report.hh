/**
 * @file
 * Tabular result reporting: collect named series (one row per sweep
 * point) and render them as aligned text or CSV. The figure benches use
 * this to emit machine-readable copies of every figure next to the
 * human-readable tables.
 */

#ifndef SKIPIT_SIM_REPORT_HH
#define SKIPIT_SIM_REPORT_HH

#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace skipit {

/** A value in a report cell. */
using ReportValue = std::variant<std::string, double, std::uint64_t>;

/**
 * One table: fixed columns, appended rows. Values render with minimal
 * formatting (doubles to one decimal unless integral).
 */
class ReportTable
{
  public:
    ReportTable(std::string title, std::vector<std::string> columns);

    const std::string &title() const { return title_; }
    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return columns_.size(); }

    /** Append a row; must match the column count. */
    void addRow(std::vector<ReportValue> row);

    /** Aligned human-readable rendering. */
    void renderText(std::ostream &os) const;

    /** RFC-4180-ish CSV (quotes cells containing commas/quotes). */
    void renderCsv(std::ostream &os) const;

    /** Write the CSV form to @p path; warns (does not throw) on failure. */
    void writeCsvFile(const std::string &path) const;

    /** Cell accessor for tests. */
    const ReportValue &at(std::size_t row, std::size_t col) const;

  private:
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::vector<ReportValue>> rows_;

    static std::string toString(const ReportValue &v);
    static std::string csvEscape(const std::string &s);
};

} // namespace skipit

#endif // SKIPIT_SIM_REPORT_HH
