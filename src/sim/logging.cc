#include "logging.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace skipit {

namespace {

struct HandlerEntry
{
    std::size_t id;
    std::function<void(std::ostream &)> fn;
};

// Thread-local: each parallel-sweep worker owns a full Simulator/SoC
// stack, and a crash must report only the crashing thread's context.
thread_local std::vector<HandlerEntry> crash_handlers;
thread_local std::size_t next_handler_id = 1;
thread_local bool in_crash_report = false;

void
runCrashHandlers(std::ostream &os)
{
    if (in_crash_report)
        return; // a handler panicked; don't recurse
    in_crash_report = true;
    // Newest-first: the innermost component (the running Simulator) prints
    // its cycle/transaction context before longer-lived observers.
    for (auto it = crash_handlers.rbegin(); it != crash_handlers.rend(); ++it)
        it->fn(os);
    in_crash_report = false;
}

} // namespace

std::size_t
addCrashHandler(std::function<void(std::ostream &)> fn)
{
    const std::size_t id = next_handler_id++;
    crash_handlers.push_back({id, std::move(fn)});
    return id;
}

void
removeCrashHandler(std::size_t id)
{
    for (auto it = crash_handlers.begin(); it != crash_handlers.end(); ++it) {
        if (it->id == id) {
            crash_handlers.erase(it);
            return;
        }
    }
}

namespace detail {

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    runCrashHandlers(std::cerr);
    std::cout.flush();
    std::cerr.flush();
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    runCrashHandlers(std::cerr);
    std::cout.flush();
    std::cerr.flush();
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace skipit
