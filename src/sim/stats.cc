#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "logging.hh"

namespace skipit {

double
Distribution::mean() const
{
    SKIPIT_ASSERT(!samples_.empty(), "mean of empty distribution");
    double s = 0;
    for (double v : samples_)
        s += v;
    return s / static_cast<double>(samples_.size());
}

double
Distribution::percentile(double p) const
{
    SKIPIT_ASSERT(p >= 0 && p <= 100, "percentile out of range");
    if (samples_.empty())
        return std::numeric_limits<double>::quiet_NaN();
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
Distribution::median() const
{
    return percentile(50.0);
}

double
Distribution::stddev() const
{
    SKIPIT_ASSERT(!samples_.empty(), "stddev of empty distribution");
    const double m = mean();
    double acc = 0;
    for (double v : samples_)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double
Distribution::min() const
{
    SKIPIT_ASSERT(!samples_.empty(), "min of empty distribution");
    return *std::min_element(samples_.begin(), samples_.end());
}

double
Distribution::max() const
{
    SKIPIT_ASSERT(!samples_.empty(), "max of empty distribution");
    return *std::max_element(samples_.begin(), samples_.end());
}

thread_local Stats::ShardMap *Stats::tl_shard_ = nullptr;

void
Stats::enableShards(unsigned lanes)
{
    shards_.resize(lanes);
}

void
Stats::enterShard(unsigned lane)
{
    SKIPIT_ASSERT(lane < shards_.size(), "stats shard out of range: ",
                  lane);
    tl_shard_ = &shards_[lane];
}

void
Stats::leaveShard()
{
    tl_shard_ = nullptr;
}

void
Stats::foldShards()
{
    SKIPIT_ASSERT(tl_shard_ == nullptr,
                  "foldShards() while this thread holds a shard");
    for (ShardMap &shard : shards_) {
        for (const auto &[name, value] : shard)
            counters_[name] += value;
        shard.clear();
    }
}

void
Stats::dump(std::ostream &os) const
{
    for (const auto &[name, value] : counters_)
        os << name << " = " << value << "\n";
}

std::vector<std::pair<std::string, std::uint64_t>>
Stats::byPrefix(const std::string &prefix) const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (auto it = counters_.lower_bound(prefix); it != counters_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        out.emplace_back(it->first, it->second);
    }
    return out;
}

std::uint64_t
Stats::sumPrefix(const std::string &prefix) const
{
    std::uint64_t sum = 0;
    for (const auto &[name, value] : byPrefix(prefix))
        sum += value;
    return sum;
}

void
Stats::dumpPrefix(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[name, value] : byPrefix(prefix))
        os << name << " = " << value << "\n";
}

} // namespace skipit
