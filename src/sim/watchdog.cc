#include "watchdog.hh"

#include <iostream>
#include <utility>

#include "logging.hh"
#include "txn_tracer.hh"

namespace skipit {

Watchdog::Watchdog(std::string name, Simulator &sim,
                   const WatchdogConfig &cfg)
    : Ticked(std::move(name)), sim_(sim), cfg_(cfg)
{
}

void
Watchdog::watch(const probe::Inspectable &component)
{
    components_.push_back(&component);
}

void
Watchdog::tick()
{
    if (!cfg_.enabled)
        return;
    if (sim_.now() < next_scan_)
        return;
    next_scan_ = sim_.now() + cfg_.scan_interval;
    scan();
}

Cycle
Watchdog::nextWake() const
{
    // Scans fire at exactly the same cycles as in the ticked baseline, so
    // stall detection timing is unchanged; fast-forward jumps are merely
    // capped at scan_interval while the watchdog is enabled.
    if (!cfg_.enabled)
        return wake_never;
    return std::max(sim_.now(), next_scan_);
}

void
Watchdog::scan()
{
    const Cycle now = sim_.now();

    for (auto &[name, t] : tracked_)
        t.seen = false;

    scratch_.clear();
    for (const probe::Inspectable *c : components_)
        c->snapshotResources(scratch_);

    for (const probe::ResourceSnapshot &snap : scratch_) {
        Tracked &t = tracked_[snap.name];
        t.seen = true;
        if (t.fingerprint != snap.fingerprint) {
            t.fingerprint = snap.fingerprint;
            t.since = now;
            t.reported = false;
            continue;
        }
        if (!t.reported && now - t.since >= cfg_.stall_threshold) {
            t.reported = true;
            report(snap, t);
        }
    }

    // Resources that went idle (not snapshotted this scan) are forgotten so
    // a later reoccupation starts a fresh stall window.
    for (auto it = tracked_.begin(); it != tracked_.end();) {
        if (!it->second.seen)
            it = tracked_.erase(it);
        else
            ++it;
    }
}

void
Watchdog::report(const probe::ResourceSnapshot &snap, const Tracked &t)
{
    const Cycle now = sim_.now();
    StallRecord rec;
    rec.resource = snap.name;
    rec.txn = snap.txn;
    rec.stuck_since = t.since;
    rec.reported_at = now;
    rec.describe = snap.describe;
    stalls_.push_back(rec);

    std::ostream &os = os_ != nullptr ? *os_ : std::cerr;
    os << "WATCHDOG: " << snap.name << " stalled for " << (now - t.since)
       << " cycles (txn " << snap.txn;
    if (!snap.describe.empty())
        os << ", " << snap.describe;
    os << ")\n";
    if (tracer_ != nullptr && snap.txn != 0) {
        os << "  transaction " << snap.txn << " history:\n";
        tracer_->dumpTxn(snap.txn, os, "    ");
    }
    if (escalation_)
        escalation_(os);
    if (cfg_.fatal) {
        SKIPIT_FATAL("watchdog: ", snap.name, " stalled for ",
                     now - t.since, " cycles (txn ", snap.txn, ")");
    }
}

} // namespace skipit
