/**
 * @file
 * Fundamental scalar types and cache-geometry constants shared by every
 * subsystem of the simulator.
 */

#ifndef SKIPIT_SIM_TYPES_HH
#define SKIPIT_SIM_TYPES_HH

#include <cstdint>

namespace skipit {

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Physical byte address in the simulated machine. */
using Addr = std::uint64_t;

/** Identifier of one memory-system transaction (assigned at the LSU);
 *  0 means "no transaction" (background machinery such as evictions). */
using TxnId = std::uint64_t;

/** Identifier of a hardware agent (core / cache / DRAM port). */
using AgentId = int;

/** Sentinel for "no agent". */
inline constexpr AgentId invalid_agent = -1;

/** Cache line size used throughout (SonicBOOM uses 64 B lines). */
inline constexpr unsigned line_bytes = 64;

/** log2(line_bytes). */
inline constexpr unsigned line_shift = 6;

/** TileLink system-bus beat width in bytes (SonicBOOM: 16 B, Figure 3). */
inline constexpr unsigned beat_bytes = 16;

/** Number of bus beats needed to move a full cache line. */
inline constexpr unsigned beats_per_line = line_bytes / beat_bytes;

/** Align an address down to its cache line base. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(line_bytes - 1);
}

/** Byte offset of an address within its cache line. */
constexpr unsigned
lineOffset(Addr a)
{
    return static_cast<unsigned>(a & (line_bytes - 1));
}

/** True if both addresses fall in the same cache line. */
constexpr bool
sameLine(Addr a, Addr b)
{
    return lineAlign(a) == lineAlign(b);
}

} // namespace skipit

#endif // SKIPIT_SIM_TYPES_HH
