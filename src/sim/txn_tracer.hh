/**
 * @file
 * The transaction tracer: a probe sink that records every lifecycle event
 * per transaction, derives per-stage latency histograms from Begin/End
 * pairs and Spans, and exports the whole run as Chrome trace-event JSON
 * (openable in chrome://tracing or Perfetto, one row per hart / FSHR /
 * L2-MSHR / DRAM / TileLink channel).
 */

#ifndef SKIPIT_SIM_TXN_TRACER_HH
#define SKIPIT_SIM_TXN_TRACER_HH

#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "histogram.hh"
#include "probe.hh"

namespace skipit {

/** Records transaction events; see file comment. */
class TxnTracer : public probe::Sink
{
  public:
    /**
     * @param keep_events retain the full per-transaction event log (needed
     *        for Chrome export and watchdog dumps). Disable to keep only
     *        the histograms on very long runs.
     */
    explicit TxnTracer(bool keep_events = true)
        : keep_events_(keep_events)
    {
    }

    void onEvent(const probe::Event &e) override;

    /// @name Per-transaction history
    /// @{
    /** All recorded events of @p txn, in emission order. */
    std::vector<probe::Event> eventsFor(TxnId txn) const;

    /** Total number of recorded events. */
    std::size_t eventCount() const { return events_.size(); }

    /** The full event log in emission order (equivalence testing). */
    const std::vector<probe::Event> &events() const { return events_; }

    /** Print one transaction's event history, one line per event. */
    void dumpTxn(TxnId txn, std::ostream &os,
                 const char *indent = "  ") const;
    /// @}

    /// @name Stage-latency histograms
    /// @{
    /** Histograms keyed by stage name ("l1.fshr", "l2.mshr", ...). */
    const std::map<std::string, Histogram> &histograms() const
    {
        return hists_;
    }

    /** The histogram for @p stage; nullptr when no sample was recorded. */
    const Histogram *histogram(const std::string &stage) const;

    /** Summaries plus bucket bars for every stage, in name order. */
    void dumpHistograms(std::ostream &os) const;
    /// @}

    /// @name Chrome trace-event export
    /// @{
    void writeChromeTrace(std::ostream &os) const;
    /** Write to @p path; warns and returns false (does not throw) on
     *  failure. */
    bool writeChromeTraceFile(const std::string &path) const;
    /// @}

  private:
    bool keep_events_;
    std::vector<probe::Event> events_; //!< full log, emission order
    /** Event indices per transaction (empty when !keep_events_). */
    std::unordered_map<TxnId, std::vector<std::size_t>> by_txn_;
    /** Open Begin cycles per (stage, txn), for latency pairing. */
    std::map<std::pair<std::string, TxnId>, std::vector<Cycle>> open_;
    std::map<std::string, Histogram> hists_;
    Cycle last_cycle_ = 0;

    static std::string jsonEscape(const std::string &s);
};

} // namespace skipit

#endif // SKIPIT_SIM_TXN_TRACER_HH
