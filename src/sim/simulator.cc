#include "simulator.hh"

#include <algorithm>

#include "logging.hh"

namespace skipit {

void
Simulator::step()
{
    for (Ticked *c : components_)
        c->tick();
    ++now_;
}

Cycle
Simulator::nextWakeAll() const
{
    Cycle wake = Ticked::wake_never;
    for (const Ticked *c : components_)
        wake = std::min(wake, c->nextWake());
    return wake;
}

void
Simulator::run(Cycle n)
{
    const Cycle target = now_ + n;
    while (now_ < target) {
        if (fast_forward_) {
            const Cycle wake = nextWakeAll();
            if (wake > now_) {
                // Every tick in [now, wake) is a provable no-op: jump.
                const Cycle to = std::min(wake, target);
                skipped_ += to - now_;
                now_ = to;
                continue;
            }
        }
        step();
    }
}

Cycle
Simulator::runUntil(const std::function<bool()> &done, Cycle max_cycles)
{
    const Cycle limit = now_ + max_cycles;
    while (!done()) {
        if (now_ >= limit) {
            SKIPIT_PANIC("runUntil exceeded ", max_cycles,
                         " cycles; likely deadlock");
        }
        if (fast_forward_) {
            const Cycle wake = nextWakeAll();
            if (wake > now_) {
                if (wake == Ticked::wake_never) {
                    // Fully quiescent and done() still false: no future
                    // tick can change that. Trip the deadlock guard now
                    // instead of spinning to the limit.
                    now_ = limit;
                    continue;
                }
                const Cycle to = std::min(wake, limit);
                skipped_ += to - now_;
                now_ = to;
                continue;
            }
        }
        step();
    }
    return now_;
}

} // namespace skipit
