#include "simulator.hh"

#include "logging.hh"

namespace skipit {

void
Simulator::step()
{
    for (Ticked *c : components_)
        c->tick();
    ++now_;
}

void
Simulator::run(Cycle n)
{
    for (Cycle i = 0; i < n; ++i)
        step();
}

Cycle
Simulator::runUntil(const std::function<bool()> &done, Cycle max_cycles)
{
    const Cycle limit = now_ + max_cycles;
    while (!done()) {
        if (now_ >= limit) {
            SKIPIT_PANIC("runUntil exceeded ", max_cycles,
                         " cycles; likely deadlock");
        }
        step();
    }
    return now_;
}

} // namespace skipit
