#include "simulator.hh"

#include <algorithm>

#include "logging.hh"

namespace skipit {

namespace {

/** Polite busy-wait: keep the core's pipeline cool between polls. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

} // namespace

Simulator::~Simulator()
{
    stopWorkers();
}

void
Simulator::add(Ticked &component, Affinity affinity)
{
    SKIPIT_ASSERT(!workers_running_,
                  "components must be registered before the parallel "
                  "engine starts");
    components_.push_back(&component);
    switch (affinity.phase) {
      case Affinity::pre:
        pre_.push_back(&component);
        break;
      case Affinity::mem:
        mem_.push_back(&component);
        break;
      case Affinity::lane:
        if (lanes_.size() <= affinity.index)
            lanes_.resize(affinity.index + 1);
        // Buffer indices follow registration order, so flushing the
        // staging buffers in index order reproduces the serial stream.
        lanes_[affinity.index].push_back(
            LaneComp{&component, lane_comps_++});
        break;
      case Affinity::post:
        post_.push_back(&component);
        break;
    }
}

void
Simulator::setEngine(Engine e, unsigned workers)
{
    if (e == Engine::serial) {
        stopWorkers();
        engine_ = e;
        workers_ = 1;
        return;
    }
    if (workers == 0) {
        workers = std::max(1u, std::thread::hardware_concurrency());
    }
    workers = std::min<unsigned>(workers, 64);
    SKIPIT_ASSERT(!workers_running_ || workers == workers_,
                  "cannot resize a running worker pool");
    engine_ = e;
    workers_ = workers;
}

void
Simulator::startWorkers()
{
    if (workers_running_)
        return;
    // The parallel event stream is replayed as pre, mem, lane, post; the
    // serial stream is registration order. They can only coincide when
    // registration order refines the phase order.
    int last_rank = -1;
    for (const Ticked *c : components_) {
        int rank = -1;
        if (std::find(pre_.begin(), pre_.end(), c) != pre_.end())
            rank = 0;
        else if (std::find(mem_.begin(), mem_.end(), c) != mem_.end())
            rank = 1;
        else if (std::find(post_.begin(), post_.end(), c) != post_.end())
            rank = 3;
        else
            rank = 2; // lane
        SKIPIT_ASSERT(rank >= last_rank,
                      "parallel engine: registration order must be "
                      "sorted by phase (pre, mem, lane, post); '",
                      c->name(), "' is out of order");
        last_rank = rank;
    }
    hub_.enableStaging(lane_comps_);
    stop_.store(false, std::memory_order_relaxed);
    // The calling thread participates, so spawn workers_ - 1 threads.
    const unsigned spawn =
        workers_ > 0 ? std::min<std::size_t>(workers_ - 1, lanes_.size())
                     : 0;
    for (unsigned i = 0; i < spawn; ++i)
        threads_.emplace_back([this] { workerLoop(); });
    workers_running_ = true;
}

void
Simulator::stopWorkers()
{
    if (!workers_running_ && threads_.empty())
        return;
    stop_.store(true, std::memory_order_relaxed);
    // Any change of lane_go_ wakes the workers; they check stop_ before
    // claiming. go_sentinel - 1 can never equal a real base (bases are
    // small monotonic counts), so no claim is possible either way.
    lane_go_.store(go_sentinel - 1, std::memory_order_release);
    lane_go_.notify_all();
    for (std::thread &t : threads_)
        t.join();
    threads_.clear();
    stop_.store(false, std::memory_order_relaxed);
    lane_go_.store(go_sentinel, std::memory_order_relaxed);
    workers_running_ = false;
}

void
Simulator::workerLoop()
{
    std::uint64_t seen = go_sentinel;
    for (;;) {
        // Hybrid wait: spin while cycles are flowing back to back, fall
        // into a futex wait across idle stretches (fast-forward jumps,
        // the gap between runs).
        std::uint64_t go;
        unsigned spins = 0;
        while ((go = lane_go_.load(std::memory_order_acquire)) == seen) {
            if (stop_.load(std::memory_order_relaxed))
                return;
            if (++spins > 4096) {
                lane_go_.wait(seen, std::memory_order_acquire);
                spins = 0;
            } else {
                cpuRelax();
            }
        }
        seen = go;
        if (stop_.load(std::memory_order_relaxed))
            return;
        if (go == go_sentinel)
            continue;
        runClaimedLanes(go);
    }
}

void
Simulator::runClaimedLanes(std::uint64_t base)
{
    for (;;) {
        std::uint64_t v = next_lane_.load(std::memory_order_relaxed);
        if (v - base >= lanes_.size())
            return;
        if (!next_lane_.compare_exchange_weak(v, v + 1,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed)) {
            continue;
        }
        const unsigned l = static_cast<unsigned>(v - base);
        if (lane_enter_)
            lane_enter_(l);
        for (const LaneComp &lc : lanes_[l]) {
            hub_.stageInto(lc.buffer);
            lc.component->tick();
        }
        probe::Hub::unstage();
        if (lane_leave_)
            lane_leave_();
        lanes_done_.fetch_add(1, std::memory_order_release);
    }
}

void
Simulator::parallelStep()
{
    startWorkers();
    for (Ticked *c : pre_)
        c->tick();
    if (!lanes_.empty()) {
        const std::uint64_t base =
            next_lane_.load(std::memory_order_relaxed);
        lanes_done_.store(0, std::memory_order_relaxed);
        lane_go_.store(base, std::memory_order_release);
        lane_go_.notify_all();
        runClaimedLanes(base);
        const unsigned all = static_cast<unsigned>(lanes_.size());
        unsigned spins = 0;
        while (lanes_done_.load(std::memory_order_acquire) < all) {
            if (++spins > 65536) {
                std::this_thread::yield();
                spins = 0;
            } else {
                cpuRelax();
            }
        }
    }
    // The mem phase runs after the barrier on this thread: it is where
    // cross-lane channel handoffs (L2 slice -> per-core link pushes)
    // commit, in slice registration order — exactly the serial order.
    for (Ticked *c : mem_)
        c->tick();
    hub_.flushStaged();
    for (Ticked *c : post_)
        c->tick();
    ++now_;
}

void
Simulator::syncLanes()
{
    if (lane_sync_)
        lane_sync_();
}

void
Simulator::step()
{
    if (engine_ == Engine::parallel) {
        parallelStep();
        return;
    }
    for (Ticked *c : components_)
        c->tick();
    ++now_;
}

Cycle
Simulator::nextWakeAll() const
{
    Cycle wake = Ticked::wake_never;
    for (const Ticked *c : components_)
        wake = std::min(wake, c->nextWake());
    return wake;
}

void
Simulator::run(Cycle n)
{
    const Cycle target = now_ + n;
    while (now_ < target) {
        if (fast_forward_) {
            const Cycle wake = nextWakeAll();
            if (wake > now_) {
                // Every tick in [now, wake) is a provable no-op: jump.
                const Cycle to = std::min(wake, target);
                skipped_ += to - now_;
                now_ = to;
                continue;
            }
        }
        step();
    }
    syncLanes();
}

Cycle
Simulator::runUntil(const std::function<bool()> &done, Cycle max_cycles)
{
    const Cycle limit = now_ + max_cycles;
    while (!done()) {
        if (now_ >= limit) {
            SKIPIT_PANIC("runUntil exceeded ", max_cycles,
                         " cycles; likely deadlock");
        }
        if (fast_forward_) {
            const Cycle wake = nextWakeAll();
            if (wake > now_) {
                if (wake == Ticked::wake_never) {
                    // Fully quiescent and done() still false: no future
                    // tick can change that. Trip the deadlock guard now
                    // instead of spinning to the limit.
                    now_ = limit;
                    continue;
                }
                const Cycle to = std::min(wake, limit);
                skipped_ += to - now_;
                now_ = to;
                continue;
            }
        }
        step();
    }
    syncLanes();
    return now_;
}

} // namespace skipit
