/**
 * @file
 * A lock-free skiplist in the Fraser / Herlihy-Shavit style used by the
 * log-free data structures of [23]: towers of Harris-style lists, marks
 * in bit 0 of each level's next pointer.
 */

#ifndef SKIPIT_DS_SKIPLIST_HH
#define SKIPIT_DS_SKIPLIST_HH

#include <array>
#include <atomic>

#include "nvm/persist.hh"
#include "set_interface.hh"

namespace skipit {

/** Lock-free probabilistic skiplist. */
class SkipList : public PersistentSet
{
  public:
    static constexpr unsigned max_level = 12;

    explicit SkipList(PersistCtx &ctx);

    bool contains(unsigned tid, std::uint64_t key) override;
    bool insert(unsigned tid, std::uint64_t key) override;
    bool remove(unsigned tid, std::uint64_t key) override;
    const char *name() const override { return "skiplist"; }

    std::size_t sizeSlow() const;

    /** A tower node; key and level are immutable after construction. */
    struct Node
    {
        std::atomic<std::uint64_t> key;
        std::atomic<std::uint64_t> level;
        std::array<std::atomic<std::uint64_t>, max_level> next;
    };

  private:
    static constexpr std::uint64_t mark_bit = 1;

    static Node *ptrOf(std::uint64_t raw)
    {
        return reinterpret_cast<Node *>(raw & ~mark_bit);
    }
    static bool markedOf(std::uint64_t raw) { return (raw & mark_bit) != 0; }
    static std::uint64_t rawOf(Node *n)
    {
        return reinterpret_cast<std::uint64_t>(n);
    }

    PersistCtx &ctx_;
    Node *head_;
    Node *tail_;

    /** Deterministic tower height for @p key (hash-derived geometric). */
    static unsigned levelFor(std::uint64_t key);

    /**
     * Find preds/succs at every level, unlinking marked nodes.
     * @return true if an unmarked bottom-level node with @p key was found
     */
    bool find(unsigned tid, std::uint64_t key,
              std::array<Node *, max_level> &preds,
              std::array<Node *, max_level> &succs);

    Node *newNode(unsigned tid, std::uint64_t key, unsigned level);
};

} // namespace skipit

#endif // SKIPIT_DS_SKIPLIST_HH
