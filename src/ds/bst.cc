#include "bst.hh"

#include "sim/logging.hh"

namespace skipit {

namespace {
constexpr std::uint64_t inf0 = max_user_key + 1;
constexpr std::uint64_t inf1 = max_user_key + 2;
constexpr std::uint64_t inf2 = max_user_key + 3;
} // namespace

Bst::Bst(PersistCtx &ctx) : ctx_(ctx)
{
    auto mkLeaf = [](std::uint64_t key) {
        Node *n = new Node;
        n->key.store(key, std::memory_order_relaxed);
        n->left.store(0, std::memory_order_relaxed);
        n->right.store(0, std::memory_order_relaxed);
        n->is_leaf = true;
        return n;
    };
    auto mkInternal = [](std::uint64_t key, Node *l, Node *r) {
        Node *n = new Node;
        n->key.store(key, std::memory_order_relaxed);
        n->left.store(reinterpret_cast<std::uint64_t>(l),
                      std::memory_order_relaxed);
        n->right.store(reinterpret_cast<std::uint64_t>(r),
                       std::memory_order_relaxed);
        n->is_leaf = false;
        return n;
    };
    // Standard sentinel arrangement of [53]: R(inf2) -> {S(inf1), leaf
    // (inf2)}; S -> {leaf(inf0), leaf(inf1)}. All user keys route to the
    // left subtree of S.
    s_ = mkInternal(inf1, mkLeaf(inf0), mkLeaf(inf1));
    root_ = mkInternal(inf2, s_, mkLeaf(inf2));
}

Bst::Node *
Bst::newLeaf(unsigned tid, std::uint64_t key)
{
    Node *n = new Node;
    ctx_.writePlain(tid, n->key, key);
    ctx_.writePlain(tid, n->left, 0);
    ctx_.writePlain(tid, n->right, 0);
    n->is_leaf = true;
    return n;
}

Bst::Node *
Bst::newInternal(unsigned tid, std::uint64_t key, std::uint64_t left_raw,
                 std::uint64_t right_raw)
{
    Node *n = new Node;
    ctx_.writePlain(tid, n->key, key);
    ctx_.writePlain(tid, n->left, left_raw);
    ctx_.writePlain(tid, n->right, right_raw);
    n->is_leaf = false;
    return n;
}

std::atomic<std::uint64_t> &
Bst::childEdge(Node *node, std::uint64_t key, unsigned tid)
{
    const std::uint64_t nkey = ctx_.readTrav(tid, node->key);
    return key < nkey ? node->left : node->right;
}

Bst::SeekRecord
Bst::seek(unsigned tid, std::uint64_t key)
{
    SeekRecord rec;
    rec.ancestor = root_;
    rec.successor = s_;
    rec.parent = s_;
    std::uint64_t parent_edge = ctx_.readTrav(tid, s_->left);
    rec.leaf = ptrOf(parent_edge);

    std::uint64_t current_edge =
        ctx_.readTrav(tid, childEdge(rec.leaf, key, tid));
    Node *current = ptrOf(current_edge);

    while (current != nullptr) {
        if (!taggedOf(parent_edge)) {
            rec.ancestor = rec.parent;
            rec.successor = rec.leaf;
        }
        rec.parent = rec.leaf;
        rec.leaf = current;
        parent_edge = current_edge;
        current_edge = ctx_.readTrav(tid, childEdge(current, key, tid));
        current = ptrOf(current_edge);
    }
    return rec;
}

bool
Bst::cleanup(unsigned tid, std::uint64_t key, const SeekRecord &rec)
{
    Node *ancestor = rec.ancestor;
    Node *parent = rec.parent;

    std::atomic<std::uint64_t> &succ_edge = childEdge(ancestor, key, tid);
    const std::uint64_t pkey = ctx_.readTrav(tid, parent->key);
    std::atomic<std::uint64_t> *child_addr =
        key < pkey ? &parent->left : &parent->right;
    std::atomic<std::uint64_t> *sibling_addr =
        key < pkey ? &parent->right : &parent->left;

    std::uint64_t child_raw = ctx_.readTrav(tid, *child_addr);
    if (!flaggedOf(child_raw)) {
        // The deletion being completed flagged the *other* child: the
        // leaf under deletion is the sibling of the key's side.
        sibling_addr = child_addr;
    }

    // Freeze the surviving edge with the tag bit (atomic OR loop).
    while (true) {
        std::uint64_t raw = ctx_.readTrav(tid, *sibling_addr);
        if (taggedOf(raw))
            break;
        std::uint64_t expected = raw;
        if (ctx_.cas(tid, *sibling_addr, expected, raw | tag_bit))
            break;
    }

    // Swing the ancestor's edge from the successor to the surviving
    // sibling, preserving a pending flag on the sibling edge.
    const std::uint64_t sibling_raw = ctx_.readTrav(tid, *sibling_addr);
    std::uint64_t expected = rawOf(rec.successor);
    const std::uint64_t replacement =
        (sibling_raw & ptr_mask) | (sibling_raw & flag_bit);
    return ctx_.cas(tid, succ_edge, expected, replacement);
}

bool
Bst::contains(unsigned tid, std::uint64_t key)
{
    SKIPIT_ASSERT(key >= 1 && key <= max_user_key, "key out of range");
    SeekRecord rec = seek(tid, key);
    const bool found = ctx_.readTrav(tid, rec.leaf->key) == key;
    // Critical read: persist the edge that linearizes the lookup.
    ctx_.read(tid, childEdge(rec.parent, key, tid));
    ctx_.opEnd(tid);
    return found;
}

bool
Bst::insert(unsigned tid, std::uint64_t key)
{
    SKIPIT_ASSERT(key >= 1 && key <= max_user_key, "key out of range");
    while (true) {
        SeekRecord rec = seek(tid, key);
        const std::uint64_t leaf_key = ctx_.readTrav(tid, rec.leaf->key);
        if (leaf_key == key) {
            ctx_.read(tid, childEdge(rec.parent, key, tid));
            ctx_.opEnd(tid);
            return false;
        }
        Node *new_leaf = newLeaf(tid, key);
        Node *internal =
            key < leaf_key
                ? newInternal(tid, leaf_key, rawOf(new_leaf),
                              rawOf(rec.leaf))
                : newInternal(tid, key, rawOf(rec.leaf), rawOf(new_leaf));
        // Both nodes must be durable before the publishing CAS.
        ctx_.persistInitRange(tid, &new_leaf->key, 3);
        ctx_.persistInitRange(tid, &internal->key, 3);
        std::atomic<std::uint64_t> &edge =
            childEdge(rec.parent, key, tid);
        std::uint64_t expected = rawOf(rec.leaf);
        if (ctx_.cas(tid, edge, expected, rawOf(internal))) {
            ctx_.opEnd(tid);
            return true;
        }
        // CAS failed: help a pending deletion on this edge, then retry.
        // The fresh nodes are leaked (registered, never reclaimed).
        if (ptrOf(expected) == rec.leaf &&
            (flaggedOf(expected) || taggedOf(expected))) {
            cleanup(tid, key, rec);
        }
    }
}

bool
Bst::remove(unsigned tid, std::uint64_t key)
{
    SKIPIT_ASSERT(key >= 1 && key <= max_user_key, "key out of range");
    bool injecting = true;
    Node *target = nullptr;
    while (true) {
        SeekRecord rec = seek(tid, key);
        std::atomic<std::uint64_t> &edge =
            childEdge(rec.parent, key, tid);
        if (injecting) {
            if (ctx_.readTrav(tid, rec.leaf->key) != key) {
                ctx_.read(tid, edge);
                ctx_.opEnd(tid);
                return false;
            }
            target = rec.leaf;
            // Injection: flag the edge to the leaf (linearization point).
            std::uint64_t expected = rawOf(rec.leaf);
            if (ctx_.cas(tid, edge, expected,
                         rawOf(rec.leaf) | flag_bit)) {
                injecting = false;
                if (cleanup(tid, key, rec)) {
                    ctx_.opEnd(tid);
                    return true;
                }
            } else if (ptrOf(expected) == rec.leaf &&
                       (flaggedOf(expected) || taggedOf(expected))) {
                // Help whoever is operating on this edge.
                cleanup(tid, key, rec);
            }
        } else {
            if (rec.leaf != target) {
                // A helper finished our deletion.
                ctx_.opEnd(tid);
                return true;
            }
            if (cleanup(tid, key, rec)) {
                ctx_.opEnd(tid);
                return true;
            }
        }
    }
}

std::size_t
Bst::countLeaves(const Node *n) const
{
    if (n == nullptr)
        return 0;
    if (n->is_leaf) {
        const std::uint64_t k = n->key.load(std::memory_order_acquire);
        return (k >= 1 && k <= max_user_key) ? 1 : 0;
    }
    return countLeaves(ptrOf(n->left.load(std::memory_order_acquire))) +
           countLeaves(ptrOf(n->right.load(std::memory_order_acquire)));
}

std::size_t
Bst::sizeSlow() const
{
    return countLeaves(root_);
}

} // namespace skipit
