#include "hash_table.hh"

#include "sim/logging.hh"

namespace skipit {

namespace {

std::uint64_t
mixKey(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

HashTable::HashTable(PersistCtx &ctx, std::size_t buckets) : ctx_(ctx)
{
    SKIPIT_ASSERT(buckets > 0, "hash table needs at least one bucket");
    buckets_.reserve(buckets);
    for (std::size_t i = 0; i < buckets; ++i)
        buckets_.push_back(std::make_unique<LinkedList>(ctx));
}

LinkedList &
HashTable::bucketFor(std::uint64_t key)
{
    return *buckets_[mixKey(key) % buckets_.size()];
}

bool
HashTable::contains(unsigned tid, std::uint64_t key)
{
    return bucketFor(key).contains(tid, key);
}

bool
HashTable::insert(unsigned tid, std::uint64_t key)
{
    return bucketFor(key).insert(tid, key);
}

bool
HashTable::remove(unsigned tid, std::uint64_t key)
{
    return bucketFor(key).remove(tid, key);
}

std::size_t
HashTable::sizeSlow() const
{
    std::size_t n = 0;
    for (const auto &b : buckets_)
        n += b->sizeSlow();
    return n;
}

} // namespace skipit
