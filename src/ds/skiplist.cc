#include "skiplist.hh"

#include "sim/logging.hh"

namespace skipit {

namespace {
constexpr std::uint64_t head_key = 0;
constexpr std::uint64_t tail_key = ~std::uint64_t{0} >> 8;

std::uint64_t
mixKey(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}
} // namespace

SkipList::SkipList(PersistCtx &ctx) : ctx_(ctx)
{
    tail_ = new Node;
    tail_->key.store(tail_key, std::memory_order_relaxed);
    tail_->level.store(max_level, std::memory_order_relaxed);
    head_ = new Node;
    head_->key.store(head_key, std::memory_order_relaxed);
    head_->level.store(max_level, std::memory_order_relaxed);
    for (unsigned l = 0; l < max_level; ++l) {
        tail_->next[l].store(0, std::memory_order_relaxed);
        head_->next[l].store(rawOf(tail_), std::memory_order_relaxed);
    }
}

unsigned
SkipList::levelFor(std::uint64_t key)
{
    // Deterministic geometric(1/2) height derived from the key, so runs
    // are reproducible regardless of thread interleaving.
    const std::uint64_t h = mixKey(key * 0x9e3779b97f4a7c15ULL + 1);
    unsigned level = 1;
    while (level < max_level && (h >> level) % 2 == 0)
        ++level;
    return level;
}

SkipList::Node *
SkipList::newNode(unsigned tid, std::uint64_t key, unsigned level)
{
    Node *n = new Node;
    ctx_.writePlain(tid, n->key, key);
    ctx_.writePlain(tid, n->level, level);
    for (unsigned l = 0; l < max_level; ++l)
        n->next[l].store(0, std::memory_order_relaxed);
    return n;
}

bool
SkipList::find(unsigned tid, std::uint64_t key,
               std::array<Node *, max_level> &preds,
               std::array<Node *, max_level> &succs)
{
  retry:
    Node *pred = head_;
    for (int lvl = max_level - 1; lvl >= 0; --lvl) {
        std::uint64_t curr_raw = ctx_.readTrav(tid, pred->next[lvl]);
        Node *curr = ptrOf(curr_raw);
        while (true) {
            SKIPIT_ASSERT(curr != nullptr, "skiplist fell off tail");
            std::uint64_t succ_raw = ctx_.readTrav(tid, curr->next[lvl]);
            while (markedOf(succ_raw)) {
                // curr is deleted at this level: snip it.
                std::uint64_t expected = rawOf(curr);
                if (!ctx_.cas(tid, pred->next[lvl], expected,
                              succ_raw & ~mark_bit)) {
                    goto retry;
                }
                curr = ptrOf(succ_raw);
                SKIPIT_ASSERT(curr != nullptr, "skiplist snip hit null");
                succ_raw = ctx_.readTrav(tid, curr->next[lvl]);
            }
            if (ctx_.readTrav(tid, curr->key) < key) {
                pred = curr;
                curr = ptrOf(succ_raw);
            } else {
                break;
            }
        }
        preds[static_cast<unsigned>(lvl)] = pred;
        succs[static_cast<unsigned>(lvl)] = curr;
    }
    return ctx_.readTrav(tid, succs[0]->key) == key;
}

bool
SkipList::contains(unsigned tid, std::uint64_t key)
{
    SKIPIT_ASSERT(key >= 1 && key <= max_user_key, "key out of range");
    Node *pred = head_;
    Node *curr = nullptr;
    for (int lvl = max_level - 1; lvl >= 0; --lvl) {
        curr = ptrOf(ctx_.readTrav(tid, pred->next[lvl]));
        while (true) {
            std::uint64_t succ_raw = ctx_.readTrav(tid, curr->next[lvl]);
            while (markedOf(succ_raw)) {
                curr = ptrOf(succ_raw);
                succ_raw = ctx_.readTrav(tid, curr->next[lvl]);
            }
            if (ctx_.readTrav(tid, curr->key) < key) {
                pred = curr;
                curr = ptrOf(succ_raw);
            } else {
                break;
            }
        }
    }
    // Critical read at the bottom level.
    const bool found = ctx_.readTrav(tid, curr->key) == key &&
                       !markedOf(ctx_.read(tid, curr->next[0]));
    ctx_.opEnd(tid);
    return found;
}

bool
SkipList::insert(unsigned tid, std::uint64_t key)
{
    SKIPIT_ASSERT(key >= 1 && key <= max_user_key, "key out of range");
    const unsigned top = levelFor(key);
    std::array<Node *, max_level> preds{}, succs{};
    while (true) {
        if (find(tid, key, preds, succs)) {
            // Present: persist the linearization evidence.
            ctx_.read(tid, succs[0]->next[0]);
            ctx_.opEnd(tid);
            return false;
        }
        Node *node = newNode(tid, key, top);
        for (unsigned l = 0; l < top; ++l)
            ctx_.writePlain(tid, node->next[l], rawOf(succs[l]));
        // Persist the tower before publication (key, level, next[0..top)).
        ctx_.persistInitRange(tid, &node->key, 2 + top);
        // Linearize by linking the bottom level.
        std::uint64_t expected = rawOf(succs[0]);
        if (!ctx_.cas(tid, preds[0]->next[0], expected, rawOf(node))) {
            // Lost the race; leak the registered node (no reclamation).
            continue;
        }
        // Link the upper levels (best effort, helped by find()).
        for (unsigned l = 1; l < top; ++l) {
            while (true) {
                std::uint64_t own_raw = ctx_.readTrav(tid, node->next[l]);
                if (markedOf(own_raw))
                    break; // concurrently deleted; stop linking
                std::uint64_t exp = rawOf(succs[l]);
                if (own_raw != exp) {
                    // Our snapshot is stale; refresh it.
                    std::uint64_t fix = own_raw;
                    if (!ctx_.cas(tid, node->next[l], fix, exp))
                        continue;
                }
                std::uint64_t pexp = rawOf(node);
                // pred at this level should point at succs[l]; swing to us.
                std::uint64_t pred_exp = rawOf(succs[l]);
                if (ctx_.cas(tid, preds[l]->next[l], pred_exp,
                             rawOf(node))) {
                    break;
                }
                (void)pexp;
                // Re-find to refresh preds/succs at all levels.
                if (find(tid, key, preds, succs)) {
                    if (succs[0] != node)
                        break; // a different tower with our key exists
                } else {
                    break; // our node was removed meanwhile
                }
            }
        }
        ctx_.opEnd(tid);
        return true;
    }
}

bool
SkipList::remove(unsigned tid, std::uint64_t key)
{
    SKIPIT_ASSERT(key >= 1 && key <= max_user_key, "key out of range");
    std::array<Node *, max_level> preds{}, succs{};
    while (true) {
        if (!find(tid, key, preds, succs)) {
            ctx_.read(tid, succs[0]->next[0]);
            ctx_.opEnd(tid);
            return false;
        }
        Node *victim = succs[0];
        const unsigned top = static_cast<unsigned>(
            ctx_.readTrav(tid, victim->level));
        // Mark the upper levels top-down.
        for (unsigned l = top; l-- > 1;) {
            std::uint64_t raw = ctx_.readTrav(tid, victim->next[l]);
            while (!markedOf(raw)) {
                std::uint64_t exp = raw;
                if (ctx_.cas(tid, victim->next[l], exp, raw | mark_bit))
                    break;
                raw = ctx_.readTrav(tid, victim->next[l]);
            }
        }
        // Marking the bottom level is the linearization point.
        std::uint64_t raw = ctx_.read(tid, victim->next[0]);
        while (true) {
            if (markedOf(raw))
                break; // someone else removed it
            std::uint64_t exp = raw;
            if (ctx_.cas(tid, victim->next[0], exp, raw | mark_bit)) {
                // Physical cleanup via a final find().
                find(tid, key, preds, succs);
                ctx_.opEnd(tid);
                return true;
            }
            raw = exp;
        }
        // Lost the bottom-level race: the key was removed concurrently.
        ctx_.opEnd(tid);
        return false;
    }
}

std::size_t
SkipList::sizeSlow() const
{
    std::size_t n = 0;
    const Node *curr = ptrOf(head_->next[0].load(std::memory_order_acquire) &
                             ~PersistCtx::lp_mark);
    while (curr != tail_) {
        const std::uint64_t raw =
            curr->next[0].load(std::memory_order_acquire);
        if (!markedOf(raw))
            ++n;
        curr = ptrOf(raw & ~PersistCtx::lp_mark);
        SKIPIT_ASSERT(curr != nullptr, "sizeSlow fell off the skiplist");
    }
    return n;
}

} // namespace skipit
