/**
 * @file
 * A Michael-Scott lock-free FIFO queue instrumented for persistence — the
 * second data-structure family the FliT paper evaluates, included here as
 * an extension beyond the paper's four sets.
 *
 * Durable variant in the style of the durable queues of Friedman et al.:
 * a node is persisted before it is linked, the tail link's CAS persists
 * the linkage, and the head bump's CAS persists the dequeue — so a crash
 * between operations loses nothing (verified by the crash-recovery
 * suite).
 */

#ifndef SKIPIT_DS_MS_QUEUE_HH
#define SKIPIT_DS_MS_QUEUE_HH

#include <atomic>
#include <cstdint>

#include "nvm/persist.hh"

namespace skipit {

/** Lock-free multi-producer multi-consumer FIFO of 64-bit values. */
class MsQueue
{
  public:
    explicit MsQueue(PersistCtx &ctx);

    /** Append @p value (values must be < 2^62; 0 is allowed). */
    void enqueue(unsigned tid, std::uint64_t value);

    /**
     * Pop the oldest value into @p out.
     * @return false if the queue was empty
     */
    bool dequeue(unsigned tid, std::uint64_t &out);

    /** Number of elements (single-threaded test helper). */
    std::size_t sizeSlow() const;

    /** A queue node; value immutable after construction. */
    struct Node
    {
        std::atomic<std::uint64_t> value;
        std::atomic<std::uint64_t> next;
    };

  private:
    static Node *ptrOf(std::uint64_t raw)
    {
        return reinterpret_cast<Node *>(raw);
    }
    static std::uint64_t rawOf(Node *n)
    {
        return reinterpret_cast<std::uint64_t>(n);
    }

    PersistCtx &ctx_;
    std::atomic<std::uint64_t> head_; //!< dummy-node sentinel scheme
    std::atomic<std::uint64_t> tail_;

    Node *newNode(unsigned tid, std::uint64_t value);
};

} // namespace skipit

#endif // SKIPIT_DS_MS_QUEUE_HH
