#include "linked_list.hh"

#include "sim/logging.hh"

namespace skipit {

namespace {
constexpr std::uint64_t head_key = 0;                  // below all user keys
constexpr std::uint64_t tail_key = ~std::uint64_t{0} >> 8; // above all
} // namespace

LinkedList::LinkedList(PersistCtx &ctx) : ctx_(ctx)
{
    tail_ = new Node;
    tail_->key.store(tail_key, std::memory_order_relaxed);
    tail_->next.store(0, std::memory_order_relaxed);
    head_ = new Node;
    head_->key.store(head_key, std::memory_order_relaxed);
    head_->next.store(rawOf(tail_), std::memory_order_relaxed);
}

LinkedList::Node *
LinkedList::newNode(unsigned tid, std::uint64_t key, std::uint64_t next_raw)
{
    Node *n = new Node;
    ctx_.writePlain(tid, n->key, key);
    ctx_.writePlain(tid, n->next, next_raw);
    // The node's contents must be durable before it is published, or a
    // crash right after the linking CAS would expose a zeroed node.
    ctx_.persistInitRange(tid, &n->key, 2);
    return n;
}

std::pair<LinkedList::Node *, LinkedList::Node *>
LinkedList::search(unsigned tid, std::uint64_t key)
{
    while (true) {
        Node *pred = head_;
        std::uint64_t curr_raw = ctx_.readTrav(tid, pred->next);
        Node *curr = ptrOf(curr_raw);
        bool retry = false;
        while (true) {
            SKIPIT_ASSERT(curr != nullptr, "list traversal fell off tail");
            std::uint64_t next_raw = ctx_.readTrav(tid, curr->next);
            if (markedOf(next_raw)) {
                // curr is logically deleted: snip it out.
                std::uint64_t expected = rawOf(curr);
                if (!ctx_.cas(tid, pred->next, expected,
                              next_raw & ~mark_bit)) {
                    retry = true;
                    break;
                }
                curr = ptrOf(next_raw);
                continue;
            }
            const std::uint64_t ckey = ctx_.readTrav(tid, curr->key);
            if (ckey >= key)
                return {pred, curr};
            pred = curr;
            curr = ptrOf(next_raw);
        }
        if (retry)
            continue;
    }
}

bool
LinkedList::contains(unsigned tid, std::uint64_t key)
{
    SKIPIT_ASSERT(key >= 1 && key <= max_user_key, "key out of range");
    auto [pred, curr] = search(tid, key);
    (void)pred;
    // Critical read: the lookup's linearization point must be persisted
    // under Automatic / NvTraverse semantics.
    const std::uint64_t next_raw = ctx_.read(tid, curr->next);
    const bool found = ctx_.readTrav(tid, curr->key) == key &&
                       !markedOf(next_raw);
    ctx_.opEnd(tid);
    return found;
}

bool
LinkedList::insert(unsigned tid, std::uint64_t key)
{
    SKIPIT_ASSERT(key >= 1 && key <= max_user_key, "key out of range");
    while (true) {
        auto [pred, curr] = search(tid, key);
        if (ctx_.readTrav(tid, curr->key) == key) {
            // Present: persist the evidence before reporting failure.
            ctx_.read(tid, curr->next);
            ctx_.opEnd(tid);
            return false;
        }
        Node *node = newNode(tid, key, rawOf(curr));
        std::uint64_t expected = rawOf(curr);
        if (ctx_.cas(tid, pred->next, expected, rawOf(node))) {
            ctx_.opEnd(tid);
            return true;
        }
        // Lost the race. The node was never published but its words are
        // registered with the persistence shadow, so it is leaked rather
        // than freed (consistent with the no-reclamation design).
    }
}

bool
LinkedList::remove(unsigned tid, std::uint64_t key)
{
    SKIPIT_ASSERT(key >= 1 && key <= max_user_key, "key out of range");
    while (true) {
        auto [pred, curr] = search(tid, key);
        if (ctx_.readTrav(tid, curr->key) != key) {
            ctx_.read(tid, curr->next);
            ctx_.opEnd(tid);
            return false;
        }
        std::uint64_t next_raw = ctx_.read(tid, curr->next);
        if (markedOf(next_raw))
            continue; // someone else is deleting it; re-search helps
        // Logical deletion: mark curr's next pointer.
        std::uint64_t expected = next_raw;
        if (!ctx_.cas(tid, curr->next, expected, next_raw | mark_bit))
            continue;
        // Physical deletion (best effort; search() cleans up otherwise).
        std::uint64_t pred_exp = rawOf(curr);
        ctx_.cas(tid, pred->next, pred_exp, next_raw);
        ctx_.opEnd(tid);
        return true;
    }
}

std::size_t
LinkedList::sizeSlow() const
{
    std::size_t n = 0;
    const Node *curr = ptrOf(head_->next.load(std::memory_order_acquire) &
                             ~PersistCtx::lp_mark);
    while (curr != tail_) {
        if (!markedOf(curr->next.load(std::memory_order_acquire)))
            ++n;
        curr = ptrOf(curr->next.load(std::memory_order_acquire) &
                     ~PersistCtx::lp_mark);
        SKIPIT_ASSERT(curr != nullptr, "sizeSlow fell off the list");
    }
    return n;
}

} // namespace skipit
