#include "ms_queue.hh"

#include "sim/logging.hh"

namespace skipit {

MsQueue::MsQueue(PersistCtx &ctx) : ctx_(ctx)
{
    Node *dummy = new Node;
    dummy->value.store(0, std::memory_order_relaxed);
    dummy->next.store(0, std::memory_order_relaxed);
    head_.store(rawOf(dummy), std::memory_order_relaxed);
    tail_.store(rawOf(dummy), std::memory_order_relaxed);
}

MsQueue::Node *
MsQueue::newNode(unsigned tid, std::uint64_t value)
{
    Node *n = new Node;
    ctx_.writePlain(tid, n->value, value);
    ctx_.writePlain(tid, n->next, 0);
    // Durable before linked (same rule as the sets' node init).
    ctx_.persistInitRange(tid, &n->value, 2);
    return n;
}

void
MsQueue::enqueue(unsigned tid, std::uint64_t value)
{
    SKIPIT_ASSERT(value < (std::uint64_t{1} << 62),
                  "value collides with pointer/mark encodings");
    Node *node = newNode(tid, value);
    while (true) {
        const std::uint64_t tail_raw = ctx_.readTrav(tid, tail_);
        Node *tail = ptrOf(tail_raw);
        std::uint64_t next_raw = ctx_.read(tid, tail->next);
        if (next_raw != 0) {
            // Tail is lagging: help swing it, then retry.
            std::uint64_t expected = tail_raw;
            ctx_.cas(tid, tail_, expected, next_raw);
            continue;
        }
        std::uint64_t expected = 0;
        if (ctx_.cas(tid, tail->next, expected, rawOf(node))) {
            // Linearized (and persisted by the CAS). Swing tail lazily.
            std::uint64_t texp = tail_raw;
            ctx_.cas(tid, tail_, texp, rawOf(node));
            ctx_.opEnd(tid);
            return;
        }
        // Lost the race; the fresh node stays registered and is reused
        // on the next attempt (it is still private).
    }
}

bool
MsQueue::dequeue(unsigned tid, std::uint64_t &out)
{
    while (true) {
        const std::uint64_t head_raw = ctx_.readTrav(tid, head_);
        Node *head = ptrOf(head_raw);
        const std::uint64_t next_raw = ctx_.read(tid, head->next);
        if (next_raw == 0) {
            ctx_.opEnd(tid);
            return false; // empty (only the dummy remains)
        }
        Node *next = ptrOf(next_raw);
        const std::uint64_t value = ctx_.readTrav(tid, next->value);
        std::uint64_t expected = head_raw;
        if (ctx_.cas(tid, head_, expected, next_raw)) {
            // The head bump is the (persisted) linearization point; the
            // old dummy is leaked (no reclamation).
            out = value;
            ctx_.opEnd(tid);
            return true;
        }
    }
}

std::size_t
MsQueue::sizeSlow() const
{
    std::size_t n = 0;
    const Node *curr =
        ptrOf(head_.load(std::memory_order_acquire) & ~PersistCtx::lp_mark);
    std::uint64_t next =
        curr->next.load(std::memory_order_acquire) & ~PersistCtx::lp_mark;
    while (next != 0) {
        ++n;
        curr = ptrOf(next);
        next = curr->next.load(std::memory_order_acquire) &
               ~PersistCtx::lp_mark;
    }
    return n;
}

} // namespace skipit
