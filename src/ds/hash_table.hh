/**
 * @file
 * A lock-free hash table in the style evaluated by [23]: a fixed array of
 * buckets, each an independent Harris linked list.
 */

#ifndef SKIPIT_DS_HASH_TABLE_HH
#define SKIPIT_DS_HASH_TABLE_HH

#include <memory>
#include <vector>

#include "linked_list.hh"
#include "set_interface.hh"

namespace skipit {

/** Fixed-size bucketed hash set. */
class HashTable : public PersistentSet
{
  public:
    /**
     * @param buckets number of buckets; sized so chains stay short at
     *                the benchmark's key range (load factor ~1)
     */
    HashTable(PersistCtx &ctx, std::size_t buckets);

    bool contains(unsigned tid, std::uint64_t key) override;
    bool insert(unsigned tid, std::uint64_t key) override;
    bool remove(unsigned tid, std::uint64_t key) override;
    const char *name() const override { return "hash-table"; }

    std::size_t sizeSlow() const;

  private:
    PersistCtx &ctx_;
    std::vector<std::unique_ptr<LinkedList>> buckets_;

    LinkedList &bucketFor(std::uint64_t key);
};

} // namespace skipit

#endif // SKIPIT_DS_HASH_TABLE_HH
