/**
 * @file
 * Harris's lock-free linked list [31], instrumented for persistence.
 *
 * Nodes pack a deletion mark into bit 0 of the next pointer. The paper's
 * §7.4 evaluates a 128-key-range version of this list under every
 * persistence mode and flush-avoidance policy.
 */

#ifndef SKIPIT_DS_LINKED_LIST_HH
#define SKIPIT_DS_LINKED_LIST_HH

#include <atomic>
#include <cstdint>

#include "nvm/persist.hh"
#include "set_interface.hh"

namespace skipit {

/** Harris lock-free sorted linked list. */
class LinkedList : public PersistentSet
{
  public:
    explicit LinkedList(PersistCtx &ctx);

    bool contains(unsigned tid, std::uint64_t key) override;
    bool insert(unsigned tid, std::uint64_t key) override;
    bool remove(unsigned tid, std::uint64_t key) override;
    const char *name() const override { return "linked-list"; }

    /** Count elements (single-threaded test helper, uninstrumented). */
    std::size_t sizeSlow() const;

    /** A list node; key is immutable after construction. */
    struct Node
    {
        std::atomic<std::uint64_t> key;
        std::atomic<std::uint64_t> next;
    };

  private:
    static constexpr std::uint64_t mark_bit = 1;

    static Node *ptrOf(std::uint64_t raw)
    {
        return reinterpret_cast<Node *>(raw & ~mark_bit);
    }
    static bool markedOf(std::uint64_t raw) { return (raw & mark_bit) != 0; }
    static std::uint64_t rawOf(Node *n)
    {
        return reinterpret_cast<std::uint64_t>(n);
    }

    PersistCtx &ctx_;
    Node *head_; //!< sentinel with key 0 (below all user keys + 1 offset)
    Node *tail_; //!< sentinel with key above max_user_key

    /**
     * Harris search: find the first unmarked node with key >= @p key,
     * snipping marked nodes along the way.
     * @return (pred, curr); curr may be the tail sentinel
     */
    std::pair<Node *, Node *> search(unsigned tid, std::uint64_t key);

    Node *newNode(unsigned tid, std::uint64_t key, std::uint64_t next_raw);
};

} // namespace skipit

#endif // SKIPIT_DS_LINKED_LIST_HH
