/**
 * @file
 * Common interface of the persistent lock-free sets evaluated in §7.4.
 *
 * All four structures (Harris linked list, hash table, Natarajan-Mittal
 * BST, skiplist) expose a set API; every shared-memory access goes through
 * a PersistCtx, which applies the configured persistence mode and
 * redundant-flush avoidance policy.
 *
 * Memory reclamation is deliberately omitted (removed nodes are leaked),
 * as in the research prototypes the paper builds on; benchmark footprints
 * are bounded by their key ranges.
 */

#ifndef SKIPIT_DS_SET_INTERFACE_HH
#define SKIPIT_DS_SET_INTERFACE_HH

#include <cstdint>

namespace skipit {

/** A concurrent set of 64-bit keys.
 *  Keys must be < 2^48 so that sentinel keys and pointer/mark encodings
 *  never collide with real keys. */
class PersistentSet
{
  public:
    virtual ~PersistentSet() = default;

    /** @return true if @p key is in the set. */
    virtual bool contains(unsigned tid, std::uint64_t key) = 0;

    /** @return true if @p key was inserted (false: already present). */
    virtual bool insert(unsigned tid, std::uint64_t key) = 0;

    /** @return true if @p key was removed (false: not present). */
    virtual bool remove(unsigned tid, std::uint64_t key) = 0;

    /** Human-readable structure name for benchmark output. */
    virtual const char *name() const = 0;
};

/** Largest key client code may use (sentinels live above this). */
inline constexpr std::uint64_t max_user_key = (std::uint64_t{1} << 48) - 1;

} // namespace skipit

#endif // SKIPIT_DS_SET_INTERFACE_HH
