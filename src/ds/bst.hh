/**
 * @file
 * The Natarajan-Mittal lock-free external binary search tree [53],
 * instrumented for persistence.
 *
 * External tree: internal nodes route, leaves store keys. Deletions use
 * edge flagging/tagging: bit 0 (flag) marks the edge to a leaf being
 * deleted, bit 1 (tag) marks the sibling edge so it cannot change while
 * the deletion is completed. Because the algorithm occupies these spare
 * pointer bits, link-and-persist (which needs bit 63 *and conflicts with
 * algorithms using spare bits per the paper §7.4*) is not applied to this
 * structure in the benchmarks.
 */

#ifndef SKIPIT_DS_BST_HH
#define SKIPIT_DS_BST_HH

#include <atomic>

#include "nvm/persist.hh"
#include "set_interface.hh"

namespace skipit {

/** Natarajan-Mittal lock-free external BST. */
class Bst : public PersistentSet
{
  public:
    explicit Bst(PersistCtx &ctx);

    bool contains(unsigned tid, std::uint64_t key) override;
    bool insert(unsigned tid, std::uint64_t key) override;
    bool remove(unsigned tid, std::uint64_t key) override;
    const char *name() const override { return "bst"; }

    std::size_t sizeSlow() const;

    /** Tree node. Leaves have null children; key immutable. */
    struct Node
    {
        std::atomic<std::uint64_t> key;
        std::atomic<std::uint64_t> left;
        std::atomic<std::uint64_t> right;
        bool is_leaf = false; //!< immutable after construction
    };

  private:
    static constexpr std::uint64_t flag_bit = 1; //!< edge under deletion
    static constexpr std::uint64_t tag_bit = 2;  //!< edge frozen
    static constexpr std::uint64_t ptr_mask = ~std::uint64_t{3};

    static Node *ptrOf(std::uint64_t raw)
    {
        return reinterpret_cast<Node *>(raw & ptr_mask);
    }
    static bool flaggedOf(std::uint64_t raw)
    {
        return (raw & flag_bit) != 0;
    }
    static bool taggedOf(std::uint64_t raw) { return (raw & tag_bit) != 0; }
    static std::uint64_t rawOf(Node *n)
    {
        return reinterpret_cast<std::uint64_t>(n);
    }

    /** Result of a seek: the deletion window of [53]. */
    struct SeekRecord
    {
        Node *ancestor = nullptr;  //!< parent of successor
        Node *successor = nullptr; //!< last node on path via untagged edge
        Node *parent = nullptr;    //!< parent of leaf
        Node *leaf = nullptr;      //!< terminal leaf reached
    };

    PersistCtx &ctx_;
    Node *root_; //!< sentinel R (key inf2)
    Node *s_;    //!< sentinel S (key inf1), left child of R

    SeekRecord seek(unsigned tid, std::uint64_t key);
    /** Child edge of @p node on @p key's side. */
    std::atomic<std::uint64_t> &childEdge(Node *node, std::uint64_t key,
                                          unsigned tid);
    Node *newLeaf(unsigned tid, std::uint64_t key);
    Node *newInternal(unsigned tid, std::uint64_t key,
                      std::uint64_t left_raw, std::uint64_t right_raw);
    /** Complete a pending deletion in @p rec's window.
     *  @return true if this call (or a helper) finished it */
    bool cleanup(unsigned tid, std::uint64_t key, const SeekRecord &rec);

    std::size_t countLeaves(const Node *n) const;
};

} // namespace skipit

#endif // SKIPIT_DS_BST_HH
