/**
 * @file
 * The full simulated machine: N BOOM-style cores (Hart + LSU + L1 data
 * cache with flush unit) sharing one inclusive L2 over TileLink, backed
 * by a DRAM model — the paper's experimental platform (§7.1), with core
 * count parameterized for the 1/2/4/8-thread sweeps.
 */

#ifndef SKIPIT_SOC_SOC_HH
#define SKIPIT_SOC_SOC_HH

#include <memory>
#include <string>
#include <vector>

#include "core/hart.hh"
#include "core/lsu.hh"
#include "dram/dram.hh"
#include "l1/data_cache.hh"
#include "l2/cache.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/watchdog.hh"
#include "tilelink/link.hh"
#include "tilelink/xbar.hh"
#include "verify/checker.hh"
#include "verify/durability.hh"

namespace skipit {

/** Whole-machine configuration. */
struct SoCConfig
{
    /** Hart count (1-64). The paper's platform is dual-core (§7.1);
     *  scale-out configurations stripe more harts over the sliced L2. */
    unsigned cores = 2;
    L1Config l1{};
    L2Config l2{};
    DramConfig dram{};
    LsuConfig lsu{};
    Cycle link_latency = 3;
    unsigned dispatch_width = 2;
    /** Stall watchdog (on by default; detection only, zero timing cost). */
    WatchdogConfig watchdog{};
    /** Coherence invariant checker (on by default; read-only, zero timing
     *  cost — enabling it cannot change a single cycle count). The SoC
     *  clears verify.check_skip automatically when the configuration
     *  makes the skip bit genuinely unsound (skip_it without
     *  grant_data_dirty, reachable via the ablation sweep axes). */
    verify::CheckerConfig verify{};
    /** Power-failure injection + durability oracle (off by default;
     *  observer-only and cycle-neutral when enabled: the freezer and
     *  oracle never self-schedule and never mutate simulated state, so
     *  cycle counts are unchanged — asserted by
     *  tests/verify/test_durability.cc). */
    verify::DurabilityConfig durability{};
    /** Schedule perturbation on every TileLink channel (off by default;
     *  timing-only fault injection for fuzzing). Each core's link mixes
     *  its index into the seed so links jitter independently. */
    ChannelJitter jitter{};
    /** Quiescence fast-forward (on by default): skip the clock across
     *  provably idle stretches. Bit-identical timing — see the
     *  Ticked::nextWake() contract — so there is no reason to turn it
     *  off outside of equivalence tests. */
    bool fast_forward = true;
    /** Legacy point-to-point L1↔L2 wiring without the crossbar.
     *  Requires l2.slices == 1. Kept solely so the equivalence tests
     *  can demonstrate the crossbar at slices=1 is bit-identical. */
    bool direct_l2_wiring = false;
    /** Tick engine. The serial engine is the reference; the parallel
     *  engine ticks per-core lanes on a worker pool and is bit-identical
     *  to it at any worker count (docs/PARALLELISM.md). Requires the
     *  crossbar topology (no direct_l2_wiring). */
    Simulator::Engine engine = Simulator::Engine::serial;
    /** Parallel-engine thread count including the stepping thread;
     *  0 = hardware concurrency. Ignored by the serial engine. */
    unsigned workers = 0;

    /** Convenience: toggle every Skip-It-related feature at once. */
    SoCConfig &
    withSkipIt(bool on)
    {
        l1.skip_it = on;
        l2.grant_data_dirty = on;
        return *this;
    }

    /** One-line-per-parameter human-readable description. */
    std::string describe() const;
};

/**
 * Owns and wires all components. Typical use:
 *
 *   SoC soc(cfg);
 *   soc.hart(0).setProgram(p0);
 *   soc.hart(1).setProgram(p1);
 *   Cycle t = soc.runToCompletion();
 */
class SoC
{
  public:
    explicit SoC(const SoCConfig &cfg);

    Simulator &sim() { return sim_; }
    Stats &stats() { return stats_; }
    unsigned cores() const { return cfg_.cores; }

    Hart &hart(unsigned core) { return *harts_.at(core); }
    Lsu &lsu(unsigned core) { return *lsus_.at(core); }
    DataCache &l1(unsigned core) { return *l1s_.at(core); }
    /** Slice 0 — the whole L2 in the default slices=1 configuration. */
    L2Cache &l2() { return *l2s_.front(); }
    /** Slice @p slice of the address-interleaved L2. */
    L2Cache &l2(unsigned slice) { return *l2s_.at(slice); }
    unsigned l2Slices() const { return unsigned(l2s_.size()); }
    /** True when every L2 slice (and the crossbar) is quiesced. */
    bool l2Idle() const;
    /** The memory-side crossbar; nullptr under direct_l2_wiring. */
    TLXbar *xbar() { return xbar_.get(); }
    Dram &dram() { return *dram_; }
    Watchdog &watchdog() { return *watchdog_; }
    verify::CoherenceChecker &checker() { return *checker_; }
    const verify::CoherenceChecker &checker() const { return *checker_; }
    verify::DurabilityOracle &durability() { return *durability_; }
    const verify::DurabilityOracle &durability() const
    {
        return *durability_;
    }

    /** Run until every hart's program is done. @return elapsed cycles. */
    Cycle runToCompletion(Cycle max_cycles = 100'000'000);

    /** Run until the memory system is fully idle as well. */
    Cycle runToQuiescence(Cycle max_cycles = 100'000'000);

    /** Set the same program on all harts (per-thread copies). */
    void setPrograms(const std::vector<Program> &programs);

  private:
    SoCConfig cfg_;
    Simulator sim_;
    Stats stats_;
    std::unique_ptr<Dram> dram_;
    std::unique_ptr<TLXbar> xbar_;
    std::vector<std::unique_ptr<L2Cache>> l2s_;
    std::vector<std::unique_ptr<TLLink>> links_;
    std::vector<std::unique_ptr<DataCache>> l1s_;
    std::vector<std::unique_ptr<Lsu>> lsus_;
    std::vector<std::unique_ptr<Hart>> harts_;
    std::unique_ptr<Watchdog> watchdog_;
    std::unique_ptr<verify::CoherenceChecker> checker_;
    std::unique_ptr<verify::DurabilityOracle> durability_;
    std::unique_ptr<verify::CrashFreezer> freezer_;
};

} // namespace skipit

#endif // SKIPIT_SOC_SOC_HH
