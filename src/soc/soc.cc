#include "soc.hh"

#include <algorithm>
#include <sstream>

namespace skipit {

SoC::SoC(const SoCConfig &cfg) : cfg_(cfg)
{
    SKIPIT_ASSERT(cfg.cores >= 1 && cfg.cores <= 64,
                  "core count out of range");

    const unsigned slices = std::max(1u, cfg.l2.slices);
    SKIPIT_ASSERT(!cfg.direct_l2_wiring || slices == 1,
                  "direct_l2_wiring requires a single L2 slice");
    const bool parallel = cfg.engine == Simulator::Engine::parallel;
    SKIPIT_ASSERT(!parallel || !cfg.direct_l2_wiring,
                  "the parallel engine requires the crossbar topology");

    dram_ = std::make_unique<Dram>("dram", sim_, cfg.dram, stats_);
    if (!cfg.direct_l2_wiring) {
        // One L2IndexPolicy value feeds both the crossbar's routing and
        // every slice's directory indexing — the single source of truth
        // for where a line homes.
        xbar_ = std::make_unique<TLXbar>("xbar", sim_,
                                         cfg.l2.indexPolicy());
    }
    for (unsigned s = 0; s < slices; ++s) {
        const std::string sn =
            slices == 1 ? "l2" : "l2.s" + std::to_string(s);
        l2s_.push_back(std::make_unique<L2Cache>(
            sn, sim_, cfg.l2, *dram_, stats_, s));
    }

    for (unsigned c = 0; c < cfg.cores; ++c) {
        const std::string cn = "core" + std::to_string(c);
        ChannelJitter jit = cfg.jitter;
        // Stir the core index in so the per-core links draw from
        // unrelated streams even for adjacent base seeds.
        jit.seed = jit.seed * 0x9e3779b97f4a7c15ULL + c + 1;
        links_.push_back(std::make_unique<TLLink>(sim_, cfg.link_latency,
                                                  cn + ".tl", jit));
        if (cfg.direct_l2_wiring)
            l2s_[0]->connectClient(static_cast<AgentId>(c),
                                   *links_.back());
        else
            xbar_->connectClient(static_cast<AgentId>(c), *links_.back());
        l1s_.push_back(std::make_unique<DataCache>(
            cn + ".l1d", sim_, cfg.l1, static_cast<AgentId>(c),
            *links_.back(), stats_));
        lsus_.push_back(std::make_unique<Lsu>(cn + ".lsu", sim_, cfg.lsu,
                                              *l1s_.back(), stats_,
                                              static_cast<AgentId>(c)));
        harts_.push_back(std::make_unique<Hart>(cn + ".hart", sim_,
                                                *lsus_.back(),
                                                cfg.dispatch_width));
    }
    if (!cfg.direct_l2_wiring) {
        for (unsigned s = 0; s < slices; ++s) {
            for (unsigned c = 0; c < cfg.cores; ++c) {
                l2s_[s]->connectPort(static_cast<AgentId>(c),
                                     xbar_->port(s, c));
            }
        }
    }

    // Tick order: memory side first, then the crossbar (so wire
    // arrivals are routed the cycle they land), then caches, then
    // cores. All cross-component traffic flows through >= 1-cycle
    // queues, so the order affects nothing but same-cycle wakeups.
    //
    // Affinities place each component for the parallel engine: DRAM and
    // the crossbar are shared producers (pre phase), the L2 slices form
    // the serial commit phase that pushes responses into the per-core
    // links (mem phase), and each core's L1 + LSU + Hart tick as one
    // lane. The serial engine ignores the affinities; the parallel
    // engine's schedule is bit-identical to it (docs/PARALLELISM.md).
    using Affinity = Simulator::Affinity;
    // The crash freezer ticks before the DRAM controller so a crash
    // freezes the persist-domain image at the *start* of the crash
    // cycle, before any cycle-C writes are accepted or issued. The
    // oracle itself ticks last (post), after the probe hub has flushed
    // the cycle's staged events. Both are pure observers.
    durability_ = std::make_unique<verify::DurabilityOracle>(
        "durability", sim_, cfg.durability);
    freezer_ = std::make_unique<verify::CrashFreezer>("crash-freezer",
                                                      *durability_);
    sim_.add(*freezer_, {Affinity::pre, 0});
    sim_.add(*dram_, {Affinity::pre, 0});
    if (xbar_)
        sim_.add(*xbar_, {Affinity::pre, 0});
    for (auto &l2 : l2s_)
        sim_.add(*l2, {Affinity::mem, 0});
    for (unsigned c = 0; c < cfg.cores; ++c)
        sim_.add(*l1s_[c], {Affinity::lane, c});
    for (unsigned c = 0; c < cfg.cores; ++c)
        sim_.add(*lsus_[c], {Affinity::lane, c});
    for (unsigned c = 0; c < cfg.cores; ++c)
        sim_.add(*harts_[c], {Affinity::lane, c});

    // The watchdog ticks last so it sees each cycle's settled state.
    watchdog_ = std::make_unique<Watchdog>("watchdog", sim_, cfg.watchdog);
    for (auto &l1 : l1s_)
        watchdog_->watch(*l1);
    for (auto &l2 : l2s_)
        watchdog_->watch(*l2);
    sim_.add(*watchdog_, {Affinity::post, 0});

    // The invariant checker ticks after everything (observer only). A
    // skip bit is only meaningful when GrantData vs GrantDataDirty can
    // actually distinguish clean fills; with grant_data_dirty off the
    // sweep axes can produce configurations where it is unsound, so the
    // skip check follows the feature set.
    verify::CheckerConfig vcfg = cfg.verify;
    vcfg.check_skip = vcfg.check_skip && cfg.l1.skip_it &&
                      cfg.l2.grant_data_dirty;
    checker_ = std::make_unique<verify::CoherenceChecker>("checker", sim_,
                                                          vcfg);
    for (auto &l1 : l1s_)
        checker_->addL1(*l1);
    for (auto &l2 : l2s_)
        checker_->setL2(*l2);
    checker_->setDram(*dram_);
    sim_.add(*checker_, {Affinity::post, 0});

    for (auto &l1 : l1s_)
        durability_->addL1(*l1);
    for (auto &l2 : l2s_)
        durability_->setL2(*l2);
    durability_->setDram(*dram_);
    sim_.add(*durability_, {Affinity::post, 0});
    if (cfg.durability.enabled)
        sim_.probes().attach(*durability_);

    // A watchdog stall report triggers a full invariant sweep: is the
    // stall a liveness bug or a symptom of broken coherence? With the
    // durability oracle on, the fatal report also captures what the
    // persist domain would look like if the power failed right here.
    watchdog_->setEscalation([this](std::ostream &os) {
        checker_->escalate(os);
        if (cfg_.durability.enabled)
            durability_->reportSummary(os);
    });

    sim_.setFastForward(cfg.fast_forward);

    if (parallel) {
        // Counter traffic from concurrently-ticked lanes flows through
        // per-lane shards; the engine folds them at every sync point.
        stats_.enableShards(cfg.cores);
        sim_.setLaneHooks(
            [this](unsigned lane) { stats_.enterShard(lane); },
            [] { Stats::leaveShard(); },
            [this] { stats_.foldShards(); });
        sim_.setEngine(Simulator::Engine::parallel, cfg.workers);
    }
}

std::string
SoCConfig::describe() const
{
    std::ostringstream os;
    os << "cores: " << cores << "\n"
       << "l1: " << (l1.sets * l1.ways * line_bytes) / 1024 << " KiB, "
       << l1.ways << "-way, " << l1.mshrs << " MSHRs, flush queue "
       << l1.flush_queue_depth << ", " << l1.fshrs << " FSHRs\n"
       << "l1 features: skip-it " << (l1.skip_it ? "on" : "off")
       << ", coalesce " << (l1.coalesce ? "on" : "off")
       << (l1.cross_kind_coalesce ? " (+cross-kind)" : "")
       << ", wide data array "
       << (l1.wide_data_array ? "on" : "off") << "\n"
       << "l2: " << (l2.sets * l2.ways * line_bytes) / 1024 << " KiB, "
       << l2.ways << "-way, " << l2.mshrs << " MSHRs, llc-skip "
       << (l2.llc_skip ? "on" : "off") << ", grant-data-dirty "
       << (l2.grant_data_dirty ? "on" : "off") << "\n"
       << "l2 policies: " << toString(l2.policy) << ", "
       << toString(l2.index) << " index, " << toString(l2.replace)
       << " replacement\n"
       << "topology: "
       << (direct_l2_wiring ? "direct point-to-point"
                            : "crossbar, " +
                                  std::to_string(std::max(1u, l2.slices)) +
                                  " address-interleaved slice" +
                                  (std::max(1u, l2.slices) > 1 ? "s" : ""))
       << "\n"
       << "dram: read " << dram.latency << ", write-ack "
       << dram.write_ack_latency << ", issue interval "
       << dram.issue_interval << "\n"
       << "link latency: " << link_latency << "\n"
       << "engine: "
       << (engine == Simulator::Engine::parallel
               ? "parallel, " +
                     (workers == 0 ? std::string("hw-concurrency")
                                   : std::to_string(workers)) +
                     " workers"
               : std::string("serial"))
       << "\n"
       << "fast-forward: " << (fast_forward ? "on" : "off") << "\n"
       << "checker: " << (verify.enabled ? "on" : "off")
       << (verify.enabled && !verify.fatal ? " (latching)" : "")
       << ", jitter: " << (jitter.enabled ? "on" : "off");
    if (durability.enabled) {
        os << "\ndurability: on";
        if (durability.crash_at != 0)
            os << ", crash at cycle " << durability.crash_at;
        if (!durability.crash_on_stage.empty())
            os << ", crash on stage " << durability.crash_on_stage;
        if (!durability.fatal)
            os << " (latching)";
    }
    if (jitter.enabled) {
        os << " (seed " << jitter.seed << ", max-delay "
           << jitter.max_delay << ", burst " << jitter.burst_chance
           << "x" << jitter.burst_len << ")";
    }
    os << "\n";
    return os.str();
}

Cycle
SoC::runToCompletion(Cycle max_cycles)
{
    const Cycle start = sim_.now();
    sim_.runUntil(
        [&] {
            for (auto &hart : harts_) {
                if (!hart->done())
                    return false;
            }
            return true;
        },
        max_cycles);
    return sim_.now() - start;
}

Cycle
SoC::runToQuiescence(Cycle max_cycles)
{
    const Cycle start = sim_.now();
    sim_.runUntil(
        [&] {
            for (auto &hart : harts_) {
                if (!hart->done())
                    return false;
            }
            for (auto &l1 : l1s_) {
                if (!l1->quiesced())
                    return false;
            }
            return l2Idle();
        },
        max_cycles);
    return sim_.now() - start;
}

bool
SoC::l2Idle() const
{
    if (xbar_ && !xbar_->idle())
        return false;
    for (const auto &l2 : l2s_) {
        if (!l2->idle())
            return false;
    }
    return true;
}

void
SoC::setPrograms(const std::vector<Program> &programs)
{
    SKIPIT_ASSERT(programs.size() <= harts_.size(),
                  "more programs than harts");
    for (std::size_t i = 0; i < programs.size(); ++i)
        harts_[i]->setProgram(programs[i]);
}

} // namespace skipit
