#include "store.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace skipit::kv {

namespace {

/** splitmix64 finalizer: the repo's standard deterministic mixer. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

/** Mirror node: the host-side twin of one persistent skiplist node. */
struct KvStore::Node
{
    std::uint64_t key = 0;
    Addr addr = 0;
    unsigned level = 1;
    Addr value_addr = 0;
    std::uint64_t version = 0;
    std::vector<Node *> next; //!< size = level (head: max_level)

    /// @name Word addresses inside the persistent node
    /// @{
    Addr keyAddr() const { return addr; }
    Addr valuePtrAddr() const { return addr + 8; }
    Addr levelAddr() const { return addr + 16; }
    Addr nextAddr(unsigned lvl) const { return addr + 24 + 8 * lvl; }
    /// @}
};

KvStore::KvStore(const KvStoreConfig &cfg)
    : cfg_(cfg), base_(KvLayout::baseFor(cfg.hart)),
      log_head_(base_ + KvLayout::log_off),
      node_head_(base_ + KvLayout::node_off),
      value_words_(std::max(1u, (cfg.value_bytes + 7) / 8))
{
    // The head sentinel is a real persistent node (key 0 sorts below
    // every user key; user keys are >= 1).
    head_ = std::make_unique<Node>();
    head_->key = 0;
    head_->level = max_level;
    head_->next.assign(max_level, nullptr);
    head_->addr = node_head_;
    node_head_ += (nodeBytes(max_level) + line_bytes - 1) &
                  ~static_cast<Addr>(line_bytes - 1);
    writeWord(nullptr, head_->keyAddr(), 0);
    writeWord(nullptr, head_->levelAddr(), max_level);
    writeWord(nullptr, head_->valuePtrAddr(), 0);
    for (unsigned l = 0; l < max_level; ++l)
        writeWord(nullptr, head_->nextAddr(l), 0);
    writeWord(nullptr, metaLogHead(), log_head_);
    writeWord(nullptr, metaNodeHead(), node_head_);
    writeWord(nullptr, metaKeyCount(), 0);
}

KvStore::~KvStore() = default;

unsigned
KvStore::levelFor(std::uint64_t key)
{
    // Hash-derived geometric (p = 1/2), the src/ds/skiplist idiom: the
    // tower height is a pure function of the key, so the index shape is
    // independent of insertion order.
    std::uint64_t h = mix64(key * 0x9e3779b97f4a7c15ULL + 0x1234567);
    unsigned level = 1;
    while ((h & 1) != 0 && level < max_level) {
        ++level;
        h >>= 1;
    }
    return level;
}

std::uint64_t
KvStore::valueWord(std::uint64_t key, std::uint64_t version, unsigned idx)
{
    return mix64(key ^ (version << 20) ^ (static_cast<std::uint64_t>(idx)
                                          << 52));
}

void
KvStore::writeWord(Program *prog, Addr addr, std::uint64_t v)
{
    LineData &line = image_[lineAlign(addr)];
    const unsigned off = lineOffset(addr);
    for (unsigned i = 0; i < 8; ++i)
        line[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
    if (prog != nullptr)
        prog->push_back(MemOp::store(addr, v));
}

void
KvStore::loadWord(Program *prog, Addr addr)
{
    if (prog != nullptr)
        prog->push_back(MemOp::load(addr));
}

void
KvStore::cleanRange(Program *prog, Addr addr, std::size_t bytes)
{
    if (prog == nullptr)
        return;
    for (Addr a = lineAlign(addr); a < addr + bytes; a += line_bytes) {
        prog->push_back(MemOp::clean(a));
        epoch_lines_.insert(a);
    }
}

void
KvStore::emitCheckpoint(Program &prog)
{
    if (epoch_lines_.empty())
        return;
    for (const Addr a : epoch_lines_)
        prog.push_back(MemOp::clean(a));
    prog.push_back(MemOp::fence());
    epoch_lines_.clear();
}

std::uint64_t
KvStore::imageWord(Addr addr) const
{
    const auto it = image_.find(lineAlign(addr));
    if (it == image_.end())
        return 0;
    const unsigned off = lineOffset(addr);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(it->second[off + i]) << (8 * i);
    return v;
}

std::uint64_t
KvStore::version(std::uint64_t key) const
{
    const auto it = by_key_.find(key);
    SKIPIT_ASSERT(it != by_key_.end(), "kv: version of absent key ", key);
    return it->second->version;
}

Addr
KvStore::valueAddr(std::uint64_t key) const
{
    const auto it = by_key_.find(key);
    return it == by_key_.end() ? 0 : it->second->value_addr;
}

KvStore::Node *
KvStore::search(Program *prog, std::uint64_t key,
                std::vector<Node *> &preds)
{
    // The exact trace a pointer-chasing skiplist search issues: at each
    // hop, load the pred's next pointer, then the candidate's key.
    preds.assign(max_level, head_.get());
    Node *x = head_.get();
    for (unsigned lvl = max_level; lvl-- > 0;) {
        for (;;) {
            loadWord(prog, x->nextAddr(lvl));
            Node *nxt = x->next[lvl];
            if (nxt == nullptr)
                break;
            loadWord(prog, nxt->keyAddr());
            if (nxt->key >= key)
                break;
            x = nxt;
        }
        preds[lvl] = x;
    }
    Node *cand = x->next[0];
    return (cand != nullptr && cand->key == key) ? cand : nullptr;
}

Addr
KvStore::appendRecord(Program *prog, std::uint64_t key,
                      std::uint64_t version)
{
    const Addr rec = log_head_;
    SKIPIT_ASSERT(rec + recordBytes() <=
                      base_ + KvLayout::region_stride,
                  "kv: value log overflow (hart ", cfg_.hart, ")");
    writeWord(prog, rec, key);
    writeWord(prog, rec + 8, version);
    for (unsigned w = 0; w < value_words_; ++w)
        writeWord(prog, rec + 16 + 8 * w, valueWord(key, version, w));
    log_head_ += (recordBytes() + line_bytes - 1) &
                 ~static_cast<Addr>(line_bytes - 1);
    writeWord(prog, metaLogHead(), log_head_);
    return rec;
}

void
KvStore::loadRecord(Program *prog, Addr addr) const
{
    for (unsigned w = 0; w < 2 + value_words_; ++w)
        loadWord(prog, addr + 8 * w);
}

void
KvStore::emitGet(Program &prog, std::uint64_t key)
{
    std::vector<Node *> preds;
    Node *n = search(&prog, key, preds);
    SKIPIT_ASSERT(n != nullptr, "kv: get of absent key ", key);
    loadWord(&prog, n->valuePtrAddr());
    loadRecord(&prog, n->value_addr);
}

void
KvStore::emitUpdate(Program &prog, std::uint64_t key)
{
    std::vector<Node *> preds;
    Node *n = search(&prog, key, preds);
    SKIPIT_ASSERT(n != nullptr, "kv: update of absent key ", key);

    // Value epoch: the record (and the log head) must be durable before
    // the index can point at it.
    const Addr rec = appendRecord(&prog, key, n->version + 1);
    cleanRange(&prog, rec, recordBytes());
    cleanRange(&prog, metaLogHead(), 8);
    prog.push_back(MemOp::fence());

    // Publish epoch: swing the value pointer, then conservatively clean
    // the whole node — the lines holding its (unchanged) tower are the
    // redundant cleans the skip bit eats.
    writeWord(&prog, n->valuePtrAddr(), rec);
    n->value_addr = rec;
    ++n->version;
    cleanRange(&prog, n->addr, nodeBytes(n->level));
    prog.push_back(MemOp::fence());
}

std::uint64_t
KvStore::insertImpl(Program *prog)
{
    const std::uint64_t key = ++key_count_;
    const unsigned level = levelFor(key);

    std::vector<Node *> preds;
    SKIPIT_ASSERT(search(prog, key, preds) == nullptr,
                  "kv: insert of existing key ", key);

    // Value epoch.
    const Addr rec = appendRecord(prog, key, 0);
    cleanRange(prog, rec, recordBytes());
    cleanRange(prog, metaLogHead(), 8);
    if (prog != nullptr)
        prog->push_back(MemOp::fence());

    // Node-init epoch: the node's words must be durable before any
    // pred publishes a pointer to them (a crash in between must not
    // resurrect a zero-filled node).
    auto owned = std::make_unique<Node>();
    Node *node = owned.get();
    nodes_.push_back(std::move(owned));
    node->key = key;
    node->level = level;
    node->value_addr = rec;
    node->next.assign(level, nullptr);
    node->addr = node_head_;
    node_head_ += (nodeBytes(level) + line_bytes - 1) &
                  ~static_cast<Addr>(line_bytes - 1);
    SKIPIT_ASSERT(node_head_ <= base_ + KvLayout::log_off,
                  "kv: node arena overflow (hart ", cfg_.hart, ")");
    writeWord(prog, node->keyAddr(), key);
    writeWord(prog, node->valuePtrAddr(), rec);
    writeWord(prog, node->levelAddr(), level);
    for (unsigned l = 0; l < level; ++l) {
        node->next[l] = preds[l]->next[l];
        writeWord(prog, node->nextAddr(l),
                  node->next[l] == nullptr ? 0 : node->next[l]->addr);
    }
    cleanRange(prog, node->addr, nodeBytes(level));
    if (prog != nullptr)
        prog->push_back(MemOp::fence());

    // Publish epoch: link every level, then clean each touched pred's
    // full footprint (one word per pred changed; tall preds span two
    // lines — more skip-bit fodder) plus the manifest.
    for (unsigned l = 0; l < level; ++l) {
        writeWord(prog, preds[l]->nextAddr(l), node->addr);
        preds[l]->next[l] = node;
    }
    writeWord(prog, metaNodeHead(), node_head_);
    writeWord(prog, metaKeyCount(), key_count_);
    Node *last = nullptr;
    for (unsigned l = 0; l < level; ++l) {
        if (preds[l] == last)
            continue; // contiguous duplicate: same pred serves a run
        last = preds[l];
        cleanRange(prog, last->addr, nodeBytes(last->level));
    }
    cleanRange(prog, metaLogHead(), 24);
    if (prog != nullptr)
        prog->push_back(MemOp::fence());

    by_key_[key] = node;
    return key;
}

std::uint64_t
KvStore::emitInsert(Program &prog)
{
    return insertImpl(&prog);
}

void
KvStore::emitScan(Program &prog, std::uint64_t key, unsigned n)
{
    std::vector<Node *> preds;
    search(&prog, key, preds);
    Node *x = preds[0]->next[0]; // first key >= the scan start
    for (unsigned i = 0; i < n && x != nullptr; ++i) {
        loadWord(&prog, x->keyAddr());
        loadWord(&prog, x->valuePtrAddr());
        loadRecord(&prog, x->value_addr);
        loadWord(&prog, x->nextAddr(0));
        x = x->next[0];
    }
}

void
KvStore::prefill(std::uint64_t n)
{
    SKIPIT_ASSERT(key_count_ == 0, "kv: prefill on a non-empty store");
    for (std::uint64_t i = 0; i < n; ++i)
        insertImpl(nullptr);
}

} // namespace skipit::kv
