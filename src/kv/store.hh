/**
 * @file
 * A durable key-value store shaped like an NVM LSM store's mutable level
 * (ListDB-style): a skiplist index whose nodes live in a persistent node
 * arena, an append-only value log, and a manifest (meta) line tying the
 * two together. One store instance serves one hart over a disjoint
 * simulated address region.
 *
 * The store is trace-generating: every operation is executed against a
 * host-side functional mirror AND emitted as the exact MemOp sequence a
 * hart would issue — index-traversal loads, value-log append stores, and
 * a commit path of CBO.CLEAN + FENCE epochs — so the resulting Program
 * runs through the full simulated LSU→L1→TileLink→L2→DRAM hierarchy.
 *
 * Commit discipline (the paper's §6 serving story): software flushes the
 * *conservative* line footprint of each operation — every line of every
 * record and node it may have dirtied — with no word-level dirty
 * bookkeeping. Tracking exact dirtiness in software is precisely the
 * overhead Skip It removes: the hardware skip bit drops the redundant
 * cleans (a tall pred node whose second line never changed, the
 * next-pointer line of a hot node on every update) in the L1 for ~2
 * cycles each.
 *
 * Durability order per put:
 *   1. append the value record to the log; bump the log head
 *   2. CBO.CLEAN record + meta lines, FENCE        (value epoch)
 *   3. for inserts: initialize the node words
 *      CBO.CLEAN node lines, FENCE                 (node-init epoch)
 *   4. publish: store the index pointer(s)
 *   5. CBO.CLEAN the published lines, FENCE        (publish epoch)
 * A crash between epochs never exposes an index pointer to bytes that
 * are not yet durable — the invariant the durability oracle audits when
 * skipit-kv runs with --crash.
 */

#ifndef SKIPIT_KV_STORE_HH
#define SKIPIT_KV_STORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/mem_op.hh"
#include "tilelink/messages.hh"

namespace skipit::kv {

/** Per-hart address-space layout of one store instance. */
struct KvLayout
{
    /** First hart's region base (clear of the microbenchmark regions). */
    static constexpr Addr default_base = 0x4000'0000;
    /** Region stride between harts: 32 MiB keeps stores fully disjoint. */
    static constexpr Addr region_stride = 0x0200'0000;
    /** Manifest line (log head, node head, key count) at region base. */
    static constexpr Addr meta_off = 0;
    /** Node arena: bump-allocated, line-aligned skiplist nodes. */
    static constexpr Addr node_off = 0x0001'0000;
    /** Append-only value log (line-aligned records). */
    static constexpr Addr log_off = 0x0100'0000;

    static constexpr Addr
    baseFor(unsigned hart)
    {
        return default_base + region_stride * hart;
    }
};

/** Configuration of one store instance. */
struct KvStoreConfig
{
    unsigned hart = 0;           //!< selects the address region
    unsigned value_bytes = 64;   //!< payload size (rounded up to words)
};

/**
 * The store. Single-writer: one instance belongs to one hart, and the
 * emitted program is that hart's exact access trace.
 */
class KvStore
{
  public:
    static constexpr unsigned max_level = 8;

    explicit KvStore(const KvStoreConfig &cfg);
    ~KvStore();

    /**
     * Build the initial durable image: keys 1..n at version 0. Runs the
     * same insert path with emission disabled, so the image is exactly
     * what a prior serving run would have left in NVMM. Call once,
     * before any emit.
     */
    void prefill(std::uint64_t n);

    /**
     * The current durable image, line by line (deterministic address
     * order) — poke into Dram before the run so the harts start against
     * a recovered store with cold caches.
     */
    const std::map<Addr, LineData> &image() const { return image_; }

    /// @name Operation emission (appends this op's MemOps to @p prog)
    /// @{
    /** Point lookup: traversal loads + value-record loads. */
    void emitGet(Program &prog, std::uint64_t key);

    /** Update an existing key: log append + two-epoch commit. */
    void emitUpdate(Program &prog, std::uint64_t key);

    /** Insert a fresh key (keyspace grows). @return the new key. */
    std::uint64_t emitInsert(Program &prog);

    /** Range scan: up to @p n consecutive keys starting at @p key. */
    void emitScan(Program &prog, std::uint64_t key, unsigned n);

    /**
     * Epoch checkpoint: re-clean every line dirtied since the previous
     * checkpoint, then fence. The store keeps only a coarse dirty-line
     * log (it needs one for crash consistency anyway) and has no idea
     * which of those lines the per-op commits already persisted — so it
     * conservatively flushes them all. Nearly every one of these cleans
     * is redundant, which is precisely the software bookkeeping cost the
     * skip bit eliminates (§6.1): with Skip It on they die in the L1 in
     * ~2 cycles; off, each is a full L1→TileLink→L2 round trip.
     */
    void emitCheckpoint(Program &prog);
    /// @}

    /// @name Introspection (tests, reports)
    /// @{
    std::uint64_t keyCount() const { return key_count_; }
    /** Current version of @p key (0 = just prefilled). */
    std::uint64_t version(std::uint64_t key) const;
    /** Simulated address of @p key's current value record; 0 if absent. */
    Addr valueAddr(std::uint64_t key) const;
    /** Expected durable word at @p addr per the functional mirror. */
    std::uint64_t imageWord(Addr addr) const;
    /** Deterministic payload word @p idx of (@p key, @p version). */
    static std::uint64_t valueWord(std::uint64_t key,
                                   std::uint64_t version,
                                   unsigned idx);
    /** Deterministic tower height for @p key (1..max_level, p=1/2). */
    static unsigned levelFor(std::uint64_t key);
    /// @}

  private:
    struct Node;

    KvStoreConfig cfg_;
    Addr base_;
    Addr log_head_;
    Addr node_head_;
    std::uint64_t key_count_ = 0;
    unsigned value_words_;

    std::unique_ptr<Node> head_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::map<std::uint64_t, Node *> by_key_; //!< mirror index
    std::map<Addr, LineData> image_;         //!< durable byte image
    std::set<Addr> epoch_lines_; //!< lines dirtied since the checkpoint

    /// @name Meta-line word addresses
    /// @{
    Addr metaLogHead() const { return base_ + KvLayout::meta_off; }
    Addr metaNodeHead() const { return base_ + KvLayout::meta_off + 8; }
    Addr metaKeyCount() const { return base_ + KvLayout::meta_off + 16; }
    /// @}

    /** Write @p v at @p addr in the mirror image; emit a store when
     *  @p prog is non-null. */
    void writeWord(Program *prog, Addr addr, std::uint64_t v);
    /** Emit a load of @p addr (mirror already knows the value). */
    static void loadWord(Program *prog, Addr addr);
    /** Emit CBO.CLEAN for every line covering [@p addr, @p addr+bytes)
     *  and log the lines in the checkpoint's dirty-line set. */
    void cleanRange(Program *prog, Addr addr, std::size_t bytes);

    /** Traversal to @p key: emits the search's loads, fills preds. */
    Node *search(Program *prog, std::uint64_t key,
                 std::vector<Node *> &preds);
    /** Append a (key, version) record to the log. @return its address. */
    Addr appendRecord(Program *prog, std::uint64_t key,
                      std::uint64_t version);
    /** Emit loads of a whole value record at @p addr. */
    void loadRecord(Program *prog, Addr addr) const;
    /** The full insert path; emission optional (prefill passes null). */
    std::uint64_t insertImpl(Program *prog);

    std::size_t recordBytes() const { return (2 + value_words_) * 8; }
    std::size_t nodeBytes(unsigned level) const
    {
        return (3 + static_cast<std::size_t>(level)) * 8;
    }
};

} // namespace skipit::kv

#endif // SKIPIT_KV_STORE_HH
