/**
 * @file
 * Minimal JSON-subset parser (objects, arrays, strings, numbers, bools)
 * shared by the sweep and KV-benchmark spec readers. Hand-rolled to keep
 * the tools dependency-free; object key order is preserved because sweep
 * specs use it to define grid expansion order.
 */

#ifndef SKIPIT_WORKLOADS_JSON_HH
#define SKIPIT_WORKLOADS_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace skipit::workloads {

/** One parsed JSON value. Numbers keep their raw token in `text`. */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    std::string text; //!< raw token for numbers, decoded for strings
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue *
    field(const std::string &name) const
    {
        for (const auto &[key, value] : fields) {
            if (key == name)
                return &value;
        }
        return nullptr;
    }
};

/**
 * Parse @p text as one JSON document.
 * @param what label used in error messages ("sweep spec", "kv spec", …)
 * @throws std::runtime_error on malformed input
 */
JsonValue parseJson(const std::string &text, const std::string &what);

} // namespace skipit::workloads

#endif // SKIPIT_WORKLOADS_JSON_HH
