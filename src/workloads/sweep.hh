/**
 * @file
 * The parallel experiment runner: expand a sweep specification (a small
 * JSON document or a CLI-built grid) into independent simulation runs,
 * execute them on a thread pool — one isolated Simulator/SoC per run —
 * and merge the results into one ReportTable in grid order.
 *
 * Determinism: grid expansion is a cartesian product in axis order (last
 * axis varies fastest), rows are stored by grid index regardless of
 * worker completion order, and every run either has no randomness at all
 * (the cycle-model kinds) or derives its RNG seed from the spec's base
 * seed plus the grid index. Two runs of the same spec therefore render
 * byte-identical CSVs, at any -j.
 */

#ifndef SKIPIT_WORKLOADS_SWEEP_HH
#define SKIPIT_WORKLOADS_SWEEP_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/report.hh"

namespace skipit::workloads {

/** One sweep dimension: a parameter name and the values it takes. */
struct SweepAxis
{
    std::string name;
    std::vector<std::string> values; //!< verbatim tokens, parsed per kind
};

/**
 * A full sweep: which measurement to run and over which grid.
 *
 * Kinds and their axes (all axes optional; defaults in parentheses):
 *  - "cbo"        cboLatency          — Fig 9 style
 *  - "wwr"        writeWbReadLatency  — Fig 10 style
 *  - "redundant"  redundantWbLatency  — Fig 13 style
 *      threads(1) bytes(4096) flush(1) skipit(1) coalesce(1)
 *      cross_kind_coalesce(0) wide_data_array(1) fshrs(8)
 *      flush_queue_depth(8) mshrs(4) llc_skip(1) grant_data_dirty(1)
 *      dram_latency(80) link_latency(3) fast_forward(1)
 *      cores(threads) l2_slices(1) engine(serial) workers(0)
 *      The engine axis takes "serial" or "parallel"; measured cycle
 *      counts are engine-independent by the determinism contract
 *      (docs/PARALLELISM.md), so sweeping it only affects wall-clock.
 *  - "throughput" runThroughput       — Figs 14-16 style
 *      ds(bst) policy(skip-it) mode(automatic) update_pct(5)
 *      threads(2) budget(400000) flit_entries(65536) seed(base+index)
 *      Inapplicable ds/policy combinations (link-and-persist on the
 *      BST) produce "n/a" result cells rather than failing the sweep.
 */
struct SweepSpec
{
    std::string kind = "cbo";
    std::uint64_t seed = 0; //!< base RNG seed; run i uses seed + i
    std::vector<SweepAxis> axes;

    /**
     * Parse the JSON form:
     *
     *   { "kind": "cbo", "seed": 0,
     *     "axes": { "threads": [1, 2], "bytes": [64, 4096] } }
     *
     * Axis order in the document is the expansion order.
     * @throws std::runtime_error on malformed input
     */
    static SweepSpec fromJsonText(const std::string &text);
};

/** One expanded grid point. */
struct SweepPoint
{
    std::size_t index = 0; //!< position in grid order
    std::vector<std::pair<std::string, std::string>> params;
};

/** Cartesian product of the spec's axes, last axis varying fastest. */
std::vector<SweepPoint> expandGrid(const SweepSpec &spec);

/**
 * Run every grid point of @p spec on @p jobs worker threads (clamped to
 * >= 1) and return the merged table: one column per axis followed by the
 * kind's result columns, one row per point, in grid order.
 *
 * @throws std::runtime_error on an unknown kind, an unknown axis name
 *         for the kind, an unparsable value, or a failed run
 */
ReportTable runSweep(const SweepSpec &spec, unsigned jobs);

} // namespace skipit::workloads

#endif // SKIPIT_WORKLOADS_SWEEP_HH
