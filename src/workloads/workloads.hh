/**
 * @file
 * Reusable workload builders and measurement harnesses for the paper's
 * evaluation (§7): region dirty/writeback programs for the cycle model
 * (Figs 9, 10, 13) and the lock-free data-structure throughput runner for
 * the execution-driven model (Figs 14-16).
 *
 * These are public API: benches, examples and downstream experiments all
 * drive the simulator through them.
 */

#ifndef SKIPIT_WORKLOADS_WORKLOADS_HH
#define SKIPIT_WORKLOADS_WORKLOADS_HH

#include <cstddef>
#include <memory>

#include "ds/set_interface.hh"
#include "nvm/persist.hh"
#include "soc/soc.hh"

namespace skipit::workloads {

/** Base address of benchmark working sets (arbitrary, line-aligned). */
inline constexpr Addr region_base = 0x10000000;

/** Per-thread region stride: keeps threads in disjoint regions (Fig 9). */
inline constexpr Addr thread_stride = 0x1000000;

/** Program that dirties @p lines lines starting at @p base, then fences. */
Program dirtyRegion(Addr base, unsigned lines);

/** Program that writes back a region @p passes times, one trailing fence. */
Program writebackRegion(Addr base, unsigned lines, bool flush,
                        unsigned passes = 1);

/**
 * Fig 9 measurement: per-thread disjoint dirty regions, then each thread
 * writes its share back sequentially and fences once.
 * @param cores size of the machine (0 = one core per thread); letting
 *        cores exceed threads measures active threads on a larger SoC
 * @return cycles of the writeback phase
 */
Cycle cboLatency(const SoCConfig &cfg, unsigned threads, std::size_t bytes,
                 bool flush, unsigned cores = 0);

/** Fig 10 measurement: per line, write -> 10x CBO.X -> fence -> read. */
Cycle writeWbReadLatency(const SoCConfig &cfg, unsigned threads,
                         std::size_t bytes, bool flush, unsigned cores = 0);

/**
 * Fig 13 measurement: one store pass, one real writeback pass, ten
 * redundant passes, single trailing fence. Redundant passes pipeline
 * through the FSHRs, which is where Skip It's early drop pays off.
 */
Cycle redundantWbLatency(const SoCConfig &cfg, unsigned threads,
                         std::size_t bytes, bool flush,
                         unsigned cores = 0);

// ---------------------------------------------------------------------
// Data-structure throughput (Figs 14-16).
// ---------------------------------------------------------------------

/** Which of the four §7.4 structures to run. */
enum class DsKind { List, HashTable, Bst, SkipList };

const char *name(DsKind k);

/** Key ranges per structure, following the paper's workloads. */
std::uint64_t keyRange(DsKind k);

/** Instantiate a structure over @p ctx. */
std::unique_ptr<PersistentSet> makeSet(DsKind k, PersistCtx &ctx);

/** L&P occupies spare pointer bits the BST already uses (§7.4). */
bool applicable(DsKind k, FlushPolicy p);

/** Result of one throughput run. */
struct ThroughputResult
{
    double mops_per_mcycle = 0; //!< operations per million sim cycles
    std::uint64_t ops = 0;
    std::uint64_t flushes = 0;
    std::uint64_t skipped_l1 = 0;
};

/**
 * Run the §7.4 workload: @p threads threads performing a lookup/update
 * mix over the structure's key range until every thread's simulated
 * clock passes @p budget cycles. Updates split 50/50 insert/delete.
 *
 * @param seed offsets every RNG stream (prefill and per-worker), so
 *             sweep repetitions draw independent key sequences; seed 0
 *             reproduces the historical fixed streams
 */
ThroughputResult runThroughput(DsKind kind, FlushPolicy policy,
                               PersistMode mode, double update_pct,
                               unsigned threads = 2,
                               Cycle budget = 400'000,
                               std::size_t flit_entries = std::size_t{1}
                                                          << 16,
                               std::uint64_t seed = 0);

} // namespace skipit::workloads

#endif // SKIPIT_WORKLOADS_WORKLOADS_HH
