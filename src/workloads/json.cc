#include "json.hh"

#include <cctype>
#include <stdexcept>

namespace skipit::workloads {

namespace {

class JsonParser
{
  public:
    JsonParser(const std::string &text, const std::string &what)
        : text_(text), what_(what)
    {
    }

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    const std::string &text_;
    const std::string &what_;
    std::size_t pos_ = 0;

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw std::runtime_error(what_ + ": " + msg + " (at offset " +
                                 std::to_string(pos_) + ")");
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            parseLiteral("null");
            return JsonValue{};
          default:
            return parseNumber();
        }
    }

    void
    parseLiteral(const char *lit)
    {
        for (const char *p = lit; *p != '\0'; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("expected '") + lit + "'");
            ++pos_;
        }
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        if (text_[pos_] == 't') {
            parseLiteral("true");
            v.boolean = true;
        } else {
            parseLiteral("false");
        }
        return v;
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.type = JsonValue::Type::String;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("dangling escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"':
                  case '\\':
                  case '/':
                    c = e;
                    break;
                  case 'n':
                    c = '\n';
                    break;
                  case 't':
                    c = '\t';
                    break;
                  default:
                    fail("unsupported string escape");
                }
            }
            v.text.push_back(c);
        }
        expect('"');
        return v;
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        v.type = JsonValue::Type::Number;
        const std::size_t start = pos_;
        consume('-');
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            fail("expected a value");
        v.text = text_.substr(start, pos_ - start);
        return v;
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        if (consume(']'))
            return v;
        for (;;) {
            v.items.push_back(parseValue());
            if (consume(']'))
                return v;
            expect(',');
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        if (consume('}'))
            return v;
        for (;;) {
            const JsonValue key = parseString();
            expect(':');
            v.fields.emplace_back(key.text, parseValue());
            if (consume('}'))
                return v;
            expect(',');
        }
    }
};

} // namespace

JsonValue
parseJson(const std::string &text, const std::string &what)
{
    return JsonParser(text, what).parse();
}

} // namespace skipit::workloads
