#include "fuzz.hh"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/asm.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/txn_tracer.hh"

namespace skipit::workloads {

namespace {

/** The word of pool line @p line that hart @p h owns. */
Addr
ownedWord(const FuzzSpec &spec, unsigned h, unsigned line)
{
    return spec.pool_base + static_cast<Addr>(line) * line_bytes +
           (h % 8) * 8;
}

/** A line holds 8 words, so up to 8 harts can share every line. Beyond
 *  that the pool is striped: hart h stores/loads only lines of group
 *  h / 8 (line % groups == h / 8), keeping single-word ownership. */
unsigned
lineGroups(const FuzzSpec &spec)
{
    return (spec.harts + 7) / 8;
}

/** Stir @p salt into @p seed so derived streams are unrelated. */
std::uint64_t
stir(std::uint64_t seed, std::uint64_t salt)
{
    return seed * 0x9e3779b97f4a7c15ULL + salt + 1;
}

/**
 * Expected value of each load in @p p, by op index: the hart's last
 * preceding store to the same address (memory starts zeroed).
 */
std::vector<std::pair<std::size_t, std::uint64_t>>
expectedLoads(const Program &p)
{
    std::map<Addr, std::uint64_t> last;
    std::vector<std::pair<std::size_t, std::uint64_t>> out;
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (p[i].kind == MemOpKind::Store)
            last[p[i].addr] = p[i].data;
        else if (p[i].kind == MemOpKind::Load)
            out.emplace_back(i, last.count(p[i].addr) ? last[p[i].addr]
                                                      : 0);
    }
    return out;
}

/**
 * Words whose DRAM value is pinned at quiescence: the hart's last store
 * to the address is followed, in its own program order, by a CBO.CLEAN
 * or CBO.FLUSH of that line. Single-writer ownership means no later
 * writeback (by anyone) can carry an older value of the word.
 */
std::vector<std::pair<Addr, std::uint64_t>>
expectedPersists(const Program &p)
{
    std::map<Addr, std::uint64_t> last;      // addr -> value
    std::map<Addr, bool> written_back;       // addr -> wb after last store
    for (const MemOp &op : p) {
        if (op.kind == MemOpKind::Store) {
            last[op.addr] = op.data;
            written_back[op.addr] = false;
        } else if (op.kind == MemOpKind::CboClean ||
                   op.kind == MemOpKind::CboFlush) {
            const Addr line = op.addr & ~static_cast<Addr>(line_bytes - 1);
            for (auto &[addr, wb] : written_back) {
                if ((addr & ~static_cast<Addr>(line_bytes - 1)) == line)
                    wb = true;
            }
        }
    }
    std::vector<std::pair<Addr, std::uint64_t>> out;
    for (const auto &[addr, wb] : written_back) {
        if (wb)
            out.emplace_back(addr, last[addr]);
    }
    return out;
}

/** Run to the spec's deadline or completion/violation/crash, without
 *  tripping runUntil's deadlock panic. @return true when fully
 *  quiesced. */
bool
runOne(SoC &soc, const FuzzSpec &spec)
{
    const Cycle deadline = soc.sim().now() + spec.max_cycles;
    const auto settled = [&] {
        for (unsigned c = 0; c < soc.cores(); ++c) {
            if (!soc.hart(c).done() || !soc.l1(c).quiesced())
                return false;
        }
        return soc.l2Idle();
    };
    soc.sim().runUntil(
        [&] {
            return settled() || !soc.checker().clean() ||
                   soc.durability().crashed() ||
                   soc.sim().now() >= deadline;
        },
        spec.max_cycles + 1000);
    return settled();
}

/** Little-endian word @p addr of the frozen persist-domain image
 *  (absent lines read as zero, like the zero-filled backing store). */
std::uint64_t
imageWord(const std::unordered_map<Addr, LineData> &image, Addr addr)
{
    const Addr line = addr & ~static_cast<Addr>(line_bytes - 1);
    const auto it = image.find(line);
    if (it == image.end())
        return 0;
    std::uint64_t v = 0;
    std::memcpy(&v, it->second.data() + ((addr & ~Addr{7}) - line),
                sizeof(v));
    return v;
}

/**
 * Word-level crash oracle for one hart (see the header comment). The
 * durability oracle counted @p fences retired fences before the crash;
 * fences retire in program order, so the @p fences -th fence op of @p p
 * is the last one known retired. Every CBO older than it completed
 * (its data accepted by the persist domain), so for each owned word the
 * image must hold the value of SOME store at or after the last store
 * that a retired-fence-ordered CBO of its line covered — older values
 * are durability violations, newer ones are legitimately in-flight
 * writebacks the crash happened to preserve.
 *
 * @return the offending (addr, got, oldest-admissible) or nullopt
 */
struct CrashWordMismatch
{
    Addr addr = 0;
    std::uint64_t got = 0;
    std::uint64_t floor_value = 0;
};
std::optional<CrashWordMismatch>
checkCrashWords(const Program &p, std::uint64_t fences,
                const std::unordered_map<Addr, LineData> &image)
{
    // Op index of the last fence known retired (exclusive bound k).
    std::size_t k = 0;
    if (fences > 0) {
        std::uint64_t seen = 0;
        bool found = false;
        for (std::size_t i = 0; i < p.size() && !found; ++i) {
            if (p[i].kind == MemOpKind::Fence && ++seen == fences) {
                k = i;
                found = true;
            }
        }
        SKIPIT_ASSERT(found,
                      "crash oracle: more fences retired than fence ops");
    }

    // Per word: all store values in order, and the index floor_idx of
    // the last store covered by a CBO of its line at some j < k.
    std::map<Addr, std::vector<std::pair<std::size_t, std::uint64_t>>>
        stores;
    std::map<Addr, std::size_t> floor_idx; // index INTO stores[addr]
    for (std::size_t j = 0; j < (fences > 0 ? k : 0); ++j) {
        const MemOp &op = p[j];
        if (op.kind == MemOpKind::Store) {
            stores[op.addr].emplace_back(j, op.data);
        } else if (op.kind == MemOpKind::CboClean ||
                   op.kind == MemOpKind::CboFlush) {
            const Addr line =
                op.addr & ~static_cast<Addr>(line_bytes - 1);
            for (auto &[addr, vals] : stores) {
                if ((addr & ~static_cast<Addr>(line_bytes - 1)) == line &&
                    !vals.empty())
                    floor_idx[addr] = vals.size() - 1;
            }
        }
    }
    // Stores after the fence bound can also be in the image (a crash
    // preserves whatever writebacks happened to land).
    for (std::size_t j = k; j < p.size(); ++j) {
        if (p[j].kind == MemOpKind::Store)
            stores[p[j].addr].emplace_back(j, p[j].data);
    }

    for (const auto &[addr, vals] : stores) {
        const std::uint64_t got = imageWord(image, addr);
        const auto fl = floor_idx.find(addr);
        const std::size_t lo = fl == floor_idx.end() ? 0 : fl->second;
        bool ok = fl == floor_idx.end() && got == 0; // nothing pinned
        for (std::size_t i = lo; !ok && i < vals.size(); ++i)
            ok = vals[i].second == got;
        if (!ok) {
            return CrashWordMismatch{addr, got,
                                     fl == floor_idx.end()
                                         ? 0
                                         : vals[fl->second].second};
        }
    }
    return std::nullopt;
}

} // namespace

SoCConfig
fuzzConfig(const FuzzSpec &spec, std::uint64_t seed)
{
    SKIPIT_ASSERT(spec.harts >= 1 && spec.harts <= 64,
                  "fuzz: harts must be 1..64");
    SKIPIT_ASSERT(spec.lines >= lineGroups(spec),
                  "fuzz: need at least one pool line per ownership group "
                  "(ceil(harts / 8))");
    SoCConfig cfg;
    cfg.cores = spec.harts;
    cfg.verify.fatal = false; // latch violations; the harness reports
    cfg.jitter.enabled = spec.jitter;
    cfg.jitter.seed = stir(seed, 0xfa11);
    cfg.jitter.max_delay = spec.max_delay;
    cfg.l1.test_break_probe_invalidate = spec.break_probe_invalidate;
    if (spec.fshrs > 0)
        cfg.l1.fshrs = spec.fshrs;
    if (spec.flush_queue_depth > 0)
        cfg.l1.flush_queue_depth = spec.flush_queue_depth;
    cfg.l2.slices = std::max(1u, spec.l2_slices);
    cfg.l2.policy = spec.l2_policy;
    cfg.l2.index = spec.l2_index;
    cfg.l2.replace = spec.l2_replace;
    if (spec.parallel) {
        cfg.engine = Simulator::Engine::parallel;
        cfg.workers = spec.workers;
    }
    if (spec.crash_at != 0) {
        cfg.durability.enabled = true;
        cfg.durability.crash_at = spec.crash_at;
        cfg.durability.fatal = false; // latch; the harness reports
    }
    return cfg;
}

std::vector<Program>
generateFuzzPrograms(const FuzzSpec &spec, std::uint64_t seed)
{
    std::vector<Program> programs(spec.harts);
    const unsigned groups = lineGroups(spec);
    for (unsigned h = 0; h < spec.harts; ++h) {
        // The lines hart h touches: its group's stripe of the pool.
        // (The epilogue still flushes every line — flushing another
        // group's line only writes it back, never mutates its words.)
        std::vector<unsigned> owned;
        for (unsigned l = h / 8; l < spec.lines; l += groups)
            owned.push_back(l);
        SKIPIT_ASSERT(!owned.empty(), "fuzz: hart with no owned lines");
        Rng rng(stir(seed, h));
        Program &p = programs[h];
        for (unsigned i = 0; i < spec.ops; ++i) {
            const unsigned line = owned[static_cast<std::size_t>(
                rng.below(owned.size()))];
            const Addr word = ownedWord(spec, h, line);
            const Addr line_addr = spec.pool_base +
                                   static_cast<Addr>(line) * line_bytes;
            const std::uint64_t dice = rng.below(100);
            if (dice < 35)
                p.push_back(MemOp::store(word, rng.next() | 1));
            else if (dice < 60)
                p.push_back(MemOp::load(word));
            else if (dice < 75)
                p.push_back(MemOp::clean(line_addr));
            else if (dice < 90)
                p.push_back(MemOp::flush(line_addr));
            else if (dice < 95)
                p.push_back(MemOp::fence());
            else
                p.push_back(MemOp::compute(rng.range(1, 8)));
        }
        // Epilogue: persist everything, then fence — pins every stored
        // word's DRAM value for the end-state oracle.
        for (unsigned line = 0; line < spec.lines; ++line)
            p.push_back(MemOp::flush(spec.pool_base +
                                     static_cast<Addr>(line) *
                                         line_bytes));
        p.push_back(MemOp::fence());
    }
    return programs;
}

/** runFuzzPrograms, optionally reporting the quiescence cycle of a
 *  clean run (the crash sweep samples crash points from it). */
static std::optional<FuzzFailure>
runProgramsImpl(const FuzzSpec &spec, std::uint64_t seed,
                const std::vector<Program> &programs, Cycle *quiesce)
{
    SKIPIT_ASSERT(programs.size() == spec.harts,
                  "fuzz: one program per hart required");
    SoC soc(fuzzConfig(spec, seed));
    soc.setPrograms(programs);
    const bool settled = runOne(soc, spec);

    const auto fail = [&](std::string kind, std::string detail,
                          Cycle cycle) {
        return FuzzFailure{seed,  std::move(kind), std::move(detail),
                           cycle, spec.crash_at,   programs};
    };

    // 1. Latched invariant violations (structural checks run per tick).
    if (!soc.checker().clean()) {
        const verify::Violation &v = soc.checker().violations().front();
        return fail("invariant",
                    detail::concat("invariant '", v.invariant,
                                   "' violated: ", v.detail),
                    v.cycle);
    }

    // Crash run: the power failed mid-execution. The remaining oracles
    // judge the frozen persist-domain image, not the (never-reached)
    // end state.
    if (spec.crash_at != 0) {
        verify::DurabilityOracle &oracle = soc.durability();
        if (!oracle.crashed()) {
            if (!settled) {
                return fail("hang",
                            detail::concat(
                                "run neither crashed nor settled within ",
                                spec.max_cycles, " cycles"),
                            soc.sim().now());
            }
            // Quiesced before the crash point: the image can no longer
            // change, so audit the final state as the crash image.
            oracle.crashNow();
        }
        if (!oracle.clean()) {
            const verify::Violation &v = oracle.violations().front();
            return fail("crash-durability",
                        detail::concat("durability invariant '",
                                       v.invariant, "' violated: ",
                                       v.detail),
                        v.cycle);
        }
        for (unsigned h = 0; h < spec.harts; ++h) {
            const auto m = checkCrashWords(
                programs[h], oracle.fencesRetired(h), oracle.image());
            if (m) {
                return fail(
                    "crash-value",
                    detail::concat(
                        "hart", h, " word 0x", std::hex, m->addr,
                        " is 0x", m->got, " in the post-crash image, ",
                        "but a fence-observed flush pinned it to a ",
                        "store no older than 0x", m->floor_value),
                    oracle.crashCycle());
            }
        }
        return std::nullopt;
    }

    // 2. Liveness: everything must settle before the deadline.
    if (!settled) {
        std::ostringstream os;
        os << "run did not settle within " << spec.max_cycles
           << " cycles;";
        for (unsigned c = 0; c < soc.cores(); ++c) {
            if (!soc.hart(c).done())
                os << " hart" << c << " stuck at pc "
                   << soc.hart(c).pc();
        }
        return fail("hang", os.str(), soc.sim().now());
    }

    // 3. Full sweep at quiescence (adds the L2-vs-DRAM comparison).
    soc.checker().checkNow();
    if (!soc.checker().clean()) {
        const verify::Violation &v = soc.checker().violations().front();
        return fail("invariant",
                    detail::concat("final sweep: invariant '",
                                   v.invariant, "' violated: ", v.detail),
                    v.cycle);
    }

    // 4. Load values against the per-hart program-order oracle.
    for (unsigned h = 0; h < spec.harts; ++h) {
        for (const auto &[idx, expect] : expectedLoads(programs[h])) {
            const std::uint64_t got = soc.hart(h).loadValue(idx);
            if (got != expect) {
                return fail(
                    "value",
                    detail::concat("hart", h, " op ", idx, " load 0x",
                                   std::hex, programs[h][idx].addr,
                                   " returned 0x", got, ", expected 0x",
                                   expect),
                    soc.sim().now());
            }
        }
    }

    // 5. Persisted end state: every written-back word matches DRAM.
    for (unsigned h = 0; h < spec.harts; ++h) {
        for (const auto &[addr, expect] : expectedPersists(programs[h])) {
            const std::uint64_t got = soc.dram().peekWord(addr);
            if (got != expect) {
                return fail(
                    "persist",
                    detail::concat("hart", h, " word 0x", std::hex, addr,
                                   " persisted as 0x", got,
                                   ", expected 0x", expect),
                    soc.sim().now());
            }
        }
    }

    if (quiesce)
        *quiesce = soc.sim().now();
    return std::nullopt;
}

std::optional<FuzzFailure>
runFuzzPrograms(const FuzzSpec &spec, std::uint64_t seed,
                const std::vector<Program> &programs)
{
    return runProgramsImpl(spec, seed, programs, nullptr);
}

std::optional<FuzzFailure>
runFuzzSeed(const FuzzSpec &spec, std::uint64_t seed)
{
    const std::vector<Program> programs =
        generateFuzzPrograms(spec, seed);
    if (spec.crash_at != 0 || spec.crash_points == 0)
        return runFuzzPrograms(spec, seed, programs);

    // Crash sweep: one clean run establishes the seed's natural length
    // T (and runs the usual end-state oracles), then the power fails at
    // crash_points seed-derived cycles in [1, T].
    FuzzSpec clean = spec;
    clean.crash_points = 0;
    Cycle total = 0;
    if (auto f = runProgramsImpl(clean, seed, programs, &total))
        return f;
    for (unsigned k = 0; k < spec.crash_points; ++k) {
        FuzzSpec crash = spec;
        crash.crash_points = 0;
        crash.crash_at =
            1 + stir(seed, 0xc7a5 + k) % std::max<Cycle>(total, 1);
        if (auto f = runFuzzPrograms(crash, seed, programs))
            return f;
    }
    return std::nullopt;
}

std::optional<FuzzFailure>
runFuzz(const FuzzSpec &spec, std::uint64_t base_seed, unsigned count,
        unsigned jobs)
{
    std::optional<FuzzFailure> best;
    std::mutex mu;
    std::atomic<std::uint64_t> next{0};
    // Once a failure at seed S is known, seeds above S are moot.
    std::atomic<std::uint64_t> cutoff{count};

    const auto worker = [&] {
        for (;;) {
            const std::uint64_t i = next.fetch_add(1);
            if (i >= count || i >= cutoff.load())
                return;
            auto f = runFuzzSeed(spec, base_seed + i);
            if (!f)
                continue;
            std::lock_guard<std::mutex> lock(mu);
            if (!best || f->seed < best->seed) {
                best = std::move(*f);
                std::uint64_t cur = cutoff.load();
                while (i < cur && !cutoff.compare_exchange_weak(cur, i)) {
                }
            }
        }
    };

    jobs = std::max(1u, jobs);
    if (jobs <= 1 || count <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        const unsigned n = std::min(jobs, count);
        pool.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    return best;
}

FuzzFailure
shrinkFuzzFailure(const FuzzSpec &in_spec, const FuzzFailure &failure)
{
    // A crash failure only reproduces with the power failing at the
    // same cycle: pin the failure's crash point into the spec.
    FuzzSpec spec = in_spec;
    spec.crash_points = 0;
    spec.crash_at = failure.crash_at;

    FuzzFailure best = failure;
    if (best.programs.empty())
        best.programs = generateFuzzPrograms(spec, best.seed);

    // Greedy ddmin: per hart, try dropping chunks (half, quarter, ...,
    // single op); keep any removal that still reproduces *a* failure.
    // Bounded so pathological cases cannot run away.
    unsigned trials = 0;
    const unsigned max_trials = 500;
    bool improved = true;
    while (improved && trials < max_trials) {
        improved = false;
        for (unsigned h = 0; h < spec.harts; ++h) {
            const std::size_t len = best.programs[h].size();
            for (std::size_t chunk = std::max<std::size_t>(len / 2, 1);
                 chunk >= 1; chunk /= 2) {
                for (std::size_t start = 0;
                     start < best.programs[h].size();) {
                    if (trials >= max_trials)
                        break;
                    std::vector<Program> cand = best.programs;
                    Program &p = cand[h];
                    const std::size_t end =
                        std::min(start + chunk, p.size());
                    p.erase(p.begin() + static_cast<std::ptrdiff_t>(start),
                            p.begin() + static_cast<std::ptrdiff_t>(end));
                    ++trials;
                    if (auto f =
                            runFuzzPrograms(spec, best.seed, cand)) {
                        best = std::move(*f);
                        improved = true;
                        // Same start now names the next chunk; retry.
                    } else {
                        start += chunk;
                    }
                }
                if (chunk == 1)
                    break;
            }
        }
    }
    return best;
}

bool
writeReplayBundle(const FuzzSpec &in_spec, const FuzzFailure &failure,
                  const std::string &dir)
{
    // Pin a crash failure's crash point so --replay re-runs the exact
    // same truncated execution (crash_points is a sweep axis, not part
    // of one run's identity).
    FuzzSpec spec = in_spec;
    spec.crash_points = 0;
    spec.crash_at = failure.crash_at;

    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        warn("fuzz: cannot create bundle dir ", dir, ": ", ec.message());
        return false;
    }
    const auto write = [&](const std::string &name,
                           const std::string &text) {
        std::ofstream out(dir + "/" + name);
        out << text;
        return static_cast<bool>(out);
    };

    std::ostringstream cfg;
    cfg << "seed " << failure.seed << "\n"
        << "harts " << spec.harts << "\n"
        << "ops " << spec.ops << "\n"
        << "lines " << spec.lines << "\n"
        << "pool_base 0x" << std::hex << spec.pool_base << std::dec
        << "\n"
        << "jitter " << (spec.jitter ? 1 : 0) << "\n"
        << "max_delay " << spec.max_delay << "\n"
        << "max_cycles " << spec.max_cycles << "\n"
        << "fshrs " << spec.fshrs << "\n"
        << "flush_queue_depth " << spec.flush_queue_depth << "\n"
        << "l2_slices " << spec.l2_slices << "\n"
        << "l2_policy " << toString(spec.l2_policy) << "\n"
        << "l2_index " << toString(spec.l2_index) << "\n"
        << "l2_replace " << toString(spec.l2_replace) << "\n"
        << "break_probe_invalidate "
        << (spec.break_probe_invalidate ? 1 : 0) << "\n"
        << "crash_at " << spec.crash_at << "\n"
        << "parallel " << (spec.parallel ? 1 : 0) << "\n"
        << "workers " << spec.workers << "\n"
        << "# resolved configuration:\n";
    std::istringstream desc(fuzzConfig(spec, failure.seed).describe());
    for (std::string line; std::getline(desc, line);)
        cfg << "# " << line << "\n";
    bool ok = write("config.txt", cfg.str());

    for (std::size_t i = 0; i < failure.programs.size(); ++i) {
        ok = write("core" + std::to_string(i) + ".s",
                   disassembleProgram(failure.programs[i])) &&
             ok;
    }

    // Re-run with the tracer attached for the trace + txn history. The
    // run is deterministic, so this reproduces the failure exactly.
    SoC soc(fuzzConfig(spec, failure.seed));
    TxnTracer tracer;
    soc.sim().probes().attach(tracer);
    soc.setPrograms(failure.programs);
    runOne(soc, spec);
    ok = tracer.writeChromeTraceFile(dir + "/trace.json") && ok;

    std::ostringstream failtxt;
    failtxt << "kind " << failure.kind << "\n"
            << "cycle " << failure.cycle << "\n"
            << "crash_at " << failure.crash_at << "\n"
            << "detail " << failure.detail << "\n";
    if (spec.crash_at != 0)
        soc.durability().reportSummary(failtxt);
    ok = write("failure.txt", failtxt.str()) && ok;

    std::ostringstream hist;
    const TxnId last = soc.sim().probes().lastTxn();
    hist << "failure: " << failure.kind << " @ cycle " << failure.cycle
         << ": " << failure.detail << "\n"
         << "last transaction " << last << ":\n";
    if (last != 0)
        tracer.dumpTxn(last, hist);
    soc.checker().report(hist);
    if (spec.crash_at != 0)
        soc.durability().report(hist);
    ok = write("txn_history.txt", hist.str()) && ok;
    return ok;
}

std::pair<FuzzSpec, std::uint64_t>
readReplayBundle(const std::string &dir, std::vector<Program> &programs)
{
    std::ifstream in(dir + "/config.txt");
    if (!in)
        SKIPIT_FATAL("fuzz: cannot open ", dir, "/config.txt");
    FuzzSpec spec;
    std::uint64_t seed = 0;
    for (std::string line; std::getline(in, line);) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "seed")
            ls >> seed;
        else if (key == "harts")
            ls >> spec.harts;
        else if (key == "ops")
            ls >> spec.ops;
        else if (key == "lines")
            ls >> spec.lines;
        else if (key == "pool_base")
            ls >> std::hex >> spec.pool_base >> std::dec;
        else if (key == "l2_policy" || key == "l2_index" ||
                 key == "l2_replace") {
            std::string token;
            ls >> token;
            const bool known =
                key == "l2_policy"
                    ? stateKindFromString(token, spec.l2_policy)
                    : key == "l2_index"
                          ? indexKindFromString(token, spec.l2_index)
                          : replaceKindFromString(token, spec.l2_replace);
            if (!known) {
                SKIPIT_FATAL("fuzz: bad ", key, " value '", token,
                             "' in ", dir, "/config.txt");
            }
        } else if (key == "jitter" || key == "max_delay" ||
                 key == "max_cycles" || key == "fshrs" ||
                 key == "flush_queue_depth" || key == "l2_slices" ||
                 key == "break_probe_invalidate" || key == "crash_at" ||
                 key == "parallel" || key == "workers") {
            std::uint64_t v = 0;
            ls >> v;
            if (key == "jitter")
                spec.jitter = v != 0;
            else if (key == "max_delay")
                spec.max_delay = static_cast<unsigned>(v);
            else if (key == "max_cycles")
                spec.max_cycles = v;
            else if (key == "fshrs")
                spec.fshrs = static_cast<unsigned>(v);
            else if (key == "flush_queue_depth")
                spec.flush_queue_depth = static_cast<unsigned>(v);
            else if (key == "l2_slices")
                spec.l2_slices = static_cast<unsigned>(v);
            else if (key == "crash_at")
                spec.crash_at = v;
            else if (key == "parallel")
                spec.parallel = v != 0;
            else if (key == "workers")
                spec.workers = static_cast<unsigned>(v);
            else
                spec.break_probe_invalidate = v != 0;
        } else {
            SKIPIT_FATAL("fuzz: unknown key '", key, "' in ", dir,
                         "/config.txt");
        }
        if (ls.fail())
            SKIPIT_FATAL("fuzz: malformed line '", line, "' in ", dir,
                         "/config.txt");
    }

    programs.clear();
    for (unsigned h = 0; h < spec.harts; ++h) {
        const std::string path =
            dir + "/core" + std::to_string(h) + ".s";
        std::ifstream ps(path);
        if (!ps)
            SKIPIT_FATAL("fuzz: cannot open ", path);
        std::stringstream buf;
        buf << ps.rdbuf();
        programs.push_back(assembleProgram(buf.str()));
    }
    return {spec, seed};
}

} // namespace skipit::workloads
