#include "fuzz.hh"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/asm.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/txn_tracer.hh"

namespace skipit::workloads {

namespace {

/** The word of every pool line that hart @p h owns. */
Addr
ownedWord(const FuzzSpec &spec, unsigned h, unsigned line)
{
    return spec.pool_base + static_cast<Addr>(line) * line_bytes +
           (h % 8) * 8;
}

/** Stir @p salt into @p seed so derived streams are unrelated. */
std::uint64_t
stir(std::uint64_t seed, std::uint64_t salt)
{
    return seed * 0x9e3779b97f4a7c15ULL + salt + 1;
}

/**
 * Expected value of each load in @p p, by op index: the hart's last
 * preceding store to the same address (memory starts zeroed).
 */
std::vector<std::pair<std::size_t, std::uint64_t>>
expectedLoads(const Program &p)
{
    std::map<Addr, std::uint64_t> last;
    std::vector<std::pair<std::size_t, std::uint64_t>> out;
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (p[i].kind == MemOpKind::Store)
            last[p[i].addr] = p[i].data;
        else if (p[i].kind == MemOpKind::Load)
            out.emplace_back(i, last.count(p[i].addr) ? last[p[i].addr]
                                                      : 0);
    }
    return out;
}

/**
 * Words whose DRAM value is pinned at quiescence: the hart's last store
 * to the address is followed, in its own program order, by a CBO.CLEAN
 * or CBO.FLUSH of that line. Single-writer ownership means no later
 * writeback (by anyone) can carry an older value of the word.
 */
std::vector<std::pair<Addr, std::uint64_t>>
expectedPersists(const Program &p)
{
    std::map<Addr, std::uint64_t> last;      // addr -> value
    std::map<Addr, bool> written_back;       // addr -> wb after last store
    for (const MemOp &op : p) {
        if (op.kind == MemOpKind::Store) {
            last[op.addr] = op.data;
            written_back[op.addr] = false;
        } else if (op.kind == MemOpKind::CboClean ||
                   op.kind == MemOpKind::CboFlush) {
            const Addr line = op.addr & ~static_cast<Addr>(line_bytes - 1);
            for (auto &[addr, wb] : written_back) {
                if ((addr & ~static_cast<Addr>(line_bytes - 1)) == line)
                    wb = true;
            }
        }
    }
    std::vector<std::pair<Addr, std::uint64_t>> out;
    for (const auto &[addr, wb] : written_back) {
        if (wb)
            out.emplace_back(addr, last[addr]);
    }
    return out;
}

/** Run to the spec's deadline or completion/violation, without tripping
 *  runUntil's deadlock panic. @return true when fully quiesced. */
bool
runOne(SoC &soc, const FuzzSpec &spec)
{
    const Cycle deadline = soc.sim().now() + spec.max_cycles;
    const auto settled = [&] {
        for (unsigned c = 0; c < soc.cores(); ++c) {
            if (!soc.hart(c).done() || !soc.l1(c).quiesced())
                return false;
        }
        return soc.l2Idle();
    };
    soc.sim().runUntil(
        [&] {
            return settled() || !soc.checker().clean() ||
                   soc.sim().now() >= deadline;
        },
        spec.max_cycles + 1000);
    return settled();
}

} // namespace

SoCConfig
fuzzConfig(const FuzzSpec &spec, std::uint64_t seed)
{
    SKIPIT_ASSERT(spec.harts >= 1 && spec.harts <= 8,
                  "fuzz: harts must be 1..8 (one owned word per line)");
    SoCConfig cfg;
    cfg.cores = spec.harts;
    cfg.verify.fatal = false; // latch violations; the harness reports
    cfg.jitter.enabled = spec.jitter;
    cfg.jitter.seed = stir(seed, 0xfa11);
    cfg.jitter.max_delay = spec.max_delay;
    cfg.l1.test_break_probe_invalidate = spec.break_probe_invalidate;
    if (spec.fshrs > 0)
        cfg.l1.fshrs = spec.fshrs;
    if (spec.flush_queue_depth > 0)
        cfg.l1.flush_queue_depth = spec.flush_queue_depth;
    cfg.l2.slices = std::max(1u, spec.l2_slices);
    return cfg;
}

std::vector<Program>
generateFuzzPrograms(const FuzzSpec &spec, std::uint64_t seed)
{
    std::vector<Program> programs(spec.harts);
    for (unsigned h = 0; h < spec.harts; ++h) {
        Rng rng(stir(seed, h));
        Program &p = programs[h];
        for (unsigned i = 0; i < spec.ops; ++i) {
            const unsigned line =
                static_cast<unsigned>(rng.below(spec.lines));
            const Addr word = ownedWord(spec, h, line);
            const Addr line_addr = spec.pool_base +
                                   static_cast<Addr>(line) * line_bytes;
            const std::uint64_t dice = rng.below(100);
            if (dice < 35)
                p.push_back(MemOp::store(word, rng.next() | 1));
            else if (dice < 60)
                p.push_back(MemOp::load(word));
            else if (dice < 75)
                p.push_back(MemOp::clean(line_addr));
            else if (dice < 90)
                p.push_back(MemOp::flush(line_addr));
            else if (dice < 95)
                p.push_back(MemOp::fence());
            else
                p.push_back(MemOp::compute(rng.range(1, 8)));
        }
        // Epilogue: persist everything, then fence — pins every stored
        // word's DRAM value for the end-state oracle.
        for (unsigned line = 0; line < spec.lines; ++line)
            p.push_back(MemOp::flush(spec.pool_base +
                                     static_cast<Addr>(line) *
                                         line_bytes));
        p.push_back(MemOp::fence());
    }
    return programs;
}

std::optional<FuzzFailure>
runFuzzPrograms(const FuzzSpec &spec, std::uint64_t seed,
                const std::vector<Program> &programs)
{
    SKIPIT_ASSERT(programs.size() == spec.harts,
                  "fuzz: one program per hart required");
    SoC soc(fuzzConfig(spec, seed));
    soc.setPrograms(programs);
    const bool settled = runOne(soc, spec);

    const auto fail = [&](std::string kind, std::string detail,
                          Cycle cycle) {
        return FuzzFailure{seed, std::move(kind), std::move(detail),
                           cycle, programs};
    };

    // 1. Latched invariant violations (structural checks run per tick).
    if (!soc.checker().clean()) {
        const verify::Violation &v = soc.checker().violations().front();
        return fail("invariant",
                    detail::concat("invariant '", v.invariant,
                                   "' violated: ", v.detail),
                    v.cycle);
    }

    // 2. Liveness: everything must settle before the deadline.
    if (!settled) {
        std::ostringstream os;
        os << "run did not settle within " << spec.max_cycles
           << " cycles;";
        for (unsigned c = 0; c < soc.cores(); ++c) {
            if (!soc.hart(c).done())
                os << " hart" << c << " stuck at pc "
                   << soc.hart(c).pc();
        }
        return fail("hang", os.str(), soc.sim().now());
    }

    // 3. Full sweep at quiescence (adds the L2-vs-DRAM comparison).
    soc.checker().checkNow();
    if (!soc.checker().clean()) {
        const verify::Violation &v = soc.checker().violations().front();
        return fail("invariant",
                    detail::concat("final sweep: invariant '",
                                   v.invariant, "' violated: ", v.detail),
                    v.cycle);
    }

    // 4. Load values against the per-hart program-order oracle.
    for (unsigned h = 0; h < spec.harts; ++h) {
        for (const auto &[idx, expect] : expectedLoads(programs[h])) {
            const std::uint64_t got = soc.hart(h).loadValue(idx);
            if (got != expect) {
                return fail(
                    "value",
                    detail::concat("hart", h, " op ", idx, " load 0x",
                                   std::hex, programs[h][idx].addr,
                                   " returned 0x", got, ", expected 0x",
                                   expect),
                    soc.sim().now());
            }
        }
    }

    // 5. Persisted end state: every written-back word matches DRAM.
    for (unsigned h = 0; h < spec.harts; ++h) {
        for (const auto &[addr, expect] : expectedPersists(programs[h])) {
            const std::uint64_t got = soc.dram().peekWord(addr);
            if (got != expect) {
                return fail(
                    "persist",
                    detail::concat("hart", h, " word 0x", std::hex, addr,
                                   " persisted as 0x", got,
                                   ", expected 0x", expect),
                    soc.sim().now());
            }
        }
    }

    return std::nullopt;
}

std::optional<FuzzFailure>
runFuzzSeed(const FuzzSpec &spec, std::uint64_t seed)
{
    return runFuzzPrograms(spec, seed, generateFuzzPrograms(spec, seed));
}

std::optional<FuzzFailure>
runFuzz(const FuzzSpec &spec, std::uint64_t base_seed, unsigned count,
        unsigned jobs)
{
    std::optional<FuzzFailure> best;
    std::mutex mu;
    std::atomic<std::uint64_t> next{0};
    // Once a failure at seed S is known, seeds above S are moot.
    std::atomic<std::uint64_t> cutoff{count};

    const auto worker = [&] {
        for (;;) {
            const std::uint64_t i = next.fetch_add(1);
            if (i >= count || i >= cutoff.load())
                return;
            auto f = runFuzzSeed(spec, base_seed + i);
            if (!f)
                continue;
            std::lock_guard<std::mutex> lock(mu);
            if (!best || f->seed < best->seed) {
                best = std::move(*f);
                std::uint64_t cur = cutoff.load();
                while (i < cur && !cutoff.compare_exchange_weak(cur, i)) {
                }
            }
        }
    };

    jobs = std::max(1u, jobs);
    if (jobs <= 1 || count <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        const unsigned n = std::min(jobs, count);
        pool.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    return best;
}

FuzzFailure
shrinkFuzzFailure(const FuzzSpec &spec, const FuzzFailure &failure)
{
    FuzzFailure best = failure;
    if (best.programs.empty())
        best.programs = generateFuzzPrograms(spec, best.seed);

    // Greedy ddmin: per hart, try dropping chunks (half, quarter, ...,
    // single op); keep any removal that still reproduces *a* failure.
    // Bounded so pathological cases cannot run away.
    unsigned trials = 0;
    const unsigned max_trials = 500;
    bool improved = true;
    while (improved && trials < max_trials) {
        improved = false;
        for (unsigned h = 0; h < spec.harts; ++h) {
            const std::size_t len = best.programs[h].size();
            for (std::size_t chunk = std::max<std::size_t>(len / 2, 1);
                 chunk >= 1; chunk /= 2) {
                for (std::size_t start = 0;
                     start < best.programs[h].size();) {
                    if (trials >= max_trials)
                        break;
                    std::vector<Program> cand = best.programs;
                    Program &p = cand[h];
                    const std::size_t end =
                        std::min(start + chunk, p.size());
                    p.erase(p.begin() + static_cast<std::ptrdiff_t>(start),
                            p.begin() + static_cast<std::ptrdiff_t>(end));
                    ++trials;
                    if (auto f =
                            runFuzzPrograms(spec, best.seed, cand)) {
                        best = std::move(*f);
                        improved = true;
                        // Same start now names the next chunk; retry.
                    } else {
                        start += chunk;
                    }
                }
                if (chunk == 1)
                    break;
            }
        }
    }
    return best;
}

bool
writeReplayBundle(const FuzzSpec &spec, const FuzzFailure &failure,
                  const std::string &dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        warn("fuzz: cannot create bundle dir ", dir, ": ", ec.message());
        return false;
    }
    const auto write = [&](const std::string &name,
                           const std::string &text) {
        std::ofstream out(dir + "/" + name);
        out << text;
        return static_cast<bool>(out);
    };

    std::ostringstream cfg;
    cfg << "seed " << failure.seed << "\n"
        << "harts " << spec.harts << "\n"
        << "ops " << spec.ops << "\n"
        << "lines " << spec.lines << "\n"
        << "pool_base 0x" << std::hex << spec.pool_base << std::dec
        << "\n"
        << "jitter " << (spec.jitter ? 1 : 0) << "\n"
        << "max_delay " << spec.max_delay << "\n"
        << "max_cycles " << spec.max_cycles << "\n"
        << "fshrs " << spec.fshrs << "\n"
        << "flush_queue_depth " << spec.flush_queue_depth << "\n"
        << "l2_slices " << spec.l2_slices << "\n"
        << "break_probe_invalidate "
        << (spec.break_probe_invalidate ? 1 : 0) << "\n"
        << "# resolved configuration:\n";
    std::istringstream desc(fuzzConfig(spec, failure.seed).describe());
    for (std::string line; std::getline(desc, line);)
        cfg << "# " << line << "\n";
    bool ok = write("config.txt", cfg.str());

    std::ostringstream failtxt;
    failtxt << "kind " << failure.kind << "\n"
            << "cycle " << failure.cycle << "\n"
            << "detail " << failure.detail << "\n";
    ok = write("failure.txt", failtxt.str()) && ok;

    for (std::size_t i = 0; i < failure.programs.size(); ++i) {
        ok = write("core" + std::to_string(i) + ".s",
                   disassembleProgram(failure.programs[i])) &&
             ok;
    }

    // Re-run with the tracer attached for the trace + txn history. The
    // run is deterministic, so this reproduces the failure exactly.
    SoC soc(fuzzConfig(spec, failure.seed));
    TxnTracer tracer;
    soc.sim().probes().attach(tracer);
    soc.setPrograms(failure.programs);
    runOne(soc, spec);
    ok = tracer.writeChromeTraceFile(dir + "/trace.json") && ok;

    std::ostringstream hist;
    const TxnId last = soc.sim().probes().lastTxn();
    hist << "failure: " << failure.kind << " @ cycle " << failure.cycle
         << ": " << failure.detail << "\n"
         << "last transaction " << last << ":\n";
    if (last != 0)
        tracer.dumpTxn(last, hist);
    soc.checker().report(hist);
    ok = write("txn_history.txt", hist.str()) && ok;
    return ok;
}

std::pair<FuzzSpec, std::uint64_t>
readReplayBundle(const std::string &dir, std::vector<Program> &programs)
{
    std::ifstream in(dir + "/config.txt");
    if (!in)
        SKIPIT_FATAL("fuzz: cannot open ", dir, "/config.txt");
    FuzzSpec spec;
    std::uint64_t seed = 0;
    for (std::string line; std::getline(in, line);) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "seed")
            ls >> seed;
        else if (key == "harts")
            ls >> spec.harts;
        else if (key == "ops")
            ls >> spec.ops;
        else if (key == "lines")
            ls >> spec.lines;
        else if (key == "pool_base")
            ls >> std::hex >> spec.pool_base >> std::dec;
        else if (key == "jitter" || key == "max_delay" ||
                 key == "max_cycles" || key == "fshrs" ||
                 key == "flush_queue_depth" || key == "l2_slices" ||
                 key == "break_probe_invalidate") {
            std::uint64_t v = 0;
            ls >> v;
            if (key == "jitter")
                spec.jitter = v != 0;
            else if (key == "max_delay")
                spec.max_delay = static_cast<unsigned>(v);
            else if (key == "max_cycles")
                spec.max_cycles = v;
            else if (key == "fshrs")
                spec.fshrs = static_cast<unsigned>(v);
            else if (key == "flush_queue_depth")
                spec.flush_queue_depth = static_cast<unsigned>(v);
            else if (key == "l2_slices")
                spec.l2_slices = static_cast<unsigned>(v);
            else
                spec.break_probe_invalidate = v != 0;
        } else {
            SKIPIT_FATAL("fuzz: unknown key '", key, "' in ", dir,
                         "/config.txt");
        }
        if (ls.fail())
            SKIPIT_FATAL("fuzz: malformed line '", line, "' in ", dir,
                         "/config.txt");
    }

    programs.clear();
    for (unsigned h = 0; h < spec.harts; ++h) {
        const std::string path =
            dir + "/core" + std::to_string(h) + ".s";
        std::ifstream ps(path);
        if (!ps)
            SKIPIT_FATAL("fuzz: cannot open ", path);
        std::stringstream buf;
        buf << ps.rdbuf();
        programs.push_back(assembleProgram(buf.str()));
    }
    return {spec, seed};
}

} // namespace skipit::workloads
