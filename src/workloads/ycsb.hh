/**
 * @file
 * YCSB-style served-KV benchmark: a deterministic open-loop workload
 * generator over the durable KV store (src/kv), run through the full
 * simulated LSU→L1→TileLink→L2→DRAM hierarchy.
 *
 * Mixes (read / update / insert / scan), after the YCSB core workloads:
 *   A  50/50/ 0/ 0   update-heavy      B  95/ 5/ 0/ 0   read-mostly
 *   C 100/ 0/ 0/ 0   read-only         D  95/ 0/ 5/ 0   read-latest
 *   E   0/ 0/ 5/95   short scans
 *
 * Open-loop traffic: operation i of a hart arrives at absolute cycle
 * i * arrival_period (a WaitUntil op gates its dispatch), and its
 * end-to-end latency is measured from that *arrival* time to the RDCYCLE
 * marker after its last memory operation retires — so queueing delay
 * behind a backlogged store shows up in the tail percentiles, the way an
 * open-loop load generator measures a real server. arrival_period == 0
 * degenerates to a closed loop (back-to-back ops, latency == service
 * time).
 *
 * Determinism: key streams are generated host-side from the spec seed
 * before the machine is even built, and the tick engines are
 * bit-identical (docs/PARALLELISM.md), so a fixed-seed run produces
 * byte-identical results at any engine/worker setting.
 */

#ifndef SKIPIT_WORKLOADS_YCSB_HH
#define SKIPIT_WORKLOADS_YCSB_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "l2/index.hh"
#include "l2/policy/state_policy.hh"
#include "l2/replace.hh"
#include "sim/histogram.hh"
#include "sim/random.hh"
#include "sim/types.hh"
#include "tilelink/messages.hh"

namespace skipit {
namespace kv {
class KvStore;
}

namespace workloads {

/**
 * The YCSB zipfian rank generator: sample(rng) draws a rank in [0, n)
 * where rank 0 is the hottest item, P(rank r) ∝ 1 / (r+1)^theta.
 * Sampling is exact inverse-CDF (not YCSB's closed-form approximation),
 * so the drawn frequencies match the pmf to statistical noise — the
 * chi-square tests rely on that.
 */
class ZipfianGen
{
  public:
    /** @param theta skew in (0, 1); YCSB's default is 0.99 */
    ZipfianGen(std::uint64_t n, double theta);

    /** Draw one rank in [0, n). */
    std::uint64_t sample(Rng &rng) const;

    /** Exact P(rank) — the chi-square tests compare against this. */
    double probability(std::uint64_t rank) const;

    std::uint64_t n() const { return n_; }
    double theta() const { return theta_; }

  private:
    std::uint64_t n_;
    double theta_;
    double zetan_;
    std::vector<double> cdf_; //!< cdf_[r] = P(rank <= r)
};

/** One served-KV run: the workload point and the machine to serve it. */
struct KvSpec
{
    std::string mix = "A";      //!< A|B|C|D|E
    std::uint64_t keys = 1024;  //!< prefilled keys per hart
    std::uint64_t ops = 4096;   //!< operations per hart
    unsigned cores = 2;
    unsigned slices = 1;        //!< L2 slices
    /// L2 policy layers (see src/l2/); defaults match the paper's L2.
    StateKind l2_policy = StateKind::Inclusive;
    IndexKind l2_index = IndexKind::Modulo;
    ReplaceKind l2_replace = ReplaceKind::Lru;
    std::string engine = "serial"; //!< serial|parallel (result-neutral)
    unsigned workers = 0;       //!< parallel-engine threads (0 = hw)
    bool skipit = true;
    std::string distribution = "zipfian"; //!< zipfian|uniform
    double theta = 0.99;
    unsigned value_bytes = 64;
    Cycle arrival_period = 0;   //!< open-loop inter-arrival; 0 = closed
    unsigned scan_len = 16;     //!< max scan length (mix E)
    /** Ops between store epoch checkpoints (conservative re-flush of
     *  the dirtied working set — the skip bit's fodder); 0 = never. */
    unsigned checkpoint_every = 16;
    std::uint64_t seed = 1;
    Cycle crash_at = 0;         //!< >0: power-fail at this cycle + audit
    Cycle max_cycles = 100'000'000;
    bool trace_stages = false;  //!< attach a TxnTracer, keep stage hists
};

/** Everything one run produced. */
struct KvRunResult
{
    Cycle cycles = 0;             //!< run start to full quiescence
    std::uint64_t total_ops = 0;  //!< ops * cores (completed ops)
    double ops_per_kcycle = 0.0;  //!< throughput
    Histogram latency;            //!< end-to-end, all ops, all harts
    std::map<std::string, Histogram> by_op; //!< read/update/insert/scan
    std::uint64_t cbo_cleans = 0; //!< cleans accepted by the L1s
    std::uint64_t skip_drops = 0; //!< cleans the skip bit dropped
    /** Stage-latency histograms when trace_stages was set. */
    std::map<std::string, Histogram> stages;

    /// @name Crash-run verdict (crash_at > 0 only)
    /// @{
    bool crashed = false;
    /** Violations latched by the generic durability oracle. */
    std::size_t oracle_violations = 0;
    /** Violations found by the KV recovery walk over the frozen image. */
    std::vector<std::string> recovery_violations;
    bool durable() const
    {
        return oracle_violations == 0 && recovery_violations.empty();
    }
    /// @}
};

/**
 * Serve one workload point. Builds one prefilled store per hart, pokes
 * the recovered-store image into DRAM, runs the per-hart op traces to
 * quiescence, and collects latency/throughput/counter results.
 *
 * Crash runs (crash_at > 0) stop at the power failure; throughput and
 * latency fields are not meaningful, and instead the frozen
 * persist-domain image is audited: the generic durability-oracle
 * invariants plus a KV-level recovery walk (every index-reachable node
 * must be fully initialized and point at a self-consistent durable value
 * record — a crash must never expose a pointer to non-durable bytes).
 *
 * @throws std::runtime_error on an invalid spec
 */
KvRunResult runKv(const KvSpec &spec);

/** The benchmark grid: mixes × core counts, each with skip on and off. */
struct KvBenchSpec
{
    KvSpec base;
    std::vector<std::string> mixes = {"A", "B", "C"};
    std::vector<unsigned> cores = {1, 2};

    /**
     * Parse the JSON form (all fields optional):
     *
     *   { "mixes": ["A", "B", "C"], "cores": [1, 2],
     *     "keys": 1024, "ops": 4096, "seed": 1, "theta": 0.99,
     *     "distribution": "zipfian", "value_bytes": 64,
     *     "arrival_period": 0, "slices": 1, "scan_len": 16 }
     *
     * @throws std::runtime_error on malformed input
     */
    static KvBenchSpec fromJsonText(const std::string &text);
};

/** One grid point, served with the skip bit on and off. */
struct KvBenchRow
{
    std::string mix;
    unsigned cores = 0;
    KvRunResult on;
    KvRunResult off;
};

/** The whole grid, in (mix, cores) spec order. */
struct KvBenchResult
{
    KvBenchSpec spec;
    std::vector<KvBenchRow> rows;
};

/** Run the full grid. @throws std::runtime_error on an invalid spec */
KvBenchResult runKvBench(const KvBenchSpec &spec);

/**
 * Render BENCH_kv.json (schema "skipit-kv-bench-v1"): the config block,
 * one "runs" entry per (mix, cores, skipit) with throughput, latency
 * percentiles and clean/skip counters, and one "comparisons" entry per
 * (mix, cores) with the skip-on/off deltas. Deliberately excludes
 * engine/workers and any wall-clock quantity, so the bytes are identical
 * across engines and worker counts at a fixed seed.
 */
void writeKvBenchJson(const KvBenchResult &result, std::ostream &os);

/**
 * KV recovery walk over hart @p hart's region of a frozen post-crash
 * image: follow the bottom-level skiplist chain from the head sentinel
 * exactly like recovery would, and check that every *reachable* node is
 * fully initialized and points at a self-consistent durable value
 * record. The store's fenced commit epochs guarantee this for any crash
 * point; a violation means a pointer was published before its target
 * bytes were durable. Appends one message per violation to @p out.
 */
void auditKvRecovery(const KvSpec &spec, const kv::KvStore &store,
                     unsigned hart,
                     const std::unordered_map<Addr, LineData> &image,
                     std::vector<std::string> &out);

} // namespace workloads
} // namespace skipit

#endif // SKIPIT_WORKLOADS_YCSB_HH
