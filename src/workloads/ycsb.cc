#include "ycsb.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "json.hh"
#include "kv/store.hh"
#include "sim/logging.hh"
#include "sim/txn_tracer.hh"
#include "soc/soc.hh"

namespace skipit::workloads {

namespace {

/** splitmix64 finalizer for seed derivation. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
stir(std::uint64_t seed, std::uint64_t salt)
{
    return mix64(seed * 0x2545f4914f6cdd1dULL + salt);
}

/** Operation fractions of one mix (read + update + insert + scan = 1). */
struct MixDef
{
    double read, update, insert, scan;
    bool latest; //!< reads target recent keys (mix D)
};

MixDef
mixDef(const std::string &mix)
{
    if (mix == "A")
        return {0.50, 0.50, 0.00, 0.00, false};
    if (mix == "B")
        return {0.95, 0.05, 0.00, 0.00, false};
    if (mix == "C")
        return {1.00, 0.00, 0.00, 0.00, false};
    if (mix == "D")
        return {0.95, 0.00, 0.05, 0.00, true};
    if (mix == "E")
        return {0.00, 0.00, 0.05, 0.95, false};
    throw std::runtime_error("kv: unknown mix '" + mix +
                             "' (expected A..E)");
}

enum class OpKind { Read, Update, Insert, Scan };

const char *
opName(OpKind k)
{
    switch (k) {
      case OpKind::Read:
        return "read";
      case OpKind::Update:
        return "update";
      case OpKind::Insert:
        return "insert";
      case OpKind::Scan:
        return "scan";
    }
    return "?";
}

/** One planned operation (key/len resolved before any emission). */
struct OpPlan
{
    OpKind kind;
    std::uint64_t key = 0;
    unsigned len = 0; //!< scan length
};

void
validate(const KvSpec &spec)
{
    mixDef(spec.mix); // throws on an unknown mix
    if (spec.keys == 0)
        throw std::runtime_error("kv: keys must be >= 1");
    if (spec.cores < 1 || spec.cores > 64)
        throw std::runtime_error("kv: cores must be in 1..64");
    if (spec.distribution != "zipfian" && spec.distribution != "uniform")
        throw std::runtime_error("kv: distribution must be zipfian or "
                                 "uniform");
    if (spec.distribution == "zipfian" &&
        (spec.theta <= 0.0 || spec.theta >= 1.0))
        throw std::runtime_error("kv: theta must be in (0, 1)");
    if (spec.engine != "serial" && spec.engine != "parallel")
        throw std::runtime_error("kv: engine must be serial or parallel");
    if (spec.scan_len == 0)
        throw std::runtime_error("kv: scan_len must be >= 1");
}

/**
 * Plan one hart's op stream. Key ranks map to keys through a seed-derived
 * permutation (YCSB's "scrambled" zipfian: the hot set is spread over the
 * keyspace instead of clustering at the low keys, which would cluster it
 * in the node arena too).
 */
std::vector<OpPlan>
planOps(const KvSpec &spec, const ZipfianGen *zipf,
        const std::vector<std::uint64_t> &perm, unsigned hart)
{
    const MixDef mix = mixDef(spec.mix);
    Rng rng(stir(spec.seed, 0x9cb0'0000ULL + hart));
    std::vector<OpPlan> plan;
    plan.reserve(spec.ops);
    std::uint64_t cur_keys = spec.keys;
    for (std::uint64_t i = 0; i < spec.ops; ++i) {
        const double dice = rng.uniform();
        OpPlan op;
        if (dice < mix.read)
            op.kind = OpKind::Read;
        else if (dice < mix.read + mix.update)
            op.kind = OpKind::Update;
        else if (dice < mix.read + mix.update + mix.insert)
            op.kind = OpKind::Insert;
        else
            op.kind = OpKind::Scan;

        if (op.kind == OpKind::Insert) {
            ++cur_keys; // key assigned by the store at emission
        } else {
            std::uint64_t key;
            if (zipf == nullptr) {
                key = 1 + rng.below(cur_keys);
            } else {
                const std::uint64_t rank = zipf->sample(rng);
                if (mix.latest) {
                    // Read-latest: rank 0 is the newest key.
                    key = cur_keys - std::min(rank, cur_keys - 1);
                } else {
                    // Ranks beyond the prefilled keyspace (inserted
                    // keys) fold back onto the permutation.
                    key = perm[rank % perm.size()];
                }
            }
            op.key = key;
            if (op.kind == OpKind::Scan)
                op.len = 1 + static_cast<unsigned>(
                                 rng.below(spec.scan_len));
        }
        plan.push_back(op);
    }
    return plan;
}

/** Emit one hart's program: arrival gates, markers, and the op traces. */
Program
emitProgram(const KvSpec &spec, kv::KvStore &store,
            const std::vector<OpPlan> &plan)
{
    Program prog;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        if (spec.arrival_period > 0)
            prog.push_back(MemOp::waitUntil(
                static_cast<Cycle>(i) * spec.arrival_period));
        prog.push_back(MemOp::marker(2 * i));
        const OpPlan &op = plan[i];
        switch (op.kind) {
          case OpKind::Read:
            store.emitGet(prog, op.key);
            break;
          case OpKind::Update:
            store.emitUpdate(prog, op.key);
            break;
          case OpKind::Insert:
            store.emitInsert(prog);
            break;
          case OpKind::Scan:
            store.emitScan(prog, op.key, op.len);
            break;
        }
        prog.push_back(MemOp::marker(2 * i + 1));
        if (spec.checkpoint_every != 0 &&
            (i + 1) % spec.checkpoint_every == 0)
            store.emitCheckpoint(prog);
    }
    return prog;
}

/** Little-endian word read of a frozen persist image (absent = 0). */
std::uint64_t
imageWord(const std::unordered_map<Addr, LineData> &image, Addr addr)
{
    const auto it = image.find(lineAlign(addr));
    if (it == image.end())
        return 0;
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(it->second[lineOffset(addr) + i])
             << (8 * i);
    return v;
}

} // namespace

void
auditKvRecovery(const KvSpec &spec, const kv::KvStore &store,
                unsigned hart,
                const std::unordered_map<Addr, LineData> &image,
                std::vector<std::string> &out)
{
    const Addr base = kv::KvLayout::baseFor(hart);
    const Addr node_lo = base + kv::KvLayout::node_off;
    const Addr log_lo = base + kv::KvLayout::log_off;
    const Addr region_hi = base + kv::KvLayout::region_stride;
    const unsigned value_words = std::max(1u, (spec.value_bytes + 7) / 8);
    const auto fail = [&](const std::string &msg) {
        out.push_back("hart" + std::to_string(hart) + ": " + msg);
    };

    // The head sentinel is the first node-arena allocation.
    Addr node = node_lo;
    std::uint64_t prev_key = 0;
    std::uint64_t reachable = 0;
    const std::uint64_t limit = store.keyCount() + 2;
    for (std::uint64_t steps = 0; steps <= limit; ++steps) {
        const Addr next = imageWord(image, node + 24); // next[0]
        if (next == 0)
            return; // end of chain: every reachable node checked out
        if (next < node_lo || next >= log_lo || next % 8 != 0) {
            fail("next pointer escapes the node arena");
            return;
        }
        node = next;
        const std::uint64_t key = imageWord(image, node);
        const std::uint64_t level = imageWord(image, node + 16);
        const Addr vptr = imageWord(image, node + 8);
        if (key <= prev_key || key > store.keyCount()) {
            fail("reachable node has a corrupt key (torn node init)");
            return;
        }
        prev_key = key;
        if (level < 1 || level > kv::KvStore::max_level) {
            fail("reachable node has a corrupt level word");
            return;
        }
        if (vptr < log_lo || vptr >= region_hi) {
            fail("reachable node's value pointer escapes the log");
            return;
        }
        // The record the pointer exposes must be durable and consistent.
        const std::uint64_t rkey = imageWord(image, vptr);
        const std::uint64_t rver = imageWord(image, vptr + 8);
        if (rkey != key) {
            fail("value record key does not match its node "
                 "(pointer published before the record was durable)");
            return;
        }
        if (rver > store.version(key)) {
            fail("value record version exceeds the mirror's");
            return;
        }
        for (unsigned w = 0; w < value_words; ++w) {
            if (imageWord(image, vptr + 16 + 8 * w) !=
                kv::KvStore::valueWord(key, rver, w)) {
                fail("torn value record exposed by the index");
                return;
            }
        }
        ++reachable;
    }
    fail("bottom-level chain did not terminate (cyclic or corrupt)");
    (void)reachable;
}

ZipfianGen::ZipfianGen(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    SKIPIT_ASSERT(n >= 1, "zipfian: n must be >= 1");
    SKIPIT_ASSERT(theta > 0.0 && theta < 1.0,
                  "zipfian: theta must be in (0, 1)");
    // Exact inverse-CDF sampling. YCSB's closed-form transform (Gray et
    // al.) avoids this precomputation so it can grow n on the fly, at
    // the cost of a visible distribution error for small n; our n is
    // fixed at construction, so we can afford exactness — which is what
    // lets the chi-square tests hold the sampler to the true pmf.
    cdf_.reserve(n_);
    double zeta = 0.0;
    for (std::uint64_t i = 1; i <= n_; ++i) {
        zeta += 1.0 / std::pow(static_cast<double>(i), theta_);
        cdf_.push_back(zeta);
    }
    zetan_ = zeta;
    for (double &c : cdf_)
        c /= zetan_;
    cdf_.back() = 1.0;
}

std::uint64_t
ZipfianGen::sample(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

double
ZipfianGen::probability(std::uint64_t rank) const
{
    SKIPIT_ASSERT(rank < n_, "zipfian: rank out of range");
    return 1.0 /
           (std::pow(static_cast<double>(rank + 1), theta_) * zetan_);
}

KvRunResult
runKv(const KvSpec &spec)
{
    validate(spec);

    // The rank→key scramble, shared by all harts (each hart has its own
    // keyspace, so sharing the permutation shares only the *shape* of
    // the hot set).
    std::vector<std::uint64_t> perm(spec.keys);
    std::iota(perm.begin(), perm.end(), 1);
    Rng prng(stir(spec.seed, 0x5ca3b1e));
    for (std::size_t i = perm.size(); i > 1; --i)
        std::swap(perm[i - 1], perm[prng.below(i)]);

    std::unique_ptr<ZipfianGen> zipf;
    if (spec.distribution == "zipfian")
        zipf = std::make_unique<ZipfianGen>(spec.keys, spec.theta);

    // Build the stores and their op traces (host-side, machine-free).
    std::vector<std::unique_ptr<kv::KvStore>> stores;
    std::vector<std::vector<OpPlan>> plans;
    std::vector<Program> programs;
    for (unsigned h = 0; h < spec.cores; ++h) {
        kv::KvStoreConfig scfg;
        scfg.hart = h;
        scfg.value_bytes = spec.value_bytes;
        auto store = std::make_unique<kv::KvStore>(scfg);
        store->prefill(spec.keys);
        plans.push_back(planOps(spec, zipf.get(), perm, h));
        programs.push_back(emitProgram(spec, *store, plans.back()));
        stores.push_back(std::move(store));
    }

    SoCConfig cfg;
    cfg.cores = spec.cores;
    cfg.l2.slices = std::max(1u, spec.slices);
    cfg.l2.policy = spec.l2_policy;
    cfg.l2.index = spec.l2_index;
    cfg.l2.replace = spec.l2_replace;
    cfg.engine = spec.engine == "parallel" ? Simulator::Engine::parallel
                                           : Simulator::Engine::serial;
    cfg.workers = spec.workers;
    cfg.withSkipIt(spec.skipit);
    if (spec.crash_at > 0) {
        cfg.durability.enabled = true;
        cfg.durability.crash_at = spec.crash_at;
        cfg.durability.fatal = false; // latch; we report the verdict
    }
    SoC soc(cfg);

    TxnTracer tracer(/*keep_events=*/false);
    if (spec.trace_stages)
        soc.sim().probes().attach(tracer);

    // Start against the recovered store image with cold caches.
    for (const auto &store : stores) {
        for (const auto &[addr, line] : store->image())
            soc.dram().pokeLine(addr, line);
    }
    for (unsigned h = 0; h < spec.cores; ++h)
        soc.hart(h).setProgram(programs[h]);

    KvRunResult res;
    if (spec.crash_at == 0) {
        res.cycles = soc.runToQuiescence(spec.max_cycles);
    } else {
        // Crash run: stop at the power failure (or at quiescence, if
        // the machine drained first).
        const auto settled = [&] {
            for (unsigned c = 0; c < soc.cores(); ++c) {
                if (!soc.hart(c).done() || !soc.l1(c).quiesced())
                    return false;
            }
            return soc.l2Idle();
        };
        const Cycle start = soc.sim().now();
        soc.sim().runUntil(
            [&] {
                return settled() || soc.durability().crashed() ||
                       soc.sim().now() >= start + spec.max_cycles;
            },
            spec.max_cycles + 1000);
        res.cycles = soc.sim().now() - start;

        verify::DurabilityOracle &oracle = soc.durability();
        if (!oracle.crashed())
            oracle.crashNow(); // drained first: audit the final image
        res.crashed = oracle.crashed();
        res.oracle_violations = oracle.violations().size();
        const auto image = oracle.image();
        for (unsigned h = 0; h < spec.cores; ++h)
            auditKvRecovery(spec, *stores[h], h, image,
                            res.recovery_violations);
        return res; // latency/throughput are meaningless mid-crash
    }

    // Harvest per-op latencies from the RDCYCLE marker pairs.
    for (unsigned h = 0; h < spec.cores; ++h) {
        Hart &hart = soc.hart(h);
        for (std::size_t i = 0; i < plans[h].size(); ++i) {
            const Cycle end = hart.markerCycle(2 * i + 1);
            const Cycle from =
                spec.arrival_period > 0
                    ? static_cast<Cycle>(i) * spec.arrival_period
                    : hart.markerCycle(2 * i);
            const auto lat = static_cast<double>(end - from);
            res.latency.add(lat);
            res.by_op[opName(plans[h][i].kind)].add(lat);
        }
        res.total_ops += plans[h].size();
    }
    res.ops_per_kcycle =
        res.cycles == 0 ? 0.0
                        : static_cast<double>(res.total_ops) * 1000.0 /
                              static_cast<double>(res.cycles);
    for (unsigned h = 0; h < spec.cores; ++h) {
        const std::string p = "l1." + std::to_string(h) + ".";
        res.cbo_cleans += soc.stats().get(p + "cbo_clean_accepted");
        res.skip_drops += soc.stats().get(p + "skipit_dropped");
    }
    if (spec.trace_stages)
        res.stages = tracer.histograms();
    return res;
}

KvBenchSpec
KvBenchSpec::fromJsonText(const std::string &text)
{
    const JsonValue doc = parseJson(text, "kv bench spec");
    if (doc.type != JsonValue::Type::Object)
        throw std::runtime_error("kv bench spec: top level must be an "
                                 "object");
    KvBenchSpec spec;
    const auto num = [&](const char *name, auto &out) {
        if (const JsonValue *v = doc.field(name)) {
            if (v->type != JsonValue::Type::Number)
                throw std::runtime_error(
                    std::string("kv bench spec: '") + name +
                    "' must be a number");
            out = static_cast<std::decay_t<decltype(out)>>(
                std::stod(v->text));
        }
    };
    num("keys", spec.base.keys);
    num("ops", spec.base.ops);
    num("seed", spec.base.seed);
    num("theta", spec.base.theta);
    num("value_bytes", spec.base.value_bytes);
    num("arrival_period", spec.base.arrival_period);
    num("slices", spec.base.slices);
    num("scan_len", spec.base.scan_len);
    num("checkpoint_every", spec.base.checkpoint_every);
    if (const JsonValue *v = doc.field("distribution")) {
        if (v->type != JsonValue::Type::String)
            throw std::runtime_error("kv bench spec: 'distribution' must "
                                     "be a string");
        spec.base.distribution = v->text;
    }
    if (const JsonValue *v = doc.field("l2_policy")) {
        if (v->type != JsonValue::Type::String ||
            !stateKindFromString(v->text, spec.base.l2_policy))
            throw std::runtime_error("kv bench spec: 'l2_policy' must be "
                                     "\"inclusive\" or \"exclusive\"");
    }
    if (const JsonValue *v = doc.field("l2_index")) {
        if (v->type != JsonValue::Type::String ||
            !indexKindFromString(v->text, spec.base.l2_index))
            throw std::runtime_error("kv bench spec: 'l2_index' must be "
                                     "\"modulo\" or \"hashed\"");
    }
    if (const JsonValue *v = doc.field("l2_replace")) {
        if (v->type != JsonValue::Type::String ||
            !replaceKindFromString(v->text, spec.base.l2_replace))
            throw std::runtime_error("kv bench spec: 'l2_replace' must be "
                                     "\"lru\", \"fifo\" or \"random\"");
    }
    if (const JsonValue *v = doc.field("mixes")) {
        if (v->type != JsonValue::Type::Array || v->items.empty())
            throw std::runtime_error("kv bench spec: 'mixes' must be a "
                                     "non-empty array");
        spec.mixes.clear();
        for (const JsonValue &m : v->items) {
            if (m.type != JsonValue::Type::String)
                throw std::runtime_error("kv bench spec: mixes entries "
                                         "must be strings");
            spec.mixes.push_back(m.text);
        }
    }
    if (const JsonValue *v = doc.field("cores")) {
        if (v->type != JsonValue::Type::Array || v->items.empty())
            throw std::runtime_error("kv bench spec: 'cores' must be a "
                                     "non-empty array");
        spec.cores.clear();
        for (const JsonValue &c : v->items) {
            if (c.type != JsonValue::Type::Number)
                throw std::runtime_error("kv bench spec: cores entries "
                                         "must be numbers");
            spec.cores.push_back(
                static_cast<unsigned>(std::stoul(c.text)));
        }
    }
    return spec;
}

KvBenchResult
runKvBench(const KvBenchSpec &spec)
{
    KvBenchResult result;
    result.spec = spec;
    for (const std::string &mix : spec.mixes) {
        for (const unsigned cores : spec.cores) {
            KvSpec s = spec.base;
            s.mix = mix;
            s.cores = cores;
            KvBenchRow row;
            row.mix = mix;
            row.cores = cores;
            s.skipit = true;
            row.on = runKv(s);
            s.skipit = false;
            row.off = runKv(s);
            result.rows.push_back(std::move(row));
        }
    }
    return result;
}

namespace {

/** Fixed-precision number rendering: deterministic bytes for identical
 *  doubles (no locale, no %g precision surprises). */
std::string
jnum(double v)
{
    if (std::isnan(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    std::string s(buf);
    while (s.size() > 1 && s.back() == '0')
        s.pop_back();
    if (!s.empty() && s.back() == '.')
        s.pop_back();
    return s;
}

void
writeHistogram(std::ostream &os, const Histogram &h,
               const std::string &indent)
{
    os << "{\n"
       << indent << "  \"count\": " << h.count() << ",\n"
       << indent << "  \"mean\": " << jnum(h.mean()) << ",\n"
       << indent << "  \"p50\": " << jnum(h.percentile(50)) << ",\n"
       << indent << "  \"p90\": " << jnum(h.percentile(90)) << ",\n"
       << indent << "  \"p99\": " << jnum(h.percentile(99)) << ",\n"
       << indent << "  \"max\": " << jnum(h.max()) << "\n"
       << indent << "}";
}

void
writeRun(std::ostream &os, const KvBenchRow &row, bool skipit)
{
    const KvRunResult &r = skipit ? row.on : row.off;
    os << "    {\n"
       << "      \"mix\": \"" << row.mix << "\",\n"
       << "      \"cores\": " << row.cores << ",\n"
       << "      \"skipit\": " << (skipit ? "true" : "false") << ",\n"
       << "      \"cycles\": " << r.cycles << ",\n"
       << "      \"ops\": " << r.total_ops << ",\n"
       << "      \"ops_per_kcycle\": " << jnum(r.ops_per_kcycle) << ",\n"
       << "      \"cbo_cleans\": " << r.cbo_cleans << ",\n"
       << "      \"skip_drops\": " << r.skip_drops << ",\n"
       << "      \"latency\": ";
    writeHistogram(os, r.latency, "      ");
    os << ",\n      \"by_op\": {";
    bool first = true;
    for (const auto &[name, hist] : r.by_op) {
        os << (first ? "\n" : ",\n") << "        \"" << name << "\": ";
        writeHistogram(os, hist, "        ");
        first = false;
    }
    os << (first ? "}" : "\n      }") << "\n    }";
}

} // namespace

void
writeKvBenchJson(const KvBenchResult &result, std::ostream &os)
{
    const KvSpec &b = result.spec.base;
    os << "{\n"
       << "  \"schema\": \"skipit-kv-bench-v1\",\n"
       << "  \"config\": {\n"
       << "    \"seed\": " << b.seed << ",\n"
       << "    \"keys\": " << b.keys << ",\n"
       << "    \"ops\": " << b.ops << ",\n"
       << "    \"value_bytes\": " << b.value_bytes << ",\n"
       << "    \"arrival_period\": " << b.arrival_period << ",\n"
       << "    \"distribution\": \"" << b.distribution << "\",\n"
       << "    \"theta\": " << jnum(b.theta) << ",\n"
       << "    \"slices\": " << b.slices << ",\n";
    // Policy keys appear only when non-default, keeping the default
    // config's output byte-identical to the pre-policy format (the
    // golden bench files pin those bytes).
    if (b.l2_policy != StateKind::Inclusive)
        os << "    \"l2_policy\": \"" << toString(b.l2_policy) << "\",\n";
    if (b.l2_index != IndexKind::Modulo)
        os << "    \"l2_index\": \"" << toString(b.l2_index) << "\",\n";
    if (b.l2_replace != ReplaceKind::Lru) {
        os << "    \"l2_replace\": \"" << toString(b.l2_replace)
           << "\",\n";
    }
    os << "    \"scan_len\": " << b.scan_len << ",\n"
       << "    \"checkpoint_every\": " << b.checkpoint_every << "\n"
       << "  },\n"
       << "  \"runs\": [\n";
    for (std::size_t i = 0; i < result.rows.size(); ++i) {
        writeRun(os, result.rows[i], true);
        os << ",\n";
        writeRun(os, result.rows[i], false);
        os << (i + 1 < result.rows.size() ? ",\n" : "\n");
    }
    os << "  ],\n  \"comparisons\": [\n";
    for (std::size_t i = 0; i < result.rows.size(); ++i) {
        const KvBenchRow &row = result.rows[i];
        const double cyc_on = static_cast<double>(row.on.cycles);
        const double cyc_off = static_cast<double>(row.off.cycles);
        const double reduction =
            cyc_off == 0.0 ? 0.0 : 100.0 * (cyc_off - cyc_on) / cyc_off;
        const double drop_pct =
            row.on.cbo_cleans == 0
                ? 0.0
                : 100.0 * static_cast<double>(row.on.skip_drops) /
                      static_cast<double>(row.on.cbo_cleans);
        os << "    {\n"
           << "      \"mix\": \"" << row.mix << "\",\n"
           << "      \"cores\": " << row.cores << ",\n"
           << "      \"cycles_on\": " << row.on.cycles << ",\n"
           << "      \"cycles_off\": " << row.off.cycles << ",\n"
           << "      \"cycle_reduction_pct\": " << jnum(reduction)
           << ",\n"
           << "      \"cleans_dropped_pct\": " << jnum(drop_pct) << ",\n"
           << "      \"p99_on\": " << jnum(row.on.latency.percentile(99))
           << ",\n"
           << "      \"p99_off\": "
           << jnum(row.off.latency.percentile(99)) << ",\n"
           << "      \"throughput_on\": " << jnum(row.on.ops_per_kcycle)
           << ",\n"
           << "      \"throughput_off\": "
           << jnum(row.off.ops_per_kcycle) << "\n"
           << "    }" << (i + 1 < result.rows.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

} // namespace skipit::workloads
