#include "sweep.hh"

#include "json.hh"

#include <atomic>
#include <cctype>
#include <stdexcept>
#include <thread>

#include "workloads.hh"

namespace skipit::workloads {

namespace {

[[noreturn]] void
fail(const std::string &msg)
{
    throw std::runtime_error(msg);
}

/** An axis value token as a string (numbers verbatim, bools as 0/1). */
std::string
scalarToken(const JsonValue &v)
{
    switch (v.type) {
      case JsonValue::Type::String:
      case JsonValue::Type::Number:
        return v.text;
      case JsonValue::Type::Bool:
        return v.boolean ? "1" : "0";
      default:
        fail("sweep spec: axis values must be scalars");
    }
}

// ---------------------------------------------------------------------
// Value parsing.
// ---------------------------------------------------------------------

std::uint64_t
parseU64(const std::string &name, const std::string &token)
{
    try {
        std::size_t used = 0;
        const std::uint64_t v = std::stoull(token, &used, 0);
        if (used != token.size())
            fail("");
        return v;
    } catch (const std::exception &) {
        fail("sweep: axis '" + name + "': '" + token +
             "' is not an unsigned integer");
    }
}

double
parseF64(const std::string &name, const std::string &token)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(token, &used);
        if (used != token.size())
            fail("");
        return v;
    } catch (const std::exception &) {
        fail("sweep: axis '" + name + "': '" + token +
             "' is not a number");
    }
}

bool
parseFlag(const std::string &name, const std::string &token)
{
    if (token == "1" || token == "true" || token == "on")
        return true;
    if (token == "0" || token == "false" || token == "off")
        return false;
    fail("sweep: axis '" + name + "': '" + token +
         "' is not a boolean (use 0/1)");
}

// ---------------------------------------------------------------------
// Per-kind parameter models.
// ---------------------------------------------------------------------

enum class Kind { Cbo, Wwr, Redundant, Throughput };

Kind
parseKind(const std::string &kind)
{
    if (kind == "cbo")
        return Kind::Cbo;
    if (kind == "wwr")
        return Kind::Wwr;
    if (kind == "redundant")
        return Kind::Redundant;
    if (kind == "throughput")
        return Kind::Throughput;
    fail("sweep: unknown kind '" + kind +
         "' (expected cbo, wwr, redundant or throughput)");
}

/** Parameters of the cycle-model kinds (cbo / wwr / redundant). */
struct CycleParams
{
    SoCConfig cfg{};
    unsigned threads = 1;
    std::size_t bytes = 4096;
    bool flush = true;
    unsigned cores = 0; //!< machine size; 0 = one core per thread
};

void
applyCycleParam(CycleParams &p, const std::string &name,
                const std::string &token)
{
    if (name == "threads")
        p.threads = static_cast<unsigned>(parseU64(name, token));
    else if (name == "bytes")
        p.bytes = static_cast<std::size_t>(parseU64(name, token));
    else if (name == "flush")
        p.flush = parseFlag(name, token);
    else if (name == "skipit")
        p.cfg.withSkipIt(parseFlag(name, token));
    else if (name == "coalesce")
        p.cfg.l1.coalesce = parseFlag(name, token);
    else if (name == "cross_kind_coalesce")
        p.cfg.l1.cross_kind_coalesce = parseFlag(name, token);
    else if (name == "wide_data_array")
        p.cfg.l1.wide_data_array = parseFlag(name, token);
    else if (name == "fshrs")
        p.cfg.l1.fshrs = static_cast<unsigned>(parseU64(name, token));
    else if (name == "flush_queue_depth")
        p.cfg.l1.flush_queue_depth =
            static_cast<unsigned>(parseU64(name, token));
    else if (name == "mshrs")
        p.cfg.l1.mshrs = static_cast<unsigned>(parseU64(name, token));
    else if (name == "llc_skip")
        p.cfg.l2.llc_skip = parseFlag(name, token);
    else if (name == "l2_slices")
        p.cfg.l2.slices = static_cast<unsigned>(parseU64(name, token));
    else if (name == "l2_policy") {
        if (!stateKindFromString(token, p.cfg.l2.policy))
            fail("sweep: l2_policy must be 'inclusive' or 'exclusive', "
                 "got '" + token + "'");
    } else if (name == "l2_index") {
        if (!indexKindFromString(token, p.cfg.l2.index))
            fail("sweep: l2_index must be 'modulo' or 'hashed', got '" +
                 token + "'");
    } else if (name == "l2_replace") {
        if (!replaceKindFromString(token, p.cfg.l2.replace))
            fail("sweep: l2_replace must be 'lru', 'fifo' or 'random', "
                 "got '" + token + "'");
    }
    else if (name == "grant_data_dirty")
        p.cfg.l2.grant_data_dirty = parseFlag(name, token);
    else if (name == "dram_latency")
        p.cfg.dram.latency = parseU64(name, token);
    else if (name == "link_latency")
        p.cfg.link_latency = parseU64(name, token);
    else if (name == "fast_forward")
        p.cfg.fast_forward = parseFlag(name, token);
    else if (name == "cores")
        p.cores = static_cast<unsigned>(parseU64(name, token));
    else if (name == "engine") {
        if (token == "serial")
            p.cfg.engine = Simulator::Engine::serial;
        else if (token == "parallel")
            p.cfg.engine = Simulator::Engine::parallel;
        else
            fail("sweep: engine must be 'serial' or 'parallel', got '" +
                 token + "'");
    } else if (name == "workers")
        p.cfg.workers = static_cast<unsigned>(parseU64(name, token));
    else
        fail("sweep: unknown axis '" + name + "' for a cycle-model kind");
}

/** Parameters of the throughput kind. */
struct ThroughputParams
{
    DsKind ds = DsKind::Bst;
    FlushPolicy policy = FlushPolicy::SkipIt;
    PersistMode mode = PersistMode::Automatic;
    double update_pct = 5.0;
    unsigned threads = 2;
    Cycle budget = 400'000;
    std::size_t flit_entries = std::size_t{1} << 16;
    std::uint64_t seed = 0;
    bool seed_set = false;
};

DsKind
parseDs(const std::string &token)
{
    if (token == "list")
        return DsKind::List;
    if (token == "hashtable" || token == "hash")
        return DsKind::HashTable;
    if (token == "bst")
        return DsKind::Bst;
    if (token == "skiplist")
        return DsKind::SkipList;
    fail("sweep: unknown ds '" + token +
         "' (expected list, hashtable, bst or skiplist)");
}

FlushPolicy
parsePolicy(const std::string &token)
{
    if (token == "plain")
        return FlushPolicy::Plain;
    if (token == "flit-adjacent")
        return FlushPolicy::FlitAdjacent;
    if (token == "flit-hashtable")
        return FlushPolicy::FlitHashTable;
    if (token == "link-and-persist")
        return FlushPolicy::LinkAndPersist;
    if (token == "skip-it")
        return FlushPolicy::SkipIt;
    fail("sweep: unknown policy '" + token + "'");
}

PersistMode
parseMode(const std::string &token)
{
    if (token == "non-persistent")
        return PersistMode::NonPersistent;
    if (token == "automatic")
        return PersistMode::Automatic;
    if (token == "nvtraverse")
        return PersistMode::NvTraverse;
    if (token == "manual")
        return PersistMode::Manual;
    fail("sweep: unknown mode '" + token + "'");
}

void
applyThroughputParam(ThroughputParams &p, const std::string &name,
                     const std::string &token)
{
    if (name == "ds")
        p.ds = parseDs(token);
    else if (name == "policy")
        p.policy = parsePolicy(token);
    else if (name == "mode")
        p.mode = parseMode(token);
    else if (name == "update_pct")
        p.update_pct = parseF64(name, token);
    else if (name == "threads")
        p.threads = static_cast<unsigned>(parseU64(name, token));
    else if (name == "budget")
        p.budget = parseU64(name, token);
    else if (name == "flit_entries")
        p.flit_entries = static_cast<std::size_t>(parseU64(name, token));
    else if (name == "seed") {
        p.seed = parseU64(name, token);
        p.seed_set = true;
    } else {
        fail("sweep: unknown axis '" + name + "' for kind throughput");
    }
}

std::vector<std::string>
resultColumns(Kind kind)
{
    if (kind == Kind::Throughput)
        return {"mops_per_mcycle", "ops", "flushes", "skipped_l1"};
    return {"cycles"};
}

/** Execute one grid point and return its result cells. */
std::vector<ReportValue>
runPoint(const SweepSpec &spec, Kind kind, const SweepPoint &pt)
{
    if (kind == Kind::Throughput) {
        ThroughputParams p;
        for (const auto &[name, token] : pt.params)
            applyThroughputParam(p, name, token);
        if (!p.seed_set)
            p.seed = spec.seed + pt.index;
        // Some combinations don't exist (link-and-persist needs spare
        // pointer bits the BST doesn't have); keep the grid rectangular
        // and mark the row rather than failing the whole sweep.
        if (!applicable(p.ds, p.policy))
            return {std::string("n/a"), std::string("n/a"),
                    std::string("n/a"), std::string("n/a")};
        const ThroughputResult r =
            runThroughput(p.ds, p.policy, p.mode, p.update_pct, p.threads,
                          p.budget, p.flit_entries, p.seed);
        return {r.mops_per_mcycle, r.ops, r.flushes, r.skipped_l1};
    }

    CycleParams p;
    for (const auto &[name, token] : pt.params)
        applyCycleParam(p, name, token);
    Cycle cycles = 0;
    switch (kind) {
      case Kind::Cbo:
        cycles = cboLatency(p.cfg, p.threads, p.bytes, p.flush, p.cores);
        break;
      case Kind::Wwr:
        cycles = writeWbReadLatency(p.cfg, p.threads, p.bytes, p.flush,
                                    p.cores);
        break;
      default:
        cycles = redundantWbLatency(p.cfg, p.threads, p.bytes, p.flush,
                                    p.cores);
        break;
    }
    return {static_cast<std::uint64_t>(cycles)};
}

/** Reject unknown axis names / unparsable values before spawning work. */
void
validateAxes(const SweepSpec &spec, Kind kind)
{
    for (const SweepAxis &axis : spec.axes) {
        if (axis.values.empty())
            fail("sweep: axis '" + axis.name + "' has no values");
        for (const std::string &token : axis.values) {
            if (kind == Kind::Throughput) {
                ThroughputParams scratch;
                applyThroughputParam(scratch, axis.name, token);
            } else {
                CycleParams scratch;
                applyCycleParam(scratch, axis.name, token);
            }
        }
    }
}

} // namespace

SweepSpec
SweepSpec::fromJsonText(const std::string &text)
{
    const JsonValue doc = parseJson(text, "sweep spec");
    if (doc.type != JsonValue::Type::Object)
        fail("sweep spec: top level must be a JSON object");

    SweepSpec spec;
    for (const auto &[key, value] : doc.fields) {
        if (key == "kind") {
            if (value.type != JsonValue::Type::String)
                fail("sweep spec: \"kind\" must be a string");
            spec.kind = value.text;
        } else if (key == "seed") {
            if (value.type != JsonValue::Type::Number)
                fail("sweep spec: \"seed\" must be a number");
            spec.seed = parseU64("seed", value.text);
        } else if (key == "axes") {
            if (value.type != JsonValue::Type::Object)
                fail("sweep spec: \"axes\" must be an object");
            for (const auto &[axis_name, axis_values] : value.fields) {
                SweepAxis axis;
                axis.name = axis_name;
                if (axis_values.type == JsonValue::Type::Array) {
                    for (const JsonValue &v : axis_values.items)
                        axis.values.push_back(scalarToken(v));
                } else {
                    axis.values.push_back(scalarToken(axis_values));
                }
                spec.axes.push_back(std::move(axis));
            }
        } else {
            fail("sweep spec: unknown key \"" + key + "\"");
        }
    }
    return spec;
}

std::vector<SweepPoint>
expandGrid(const SweepSpec &spec)
{
    std::size_t total = 1;
    for (const SweepAxis &axis : spec.axes) {
        if (axis.values.empty())
            fail("sweep: axis '" + axis.name + "' has no values");
        total *= axis.values.size();
    }

    std::vector<SweepPoint> points;
    points.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        SweepPoint pt;
        pt.index = i;
        // Mixed-radix decomposition, last axis varying fastest.
        std::size_t rem = i;
        std::size_t radix = total;
        for (const SweepAxis &axis : spec.axes) {
            radix /= axis.values.size();
            const std::size_t digit = rem / radix;
            rem %= radix;
            pt.params.emplace_back(axis.name, axis.values[digit]);
        }
        points.push_back(std::move(pt));
    }
    return points;
}

ReportTable
runSweep(const SweepSpec &spec, unsigned jobs)
{
    const Kind kind = parseKind(spec.kind);
    validateAxes(spec, kind);
    const std::vector<SweepPoint> points = expandGrid(spec);

    std::vector<std::vector<ReportValue>> rows(points.size());
    std::vector<std::string> errors(points.size());
    std::atomic<std::size_t> next{0};

    const auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= points.size())
                return;
            try {
                rows[i] = runPoint(spec, kind, points[i]);
            } catch (const std::exception &e) {
                errors[i] = e.what();
            }
        }
    };

    jobs = std::max(1u, jobs);
    if (jobs <= 1 || points.size() <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        const unsigned n =
            static_cast<unsigned>(std::min<std::size_t>(jobs,
                                                        points.size()));
        pool.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!errors[i].empty()) {
            fail("sweep: run " + std::to_string(i) + " failed: " +
                 errors[i]);
        }
    }

    std::vector<std::string> columns;
    for (const SweepAxis &axis : spec.axes)
        columns.push_back(axis.name);
    for (std::string &c : resultColumns(kind))
        columns.push_back(std::move(c));

    ReportTable table("sweep: " + spec.kind, columns);
    for (std::size_t i = 0; i < points.size(); ++i) {
        std::vector<ReportValue> row;
        row.reserve(columns.size());
        for (const auto &[axis_name, token] : points[i].params)
            row.emplace_back(token);
        for (ReportValue &v : rows[i])
            row.push_back(std::move(v));
        table.addRow(std::move(row));
    }
    return table;
}

} // namespace skipit::workloads
