/**
 * @file
 * Seeded fault-injection fuzzing for the coherence/flush protocol.
 *
 * Generates random multi-hart programs (loads / stores / CBO.CLEAN /
 * CBO.FLUSH / FENCE over a small aliasing-prone line pool), runs them on
 * a SoC with the invariant checker latching and — optionally — seeded
 * schedule jitter on every TileLink channel, and reports the first
 * failure: a latched invariant violation, a wrong load value, a wrong
 * persisted word, or a hang.
 *
 * Function must be schedule-invariant: the jitter layer only perturbs
 * *timing* (per-channel delay and backpressure bursts), so every
 * invariant and every architectural value must hold under any jitter
 * seed. A failing seed replays deterministically — same spec + same seed
 * is the same run, bit for bit — and can be shrunk to a minimal program
 * and exported as a replay bundle (config + programs + Chrome trace +
 * transaction history).
 *
 * Value oracle: hart h owns word offset (h % 8) * 8 of every pool line
 * (deliberate false sharing — maximum protocol traffic, zero data
 * races). With more than 8 harts the pool is striped into
 * ceil(harts / 8) line groups and hart h stores/loads only lines of
 * group h / 8, so single-word ownership still holds at any core count.
 * Stores and loads of hart h touch only its own word, so the expected
 * value of every load, and of every persisted word after the final
 * flush-everything epilogue, follows from h's program alone.
 *
 * Crash axis: with crash_points > 0 each seed first runs to completion
 * (establishing its natural length T and the usual end-state oracles),
 * then re-runs with the power failing at crash_points seed-derived
 * cycles in [1, T]. Each crash run freezes the persist-domain image via
 * the durability oracle and checks (a) the oracle's own soundness +
 * durability audit and (b) a word-level crash oracle: for every owned
 * word, the frozen image must hold the value of some store at or after
 * the last store provably persisted before the crash (last fence-
 * observed CBO of that line, derived from the program and the retired-
 * fence count). A crash failure records its crash cycle so replay and
 * shrinking re-run the exact same truncated execution.
 */

#ifndef SKIPIT_WORKLOADS_FUZZ_HH
#define SKIPIT_WORKLOADS_FUZZ_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "soc/soc.hh"

namespace skipit::workloads {

/** Shape of one fuzz run; every field is part of the replay identity. */
struct FuzzSpec
{
    unsigned harts = 2;   //!< cores (1-64; >8 stripes the pool into
                          //!< ceil(harts/8) line-ownership groups)
    unsigned ops = 120;   //!< random ops per hart (epilogue excluded)
    unsigned lines = 6;   //!< pool size; small = aliasing-prone
    Addr pool_base = 0x90000; //!< line-aligned pool base
    bool jitter = true;       //!< enable TileLink schedule perturbation
    unsigned max_delay = 12;  //!< jitter: max extra cycles per message
    Cycle max_cycles = 2'000'000; //!< hang deadline per run
    unsigned fshrs = 0;       //!< override L1 FSHR count (0 = default);
                              //!< 1 keeps entries queued, the §5.4 corner
    unsigned flush_queue_depth = 0; //!< override queue depth (0 = default)
    unsigned l2_slices = 1;   //!< address-interleaved L2 slice count
    /// L2 policy layers (see src/l2/): part of the replay identity.
    StateKind l2_policy = StateKind::Inclusive;
    IndexKind l2_index = IndexKind::Modulo;
    ReplaceKind l2_replace = ReplaceKind::Lru;
    bool break_probe_invalidate = false; //!< negative-control fault
    /** Crash (power-fail) cycles to sample per seed, after one clean
     *  run establishes the seed's natural length. 0 = no crash axis. */
    unsigned crash_points = 0;
    /** Crash at exactly this cycle instead of sampling (replay/shrink
     *  identity of one crash run). 0 = off. */
    Cycle crash_at = 0;
    bool parallel = false;    //!< run on the parallel tick engine
    unsigned workers = 0;     //!< parallel-engine workers (0 = hw)
};

/** One reproducible failure. */
struct FuzzFailure
{
    std::uint64_t seed = 0;
    std::string kind;   //!< "invariant" | "value" | "persist" | "hang"
                        //!< | "crash-durability" | "crash-value"
    std::string detail; //!< human-readable; names the invariant if any
    Cycle cycle = 0;    //!< when it was detected
    /** Crash cycle of the failing run (0 = it was not a crash run).
     *  Part of the replay identity: shrinking and replay bundles pin
     *  spec.crash_at to this value so the truncated run reproduces. */
    Cycle crash_at = 0;
    std::vector<Program> programs; //!< the programs that failed
};

/** Derive the SoC configuration a fuzz run uses (checker latching,
 *  jitter seeded from @p seed when the spec enables it). */
SoCConfig fuzzConfig(const FuzzSpec &spec, std::uint64_t seed);

/** Generate the per-hart programs for @p seed (epilogue included). */
std::vector<Program> generateFuzzPrograms(const FuzzSpec &spec,
                                          std::uint64_t seed);

/**
 * Run @p programs under @p spec / @p seed and check everything.
 * @return the first detected failure, or nullopt on a clean run
 */
std::optional<FuzzFailure> runFuzzPrograms(
    const FuzzSpec &spec, std::uint64_t seed,
    const std::vector<Program> &programs);

/** generateFuzzPrograms + runFuzzPrograms. */
std::optional<FuzzFailure> runFuzzSeed(const FuzzSpec &spec,
                                       std::uint64_t seed);

/**
 * Sweep seeds [base, base + count) on @p jobs worker threads (each run
 * owns an isolated SoC). Deterministic: always reports the failure with
 * the LOWEST seed, independent of worker scheduling.
 */
std::optional<FuzzFailure> runFuzz(const FuzzSpec &spec,
                                   std::uint64_t base_seed, unsigned count,
                                   unsigned jobs = 1);

/**
 * Greedy delta-debugging: repeatedly drop chunks (halves down to single
 * ops) from each hart's program while the failure still reproduces.
 * @return the smallest reproducing variant found (kind may differ from
 *         the original; any failure counts as reproducing)
 */
FuzzFailure shrinkFuzzFailure(const FuzzSpec &spec,
                              const FuzzFailure &failure);

/**
 * Write a replay bundle into directory @p dir (created if needed):
 * config.txt (spec + seed + resolved SoC config), core<i>.s (the
 * programs, assembleProgram-compatible), failure.txt, trace.json
 * (Chrome trace of a re-run) and txn_history.txt (event log of the
 * last transaction). @return false on I/O failure (warns, no throw).
 */
bool writeReplayBundle(const FuzzSpec &spec, const FuzzFailure &failure,
                       const std::string &dir);

/** Parse a bundle's config.txt back into (spec, seed); fatal on
 *  malformed input. Programs are read from the bundle's core<i>.s. */
std::pair<FuzzSpec, std::uint64_t> readReplayBundle(
    const std::string &dir, std::vector<Program> &programs);

} // namespace skipit::workloads

#endif // SKIPIT_WORKLOADS_FUZZ_HH
