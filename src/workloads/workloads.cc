#include "workloads.hh"

#include <thread>
#include <vector>

#include "ds/bst.hh"
#include "ds/hash_table.hh"
#include "ds/linked_list.hh"
#include "ds/skiplist.hh"
#include "sim/random.hh"

namespace skipit::workloads {

Program
dirtyRegion(Addr base, unsigned lines)
{
    Program p;
    for (unsigned i = 0; i < lines; ++i)
        p.push_back(MemOp::store(base + static_cast<Addr>(i) * line_bytes,
                                 i + 1));
    p.push_back(MemOp::fence());
    return p;
}

Program
writebackRegion(Addr base, unsigned lines, bool flush, unsigned passes)
{
    Program p;
    for (unsigned pass = 0; pass < passes; ++pass) {
        for (unsigned i = 0; i < lines; ++i) {
            const Addr a = base + static_cast<Addr>(i) * line_bytes;
            p.push_back(flush ? MemOp::flush(a) : MemOp::clean(a));
        }
    }
    p.push_back(MemOp::fence());
    return p;
}

Cycle
cboLatency(const SoCConfig &cfg, unsigned threads, std::size_t bytes,
           bool flush, unsigned cores)
{
    SoCConfig c = cfg;
    c.cores = cores ? cores : threads;
    SKIPIT_ASSERT(threads <= c.cores, "more threads than cores");
    SoC soc(c);
    const unsigned lines_total =
        static_cast<unsigned>(bytes / line_bytes);
    const unsigned per = std::max(1u, lines_total / threads);

    std::vector<Program> dirty, wb;
    for (unsigned t = 0; t < threads; ++t) {
        const Addr base = region_base + t * thread_stride;
        dirty.push_back(dirtyRegion(base, per));
        wb.push_back(writebackRegion(base, per, flush));
    }
    soc.setPrograms(dirty);
    soc.runToQuiescence();
    soc.setPrograms(wb);
    return soc.runToCompletion();
}

Cycle
writeWbReadLatency(const SoCConfig &cfg, unsigned threads,
                   std::size_t bytes, bool flush, unsigned cores)
{
    SoCConfig c = cfg;
    c.cores = cores ? cores : threads;
    SKIPIT_ASSERT(threads <= c.cores, "more threads than cores");
    SoC soc(c);
    const unsigned lines_total =
        static_cast<unsigned>(bytes / line_bytes);
    const unsigned per = std::max(1u, lines_total / threads);

    std::vector<Program> warm, meas;
    for (unsigned t = 0; t < threads; ++t) {
        const Addr base = region_base + t * thread_stride;
        warm.push_back(dirtyRegion(base, per));
        Program p;
        for (unsigned i = 0; i < per; ++i) {
            const Addr a = base + static_cast<Addr>(i) * line_bytes;
            p.push_back(MemOp::store(a, i + 7));
            for (int r = 0; r < 10; ++r)
                p.push_back(flush ? MemOp::flush(a) : MemOp::clean(a));
            p.push_back(MemOp::fence());
            p.push_back(MemOp::load(a));
        }
        meas.push_back(std::move(p));
    }
    soc.setPrograms(warm);
    soc.runToQuiescence();
    soc.setPrograms(meas);
    return soc.runToCompletion();
}

Cycle
redundantWbLatency(const SoCConfig &cfg, unsigned threads,
                   std::size_t bytes, bool flush, unsigned cores)
{
    SoCConfig c = cfg;
    c.cores = cores ? cores : threads;
    SKIPIT_ASSERT(threads <= c.cores, "more threads than cores");
    SoC soc(c);
    const unsigned lines_total =
        static_cast<unsigned>(bytes / line_bytes);
    const unsigned per = std::max(1u, lines_total / threads);

    std::vector<Program> warm, meas;
    for (unsigned t = 0; t < threads; ++t) {
        const Addr base = region_base + t * thread_stride;
        warm.push_back(dirtyRegion(base, per));
        Program p = dirtyRegion(base, per);
        Program wb = writebackRegion(base, per, flush, 1 + 10);
        p.insert(p.end(), wb.begin(), wb.end());
        meas.push_back(std::move(p));
    }
    soc.setPrograms(warm);
    soc.runToQuiescence();
    soc.setPrograms(meas);
    return soc.runToCompletion();
}

const char *
name(DsKind k)
{
    switch (k) {
      case DsKind::List:
        return "linked-list";
      case DsKind::HashTable:
        return "hash-table";
      case DsKind::Bst:
        return "bst";
      default:
        return "skiplist";
    }
}

std::uint64_t
keyRange(DsKind k)
{
    switch (k) {
      case DsKind::List:
        return 128;
      case DsKind::HashTable:
        return 1024;
      case DsKind::Bst:
        return 10240; // "BST (10k keys)" (Fig 16)
      default:
        return 1024;
    }
}

std::unique_ptr<PersistentSet>
makeSet(DsKind k, PersistCtx &ctx)
{
    switch (k) {
      case DsKind::List:
        return std::make_unique<LinkedList>(ctx);
      case DsKind::HashTable:
        return std::make_unique<HashTable>(ctx, 1024);
      case DsKind::Bst:
        return std::make_unique<Bst>(ctx);
      default:
        return std::make_unique<SkipList>(ctx);
    }
}

bool
applicable(DsKind k, FlushPolicy p)
{
    return !(k == DsKind::Bst && p == FlushPolicy::LinkAndPersist);
}

ThroughputResult
runThroughput(DsKind kind, FlushPolicy policy, PersistMode mode,
              double update_pct, unsigned threads, Cycle budget,
              std::size_t flit_entries, std::uint64_t seed)
{
    // Each seed shifts every stream by a large odd constant so streams
    // from different seeds never collide; seed 0 keeps the historical
    // Rng(7) / Rng(100 + t) values exactly.
    const std::uint64_t seed_base = seed * 0x9e3779b97f4a7c15ULL;
    MemSim mem(PersistCtx::machineFor(policy));
    PersistConfig pcfg;
    pcfg.policy = policy;
    pcfg.mode = mode;
    pcfg.flit_table_entries = flit_entries;
    PersistCtx ctx(mem, pcfg);
    auto set = makeSet(kind, ctx);

    // Prefill to ~50% occupancy; thread 0's clock is re-based afterwards
    // so setup cost is excluded from the measurement.
    const std::uint64_t range = keyRange(kind);
    {
        Rng rng(7 + seed_base);
        for (std::uint64_t i = 0; i < range / 2; ++i)
            set->insert(0, 1 + rng.below(range));
    }
    const Cycle start0 = mem.clock(0);

    std::vector<std::uint64_t> ops(threads, 0);
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            Rng rng(100 + seed_base + t);
            const Cycle base = mem.clock(t);
            while (mem.clock(t) - base < budget) {
                const std::uint64_t key = 1 + rng.below(range);
                if (rng.uniform() * 100.0 < update_pct) {
                    if (rng.chance(0.5))
                        set->insert(t, key);
                    else
                        set->remove(t, key);
                } else {
                    set->contains(t, key);
                }
                ++ops[t];
            }
        });
    }
    for (auto &w : workers)
        w.join();

    std::uint64_t total_ops = 0;
    Cycle max_clock = 0;
    for (unsigned t = 0; t < threads; ++t) {
        total_ops += ops[t];
        const Cycle c = t == 0 ? mem.clock(0) - start0 : mem.clock(t);
        max_clock = std::max(max_clock, c);
    }

    ThroughputResult r;
    r.ops = total_ops;
    r.mops_per_mcycle =
        static_cast<double>(total_ops) * 1e6 /
        static_cast<double>(std::max<Cycle>(max_clock, 1));
    r.flushes = mem.flushesIssued();
    r.skipped_l1 = mem.flushesSkippedL1();
    return r;
}

} // namespace skipit::workloads
