#include "mem_sim.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace skipit {

MemSim::MemSim(const NvmConfig &cfg)
    : cfg_(cfg),
      l1_(cfg.cores,
          std::vector<L1Line>(static_cast<std::size_t>(cfg.l1_sets) *
                              cfg.l1_ways)),
      l2_(static_cast<std::size_t>(cfg.l2_sets) * cfg.l2_ways),
      clocks_(cfg.cores, 0)
{
    SKIPIT_ASSERT(cfg.cores >= 1 && cfg.cores <= 32, "bad core count");
}

Cycle
MemSim::clock(unsigned tid) const
{
    std::lock_guard<std::mutex> g(mu_);
    return clocks_.at(tid);
}

void
MemSim::reset()
{
    std::lock_guard<std::mutex> g(mu_);
    for (auto &l1 : l1_)
        std::fill(l1.begin(), l1.end(), L1Line{});
    std::fill(l2_.begin(), l2_.end(), L2Line{});
    l3_.clear();
}

MemSim::L1Line *
MemSim::findL1(unsigned core, Addr line)
{
    const unsigned set =
        static_cast<unsigned>((line >> line_shift) % cfg_.l1_sets);
    L1Line *base = &l1_[core][static_cast<std::size_t>(set) * cfg_.l1_ways];
    for (unsigned w = 0; w < cfg_.l1_ways; ++w) {
        if (base[w].valid && base[w].line == line)
            return &base[w];
    }
    return nullptr;
}

const MemSim::L1Line *
MemSim::findL1(unsigned core, Addr line) const
{
    return const_cast<MemSim *>(this)->findL1(core, line);
}

MemSim::L2Line *
MemSim::findL2(Addr line)
{
    const unsigned set =
        static_cast<unsigned>((line >> line_shift) % cfg_.l2_sets);
    L2Line *base = &l2_[static_cast<std::size_t>(set) * cfg_.l2_ways];
    for (unsigned w = 0; w < cfg_.l2_ways; ++w) {
        if (base[w].valid && base[w].line == line)
            return &base[w];
    }
    return nullptr;
}

const MemSim::L2Line *
MemSim::findL2(Addr line) const
{
    return const_cast<MemSim *>(this)->findL2(line);
}

void
MemSim::touchL1(unsigned, L1Line &l)
{
    l.lru = ++stamp_;
}

void
MemSim::touchL2(L2Line &l)
{
    l.lru = ++stamp_;
}

Cycle
MemSim::fillL2(Addr line, bool dirty)
{
    Cycle extra = 0;
    if (L2Line *hit = findL2(line)) {
        hit->dirty = hit->dirty || dirty;
        touchL2(*hit);
        return extra;
    }
    const unsigned set =
        static_cast<unsigned>((line >> line_shift) % cfg_.l2_sets);
    L2Line *base = &l2_[static_cast<std::size_t>(set) * cfg_.l2_ways];
    L2Line *victim = &base[0];
    for (unsigned w = 0; w < cfg_.l2_ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    if (victim->valid) {
        // Inclusive back-invalidation of every L1 copy of the victim.
        for (unsigned c = 0; c < cfg_.cores; ++c) {
            if (L1Line *l = findL1(c, victim->line)) {
                if (l->dirty)
                    ++n_dram_write_;
                l->valid = false;
            }
        }
        if (victim->dirty)
            ++n_dram_write_;
    }
    victim->valid = true;
    victim->line = line;
    victim->dirty = dirty;
    touchL2(*victim);
    return extra;
}

Cycle
MemSim::fillL1(unsigned core, Addr line, bool dirty, bool skip)
{
    Cycle extra = 0;
    const unsigned set =
        static_cast<unsigned>((line >> line_shift) % cfg_.l1_sets);
    L1Line *base = &l1_[core][static_cast<std::size_t>(set) * cfg_.l1_ways];
    L1Line *victim = &base[0];
    for (unsigned w = 0; w < cfg_.l1_ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    if (victim->valid && victim->dirty) {
        // Dirty eviction releases to L2 (which turns dirty).
        extra += fillL2(victim->line, true);
    }
    victim->valid = true;
    victim->line = line;
    victim->dirty = dirty;
    victim->skip = cfg_.skip_it && skip;
    touchL1(core, *victim);
    return extra;
}

Cycle
MemSim::load(unsigned tid, Addr addr)
{
    std::lock_guard<std::mutex> g(mu_);
    const Addr line = lineAlign(addr);
    Cycle cost = 0;

    if (L1Line *hit = findL1(tid, line)) {
        touchL1(tid, *hit);
        cost = cfg_.c_l1_hit;
        clocks_[tid] += cost;
        return cost;
    }

    // Remote dirty copy: cache-to-cache transfer via L2; the remote core
    // keeps a clean shared copy whose data is now dirty in L2 (skip = 0).
    bool filled = false;
    for (unsigned c = 0; c < cfg_.cores && !filled; ++c) {
        if (c == tid)
            continue;
        if (L1Line *r = findL1(c, line)) {
            if (r->dirty) {
                r->dirty = false;
                r->skip = false;
                fillL2(line, true);
                cost = cfg_.c_remote_transfer;
                filled = true;
            }
        }
    }

    if (!filled) {
        if (findL2(line) != nullptr) {
            cost = cfg_.c_l2_hit;
        } else if (cfg_.l3_sets > 0 && l3_.count(line >> line_shift) > 0) {
            fillL2(line, false);
            cost = cfg_.c_l3_hit;
        } else {
            fillL2(line, false);
            if (cfg_.l3_sets > 0)
                l3Insert(line);
            cost = cfg_.c_mem;
        }
    }

    const L2Line *l2 = findL2(line);
    SKIPIT_ASSERT(l2 != nullptr, "fill did not install into L2");
    // GrantData vs GrantDataDirty (§6): skip reflects L2 cleanliness.
    fillL1(tid, line, false, !l2->dirty);
    clocks_[tid] += cost;
    return cost;
}

Cycle
MemSim::store(unsigned tid, Addr addr)
{
    std::lock_guard<std::mutex> g(mu_);
    const Addr line = lineAlign(addr);
    Cycle cost = 0;

    // Invalidate every remote copy (MESI upgrade).
    bool had_remote = false;
    bool remote_dirty = false;
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        if (c == tid)
            continue;
        if (L1Line *r = findL1(c, line)) {
            had_remote = true;
            remote_dirty = remote_dirty || r->dirty;
            r->valid = false;
        }
    }
    if (remote_dirty)
        fillL2(line, true);

    if (L1Line *hit = findL1(tid, line)) {
        touchL1(tid, *hit);
        hit->dirty = true;
        cost = had_remote ? cfg_.c_remote_transfer : cfg_.c_l1_hit;
        clocks_[tid] += cost;
        return cost;
    }

    if (had_remote) {
        cost = cfg_.c_remote_transfer;
        fillL2(line, remote_dirty);
    } else if (findL2(line) != nullptr) {
        cost = cfg_.c_l2_hit;
    } else if (cfg_.l3_sets > 0 && l3_.count(line >> line_shift) > 0) {
        fillL2(line, false);
        cost = cfg_.c_l3_hit;
    } else {
        fillL2(line, false);
        if (cfg_.l3_sets > 0)
            l3Insert(line);
        cost = cfg_.c_mem;
    }

    const L2Line *l2 = findL2(line);
    SKIPIT_ASSERT(l2 != nullptr, "store fill did not install into L2");
    fillL1(tid, line, true, !l2->dirty);
    clocks_[tid] += cost;
    return cost;
}

Cycle
MemSim::writeback(unsigned tid, Addr addr, bool invalidate,
                  WbOutcome *outcome)
{
    std::lock_guard<std::mutex> g(mu_);
    const Addr line = lineAlign(addr);
    Cycle cost = 0;
    WbOutcome out;

    L1Line *own = findL1(tid, line);

    // Skip It (§6.1): hit, clean, skip set -> drop before enqueue.
    if (cfg_.skip_it && own != nullptr && !own->dirty && own->skip) {
        out = WbOutcome::SkippedL1;
        cost = cfg_.c_skip_drop;
        ++n_skip_l1_;
        if (invalidate) {
            // Even a dropped CBO.FLUSH... is dropped entirely: the line
            // stays resident (the drop happens before any action, §6.1).
        }
        clocks_[tid] += cost;
        if (outcome != nullptr)
            *outcome = out;
        return cost;
    }

    ++n_flush_;

    // Gather dirtiness across the hierarchy; apply permission changes.
    bool dirty_anywhere = false;
    if (own != nullptr) {
        dirty_anywhere = dirty_anywhere || own->dirty;
        if (invalidate) {
            own->valid = false;
        } else {
            own->dirty = false;
            own->skip = cfg_.skip_it; // persisted once this completes
        }
    }
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        if (c == tid)
            continue;
        if (L1Line *r = findL1(c, line)) {
            dirty_anywhere = dirty_anywhere || r->dirty;
            if (invalidate) {
                r->valid = false;
            } else if (r->dirty) {
                r->dirty = false;
                r->skip = cfg_.skip_it;
            }
        }
    }
    if (L2Line *l2 = findL2(line)) {
        dirty_anywhere = dirty_anywhere || l2->dirty;
        if (invalidate)
            l2->valid = false;
        else
            l2->dirty = false;
    }

    if (dirty_anywhere) {
        out = WbOutcome::Persisted;
        cost = cfg_.c_flush;
        if (cfg_.l3_sets > 0)
            cost += cfg_.c_l3_extra_flush; // one more level to traverse
        ++n_dram_write_;
    } else {
        // The LLC's trivial dirty-bit check (§5.5) spares the DRAM write
        // but the request still travelled to the L2 and back — and, with
        // a deeper hierarchy, the redundant request may have to descend
        // further before the dirty-bit check can kill it.
        out = WbOutcome::SkippedLlc;
        cost = cfg_.c_flush_l2_only;
        if (cfg_.l3_sets > 0)
            cost += cfg_.c_l3_extra_flush / 2;
        ++n_skip_llc_;
    }

    clocks_[tid] += cost;
    if (outcome != nullptr)
        *outcome = out;
    return cost;
}

void
MemSim::l3Insert(Addr line)
{
    // A coarse set-capacity model: the L3 tracks which lines it holds,
    // bounded to sets*ways entries with random-ish (hash-order) eviction.
    const std::size_t cap =
        static_cast<std::size_t>(cfg_.l3_sets) * cfg_.l3_ways;
    if (l3_.size() >= cap)
        l3_.erase(l3_.begin());
    l3_.insert(line >> line_shift);
}

Cycle
MemSim::fence(unsigned tid)
{
    std::lock_guard<std::mutex> g(mu_);
    clocks_[tid] += cfg_.c_fence;
    return cfg_.c_fence;
}

Cycle
MemSim::amo(unsigned tid, Addr addr)
{
    const Cycle base = store(tid, addr);
    std::lock_guard<std::mutex> g(mu_);
    clocks_[tid] += cfg_.c_amo;
    return base + cfg_.c_amo;
}

Cycle
MemSim::cpuWork(unsigned tid, Cycle n)
{
    std::lock_guard<std::mutex> g(mu_);
    clocks_[tid] += n;
    return n;
}

bool
MemSim::l1Holds(unsigned tid, Addr addr) const
{
    std::lock_guard<std::mutex> g(mu_);
    return findL1(tid, lineAlign(addr)) != nullptr;
}

bool
MemSim::l1Dirty(unsigned tid, Addr addr) const
{
    std::lock_guard<std::mutex> g(mu_);
    const L1Line *l = findL1(tid, lineAlign(addr));
    return l != nullptr && l->dirty;
}

bool
MemSim::l1Skip(unsigned tid, Addr addr) const
{
    std::lock_guard<std::mutex> g(mu_);
    const L1Line *l = findL1(tid, lineAlign(addr));
    return l != nullptr && l->skip;
}

bool
MemSim::l2Holds(Addr addr) const
{
    std::lock_guard<std::mutex> g(mu_);
    return findL2(lineAlign(addr)) != nullptr;
}

bool
MemSim::l2Dirty(Addr addr) const
{
    std::lock_guard<std::mutex> g(mu_);
    const L2Line *l = findL2(lineAlign(addr));
    return l != nullptr && l->dirty;
}

} // namespace skipit
