/**
 * @file
 * The persistence instrumentation layer for lock-free data structures:
 * the three persistence algorithms and the four redundant-flush-avoidance
 * schemes of §7.4, all expressed over MemSim words.
 *
 * Persistence modes (how many accesses are instrumented):
 *  - NonPersistent: no writebacks at all (the figures' dark dotted line).
 *  - Automatic: every shared read/write is persisted (Izraelevitz-style
 *    transform [36]): reads ensure the value they saw is persisted,
 *    writes flush + fence.
 *  - NvTraverse [27]: traversal reads are plain; only the critical
 *    (destination) reads and all writes persist.
 *  - Manual [23]: hand-placed — only linkage writes persist.
 *
 * Flush-avoidance policies (how an instrumented access avoids redundant
 * writebacks):
 *  - Plain: always issue the writeback.
 *  - FlitAdjacent [73]: a counter lives next to every word (doubling the
 *    data footprint; modelled by spreading each 64 B line over 128 B).
 *    Stores bracket the flush with counter ++/--; loads flush only when
 *    the counter is non-zero.
 *  - FlitHashTable [73]: same counters, but in a global table whose
 *    accesses pollute and contend for the small simulated cache; the
 *    table size is Fig 16's sensitivity parameter.
 *  - LinkAndPersist [23]: bit 63 of the word marks "not yet persisted";
 *    writers set it, flush, then clear; readers seeing the mark help.
 *    Every access pays a masking charge, and the technique cannot be
 *    applied to structures that use spare pointer bits (the BST).
 *  - SkipIt: no software bookkeeping whatsoever — the instrumented access
 *    simply issues CBO.FLUSH and the hardware skip bit drops redundant
 *    ones (§6).
 */

#ifndef SKIPIT_NVM_PERSIST_HH
#define SKIPIT_NVM_PERSIST_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem_sim.hh"

namespace skipit {

/** Which redundant-writeback avoidance scheme is active. */
enum class FlushPolicy
{
    Plain,
    FlitAdjacent,
    FlitHashTable,
    LinkAndPersist,
    SkipIt,
};

/** How much of the algorithm is instrumented for persistence. */
enum class PersistMode
{
    NonPersistent,
    Automatic,
    NvTraverse,
    Manual,
};

const char *toString(FlushPolicy p);
const char *toString(PersistMode m);

/** Configuration of one PersistCtx instance. */
struct PersistConfig
{
    FlushPolicy policy = FlushPolicy::Plain;
    PersistMode mode = PersistMode::Automatic;
    /** FliT hash table size in entries (Fig 16 sweeps this). */
    std::size_t flit_table_entries = std::size_t{1} << 16;
    /** Writebacks use CBO.FLUSH (invalidating), as §7.4 does "to maximize
     *  the penalty of not identifying a redundant writeback". */
    bool invalidating = true;
};

/**
 * The word-level API the data structures program against. All methods are
 * thread-safe; `tid` selects the simulated core and clock.
 */
class PersistCtx
{
  public:
    PersistCtx(MemSim &mem, const PersistConfig &cfg);

    MemSim &mem() { return mem_; }
    const PersistConfig &config() const { return cfg_; }

    /**
     * The machine a policy runs on: only the Skip It policy gets Skip It
     * hardware; every software technique is evaluated on the baseline
     * SoC, exactly as §7.4 compares them.
     */
    static NvmConfig
    machineFor(FlushPolicy policy, NvmConfig base = NvmConfig{})
    {
        base.skip_it = policy == FlushPolicy::SkipIt;
        return base;
    }

    /** Link-and-persist's dirty mark (bit 63, §7.4). */
    static constexpr std::uint64_t lp_mark = std::uint64_t{1} << 63;

    /// @name Data-structure word operations
    /// @{
    /** Traversal read: instrumented only in Automatic mode. */
    std::uint64_t readTrav(unsigned tid, const std::atomic<std::uint64_t> &w);

    /** Critical read: instrumented in Automatic and NvTraverse modes. */
    std::uint64_t read(unsigned tid, const std::atomic<std::uint64_t> &w);

    /** Persisted write (linkage update). */
    void write(unsigned tid, std::atomic<std::uint64_t> &w,
               std::uint64_t v);

    /**
     * Persisted compare-and-swap. On failure @p expected is updated to
     * the (mark-stripped) current value, like std::atomic.
     */
    bool cas(unsigned tid, std::atomic<std::uint64_t> &w,
             std::uint64_t &expected, std::uint64_t desired);

    /** Uninstrumented-but-timed read (node init / immutable fields). */
    std::uint64_t readPlain(unsigned tid,
                            const std::atomic<std::uint64_t> &w);

    /** Uninstrumented-but-timed write (pre-publication node init). */
    void writePlain(unsigned tid, std::atomic<std::uint64_t> &w,
                    std::uint64_t v);

    /**
     * Persist a freshly initialized node's words (one flush per distinct
     * line, no fence — the publishing CAS's fence orders it). Durably
     * correct insertion requires this before publication: a crash after
     * the publish but before the node contents reached memory would
     * otherwise resurrect a node full of zeroes.
     */
    void persistInitRange(unsigned tid,
                          const std::atomic<std::uint64_t> *first,
                          std::size_t n_words);

    /** End-of-operation persist fence (psync). */
    void opEnd(unsigned tid);
    /// @}

    /// @name Crash simulation (shadow NVMM)
    /// @{
    /**
     * Power failure: volatile cache state vanishes and every word this
     * context ever touched reverts to its last *persisted* value (fresh
     * NVMM reads as zero). Clocks/stats survive.
     *
     * Single-threaded use ONLY: no operation may be in flight on any
     * thread (asserted — reverting words under a racing CAS would
     * corrupt both the structure and the shadow). A mid-operation crash
     * is simulated by armCrashAfter(): the unwound CrashInjected
     * exception leaves zero operations in flight, after which crash()
     * is legal again.
     */
    void crash();

    /** Thrown out of the armed operation by armCrashAfter(). */
    struct CrashInjected
    {
    };

    /**
     * Arm a mid-operation power failure: the @p n_writebacks -th
     * subsequent writeback throws CrashInjected *instead of*
     * persisting, leaving the shadow NVMM exactly as a power failure at
     * that point would. Sweeping n over an operation's writebacks
     * visits every persist boundary — the crash-point axis of the
     * tests/ds recovery tests. 0 disarms.
     */
    void armCrashAfter(std::uint64_t n_writebacks);

    /**
     * Post-crash recovery scan: every registered word's address and its
     * durable (last-persisted) value, sorted by address. This is what a
     * recovery procedure would find in NVMM — tests/ds uses it to prove
     * no acked insert is lost and no zero-filled zombie node is
     * reachable after crash().
     */
    std::vector<std::pair<Addr, std::uint64_t>> recoverPersisted() const;
    /// @}

  private:
    MemSim &mem_;
    PersistConfig cfg_;

    /** Functional FliT counters (exact for the table policy; a large
     *  direct-mapped array with a mixing hash for the adjacent policy —
     *  collisions are <1% at our footprints and only cause extra
     *  conservative flushes). */
    std::vector<std::atomic<std::int32_t>> flit_counters_;
    std::size_t flit_mask_ = 0;

    static Addr wordAddr(const std::atomic<std::uint64_t> &w);
    /** FliT-adjacent spreads each line over two (footprint doubling). */
    Addr dataAddr(Addr a) const;
    /** Simulated address of the FliT counter guarding @p a. */
    Addr counterAddr(Addr a) const;
    std::atomic<std::int32_t> &counter(Addr a);

    bool traversalInstrumented() const
    {
        return cfg_.mode == PersistMode::Automatic;
    }
    bool criticalReadInstrumented() const
    {
        return cfg_.mode == PersistMode::Automatic ||
               cfg_.mode == PersistMode::NvTraverse;
    }
    bool writesInstrumented() const
    {
        return cfg_.mode != PersistMode::NonPersistent;
    }

    /** Shadow NVMM: last persisted value of every registered word. */
    struct ShadowEntry
    {
        std::atomic<std::uint64_t> *word = nullptr;
        std::uint64_t persisted = 0; //!< fresh NVMM reads as zero
    };
    std::unordered_map<Addr, ShadowEntry> shadow_;
    /** Registered words grouped by (original) line, for O(line) snapshots. */
    std::unordered_map<Addr, std::vector<Addr>> shadow_lines_;
    mutable std::mutex shadow_mu_;

    /** In-flight instrumented operations (crash() contract guard). */
    std::atomic<int> active_ops_{0};
    /** Writebacks until the armed CrashInjected fires; 0 = disarmed. */
    std::atomic<std::int64_t> crash_after_{0};

    /** RAII active-operation marker (exception-safe by construction:
     *  CrashInjected unwinds it, so crash() is legal right after). */
    class OpGuard
    {
      public:
        explicit OpGuard(std::atomic<int> &c) : c_(c) { ++c_; }
        ~OpGuard() { --c_; }
        OpGuard(const OpGuard &) = delete;
        OpGuard &operator=(const OpGuard &) = delete;

      private:
        std::atomic<int> &c_;
    };

    /** Record @p w as NVMM-resident (idempotent). */
    void registerWord(std::atomic<std::uint64_t> &w);
    /** Writeback wrapper: flushes and snapshots covered shadow words. */
    Cycle doWriteback(unsigned tid, Addr orig_addr);

    std::uint64_t readImpl(unsigned tid,
                           const std::atomic<std::uint64_t> &w,
                           bool instrumented);
    /** Persist the value that was just read at @p a, per policy. */
    void ensureReadPersisted(unsigned tid, Addr a,
                             const std::atomic<std::uint64_t> &w,
                             std::uint64_t observed);
    void persistWrite(unsigned tid, Addr a);
};

} // namespace skipit

#endif // SKIPIT_NVM_PERSIST_HH
