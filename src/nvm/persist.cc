#include "persist.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace skipit {

namespace {

/** Simulated virtual region holding the FliT hash table. */
constexpr Addr flit_table_base = 0x7f0000000000ULL;

/** 64-bit mixer (splitmix64 finalizer) for counter indexing. */
std::uint64_t
mix(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Direct-mapped functional counter array size for FliT-adjacent. */
constexpr std::size_t adjacent_counters = std::size_t{1} << 21;

} // namespace

const char *
toString(FlushPolicy p)
{
    switch (p) {
      case FlushPolicy::Plain:
        return "plain";
      case FlushPolicy::FlitAdjacent:
        return "flit-adjacent";
      case FlushPolicy::FlitHashTable:
        return "flit-hashtable";
      case FlushPolicy::LinkAndPersist:
        return "link-and-persist";
      default:
        return "skip-it";
    }
}

const char *
toString(PersistMode m)
{
    switch (m) {
      case PersistMode::NonPersistent:
        return "non-persistent";
      case PersistMode::Automatic:
        return "automatic";
      case PersistMode::NvTraverse:
        return "nvtraverse";
      default:
        return "manual";
    }
}

PersistCtx::PersistCtx(MemSim &mem, const PersistConfig &cfg)
    : mem_(mem), cfg_(cfg)
{
    if (cfg_.policy == FlushPolicy::FlitAdjacent) {
        flit_counters_ = std::vector<std::atomic<std::int32_t>>(
            adjacent_counters);
        flit_mask_ = adjacent_counters - 1;
    } else if (cfg_.policy == FlushPolicy::FlitHashTable) {
        SKIPIT_ASSERT(cfg_.flit_table_entries > 0,
                      "FliT table needs entries");
        flit_counters_ = std::vector<std::atomic<std::int32_t>>(
            cfg_.flit_table_entries);
        flit_mask_ = 0; // modulo indexing, not power-of-two masking
    }
}

Addr
PersistCtx::wordAddr(const std::atomic<std::uint64_t> &w)
{
    return reinterpret_cast<Addr>(&w);
}

Addr
PersistCtx::dataAddr(Addr a) const
{
    if (cfg_.policy == FlushPolicy::FlitAdjacent) {
        // Interleaving a counter next to every word doubles the
        // footprint: each original 64 B line spreads over 128 B, word i
        // moving to offset 16*i (its counter at 16*i + 8). Words 0-3 stay
        // in the first spread line, words 4-7 spill into the second —
        // exactly the locality loss of FliT-adjacent's fattened layout.
        return ((a >> line_shift) << (line_shift + 1)) |
               (((a >> 3) & 7) << 4) | (a & 7);
    }
    return a;
}

Addr
PersistCtx::counterAddr(Addr a) const
{
    if (cfg_.policy == FlushPolicy::FlitAdjacent) {
        // The counter sits right next to the word, in the same (spread)
        // line: a separate access, but almost always an L1 hit.
        return (dataAddr(a) & ~Addr{15}) + 8;
    }
    SKIPIT_ASSERT(cfg_.policy == FlushPolicy::FlitHashTable,
                  "counterAddr without a FliT policy");
    const std::size_t idx = mix(a >> 3) % cfg_.flit_table_entries;
    return flit_table_base + static_cast<Addr>(idx) * 8;
}

std::atomic<std::int32_t> &
PersistCtx::counter(Addr a)
{
    if (cfg_.policy == FlushPolicy::FlitAdjacent)
        return flit_counters_[mix(a >> 3) & flit_mask_];
    return flit_counters_[mix(a >> 3) % cfg_.flit_table_entries];
}

void
PersistCtx::registerWord(std::atomic<std::uint64_t> &w)
{
    const Addr a = wordAddr(w);
    std::lock_guard<std::mutex> g(shadow_mu_);
    auto [it, inserted] = shadow_.try_emplace(a);
    if (inserted) {
        it->second.word = &w;
        // Whatever the word holds at first registration counts as its
        // initial durable state: structure construction happens before
        // the crash epoch (and fresh node words are zero, C++20 atomics
        // value-initialize).
        it->second.persisted = w.load(std::memory_order_acquire);
        shadow_lines_[lineAlign(a)].push_back(a);
    }
}

Cycle
PersistCtx::doWriteback(unsigned tid, Addr orig_addr)
{
    // Armed mid-operation crash: the power fails *before* this
    // writeback takes effect, so the shadow keeps its pre-writeback
    // durable values. Single-threaded by the injection tests' design.
    const std::int64_t armed =
        crash_after_.load(std::memory_order_relaxed);
    if (armed > 0) {
        crash_after_.store(armed - 1, std::memory_order_relaxed);
        if (armed == 1)
            throw CrashInjected{};
    }

    WbOutcome out;
    const Cycle c =
        mem_.writeback(tid, dataAddr(orig_addr), cfg_.invalidating, &out);
    // Snapshot the words this writeback just made durable. A drop at the
    // L1 skip bit means the line was already persisted and the shadows
    // are current.
    if (out != WbOutcome::SkippedL1) {
        std::lock_guard<std::mutex> g(shadow_mu_);
        auto it = shadow_lines_.find(lineAlign(orig_addr));
        if (it != shadow_lines_.end()) {
            for (const Addr a : it->second) {
                // With FliT-adjacent the original line spreads over two
                // simulated lines; only the covered half persists.
                if (!sameLine(dataAddr(a), dataAddr(orig_addr)))
                    continue;
                ShadowEntry &e = shadow_[a];
                e.persisted =
                    e.word->load(std::memory_order_acquire);
            }
        }
    }
    return c;
}

void
PersistCtx::persistInitRange(unsigned tid,
                             const std::atomic<std::uint64_t> *first,
                             std::size_t n_words)
{
    OpGuard op(active_ops_);
    for (std::size_t i = 0; i < n_words; ++i) {
        registerWord(const_cast<std::atomic<std::uint64_t> &>(first[i]));
    }
    if (!writesInstrumented())
        return;
    Addr prev_line = ~Addr{0};
    for (std::size_t i = 0; i < n_words; ++i) {
        const Addr a = wordAddr(first[i]);
        const Addr spread_line = lineAlign(dataAddr(a));
        if (spread_line != prev_line) {
            doWriteback(tid, a);
            prev_line = spread_line;
        }
    }
}

void
PersistCtx::crash()
{
    // Reverting words under a racing operation would corrupt both the
    // structure and the shadow: the crash epoch must be quiescent.
    const int in_flight = active_ops_.load(std::memory_order_acquire);
    SKIPIT_ASSERT(in_flight == 0,
                  "PersistCtx::crash() requires quiescence: ", in_flight,
                  " operation(s) still in flight");
    crash_after_.store(0, std::memory_order_relaxed);
    mem_.reset();
    std::lock_guard<std::mutex> g(shadow_mu_);
    for (auto &[a, e] : shadow_) {
        (void)a;
        e.word->store(e.persisted, std::memory_order_release);
    }
    // FliT counters are plain volatile memory; quiesced they are zero.
    for (auto &c : flit_counters_)
        c.store(0, std::memory_order_relaxed);
}

void
PersistCtx::armCrashAfter(std::uint64_t n_writebacks)
{
    crash_after_.store(static_cast<std::int64_t>(n_writebacks),
                       std::memory_order_relaxed);
}

std::vector<std::pair<Addr, std::uint64_t>>
PersistCtx::recoverPersisted() const
{
    std::lock_guard<std::mutex> g(shadow_mu_);
    std::vector<std::pair<Addr, std::uint64_t>> out;
    out.reserve(shadow_.size());
    for (const auto &[a, e] : shadow_)
        out.emplace_back(a, e.persisted);
    std::sort(out.begin(), out.end());
    return out;
}

std::uint64_t
PersistCtx::readPlain(unsigned tid, const std::atomic<std::uint64_t> &w)
{
    OpGuard op(active_ops_);
    const Addr a = wordAddr(w);
    mem_.load(tid, dataAddr(a));
    std::uint64_t v = w.load(std::memory_order_acquire);
    if (cfg_.policy == FlushPolicy::LinkAndPersist) {
        // Every consumer of a word must strip the persistence mark.
        mem_.cpuWork(tid, 1);
        v &= ~lp_mark;
    }
    return v;
}

void
PersistCtx::writePlain(unsigned tid, std::atomic<std::uint64_t> &w,
                       std::uint64_t v)
{
    OpGuard op(active_ops_);
    const Addr a = wordAddr(w);
    registerWord(w);
    mem_.store(tid, dataAddr(a));
    w.store(v, std::memory_order_release);
}

void
PersistCtx::ensureReadPersisted(unsigned tid, Addr a,
                                const std::atomic<std::uint64_t> &w,
                                std::uint64_t observed)
{
    switch (cfg_.policy) {
      case FlushPolicy::Plain:
        // Unconditional writeback + fence on every instrumented read.
        doWriteback(tid, a);
        mem_.fence(tid);
        return;

      case FlushPolicy::FlitAdjacent:
      case FlushPolicy::FlitHashTable:
        // FLIT_LOAD: flush only if the counter says a store is in flight.
        mem_.load(tid, counterAddr(a));
        if (counter(a).load(std::memory_order_acquire) != 0) {
            doWriteback(tid, a);
            mem_.fence(tid);
        }
        return;

      case FlushPolicy::LinkAndPersist: {
        // Readers seeing the mark help: flush, fence, clear.
        if ((observed & lp_mark) != 0) {
            doWriteback(tid, a);
            mem_.fence(tid);
            auto &word = const_cast<std::atomic<std::uint64_t> &>(w);
            std::uint64_t cur = observed;
            word.compare_exchange_strong(cur, observed & ~lp_mark);
            mem_.store(tid, dataAddr(a));
        }
        return;
      }

      case FlushPolicy::SkipIt:
        // No software check at all: issue the writeback and let the
        // hardware skip bit drop it when redundant (§6).
        doWriteback(tid, a);
        mem_.fence(tid);
        return;
    }
}

std::uint64_t
PersistCtx::readImpl(unsigned tid, const std::atomic<std::uint64_t> &w,
                     bool instrumented)
{
    OpGuard op(active_ops_);
    const Addr a = wordAddr(w);
    mem_.load(tid, dataAddr(a));
    std::uint64_t v = w.load(std::memory_order_acquire);

    if (cfg_.policy == FlushPolicy::LinkAndPersist)
        mem_.cpuWork(tid, 1); // mandatory masking

    if (instrumented)
        ensureReadPersisted(tid, a, w, v);

    if (cfg_.policy == FlushPolicy::LinkAndPersist)
        v &= ~lp_mark;
    return v;
}

std::uint64_t
PersistCtx::readTrav(unsigned tid, const std::atomic<std::uint64_t> &w)
{
    return readImpl(tid, w, traversalInstrumented());
}

std::uint64_t
PersistCtx::read(unsigned tid, const std::atomic<std::uint64_t> &w)
{
    return readImpl(tid, w, criticalReadInstrumented());
}

void
PersistCtx::persistWrite(unsigned tid, Addr a)
{
    doWriteback(tid, a);
    mem_.fence(tid);
}

void
PersistCtx::write(unsigned tid, std::atomic<std::uint64_t> &w,
                  std::uint64_t v)
{
    OpGuard op(active_ops_);
    const Addr a = wordAddr(w);
    registerWord(w);

    if (!writesInstrumented()) {
        mem_.store(tid, dataAddr(a));
        w.store(v, std::memory_order_release);
        return;
    }

    switch (cfg_.policy) {
      case FlushPolicy::Plain:
      case FlushPolicy::SkipIt:
        mem_.store(tid, dataAddr(a));
        w.store(v, std::memory_order_release);
        persistWrite(tid, a);
        return;

      case FlushPolicy::FlitAdjacent:
      case FlushPolicy::FlitHashTable:
        // FLIT_STORE: counter++, store, flush, fence, counter--.
        counter(a).fetch_add(1, std::memory_order_acq_rel);
        mem_.amo(tid, counterAddr(a));
        mem_.store(tid, dataAddr(a));
        w.store(v, std::memory_order_release);
        persistWrite(tid, a);
        counter(a).fetch_add(-1, std::memory_order_acq_rel);
        mem_.amo(tid, counterAddr(a));
        return;

      case FlushPolicy::LinkAndPersist: {
        // Store with the mark set, persist, then clear the mark.
        mem_.store(tid, dataAddr(a));
        w.store(v | lp_mark, std::memory_order_release);
        persistWrite(tid, a);
        std::uint64_t cur = v | lp_mark;
        w.compare_exchange_strong(cur, v);
        mem_.store(tid, dataAddr(a));
        return;
      }
    }
}

bool
PersistCtx::cas(unsigned tid, std::atomic<std::uint64_t> &w,
                std::uint64_t &expected, std::uint64_t desired)
{
    OpGuard op(active_ops_);
    const Addr a = wordAddr(w);
    registerWord(w);

    if (cfg_.policy != FlushPolicy::LinkAndPersist) {
        std::uint64_t exp = expected;
        const bool ok = w.compare_exchange_strong(
            exp, desired, std::memory_order_acq_rel);
        if (!ok) {
            mem_.load(tid, dataAddr(a));
            expected = exp;
            return false;
        }
        mem_.store(tid, dataAddr(a));
        if (writesInstrumented()) {
            if (cfg_.policy == FlushPolicy::FlitAdjacent ||
                cfg_.policy == FlushPolicy::FlitHashTable) {
                counter(a).fetch_add(1, std::memory_order_acq_rel);
                mem_.amo(tid, counterAddr(a));
                persistWrite(tid, a);
                counter(a).fetch_add(-1, std::memory_order_acq_rel);
                mem_.amo(tid, counterAddr(a));
            } else {
                persistWrite(tid, a);
            }
        }
        return true;
    }

    // Link-and-persist CAS: the word may carry the mark; help persist it,
    // then install the new value marked, persist, and clear.
    while (true) {
        std::uint64_t cur = w.load(std::memory_order_acquire);
        mem_.load(tid, dataAddr(a));
        mem_.cpuWork(tid, 1);
        if ((cur & ~lp_mark) != expected) {
            expected = cur & ~lp_mark;
            return false;
        }
        if (writesInstrumented() && (cur & lp_mark) != 0) {
            // Help persist the previous update before replacing it.
            doWriteback(tid, a);
            mem_.fence(tid);
            std::uint64_t m = cur;
            w.compare_exchange_strong(m, cur & ~lp_mark);
            mem_.store(tid, dataAddr(a));
            continue;
        }
        const std::uint64_t next =
            writesInstrumented() ? (desired | lp_mark) : desired;
        std::uint64_t exp_raw = cur;
        if (w.compare_exchange_strong(exp_raw, next,
                                      std::memory_order_acq_rel)) {
            mem_.store(tid, dataAddr(a));
            if (writesInstrumented()) {
                persistWrite(tid, a);
                std::uint64_t m = next;
                w.compare_exchange_strong(m, desired);
                mem_.store(tid, dataAddr(a));
            }
            return true;
        }
        // Lost the race; loop and re-evaluate.
    }
}

void
PersistCtx::opEnd(unsigned tid)
{
    OpGuard op(active_ops_);
    if (cfg_.mode != PersistMode::NonPersistent)
        mem_.fence(tid);
}

} // namespace skipit
