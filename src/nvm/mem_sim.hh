/**
 * @file
 * Execution-driven model of the dual-core memory hierarchy used by the
 * persistent data-structure evaluation (Figures 14-16, §7.4).
 *
 * The paper runs real lock-free data structures on the FPGA-synthesized
 * SoC. We run the same data structures natively, but route every
 * shared-memory access through this functional-plus-timing model of the
 * 2 x 32 KiB L1 + 512 KiB L2 hierarchy: per-line presence/dirty/skip
 * state, MESI-style invalidations between the cores, capacity evictions,
 * and per-thread cycle clocks. Throughput is measured in simulated
 * cycles, so the relative costs of the flush-avoidance schemes — extra
 * metadata traffic (FliT), extra CAS traffic (link-and-persist), and the
 * skip-bit early drop (Skip It) — all come out of the same model that
 * the cycle simulator calibrates.
 *
 * Simplification (documented in DESIGN.md): writebacks are charged
 * synchronously at the writeback instruction, so a fence costs only a
 * small fixed amount. This matches how FliT's own cost analysis accounts
 * flush latency and preserves the *relative* throughputs the figures
 * compare.
 */

#ifndef SKIPIT_NVM_MEM_SIM_HH
#define SKIPIT_NVM_MEM_SIM_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "sim/types.hh"

namespace skipit {

/** Timing and geometry parameters of the execution-driven model. */
struct NvmConfig
{
    unsigned cores = 2;      //!< the paper's §7.4 platform is dual-core
    unsigned l1_sets = 64;   //!< 32 KiB per core
    unsigned l1_ways = 8;
    unsigned l2_sets = 1024; //!< 512 KiB shared
    unsigned l2_ways = 8;

    /** Optional L3 (paper §7.4: "a deeper cache hierarchy (i.e. L3 or
     *  L4) could show greater improvements due to the increased
     *  latencies"). 0 sets disables it. When present, a writeback that
     *  the LLC catches still had to traverse one more level, and a
     *  writeback that reaches DRAM pays the extra hop both ways. */
    unsigned l3_sets = 0;
    unsigned l3_ways = 16;
    unsigned c_l3_hit = 60;        //!< L3 access latency
    unsigned c_l3_extra_flush = 55; //!< added round trip for writebacks

    /// @name Cycle charges (calibrated against the cycle model)
    /// @{
    unsigned c_l1_hit = 3;
    unsigned c_l2_hit = 30;
    unsigned c_mem = 110;           //!< DRAM fill
    unsigned c_remote_transfer = 45; //!< cache-to-cache via L2
    unsigned c_flush = 110;         //!< writeback reaching DRAM
    unsigned c_flush_l2_only = 45;  //!< redundant writeback caught at LLC
    unsigned c_skip_drop = 2;       //!< Skip It drop in the L1 (§6.1)
    /** An empty persist fence: writebacks are charged synchronously at
     *  the writeback itself, so the trailing FENCE only pays its commit
     *  check. */
    unsigned c_fence = 2;
    /** Atomic read-modify-write (AMO) premium over a plain store: FliT's
     *  counter increments/decrements are fetch-adds, which BOOM executes
     *  serially in the L1. */
    unsigned c_amo = 15;
    /// @}

    bool skip_it = true; //!< hardware skip bit available
};

/** Result of a writeback call, for stats and tests. */
enum class WbOutcome
{
    SkippedL1,  //!< dropped by the Skip It skip bit
    SkippedLlc, //!< clean at the LLC: no DRAM write needed
    Persisted,  //!< dirty data written to DRAM
};

/**
 * The shared memory model. All methods are thread-safe (one global lock;
 * only wall-clock time is affected — simulated cycle accounting is
 * per-thread and unaffected by lock contention).
 */
class MemSim
{
  public:
    explicit MemSim(const NvmConfig &cfg);

    unsigned cores() const { return cfg_.cores; }
    const NvmConfig &config() const { return cfg_; }

    /// @name Memory operations: each returns the cycles charged
    /// @{
    Cycle load(unsigned tid, Addr addr);
    Cycle store(unsigned tid, Addr addr);
    /** CBO.FLUSH (@p invalidate) or CBO.CLEAN semantics. */
    Cycle writeback(unsigned tid, Addr addr, bool invalidate,
                    WbOutcome *outcome = nullptr);
    Cycle fence(unsigned tid);
    /** Atomic RMW (fetch-add etc.): a store plus the AMO premium. */
    Cycle amo(unsigned tid, Addr addr);
    /** Pure compute (bit masking, hashing) — charges @p n cycles. */
    Cycle cpuWork(unsigned tid, Cycle n);
    /// @}

    /** This thread's simulated clock. */
    Cycle clock(unsigned tid) const;

    /** Power failure: every volatile structure (L1s, L2, L3 presence)
     *  vanishes; clocks and statistics survive for the experimenter. */
    void reset();

    /// @name Aggregate statistics
    /// @{
    std::uint64_t flushesIssued() const { return n_flush_.load(); }
    std::uint64_t flushesSkippedL1() const { return n_skip_l1_.load(); }
    std::uint64_t flushesSkippedLlc() const { return n_skip_llc_.load(); }
    std::uint64_t dramWrites() const { return n_dram_write_.load(); }
    /// @}

    /// @name Test introspection (single-threaded use only)
    /// @{
    bool l1Holds(unsigned tid, Addr addr) const;
    bool l1Dirty(unsigned tid, Addr addr) const;
    bool l1Skip(unsigned tid, Addr addr) const;
    bool l2Holds(Addr addr) const;
    bool l2Dirty(Addr addr) const;
    /// @}

  private:
    struct L1Line
    {
        Addr line = 0;
        bool valid = false;
        bool dirty = false;
        bool skip = false;
        std::uint64_t lru = 0;
    };

    struct L2Line
    {
        Addr line = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    NvmConfig cfg_;
    mutable std::mutex mu_;
    std::set<Addr> l3_; //!< resident L3 line tags (coarse model)
    std::vector<std::vector<L1Line>> l1_; //!< [core][set*ways+way]
    std::vector<L2Line> l2_;
    std::vector<Cycle> clocks_;
    std::uint64_t stamp_ = 0;

    std::atomic<std::uint64_t> n_flush_{0};
    std::atomic<std::uint64_t> n_skip_l1_{0};
    std::atomic<std::uint64_t> n_skip_llc_{0};
    std::atomic<std::uint64_t> n_dram_write_{0};

    /// @name Internal helpers (must hold mu_)
    /// @{
    L1Line *findL1(unsigned core, Addr line);
    const L1Line *findL1(unsigned core, Addr line) const;
    L2Line *findL2(Addr line);
    const L2Line *findL2(Addr line) const;
    /** Install @p line into core's L1, evicting if needed.
     *  @return extra cycles charged by the eviction path */
    Cycle fillL1(unsigned core, Addr line, bool dirty, bool skip);
    /** Install @p line into L2 (inclusive: may back-invalidate L1s). */
    Cycle fillL2(Addr line, bool dirty);
    void touchL1(unsigned core, L1Line &l);
    void touchL2(L2Line &l);
    void l3Insert(Addr line);
    /// @}
};

} // namespace skipit

#endif // SKIPIT_NVM_MEM_SIM_HH
