/**
 * @file
 * A deterministic TileLink crossbar routing N client links onto S
 * address-interleaved manager slices.
 *
 * The paper's platform has exactly one inclusive L2, so the seed wired
 * each core's TLLink point-to-point into it. Scaled-out designs shard
 * the shared cache instead (BlackParrot's BedRock distributes its
 * directory across address-interleaved slices); this crossbar is the
 * interconnect half of that refactor:
 *
 *  - Requests (channels A, C, E) are routed by the home slice of the
 *    line address, computed by the same L2IndexPolicy the cache slices
 *    themselves index with (src/l2/index.hh) — modulo striping or a
 *    seeded hash; either way the crossbar and the cache cannot
 *    disagree about a line's home.
 *  - Responses (channels B, D) are routed back by agent id: D by the
 *    message's dest field, B by the probed client's port identity.
 *  - Arbitration is deterministic round-robin per channel: each tick
 *    the drain origin rotates, and because the drain is exhaustive and
 *    per-(slice, client) FIFOs preserve per-client arrival order, the
 *    routed schedule is a pure function of the message timeline —
 *    independent of construction order and of any host parallelism.
 *
 * The crossbar adds zero latency: it ticks before the slices, so a
 * message whose wire arrival is cycle T is visible to its slice's
 * accept logic in cycle T, exactly as with direct point-to-point
 * wiring. With one slice the routed system is bit-identical to the
 * pre-crossbar topology (asserted by the fig09 equivalence test).
 *
 * TLClientPort is the manager-side abstraction the L2 consumes: a
 * TLDirectPort wraps a raw TLLink (unit tests, legacy wiring), while
 * the crossbar's internal endpoints expose the routed per-slice view.
 */

#ifndef SKIPIT_TILELINK_XBAR_HH
#define SKIPIT_TILELINK_XBAR_HH

#include <deque>
#include <memory>
#include <vector>

#include "l2/index.hh"
#include "link.hh"
#include "messages.hh"
#include "sim/logging.hh"
#include "sim/ticked.hh"

namespace skipit {

/**
 * The manager-side view of one client connection. The inclusive cache
 * accepts inbound A/C/E traffic and issues outbound B/D responses
 * through this interface without knowing whether the other end is a
 * raw link or a crossbar slice endpoint.
 */
class TLClientPort
{
  public:
    virtual ~TLClientPort() = default;

    /// @name Inbound (client -> manager)
    /// @{
    virtual bool aReady() const = 0;
    virtual const AMsg &aFront() const = 0;
    virtual AMsg aPop() = 0;
    virtual bool cReady() const = 0;
    virtual CMsg cPop() = 0;
    virtual bool eReady() const = 0;
    virtual EMsg ePop() = 0;
    /// @}

    /// @name Outbound (manager -> client)
    /// @{
    virtual void sendB(const BMsg &m) = 0;
    virtual void sendD(const DMsg &m, unsigned beats, Cycle extra = 0) = 0;
    /// @}

    /** Earliest cycle inbound work may become consumable, clamped to
     *  @p now; wake_never when nothing is in flight. */
    virtual Cycle inboundWakeAt(Cycle now) const = 0;
};

/** A port wrapping the manager end of a point-to-point TLLink. */
class TLDirectPort final : public TLClientPort
{
  public:
    explicit TLDirectPort(TLLink &link) : link_(link) {}

    bool aReady() const override { return link_.a.ready(); }
    const AMsg &aFront() const override { return link_.a.front(); }
    AMsg aPop() override { return link_.a.recv(); }
    bool cReady() const override { return link_.c.ready(); }
    CMsg cPop() override { return link_.c.recv(); }
    bool eReady() const override { return link_.e.ready(); }
    EMsg ePop() override { return link_.e.recv(); }

    void sendB(const BMsg &m) override { link_.b.send(m); }

    void
    sendD(const DMsg &m, unsigned beats, Cycle extra = 0) override
    {
        link_.d.send(m, beats, extra);
    }

    Cycle
    inboundWakeAt(Cycle now) const override
    {
        Cycle wake = Ticked::wake_never;
        if (!link_.a.empty())
            wake = std::min(wake, std::max(link_.a.nextArrival(), now));
        if (!link_.c.empty())
            wake = std::min(wake, std::max(link_.c.nextArrival(), now));
        if (!link_.e.empty())
            wake = std::min(wake, std::max(link_.e.nextArrival(), now));
        return wake;
    }

  private:
    TLLink &link_;
};

/** See file comment. */
class TLXbar final : public Ticked
{
  public:
    /** @param index the shared indexing policy — pass the same value
     *  (L2Config::indexPolicy()) to every cache slice. */
    TLXbar(std::string name, const Simulator &sim,
           const L2IndexPolicy &index)
        : Ticked(std::move(name)), sim_(sim), index_(index),
          slices_(index.slices), slice_bits_(sliceBits(index.slices)),
          a_routed_(index.slices, 0), c_routed_(index.slices, 0),
          e_routed_(index.slices, 0)
    {
    }

    /** Plain modulo-indexed crossbar over @p slices (unit tests). */
    TLXbar(std::string name, const Simulator &sim, unsigned slices)
        : TLXbar(std::move(name), sim, L2IndexPolicy::modulo(slices, 1))
    {
    }

    unsigned slices() const { return slices_; }
    const L2IndexPolicy &indexPolicy() const { return index_; }
    /** Width of the slice-selection field, in address bits. */
    unsigned sliceBitCount() const { return slice_bits_; }
    unsigned clients() const
    {
        return static_cast<unsigned>(links_.size());
    }

    /** Attach client @p id's link; call once per client before the
     *  first tick, then port() the endpoints into the slices. */
    void
    connectClient(AgentId id, TLLink &link)
    {
        if (static_cast<std::size_t>(id) >= links_.size()) {
            links_.resize(id + 1, nullptr);
            for (auto &row : endpoints_)
                row.resize(id + 1);
        }
        SKIPIT_ASSERT(links_[id] == nullptr, "xbar client ", id,
                      " already connected");
        links_[id] = &link;
        if (endpoints_.empty())
            endpoints_.resize(slices_);
        for (unsigned s = 0; s < slices_; ++s) {
            if (endpoints_[s].size() < links_.size())
                endpoints_[s].resize(links_.size());
            endpoints_[s][id] = std::make_unique<Endpoint>(*this, id);
        }
    }

    /** The routed port slice @p slice sees for client @p client. */
    TLClientPort &
    port(unsigned slice, AgentId client)
    {
        SKIPIT_ASSERT(slice < slices_ &&
                          static_cast<std::size_t>(client) <
                              endpoints_[slice].size() &&
                          endpoints_[slice][client] != nullptr,
                      "xbar port (", slice, ", ", client, ") not wired");
        return *endpoints_[slice][client];
    }

    /**
     * Drain every wire-arrived A/C/E message into its slice endpoint.
     * The drain origin rotates per channel each tick (round-robin);
     * per-(slice, client) FIFOs keep each client's arrival order, so
     * the schedule seen by the slices is deterministic regardless of
     * how many clients contend in one cycle.
     */
    void
    tick() override
    {
        const unsigned n = clients();
        if (n == 0)
            return;
        for (unsigned i = 0; i < n; ++i)
            drainClientA((rr_a_ + i) % n);
        rr_a_ = (rr_a_ + 1) % n;
        for (unsigned i = 0; i < n; ++i)
            drainClientC((rr_c_ + i) % n);
        rr_c_ = (rr_c_ + 1) % n;
        for (unsigned i = 0; i < n; ++i)
            drainClientE((rr_e_ + i) % n);
        rr_e_ = (rr_e_ + 1) % n;
    }

    /** Wake when the next client-side message lands on a wire; routed
     *  endpoints wake their slices themselves. */
    Cycle
    nextWake() const override
    {
        const Cycle now = sim_.now();
        Cycle wake = wake_never;
        for (const TLLink *l : links_) {
            if (l == nullptr)
                continue;
            if (!l->a.empty())
                wake = std::min(wake, std::max(l->a.nextArrival(), now));
            if (!l->c.empty())
                wake = std::min(wake, std::max(l->c.nextArrival(), now));
            if (!l->e.empty())
                wake = std::min(wake, std::max(l->e.nextArrival(), now));
        }
        return wake;
    }

    /** No routed message waiting in any endpoint queue. */
    bool
    idle() const
    {
        for (const auto &row : endpoints_) {
            for (const auto &ep : row) {
                if (ep != nullptr && (!ep->aq.empty() || !ep->cq.empty() ||
                                      !ep->eq.empty())) {
                    return false;
                }
            }
        }
        return true;
    }

    /** Messages routed so far, per channel (unit-test observability). */
    std::uint64_t routedA(unsigned slice) const { return a_routed_.at(slice); }
    std::uint64_t routedC(unsigned slice) const { return c_routed_.at(slice); }
    std::uint64_t routedE(unsigned slice) const { return e_routed_.at(slice); }

    /**
     * Fault injection (checker negative control): deliver the next
     * A-channel request to the wrong slice. Requires >= 2 slices. The
     * coherence checker's slice-routing invariant must name it.
     */
    void
    injectAMisroute()
    {
        SKIPIT_ASSERT(slices_ > 1, "misroute injection needs >= 2 slices");
        misroute_a_ = true;
    }

  private:
    /** Routed per-(slice, client) queues; the slice consumes these. */
    struct Endpoint final : public TLClientPort
    {
        Endpoint(TLXbar &xbar, AgentId client)
            : xbar(xbar), client(client)
        {
        }

        bool aReady() const override { return !aq.empty(); }
        const AMsg &aFront() const override { return aq.front(); }

        AMsg
        aPop() override
        {
            AMsg m = aq.front();
            aq.pop_front();
            return m;
        }

        bool cReady() const override { return !cq.empty(); }

        CMsg
        cPop() override
        {
            CMsg m = cq.front();
            cq.pop_front();
            return m;
        }

        bool eReady() const override { return !eq.empty(); }

        EMsg
        ePop() override
        {
            EMsg m = eq.front();
            eq.pop_front();
            return m;
        }

        void sendB(const BMsg &m) override { xbar.routeB(client, m); }

        void
        sendD(const DMsg &m, unsigned beats, Cycle extra = 0) override
        {
            xbar.routeD(m, beats, extra);
        }

        Cycle
        inboundWakeAt(Cycle now) const override
        {
            if (!aq.empty() || !cq.empty() || !eq.empty())
                return now;
            return Ticked::wake_never;
        }

        TLXbar &xbar;
        AgentId client;
        std::deque<AMsg> aq;
        std::deque<CMsg> cq;
        std::deque<EMsg> eq;
    };

    unsigned
    routeSliceOf(Addr addr)
    {
        unsigned s = index_.sliceOf(lineAlign(addr));
        if (misroute_a_) {
            s ^= 1u; // flip the low slice bit: guaranteed wrong home
            misroute_a_ = false;
        }
        return s;
    }

    void
    drainClientA(unsigned c)
    {
        TLLink *l = links_[c];
        if (l == nullptr)
            return;
        while (l->a.ready()) {
            AMsg m = l->a.recv();
            const unsigned s = routeSliceOf(m.addr);
            endpoints_[s][c]->aq.push_back(std::move(m));
            ++a_routed_[s];
        }
    }

    void
    drainClientC(unsigned c)
    {
        TLLink *l = links_[c];
        if (l == nullptr)
            return;
        while (l->c.ready()) {
            CMsg m = l->c.recv();
            const unsigned s = index_.sliceOf(lineAlign(m.addr));
            endpoints_[s][c]->cq.push_back(std::move(m));
            ++c_routed_[s];
        }
    }

    void
    drainClientE(unsigned c)
    {
        TLLink *l = links_[c];
        if (l == nullptr)
            return;
        while (l->e.ready()) {
            EMsg m = l->e.recv();
            const unsigned s = index_.sliceOf(lineAlign(m.addr));
            endpoints_[s][c]->eq.push_back(std::move(m));
            ++e_routed_[s];
        }
    }

    /** B responses route by the probed client's identity. */
    void
    routeB(AgentId client, const BMsg &m)
    {
        SKIPIT_ASSERT(static_cast<std::size_t>(client) < links_.size() &&
                          links_[client] != nullptr,
                      "xbar: probe for unknown client ", client);
        links_[client]->b.send(m);
    }

    /** D responses route by the message's source (dest) id. */
    void
    routeD(const DMsg &m, unsigned beats, Cycle extra)
    {
        SKIPIT_ASSERT(m.dest != invalid_agent &&
                          static_cast<std::size_t>(m.dest) < links_.size() &&
                          links_[m.dest] != nullptr,
                      "xbar: D response with unroutable dest ", m.dest);
        links_[m.dest]->d.send(m, beats, extra);
    }

    const Simulator &sim_;
    L2IndexPolicy index_;
    unsigned slices_;
    unsigned slice_bits_;
    std::vector<TLLink *> links_;
    /** endpoints_[slice][client]; unique_ptr keeps addresses stable. */
    std::vector<std::vector<std::unique_ptr<Endpoint>>> endpoints_;
    unsigned rr_a_ = 0;
    unsigned rr_c_ = 0;
    unsigned rr_e_ = 0;
    std::vector<std::uint64_t> a_routed_;
    std::vector<std::uint64_t> c_routed_;
    std::vector<std::uint64_t> e_routed_;
    bool misroute_a_ = false;
};

} // namespace skipit

#endif // SKIPIT_TILELINK_XBAR_HH
