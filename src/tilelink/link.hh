/**
 * @file
 * A point-to-point TileLink between one client agent (an L1 cache) and one
 * manager agent (the inclusive L2), modelling the five unidirectional
 * channels A-E with per-channel beat serialization.
 *
 * The SonicBOOM system bus moves 16 B per cycle (Figure 3), so a message
 * carrying a 64 B line occupies its channel for four beats — this is the
 * "takes four cycles to send the data to L2" cost of the FSHR's
 * root_release_data state (§5.2).
 */

#ifndef SKIPIT_TILELINK_LINK_HH
#define SKIPIT_TILELINK_LINK_HH

#include <algorithm>
#include <string>
#include <utility>

#include "messages.hh"
#include "sim/queues.hh"
#include "sim/simulator.hh"

namespace skipit {

/**
 * One unidirectional TileLink channel: a delayed FIFO plus beat-occupancy
 * accounting. A message with data holds the channel for beats_per_line
 * cycles; messages without data take one beat.
 */
template <typename Msg>
class TLChannel
{
  public:
    /**
     * @param stage probe stage literal ("tl.a" ... "tl.e")
     * @param track probe track name, e.g. "core0.tl.a"
     */
    TLChannel(const Simulator &sim, Cycle latency,
              const char *stage = "tl", std::string track = "tl")
        : sim_(sim), latency_(latency), q_(sim, latency), stage_(stage),
          track_(std::move(track))
    {
    }

    /**
     * Send @p m, occupying the channel for @p beats cycles.
     * @param extra additional sender-side processing delay, e.g. a
     *              BankedStore access preceding the response
     */
    void
    send(Msg m, unsigned beats = 1, Cycle extra = 0)
    {
        const Cycle start = std::max(sim_.now() + extra, busy_until_);
        const Cycle arrival = start + latency_ + beats - 1;
        busy_until_ = start + beats;
        if (sim_.probes().active()) {
            // One span per message covering its wire occupancy; a 4-beat
            // data message renders 4x wider than a header-only one.
            sim_.probes().span(start, latency_ + beats, m.txn, stage_,
                               track_,
                               beats > 1 ? "data beats" : "header");
        }
        q_.push(std::move(m), arrival - sim_.now());
    }

    bool ready() const { return q_.ready(); }
    const Msg &front() const { return q_.front(); }
    Msg recv() { return q_.pop(); }
    bool empty() const { return q_.empty(); }
    std::size_t inFlight() const { return q_.size(); }

    /** Arrival cycle of the in-flight head; undefined unless !empty(). */
    Cycle nextArrival() const { return q_.frontReadyAt(); }

  private:
    const Simulator &sim_;
    Cycle latency_;
    Cycle busy_until_ = 0;
    DelayQueue<Msg> q_;
    const char *stage_;
    std::string track_;
};

/**
 * The five-channel link. The client end uses sendA/sendC/sendE and
 * recvB/recvD; the manager end uses sendB/sendD and recvA/recvC/recvE.
 */
class TLLink
{
  public:
    /**
     * @param sim     simulator supplying the clock
     * @param latency one-way wire latency per channel, in cycles
     * @param name    instance name used as the probe track prefix
     */
    TLLink(const Simulator &sim, Cycle latency = 1, std::string name = "tl")
        : a(sim, latency, "tl.a", name + ".a"),
          b(sim, latency, "tl.b", name + ".b"),
          c(sim, latency, "tl.c", name + ".c"),
          d(sim, latency, "tl.d", name + ".d"),
          e(sim, latency, "tl.e", name + ".e")
    {
    }

    TLChannel<AMsg> a;
    TLChannel<BMsg> b;
    TLChannel<CMsg> c;
    TLChannel<DMsg> d;
    TLChannel<EMsg> e;

    /** Beats a C message occupies: data messages move a full line. */
    static unsigned
    beatsFor(const CMsg &m)
    {
        return m.hasData() ? beats_per_line : 1;
    }

    /** Beats a D message occupies. */
    static unsigned
    beatsFor(const DMsg &m)
    {
        return m.hasData() ? beats_per_line : 1;
    }
};

} // namespace skipit

#endif // SKIPIT_TILELINK_LINK_HH
