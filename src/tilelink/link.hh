/**
 * @file
 * A point-to-point TileLink between one client agent (an L1 cache) and one
 * manager agent (the inclusive L2), modelling the five unidirectional
 * channels A-E with per-channel beat serialization.
 *
 * The SonicBOOM system bus moves 16 B per cycle (Figure 3), so a message
 * carrying a 64 B line occupies its channel for four beats — this is the
 * "takes four cycles to send the data to L2" cost of the FSHR's
 * root_release_data state (§5.2).
 *
 * For robustness testing each channel can additionally carry a seeded
 * schedule perturbation layer (ChannelJitter): per-message delay jitter
 * and occasional backpressure bursts. These are timing-only faults — the
 * flush unit and Skip It interlocks must be schedule-invariant, so every
 * coherence invariant has to hold under any jitter seed. With jitter
 * disabled (the default) the channel is bit-identical to the unperturbed
 * model.
 */

#ifndef SKIPIT_TILELINK_LINK_HH
#define SKIPIT_TILELINK_LINK_HH

#include <algorithm>
#include <string>
#include <utility>

#include "messages.hh"
#include "sim/queues.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

namespace skipit {

/**
 * Seeded schedule perturbation for a TileLink channel (timing-only fault
 * injection). Each channel derives its own RNG stream from @ref seed plus
 * a per-channel lane index, so the five channels of a link jitter
 * independently and deterministically.
 */
struct ChannelJitter
{
    bool enabled = false;
    std::uint64_t seed = 0;
    /** Extra per-message arrival delay, uniform in [0, max_delay]. */
    Cycle max_delay = 16;
    /** Probability that a send first sees a backpressure burst. */
    double burst_chance = 0.05;
    /** Burst length: cycles the channel is held busy before the send. */
    Cycle burst_len = 8;
};

/**
 * One unidirectional TileLink channel: a delayed FIFO plus beat-occupancy
 * accounting. A message with data holds the channel for beats_per_line
 * cycles; messages without data take one beat.
 */
template <typename Msg>
class TLChannel
{
  public:
    /**
     * @param stage probe stage literal ("tl.a" ... "tl.e")
     * @param track probe track name, e.g. "core0.tl.a"
     * @param jitter schedule perturbation; @ref ChannelJitter::seed must
     *               already be lane-mixed by the caller (TLLink)
     */
    TLChannel(const Simulator &sim, Cycle latency,
              const char *stage = "tl", std::string track = "tl",
              const ChannelJitter &jitter = {})
        : sim_(sim), latency_(latency), q_(sim, latency), stage_(stage),
          track_(std::move(track)), jit_(jitter), rng_(jitter.seed)
    {
    }

    /**
     * Send @p m, occupying the channel for @p beats cycles.
     * @param extra additional sender-side processing delay, e.g. a
     *              BankedStore access preceding the response
     */
    void
    send(Msg m, unsigned beats = 1, Cycle extra = 0)
    {
        if (jit_.enabled && jit_.burst_len > 0 &&
            rng_.chance(jit_.burst_chance)) {
            // Backpressure burst: pretend the wire was occupied until now
            // plus burst_len, delaying this send and everything behind it.
            busy_until_ = std::max(busy_until_, sim_.now()) + jit_.burst_len;
        }
        const Cycle start = std::max(sim_.now() + extra, busy_until_);
        Cycle arrival = start + latency_ + beats - 1;
        busy_until_ = start + beats;
        if (jit_.enabled) {
            // Per-message delay jitter. The underlying DelayQueue requires
            // monotone arrival order (it is a wire, not a reorder buffer),
            // so clamp to the previous arrival: jitter can delay messages
            // but never reorder them.
            arrival = std::max(arrival + rng_.range(0, jit_.max_delay),
                               last_arrival_);
        }
        last_arrival_ = arrival;
        if (sim_.probes().active()) {
            // One span per message covering its wire occupancy; a 4-beat
            // data message renders 4x wider than a header-only one.
            sim_.probes().span(start, arrival - start + 1, m.txn, stage_,
                               track_,
                               beats > 1 ? "data beats" : "header");
        }
        q_.push(std::move(m), arrival - sim_.now());
    }

    bool ready() const { return q_.ready(); }
    const Msg &front() const { return q_.front(); }
    Msg recv() { return q_.pop(); }
    bool empty() const { return q_.empty(); }
    std::size_t inFlight() const { return q_.size(); }

    /** Arrival cycle of the in-flight head; undefined unless !empty(). */
    Cycle nextArrival() const { return q_.frontReadyAt(); }

  private:
    const Simulator &sim_;
    Cycle latency_;
    Cycle busy_until_ = 0;
    Cycle last_arrival_ = 0;
    DelayQueue<Msg> q_;
    const char *stage_;
    std::string track_;
    ChannelJitter jit_;
    Rng rng_;
};

/**
 * The five-channel link. The client end uses sendA/sendC/sendE and
 * recvB/recvD; the manager end uses sendB/sendD and recvA/recvC/recvE.
 */
class TLLink
{
  public:
    /**
     * @param sim     simulator supplying the clock
     * @param latency one-way wire latency per channel, in cycles
     * @param name    instance name used as the probe track prefix
     * @param jitter  schedule perturbation applied to all five channels,
     *                each with an independently lane-mixed RNG stream
     */
    TLLink(const Simulator &sim, Cycle latency = 1, std::string name = "tl",
           const ChannelJitter &jitter = {})
        : a(sim, latency, "tl.a", name + ".a", laneJitter(jitter, 0)),
          b(sim, latency, "tl.b", name + ".b", laneJitter(jitter, 1)),
          c(sim, latency, "tl.c", name + ".c", laneJitter(jitter, 2)),
          d(sim, latency, "tl.d", name + ".d", laneJitter(jitter, 3)),
          e(sim, latency, "tl.e", name + ".e", laneJitter(jitter, 4))
    {
    }

    TLChannel<AMsg> a;
    TLChannel<BMsg> b;
    TLChannel<CMsg> c;
    TLChannel<DMsg> d;
    TLChannel<EMsg> e;

    /** Beats a C message occupies: data messages move a full line. */
    static unsigned
    beatsFor(const CMsg &m)
    {
        return m.hasData() ? beats_per_line : 1;
    }

    /** Beats a D message occupies. */
    static unsigned
    beatsFor(const DMsg &m)
    {
        return m.hasData() ? beats_per_line : 1;
    }

  private:
    static ChannelJitter
    laneJitter(ChannelJitter j, std::uint64_t lane)
    {
        // splitmix-style stir so lanes (and, upstream, per-core links)
        // draw from unrelated streams even for adjacent seeds.
        j.seed = j.seed * 0x9e3779b97f4a7c15ULL + lane + 1;
        return j;
    }
};

} // namespace skipit

#endif // SKIPIT_TILELINK_LINK_HH
