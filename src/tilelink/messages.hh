/**
 * @file
 * TileLink channel message definitions, including the paper's extensions.
 *
 * Standard TL-C (§2.2): Acquire/Grant/GrantAck, Release/ReleaseAck,
 * Probe/ProbeAck(Data).
 *
 * Paper extensions (§5.1, §6):
 *  - RootRelease{Flush,Clean}[Data] on channel C — a CBO.X travelling to
 *    the root of the hierarchy. In hardware these are encoded as ProbeAck
 *    with new FLUSH/CLEAN params to avoid widening the opcode bitvector;
 *    here they are distinct enumerators carrying a CboKind param.
 *  - RootReleaseAck on channel D — encoded in hardware as ReleaseAck with
 *    param ROOT.
 *  - GrantDataDirty on channel D — identical to GrantData except it tells
 *    the acquiring cache that the line is dirty in L2 and therefore NOT
 *    persisted; the receiver must leave the skip bit unset.
 */

#ifndef SKIPIT_TILELINK_MESSAGES_HH
#define SKIPIT_TILELINK_MESSAGES_HH

#include <array>
#include <cstdint>

#include "coherence/state.hh"
#include "sim/types.hh"

namespace skipit {

/** Payload of one full cache line. */
using LineData = std::array<std::uint8_t, line_bytes>;

/**
 * FNV-1a fingerprint of a line's bytes. Used as the machine-readable
 * payload of persist.* / dram.write probe events so the durability oracle
 * can compare line contents across the hierarchy without copying 64-byte
 * payloads into every event.
 */
inline std::uint64_t
lineFingerprint(const LineData &data)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint8_t b : data) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Which CBO instruction a RootRelease carries (§5.1 params FLUSH/CLEAN;
 *  INVAL is this repo's extension for the CMO spec's cbo.inval). */
enum class CboKind { Flush, Clean, Inval };

/** Channel A (client -> manager): permission acquisition. */
struct AMsg
{
    Addr addr = 0;           //!< line-aligned address
    Grow param = Grow::NtoB; //!< requested permission growth
    AgentId source = invalid_agent;
    TxnId txn = 0;           //!< observability transaction id
};

/** Channel B (manager -> client): coherence probes. */
struct BMsg
{
    Addr addr = 0;
    Cap param = Cap::toN; //!< permission cap to apply
    TxnId txn = 0;        //!< observability transaction id
};

/** Channel C opcodes (client -> manager). */
enum class COp
{
    ProbeAck,         //!< probe response, no data
    ProbeAckData,     //!< probe response carrying dirty data
    Release,          //!< voluntary downgrade, no data
    ReleaseData,      //!< voluntary downgrade carrying dirty data
    RootRelease,      //!< CBO.X writeback request, no data (paper §5.1)
    RootReleaseData,  //!< CBO.X writeback request with dirty data
};

/** Channel C (client -> manager). */
struct CMsg
{
    COp op = COp::ProbeAck;
    Addr addr = 0;
    Shrink param = Shrink::NtoN; //!< shrink/report (ProbeAck / Release)
    CboKind cbo = CboKind::Flush; //!< valid only for RootRelease*
    LineData data{};              //!< valid only for *Data ops
    AgentId source = invalid_agent;
    TxnId txn = 0;                //!< observability transaction id

    bool
    hasData() const
    {
        return op == COp::ProbeAckData || op == COp::ReleaseData ||
               op == COp::RootReleaseData;
    }

    bool
    isRootRelease() const
    {
        return op == COp::RootRelease || op == COp::RootReleaseData;
    }
};

/** Channel D opcodes (manager -> client). */
enum class DOp
{
    Grant,          //!< permissions only (unused by BOOM L1, kept for L2)
    GrantData,      //!< permissions + data; line persisted below (skip=1)
    GrantDataDirty, //!< permissions + data; line dirty in L2 (skip=0, §6)
    ReleaseAck,     //!< acknowledges a voluntary Release
    RootReleaseAck, //!< acknowledges a RootRelease (paper: ReleaseAck+ROOT)
};

/** Channel D (manager -> client). */
struct DMsg
{
    DOp op = DOp::Grant;
    Addr addr = 0;
    Cap cap = Cap::toB;  //!< permissions granted (Grant*)
    LineData data{};     //!< valid only for GrantData / GrantDataDirty
    AgentId dest = invalid_agent;
    TxnId txn = 0;       //!< observability transaction id

    bool
    hasData() const
    {
        return op == DOp::GrantData || op == DOp::GrantDataDirty;
    }

    bool
    isGrant() const
    {
        return op == DOp::Grant || hasData();
    }
};

/** Channel E (client -> manager): transaction completion. */
struct EMsg
{
    Addr addr = 0;
    AgentId source = invalid_agent;
    TxnId txn = 0;  //!< observability transaction id
};

} // namespace skipit

#endif // SKIPIT_TILELINK_MESSAGES_HH
