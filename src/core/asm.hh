/**
 * @file
 * A tiny assembler for hart programs, plus the actual RISC-V instruction
 * encodings of the operations the paper adds/uses (CBO.CLEAN, CBO.FLUSH
 * from the CMO extension [60], and FENCE).
 *
 * The textual form makes microbenchmarks readable and scriptable:
 *
 *   store  0x1000 42     ; sd-style store of an immediate
 *   cbo.flush 0x1000
 *   cbo.clean 0x1000
 *   fence
 *   load   0x1000
 *   delay  100           ; compute for 100 cycles
 *
 * `;` and `#` start comments; blank lines are ignored.
 */

#ifndef SKIPIT_CORE_ASM_HH
#define SKIPIT_CORE_ASM_HH

#include <cstdint>
#include <string>

#include "mem_op.hh"

namespace skipit {

/**
 * Parse an assembly listing into a Program.
 * Calls SKIPIT_FATAL on malformed input (user error).
 */
Program assembleProgram(const std::string &listing);

/** Render a Program back to its textual form (round-trips assemble). */
std::string disassembleProgram(const Program &program);

/**
 * Machine-code encodings per the RISC-V CMO spec [60] and base ISA [72].
 * CBO.X live in the MISC-MEM major opcode (0001111) with funct3 = CBO
 * (010); the operation is selected by the 12-bit immediate: 1 = clean,
 * 2 = flush. The base address register goes in rs1, rd must be x0.
 */
namespace riscv {

/** Encode `cbo.clean 0(rs1)`. */
std::uint32_t encodeCboClean(unsigned rs1);

/** Encode `cbo.flush 0(rs1)`. */
std::uint32_t encodeCboFlush(unsigned rs1);

/** Encode `cbo.inval 0(rs1)`. */
std::uint32_t encodeCboInval(unsigned rs1);

/** Encode `cbo.zero 0(rs1)` (the CMO spec's CBO.ZERO, imm = 4). */
std::uint32_t encodeCboZero(unsigned rs1);

/** Encode `fence pred, succ` (pred/succ are IORW bitmasks, bit3=I,
 *  bit2=O, bit1=R, bit0=W). FENCE RW,RW = encodeFence(0b0011, 0b0011). */
std::uint32_t encodeFence(unsigned pred, unsigned succ);

/** The strongest fence the BOOM implements (§4): FENCE RW,RW. */
std::uint32_t encodeFenceRwRw();

/** Classify a 32-bit instruction word.
 *  @return "cbo.clean", "cbo.flush", "fence" or "unknown" */
const char *decodeKind(std::uint32_t insn);

} // namespace riscv

} // namespace skipit

#endif // SKIPIT_CORE_ASM_HH
