/**
 * @file
 * A hart: the front end that dispatches a straight-line Program into its
 * LSU, modelling the core at the fidelity the paper's evaluation needs
 * (§7: microbenchmarks are sequences of memory operations timed with
 * RDCYCLE).
 */

#ifndef SKIPIT_CORE_HART_HH
#define SKIPIT_CORE_HART_HH

#include <unordered_map>

#include "lsu.hh"
#include "mem_op.hh"

namespace skipit {

/**
 * Executes one Program by dispatching its ops into the LSU in order,
 * honouring Delay ops by stalling dispatch.
 */
class Hart : public Ticked
{
  public:
    Hart(std::string name, Simulator &sim, Lsu &lsu,
         unsigned dispatch_width = 2);

    void tick() override;
    Cycle nextWake() const override;

    /** Replace the program and restart from its beginning. The LSU must
     *  be empty (run the previous program to completion first). */
    void setProgram(Program program);

    /** All ops dispatched and completed? */
    bool done() const;

    /** Value returned by the load at program index @p op_idx. */
    std::uint64_t loadValue(std::size_t op_idx) const;

    /** Cycle recorded by MemOp::marker(@p id) — the RDCYCLE readout.
     *  Markers wait for all older LSU operations (they read the cycle
     *  CSR after the measured section has retired). */
    Cycle markerCycle(std::uint64_t id) const;

    std::size_t pc() const { return pc_; }

  private:
    Simulator &sim_;
    Lsu &lsu_;
    unsigned dispatch_width_;

    Program program_;
    std::size_t pc_ = 0;
    Cycle stall_until_ = 0;
    std::unordered_map<std::size_t, std::uint64_t> load_tickets_;
    std::unordered_map<std::uint64_t, Cycle> markers_;
    bool marker_waiting_ = false;
    std::uint64_t pending_marker_ = 0;
};

} // namespace skipit

#endif // SKIPIT_CORE_HART_HH
