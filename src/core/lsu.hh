/**
 * @file
 * The load-store unit (§3.2), simplified to its memory-ordering essence.
 *
 * The LSU keeps an in-order window of dispatched memory operations.
 *  - Loads fire out of order as soon as no older fence is pending; a load
 *    whose word was written by an older in-window store forwards from the
 *    store buffer instead of firing.
 *  - STQ requests (stores and CBO.X) fire strictly in program order, only
 *    once everything older has completed — this models BOOM firing STQ
 *    entries when the ROB head reaches them (§3.2, §5.1), and is the
 *    property that makes writebacks ordered behind all earlier writes
 *    (§4: "similar to x86").
 *  - Fences complete when every older operation is done AND the data
 *    cache's flushing signal is low (§5.3 Fences).
 *  - A nacked request retries after a short backoff (§3.3).
 */

#ifndef SKIPIT_CORE_LSU_HH
#define SKIPIT_CORE_LSU_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "l1/data_cache.hh"
#include "mem_op.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"

namespace skipit {

/** LSU parameters. */
struct LsuConfig
{
    unsigned window = 32;       //!< LDQ/STQ entries (SonicBOOM: 32 each)
    unsigned fires_per_cycle = 2; //!< requests fired per cycle (§3.2)
    Cycle retry_backoff = 4;    //!< cycles before retrying after a nack
};

/**
 * The per-core LSU. The Hart dispatches MemOps in program order; the LSU
 * fires them into the data cache under the ordering rules above and
 * reports each operation's completion.
 */
class Lsu : public Ticked
{
  public:
    /** @param source the TileLink source (agent) id of the core this LSU
     *  belongs to; stamped on every CpuReq so the data cache can assert
     *  that requests arrive at the port matching their origin once the
     *  memory side is a routed crossbar. */
    Lsu(std::string name, Simulator &sim, const LsuConfig &cfg,
        DataCache &dcache, Stats &stats, AgentId source = invalid_agent);

    void tick() override;
    Cycle nextWake() const override;

    /** Can another op be dispatched this cycle? */
    bool canDispatch() const { return window_.size() < cfg_.window; }

    /**
     * Dispatch @p op in program order.
     * @return a ticket identifying the op for completion queries
     */
    std::uint64_t dispatch(const MemOp &op);

    /** Has the op with @p ticket completed? */
    bool isDone(std::uint64_t ticket) const;

    /** Value returned by a completed load. */
    std::uint64_t loadValue(std::uint64_t ticket) const;

    /** True when no dispatched operation remains incomplete. */
    bool empty() const { return window_.empty(); }

    /** Drop recorded load results (between benchmark phases). */
    void clearResults() { load_results_.clear(); }

    std::size_t inWindow() const { return window_.size(); }

  private:
    enum class EntryState { Waiting, Fired, Done };

    struct Entry
    {
        MemOp op;
        std::uint64_t ticket = 0;
        TxnId txn = 0;
        EntryState state = EntryState::Waiting;
        Cycle retry_at = 0;
        std::uint64_t load_value = 0;
    };

    Simulator &sim_;
    LsuConfig cfg_;
    DataCache &dcache_;
    Stats &stats_;
    AgentId source_;
    std::string sp_;

    std::deque<Entry> window_;
    std::uint64_t next_ticket_ = 1;
    std::uint64_t retired_upto_ = 0; //!< all tickets <= this are done
    std::unordered_map<std::uint64_t, std::uint64_t> load_results_;

    void drainResponses();
    void fire();
    void retire();

    Entry *entryForTicket(std::uint64_t ticket);
    /** Would fire() act on entry @p idx this cycle? Mirrors its guards. */
    bool fireableNow(std::size_t idx) const;
    /** Latest older in-window store writing exactly the load's word. */
    const Entry *forwardingStore(std::size_t load_idx) const;
    bool olderAllDone(std::size_t idx) const;
    bool olderFencePending(std::size_t idx) const;

    CpuReq toCpuReq(const Entry &e) const;
};

} // namespace skipit

#endif // SKIPIT_CORE_LSU_HH
