#include "hart.hh"

namespace skipit {

Hart::Hart(std::string name, Simulator &sim, Lsu &lsu,
           unsigned dispatch_width)
    : Ticked(std::move(name)), sim_(sim), lsu_(lsu),
      dispatch_width_(dispatch_width)
{
}

void
Hart::setProgram(Program program)
{
    SKIPIT_ASSERT(lsu_.empty(), "setProgram with in-flight operations");
    program_ = std::move(program);
    pc_ = 0;
    stall_until_ = 0;
    load_tickets_.clear();
    markers_.clear();
    marker_waiting_ = false;
    lsu_.clearResults();
}

bool
Hart::done() const
{
    return pc_ >= program_.size() && lsu_.empty() && !marker_waiting_;
}

Cycle
Hart::markerCycle(std::uint64_t id) const
{
    auto it = markers_.find(id);
    SKIPIT_ASSERT(it != markers_.end(), "marker ", id, " never executed");
    return it->second;
}

std::uint64_t
Hart::loadValue(std::size_t op_idx) const
{
    auto it = load_tickets_.find(op_idx);
    SKIPIT_ASSERT(it != load_tickets_.end(), "op ", op_idx, " is not a "
                  "dispatched load");
    return lsu_.loadValue(it->second);
}

Cycle
Hart::nextWake() const
{
    // Mirrors tick()'s early-outs: dispatch resumes once the stall
    // expires, and anything gated on the LSU (a waiting marker, a full
    // dispatch window) is woken by the LSU's own activity.
    const Cycle base = std::max(sim_.now(), stall_until_);
    if (marker_waiting_)
        return lsu_.empty() ? base : wake_never;
    if (pc_ >= program_.size())
        return wake_never;
    const MemOpKind k = program_[pc_].kind;
    if (k == MemOpKind::Delay || k == MemOpKind::Marker ||
        k == MemOpKind::WaitUntil) {
        return base; // processed regardless of LSU capacity
    }
    return lsu_.canDispatch() ? base : wake_never;
}

void
Hart::tick()
{
    if (sim_.now() < stall_until_)
        return;
    if (marker_waiting_) {
        // RDCYCLE after the measured section: wait until every older
        // memory operation retired, then latch the cycle.
        if (!lsu_.empty())
            return;
        markers_[pending_marker_] = sim_.now();
        marker_waiting_ = false;
    }
    for (unsigned n = 0; n < dispatch_width_ && pc_ < program_.size(); ++n) {
        const MemOp &op = program_[pc_];
        if (op.kind == MemOpKind::Delay) {
            stall_until_ = sim_.now() + op.delay;
            ++pc_;
            return;
        }
        if (op.kind == MemOpKind::WaitUntil) {
            ++pc_;
            if (sim_.now() < op.delay) {
                stall_until_ = op.delay;
                return;
            }
            continue; // arrival time already passed: dispatch right away
        }
        if (op.kind == MemOpKind::Marker) {
            ++pc_;
            if (lsu_.empty()) {
                markers_[op.data] = sim_.now();
            } else {
                marker_waiting_ = true;
                pending_marker_ = op.data;
                return;
            }
            continue;
        }
        if (!lsu_.canDispatch())
            return;
        const std::uint64_t ticket = lsu_.dispatch(op);
        if (op.kind == MemOpKind::Load)
            load_tickets_[pc_] = ticket;
        ++pc_;
    }
}

} // namespace skipit
