/**
 * @file
 * The memory-operation "instruction set" harts execute.
 *
 * Programs are straight-line sequences of memory operations plus Delay
 * (compute) ops — exactly what the paper's microbenchmarks consist of
 * (store / CBO.CLEAN / CBO.FLUSH / FENCE / load sequences, §7).
 */

#ifndef SKIPIT_CORE_MEM_OP_HH
#define SKIPIT_CORE_MEM_OP_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace skipit {

/** Operation kinds a Hart can issue. */
enum class MemOpKind
{
    Load,     //!< read `size` bytes at addr
    Store,    //!< write `size` bytes at addr
    CboClean, //!< CBO.CLEAN: non-invalidating writeback of addr's line
    CboFlush, //!< CBO.FLUSH: invalidating writeback of addr's line
    CboInval, //!< CBO.INVAL: discard all cached copies, NO writeback
    CboZero,  //!< CBO.ZERO: write zeros to the whole cache block
    Fence,    //!< FENCE RW,RW extended to wait on the flush counter (§5.3)
    Delay,    //!< stall dispatch for `delay` cycles (models compute)
    Marker,   //!< RDCYCLE (§7.1): record the current cycle, zero cost
    WaitUntil, //!< stall dispatch until an absolute cycle (open-loop clock)
};

/** One operation of a hart's program. */
struct MemOp
{
    MemOpKind kind = MemOpKind::Load;
    Addr addr = 0;
    unsigned size = 8;
    std::uint64_t data = 0; //!< store payload
    Cycle delay = 0;        //!< Delay duration

    static MemOp
    load(Addr a, unsigned size = 8)
    {
        return MemOp{MemOpKind::Load, a, size, 0, 0};
    }

    static MemOp
    store(Addr a, std::uint64_t v, unsigned size = 8)
    {
        return MemOp{MemOpKind::Store, a, size, v, 0};
    }

    static MemOp
    clean(Addr a)
    {
        return MemOp{MemOpKind::CboClean, a, 0, 0, 0};
    }

    static MemOp
    flush(Addr a)
    {
        return MemOp{MemOpKind::CboFlush, a, 0, 0, 0};
    }

    static MemOp
    inval(Addr a)
    {
        return MemOp{MemOpKind::CboInval, a, 0, 0, 0};
    }

    static MemOp
    zero(Addr a)
    {
        return MemOp{MemOpKind::CboZero, a, 0, 0, 0};
    }

    static MemOp
    fence()
    {
        return MemOp{MemOpKind::Fence, 0, 0, 0, 0};
    }

    static MemOp
    compute(Cycle n)
    {
        return MemOp{MemOpKind::Delay, 0, 0, 0, n};
    }

    /** RDCYCLE-style timestamp; read back via Hart::markerCycle(id). */
    static MemOp
    marker(std::uint64_t id)
    {
        return MemOp{MemOpKind::Marker, 0, 0, id, 0};
    }

    /**
     * Stall dispatch until the absolute cycle @p c (a no-op when @p c has
     * already passed). Open-loop traffic generators schedule each request's
     * arrival with this: unlike Delay, the wait does not stretch when the
     * previous operation ran long, so queueing delay shows up in the
     * measured latency instead of silently shifting the arrival process.
     */
    static MemOp
    waitUntil(Cycle c)
    {
        return MemOp{MemOpKind::WaitUntil, 0, 0, 0, c};
    }
};

/** A straight-line program for one hart. */
using Program = std::vector<MemOp>;

} // namespace skipit

#endif // SKIPIT_CORE_MEM_OP_HH
