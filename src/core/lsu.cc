#include "lsu.hh"

#include "sim/trace.hh"

namespace skipit {

namespace {

const char *
memOpName(MemOpKind k)
{
    switch (k) {
      case MemOpKind::Load:
        return "load";
      case MemOpKind::Store:
        return "store";
      case MemOpKind::CboClean:
        return "cbo.clean";
      case MemOpKind::CboFlush:
        return "cbo.flush";
      case MemOpKind::CboInval:
        return "cbo.inval";
      case MemOpKind::CboZero:
        return "cbo.zero";
      case MemOpKind::Fence:
        return "fence";
      case MemOpKind::Delay:
        return "delay";
      case MemOpKind::Marker:
        return "marker";
      case MemOpKind::WaitUntil:
        return "waituntil";
    }
    return "?";
}

} // namespace

Lsu::Lsu(std::string name, Simulator &sim, const LsuConfig &cfg,
         DataCache &dcache, Stats &stats, AgentId source)
    : Ticked(std::move(name)), sim_(sim), cfg_(cfg), dcache_(dcache),
      stats_(stats), source_(source), sp_(Ticked::name() + ".")
{
    SKIPIT_ASSERT(cfg.window > 0, "LSU window must be > 0");
}

std::uint64_t
Lsu::dispatch(const MemOp &op)
{
    SKIPIT_ASSERT(canDispatch(), "dispatch into a full LSU window");
    SKIPIT_ASSERT(op.kind != MemOpKind::Delay &&
                      op.kind != MemOpKind::WaitUntil,
                  "Delay/WaitUntil ops are handled by the Hart, not the "
                  "LSU");
    Entry e;
    e.op = op;
    e.ticket = next_ticket_++;
    // Transaction ids are allocated unconditionally so attaching a sink
    // never perturbs ids (and thus never perturbs anything downstream).
    // Each LSU allocates from its own id lane, so the ids it hands out
    // depend only on its own dispatch history — never on how dispatches
    // interleave across cores (or across parallel-engine workers).
    e.txn = sim_.probes().newTxn(
        source_ == invalid_agent ? 0u
                                 : static_cast<unsigned>(source_) + 1);
    if (sim_.probes().active()) {
        sim_.probes().begin(
            sim_.now(), e.txn, "lsu.window", name(),
            trace::detail::concat(memOpName(op.kind), " 0x", std::hex,
                                  op.addr));
    }
    window_.push_back(e);
    return e.ticket;
}

bool
Lsu::isDone(std::uint64_t ticket) const
{
    if (ticket <= retired_upto_)
        return true;
    for (const Entry &e : window_) {
        if (e.ticket == ticket)
            return e.state == EntryState::Done;
    }
    return true; // not in window and past the head: retired
}

std::uint64_t
Lsu::loadValue(std::uint64_t ticket) const
{
    auto it = load_results_.find(ticket);
    SKIPIT_ASSERT(it != load_results_.end(),
                  "loadValue for unknown or incomplete load");
    return it->second;
}

Lsu::Entry *
Lsu::entryForTicket(std::uint64_t ticket)
{
    for (Entry &e : window_) {
        if (e.ticket == ticket)
            return &e;
    }
    return nullptr;
}

const Lsu::Entry *
Lsu::forwardingStore(std::size_t load_idx) const
{
    const MemOp &load = window_[load_idx].op;
    for (std::size_t i = load_idx; i-- > 0;) {
        const Entry &e = window_[i];
        if (e.op.kind != MemOpKind::Store)
            continue;
        if (e.op.addr == load.addr && e.op.size == load.size)
            return &e;
        if (sameLine(e.op.addr, load.addr)) {
            // Overlapping but not word-exact: cannot forward; the caller
            // must wait for the store to complete.
            return nullptr;
        }
    }
    return nullptr;
}

bool
Lsu::olderAllDone(std::size_t idx) const
{
    for (std::size_t i = 0; i < idx; ++i) {
        if (window_[i].state != EntryState::Done)
            return false;
    }
    return true;
}

bool
Lsu::olderFencePending(std::size_t idx) const
{
    for (std::size_t i = 0; i < idx; ++i) {
        if (window_[i].op.kind == MemOpKind::Fence &&
            window_[i].state != EntryState::Done) {
            return true;
        }
    }
    return false;
}

CpuReq
Lsu::toCpuReq(const Entry &e) const
{
    CpuReq req;
    req.addr = e.op.addr;
    req.size = e.op.size;
    req.data = e.op.data;
    req.id = e.ticket;
    req.txn = e.txn;
    req.source = source_;
    switch (e.op.kind) {
      case MemOpKind::Load:
        req.kind = CpuOpKind::Load;
        break;
      case MemOpKind::Store:
        req.kind = CpuOpKind::Store;
        break;
      case MemOpKind::CboClean:
        req.kind = CpuOpKind::CboClean;
        break;
      case MemOpKind::CboFlush:
        req.kind = CpuOpKind::CboFlush;
        break;
      case MemOpKind::CboInval:
        req.kind = CpuOpKind::CboInval;
        break;
      case MemOpKind::CboZero:
        req.kind = CpuOpKind::CboZero;
        break;
      default:
        SKIPIT_PANIC("op kind cannot fire into the cache");
    }
    return req;
}

void
Lsu::drainResponses()
{
    while (dcache_.respReady()) {
        const CpuResp resp = dcache_.popResp();
        Entry *e = entryForTicket(resp.id);
        SKIPIT_ASSERT(e != nullptr, "response for retired ticket");
        SKIPIT_ASSERT(e->state == EntryState::Fired,
                      "response for unfired entry");
        if (resp.nack) {
            e->state = EntryState::Waiting;
            e->retry_at = sim_.now() + cfg_.retry_backoff;
            stats_[sp_ + "retries"]++;
            if (sim_.probes().active()) {
                sim_.probes().instant(sim_.now(), e->txn, "lsu.nack",
                                      name(), "nacked; backing off");
            }
        } else {
            e->state = EntryState::Done;
            if (e->op.kind == MemOpKind::Load) {
                e->load_value = resp.data;
                load_results_[e->ticket] = resp.data;
            }
            if (sim_.probes().active()) {
                sim_.probes().end(
                    sim_.now(), e->txn, "lsu.window", name(),
                    trace::detail::concat(memOpName(e->op.kind), " 0x",
                                          std::hex, e->op.addr));
            }
        }
    }
}

void
Lsu::fire()
{
    unsigned fired = 0;
    for (std::size_t i = 0;
         i < window_.size() && fired < cfg_.fires_per_cycle; ++i) {
        Entry &e = window_[i];
        if (e.state != EntryState::Waiting || sim_.now() < e.retry_at)
            continue;

        if (e.op.kind == MemOpKind::Fence) {
            // FENCE RW,RW: commits once everything older is complete and
            // no flush request is pending in the flush unit (§5.3).
            if (olderAllDone(i) && !dcache_.flushing()) {
                e.state = EntryState::Done;
                stats_[sp_ + "fences"]++;
                if (sim_.probes().active()) {
                    sim_.probes().end(sim_.now(), e.txn, "lsu.window",
                                      name(), "fence released");
                    // Durability-oracle payload: this hart has observed
                    // every older CBO complete (flush counter drained);
                    // their flushed values are now claimed durable.
                    sim_.probes().instant(
                        sim_.now(), e.txn, "persist.fence", name(),
                        "fence retired; flush counter drained", 0,
                        static_cast<std::uint64_t>(source_));
                }
            }
            continue;
        }

        if (e.op.kind == MemOpKind::Load) {
            if (olderFencePending(i))
                continue;
            if (const Entry *st = forwardingStore(i)) {
                // Store-to-load forwarding from the STQ (§3.2).
                e.load_value = st->op.data;
                load_results_[e.ticket] = st->op.data;
                e.state = EntryState::Done;
                stats_[sp_ + "stl_forwards"]++;
                if (sim_.probes().active()) {
                    sim_.probes().end(sim_.now(), e.txn, "lsu.window",
                                      name(), "store-to-load forward");
                }
                continue;
            }
            // An older overlapping (non-forwardable) store must drain
            // before the load may fire.
            bool blocked = false;
            for (std::size_t j = 0; j < i; ++j) {
                const Entry &older = window_[j];
                if (older.state != EntryState::Done &&
                    older.op.kind != MemOpKind::Load &&
                    sameLine(older.op.addr, e.op.addr)) {
                    blocked = true;
                    break;
                }
            }
            if (blocked)
                continue;
            dcache_.submit(toCpuReq(e));
            e.state = EntryState::Fired;
            ++fired;
            if (sim_.probes().active()) {
                sim_.probes().instant(sim_.now(), e.txn, "lsu.fire",
                                      name(), "load fired");
            }
            continue;
        }

        // STQ request (store or CBO.X): fires only once everything older
        // has completed, i.e. when the ROB head points at it (§3.2, §5.1).
        if (!olderAllDone(i))
            continue;
        dcache_.submit(toCpuReq(e));
        e.state = EntryState::Fired;
        ++fired;
        if (sim_.probes().active()) {
            sim_.probes().instant(
                sim_.now(), e.txn, "lsu.fire", name(),
                trace::detail::concat(memOpName(e.op.kind), " fired"));
        }
    }
}

bool
Lsu::fireableNow(std::size_t idx) const
{
    // Keep in lockstep with fire(): any guard added there needs a mirror
    // here, or fast-forward would sleep through a fireable entry.
    const Entry &e = window_[idx];
    if (e.op.kind == MemOpKind::Fence)
        return olderAllDone(idx) && !dcache_.flushing();
    if (e.op.kind == MemOpKind::Load) {
        if (olderFencePending(idx))
            return false;
        if (forwardingStore(idx) != nullptr)
            return true;
        for (std::size_t j = 0; j < idx; ++j) {
            const Entry &older = window_[j];
            if (older.state != EntryState::Done &&
                older.op.kind != MemOpKind::Load &&
                sameLine(older.op.addr, e.op.addr)) {
                return false;
            }
        }
        return true;
    }
    return olderAllDone(idx);
}

Cycle
Lsu::nextWake() const
{
    if (window_.empty())
        return wake_never;
    // A pending cache response wakes drainResponses.
    Cycle wake = dcache_.respWakeAt();
    if (window_.front().state == EntryState::Done)
        return sim_.now(); // retire() has work
    for (std::size_t i = 0; i < window_.size(); ++i) {
        const Entry &e = window_[i];
        if (e.state != EntryState::Waiting)
            continue; // Fired: completion arrives via respWakeAt
        if (sim_.now() < e.retry_at) {
            wake = std::min(wake, e.retry_at);
            continue;
        }
        if (fireableNow(i))
            return sim_.now();
        // Blocked on another entry or on the flush unit: whatever
        // unblocks it is itself a tracked wake source (a response, an
        // LSU fire this cycle, or data-cache activity).
    }
    return wake;
}

void
Lsu::retire()
{
    while (!window_.empty() && window_.front().state == EntryState::Done) {
        retired_upto_ = window_.front().ticket;
        window_.pop_front();
    }
}

void
Lsu::tick()
{
    drainResponses();
    fire();
    retire();
}

} // namespace skipit
