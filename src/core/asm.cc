#include "asm.hh"

#include <sstream>

#include "sim/logging.hh"

namespace skipit {

namespace {

std::uint64_t
parseNumber(const std::string &tok, const std::string &line)
{
    try {
        return std::stoull(tok, nullptr, 0); // handles 0x..., decimal
    } catch (const std::exception &) {
        SKIPIT_FATAL("bad number '", tok, "' in line: ", line);
    }
}

} // namespace

Program
assembleProgram(const std::string &listing)
{
    Program program;
    std::istringstream in(listing);
    std::string raw;
    while (std::getline(in, raw)) {
        // Strip comments.
        const auto cut = raw.find_first_of(";#");
        std::string line = cut == std::string::npos ? raw
                                                    : raw.substr(0, cut);
        std::istringstream ls(line);
        std::string op;
        if (!(ls >> op))
            continue; // blank line

        std::string a, b;
        ls >> a >> b;
        if (op == "store") {
            if (a.empty() || b.empty())
                SKIPIT_FATAL("store needs address and value: ", raw);
            program.push_back(MemOp::store(parseNumber(a, raw),
                                           parseNumber(b, raw)));
        } else if (op == "load") {
            if (a.empty())
                SKIPIT_FATAL("load needs an address: ", raw);
            program.push_back(MemOp::load(parseNumber(a, raw)));
        } else if (op == "cbo.clean") {
            if (a.empty())
                SKIPIT_FATAL("cbo.clean needs an address: ", raw);
            program.push_back(MemOp::clean(parseNumber(a, raw)));
        } else if (op == "cbo.flush") {
            if (a.empty())
                SKIPIT_FATAL("cbo.flush needs an address: ", raw);
            program.push_back(MemOp::flush(parseNumber(a, raw)));
        } else if (op == "cbo.inval") {
            if (a.empty())
                SKIPIT_FATAL("cbo.inval needs an address: ", raw);
            program.push_back(MemOp::inval(parseNumber(a, raw)));
        } else if (op == "cbo.zero") {
            if (a.empty())
                SKIPIT_FATAL("cbo.zero needs an address: ", raw);
            program.push_back(MemOp::zero(parseNumber(a, raw)));
        } else if (op == "fence") {
            program.push_back(MemOp::fence());
        } else if (op == "delay") {
            if (a.empty())
                SKIPIT_FATAL("delay needs a cycle count: ", raw);
            program.push_back(MemOp::compute(parseNumber(a, raw)));
        } else if (op == "rdcycle") {
            if (a.empty())
                SKIPIT_FATAL("rdcycle needs a marker id: ", raw);
            program.push_back(MemOp::marker(parseNumber(a, raw)));
        } else if (op == "waituntil") {
            if (a.empty())
                SKIPIT_FATAL("waituntil needs an absolute cycle: ", raw);
            program.push_back(MemOp::waitUntil(parseNumber(a, raw)));
        } else {
            SKIPIT_FATAL("unknown mnemonic '", op, "' in line: ", raw);
        }
    }
    return program;
}

std::string
disassembleProgram(const Program &program)
{
    std::ostringstream out;
    out << std::hex;
    for (const MemOp &op : program) {
        switch (op.kind) {
          case MemOpKind::Load:
            out << "load 0x" << op.addr << "\n";
            break;
          case MemOpKind::Store:
            out << "store 0x" << op.addr << " 0x" << op.data << "\n";
            break;
          case MemOpKind::CboClean:
            out << "cbo.clean 0x" << op.addr << "\n";
            break;
          case MemOpKind::CboFlush:
            out << "cbo.flush 0x" << op.addr << "\n";
            break;
          case MemOpKind::CboInval:
            out << "cbo.inval 0x" << op.addr << "\n";
            break;
          case MemOpKind::CboZero:
            out << "cbo.zero 0x" << op.addr << "\n";
            break;
          case MemOpKind::Fence:
            out << "fence\n";
            break;
          case MemOpKind::Delay:
            out << "delay " << std::dec << op.delay << std::hex << "\n";
            break;
          case MemOpKind::Marker:
            out << "rdcycle " << std::dec << op.data << std::hex << "\n";
            break;
          case MemOpKind::WaitUntil:
            out << "waituntil " << std::dec << op.delay << std::hex
                << "\n";
            break;
        }
    }
    return out.str();
}

namespace riscv {

namespace {

constexpr std::uint32_t misc_mem_opcode = 0b0001111;
constexpr std::uint32_t funct3_cbo = 0b010;
constexpr std::uint32_t funct3_fence = 0b000;
constexpr std::uint32_t cbo_inval_imm = 0;
constexpr std::uint32_t cbo_clean_imm = 1;
constexpr std::uint32_t cbo_flush_imm = 2;
constexpr std::uint32_t cbo_zero_imm = 4;

std::uint32_t
encodeCbo(std::uint32_t imm, unsigned rs1)
{
    SKIPIT_ASSERT(rs1 < 32, "rs1 out of range");
    return (imm << 20) | (static_cast<std::uint32_t>(rs1) << 15) |
           (funct3_cbo << 12) | misc_mem_opcode;
}

} // namespace

std::uint32_t
encodeCboClean(unsigned rs1)
{
    return encodeCbo(cbo_clean_imm, rs1);
}

std::uint32_t
encodeCboFlush(unsigned rs1)
{
    return encodeCbo(cbo_flush_imm, rs1);
}

std::uint32_t
encodeCboInval(unsigned rs1)
{
    return encodeCbo(cbo_inval_imm, rs1);
}

std::uint32_t
encodeCboZero(unsigned rs1)
{
    return encodeCbo(cbo_zero_imm, rs1);
}

std::uint32_t
encodeFence(unsigned pred, unsigned succ)
{
    SKIPIT_ASSERT(pred < 16 && succ < 16, "fence sets are 4-bit IORW");
    return (static_cast<std::uint32_t>(pred) << 24) |
           (static_cast<std::uint32_t>(succ) << 20) |
           (funct3_fence << 12) | misc_mem_opcode;
}

std::uint32_t
encodeFenceRwRw()
{
    return encodeFence(0b0011, 0b0011);
}

const char *
decodeKind(std::uint32_t insn)
{
    if ((insn & 0x7f) != misc_mem_opcode)
        return "unknown";
    const std::uint32_t funct3 = (insn >> 12) & 0x7;
    if (funct3 == funct3_fence)
        return "fence";
    if (funct3 == funct3_cbo) {
        const std::uint32_t imm = insn >> 20;
        if (imm == cbo_inval_imm)
            return "cbo.inval";
        if (imm == cbo_clean_imm)
            return "cbo.clean";
        if (imm == cbo_flush_imm)
            return "cbo.flush";
        if (imm == cbo_zero_imm)
            return "cbo.zero";
    }
    return "unknown";
}

} // namespace riscv
} // namespace skipit
