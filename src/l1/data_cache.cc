#include "data_cache.hh"

#include <cstring>

#include "sim/trace.hh"

namespace skipit {

namespace {

const char *
fshrStateName(Fshr::State st)
{
    switch (st) {
      case Fshr::State::Invalid:
        return "invalid";
      case Fshr::State::MetaWrite:
        return "meta-write";
      case Fshr::State::FillBuffer:
        return "fill-buffer";
      case Fshr::State::RootReleaseData:
        return "root-release-data";
      case Fshr::State::RootRelease:
        return "root-release";
      case Fshr::State::RootReleaseAck:
        return "root-release-ack";
    }
    return "?";
}

const char *
cboName(CboKind k)
{
    switch (k) {
      case CboKind::Clean:
        return "clean";
      case CboKind::Flush:
        return "flush";
      case CboKind::Inval:
        return "inval";
    }
    return "?";
}

} // namespace

DataCache::DataCache(std::string name, Simulator &sim, const L1Config &cfg,
                     AgentId id, TLLink &link, Stats &stats)
    : Ticked(std::move(name)), sim_(sim), cfg_(cfg), id_(id), link_(link),
      stats_(stats), sp_("l1." + std::to_string(id) + "."),
      arrays_(cfg.sets, cfg.ways), mshrs_(cfg.mshrs),
      flush_q_(cfg.flush_queue_depth), fshrs_(cfg.fshrs),
      in_q_(sim, 1), resp_q_(sim)
{
    SKIPIT_ASSERT(cfg.fshrs > 0 && cfg.flush_queue_depth > 0,
                  "flush unit needs at least one FSHR and queue slot");
}

void
DataCache::tick()
{
    processChannelD();
    processProbe();
    processCpuRequests();
    flushUnitDequeue();
    tickFshrs();
    tickWbu();
    issueAcquires();
}

Cycle
DataCache::respWakeAt() const
{
    if (resp_q_.empty())
        return Ticked::wake_never;
    return std::max(sim_.now(), resp_q_.frontReadyAt());
}

Cycle
DataCache::nextWake() const
{
    const Cycle now = sim_.now();

    // Units that make progress on their own every cycle. The probe unit
    // is treated as always-active while busy even though CheckConflicts
    // can spin — conservative, never wrong.
    if (probe_.busy() || wbu_.state == WritebackUnit::State::SendRelease ||
        !flush_q_.empty()) {
        return now;
    }
    for (const L1Mshr &m : mshrs_) {
        // AwaitGrant resolves via channel D, tracked below.
        if (m.valid && m.state == L1Mshr::State::AwaitIssue)
            return now;
    }

    Cycle wake = Ticked::wake_never;
    for (const Fshr &f : fshrs_) {
        // RootReleaseAck completes from channel D / the L2's progress.
        if (!f.busy() || f.state == Fshr::State::RootReleaseAck)
            continue;
        wake = std::min(wake, std::max(f.wait_until, now));
    }
    if (!in_q_.empty())
        wake = std::min(wake, std::max(in_q_.frontReadyAt(), now));
    if (!link_.b.empty())
        wake = std::min(wake, std::max(link_.b.nextArrival(), now));
    if (!link_.d.empty())
        wake = std::min(wake, std::max(link_.d.nextArrival(), now));
    // resp_q_ is the LSU's wake source (respWakeAt), not ours: delivering
    // a response is the LSU's tick, this cache's tick ignores it.
    return wake;
}

ClientState
DataCache::lineState(Addr addr) const
{
    const int way = arrays_.findWay(lineAlign(addr));
    if (way < 0)
        return ClientState::Nothing;
    return arrays_.meta(arrays_.setOf(lineAlign(addr)),
                        static_cast<unsigned>(way)).state;
}

bool
DataCache::lineDirty(Addr addr) const
{
    const int way = arrays_.findWay(lineAlign(addr));
    if (way < 0)
        return false;
    return arrays_.meta(arrays_.setOf(lineAlign(addr)),
                        static_cast<unsigned>(way)).dirty;
}

bool
DataCache::lineSkip(Addr addr) const
{
    const int way = arrays_.findWay(lineAlign(addr));
    if (way < 0)
        return false;
    return arrays_.meta(arrays_.setOf(lineAlign(addr)),
                        static_cast<unsigned>(way)).skip;
}

bool
DataCache::peekWord(Addr addr, std::uint64_t &value) const
{
    const Addr line = lineAlign(addr);
    const int way = arrays_.findWay(line);
    if (way < 0)
        return false;
    value = readWord(arrays_.data(arrays_.setOf(line),
                                  static_cast<unsigned>(way)),
                     addr, 8);
    return true;
}

bool
DataCache::lineBusy(Addr addr) const
{
    const Addr line = lineAlign(addr);
    if (fshrForLine(line) >= 0 || flushQueueHasLine(line))
        return true;
    if (probe_.busy() && probe_.line == line)
        return true;
    if (wbu_.conflictsWith(line))
        return true;
    return mshrForLine(line) >= 0;
}

bool
DataCache::quiesced() const
{
    if (flush_counter_ > 0 || wbu_.busy() || probe_.busy())
        return false;
    for (const L1Mshr &m : mshrs_) {
        if (m.valid)
            return false;
    }
    return in_q_.empty() && resp_q_.empty();
}

void
DataCache::submit(const CpuReq &req)
{
    SKIPIT_ASSERT(req.source == invalid_agent || req.source == id_,
                  "CpuReq submitted to a cache with a different source id");
    in_q_.push(req);
}

void
DataCache::respond(const CpuReq &req, std::uint64_t data, Cycle delay)
{
    resp_q_.pushIn(CpuResp{req.id, false, data}, delay);
}

void
DataCache::respondNack(const CpuReq &req)
{
    resp_q_.pushIn(CpuResp{req.id, true, 0}, 1);
    stats_[sp_ + "nacks"]++;
}

std::uint64_t
DataCache::readWord(const LineData &line, Addr addr, unsigned size) const
{
    SKIPIT_ASSERT(size <= 8 && lineOffset(addr) + size <= line_bytes,
                  "access crosses line boundary");
    std::uint64_t v = 0;
    std::memcpy(&v, line.data() + lineOffset(addr), size);
    return v;
}

void
DataCache::writeWord(LineData &line, Addr addr, unsigned size,
                     std::uint64_t value)
{
    SKIPIT_ASSERT(size <= 8 && lineOffset(addr) + size <= line_bytes,
                  "access crosses line boundary");
    std::memcpy(line.data() + lineOffset(addr), &value, size);
}

// ---------------------------------------------------------------------
// Channel D: grants for MSHRs, acks for the WBU and FSHRs.
// ---------------------------------------------------------------------

void
DataCache::processChannelD()
{
    while (link_.d.ready()) {
        const DMsg msg = link_.d.recv();
        switch (msg.op) {
          case DOp::Grant:
          case DOp::GrantData:
          case DOp::GrantDataDirty:
            fillFromGrant(msg);
            break;
          case DOp::ReleaseAck:
            SKIPIT_ASSERT(wbu_.state == WritebackUnit::State::AwaitAck &&
                          wbu_.line == msg.addr,
                          "ReleaseAck without matching writeback");
            if (sim_.probes().active()) {
                sim_.probes().end(sim_.now(), wbu_.txn, "l1.wbu",
                                  name() + ".wbu", "ReleaseAck");
            }
            wbu_.state = WritebackUnit::State::Idle;
            break;
          case DOp::RootReleaseAck: {
            const int idx = fshrForLine(msg.addr);
            SKIPIT_ASSERT(idx >= 0, "RootReleaseAck without FSHR");
            Fshr &f = fshrs_[static_cast<unsigned>(idx)];
            SKIPIT_ASSERT(f.state == Fshr::State::RootReleaseAck,
                          "RootReleaseAck in state other than wait");
            completeFshr(f);
            break;
          }
        }
    }
}

void
DataCache::fillFromGrant(const DMsg &grant)
{
    const int idx = mshrForLine(grant.addr);
    SKIPIT_ASSERT(idx >= 0, "grant without MSHR for line");
    L1Mshr &m = mshrs_[static_cast<unsigned>(idx)];
    SKIPIT_ASSERT(m.state == L1Mshr::State::AwaitGrant,
                  "grant before Acquire was issued");

    // The fill way was reserved (and any victim evicted) at allocation.
    const unsigned set = m.fill_set;
    const unsigned way = m.fill_way;
    SKIPIT_ASSERT(!arrays_.meta(set, way).valid() ||
                  arrays_.meta(set, way).tag == arrays_.tagOf(grant.addr),
                  "reserved fill way holds a foreign line");

    L1Meta &meta = arrays_.meta(set, static_cast<unsigned>(way));
    meta.state = stateForCap(grant.cap);
    meta.tag = arrays_.tagOf(grant.addr);
    meta.dirty = false;
    // Skip It (§6.1): GrantData proves the line is persisted below;
    // GrantDataDirty proves it is not.
    meta.skip = cfg_.skip_it && grant.op == DOp::GrantData;
    arrays_.data(set, static_cast<unsigned>(way)) = grant.data;
    arrays_.touch(set, static_cast<unsigned>(way));

    EMsg ack;
    ack.addr = grant.addr;
    ack.source = id_;
    ack.txn = m.txn;
    link_.e.send(ack);

    if (sim_.probes().active()) {
        sim_.probes().end(
            sim_.now(), m.txn, "l1.mshr",
            name() + ".mshr" +
                std::to_string(static_cast<unsigned>(idx)),
            grant.op == DOp::GrantDataDirty ? "filled (GrantDataDirty)"
                                            : "filled");
    }
    replay(m, set, static_cast<unsigned>(way));
    m = L1Mshr{};
    stats_[sp_ + "fills"]++;
}

void
DataCache::replay(L1Mshr &m, unsigned fill_set, unsigned fill_way)
{
    // Replay the RPQ in arrival order (§3.3). Replays drain one per cycle;
    // responses are staggered accordingly. Applying all architectural
    // effects in this cycle keeps probes from observing a partial replay,
    // which is what BOOM's mshr_rdy interlock guarantees in hardware.
    L1Meta &meta = arrays_.meta(fill_set, fill_way);
    LineData &data = arrays_.data(fill_set, fill_way);
    Cycle extra = 0;
    for (const CpuReq &req : m.rpq) {
        if (req.kind == CpuOpKind::Load) {
            respond(req, readWord(data, req.addr, req.size),
                    cfg_.hit_latency + extra);
        } else if (req.kind == CpuOpKind::CboZero) {
            SKIPIT_ASSERT(meta.state == ClientState::Trunk,
                          "zero replay without write permissions");
            data = LineData{};
            meta.dirty = true;
            meta.skip = false;
        } else {
            SKIPIT_ASSERT(req.kind == CpuOpKind::Store,
                          "CBO.CLEAN/FLUSH/INVAL must never enter an RPQ");
            SKIPIT_ASSERT(meta.state == ClientState::Trunk,
                          "store replay without write permissions");
            writeWord(data, req.addr, req.size, req.data);
            meta.dirty = true;
            // Dirtying must clear the skip bit, not rely on the dirty
            // bit masking it: CBO.CLEAN marks the line clean again when
            // it captures the data into the FSHR, long before the
            // writeback is durable, and a stale skip bit from the fill
            // would then elide the next CBO unsoundly (§6.1).
            meta.skip = false;
            // The store already responded when the MSHR buffered it.
        }
        ++extra;
    }
}

// ---------------------------------------------------------------------
// Probe unit (§3.3, §5.4.1).
// ---------------------------------------------------------------------

void
DataCache::processProbe()
{
    switch (probe_.state) {
      case ProbeUnit::State::Idle:
        if (link_.b.ready()) {
            const BMsg msg = link_.b.recv();
            probe_.line = msg.addr;
            probe_.cap = msg.param;
            probe_.txn = msg.txn;
            if (sim_.probes().active()) {
                sim_.probes().begin(
                    sim_.now(), probe_.txn, "l1.probe", name() + ".probe",
                    trace::detail::concat("probe 0x", std::hex, msg.addr));
            }
            // probe_rdy drops the moment the probe arrives (§5.4.1); the
            // flush queue cannot dequeue until the probe completes.
            probe_.state = ProbeUnit::State::InvalidateQueue;
            stats_[sp_ + "probes"]++;
            SKIPIT_TRACE_LOG(sim_.now(), "l1", name(), " probe 0x",
                             std::hex, msg.addr);
        }
        return;

      case ProbeUnit::State::InvalidateQueue:
        // probe_invalidate (§5.4.1): bring pending flush-queue entries in
        // line with the permission downgrade this probe will perform.
        if (!cfg_.test_break_probe_invalidate)
            invalidateFlushEntries(probe_.line, probe_.cap == Cap::toN);
        probe_.state = ProbeUnit::State::CheckConflicts;
        return;

      case ProbeUnit::State::CheckConflicts: {
        // flush_rdy: an FSHR mid-flight on this line must finish its
        // release first (§5.4.1). wb_rdy: same for the writeback unit.
        const int fshr = fshrForLine(probe_.line);
        if (fshr >= 0 &&
            !fshrs_[static_cast<unsigned>(fshr)].flushRdyFor(probe_.line)) {
            return;
        }
        if (wbu_.conflictsWith(probe_.line))
            return;
        probe_.state = ProbeUnit::State::Respond;
        return;
      }

      case ProbeUnit::State::Respond: {
        const int way = arrays_.findWay(probe_.line);
        CMsg ack;
        ack.addr = probe_.line;
        ack.source = id_;
        ack.txn = probe_.txn;
        if (way < 0) {
            ack.op = COp::ProbeAck;
            ack.param = Shrink::NtoN;
            link_.c.send(ack);
        } else {
            const unsigned set = arrays_.setOf(probe_.line);
            L1Meta &meta = arrays_.meta(set, static_cast<unsigned>(way));
            const ClientState old = meta.state;
            const ClientState next = applyCap(old, probe_.cap);
            ack.param = shrinkFor(old, next);
            if (meta.dirty) {
                ack.op = COp::ProbeAckData;
                ack.data = arrays_.data(set, static_cast<unsigned>(way));
                meta.dirty = false;
                // Our modification is now travelling to L2; it is dirty
                // there, so this line is not persisted. An in-flight
                // CBO.CLEAN release for it carries the pre-probe data,
                // so its completion must not set the skip bit either.
                meta.skip = false;
                const int fshr = fshrForLine(probe_.line);
                if (fshr >= 0)
                    fshrs_[static_cast<unsigned>(fshr)].skip_ok = false;
            } else {
                ack.op = COp::ProbeAck;
            }
            meta.state = next;
            link_.c.send(ack, TLLink::beatsFor(ack));
        }
        if (sim_.probes().active()) {
            sim_.probes().end(sim_.now(), probe_.txn, "l1.probe",
                              name() + ".probe",
                              way < 0 ? "miss ack" : "ack");
        }
        probe_.state = ProbeUnit::State::Idle;
        return;
      }
    }
}

// ---------------------------------------------------------------------
// CPU request handling (§3.3, §5.3).
// ---------------------------------------------------------------------

void
DataCache::processCpuRequests()
{
    for (unsigned n = 0; n < cfg_.reqs_per_cycle && in_q_.ready(); ++n) {
        const CpuReq req = in_q_.pop();
        switch (req.kind) {
          case CpuOpKind::Load:
            handleLoad(req);
            break;
          case CpuOpKind::Store:
            handleStore(req);
            break;
          case CpuOpKind::CboClean:
          case CpuOpKind::CboFlush:
          case CpuOpKind::CboInval:
            handleCbo(req);
            break;
          case CpuOpKind::CboZero:
            handleCboZero(req);
            break;
        }
    }
}

void
DataCache::handleLoad(const CpuReq &req)
{
    const Addr line = lineAlign(req.addr);
    const int way = arrays_.findWay(line);
    if (way >= 0) {
        // A BtoT upgrade in flight may hold older buffered stores to
        // this line; serving the hit from the array would return
        // pre-store data. Order the load behind them through the RPQ
        // (the grow param is ignored on the piggy-back path).
        if (mshrForLine(line) >= 0) {
            if (!missToMshr(req, Grow::NtoB))
                respondNack(req);
            return;
        }
        // A load hit never changes line state, so pending flush-queue
        // metadata stays valid and the load may proceed (§5.3).
        const unsigned set = arrays_.setOf(line);
        arrays_.touch(set, static_cast<unsigned>(way));
        respond(req, readWord(arrays_.data(set, static_cast<unsigned>(way)),
                              req.addr, req.size),
                cfg_.hit_latency);
        stats_[sp_ + "load_hits"]++;
        return;
    }

    // Load miss with an FSHR on the line: forward from a filled data
    // buffer, otherwise postpone (§5.3).
    const int fshr = fshrForLine(line);
    if (fshr >= 0) {
        const Fshr &f = fshrs_[static_cast<unsigned>(fshr)];
        if (f.buffer_filled) {
            respond(req, readWord(f.buffer, req.addr, req.size),
                    cfg_.hit_latency);
            stats_[sp_ + "fshr_forwards"]++;
        } else {
            respondNack(req);
        }
        return;
    }

    stats_[sp_ + "load_misses"]++;
    if (!missToMshr(req, Grow::NtoB))
        respondNack(req);
}

void
DataCache::handleStore(const CpuReq &req)
{
    const Addr line = lineAlign(req.addr);

    // §5.3 Stores: a store dependent on a pending writeback nacks unless
    // an FSHR is executing a CBO.CLEAN and the data buffer already holds
    // the pre-store data (or the line was clean).
    const int fshr = fshrForLine(line);
    const bool queued = flushQueueHasLine(line);
    if (fshr >= 0 || queued) {
        bool allowed = false;
        if (fshr >= 0 && !queued) {
            const Fshr &f = fshrs_[static_cast<unsigned>(fshr)];
            allowed = f.req.isClean() &&
                      (!f.req.is_dirty || f.buffer_filled);
        }
        if (!allowed) {
            respondNack(req);
            return;
        }
    }

    const int way = arrays_.findWay(line);
    if (way >= 0) {
        const unsigned set = arrays_.setOf(line);
        L1Meta &meta = arrays_.meta(set, static_cast<unsigned>(way));
        if (meta.state == ClientState::Trunk) {
            writeWord(arrays_.data(set, static_cast<unsigned>(way)),
                      req.addr, req.size, req.data);
            meta.dirty = true;
            meta.skip = false; // dirtied: no longer persisted (§6.1)
            arrays_.touch(set, static_cast<unsigned>(way));
            respond(req, 0, cfg_.hit_latency);
            stats_[sp_ + "store_hits"]++;
            return;
        }
        // Branch: needs a permission upgrade. BOOM's data cache does not
        // support AcquirePerm (§3.3), so this re-acquires the whole block.
        if (fshr >= 0) {
            // Upgrading under a live CBO.CLEAN would let the FSHR write
            // back the new store's data; forbidden (§5.3).
            respondNack(req);
            return;
        }
        stats_[sp_ + "store_upgrades"]++;
        if (missToMshr(req, Grow::BtoT)) {
            // Once buffered in an MSHR the store counts as completed for
            // the ROB (§3.3); the data lands at replay time.
            respond(req, 0, 1);
        } else {
            respondNack(req);
        }
        return;
    }

    if (fshr >= 0) {
        respondNack(req);
        return;
    }
    stats_[sp_ + "store_misses"]++;
    if (missToMshr(req, Grow::NtoT)) {
        respond(req, 0, 1); // completed on buffering (§3.3)
    } else {
        respondNack(req);
    }
}

void
DataCache::handleCbo(const CpuReq &req)
{
    const Addr line = lineAlign(req.addr);

    // An active MSHR on this line may hold not-yet-replayed stores that
    // are older than this CBO in program order; snapshotting the line now
    // would let the writeback miss their data. Like any other request to
    // a line with a matching-but-unmergeable MSHR, the CBO nacks and the
    // LSU retries once the fill completes (§3.3).
    if (mshrForLine(line) >= 0) {
        respondNack(req);
        return;
    }

    // A probe in flight for this line may be about to downgrade the
    // metadata we are snapshotting, and its probe_invalidate scan has
    // already run — a snapshot taken now could go stale unnoticed. The
    // pipeline nacks requests conflicting with an in-progress probe.
    if (probe_.busy() && probe_.line == line) {
        respondNack(req);
        return;
    }

    const CboKind kind = req.kind == CpuOpKind::CboClean ? CboKind::Clean
                         : req.kind == CpuOpKind::CboFlush
                             ? CboKind::Flush
                             : CboKind::Inval;
    const int way = arrays_.findWay(line);
    const bool hit = way >= 0;
    bool dirty = false;
    bool skip = false;
    if (hit) {
        const L1Meta &meta = arrays_.meta(arrays_.setOf(line),
                                          static_cast<unsigned>(way));
        dirty = meta.dirty;
        skip = meta.skip;
    }

    // Skip It (§6.1): a hit on a clean line whose skip bit is set proves
    // no dirty copy exists anywhere below; drop before enqueuing. Never
    // applies to CBO.INVAL: its contract is to invalidate every cached
    // copy regardless of cleanliness (a device may have rewritten DRAM
    // behind the hierarchy's back).
    if (cfg_.skip_it && kind != CboKind::Inval && hit && !dirty && skip) {
        respond(req, 0, cfg_.cbo_accept_latency);
        stats_[sp_ + "skipit_dropped"]++;
        SKIPIT_TRACE_LOG(sim_.now(), "flush", name(), " skip-drop 0x",
                         std::hex, line);
        if (sim_.probes().active()) {
            sim_.probes().instant(
                sim_.now(), req.txn, "l1.skipit", name() + ".flushq",
                trace::detail::concat("skip-drop 0x", std::hex, line),
                line,
                lineFingerprint(arrays_.data(
                    arrays_.setOf(line), static_cast<unsigned>(way))));
        }
        return;
    }

    // Coalescing (§5.3): a same-kind CBO.X to the same line whose state
    // is unchanged since the pending request was captured merges with it.
    // A pending request absorbs an incoming one when the kinds match,
    // or — with the cross-kind extension — when a pending flush subsumes
    // an incoming clean.
    const auto kind_merges = [&](CboKind pending) {
        if (pending == kind)
            return true;
        return cfg_.cross_kind_coalesce && kind == CboKind::Clean &&
               pending == CboKind::Flush;
    };

    const int fshr = fshrForLine(line);
    bool conflict = fshr >= 0;
    if (cfg_.coalesce) {
        for (const FlushQueueEntry &e : flush_q_) {
            if (e.addr != line)
                continue;
            if (kind_merges(e.kind) && e.is_hit == hit &&
                e.is_dirty == dirty) {
                respond(req, 0, cfg_.cbo_accept_latency);
                stats_[sp_ + "cbo_coalesced"]++;
                if (sim_.probes().active()) {
                    sim_.probes().instant(
                        sim_.now(), req.txn, "l1.coalesce",
                        name() + ".flushq",
                        trace::detail::concat("merged into queued txn ",
                                              e.txn));
                }
                return;
            }
            conflict = true;
        }
        if (fshr >= 0) {
            const Fshr &f = fshrs_[static_cast<unsigned>(fshr)];
            // Once a CBO.CLEAN FSHR has captured its data buffer, stores
            // to the line are allowed again (§5.3) and may have re-dirtied
            // it; the array state then matches the FSHR's snapshot
            // (dirty == is_dirty) even though the buffered data is stale.
            // Merging here would ack this CBO without ever writing the
            // new store's data back — an acked-but-lost persist. Refuse
            // the merge and let the LSU retry after the FSHR drains.
            //
            // The other side of the capture: the line reads as clean now
            // (dirty == false) while the FSHR snapshot says dirty. The
            // buffered data still equals the array iff nothing touched
            // the line since the capture — no re-dirtying store (dirty
            // would be set) and no probe shipping newer data below
            // (skip_ok would be cleared). Under those conditions the
            // in-flight writeback persists exactly the bytes this CBO is
            // asking to persist, so it may merge instead of nack-retrying
            // until the FSHR drains.
            const bool state_matches =
                f.req.is_hit == hit && f.req.is_dirty == dirty &&
                !(f.buffer_filled && dirty);
            const bool captured_matches =
                f.req.is_hit && hit && !dirty && f.req.is_dirty &&
                f.buffer_filled && f.skip_ok;
            if (kind_merges(f.req.kind) &&
                (state_matches || captured_matches)) {
                respond(req, 0, cfg_.cbo_accept_latency);
                stats_[sp_ + "cbo_coalesced"]++;
                if (sim_.probes().active()) {
                    sim_.probes().instant(
                        sim_.now(), req.txn, "l1.coalesce",
                        name() + ".flushq",
                        trace::detail::concat("merged into FSHR txn ",
                                              f.req.txn));
                }
                return;
            }
        }
    } else {
        conflict = conflict || flushQueueHasLine(line);
    }

    // A dependent CBO.X that cannot coalesce is an STQ request that must
    // nack (§5.3).
    if (conflict) {
        respondNack(req);
        return;
    }

    if (flush_q_.full()) {
        respondNack(req);
        stats_[sp_ + "flushq_full"]++;
        return;
    }

    FlushQueueEntry e;
    e.addr = line;
    e.is_hit = hit;
    e.is_dirty = dirty;
    e.kind = kind;
    e.txn = req.txn;
    const bool pushed = flush_q_.tryPush(e);
    SKIPIT_ASSERT(pushed, "flush queue push failed");
    ++flush_counter_;
    SKIPIT_TRACE_LOG(sim_.now(), "flush", name(), " enqueue ",
                     kind == CboKind::Clean   ? "clean"
                     : kind == CboKind::Flush ? "flush"
                                              : "inval",
                     " 0x", std::hex, line, " hit=", hit, " dirty=",
                     dirty);
    if (sim_.probes().active()) {
        sim_.probes().begin(
            sim_.now(), req.txn, "l1.flushq", name() + ".flushq",
            trace::detail::concat("cbo.", cboName(kind), " 0x", std::hex,
                                  line, hit ? " hit" : " miss",
                                  dirty ? " dirty" : ""));
    }
    // Buffered: the instruction is ready to commit (§5.2).
    respond(req, 0, cfg_.cbo_accept_latency);
    stats_[sp_ + (kind == CboKind::Clean   ? "cbo_clean_accepted"
                  : kind == CboKind::Flush ? "cbo_flush_accepted"
                                           : "cbo_inval_accepted")]++;
}

void
DataCache::handleCboZero(const CpuReq &req)
{
    // CBO.ZERO behaves like a full-line store: exclusive permissions are
    // required (BOOM lacks AcquirePerm, §3.3, so a miss re-acquires the
    // whole block even though its data is about to be overwritten).
    const Addr line = lineAlign(req.addr);

    const int fshr = fshrForLine(line);
    if (fshr >= 0 || flushQueueHasLine(line)) {
        respondNack(req); // same dependence rule as stores (§5.3)
        return;
    }

    const int way = arrays_.findWay(line);
    if (way >= 0) {
        const unsigned set = arrays_.setOf(line);
        L1Meta &meta = arrays_.meta(set, static_cast<unsigned>(way));
        if (meta.state == ClientState::Trunk) {
            arrays_.data(set, static_cast<unsigned>(way)) = LineData{};
            meta.dirty = true;
            meta.skip = false; // dirtied: no longer persisted (§6.1)
            arrays_.touch(set, static_cast<unsigned>(way));
            respond(req, 0, cfg_.hit_latency);
            stats_[sp_ + "cbo_zero"]++;
            return;
        }
        if (missToMshr(req, Grow::BtoT)) {
            respond(req, 0, 1);
            stats_[sp_ + "cbo_zero"]++;
        } else {
            respondNack(req);
        }
        return;
    }
    if (missToMshr(req, Grow::NtoT)) {
        respond(req, 0, 1);
        stats_[sp_ + "cbo_zero"]++;
    } else {
        respondNack(req);
    }
}

// ---------------------------------------------------------------------
// MSHR path (§3.3).
// ---------------------------------------------------------------------

int
DataCache::mshrForLine(Addr line) const
{
    for (unsigned i = 0; i < mshrs_.size(); ++i) {
        if (mshrs_[i].valid && mshrs_[i].line == line)
            return static_cast<int>(i);
    }
    return -1;
}

int
DataCache::fshrForLine(Addr line) const
{
    for (unsigned i = 0; i < fshrs_.size(); ++i) {
        if (fshrs_[i].busy() && fshrs_[i].req.addr == line)
            return static_cast<int>(i);
    }
    return -1;
}

bool
DataCache::flushQueueHasLine(Addr line) const
{
    for (const FlushQueueEntry &e : flush_q_) {
        if (e.addr == line)
            return true;
    }
    return false;
}

bool
DataCache::wayReservedByMshr(unsigned set, unsigned way) const
{
    for (const L1Mshr &m : mshrs_) {
        if (m.valid && m.fill_set == set && m.fill_way == way)
            return true;
    }
    return false;
}

int
DataCache::pickVictim(unsigned set) const
{
    int best = -1;
    std::uint64_t best_stamp = ~std::uint64_t{0};
    for (unsigned w = 0; w < arrays_.ways(); ++w) {
        const L1Meta &m = arrays_.meta(set, w);
        if (wayReservedByMshr(set, w))
            continue;
        if (!m.valid())
            return static_cast<int>(w);
        const Addr line = arrays_.addrOf(set, w);
        // flush_rdy blocks the MSHRs from victimising a line an FSHR is
        // working on (§5.4.2).
        const int fshr = fshrForLine(line);
        if (fshr >= 0 &&
            !fshrs_[static_cast<unsigned>(fshr)].flushRdyFor(line)) {
            continue;
        }
        if (arrays_.stampOf(set, w) < best_stamp) {
            best_stamp = arrays_.stampOf(set, w);
            best = static_cast<int>(w);
        }
    }
    return best;
}

bool
DataCache::missToMshr(const CpuReq &req, Grow grow)
{
    const Addr line = lineAlign(req.addr);

    // Piggy-back on an existing MSHR for this line if permitted (§3.3).
    const int existing = mshrForLine(line);
    if (existing >= 0) {
        L1Mshr &m = mshrs_[static_cast<unsigned>(existing)];
        if (!m.accepts(req.kind) || m.rpq.size() >= cfg_.rpq_depth)
            return false;
        m.rpq.push_back(req);
        stats_[sp_ + "mshr_secondary"]++;
        if (sim_.probes().active()) {
            sim_.probes().instant(
                sim_.now(), req.txn, "l1.mshr.secondary",
                name() + ".mshr" + std::to_string(existing),
                trace::detail::concat("piggy-backed on txn ", m.txn));
        }
        return true;
    }

    int free = -1;
    for (unsigned i = 0; i < mshrs_.size(); ++i) {
        if (!mshrs_[i].valid) {
            free = static_cast<int>(i);
            break;
        }
    }
    if (free < 0) {
        stats_[sp_ + "mshr_full"]++;
        return false;
    }

    const unsigned set = arrays_.setOf(line);
    int fill_way = arrays_.findWay(line); // resident: a BtoT upgrade
    if (fill_way < 0) {
        // Need a way: evict a victim through the writeback unit.
        const int victim = pickVictim(set);
        if (victim < 0)
            return false;
        L1Meta &vm = arrays_.meta(set, static_cast<unsigned>(victim));
        if (vm.valid()) {
            if (wbu_.busy())
                return false; // single WBU; retry later
            const Addr victim_line = arrays_.addrOf(
                set, static_cast<unsigned>(victim));
            wbu_.line = victim_line;
            wbu_.dirty = vm.dirty;
            wbu_.data = arrays_.data(set, static_cast<unsigned>(victim));
            wbu_.param = shrinkFor(vm.state, ClientState::Nothing);
            wbu_.state = WritebackUnit::State::SendRelease;
            wbu_.txn = req.txn; // the miss that displaced the victim
            vm = L1Meta{};
            if (sim_.probes().active()) {
                sim_.probes().instant(
                    sim_.now(), req.txn, "l1.evict", name() + ".wbu",
                    trace::detail::concat("evict 0x", std::hex,
                                          victim_line));
            }
            // §5.4.2: evictions invalidate matching flush-queue entries.
            invalidateFlushEntries(victim_line, true);
            stats_[sp_ + "evictions"]++;
        }
        fill_way = victim;
    }

    L1Mshr &m = mshrs_[static_cast<unsigned>(free)];
    m.valid = true;
    m.state = L1Mshr::State::AwaitIssue;
    m.line = line;
    m.param = grow;
    m.rpq.clear();
    m.rpq.push_back(req);
    m.fill_set = set;
    m.fill_way = static_cast<unsigned>(fill_way);
    m.txn = req.txn;
    stats_[sp_ + "mshr_primary"]++;
    if (sim_.probes().active()) {
        sim_.probes().begin(
            sim_.now(), m.txn, "l1.mshr",
            name() + ".mshr" + std::to_string(free),
            trace::detail::concat("miss 0x", std::hex, line));
    }
    return true;
}

void
DataCache::issueAcquires()
{
    for (L1Mshr &m : mshrs_) {
        if (m.valid && m.state == L1Mshr::State::AwaitIssue) {
            AMsg msg;
            msg.addr = m.line;
            msg.param = m.param;
            msg.source = id_;
            msg.txn = m.txn;
            link_.a.send(msg);
            m.state = L1Mshr::State::AwaitGrant;
        }
    }
}

void
DataCache::tickWbu()
{
    if (wbu_.state != WritebackUnit::State::SendRelease)
        return;
    CMsg msg;
    msg.addr = wbu_.line;
    msg.param = wbu_.param;
    msg.source = id_;
    msg.txn = wbu_.txn;
    if (wbu_.dirty) {
        msg.op = COp::ReleaseData;
        msg.data = wbu_.data;
    } else {
        msg.op = COp::Release;
    }
    if (sim_.probes().active()) {
        sim_.probes().begin(
            sim_.now(), wbu_.txn, "l1.wbu", name() + ".wbu",
            trace::detail::concat(wbu_.dirty ? "ReleaseData 0x"
                                             : "Release 0x",
                                  std::hex, wbu_.line));
    }
    link_.c.send(msg, TLLink::beatsFor(msg));
    wbu_.state = WritebackUnit::State::AwaitAck;
    stats_[sp_ + "writebacks"]++;
}

// ---------------------------------------------------------------------
// Flush unit (§5.2).
// ---------------------------------------------------------------------

void
DataCache::invalidateFlushEntries(Addr line, bool fully_invalidated)
{
    for (FlushQueueEntry &e : flush_q_) {
        if (e.addr != line)
            continue;
        if (fully_invalidated)
            e.is_hit = false;
        // Either way the line can no longer be dirty here: a probe with
        // data or an eviction carried the dirty bytes away.
        e.is_dirty = false;
    }
}

void
DataCache::flushUnitDequeue()
{
    if (flush_q_.empty())
        return;
    // §5.4.1/2: dequeue only when no probe is in flight (probe_rdy) and
    // the writeback unit is not working on this line (wb_rdy).
    if (!probe_.probeRdy())
        return;
    const FlushQueueEntry &head = flush_q_.front();
    if (wbu_.conflictsWith(head.addr))
        return;
    if (fshrForLine(head.addr) >= 0)
        return; // one FSHR per line at a time

    // Round-robin FSHR allocation (§5.2).
    int chosen = -1;
    for (unsigned i = 0; i < fshrs_.size(); ++i) {
        const unsigned idx = (fshr_rr_ + i) % fshrs_.size();
        if (!fshrs_[idx].busy()) {
            chosen = static_cast<int>(idx);
            break;
        }
    }
    if (chosen < 0)
        return;
    fshr_rr_ = (static_cast<unsigned>(chosen) + 1) % fshrs_.size();

    Fshr &f = fshrs_[static_cast<unsigned>(chosen)];
    f = Fshr{};
    f.req = flush_q_.pop();
    if (sim_.probes().active()) {
        sim_.probes().end(sim_.now(), f.req.txn, "l1.flushq",
                          name() + ".flushq", "dequeued");
        sim_.probes().begin(
            sim_.now(), f.req.txn, "l1.fshr",
            name() + ".fshr" + std::to_string(chosen),
            trace::detail::concat("cbo.", cboName(f.req.kind), " 0x",
                                  std::hex, f.req.addr));
    }

    // Build the execution plan (Figure 7). The interlocks guarantee the
    // snapshot still matches the array: assert it.
    if (f.req.is_hit) {
        const int way = arrays_.findWay(f.req.addr);
        SKIPIT_ASSERT(way >= 0, "flush-queue hit entry vanished");
        f.set = arrays_.setOf(f.req.addr);
        f.way = way;
        const L1Meta &meta = arrays_.meta(f.set,
                                          static_cast<unsigned>(way));
        SKIPIT_ASSERT(meta.dirty == f.req.is_dirty,
                      "flush-queue dirty snapshot stale");
        const ClientState old = meta.state;
        if (f.req.isClean()) {
            f.report = shrinkFor(old, old); // TtoT / BtoB
        } else {
            f.report = shrinkFor(old, ClientState::Nothing);
        }
        if (f.req.kind == CboKind::Inval || !f.req.is_dirty) {
            // Inval discards dirty data (no buffer fill); a clean hit on
            // a clean line does not even touch the metadata.
            f.state = (f.req.isClean())
                          ? Fshr::State::RootRelease
                          : Fshr::State::MetaWrite;
        } else {
            f.state = Fshr::State::MetaWrite;
        }
    } else {
        f.report = Shrink::NtoN;
        f.state = Fshr::State::RootRelease;
    }
    f.wait_until = sim_.now() + 1;
    stats_[sp_ + "fshr_allocs"]++;
}

void
DataCache::tickFshrs()
{
    for (Fshr &f : fshrs_) {
        if (!f.busy() || sim_.now() < f.wait_until)
            continue;
        switch (f.state) {
          case Fshr::State::Invalid:
            SKIPIT_PANIC("busy FSHR in Invalid state");

          case Fshr::State::MetaWrite: {
            L1Meta &meta = arrays_.meta(f.set,
                                        static_cast<unsigned>(f.way));
            if (f.req.isClean()) {
                meta.dirty = false;
            } else {
                meta = L1Meta{}; // flush/inval invalidate (§5.2)
            }
            const bool carries_data =
                f.req.is_dirty && f.req.kind != CboKind::Inval;
            f.state = carries_data ? Fshr::State::FillBuffer
                                   : Fshr::State::RootRelease;
            f.wait_until = sim_.now() + 1;
            if (sim_.probes().active())
                emitFshrState(f);
            break;
          }

          case Fshr::State::FillBuffer: {
            f.buffer = arrays_.data(f.set, static_cast<unsigned>(f.way));
            f.buffer_filled = true;
            f.state = Fshr::State::RootReleaseData;
            // The widened data array serves a full line in one cycle
            // (§5.2); the unmodified array needs one word per cycle.
            f.wait_until = sim_.now() +
                (cfg_.wide_data_array ? 1 : line_bytes / 8);
            if (sim_.probes().active())
                emitFshrState(f);
            break;
          }

          case Fshr::State::RootReleaseData:
          case Fshr::State::RootRelease: {
            CMsg msg;
            msg.addr = f.req.addr;
            msg.param = f.report;
            msg.cbo = f.req.kind;
            msg.source = id_;
            msg.txn = f.req.txn;
            if (f.state == Fshr::State::RootReleaseData) {
                msg.op = COp::RootReleaseData;
                msg.data = f.buffer;
            } else {
                msg.op = COp::RootRelease;
            }
            link_.c.send(msg, TLLink::beatsFor(msg));
            f.state = Fshr::State::RootReleaseAck;
            if (sim_.probes().active()) {
                emitFshrState(f);
                if (msg.op == COp::RootReleaseData) {
                    // Durability-oracle payload: the exact data this
                    // writeback promises to make durable.
                    sim_.probes().instant(
                        sim_.now(), f.req.txn, "persist.wb.data",
                        name() + ".fshr" +
                            std::to_string(&f - fshrs_.data()),
                        trace::detail::concat("writeback data 0x",
                                              std::hex, f.req.addr),
                        f.req.addr, lineFingerprint(f.buffer));
                }
            }
            break;
          }

          case Fshr::State::RootReleaseAck:
            break; // completion handled in processChannelD()
        }
    }
}

void
DataCache::completeFshr(Fshr &f)
{
    bool skip_set = false;
    if (f.req.isClean() && cfg_.skip_it && cfg_.skip_set_on_clean_ack) {
        // The clean just wrote every dirty copy back to memory. If the
        // line is still resident and has not been re-dirtied, it is now
        // provably persisted: set the skip bit.
        const int way = arrays_.findWay(f.req.addr);
        if (way >= 0 && f.skip_ok) {
            L1Meta &meta = arrays_.meta(arrays_.setOf(f.req.addr),
                                        static_cast<unsigned>(way));
            if (!meta.dirty) {
                meta.skip = true;
                skip_set = true;
                if (sim_.probes().active()) {
                    sim_.probes().instant(
                        sim_.now(), f.req.txn, "persist.skipset",
                        name() + ".fshr" +
                            std::to_string(&f - fshrs_.data()),
                        trace::detail::concat("skip-set 0x", std::hex,
                                              f.req.addr),
                        f.req.addr,
                        lineFingerprint(
                            arrays_.data(arrays_.setOf(f.req.addr),
                                         static_cast<unsigned>(way))));
                }
            }
        }
    }
    SKIPIT_TRACE_LOG(sim_.now(), "flush", name(), " fshr complete 0x",
                     std::hex, f.req.addr);
    if (sim_.probes().active()) {
        const std::string track =
            name() + ".fshr" + std::to_string(&f - fshrs_.data());
        sim_.probes().end(sim_.now(), f.req.txn, "l1.fshr", track,
                          "RootReleaseAck");
        // Durability-oracle payload: kind in bits [1:0], carried-data
        // flag in bit 2, skip-set flag in bit 3.
        sim_.probes().instant(
            sim_.now(), f.req.txn, "persist.complete", track,
            trace::detail::concat("cbo complete 0x", std::hex,
                                  f.req.addr),
            f.req.addr,
            static_cast<std::uint64_t>(f.req.kind) |
                (f.req.is_dirty ? 4u : 0u) | (skip_set ? 8u : 0u));
    }
    f = Fshr{};
    SKIPIT_ASSERT(flush_counter_ > 0, "flush counter underflow");
    --flush_counter_;
    stats_[sp_ + "fshr_completions"]++;
}

void
DataCache::emitFshrState(const Fshr &f) const
{
    sim_.probes().instant(
        sim_.now(), f.req.txn, "l1.fshr.state",
        name() + ".fshr" + std::to_string(&f - fshrs_.data()),
        fshrStateName(f.state));
}

// ---------------------------------------------------------------------
// Watchdog interface.
// ---------------------------------------------------------------------

void
DataCache::snapshotResources(
    std::vector<probe::ResourceSnapshot> &out) const
{
    for (unsigned i = 0; i < fshrs_.size(); ++i) {
        const Fshr &f = fshrs_[i];
        if (!f.busy())
            continue;
        probe::ResourceSnapshot snap;
        snap.name = name() + ".fshr" + std::to_string(i);
        snap.fingerprint = probe::fingerprint(
            0, static_cast<std::uint64_t>(f.state), f.req.addr, f.req.txn,
            f.buffer_filled);
        snap.txn = f.req.txn;
        snap.describe = std::string("state=") + fshrStateName(f.state);
        out.push_back(std::move(snap));
    }
    for (unsigned i = 0; i < mshrs_.size(); ++i) {
        const L1Mshr &m = mshrs_[i];
        if (!m.valid)
            continue;
        probe::ResourceSnapshot snap;
        snap.name = name() + ".mshr" + std::to_string(i);
        snap.fingerprint = probe::fingerprint(
            0, static_cast<std::uint64_t>(m.state), m.line, m.txn,
            m.rpq.size());
        snap.txn = m.txn;
        snap.describe = m.state == L1Mshr::State::AwaitGrant
                            ? "awaiting grant"
                            : "awaiting issue";
        out.push_back(std::move(snap));
    }
    if (wbu_.busy()) {
        probe::ResourceSnapshot snap;
        snap.name = name() + ".wbu";
        snap.fingerprint = probe::fingerprint(
            0, static_cast<std::uint64_t>(wbu_.state), wbu_.line,
            wbu_.txn);
        snap.txn = wbu_.txn;
        snap.describe = wbu_.state == WritebackUnit::State::AwaitAck
                            ? "awaiting ReleaseAck"
                            : "sending Release";
        out.push_back(std::move(snap));
    }
    if (probe_.busy()) {
        probe::ResourceSnapshot snap;
        snap.name = name() + ".probe";
        snap.fingerprint = probe::fingerprint(
            0, static_cast<std::uint64_t>(probe_.state), probe_.line,
            probe_.txn);
        snap.txn = probe_.txn;
        snap.describe = "probe unit busy";
        out.push_back(std::move(snap));
    }
    // The queue entries themselves never change state while queued; their
    // position does, so a draining queue shows progress and a blocked one
    // does not.
    std::size_t pos = 0;
    for (const FlushQueueEntry &e : flush_q_) {
        probe::ResourceSnapshot snap;
        snap.name = name() + ".flushq.txn" + std::to_string(e.txn);
        snap.fingerprint = probe::fingerprint(0, e.addr, e.txn, pos);
        snap.txn = e.txn;
        snap.describe = "queued at position " + std::to_string(pos);
        out.push_back(std::move(snap));
        ++pos;
    }
}

void
DataCache::injectSkipCorruption(Addr addr)
{
    SKIPIT_ASSERT(cfg_.skip_it,
                  "injectSkipCorruption requires skip_it enabled");
    const Addr line = lineAlign(addr);
    const int way = arrays_.findWay(line);
    SKIPIT_ASSERT(way >= 0,
                  "injectSkipCorruption: line not resident: 0x", std::hex,
                  line);
    L1Meta &meta =
        arrays_.meta(arrays_.setOf(line), static_cast<unsigned>(way));
    SKIPIT_ASSERT(!meta.dirty,
                  "injectSkipCorruption: line is dirty (skip bits are "
                  "only consulted on clean lines)");
    meta.skip = true;
}

} // namespace skipit
