/**
 * @file
 * The request/response interface between the LSU and the L1 data cache.
 *
 * Loads, stores and CBO.X instructions all arrive over this interface;
 * CBO.X arrive as STQ requests (§5.1), which is what gives them their
 * program-order firing semantics. The cache may respond with a nack, in
 * which case the LSU retries later (§3.3).
 */

#ifndef SKIPIT_L1_CPU_INTERFACE_HH
#define SKIPIT_L1_CPU_INTERFACE_HH

#include <cstdint>

#include "sim/types.hh"

namespace skipit {

/** Kinds of memory-system requests the LSU can fire into the data cache. */
enum class CpuOpKind
{
    Load,     //!< LDQ request
    Store,    //!< STQ request
    CboClean, //!< STQ request: non-invalidating writeback (§2.5)
    CboFlush, //!< STQ request: invalidating writeback (§2.5)
    CboInval, //!< STQ request: invalidate without writeback (CMO spec)
    CboZero,  //!< STQ request: zero the whole block (CMO spec)
};

/** True for requests that travel through the STQ. */
constexpr bool
isStq(CpuOpKind k)
{
    return k != CpuOpKind::Load;
}

/** True for the writeback/invalidate CMOs handled by the flush unit. */
constexpr bool
isCbo(CpuOpKind k)
{
    return k == CpuOpKind::CboClean || k == CpuOpKind::CboFlush ||
           k == CpuOpKind::CboInval;
}

/** Mnemonic for trace / probe event rendering. */
constexpr const char *
cpuOpName(CpuOpKind k)
{
    switch (k) {
      case CpuOpKind::Load:
        return "load";
      case CpuOpKind::Store:
        return "store";
      case CpuOpKind::CboClean:
        return "cbo.clean";
      case CpuOpKind::CboFlush:
        return "cbo.flush";
      case CpuOpKind::CboInval:
        return "cbo.inval";
      case CpuOpKind::CboZero:
        return "cbo.zero";
    }
    return "?";
}

/** A request fired from the LSU into the data cache. */
struct CpuReq
{
    CpuOpKind kind = CpuOpKind::Load;
    Addr addr = 0;
    unsigned size = 8;        //!< access size in bytes (loads/stores)
    std::uint64_t data = 0;   //!< store payload
    std::uint64_t id = 0;     //!< LSU tag echoed in the response
    TxnId txn = 0;            //!< observability transaction id
    /** TileLink source id of the issuing core; invalid_agent from legacy
     *  callers that predate the crossbar. The data cache asserts that a
     *  stamped request arrived at the cache owning that source id. */
    AgentId source = invalid_agent;
};

/** The data cache's reply. */
struct CpuResp
{
    std::uint64_t id = 0;
    bool nack = false;        //!< retry later (§3.3)
    std::uint64_t data = 0;   //!< load result
};

} // namespace skipit

#endif // SKIPIT_L1_CPU_INTERFACE_HH
