/**
 * @file
 * L1 data-cache parameters, including the paper's flush-unit knobs.
 */

#ifndef SKIPIT_L1_CONFIG_HH
#define SKIPIT_L1_CONFIG_HH

#include "sim/types.hh"

namespace skipit {

/** SonicBOOM L1 D-cache geometry and flush-unit configuration. */
struct L1Config
{
    unsigned sets = 64; //!< 64 sets x 8 ways x 64 B = 32 KiB (§3.3)
    unsigned ways = 8;
    unsigned mshrs = 4;       //!< miss status holding registers
    unsigned rpq_depth = 8;   //!< replay-queue entries per MSHR
    Cycle hit_latency = 3;    //!< load-to-use on a hit
    unsigned reqs_per_cycle = 2; //!< LSU can fire two per cycle (§3.2)
    /** Completion latency of a CBO.X as seen by the LSU: the instruction
     *  travels the whole pipeline (decode, ROB, TLB, L1 lookup) before it
     *  is buffered — or, with Skip It, detected as redundant and halted
     *  (§7.4 discusses exactly this cost). Applies to accepted, coalesced
     *  and skip-dropped CBOs alike. */
    Cycle cbo_accept_latency = 7;

    /// @name Flush unit (§5.2)
    /// @{
    unsigned flush_queue_depth = 8;
    unsigned fshrs = 8;       //!< the paper's flush unit contains 8
    /** Widened data array: a full line is read in one cycle (§5.2).
     *  Off = one 8 B word per cycle (the unmodified BOOM array), for the
     *  ablation bench. */
    bool wide_data_array = true;
    /** Coalesce same-kind CBO.X to the same unchanged line (§5.3). */
    bool coalesce = true;
    /** Extension (the paper's §5.3 "future investigation"): also coalesce
     *  a CBO.CLEAN into a pending CBO.FLUSH of the same unchanged line.
     *  Sound because the flush's obligations strictly subsume the
     *  clean's: it writes the same dirty data back and additionally
     *  invalidates. The reverse (flush into pending clean) stays
     *  forbidden — the clean would not invalidate the line. */
    bool cross_kind_coalesce = false;
    /// @}

    /// @name Skip It (§6)
    /// @{
    bool skip_it = true; //!< skip-bit early drop of redundant writebacks
    /** Set the skip bit when a CBO.CLEAN's RootReleaseAck returns and the
     *  line is still resident and clean: the writeback that just completed
     *  proves no dirty copy exists below. A conservative strengthening of
     *  §6 that makes repeated clean-writeback patterns skippable even when
     *  the line was originally granted dirty. */
    bool skip_set_on_clean_ack = true;
    /// @}

    /// @name Fault injection (tests only)
    /// @{
    /** Deliberately skip the §5.4 probe_invalidate interlock, leaving
     *  flush-queue hit/dirty snapshots stale after a probe or eviction.
     *  Exists solely so tests can prove the coherence checker detects the
     *  resulting invariant violation. Never set outside tests. */
    bool test_break_probe_invalidate = false;
    /// @}
};

} // namespace skipit

#endif // SKIPIT_L1_CONFIG_HH
