/**
 * @file
 * Internal structures of the BOOM L1 data cache: metadata/data arrays,
 * MSHRs with replay queues, the writeback unit, the probe unit, and the
 * flush unit's queue entries and FSHRs (§3.3, §5.2).
 */

#ifndef SKIPIT_L1_STRUCTURES_HH
#define SKIPIT_L1_STRUCTURES_HH

#include <vector>

#include "coherence/state.hh"
#include "cpu_interface.hh"
#include "sim/logging.hh"
#include "sim/types.hh"
#include "tilelink/messages.hh"

namespace skipit {

/**
 * Metadata for one L1 line. The skip bit is the paper's §6 addition: when
 * the line is valid and clean, skip == "no dirty copy of this line exists
 * anywhere below" == the negation of L2's dirty bit (§6.2).
 */
struct L1Meta
{
    ClientState state = ClientState::Nothing;
    Addr tag = 0;
    bool dirty = false;
    bool skip = false;

    bool valid() const { return state != ClientState::Nothing; }
};

/** The L1's SRAM arrays: per-(set,way) metadata and line data. */
class L1Arrays
{
  public:
    L1Arrays(unsigned sets, unsigned ways)
        : sets_(sets), ways_(ways),
          meta_(static_cast<std::size_t>(sets) * ways),
          data_(meta_.size()), lru_(meta_.size(), 0)
    {
    }

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }

    unsigned
    setOf(Addr line_addr) const
    {
        return static_cast<unsigned>((line_addr >> line_shift) % sets_);
    }

    Addr
    tagOf(Addr line_addr) const
    {
        return line_addr >> line_shift;
    }

    Addr
    addrOf(unsigned set, unsigned way) const
    {
        return meta(set, way).tag << line_shift;
    }

    /** @return way holding @p line_addr, or -1 on miss. */
    int
    findWay(Addr line_addr) const
    {
        const unsigned set = setOf(line_addr);
        const Addr tag = tagOf(line_addr);
        for (unsigned w = 0; w < ways_; ++w) {
            const L1Meta &m = meta(set, w);
            if (m.valid() && m.tag == tag)
                return static_cast<int>(w);
        }
        return -1;
    }

    L1Meta &meta(unsigned set, unsigned way) { return meta_[idx(set, way)]; }
    const L1Meta &
    meta(unsigned set, unsigned way) const
    {
        return meta_[idx(set, way)];
    }

    LineData &data(unsigned set, unsigned way) { return data_[idx(set, way)]; }
    const LineData &
    data(unsigned set, unsigned way) const
    {
        return data_[idx(set, way)];
    }

    void touch(unsigned set, unsigned way) { lru_[idx(set, way)] = ++stamp_; }
    std::uint64_t stampOf(unsigned set, unsigned way) const
    {
        return lru_[idx(set, way)];
    }

  private:
    unsigned sets_;
    unsigned ways_;
    std::vector<L1Meta> meta_;
    std::vector<LineData> data_;
    std::vector<std::uint64_t> lru_;
    std::uint64_t stamp_ = 0;

    std::size_t
    idx(unsigned set, unsigned way) const
    {
        SKIPIT_ASSERT(set < sets_ && way < ways_, "L1 array index OOB");
        return static_cast<std::size_t>(set) * ways_ + way;
    }
};

/** A miss status holding register with its replay queue (§3.3). */
struct L1Mshr
{
    enum class State { Idle, AwaitIssue, AwaitGrant };

    bool valid = false;
    State state = State::Idle;
    Addr line = 0;
    Grow param = Grow::NtoB; //!< permission level the primary requested
    std::vector<CpuReq> rpq; //!< primary request plus piggy-backed ones
    unsigned fill_set = 0;   //!< way reserved at allocation for the fill
    unsigned fill_way = 0;
    TxnId txn = 0;           //!< primary request's transaction id

    /** Can @p kind piggy-back given the primary's requested permissions?
     *  The RPQ only accepts secondaries needing perms <= the primary's
     *  (§3.3): a load-allocated (NtoB) MSHR cannot accept a store. */
    bool
    accepts(CpuOpKind kind) const
    {
        if (kind == CpuOpKind::Load)
            return true;
        return (kind == CpuOpKind::Store || kind == CpuOpKind::CboZero) &&
               param != Grow::NtoB;
    }
};

/** The writeback unit: releases one victim line at a time to L2 (§3.3). */
struct WritebackUnit
{
    enum class State { Idle, SendRelease, AwaitAck };

    State state = State::Idle;
    Addr line = 0;
    LineData data{};
    bool dirty = false;
    Shrink param = Shrink::TtoN;
    TxnId txn = 0;  //!< transaction whose miss evicted this victim

    bool busy() const { return state != State::Idle; }

    /** wb_rdy (Figure 3/6): low while this unit works on @p line_addr. */
    bool
    conflictsWith(Addr line_addr) const
    {
        return busy() && line == line_addr;
    }
};

/** The probe unit: handles one coherence probe at a time (§3.3, §5.4.1). */
struct ProbeUnit
{
    enum class State
    {
        Idle,
        InvalidateQueue, //!< applying probe_invalidate to flush entries
        CheckConflicts,  //!< waiting on flush_rdy / wb_rdy
        Respond,
    };

    State state = State::Idle;
    Addr line = 0;
    Cap cap = Cap::toN;
    TxnId txn = 0;  //!< transaction id carried by the probe (BMsg)

    bool busy() const { return state != State::Idle; }

    /** probe_rdy (§5.4.1): the flush queue may only dequeue when high. */
    bool probeRdy() const { return !busy(); }
};

/**
 * One entry of the flush queue (§5.2). The bookkeeping bits are a snapshot
 * of the line's metadata at enqueue time; probes and evictions keep them
 * consistent via probe_invalidate (§5.4).
 */
struct FlushQueueEntry
{
    Addr addr = 0;     //!< line-aligned address to write back
    bool is_hit = false;
    bool is_dirty = false;
    CboKind kind = CboKind::Flush; //!< CLEAN / FLUSH / INVAL
    TxnId txn = 0;     //!< the CBO.X instruction's transaction id

    bool isClean() const { return kind == CboKind::Clean; }
};

/** A flush status holding register executing one CBO.X (§5.2, Figure 7). */
struct Fshr
{
    enum class State
    {
        Invalid,
        MetaWrite,      //!< invalidate (flush) / clear dirty (clean)
        FillBuffer,     //!< read the line into the data buffer
        RootReleaseData,//!< send RootRelease with data (4 beats)
        RootRelease,    //!< send RootRelease without data (1 beat)
        RootReleaseAck, //!< await the L2's acknowledgement
    };

    State state = State::Invalid;
    FlushQueueEntry req{};
    LineData buffer{};
    bool buffer_filled = false;
    /** May completion set the skip bit? Cleared when a probe ships newer
     *  data to L2 mid-flight: the release then persists a stale version,
     *  so the line is NOT provably clean below (§6.1). */
    bool skip_ok = true;
    Cycle wait_until = 0;
    unsigned set = 0;            //!< captured at allocation (hits only)
    int way = -1;
    Shrink report = Shrink::NtoN; //!< permission transition to report

    bool busy() const { return state != State::Invalid; }

    /** flush_rdy (§5.4.1): low from allocation until the line has been
     *  released to L2 (i.e. until the FSHR reaches RootReleaseAck). */
    bool
    flushRdyFor(Addr line_addr) const
    {
        return !(busy() && req.addr == line_addr &&
                 state != State::RootReleaseAck);
    }
};

} // namespace skipit

#endif // SKIPIT_L1_STRUCTURES_HH
